module mips

go 1.22
