//go:build race

package mips

// raceEnabled reports whether the race detector instruments this build;
// wall-clock gates skip themselves under its overhead.
const raceEnabled = true
