// Package mips's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (each regenerates the full
// experiment), plus microbenchmarks of the substrates themselves.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mips

import (
	"fmt"
	"testing"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/lang"
	"mips/internal/mem"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/tables"
)

// benchExperiment regenerates one table per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	var run func() (*tables.Table, error)
	for _, e := range tables.All() {
		if e.Name == name {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("no experiment %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per paper table.

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }

// One benchmark per paper figure.

func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "figure1") }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2") }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// The in-text measurements of section 3.

func BenchmarkFreeCycles(b *testing.B)    { benchExperiment(b, "freecycles") }
func BenchmarkContextSwitch(b *testing.B) { benchExperiment(b, "ctxswitch") }

// Substrate microbenchmarks.

// BenchmarkPipelineSimulator measures simulated instructions per second
// on the fully optimized Fibonacci benchmark, on the superblock engine
// (the trace tier's baseline — BenchmarkPipelineTraces is the same
// workload one benchstat comparison away).
func BenchmarkPipelineSimulator(b *testing.B) {
	benchPipeline(b, codegen.RunOptions{Engine: sim.Blocks})
}

// BenchmarkPipelineTraces measures the same workload on the trace JIT
// tier. Before timing, it pins the tier's allocation discipline: once
// the trace cache is warm, steady-state stepping must not allocate at
// all — formation and compilation costs are paid once, never per
// dispatch.
func BenchmarkPipelineTraces(b *testing.B) {
	assertTraceSteadyStateZeroAlloc(b)
	benchPipeline(b, codegen.RunOptions{Engine: sim.Traces})
}

// benchPipeline runs the fib workload end to end under one engine and
// reports simulated instructions per second.
func benchPipeline(b *testing.B, opt codegen.RunOptions) {
	b.Helper()
	p, err := corpus.Get("fib")
	if err != nil {
		b.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := codegen.RunMIPSWith(im, 100_000_000, opt)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// assertTraceSteadyStateZeroAlloc warms a traces-engine machine on the
// queens workload until the trace tier has compiled and dispatched,
// then measures allocations per RunSteps in steady state and fails the
// benchmark on any nonzero result. scripts/bench.sh runs this through
// the bench gate.
func assertTraceSteadyStateZeroAlloc(b *testing.B) {
	b.Helper()
	p, err := corpus.Get("queens")
	if err != nil {
		b.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.New(sim.WithEngine(sim.Traces))
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		b.Fatal(err)
	}
	// Shallow chains make Steps fine-grained so the heat counters warm
	// in few steps; chain depth changes dispatch granularity only.
	m.CPU().SetChainFollow(2)
	for i := 0; i < 4096 && m.Trans().TraceDispatchHits == 0; i++ {
		if _, halted := m.RunSteps(64); halted {
			b.Fatal("workload finished before the trace cache warmed")
		}
	}
	if m.Trans().TraceDispatchHits == 0 {
		b.Fatal("trace tier never dispatched; the allocation check is vacuous")
	}
	avg := testing.AllocsPerRun(1000, func() {
		if _, halted := m.RunSteps(1); halted {
			b.Fatal("workload finished during the allocation check")
		}
	})
	if avg != 0 {
		b.Fatalf("warm trace tier allocates %v allocs/op in steady state, want 0", avg)
	}
}

// BenchmarkChainFollowSweep measures the fib workload on the traces
// engine across chain-depth limits, so the default (defaultChainFollow
// in internal/cpu) is justified by measurement rather than folklore:
// benchstat across the sub-benchmarks shows where deeper chaining stops
// paying.
func BenchmarkChainFollowSweep(b *testing.B) {
	p, err := corpus.Get("fib")
	if err != nil {
		b.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	for _, follow := range []int{1, 4, 16, 64, 256} {
		follow := follow
		b.Run(fmt.Sprintf("follow=%d", follow), func(b *testing.B) {
			b.ReportAllocs()
			var instrs uint64
			for i := 0; i < b.N; i++ {
				res, err := codegen.RunMIPSWith(im, 100_000_000, codegen.RunOptions{
					Engine: sim.Traces,
					Attach: func(c *cpu.CPU) { c.SetChainFollow(follow) },
				})
				if err != nil {
					b.Fatal(err)
				}
				instrs += res.Stats.Instructions
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkPipelineFastPath measures the same workload on the
// per-instruction predecoded fast path with the superblock engine off,
// so the block engine's gain is one benchstat comparison away.
func BenchmarkPipelineFastPath(b *testing.B) {
	p, err := corpus.Get("fib")
	if err != nil {
		b.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := codegen.RunMIPSWith(im, 100_000_000, codegen.RunOptions{NoBlocks: true})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkPipelineReference measures the same workload on the
// reference (non-predecoded) execution path, so the fast path's gain is
// one benchstat comparison away.
func BenchmarkPipelineReference(b *testing.B) {
	p, err := corpus.Get("fib")
	if err != nil {
		b.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := codegen.RunMIPSWith(im, 100_000_000, codegen.RunOptions{Reference: true})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkReorganizer measures the postpass scheduler on the Puzzle
// benchmark's instruction pieces.
func BenchmarkReorganizer(b *testing.B) {
	p, err := corpus.Get("puzzle1")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lang.Parse(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	unit, err := codegen.GenMIPS(prog, codegen.MIPSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ro, _ := reorg.Reorganize(unit, reorg.All())
		if reorg.WordCount(ro) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkCompiler measures the whole front end plus code generation.
func BenchmarkCompiler(b *testing.B) {
	p, err := corpus.Get("sort")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := lang.Parse(p.Source)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codegen.GenMIPS(prog, codegen.MIPSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures the reference interpreter on queens.
func BenchmarkInterpreter(b *testing.B) {
	p, err := corpus.Get("queens")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lang.Parse(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (&lang.Interp{}).Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelBoot measures building and booting the full machine:
// assembling the dispatch ROM through the reorganizer and running the
// reset exception path.
func BenchmarkKernelBoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := kernel.NewMachine(kernel.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreeCycleDMA measures how much block-copy bandwidth the DMA
// engine extracts from the free memory cycles of a running program —
// the §3.1 "these cycles can be used for DMA" claim made concrete.
func BenchmarkFreeCycleDMA(b *testing.B) {
	p, err := corpus.Get("queens")
	if err != nil {
		b.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var moved uint64
	for i := 0; i < b.N; i++ {
		phys := mem.NewPhysical(1 << 16)
		c := cpu.New(cpu.NewBus(phys))
		c.SetTrapHook(func(code uint16) {
			if code == 0 {
				c.Halt()
			}
		})
		dma := mem.NewDMA(phys)
		c.Bus.DMA = dma
		// Saturate the engine so every free cycle is consumed.
		dma.Queue(mem.Transfer{Src: 0, Dst: 1 << 15, Words: 1 << 14})
		if err := c.LoadImage(im); err != nil {
			b.Fatal(err)
		}
		c.IMem[0] = isa.Word(isa.RFE())
		c.SetPC(uint32(im.Entry))
		if _, err := c.Run(100_000_000); err != nil {
			b.Fatal(err)
		}
		moved += dma.Moved()
		if c.Stats.DMACycles == 0 {
			b.Fatal("DMA consumed no free cycles")
		}
	}
	b.ReportMetric(float64(moved)/float64(b.N), "words-moved/run")
}

// BenchmarkDemandPaging measures kernel fault service: a process that
// touches many fresh pages.
func BenchmarkDemandPaging(b *testing.B) {
	im, _, err := codegen.CompileMIPS(`
program toucher;
var a: array[0..8191] of integer; i: integer;
begin
  i := 0;
  while i < 8192 do begin
    a[i] := i;
    i := i + 512
  end;
  writeint(a[0])
end.
`, codegen.MIPSOptions{StackTop: codegen.KernelStackTop}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := kernel.NewMachine(kernel.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddProcess(im, 16); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		if m.PageFaults() < 8 {
			b.Fatalf("page faults = %d", m.PageFaults())
		}
	}
}

// Ablation benchmarks (DESIGN.md section 5).

func BenchmarkAblationInterlocks(b *testing.B)   { benchExperiment(b, "ablation-interlocks") }
func BenchmarkAblationDelaySchemes(b *testing.B) { benchExperiment(b, "ablation-delayschemes") }
func BenchmarkAblationByteOverhead(b *testing.B) { benchExperiment(b, "ablation-byteoverhead") }

func BenchmarkAblationBoolCross(b *testing.B) { benchExperiment(b, "ablation-boolcross") }

// BenchmarkPageReplacement measures fault service under memory
// pressure: a working set larger than physical memory, so every fault
// evicts a FIFO victim with dirty write-back.
func BenchmarkPageReplacement(b *testing.B) {
	im, _, err := codegen.CompileMIPS(`
program thrash;
var a: array[0..20479] of integer; i, pass: integer;
begin
  for pass := 1 to 2 do begin
    i := 0;
    while i < 20480 do begin
      a[i] := a[i] + i;
      i := i + 512
    end
  end;
  writeint(a[0])
end.
`, codegen.MIPSOptions{StackTop: codegen.KernelStackTop}, reorg.All())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := kernel.NewMachine(kernel.Config{PhysWords: 16 << 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddProcess(im, 16); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(50_000_000); err != nil {
			b.Fatal(err)
		}
		if m.Evictions() == 0 {
			b.Fatal("no evictions under pressure")
		}
	}
}
