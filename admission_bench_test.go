// Warm-fork admission benchmarks: how long a job waits between
// submission and its first retired instruction when the machine is
// cold-booted (kernel init, image load, zeroed memory) versus
// warm-forked copy-on-write from a golden snapshot template. The paper
// thesis in miniature — the fork moves the whole boot out of the
// repeated admission path into one-time template capture.
package mips

import (
	"testing"
	"time"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/reorg"
	"mips/internal/sim"
)

// admissionImage compiles the pipeline workload (fib) for the kernel
// machine — the shape every mipsd job boots.
func admissionImage(tb testing.TB) *isa.Image {
	tb.Helper()
	p, err := corpus.Get("fib")
	if err != nil {
		tb.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{StackTop: codegen.KernelStackTop}, reorg.All())
	if err != nil {
		tb.Fatal(err)
	}
	return im
}

// coldAdmit builds a machine from scratch and retires one instruction:
// admission-to-first-instruction on the cold-boot path.
func coldAdmit(tb testing.TB, im *isa.Image) {
	tb.Helper()
	m, err := sim.New(sim.WithKernel(kernel.Config{}))
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		tb.Fatal(err)
	}
	if _, halted := m.RunSteps(1); halted {
		tb.Fatal("halted on the first instruction")
	}
}

// forkAdmit mints a machine from the template and retires one
// instruction: admission-to-first-instruction on the warm-fork path.
func forkAdmit(tb testing.TB, tpl *sim.Template) {
	tb.Helper()
	f, err := tpl.Fork()
	if err != nil {
		tb.Fatal(err)
	}
	if _, halted := f.RunSteps(1); halted {
		tb.Fatal("halted on the first instruction")
	}
}

// admissionTemplate captures the golden template the fork path admits
// from: the same machine coldAdmit builds, frozen after boot + load.
func admissionTemplate(tb testing.TB, im *isa.Image) *sim.Template {
	tb.Helper()
	master, err := sim.New(sim.WithKernel(kernel.Config{}))
	if err != nil {
		tb.Fatal(err)
	}
	if err := master.Load(im); err != nil {
		tb.Fatal(err)
	}
	tpl, err := sim.NewTemplatePool().Capture("fib", master, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return tpl
}

// BenchmarkAdmissionColdBoot measures admission-to-first-instruction
// latency and jobs/sec for a cold-booted kernel machine.
func BenchmarkAdmissionColdBoot(b *testing.B) {
	im := admissionImage(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldAdmit(b, im)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkAdmissionTemplateFork measures the same quantity for a
// machine warm-forked copy-on-write from a golden template. benchstat
// against BenchmarkAdmissionColdBoot is the headline admission number.
func BenchmarkAdmissionTemplateFork(b *testing.B) {
	tpl := admissionTemplate(b, admissionImage(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forkAdmit(b, tpl)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// TestAdmissionForkSpeedup is the acceptance gate on the admission
// claim: template-fork admission-to-first-instruction latency must be
// at least 10x lower than cold boot on the pipeline workload. Both
// sides take the best of several attempts, so scheduler noise can only
// narrow the measured gap, never fake it.
func TestAdmissionForkSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	if raceEnabled {
		t.Skip("race-detector overhead distorts the wall-clock ratio; the COW correctness side runs under -race in internal/sim")
	}
	im := admissionImage(t)
	tpl := admissionTemplate(t, im)

	best := func(n int, f func()) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min
	}
	// Warm both paths once so one-time costs (kernel image assembly
	// cache) land outside the measurement.
	coldAdmit(t, im)
	forkAdmit(t, tpl)

	cold := best(5, func() { coldAdmit(t, im) })
	fork := best(25, func() { forkAdmit(t, tpl) })
	t.Logf("admission-to-first-instruction: cold boot %v, template fork %v (%.0fx)",
		cold, fork, float64(cold)/float64(fork))
	if fork*10 > cold {
		t.Errorf("template fork admission %v is not 10x below cold boot %v", fork, cold)
	}
}
