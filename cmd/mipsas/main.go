// Command mipsas assembles MIPS assembly through the full tool chain:
// parse, reorganize (schedule, pack, fill branch delays), and assemble
// to a loadable image — the pipeline of paper §4.2.1, which applies to
// "programmer-written assembly language code" as much as compiler
// output.
//
// Usage:
//
//	mipsas [-o out.img] [-none|-noreorg|-nopack|-nodelay] [-list] [-sym] file.s
//
// Flags select reorganizer stages (default: all on). -list prints the
// scheduled program instead of writing an image; -sym prints the symbol
// table (the same table the profiler uses for attribution).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mips/internal/asm"
	"mips/internal/reorg"
)

func main() {
	out := flag.String("o", "a.img", "output image file")
	none := flag.Bool("none", false, "disable all optimizations (no-ops only)")
	noreorg := flag.Bool("noreorg", false, "disable DAG scheduling")
	nopack := flag.Bool("nopack", false, "disable piece packing")
	nodelay := flag.Bool("nodelay", false, "disable branch-delay filling")
	list := flag.Bool("list", false, "print the scheduled program to stdout")
	sym := flag.Bool("sym", false, "print the symbol table to stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mipsas [flags] file.s")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	unit, err := asm.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opt := reorg.All()
	if *noreorg {
		opt.Reorganize = false
	}
	if *nopack {
		opt.Pack = false
	}
	if *nodelay {
		opt.FillDelay = false
	}
	if *none {
		opt = reorg.Options{}
	}
	if unit.TextBase == 0 {
		// Word zero belongs to the exception dispatch; load user code
		// above it (a .text directive overrides).
		unit.TextBase = 16
	}
	ro, st := reorg.Reorganize(unit, opt)
	im, err := asm.Assemble(ro)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mipsas: %d pieces in, %d words out (%d no-ops, %d packed, %d/%d delay slots filled)\n",
		st.InputPieces, st.OutputWords, st.Nops, st.PackedWords, st.DelayFilled, st.DelaySlots)

	if *sym {
		names := make([]string, 0, len(im.Symbols))
		for name := range im.Symbols {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			if im.Symbols[names[i]] != im.Symbols[names[j]] {
				return im.Symbols[names[i]] < im.Symbols[names[j]]
			}
			return names[i] < names[j]
		})
		for _, name := range names {
			fmt.Printf("%6d  %s\n", im.Symbols[name], name)
		}
		if *list {
			fmt.Println()
		}
	}
	if *list {
		for i, w := range im.Words {
			fmt.Printf("%4d: %s\n", int(im.TextBase)+i, w)
		}
	}
	if *list || *sym {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if _, err := im.WriteTo(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsas:", err)
	os.Exit(1)
}
