// Command benchdiff compares two BENCH_core.json artifacts and gates
// on performance regressions.
//
// Usage:
//
//	benchdiff [-threshold PCT] [-q] old.json new.json
//
// It prints a per-benchmark delta table for cycles, nop fraction, and
// free-bandwidth fraction — plus informational (never gated) sections
// for per-tier instruction residency and the trace deopt-reason mix —
// then exits non-zero if any benchmark's cycle count grew by more than
// the threshold (default 2%) or disappeared from the new artifact. The simulator is deterministic, so
// identical code yields byte-identical artifacts and any delta is a
// real behavioral change; CI runs this against the committed baseline
// (scripts/benchgate.sh).
package main

import (
	"flag"
	"fmt"
	"os"

	"mips/internal/tables"
)

func main() {
	threshold := flag.Float64("threshold", 2.0, "max allowed cycle growth in percent")
	quiet := flag.Bool("q", false, "suppress the delta table; print only regressions")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] old.json new.json")
		os.Exit(2)
	}
	old, err := readArtifact(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := readArtifact(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	deltas := tables.DiffCoreBench(old, cur)
	if !*quiet {
		fmt.Println(tables.BenchDiffTable(deltas, *threshold).Render())
		// Informational only: where instructions retired per engine
		// tier and how trace guard exits were distributed. Never gated
		// — but the first place to look when the cycle gate trips.
		res := tables.DiffResidency(old, cur)
		if t := tables.BenchResidencyTable(res); t != nil {
			fmt.Println(t.Render())
		}
		if t := tables.BenchDeoptTable(res); t != nil {
			fmt.Println(t.Render())
		}
	}
	bad := tables.Regressions(deltas, *threshold)
	if len(bad) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmarks within +%.1f%%\n", len(deltas), *threshold)
		return
	}
	for _, d := range bad {
		if d.OnlyOld {
			fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s: missing from %s\n", d.Name, flag.Arg(1))
			continue
		}
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION %s: cycles %d -> %d (%+.2f%% > +%.1f%%)\n",
			d.Name, d.OldCycles, d.NewCycles, d.CyclesPct, *threshold)
	}
	os.Exit(1)
}

func readArtifact(name string) (map[string]tables.CoreBenchEntry, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bench, err := tables.ReadCoreBenchFile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return bench, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
