// Command paperbench regenerates every table and figure of the paper's
// evaluation and prints them with the published values alongside.
//
// Usage:
//
//	paperbench [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// names: table1..table11, figure1..figure4, freecycles, ctxswitch.
package main

import (
	"fmt"
	"os"

	"mips/internal/tables"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[a] = true
	}
	failed := false
	for _, e := range tables.All() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			failed = true
			continue
		}
		fmt.Println(tab.Render())
	}
	if failed {
		os.Exit(1)
	}
}
