// Command paperbench regenerates every table and figure of the paper's
// evaluation and prints them with the published values alongside.
//
// Usage:
//
//	paperbench [-core-json FILE] [-j N] [-serve ADDR] [-engine ENGINE]
//	           [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// names: table1..table11, figure1..figure4, freecycles, ctxswitch,
// ablation-*, corebench.
//
// -j runs the experiments across N workers (0 = one per CPU). The
// experiments are independent simulations, and results are printed in
// paper order regardless of which worker finishes first, so -j changes
// only wall-clock time, never output.
//
// -serve exposes live telemetry over HTTP while the evaluation runs:
// /metrics aggregates every corebench program's registry under an
// `experiment` label alongside the driver's own progress counters, and
// /status reports aggregate rates. After the run the process stays up
// so the final state remains inspectable — Ctrl-C to exit.
//
// The corebench experiment also writes BENCH_core.json (configurable
// with -core-json): a machine-readable per-program record of cycles,
// nops, and free-bandwidth fraction, collected through the metrics
// registry. cmd/benchdiff compares two such artifacts and gates CI on
// regressions.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"mips/internal/sim"
	"mips/internal/tables"
	"mips/internal/telemetry"
	"mips/internal/trace"
)

func main() {
	coreJSON := flag.String("core-json", "BENCH_core.json", "file for the corebench metrics JSON (empty to disable)")
	workers := flag.Int("j", 1, "experiment worker count (0 = one per CPU)")
	serve := flag.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :9417)")
	engineFlag := flag.String("engine", "", "execution engine: reference | fast | blocks | traces (default traces)")
	blocks := flag.Bool("blocks", true, "deprecated: use -engine=fast to disable superblocks")
	flag.Parse()
	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	if engine == sim.Default && !*blocks {
		engine = sim.FastPath // deprecated -blocks=false alias
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	var exps []tables.Experiment
	for _, e := range tables.All() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		exps = append(exps, e)
	}
	runCore := len(want) == 0 || want["corebench"]

	// With -serve, the driver itself reports progress through a
	// registry, and every corebench program's registry is attached as a
	// labeled source the moment its worker starts it.
	var srv *telemetry.Server
	var onDone func(tables.Result)
	var coreSink func(name string, reg *trace.Registry)
	if *serve != "" {
		srv = telemetry.New(telemetry.Config{Program: "paperbench", Args: os.Args[1:], Engine: engine.String()})
		progress := trace.NewRegistry()
		total := progress.Counter("paperbench.experiments_total")
		done := progress.Counter("paperbench.experiments_done")
		failed := progress.Counter("paperbench.experiments_failed")
		progress.Describe("paperbench.experiments_total", "experiments scheduled this run")
		progress.Describe("paperbench.experiments_done", "experiments completed")
		progress.Describe("paperbench.experiments_failed", "experiments that returned an error")
		total.Add(uint64(len(exps)))
		if runCore {
			total.Inc() // corebench runs as one more experiment
		}
		srv.AddSource("paperbench", progress)
		onDone = func(r tables.Result) {
			done.Inc()
			if r.Err != nil {
				failed.Inc()
			}
		}
		coreSink = func(name string, reg *trace.Registry) { srv.AddSource(name, reg) }
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "paperbench: serving live telemetry at %s\n", displayURL(addr))
		defer holdAndClose(srv, displayURL(addr))
	}

	failedRun := false
	for _, r := range tables.RunAllWith(exps, *workers, engine, onDone) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, r.Err)
			failedRun = true
			continue
		}
		fmt.Println(r.Table.Render())
	}
	if runCore {
		err := runCoreBench(*coreJSON, *workers, engine, coreSink)
		if srv != nil {
			onDone(tables.Result{Name: "corebench", Err: err})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "corebench: %v\n", err)
			failedRun = true
		}
	}
	if failedRun {
		os.Exit(1)
	}
}

// runCoreBench runs the corpus once, prints the rendered table, and
// writes the same data machine-readably to jsonName.
func runCoreBench(jsonName string, workers int, engine sim.Engine, sink func(string, *trace.Registry)) error {
	bench, err := tables.CoreBenchRun(workers, engine, sink)
	if err != nil {
		return err
	}
	fmt.Println(tables.CoreBenchTable(bench).Render())
	if jsonName == "" {
		return nil
	}
	f, err := os.Create(jsonName)
	if err != nil {
		return err
	}
	if err := tables.WriteCoreBench(f, bench); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", jsonName)
	return nil
}

// holdAndClose keeps the telemetry server up after the evaluation so
// the final aggregated state stays inspectable, until interrupted.
func holdAndClose(srv *telemetry.Server, url string) {
	fmt.Fprintf(os.Stderr, "paperbench: run complete; telemetry still served at %s — Ctrl-C to exit\n", url)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	cancel()
	srv.Close()
}

// displayURL renders a bound address as a clickable URL, mapping
// wildcard hosts to localhost.
func displayURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}
