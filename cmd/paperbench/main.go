// Command paperbench regenerates every table and figure of the paper's
// evaluation and prints them with the published values alongside.
//
// Usage:
//
//	paperbench [-core-json FILE] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// names: table1..table11, figure1..figure4, freecycles, ctxswitch,
// ablation-*, corebench.
//
// The corebench experiment also writes BENCH_core.json (configurable
// with -core-json): a machine-readable per-program record of cycles,
// nops, and free-bandwidth fraction, collected through the metrics
// registry.
package main

import (
	"flag"
	"fmt"
	"os"

	"mips/internal/tables"
)

func main() {
	coreJSON := flag.String("core-json", "BENCH_core.json", "file for the corebench metrics JSON (empty to disable)")
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	failed := false
	for _, e := range tables.All() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			failed = true
			continue
		}
		fmt.Println(tab.Render())
	}
	if len(want) == 0 || want["corebench"] {
		if err := runCoreBench(*coreJSON); err != nil {
			fmt.Fprintf(os.Stderr, "corebench: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runCoreBench runs the corpus once, prints the rendered table, and
// writes the same data machine-readably to jsonName.
func runCoreBench(jsonName string) error {
	bench, err := tables.CoreBench()
	if err != nil {
		return err
	}
	fmt.Println(tables.CoreBenchTable(bench).Render())
	if jsonName == "" {
		return nil
	}
	f, err := os.Create(jsonName)
	if err != nil {
		return err
	}
	if err := tables.WriteCoreBench(f, bench); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", jsonName)
	return nil
}
