// Command paperbench regenerates every table and figure of the paper's
// evaluation and prints them with the published values alongside.
//
// Usage:
//
//	paperbench [-core-json FILE] [-j N] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// names: table1..table11, figure1..figure4, freecycles, ctxswitch,
// ablation-*, corebench.
//
// -j runs the experiments across N workers (0 = one per CPU). The
// experiments are independent simulations, and results are printed in
// paper order regardless of which worker finishes first, so -j changes
// only wall-clock time, never output.
//
// The corebench experiment also writes BENCH_core.json (configurable
// with -core-json): a machine-readable per-program record of cycles,
// nops, and free-bandwidth fraction, collected through the metrics
// registry.
package main

import (
	"flag"
	"fmt"
	"os"

	"mips/internal/tables"
)

func main() {
	coreJSON := flag.String("core-json", "BENCH_core.json", "file for the corebench metrics JSON (empty to disable)")
	workers := flag.Int("j", 1, "experiment worker count (0 = one per CPU)")
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	var exps []tables.Experiment
	for _, e := range tables.All() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		exps = append(exps, e)
	}
	failed := false
	for _, r := range tables.RunAll(exps, *workers) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, r.Err)
			failed = true
			continue
		}
		fmt.Println(r.Table.Render())
	}
	if len(want) == 0 || want["corebench"] {
		if err := runCoreBench(*coreJSON, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "corebench: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runCoreBench runs the corpus once, prints the rendered table, and
// writes the same data machine-readably to jsonName.
func runCoreBench(jsonName string, workers int) error {
	bench, err := tables.CoreBenchParallel(workers)
	if err != nil {
		return err
	}
	fmt.Println(tables.CoreBenchTable(bench).Render())
	if jsonName == "" {
		return nil
	}
	f, err := os.Create(jsonName)
	if err != nil {
		return err
	}
	if err := tables.WriteCoreBench(f, bench); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paperbench: wrote %s\n", jsonName)
	return nil
}
