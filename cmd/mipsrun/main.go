// Command mipsrun executes a MIPS image on the simulator.
//
// Usage:
//
//	mipsrun [-max N] [-stats] [-kernel] [-timer N]
//	        [-prof] [-trace N] [-trace-json FILE] [-metrics FILE]
//	        image.img ...
//
// By default images run on the bare machine with host-serviced monitor
// calls. With -kernel, each image is loaded as a process of the full
// machine: dispatch ROM, demand paging, and (with -timer) preemptive
// round-robin scheduling.
//
// Observability (package trace):
//
//	-prof            print a flat cycle-attribution profile to stderr
//	-prof-top N      number of hot instruction words in the profile (default 20)
//	-trace N         print the first N executed instructions to stderr
//	-trace-json FILE write the event ring as Chrome trace_event JSON
//	                 (open with Perfetto or chrome://tracing)
//	-trace-buf N     event ring capacity (default 65536)
//	-metrics FILE    write a metrics-registry snapshot as JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mips/internal/codegen"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/trace"
)

func main() {
	maxSteps := flag.Uint64("max", 500_000_000, "step limit")
	stats := flag.Bool("stats", false, "print execution statistics")
	useKernel := flag.Bool("kernel", false, "run under the kernel with demand paging")
	timer := flag.Uint("timer", 0, "timer period in user instructions (0 = off; implies -kernel)")
	traceN := flag.Uint64("trace", 0, "print the first N executed instructions to stderr")
	traceJSON := flag.String("trace-json", "", "write Chrome trace_event JSON to this file")
	traceBuf := flag.Int("trace-buf", trace.DefaultRingCap, "event ring capacity")
	prof := flag.Bool("prof", false, "print a flat cycle-attribution profile to stderr")
	profTop := flag.Int("prof-top", 20, "hot instruction words to list in the profile")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot as JSON to this file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mipsrun [flags] image.img ...")
		os.Exit(2)
	}

	var images []*isa.Image
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		im, err := isa.ReadImage(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		images = append(images, im)
	}

	// Assemble the observer from whatever the flags ask for; obs stays
	// nil (and the simulator hook-free) when no observability is wanted.
	var obs *trace.Observer
	var tracer *trace.Tracer
	var profiler *trace.Profiler
	if *traceN > 0 || *traceJSON != "" {
		tracer = trace.NewTracer(*traceBuf)
		if *traceN > 0 {
			tracer.StreamText(os.Stderr, *traceN)
		}
	}
	if *prof {
		profiler = trace.NewProfiler()
		for _, im := range images {
			profiler.AddImage(im)
		}
	}
	if tracer != nil || profiler != nil {
		obs = &trace.Observer{Tracer: tracer, Profiler: profiler}
	}
	registry := trace.NewRegistry()

	var st *cpu.Stats
	if *useKernel || *timer > 0 || len(images) > 1 {
		m, err := kernel.NewMachine(kernel.Config{TimerPeriod: uint32(*timer)})
		if err != nil {
			fatal(err)
		}
		if obs != nil {
			obs.AttachMachine(m)
		}
		trace.RegisterMachine(registry, m)
		for i, im := range images {
			if _, err := m.AddProcess(im, 16); err != nil {
				fatal(fmt.Errorf("%s: %w", flag.Arg(i), err))
			}
		}
		if _, err := m.Run(*maxSteps); err != nil {
			fatal(err)
		}
		fmt.Print(m.ConsoleOutput())
		st = &m.CPU.Stats
	} else {
		res, err := codegen.RunMIPSWith(images[0], *maxSteps, codegen.RunOptions{
			Attach: func(c *cpu.CPU) {
				if obs != nil {
					obs.Attach(c)
				}
				trace.RegisterCPUStats(registry, "cpu.", &c.Stats)
			},
		})
		fmt.Print(res.Output)
		if err != nil {
			fatal(err)
		}
		st = &res.Stats
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "mipsrun: %s\n", st)
	}
	if profiler != nil {
		if err := profiler.WriteReport(os.Stderr, *profTop); err != nil {
			fatal(err)
		}
	}
	if tracer != nil && *traceJSON != "" {
		if err := writeFile(*traceJSON, tracer.WriteChromeJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipsrun: wrote %d trace events to %s (%d dropped)\n",
			tracer.Ring().Len(), *traceJSON, tracer.Ring().Dropped())
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, registry.Snapshot().WriteJSON); err != nil {
			fatal(err)
		}
	}
}

func writeFile(name string, write func(w io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsrun:", err)
	os.Exit(1)
}
