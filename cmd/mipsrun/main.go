// Command mipsrun executes a MIPS image on the simulator.
//
// Usage:
//
//	mipsrun [-max N] [-stats] [-kernel] [-timer N] [-engine ENGINE]
//	        [-prof] [-trace N] [-trace-json FILE] [-metrics FILE]
//	        [-flame FILE] [-serve ADDR] [-corpus NAME]
//	        image.img ...
//
// By default images run on the bare machine with host-serviced monitor
// calls. With -kernel, each image is loaded as a process of the full
// machine: dispatch ROM, demand paging, and (with -timer) preemptive
// round-robin scheduling. -corpus NAME compiles and runs the named
// built-in corpus program instead of reading image files.
//
// -engine selects the execution engine: reference (the interpreter),
// fast (the per-instruction predecoded path), blocks (the superblock
// translation engine), or traces (the trace JIT tier layered on the
// superblock engine, the default). The engines are observably
// identical; the choice changes only simulation speed. The old
// -reference and -blocks flags remain as deprecated aliases.
//
// Observability (packages trace and telemetry):
//
//	-prof            print a flat cycle-attribution profile to stderr
//	-prof-top N      number of hot instruction words in the profile (default 20)
//	-trace N         print the first N executed instructions to stderr
//	-trace-json FILE write the event ring as Chrome trace_event JSON
//	                 (open with Perfetto or chrome://tracing)
//	-trace-buf N     event ring capacity (default 65536)
//	-metrics FILE    write a metrics-registry snapshot as JSON
//	-flame FILE      write the profile as folded-stack flamegraph text
//	-serve ADDR      serve live telemetry over HTTP while the program
//	                 runs (/metrics, /trace/stream, /profile/flame,
//	                 /profile/top, /status); after the run the process
//	                 stays up so the final state remains inspectable —
//	                 Ctrl-C to exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/telemetry"
	"mips/internal/trace"
)

func main() {
	maxSteps := flag.Uint64("max", 500_000_000, "step limit")
	stats := flag.Bool("stats", false, "print execution statistics")
	useKernel := flag.Bool("kernel", false, "run under the kernel with demand paging")
	timer := flag.Uint("timer", 0, "timer period in user instructions (0 = off; implies -kernel)")
	engineFlag := flag.String("engine", "", "execution engine: reference | fast | blocks | traces (default traces)")
	reference := flag.Bool("reference", false, "deprecated: use -engine=reference")
	blocks := flag.Bool("blocks", true, "deprecated: use -engine=fast to disable superblocks")
	traceN := flag.Uint64("trace", 0, "print the first N executed instructions to stderr")
	traceJSON := flag.String("trace-json", "", "write Chrome trace_event JSON to this file")
	traceBuf := flag.Int("trace-buf", trace.DefaultRingCap, "event ring capacity")
	prof := flag.Bool("prof", false, "print a flat cycle-attribution profile to stderr")
	profTop := flag.Int("prof-top", 20, "hot instruction words to list in the profile")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot as JSON to this file")
	flameOut := flag.String("flame", "", "write a folded-stack flamegraph to this file (implies profiling)")
	serve := flag.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :9417)")
	corpusName := flag.String("corpus", "", "run the named built-in corpus program instead of image files")
	flag.Parse()
	if (flag.NArg() == 0) == (*corpusName == "") {
		fmt.Fprintln(os.Stderr, "usage: mipsrun [flags] image.img ...  |  mipsrun [flags] -corpus NAME")
		os.Exit(2)
	}
	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	if engine == sim.Default {
		// Honor the deprecated boolean knobs when -engine is absent.
		switch {
		case *reference:
			engine = sim.Reference
		case !*blocks:
			engine = sim.FastPath
		default:
			engine = sim.Traces
		}
	}

	var images []*isa.Image
	var imageNames []string
	if *corpusName != "" {
		p, err := corpus.Get(*corpusName)
		if err != nil {
			fatal(err)
		}
		mopt := codegen.MIPSOptions{}
		if *useKernel || *timer > 0 {
			mopt.StackTop = codegen.KernelStackTop
		}
		im, _, err := codegen.CompileMIPS(p.Source, mopt, reorg.All())
		if err != nil {
			fatal(fmt.Errorf("corpus %s: %w", *corpusName, err))
		}
		images = append(images, im)
		imageNames = append(imageNames, *corpusName)
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		im, err := isa.ReadImage(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		images = append(images, im)
		imageNames = append(imageNames, name)
	}

	// Assemble the observer from whatever the flags ask for; obs stays
	// nil (and the simulator hook-free) when no observability is wanted.
	// A live server implies a tracer (it backs /trace/stream) and keeps
	// whatever profiler the flags created.
	var obs *trace.Observer
	var tracer *trace.Tracer
	var profiler *trace.Profiler
	if *traceN > 0 || *traceJSON != "" || *serve != "" {
		tracer = trace.NewTracer(*traceBuf)
		if *traceN > 0 {
			tracer.StreamText(os.Stderr, *traceN)
		}
	}
	if *prof || *flameOut != "" {
		profiler = trace.NewProfiler()
		for _, im := range images {
			profiler.AddImage(im)
		}
	}
	if tracer != nil || profiler != nil {
		obs = &trace.Observer{Tracer: tracer, Profiler: profiler}
	}
	registry := trace.NewRegistry()

	var srv *telemetry.Server
	var liveURL string
	if *serve != "" {
		srv = telemetry.New(telemetry.Config{
			Program: "mipsrun", Args: os.Args[1:], Engine: engine.String(),
			Tracer: tracer, Profiler: profiler,
		})
		srv.AddSource("", registry)
		addr, err := srv.Start(*serve)
		if err != nil {
			fatal(err)
		}
		liveURL = displayURL(addr)
		fmt.Fprintf(os.Stderr, "mipsrun: serving live telemetry at %s (metrics, trace/stream, profile/flame, profile/top, status)\n", liveURL)
	}

	opts := []sim.Option{sim.WithEngine(engine), sim.WithTelemetry(registry)}
	if obs != nil {
		opts = append(opts, sim.WithObserver(obs))
	}
	if *useKernel || *timer > 0 || len(images) > 1 {
		opts = append(opts, sim.WithKernel(kernel.Config{TimerPeriod: uint32(*timer)}))
	}
	m, err := sim.New(opts...)
	if err != nil {
		fatal(err)
	}
	for i, im := range images {
		if err := m.Load(im); err != nil {
			fatal(fmt.Errorf("%s: %w", imageNames[i], err))
		}
	}
	_, err = m.Run(*maxSteps)
	fmt.Print(m.Output())
	if err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "mipsrun: %s\n", m.Stats())
		fmt.Fprintf(os.Stderr, "mipsrun: %s\n", m.Trans())
	}
	if profiler != nil && *prof {
		if err := profiler.WriteReport(os.Stderr, *profTop); err != nil {
			fatal(err)
		}
		if srv != nil {
			fmt.Fprintf(os.Stderr, "mipsrun: profile also live at %s/profile/flame and %s/profile/top\n", liveURL, liveURL)
		}
	}
	if profiler != nil && *flameOut != "" {
		if err := writeFile(*flameOut, func(w io.Writer) error {
			return telemetry.WriteFolded(w, profiler)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipsrun: wrote folded flamegraph to %s\n", *flameOut)
	}
	if tracer != nil && *traceJSON != "" {
		if err := writeFile(*traceJSON, tracer.WriteChromeJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipsrun: wrote %d trace events to %s (%d dropped)\n",
			tracer.Ring().Len(), *traceJSON, tracer.Ring().Dropped())
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, registry.Snapshot().WriteJSON); err != nil {
			fatal(err)
		}
		if srv != nil {
			fmt.Fprintf(os.Stderr, "mipsrun: metrics also live at %s/metrics (Prometheus exposition)\n", liveURL)
		}
	}

	if srv != nil {
		fmt.Fprintf(os.Stderr, "mipsrun: run complete; telemetry still served at %s — Ctrl-C to exit\n", liveURL)
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		<-ctx.Done()
		cancel()
		srv.Close()
	}
}

// displayURL renders a bound address as a clickable URL, mapping
// wildcard hosts to localhost.
func displayURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func writeFile(name string, write func(w io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsrun:", err)
	os.Exit(1)
}
