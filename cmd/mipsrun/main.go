// Command mipsrun executes a MIPS image on the simulator.
//
// Usage:
//
//	mipsrun [-max N] [-stats] [-kernel] [-timer N] [-engine ENGINE]
//	        [-prof] [-trace N] [-trace-json FILE] [-metrics FILE]
//	        [-flame FILE] [-serve ADDR] [-corpus NAME]
//	        image.img ...
//
// By default images run on the bare machine with host-serviced monitor
// calls. With -kernel, each image is loaded as a process of the full
// machine: dispatch ROM, demand paging, and (with -timer) preemptive
// round-robin scheduling. -corpus NAME compiles and runs the named
// built-in corpus program instead of reading image files.
//
// -engine selects the execution engine: reference (the interpreter),
// fast (the per-instruction predecoded path), blocks (the superblock
// translation engine), or traces (the trace JIT tier layered on the
// superblock engine, the default). The engines are observably
// identical; the choice changes only simulation speed. The old
// -reference and -blocks flags remain as deprecated aliases.
//
// Observability (packages trace and telemetry):
//
//	-prof            print a flat cycle-attribution profile to stderr
//	-prof-top N      number of hot instruction words in the profile (default 20)
//	-trace N         print the first N executed instructions to stderr
//	-trace-json FILE write the event ring as Chrome trace_event JSON
//	                 (open with Perfetto or chrome://tracing)
//	-trace-buf N     event ring capacity (default 65536)
//	-metrics FILE    write a metrics-registry snapshot as JSON
//	-flame FILE      write the profile as folded-stack flamegraph text
//	-jitlog FILE     record the trace-JIT event log (formation, guard
//	                 exits by deopt reason, invalidations) and write it
//	                 as JSON lines; a per-reason summary prints to stderr
//	-jitlog-chrome FILE
//	                 write the JIT event log as Chrome trace_event JSON
//	-jitlog-buf N    JIT event ring capacity (default 4096; oldest
//	                 events are dropped and counted beyond it)
//	-serve ADDR      serve live telemetry over HTTP while the program
//	                 runs (/metrics, /trace/stream, /profile/flame,
//	                 /profile/top, /status — plus /jit/traces,
//	                 /jit/events and /trace/stream?source=jit with
//	                 -jitlog); after the run the process stays up so the
//	                 final state remains inspectable — Ctrl-C to exit.
//	                 With -jitlog the server does not imply the
//	                 per-instruction tracer (its step hook would force
//	                 per-instruction execution and starve the trace
//	                 tier); pass -trace-json explicitly to get both
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/telemetry"
	"mips/internal/trace"
)

func main() {
	maxSteps := flag.Uint64("max", 500_000_000, "step limit")
	stats := flag.Bool("stats", false, "print execution statistics")
	useKernel := flag.Bool("kernel", false, "run under the kernel with demand paging")
	timer := flag.Uint("timer", 0, "timer period in user instructions (0 = off; implies -kernel)")
	engineFlag := flag.String("engine", "", "execution engine: reference | fast | blocks | traces (default traces)")
	reference := flag.Bool("reference", false, "deprecated: use -engine=reference")
	blocks := flag.Bool("blocks", true, "deprecated: use -engine=fast to disable superblocks")
	traceN := flag.Uint64("trace", 0, "print the first N executed instructions to stderr")
	traceJSON := flag.String("trace-json", "", "write Chrome trace_event JSON to this file")
	traceBuf := flag.Int("trace-buf", trace.DefaultRingCap, "event ring capacity")
	prof := flag.Bool("prof", false, "print a flat cycle-attribution profile to stderr")
	profTop := flag.Int("prof-top", 20, "hot instruction words to list in the profile")
	metricsOut := flag.String("metrics", "", "write a metrics snapshot as JSON to this file")
	flameOut := flag.String("flame", "", "write a folded-stack flamegraph to this file (implies profiling)")
	jitlogOut := flag.String("jitlog", "", "write the trace-JIT event log as JSON lines to this file")
	jitlogChrome := flag.String("jitlog-chrome", "", "write the trace-JIT event log as Chrome trace_event JSON to this file")
	jitlogBuf := flag.Int("jitlog-buf", trace.DefaultJITLogSize, "JIT event ring capacity")
	serve := flag.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :9417)")
	corpusName := flag.String("corpus", "", "run the named built-in corpus program instead of image files")
	flag.Parse()
	if (flag.NArg() == 0) == (*corpusName == "") {
		fmt.Fprintln(os.Stderr, "usage: mipsrun [flags] image.img ...  |  mipsrun [flags] -corpus NAME")
		os.Exit(2)
	}
	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	if engine == sim.Default {
		// Honor the deprecated boolean knobs when -engine is absent.
		switch {
		case *reference:
			engine = sim.Reference
		case !*blocks:
			engine = sim.FastPath
		default:
			engine = sim.Traces
		}
	}

	var images []*isa.Image
	var imageNames []string
	if *corpusName != "" {
		p, err := corpus.Get(*corpusName)
		if err != nil {
			fatal(err)
		}
		mopt := codegen.MIPSOptions{}
		if *useKernel || *timer > 0 {
			mopt.StackTop = codegen.KernelStackTop
		}
		im, _, err := codegen.CompileMIPS(p.Source, mopt, reorg.All())
		if err != nil {
			fatal(fmt.Errorf("corpus %s: %w", *corpusName, err))
		}
		images = append(images, im)
		imageNames = append(imageNames, *corpusName)
	}
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		im, err := isa.ReadImage(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		images = append(images, im)
		imageNames = append(imageNames, name)
	}

	// Assemble the observer from whatever the flags ask for; obs stays
	// nil (and the simulator hook-free) when no observability is wanted.
	// A live server implies a tracer (it backs /trace/stream) and keeps
	// whatever profiler the flags created — unless a jitlog was asked
	// for: the implied tracer's step hook forces per-instruction
	// execution, which would starve the trace tier the jitlog exists
	// to observe. Explicit -trace/-trace-json still wins.
	jitIntrospect := *jitlogOut != "" || *jitlogChrome != ""
	var obs *trace.Observer
	var tracer *trace.Tracer
	var profiler *trace.Profiler
	if *traceN > 0 || *traceJSON != "" || (*serve != "" && !jitIntrospect) {
		tracer = trace.NewTracer(*traceBuf)
		if *traceN > 0 {
			tracer.StreamText(os.Stderr, *traceN)
		}
	}
	if *prof || *flameOut != "" {
		profiler = trace.NewProfiler()
		for _, im := range images {
			profiler.AddImage(im)
		}
	}
	if tracer != nil || profiler != nil {
		obs = &trace.Observer{Tracer: tracer, Profiler: profiler}
	}
	registry := trace.NewRegistry()

	// The JIT event log rides along whenever a jitlog export is asked
	// for; with -serve it also backs /jit/events, /jit/traces and the
	// jit SSE source. The machine pointer is published after build so
	// live /jit/traces reads are well ordered.
	var jitLog *trace.JITLog
	var liveMachine atomic.Pointer[sim.Machine]
	if *jitlogOut != "" || *jitlogChrome != "" {
		jitLog = trace.NewJITLog(*jitlogBuf)
	}

	var srv *telemetry.Server
	var liveURL string
	if *serve != "" {
		cfg := telemetry.Config{
			Program: "mipsrun", Args: os.Args[1:], Engine: engine.String(),
			Tracer: tracer, Profiler: profiler,
		}
		if jitLog != nil {
			cfg.JIT = jitLog
			cfg.JITSites = telemetry.SingleJITSites("machine", func() trace.JITSites {
				m := liveMachine.Load()
				if m == nil {
					return trace.JITSites{}
				}
				return trace.CollectJITSites(m.CPU(), profiler)
			})
		}
		srv = telemetry.New(cfg)
		srv.AddSource("", registry)
		addr, err := srv.Start(*serve)
		if err != nil {
			fatal(err)
		}
		liveURL = displayURL(addr)
		fmt.Fprintf(os.Stderr, "mipsrun: serving live telemetry at %s (metrics, trace/stream, profile/flame, profile/top, status)\n", liveURL)
	}

	opts := []sim.Option{sim.WithEngine(engine), sim.WithTelemetry(registry)}
	if obs != nil {
		opts = append(opts, sim.WithObserver(obs))
	}
	if jitLog != nil {
		shareTraces := srv != nil
		opts = append(opts, sim.WithAttach(func(c *cpu.CPU) {
			jitLog.Attach(c)
			if shareTraces {
				// /jit/traces reads the live trace/block caches while
				// the machine runs; share their structural mutations.
				c.ShareTraces()
			}
		}))
	}
	if *useKernel || *timer > 0 || len(images) > 1 {
		opts = append(opts, sim.WithKernel(kernel.Config{TimerPeriod: uint32(*timer)}))
	}
	m, err := sim.New(opts...)
	if err != nil {
		fatal(err)
	}
	liveMachine.Store(m)
	for i, im := range images {
		if err := m.Load(im); err != nil {
			fatal(fmt.Errorf("%s: %w", imageNames[i], err))
		}
	}
	_, err = m.Run(*maxSteps)
	fmt.Print(m.Output())
	if err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "mipsrun: %s\n", m.Stats())
		fmt.Fprintf(os.Stderr, "mipsrun: %s\n", m.Trans())
	}
	if profiler != nil && *prof {
		if err := profiler.WriteReport(os.Stderr, *profTop); err != nil {
			fatal(err)
		}
		if srv != nil {
			fmt.Fprintf(os.Stderr, "mipsrun: profile also live at %s/profile/flame and %s/profile/top\n", liveURL, liveURL)
		}
	}
	if profiler != nil && *flameOut != "" {
		if err := writeFile(*flameOut, func(w io.Writer) error {
			return telemetry.WriteFolded(w, profiler)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipsrun: wrote folded flamegraph to %s\n", *flameOut)
	}
	if tracer != nil && *traceJSON != "" {
		if err := writeFile(*traceJSON, tracer.WriteChromeJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipsrun: wrote %d trace events to %s (%d dropped)\n",
			tracer.Ring().Len(), *traceJSON, tracer.Ring().Dropped())
	}
	if jitLog != nil {
		if *jitlogOut != "" {
			if err := writeFile(*jitlogOut, jitLog.WriteJSONL); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mipsrun: wrote %d jit events to %s (%d dropped from the ring)\n",
				jitLog.Len(), *jitlogOut, jitLog.Dropped())
		}
		if *jitlogChrome != "" {
			if err := writeFile(*jitlogChrome, jitLog.WriteChromeJSON); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mipsrun: wrote jit Chrome trace to %s\n", *jitlogChrome)
		}
		printDeoptSummary(os.Stderr, m.Trans())
		if srv != nil {
			fmt.Fprintf(os.Stderr, "mipsrun: jit introspection also live at %s/jit/traces and %s/jit/events\n", liveURL, liveURL)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, registry.Snapshot().WriteJSON); err != nil {
			fatal(err)
		}
		if srv != nil {
			fmt.Fprintf(os.Stderr, "mipsrun: metrics also live at %s/metrics (Prometheus exposition)\n", liveURL)
		}
	}

	if srv != nil {
		fmt.Fprintf(os.Stderr, "mipsrun: run complete; telemetry still served at %s — Ctrl-C to exit\n", liveURL)
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		<-ctx.Done()
		cancel()
		srv.Close()
	}
}

// printDeoptSummary prints the guard-exit taxonomy hottest-first, so
// `mipsrun -jitlog` answers "why does this program leave its traces"
// without opening the log.
func printDeoptSummary(w io.Writer, ts *cpu.TranslationStats) {
	if ts.TraceGuardExits == 0 {
		fmt.Fprintln(w, "mipsrun: jit deopts: none (every trace dispatch ran to completion)")
		return
	}
	type row struct {
		reason cpu.DeoptReason
		n      uint64
	}
	rows := make([]row, 0, cpu.NumDeoptReasons)
	for r := cpu.DeoptReason(0); r < cpu.NumDeoptReasons; r++ {
		if ts.TraceDeopts[r] > 0 {
			rows = append(rows, row{r, ts.TraceDeopts[r]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Fprintf(w, "mipsrun: jit deopts (%d guard exits):", ts.TraceGuardExits)
	for _, r := range rows {
		fmt.Fprintf(w, " %s=%d", r.reason, r.n)
	}
	fmt.Fprintln(w)
}

// displayURL renders a bound address as a clickable URL, mapping
// wildcard hosts to localhost.
func displayURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func writeFile(name string, write func(w io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsrun:", err)
	os.Exit(1)
}
