// Command mipsrun executes a MIPS image on the simulator.
//
// Usage:
//
//	mipsrun [-max N] [-stats] [-kernel] [-timer N] image.img ...
//
// By default images run on the bare machine with host-serviced monitor
// calls. With -kernel, each image is loaded as a process of the full
// machine: dispatch ROM, demand paging, and (with -timer) preemptive
// round-robin scheduling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mips/internal/codegen"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/mem"
)

func main() {
	maxSteps := flag.Uint64("max", 500_000_000, "step limit")
	stats := flag.Bool("stats", false, "print execution statistics")
	useKernel := flag.Bool("kernel", false, "run under the kernel with demand paging")
	timer := flag.Uint("timer", 0, "timer period in user instructions (0 = off; implies -kernel)")
	trace := flag.Uint64("trace", 0, "print the first N executed instructions to stderr")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mipsrun [flags] image.img ...")
		os.Exit(2)
	}

	var images []*isa.Image
	for _, name := range flag.Args() {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		im, err := isa.ReadImage(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		images = append(images, im)
	}

	if *useKernel || *timer > 0 || len(images) > 1 {
		m, err := kernel.NewMachine(kernel.Config{TimerPeriod: uint32(*timer)})
		if err != nil {
			fatal(err)
		}
		attachTrace(m.CPU, *trace)
		for i, im := range images {
			if _, err := m.AddProcess(im, 16); err != nil {
				fatal(fmt.Errorf("%s: %w", flag.Arg(i), err))
			}
		}
		if _, err := m.Run(*maxSteps); err != nil {
			fatal(err)
		}
		fmt.Print(m.ConsoleOutput())
		if *stats {
			fmt.Fprintf(os.Stderr, "mipsrun: %s\n", &m.CPU.Stats)
			fmt.Fprintf(os.Stderr, "mipsrun: %d page faults, %d context switches, %d resident pages\n",
				m.PageFaults(), m.ContextSwitches(), m.ResidentPages())
		}
		return
	}

	res, err := runBareTraced(images[0], *maxSteps, *trace)
	fmt.Print(res.Output)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "mipsrun: %s\n", &res.Stats)
	}
}

// runBareTraced is RunMIPS with an optional instruction trace.
func runBareTraced(im *isa.Image, maxSteps, trace uint64) (codegen.RunResult, error) {
	if trace == 0 {
		return codegen.RunMIPS(im, maxSteps)
	}
	// Rebuild the bare machine by hand so the tracer can attach.
	phys := mem.NewPhysical(1 << 16)
	c := cpu.New(cpu.NewBus(phys))
	var res codegen.RunResult
	var out strings.Builder
	c.SetTrapHook(func(code uint16) {
		switch code {
		case 0:
			c.Halt()
		case 1:
			out.WriteByte(byte(c.Regs[1]))
		case 2:
			fmt.Fprintf(&out, "%d\n", int32(c.Regs[1]))
		}
	})
	attachTrace(c, trace)
	if err := c.LoadImage(im); err != nil {
		return res, err
	}
	c.IMem[0] = isa.Word(isa.RFE())
	c.SetPC(uint32(im.Entry))
	_, err := c.Run(maxSteps)
	res.Output = out.String()
	res.Stats = c.Stats
	return res, err
}

func attachTrace(c *cpu.CPU, n uint64) {
	if n == 0 {
		return
	}
	var count uint64
	c.SetStepHook(func(pc uint32, in isa.Instr) {
		if count < n {
			fmt.Fprintf(os.Stderr, "%8d  pc=%-6d %s\n", count, pc, in)
		}
		count++
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsrun:", err)
	os.Exit(1)
}
