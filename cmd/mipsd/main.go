// Command mipsd serves the concurrent simulation job service over HTTP.
//
// Usage:
//
//	mipsd [-addr :9418] [-workers N] [-queue N] [-quantum N] [-max N]
//	      [-engine ENGINE]
//
// mipsd runs many simulations at once on a bounded worker pool. Jobs
// are submitted over HTTP and preempted at checkpoint boundaries every
// -quantum scheduler steps, so a handful of workers makes fair progress
// across hundreds of queued machines. Clients may download a live
// snapshot of any running job and resubmit it later — to the same
// daemon, a different one, or a different engine.
//
//	POST /jobs               submit ({"program": "sieve"} or {"snapshot": base64})
//	GET  /jobs               list job statuses
//	GET  /jobs/{id}          one job's status
//	GET  /jobs/{id}/output   console output (terminal states)
//	GET  /jobs/{id}/snapshot checkpoint download (binary, resumable)
//	POST /jobs/{id}/cancel   request cancellation
//
// Submittable programs are the built-in corpus; the telemetry surface
// (/metrics, /status) serves the job service's own counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/isa"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/telemetry"
	"mips/internal/trace"
)

func main() {
	addr := flag.String("addr", ":9418", "HTTP listen address")
	workers := flag.Int("workers", 0, "simulation worker count (0 = one per CPU)")
	queue := flag.Int("queue", 256, "job queue depth (admission bound)")
	quantum := flag.Uint64("quantum", 1_000_000, "preemption quantum in scheduler steps")
	maxSteps := flag.Uint64("max", 500_000_000, "default per-job step budget")
	engineFlag := flag.String("engine", "", "default execution engine: reference | fast | blocks")
	drainWait := flag.Duration("drain", 10*time.Second, "graceful-drain bound on shutdown")
	flag.Parse()
	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	sim.SetDefault(engine)

	metrics := trace.NewRegistry()
	svc := sim.NewService(sim.ServiceConfig{
		Workers:         *workers,
		QueueDepth:      *queue,
		Quantum:         *quantum,
		DefaultMaxSteps: *maxSteps,
		Metrics:         metrics,
	})

	srv := telemetry.New(telemetry.Config{
		Program: "mipsd", Args: os.Args[1:], Engine: engine.String(),
	})
	srv.AddSource("", metrics)
	handler := svc.Handler(sim.HTTPConfig{Programs: corpusPrograms()})
	srv.Mount("/jobs", handler)
	srv.Mount("/jobs/", handler)

	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mipsd: serving simulation jobs at %s (POST /jobs, GET /jobs/{id}, /metrics, /status)\n", displayURL(bound))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	cancel()
	fmt.Fprintln(os.Stderr, "mipsd: draining...")
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainWait)
	svc.Drain(drainCtx)
	cancelDrain()
	svc.Close()
	srv.Close()
}

// corpusPrograms exposes every built-in corpus program to the job
// service, compiled on demand for the requested machine layout.
func corpusPrograms() map[string]sim.ProgramFunc {
	progs := map[string]sim.ProgramFunc{}
	for _, p := range corpus.All() {
		p := p
		progs[p.Name] = func(kernelTarget bool) (*isa.Image, error) {
			mopt := codegen.MIPSOptions{}
			if kernelTarget {
				mopt.StackTop = codegen.KernelStackTop
			}
			im, _, err := codegen.CompileMIPS(p.Source, mopt, reorg.All())
			return im, err
		}
	}
	return progs
}

// displayURL renders a bound address as a clickable URL, mapping
// wildcard hosts to localhost.
func displayURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsd:", err)
	os.Exit(1)
}
