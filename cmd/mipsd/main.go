// Command mipsd serves the concurrent simulation job service over HTTP.
//
// Usage:
//
//	mipsd [-addr :9418] [-workers N] [-queue N] [-quantum N] [-max N]
//	      [-engine ENGINE] [-peers URL,URL]
//
// mipsd runs many simulations at once on a bounded worker pool. Jobs
// are submitted over HTTP and preempted at checkpoint boundaries every
// -quantum scheduler steps, so a handful of workers makes fair progress
// across hundreds of queued machines. Clients may download a live
// snapshot of any running job and resubmit it later — to the same
// daemon, a different one, or a different engine.
//
// The job API is versioned under /v1. Jobs cold-boot from a corpus
// program or a snapshot upload, or warm-fork from a named template — a
// golden snapshot held pre-decoded so admission costs O(pages-touched)
// copy-on-write work instead of a full boot:
//
//	POST   /v1/jobs               submit ({"program": "sieve"},
//	                              {"snapshot": base64}, or
//	                              {"template": "name"}; optional
//	                              tenant/profile/trace fields)
//	GET    /v1/jobs               list jobs (?state=, ?limit=, ?after=)
//	GET    /v1/jobs/{id}          one job's status
//	GET    /v1/jobs/{id}/output   console output (terminal states)
//	GET    /v1/jobs/{id}/profile  folded cycle stacks (profile: true jobs)
//	GET    /v1/jobs/{id}/snapshot checkpoint download (binary, resumable)
//	POST   /v1/jobs/{id}/cancel   request cancellation
//	PUT    /v1/templates/{name}   create a template from a program or
//	                              snapshot (optional warmup_steps)
//	GET    /v1/templates          list templates
//	GET    /v1/templates/{name}   template metadata
//	DELETE /v1/templates/{name}   remove a template
//
// Errors are a JSON envelope {"error": "...", "code": "..."} with
// machine-readable codes (queue_full, closed, not_found, bad_spec,
// template_missing). The unversioned /jobs paths remain as aliases for
// one release and will be removed; new clients should use /v1.
//
// Submittable programs are the built-in corpus; the telemetry surface
// serves the job service's counters plus the fleet rollup:
//
//	GET  /metrics                     Prometheus exposition: jobs.* and
//	                                  xlate.* counters, per-tenant
//	                                  latency/rate quantiles, SSE drops;
//	                                  federated peers merge in with a
//	                                  worker="host:port" label
//	GET  /profile/flame?scope=fleet   merged flamegraph of every profiled
//	                                  job (and federated peers)
//	GET  /trace/stream?sample=K       SSE tail of K traced jobs
//	GET  /trace/stream?source=jit     SSE tail of the shared JIT event log
//	GET  /jit/traces                  per-job tier heatmap: live trace and
//	                                  superblock sites with deopt reasons
//	GET  /jit/events                  the shared JIT event log's retained
//	                                  window (JSON)
//	GET  /fleet/peers                 list federated peers
//	POST /fleet/peers                 add a peer ({"url": "host:port"})
//	DELETE /fleet/peers?url=...       remove a peer
//
// A worker is a plain mipsd; a coordinator is a mipsd started with
// -peers (or taught its peers via POST /fleet/peers) whose /metrics and
// fleet flamegraph scrape and merge every peer on each request.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/isa"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/telemetry"
	"mips/internal/telemetry/fleet"
	"mips/internal/trace"
)

func main() {
	addr := flag.String("addr", ":9418", "HTTP listen address")
	workers := flag.Int("workers", 0, "simulation worker count (0 = one per CPU)")
	queue := flag.Int("queue", 256, "job queue depth (admission bound)")
	quantum := flag.Uint64("quantum", 1_000_000, "preemption quantum in scheduler steps")
	maxSteps := flag.Uint64("max", 500_000_000, "default per-job step budget")
	engineFlag := flag.String("engine", "", "default execution engine: reference | fast | blocks")
	peersFlag := flag.String("peers", "", "comma-separated peer mipsd URLs to federate (coordinator mode)")
	drainWait := flag.Duration("drain", 10*time.Second, "graceful-drain bound on shutdown")
	jitlogBuf := flag.Int("jitlog-buf", trace.DefaultJITLogSize, "shared JIT event ring capacity")
	flag.Parse()
	engine, err := sim.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	sim.SetDefault(engine)

	// Fleet observability: terminal jobs roll into sharded per-tenant
	// sketches, traced jobs register as sampled-SSE sources, and -peers
	// turns this daemon into a coordinator that merges peer scrapes.
	rollup := fleet.NewRollup(fleet.DefaultRollupShards)
	directory := fleet.NewDirectory()
	fed := fleet.NewFederation(fleet.DefaultScrapeTimeout)
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if _, err := fed.AddPeer(p); err != nil {
				fatal(err)
			}
		}
	}

	metrics := trace.NewRegistry()
	// One shared JIT event log observes every job's trace-JIT lifecycle;
	// /jit/events serves its retained window and ?source=jit tails it.
	jitLog := trace.NewJITLog(*jitlogBuf)
	svc := sim.NewService(sim.ServiceConfig{
		Workers:         *workers,
		QueueDepth:      *queue,
		Quantum:         *quantum,
		DefaultMaxSteps: *maxSteps,
		Metrics:         metrics,
		Tracers:         directory,
		JIT:             jitLog,
		OnJobTerminal: func(s sim.JobSample) {
			rollup.Observe(fleet.JobSample{
				Tenant:           s.Tenant,
				Engine:           s.Engine,
				Outcome:          s.Outcome,
				LatencySeconds:   s.LatencySeconds,
				AdmissionSeconds: s.AdmissionSeconds,
				InstrsPerSec:     s.InstrsPerSec,
				Instructions:     s.Instructions,
				Preempts:         s.Preempts,
				Counters:         s.Counters,
			})
		},
	})

	srv := telemetry.New(telemetry.Config{
		Program: "mipsd", Args: os.Args[1:], Engine: engine.String(),
		Sampler:  directory,
		JIT:      jitLog,
		JITSites: svc.FleetJITSites,
	})
	srv.AddSource("", metrics)
	srv.AddCollector(rollup.WriteExposition)
	srv.AddCollector(func(w io.Writer) error { return writeTenantActive(w, svc) })
	srv.SetMetricsBody(func(w io.Writer) error {
		return fed.WriteMergedMetrics(w, srv.RenderLocalMetrics)
	})
	srv.SetFleetFolded(func(w io.Writer) error {
		merged, _ := fed.MergedFolded(svc.FleetFolded())
		return fleet.WriteFolded(w, merged)
	})
	templates := sim.NewTemplatePool()
	handler := svc.Handler(sim.HTTPConfig{Programs: corpusPrograms(), Templates: templates})
	srv.Mount("/v1/", handler)
	srv.Mount("/jobs", handler) // legacy unversioned aliases (one release)
	srv.Mount("/jobs/", handler)
	srv.Mount("/fleet/peers", fed.Handler())

	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mipsd: serving simulation jobs at %s (POST /v1/jobs, PUT /v1/templates/{name}, /metrics, /status)\n", displayURL(bound))
	if peers := fed.Peers(); len(peers) > 0 {
		fmt.Fprintf(os.Stderr, "mipsd: federating %d peers: %s\n", len(peers), strings.Join(peers, ", "))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	cancel()
	fmt.Fprintln(os.Stderr, "mipsd: draining...")
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainWait)
	svc.Drain(drainCtx)
	cancelDrain()
	svc.Close()
	srv.Close()
}

// writeTenantActive exposes the per-tenant unfinished-job gauge next to
// the rollup's terminal-job families: together they answer "who is
// running now" and "how did their jobs behave".
func writeTenantActive(w io.Writer, svc *sim.Service) error {
	if _, err := fmt.Fprint(w,
		"# HELP jobs_tenant_active unfinished jobs per tenant\n# TYPE jobs_tenant_active gauge\n"); err != nil {
		return err
	}
	active := svc.TenantActive()
	tenants := make([]string, 0, len(active))
	for t := range active {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if _, err := fmt.Fprintf(w, "jobs_tenant_active{tenant=%q} %d\n", t, active[t]); err != nil {
			return err
		}
	}
	return nil
}

// corpusPrograms exposes every built-in corpus program to the job
// service, compiled on demand for the requested machine layout.
func corpusPrograms() map[string]sim.ProgramFunc {
	progs := map[string]sim.ProgramFunc{}
	for _, p := range corpus.All() {
		p := p
		progs[p.Name] = func(kernelTarget bool) (*isa.Image, error) {
			mopt := codegen.MIPSOptions{}
			if kernelTarget {
				mopt.StackTop = codegen.KernelStackTop
			}
			im, _, err := codegen.CompileMIPS(p.Source, mopt, reorg.All())
			return im, err
		}
	}
	return progs
}

// displayURL renders a bound address as a clickable URL, mapping
// wildcard hosts to localhost.
func displayURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "localhost"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipsd:", err)
	os.Exit(1)
}
