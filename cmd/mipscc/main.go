// Command mipscc compiles Pasqual source for either target machine.
//
// Usage:
//
//	mipscc [-target mips|cc] [-o out.img] [-run] [-bytes] [-S] file.pas
//
// The MIPS target writes a loadable image (or runs it with -run); the
// condition-code target always runs, printing its cost statistics.
// -bytes selects byte allocation for character data (Tables 8/10);
// -S prints the generated code instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"mips/internal/ccarch"
	"mips/internal/codegen"
	"mips/internal/lang"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/trace"
)

func main() {
	target := flag.String("target", "mips", "target machine: mips or cc")
	out := flag.String("o", "a.img", "output image file (mips target)")
	run := flag.Bool("run", false, "execute after compiling")
	useBytes := flag.Bool("bytes", false, "byte-allocate characters and booleans")
	listing := flag.Bool("S", false, "print generated code")
	forKernel := flag.Bool("kernel", false, "lay out the stack for running as a kernel process")
	prof := flag.Bool("prof", false, "with -run on the mips target, print a flat cycle profile")
	policy := flag.String("policy", "VAX", "cc target policy: VAX, 360, or M68000")
	strategy := flag.String("bool", "early-out", "cc boolean strategy: full-eval, early-out, cond-set")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mipscc [flags] file.pas")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)
	mode := lang.WordAlloc
	if *useBytes {
		mode = lang.ByteAlloc
	}
	mopt := codegen.MIPSOptions{Mode: mode}
	if *forKernel {
		mopt.StackTop = codegen.KernelStackTop
	}

	switch *target {
	case "mips":
		im, st, err := codegen.CompileMIPS(src, mopt, reorg.All())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipscc: %d pieces -> %d words (%d packed, %d/%d delay slots filled)\n",
			st.InputPieces, st.OutputWords, st.PackedWords, st.DelayFilled, st.DelaySlots)
		if *listing {
			for i, w := range im.Words {
				fmt.Printf("%4d: %s\n", int(im.TextBase)+i, w)
			}
			return
		}
		if *run {
			var opts []sim.Option
			var profiler *trace.Profiler
			if *prof {
				profiler = trace.NewProfiler()
				profiler.AddImage(im)
				opts = append(opts, sim.WithObserver(&trace.Observer{Profiler: profiler}))
			}
			m, err := sim.New(opts...)
			if err != nil {
				fatal(err)
			}
			if err := m.Load(im); err != nil {
				fatal(err)
			}
			_, err = m.Run(500_000_000)
			fmt.Print(m.Output())
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mipscc: %s\n", m.Stats())
			if profiler != nil {
				if err := profiler.WriteReport(os.Stderr, 20); err != nil {
					fatal(err)
				}
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if _, err := im.WriteTo(f); err != nil {
			fatal(err)
		}

	case "cc":
		pol, err := policyByName(*policy)
		if err != nil {
			fatal(err)
		}
		strat, err := strategyByName(*strategy)
		if err != nil {
			fatal(err)
		}
		prog, err := lang.Parse(src)
		if err != nil {
			fatal(err)
		}
		res, err := codegen.GenCC(prog, codegen.CCOptions{Policy: pol, Strategy: strat, Eliminate: true})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipscc: %d instructions; %d/%d compares eliminated by condition codes\n",
			len(res.Prog.Instrs), res.Savings.Saved(), res.Savings.TotalCompares)
		if *listing {
			for i := range res.Prog.Instrs {
				fmt.Printf("%4d: %s\n", i, &res.Prog.Instrs[i])
			}
			return
		}
		output, st, err := codegen.RunCC(res, pol, 500_000_000)
		fmt.Print(output)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mipscc: %d instructions executed, weighted cost %.0f (reg 1 / cmp 2 / br 4 / mem 4)\n",
			st.Instructions, st.Cost(ccarch.PaperWeights()))

	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
}

func policyByName(name string) (ccarch.Policy, error) {
	for _, p := range ccarch.Policies() {
		if p.Name == name {
			return p, nil
		}
	}
	return ccarch.Policy{}, fmt.Errorf("unknown policy %q", name)
}

func strategyByName(name string) (codegen.BoolStrategy, error) {
	switch name {
	case "full-eval":
		return codegen.BoolFullEval, nil
	case "early-out":
		return codegen.BoolEarlyOut, nil
	case "cond-set":
		return codegen.BoolCondSet, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mipscc:", err)
	os.Exit(1)
}
