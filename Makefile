# Build and verification entry points. `make check` is the full gate CI
# runs; the other targets are conveniences over the go tool.

GO ?= go

.PHONY: all build test vet fmt check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
	rm -f BENCH_core.json
