# Build and verification entry points. `make check` is the full gate CI
# runs; the other targets are conveniences over the go tool.

GO ?= go

.PHONY: all build test vet fmt check bench bench-all clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

check:
	sh scripts/check.sh

# bench runs the performance gate: core microbenchmarks with allocation
# reporting, the zero-alloc steady-state assertion, and BENCH_core.json.
# `make bench-all` is the old exhaustive per-table benchmark sweep.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench . -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
	rm -f BENCH_core.json
