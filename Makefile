# Build and verification entry points. `make check` is the full gate CI
# runs; the other targets are conveniences over the go tool.

GO ?= go

.PHONY: all build test vet fmt check race bench bench-all benchgate baseline serve clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

check:
	sh scripts/check.sh

# race runs the suite under the race detector — the concurrency gate
# for the tracer fan-out, the telemetry server, and the worker pools.
race:
	$(GO) test -race ./...

# bench runs the performance gate: core microbenchmarks with allocation
# reporting, the zero-alloc steady-state assertion, and BENCH_core.json.
# `make bench-all` is the old exhaustive per-table benchmark sweep.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench . -benchmem -run '^$$' .

# benchgate reruns corebench and diffs it against the committed
# BENCH_baseline.json (cmd/benchdiff); non-zero exit on regression.
# Refresh the baseline with `sh scripts/benchgate.sh -update`.
benchgate:
	sh scripts/benchgate.sh

# baseline rewrites BENCH_baseline.json from the current tree; commit
# the result together with the change that moved it.
baseline:
	sh scripts/benchgate.sh -update

# serve runs a corpus program with the live telemetry server attached:
# /metrics, /trace/stream, /profile/flame, /profile/top, /status.
SERVE_ADDR ?= :9417
SERVE_CORPUS ?= queens
serve:
	$(GO) run ./cmd/mipsrun -serve $(SERVE_ADDR) -prof -stats -corpus $(SERVE_CORPUS)

clean:
	$(GO) clean ./...
	rm -f BENCH_core.json
