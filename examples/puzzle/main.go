// Puzzle: run Baskett's Puzzle benchmark (the Table 11 workload)
// through each cumulative stage of the postpass reorganizer, reproduce
// the static-count improvements, and execute the fully optimized
// version on the simulator.
package main

import (
	"fmt"
	"log"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/reorg"
)

func main() {
	stages := []struct {
		name string
		opt  reorg.Options
	}{
		{"none (no-ops inserted)", reorg.Options{}},
		{"reorganization", reorg.Options{Reorganize: true}},
		{"+ packing", reorg.Options{Reorganize: true, Pack: true}},
		{"+ branch delay", reorg.All()},
	}

	for _, variant := range []string{"puzzle0", "puzzle1"} {
		p, err := corpus.Get(variant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s)\n", p.Name, p.Role)
		var first int
		for _, stage := range stages {
			im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, stage.opt)
			if err != nil {
				log.Fatal(err)
			}
			n := len(im.Words)
			if first == 0 {
				first = n
			}
			fmt.Printf("  %-24s %5d words  (%.1f%% better than unoptimized)\n",
				stage.name, n, 100*float64(first-n)/float64(first))
		}

		im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
		if err != nil {
			log.Fatal(err)
		}
		res, err := codegen.RunMIPS(im, 100_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run: output %q in %d instructions (%d cycles)\n\n",
			res.Output, res.Stats.Instructions, res.Stats.Cycles)
	}
	fmt.Println("paper (Table 11): puzzle0 843 -> 634 words (24.8%), puzzle1 1219 -> 791 (35.1%)")
}
