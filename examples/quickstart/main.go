// Quickstart: compile a Pasqual program with the full MIPS tool chain
// (code generation → reorganizer → assembler), run it on the pipeline
// simulator, and look at the scheduled code and the machine statistics.
package main

import (
	"fmt"
	"log"

	"mips/internal/codegen"
	"mips/internal/reorg"
)

const program = `
program quickstart;
var i, sum: integer;
begin
  sum := 0;
  for i := 1 to 100 do
    if i mod 3 = 0 then sum := sum + i;
  writeint(sum)
end.
`

func main() {
	// Compile with every reorganizer optimization: DAG scheduling over
	// the load delay, piece packing, and branch-delay filling.
	im, st, err := codegen.CompileMIPS(program, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d pieces -> %d instruction words\n", st.InputPieces, st.OutputWords)
	fmt.Printf("          %d packed words, %d/%d branch delay slots filled, %d no-ops\n\n",
		st.PackedWords, st.DelayFilled, st.DelaySlots, st.Nops)

	fmt.Println("first 12 words of the scheduled program:")
	for i, w := range im.Words[:12] {
		fmt.Printf("  %3d: %s\n", int(im.TextBase)+i, w)
	}

	// Execute on the no-interlock pipeline simulator. The hazard
	// auditor proves the reorganizer produced legal code.
	res, err := codegen.RunMIPS(im, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutput: %s", res.Output)
	fmt.Printf("machine: %s\n", &res.Stats)
	fmt.Printf("hazards observed: %d (the reorganizer guarantees zero)\n", len(res.Hazards))
	fmt.Printf("free data-memory cycles: %.1f%% of the data port (paper §3.1 measured ~40%% of total bandwidth free)\n",
		100*res.Stats.FreeBandwidthFraction())
}
