// Booleval: the paper's running example — Found := (Rec = Key) OR
// (I = 13) — compiled for every boolean-evaluation support level of
// §2.3.2 (Figures 1-3), with static code, dynamic counts, and the
// Table 6 weighted costs.
package main

import (
	"fmt"
	"log"

	"mips/internal/ccarch"
	"mips/internal/codegen"
	"mips/internal/lang"
	"mips/internal/reorg"
)

const program = `
program booleval;
var found: boolean; rec, key, i: integer;
begin
  rec := 1; key := 2; i := 13;
  found := (rec = key) or (i = 13);
  if found then writechar('t') else writechar('f')
end.
`

func main() {
	prog, err := lang.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Found := (Rec = Key) OR (I = 13)   [rec<>key, i=13 -> true]")
	fmt.Println()

	ccVariants := []struct {
		label string
		pol   ccarch.Policy
		strat codegen.BoolStrategy
	}{
		{"Figure 1, full evaluation (VAX)", ccarch.PolicyVAX, codegen.BoolFullEval},
		{"Figure 1, early-out (VAX)", ccarch.PolicyVAX, codegen.BoolEarlyOut},
		{"Figure 2, conditional set (M68000)", ccarch.PolicyM68000, codegen.BoolCondSet},
	}
	w := ccarch.PaperWeights()
	for _, v := range ccVariants {
		res, err := codegen.GenCC(prog, codegen.CCOptions{Policy: v.pol, Strategy: v.strat})
		if err != nil {
			log.Fatal(err)
		}
		out, st, err := codegen.RunCC(res, v.pol, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s static %3d  dynamic %3d  branches %2d  weighted cost %4.0f  -> %s\n",
			v.label, len(res.Prog.Instrs), st.Instructions, st.Branches, st.Cost(w), out)
	}

	// Figure 3: MIPS with set conditionally — branch-free boolean values.
	im, _, err := codegen.CompileMIPS(program, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		log.Fatal(err)
	}
	res, err := codegen.RunMIPS(im, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s static %3d  dynamic %3d  branches %2d                      -> %s\n",
		"Figure 3, set conditionally (MIPS)", len(im.Words),
		res.Stats.Instructions, res.Stats.Branches, res.Output)

	fmt.Println()
	fmt.Println("paper: set conditionally evaluates the assignment in 3 branch-free")
	fmt.Println("instructions; conditional set needs 5; a CC machine with only")
	fmt.Println("branches needs 6-8 with up to 2 branches executed (Table 6 weights")
	fmt.Println("make that 33-53% slower overall).")
}
