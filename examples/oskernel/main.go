// Oskernel: the systems half of the paper (§3). Boots the machine —
// dispatch ROM at physical zero, surprise register, two-level privilege
// — loads two user processes under on-chip segmentation, and runs them
// with demand paging and preemptive round-robin scheduling on the
// interval timer.
package main

import (
	"fmt"
	"log"

	"mips/internal/asm"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/reorg"
)

// Each process prints its own letter a few times, touching fresh stack
// and data pages as it goes; every page arrives by demand paging.
func userProgram(letter byte, rounds int) string {
	return fmt.Sprintf(`
	.entry main
main:	mov #0, r5		; round counter
	ldi #6000, r6		; data pointer, a fresh page
round:	mov #'%c', r1
	trap #1			; writechar
	st r5, (r6)		; touch the data page
	st r5, 0(sp)		; touch the stack page
	add r6, r5, r6
	mov #0, r2
	ldi #400, r3
spin:	add r2, #1, r2		; burn some time so the timer preempts us
	blt r2, r3, spin
	add r5, #1, r5
	blt r5, #%d, round
	trap #4			; exit
`, letter, rounds)
}

func build(src string) *isa.Image {
	u, err := asm.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	ro, _ := reorg.Reorganize(u, reorg.All())
	im, err := asm.Assemble(ro)
	if err != nil {
		log.Fatal(err)
	}
	return im
}

func main() {
	m, err := kernel.NewMachine(kernel.Config{TimerPeriod: 250})
	if err != nil {
		log.Fatal(err)
	}
	for _, letter := range []byte{'A', 'B'} {
		pid, err := m.AddProcess(build(userProgram(letter, 8)), 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded process %c as pid %d (64K-word space, nothing resident yet)\n", letter, pid)
	}

	n, err := m.Run(50_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconsole: %s\n", m.ConsoleOutput())
	fmt.Printf("instructions executed:  %d\n", n)
	fmt.Printf("page faults serviced:   %d (every page arrived on demand)\n", m.PageFaults())
	fmt.Printf("disk page reads:        %d\n", m.DiskReads())
	fmt.Printf("context switches:       %d (timer-driven round robin)\n", m.ContextSwitches())
	fmt.Printf("resident translations:  %d (one page map serves both PIDs — §3.1)\n", m.ResidentPages())
	fmt.Printf("exceptions by cause:    traps=%d interrupts=%d pagefaults=%d\n",
		m.CPU.Stats.Exceptions[isa.CauseTrap],
		m.CPU.Stats.Exceptions[isa.CauseInterrupt],
		m.CPU.Stats.Exceptions[isa.CausePageFault])
	fmt.Println("\nthe interleaved letters show preemption; the kernel that did all of")
	fmt.Println("this is MIPS assembly in ROM, scheduled by the same reorganizer as")
	fmt.Println("user code (internal/kernel/kernel.go).")
}
