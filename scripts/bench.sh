#!/bin/sh
# bench.sh — the performance gate: core microbenchmarks with allocation
# reporting, the zero-allocation steady-state assertion, and the
# machine-readable corebench artifact (BENCH_core.json).
#
#   sh scripts/bench.sh            # full run, writes BENCH_core.json
#   BENCH_OUT=/tmp/b.json sh scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_core.json}

echo "==> steady-state allocation check (must be 0 allocs/op)"
go test ./internal/cpu/ -run TestSteadyStateZeroAlloc -count=1 -v

echo "==> side-trace/inline-cache dispatch paths (must be 0 allocs/op)"
go test ./internal/cpu/ -run TestSideTraceZeroAllocSteadyState -count=1 -v

echo "==> job-service hot path without telemetry (must be 0 allocs/op)"
go test ./internal/sim/ -run TestJobServiceNoTelemetryZeroAlloc -count=1 -v
go test ./internal/sim/ -run '^$' -bench BenchmarkJobServiceNoTelemetry \
    -benchmem -benchtime 1s

echo "==> trace JIT steady state (0 allocs/op assertion runs inside the benchmark)"
go test -run '^$' -bench 'PipelineTraces' -benchmem -benchtime 1s .

echo "==> warm-fork admission: no page copies until first write"
go test ./internal/sim/ -run TestTemplateForkNoCopiesUntilWrite -count=1 -v

echo "==> warm-fork admission: fork vs cold-boot latency (10x gate)"
go test -run TestAdmissionForkSpeedup -count=1 -v .
go test -run '^$' -bench 'AdmissionColdBoot|AdmissionTemplateFork' \
    -benchmem -benchtime 1s .

echo "==> core microbenchmarks"
go test -run '^$' -bench \
    'PipelineSimulator|PipelineFastPath|PipelineReference|KernelBoot|DemandPaging|PageReplacement|FreeCycleDMA' \
    -benchmem -benchtime 1s .

echo "==> corebench -> $out"
go run ./cmd/paperbench -j 0 -core-json "$out" corebench > /dev/null

echo "OK: wrote $out"
