#!/bin/sh
# benchgate.sh — the benchmark regression gate: rerun the corebench
# corpus and diff it against the committed baseline with cmd/benchdiff.
# The simulator is deterministic, so any cycle delta is a real
# behavioral change, and the gate can afford a tight threshold.
#
#   sh scripts/benchgate.sh            # gate against BENCH_baseline.json
#   sh scripts/benchgate.sh -update    # rewrite the baseline in place
#   BENCH_THRESHOLD=5 sh scripts/benchgate.sh
set -eu
cd "$(dirname "$0")/.."

base=${BENCH_BASELINE:-BENCH_baseline.json}
threshold=${BENCH_THRESHOLD:-2}

if [ "${1:-}" = "-update" ]; then
    echo "==> corebench -> $base (baseline update)"
    go run ./cmd/paperbench -j 0 -core-json "$base" corebench > /dev/null
    echo "OK: baseline rewritten; commit $base with the change that moved it"
    exit 0
fi

if [ ! -f "$base" ]; then
    echo "benchgate: no baseline at $base — run 'sh scripts/benchgate.sh -update' and commit it" >&2
    exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> corebench -> $tmp"
go run ./cmd/paperbench -j 0 -core-json "$tmp" corebench > /dev/null

echo "==> benchdiff -threshold $threshold $base (baseline) vs current"
go run ./cmd/benchdiff -threshold "$threshold" "$base" "$tmp"
