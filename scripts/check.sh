#!/bin/sh
# check.sh — the repository's full verification gate: build, vet,
# formatting, and the test suite. CI runs exactly this script, so a
# clean local run means a clean CI run.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go test ./..."
go test ./...

echo "OK"
