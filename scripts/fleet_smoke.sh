#!/bin/sh
# fleet_smoke.sh — multi-daemon federation smoke test.
# Starts two worker mipsd instances and one coordinator federating
# them via -peers, runs profiled jobs for distinct tenants on each
# worker, and asserts that the coordinator's single pane of glass
# shows both: merged /metrics series carrying worker="host:port"
# labels, fleet_peer_up 1 for every peer, and a fleet flamegraph
# containing stacks from both workers' profiled jobs. The merged
# flamegraph is left at $FLEET_FLAME_OUT (default fleet_flame.folded)
# as a CI artifact.
set -eu
cd "$(dirname "$0")/.."

W1="${FLEET_W1:-127.0.0.1:9481}"
W2="${FLEET_W2:-127.0.0.1:9482}"
CO="${FLEET_CO:-127.0.0.1:9483}"
FLAME_OUT="${FLEET_FLAME_OUT:-fleet_flame.folded}"
TMP="$(mktemp -d)"
PIDS=""

cleanup() {
    status=$?
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

field() { # field <name> <file>
    sed -n "s/.*\"$1\": *\"\\([^\"]*\\)\".*/\\1/p" "$2" | head -1
}

wait_up() { # wait_up <addr>
    for i in $(seq 1 100); do
        if curl -fsS "http://$1/jobs" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon never came up on $1" >&2
    return 1
}

wait_done() { # wait_done <addr> <id>
    for i in $(seq 1 600); do
        curl -fsS "http://$1/jobs/$2" >"$TMP/status.json"
        state=$(field state "$TMP/status.json")
        case "$state" in
        done | failed | cancelled)
            echo "$state"
            return 0
            ;;
        esac
        sleep 0.1
    done
    echo "timeout"
    return 0
}

run_job() { # run_job <addr> <tenant>
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "{\"program\":\"fib\",\"engine\":\"fast\",\"tenant\":\"$2\",\"profile\":true}" \
        "http://$1/jobs" >"$TMP/submit.json"
    id=$(field id "$TMP/submit.json")
    [ -n "$id" ] || { echo "no job id from $1" >&2; cat "$TMP/submit.json" >&2; return 1; }
    state=$(wait_done "$1" "$id")
    if [ "$state" != "done" ]; then
        echo "job $id on $1 ended in state $state" >&2
        cat "$TMP/status.json" >&2
        return 1
    fi
}

echo "==> build mipsd"
go build -o "$TMP/mipsd" ./cmd/mipsd

echo "==> start workers on $W1 and $W2, coordinator on $CO"
"$TMP/mipsd" -addr "$W1" -quantum 5000 &
PIDS="$PIDS $!"
"$TMP/mipsd" -addr "$W2" -quantum 5000 &
PIDS="$PIDS $!"
"$TMP/mipsd" -addr "$CO" -quantum 5000 -peers "$W1,$W2" &
PIDS="$PIDS $!"
wait_up "$W1"
wait_up "$W2"
wait_up "$CO"

echo "==> run profiled jobs on each worker"
run_job "$W1" "tenant-a"
run_job "$W2" "tenant-b"

echo "==> coordinator /metrics merges both workers"
curl -fsS "http://$CO/metrics" >"$TMP/merged.txt"
[ -s "$TMP/merged.txt" ] || { echo "empty coordinator /metrics" >&2; exit 1; }
for want in \
    "worker=\"$W1\"" "worker=\"$W2\"" \
    'tenant="tenant-a"' 'tenant="tenant-b"' \
    jobs_latency_seconds fleet_peers; do
    grep -q "$want" "$TMP/merged.txt" || {
        echo "merged /metrics is missing $want" >&2
        grep -c . "$TMP/merged.txt" >&2
        exit 1
    }
done
for w in "$W1" "$W2"; do
    grep -q "fleet_peer_up{worker=\"$w\"} 1" "$TMP/merged.txt" || {
        echo "coordinator does not report peer $w as up:" >&2
        grep fleet_peer_up "$TMP/merged.txt" >&2 || true
        exit 1
    }
done

echo "==> coordinator peer list"
curl -fsS "http://$CO/fleet/peers" >"$TMP/peers.json"
grep -q "$W1" "$TMP/peers.json" || { echo "peer $W1 missing from /fleet/peers" >&2; exit 1; }
grep -q "$W2" "$TMP/peers.json" || { echo "peer $W2 missing from /fleet/peers" >&2; exit 1; }

echo "==> fleet flamegraph artifact -> $FLAME_OUT"
curl -fsS "http://$CO/profile/flame?scope=fleet" >"$FLAME_OUT"
[ -s "$FLAME_OUT" ] || { echo "empty fleet flamegraph" >&2; exit 1; }
grep -q '^user;' "$FLAME_OUT" || {
    echo "fleet flamegraph has no user-space stacks" >&2
    exit 1
}

echo "==> dead peer degrades, never fails the scrape"
kill "$(echo "$PIDS" | awk '{print $1}')" 2>/dev/null || true
for i in $(seq 1 100); do
    curl -fsS "http://$CO/metrics" >"$TMP/degraded.txt"
    if grep -q "fleet_peer_up{worker=\"$W1\"} 0" "$TMP/degraded.txt"; then
        break
    fi
    if [ "$i" -eq 100 ]; then
        echo "dead peer $W1 never reported as down:" >&2
        grep fleet_peer_up "$TMP/degraded.txt" >&2 || true
        exit 1
    fi
    sleep 0.1
done
grep -q "fleet_peer_up{worker=\"$W2\"} 1" "$TMP/degraded.txt" || {
    echo "live peer $W2 lost its up status" >&2
    exit 1
}

echo "OK"
