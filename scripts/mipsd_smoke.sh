#!/bin/sh
# mipsd_smoke.sh — end-to-end smoke test for the simulation job daemon.
# Starts mipsd, submits a job over HTTP, polls it to completion, downloads
# its snapshot, resubmits the snapshot as a new job, and checks that both
# jobs produced identical output. Exercises the same loop as the Go HTTP
# tests, but against the real binary over a real socket.
set -eu
cd "$(dirname "$0")/.."

ADDR="${MIPSD_ADDR:-127.0.0.1:9473}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
MIPSD_PID=""

cleanup() {
    status=$?
    if [ -n "$MIPSD_PID" ]; then
        # SIGTERM triggers the graceful drain path.
        kill "$MIPSD_PID" 2>/dev/null || true
        wait "$MIPSD_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
    exit "$status"
}
trap cleanup EXIT INT TERM

# Pull a string field out of a one-object JSON response. The daemon's
# encoder never escapes quotes inside these fields, so this is safe.
field() { # field <name> <file>
    sed -n "s/.*\"$1\": *\"\\([^\"]*\\)\".*/\\1/p" "$2" | head -1
}

echo "==> build mipsd"
go build -o "$TMP/mipsd" ./cmd/mipsd

echo "==> start mipsd on $ADDR"
"$TMP/mipsd" -addr "$ADDR" -quantum 5000 &
MIPSD_PID=$!

for i in $(seq 1 100); do
    if curl -fsS "$BASE/jobs" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" -eq 100 ]; then
        echo "mipsd never came up on $ADDR" >&2
        exit 1
    fi
    sleep 0.1
done

wait_done() { # wait_done <id> -> prints final state
    id=$1
    for i in $(seq 1 600); do
        curl -fsS "$BASE/jobs/$id" >"$TMP/status.json"
        state=$(field state "$TMP/status.json")
        case "$state" in
        done | failed | cancelled)
            echo "$state"
            return 0
            ;;
        esac
        sleep 0.1
    done
    echo "timeout"
    return 0
}

echo "==> submit fib (blocks engine)"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"program":"fib","engine":"blocks"}' \
    "$BASE/jobs" >"$TMP/submit.json"
ID=$(field id "$TMP/submit.json")
[ -n "$ID" ] || { echo "no job id in response" >&2; cat "$TMP/submit.json" >&2; exit 1; }
echo "    job $ID"

STATE=$(wait_done "$ID")
if [ "$STATE" != "done" ]; then
    echo "job $ID ended in state $STATE" >&2
    cat "$TMP/status.json" >&2
    exit 1
fi

echo "==> fetch output and snapshot"
curl -fsS "$BASE/jobs/$ID/output" >"$TMP/out1"
curl -fsS "$BASE/jobs/$ID/snapshot" >"$TMP/snap.bin"
[ -s "$TMP/out1" ] || { echo "job produced no output" >&2; exit 1; }
[ -s "$TMP/snap.bin" ] || { echo "empty snapshot" >&2; exit 1; }

echo "==> resubmit snapshot on the fast engine"
SNAP_B64=$(base64 "$TMP/snap.bin" | tr -d '\n')
printf '{"snapshot":"%s","engine":"fast","name":"fib-resumed"}' "$SNAP_B64" >"$TMP/resubmit.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data @"$TMP/resubmit.json" "$BASE/jobs" >"$TMP/submit2.json"
ID2=$(field id "$TMP/submit2.json")
[ -n "$ID2" ] || { echo "no job id in resubmit response" >&2; cat "$TMP/submit2.json" >&2; exit 1; }
echo "    job $ID2"

STATE2=$(wait_done "$ID2")
if [ "$STATE2" != "done" ]; then
    echo "resumed job $ID2 ended in state $STATE2" >&2
    cat "$TMP/status.json" >&2
    exit 1
fi
curl -fsS "$BASE/jobs/$ID2/output" >"$TMP/out2"

echo "==> compare outputs"
if ! cmp -s "$TMP/out1" "$TMP/out2"; then
    echo "restored job output differs from the original:" >&2
    diff "$TMP/out1" "$TMP/out2" >&2 || true
    exit 1
fi

echo "==> templates: create -> fork -> output -> delete (/v1 surface)"
curl -fsS -X PUT -H 'Content-Type: application/json' \
    -d '{"program":"fib","engine":"fast"}' \
    "$BASE/v1/templates/fib-golden" >"$TMP/tpl.json"
TPL=$(field name "$TMP/tpl.json")
[ "$TPL" = "fib-golden" ] || { echo "template create failed" >&2; cat "$TMP/tpl.json" >&2; exit 1; }
curl -fsS "$BASE/v1/templates/fib-golden" >/dev/null
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"template":"fib-golden","engine":"blocks","name":"fib-forked"}' \
    "$BASE/v1/jobs" >"$TMP/submit_fork.json"
IDF=$(field id "$TMP/submit_fork.json")
[ -n "$IDF" ] || { echo "no job id for forked job" >&2; cat "$TMP/submit_fork.json" >&2; exit 1; }
echo "    forked job $IDF"
STATEF=$(wait_done "$IDF")
if [ "$STATEF" != "done" ]; then
    echo "forked job $IDF ended in state $STATEF" >&2
    cat "$TMP/status.json" >&2
    exit 1
fi
curl -fsS "$BASE/v1/jobs/$IDF/output" >"$TMP/out_fork"
if ! cmp -s "$TMP/out1" "$TMP/out_fork"; then
    echo "template-forked job output differs from cold boot:" >&2
    diff "$TMP/out1" "$TMP/out_fork" >&2 || true
    exit 1
fi
curl -fsS -X DELETE "$BASE/v1/templates/fib-golden" >/dev/null
if curl -fsS "$BASE/v1/templates/fib-golden" >"$TMP/tpl_gone.json" 2>/dev/null; then
    echo "deleted template still resolves" >&2
    exit 1
fi
curl -sS "$BASE/v1/templates/fib-golden" >"$TMP/tpl_gone.json"
CODE=$(field code "$TMP/tpl_gone.json")
[ "$CODE" = "template_missing" ] || {
    echo "deleted template lookup returned code '$CODE', want template_missing" >&2
    cat "$TMP/tpl_gone.json" >&2
    exit 1
}

echo "==> fleet observability: profiled tenant job"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"program":"fib","engine":"fast","tenant":"smoke","profile":true}' \
    "$BASE/jobs" >"$TMP/submit3.json"
ID3=$(field id "$TMP/submit3.json")
[ -n "$ID3" ] || { echo "no job id for profiled job" >&2; cat "$TMP/submit3.json" >&2; exit 1; }
STATE3=$(wait_done "$ID3")
if [ "$STATE3" != "done" ]; then
    echo "profiled job $ID3 ended in state $STATE3" >&2
    cat "$TMP/status.json" >&2
    exit 1
fi
curl -fsS "$BASE/jobs/$ID3/profile" >"$TMP/prof.folded"
[ -s "$TMP/prof.folded" ] || { echo "empty per-job folded profile" >&2; exit 1; }
grep -q '^user;' "$TMP/prof.folded" || {
    echo "per-job profile has no user-space stacks:" >&2
    head "$TMP/prof.folded" >&2
    exit 1
}

echo "==> fleet observability: /metrics rollup families"
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
[ -s "$TMP/metrics.txt" ] || { echo "empty /metrics" >&2; exit 1; }
for want in \
    jobs_latency_seconds jobs_instrs_per_second jobs_outcomes \
    jobs_rollup_instructions jobs_admission_seconds jobs_template_forks \
    jobs_cow_faults 'tenant="smoke"' 'quantile="0.99"'; do
    grep -q "$want" "$TMP/metrics.txt" || {
        echo "/metrics is missing $want" >&2
        exit 1
    }
done

echo "==> jit introspection: traces-engine job, tier heatmap, deopt families"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"program":"fib","engine":"traces","tenant":"smoke","name":"fib-traced"}' \
    "$BASE/jobs" >"$TMP/submit4.json"
ID4=$(field id "$TMP/submit4.json")
[ -n "$ID4" ] || { echo "no job id for traces-engine job" >&2; cat "$TMP/submit4.json" >&2; exit 1; }
STATE4=$(wait_done "$ID4")
if [ "$STATE4" != "done" ]; then
    echo "traces-engine job $ID4 ended in state $STATE4" >&2
    cat "$TMP/status.json" >&2
    exit 1
fi
curl -fsS "$BASE/jit/traces" >"$TMP/jit_traces.json"
grep -q '"entry_pc"' "$TMP/jit_traces.json" || {
    echo "/jit/traces has no trace sites:" >&2
    head "$TMP/jit_traces.json" >&2
    exit 1
}
grep -q "\"$ID4/fib-traced\"" "$TMP/jit_traces.json" || {
    echo "/jit/traces is missing the traced job's heatmap" >&2
    exit 1
}
curl -fsS "$BASE/jit/events" >"$TMP/jit_events.json"
grep -q '"kind": *"compiled"' "$TMP/jit_events.json" || {
    echo "/jit/events recorded no trace compilation:" >&2
    head "$TMP/jit_events.json" >&2
    exit 1
}
curl -fsS "$BASE/metrics" >"$TMP/metrics2.txt"
for want in \
    xlate_trace_guard_exits_branch_direction xlate_trace_guard_exits_fault \
    xlate_trace_refuse_shadow_branch xlate_trace_poisoned xlate_tier_traces; do
    grep -q "^$want{" "$TMP/metrics2.txt" || {
        echo "/metrics is missing the per-reason family $want" >&2
        exit 1
    }
done

echo "==> fleet observability: merged flamegraph"
curl -fsS "$BASE/profile/flame?scope=fleet" >"$TMP/fleet.folded"
[ -s "$TMP/fleet.folded" ] || { echo "empty fleet flamegraph" >&2; exit 1; }
grep -q '^user;' "$TMP/fleet.folded" || {
    echo "fleet flamegraph has no user-space stacks" >&2
    exit 1
}

echo "==> fleet observability: peer list and sampled stream"
curl -fsS "$BASE/fleet/peers" >"$TMP/peers.json"
[ -s "$TMP/peers.json" ] || { echo "empty /fleet/peers response" >&2; exit 1; }
# The sampled stream must at least announce its sample set; a 2s tail
# is plenty (curl exits 28 on --max-time, which is the expected path).
curl -sS --max-time 2 "$BASE/trace/stream?sample=2" >"$TMP/stream.txt" || true
grep -q '^event: sample' "$TMP/stream.txt" || {
    echo "sampled stream never sent its announce frame:" >&2
    head "$TMP/stream.txt" >&2
    exit 1
}

echo "OK"
