//go:build !race

package mips

const raceEnabled = false
