package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mips/internal/cpu"
	"mips/internal/trace"
)

// The job service runs many machines concurrently on a bounded worker
// pool. Scheduling is checkpoint-preempt-resume: a worker runs one job
// for a step quantum, then requeues it, so long simulations share the
// pool fairly and every job sits at an instruction boundary between
// quanta — which is what makes mid-run snapshot download and restored
// resumption safe. The simulation hot path takes no locks: a job's
// mutex is held across a whole quantum, and all cross-goroutine
// coordination happens at quantum boundaries.

// JobState is a job's lifecycle state.
type JobState int

const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
	JobCancelled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Service errors.
var (
	// ErrQueueFull is backpressure: the service already holds QueueDepth
	// unfinished jobs. Retry after some complete.
	ErrQueueFull = errors.New("sim: job queue full")
	// ErrClosed means the service no longer accepts jobs.
	ErrClosed = errors.New("sim: job service closed")
	// ErrTimeout marks a job that exceeded its wall-clock timeout.
	ErrTimeout = errors.New("sim: job timeout")
)

// DefaultTenant is the tenant label of jobs submitted without one.
const DefaultTenant = "default"

// JobSample is the fleet-rollup view of one terminal job: everything a
// per-tenant aggregation layer needs, captured at the instant the job
// reached its terminal state. The xlate.* translation-cache totals of
// the job's machine ride along in Counters so cache behavior is
// attributable per tenant.
type JobSample struct {
	Tenant  string
	Name    string
	Engine  string // resolved engine, or "none" if the machine never built
	Outcome string // done | failed | cancelled

	LatencySeconds   float64 // admission to terminal state
	AdmissionSeconds float64 // submission to a runnable machine (built + ready for its first instruction)
	InstrsPerSec     float64 // retirement rate over running wall time
	Instructions     uint64
	Preempts         uint64 // scheduling quanta (checkpoint-preemptions)

	Counters map[string]uint64 // xlate.* totals from the machine, jobs.cow_faults for template forks
}

// TracerRegistry receives per-job tracers as traced jobs build their
// machines; the fleet trace directory implements it, making every
// traced job a sampled-SSE source.
type TracerRegistry interface {
	AddTracer(name string, t *trace.Tracer)
	RemoveTracer(name string)
}

// ServiceConfig sizes the job service.
type ServiceConfig struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds unfinished jobs in the system; Submit returns
	// ErrQueueFull beyond it (default 256).
	QueueDepth int
	// Quantum is the scheduler steps a job runs per turn before being
	// checkpoint-preempted (default 1_000_000).
	Quantum uint64
	// DefaultMaxSteps bounds jobs that do not set MaxSteps (default
	// 500_000_000).
	DefaultMaxSteps uint64
	// Metrics, if non-nil, receives the service's jobs.* counters.
	Metrics *trace.Registry
	// OnJobTerminal, if non-nil, receives one JobSample per job that
	// reaches a terminal state, on the worker goroutine that finished
	// it. It must be fast and must not call back into the Service or
	// the Job (the job's mutex is held). The fleet rollup hangs here.
	OnJobTerminal func(JobSample)
	// Tracers, if non-nil, receives every traced job's tracer as the
	// job builds its machine.
	Tracers TracerRegistry
	// JIT, if non-nil, receives every job's trace-JIT lifecycle events
	// (formation, guard exits by reason, invalidations) into one shared
	// bounded log. Unlike Profile/Trace it does not force the exact
	// engine — the hook only fires from the superblock/trace machinery,
	// so jobs keep their configured engine.
	JIT *trace.JITLog
}

// JobSpec describes one submission.
type JobSpec struct {
	// Name labels the job in listings.
	Name string
	// Tenant labels the job for the fleet rollup (DefaultTenant if
	// empty).
	Tenant string
	// Template names the golden template the job's Build forks from, if
	// any. The service only uses it as a label (jobs.template_forks,
	// Status) — the fork itself happens inside Build.
	Template string
	// Build constructs the machine. It runs on a worker goroutine at the
	// job's first quantum, so heavy setup (compilation, snapshot decode)
	// never blocks Submit.
	Build func() (*Machine, error)
	// MaxSteps bounds the job (0 = the service default).
	MaxSteps uint64
	// Timeout, if nonzero, fails the job when its wall-clock age exceeds
	// it (checked at quantum boundaries).
	Timeout time.Duration
	// Profile attaches a cycle-attribution profiler to the job's
	// machine. Profiled jobs run on the exact per-instruction engine
	// (observer hooks force it), so they trade speed for attribution;
	// their folded stacks merge into the fleet flamegraph.
	Profile bool
	// Trace attaches an event tracer, registered with the service's
	// TracerRegistry so the job becomes a sampled-SSE source. Traced
	// jobs also run on the exact engine.
	Trace bool
}

// Job is one tracked simulation.
type Job struct {
	ID   string
	Name string

	svc  *Service
	spec JobSpec

	// mu guards everything below and is held for a whole quantum; other
	// accessors (status, snapshot, output) therefore wait at most one
	// quantum, and never stall the run loop mid-step.
	mu           sync.Mutex
	state        JobState
	m            *Machine
	instructions uint64
	steps        uint64 // quantum budget consumed
	quanta       uint64
	maxSteps     uint64
	err          error
	created      time.Time
	admitted     time.Time // machine built and ready to retire its first instruction
	started      time.Time
	finished     time.Time
	deadline     time.Time

	cancelled atomic.Bool
	done      chan struct{}

	// prof is set once when a profiled job builds its machine; readers
	// (the fleet flamegraph merge) load it without touching j.mu, so a
	// profile read never waits out a quantum.
	prof atomic.Pointer[trace.Profiler]
}

// Service is the concurrent job scheduler. Construct with NewService;
// Close (or Drain then Close) when finished.
type Service struct {
	cfg ServiceConfig

	mu           sync.Mutex
	jobs         map[string]*Job
	order        []string
	seq          uint64
	active       int
	tenantActive map[string]int
	closed       bool

	ready chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	mSubmitted *trace.Counter
	mCompleted *trace.Counter
	mFailed    *trace.Counter
	mCancelled *trace.Counter
	mRejected  *trace.Counter
	mQuanta    *trace.Counter
	mForks     *trace.Counter
	mCOWFaults *trace.Counter
}

// NewService starts a job service.
func NewService(cfg ServiceConfig) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 1_000_000
	}
	if cfg.DefaultMaxSteps == 0 {
		cfg.DefaultMaxSteps = 500_000_000
	}
	s := &Service{
		cfg:          cfg,
		jobs:         make(map[string]*Job),
		tenantActive: make(map[string]int),
		ready:        make(chan *Job, cfg.QueueDepth),
		stop:         make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		s.mSubmitted = reg.Counter("jobs.submitted")
		reg.Describe("jobs.submitted", "jobs accepted by Submit")
		s.mCompleted = reg.Counter("jobs.completed")
		reg.Describe("jobs.completed", "jobs that ran to a clean halt")
		s.mFailed = reg.Counter("jobs.failed")
		reg.Describe("jobs.failed", "jobs that errored, timed out, or hit their step limit")
		s.mCancelled = reg.Counter("jobs.cancelled")
		reg.Describe("jobs.cancelled", "jobs cancelled before completion")
		s.mRejected = reg.Counter("jobs.rejected")
		reg.Describe("jobs.rejected", "submissions rejected by queue backpressure")
		s.mQuanta = reg.Counter("jobs.quanta")
		reg.Describe("jobs.quanta", "scheduling quanta executed (checkpoint-preemptions)")
		s.mForks = reg.Counter("jobs.template_forks")
		reg.Describe("jobs.template_forks", "jobs admitted by forking a golden template")
		s.mCOWFaults = reg.Counter("jobs.cow_faults")
		reg.Describe("jobs.cow_faults", "copy-on-write page privatizations across terminal forked jobs")
		reg.Gauge("jobs.active", func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return uint64(s.active)
		})
		reg.Describe("jobs.active", "unfinished jobs in the system")
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func inc(c *trace.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Submit enqueues a job. It is cheap and non-blocking: machine
// construction is deferred to the first quantum. Returns ErrQueueFull
// when QueueDepth unfinished jobs are already in the system, ErrClosed
// after Drain or Close.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	if spec.Build == nil {
		return nil, errors.New("sim: job spec needs a Build function")
	}
	if spec.Tenant == "" {
		spec.Tenant = DefaultTenant
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.active >= s.cfg.QueueDepth {
		s.mu.Unlock()
		inc(s.mRejected)
		return nil, ErrQueueFull
	}
	s.seq++
	j := &Job{
		ID:       fmt.Sprintf("job-%d", s.seq),
		Name:     spec.Name,
		svc:      s,
		spec:     spec,
		state:    JobQueued,
		maxSteps: spec.MaxSteps,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	if j.maxSteps == 0 {
		j.maxSteps = s.cfg.DefaultMaxSteps
	}
	if spec.Timeout > 0 {
		j.deadline = j.created.Add(spec.Timeout)
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.active++
	s.tenantActive[spec.Tenant]++
	s.mu.Unlock()
	inc(s.mSubmitted)
	// Capacity equals QueueDepth and admission is bounded by it, so this
	// send never blocks.
	s.ready <- j
	return j, nil
}

// Job returns a tracked job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cancellation; the job reaches JobCancelled at its
// next quantum boundary. Returns false for unknown IDs.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancelled.Store(true)
	return true
}

// Drain stops accepting new jobs and waits until every accepted job
// reaches a terminal state or the context expires.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := s.active
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close stops the workers. In-flight quanta finish; jobs still queued
// stay JobQueued. Call Drain first for a graceful shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.ready:
			if s.runQuantum(j) {
				select {
				case s.ready <- j:
				case <-s.stop:
					return
				}
			}
		}
	}
}

// runQuantum advances one job by one quantum and reports whether it
// should be requeued.
func (s *Service) runQuantum(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued && j.state != JobRunning {
		return false
	}
	if j.cancelled.Load() {
		s.finishLocked(j, JobCancelled, nil)
		return false
	}
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		s.finishLocked(j, JobFailed, ErrTimeout)
		return false
	}
	if j.m == nil {
		m, err := j.spec.Build()
		if err != nil {
			s.finishLocked(j, JobFailed, err)
			return false
		}
		j.m = m
		s.attachJobObservers(j)
		// Boot here so the admission stamp covers everything between
		// Submit and the machine being able to retire its first
		// instruction (boot is a no-op on restored/forked machines).
		m.Boot()
		j.admitted = time.Now()
		if j.spec.Template != "" {
			inc(s.mForks)
		}
	}
	if j.state == JobQueued {
		j.state = JobRunning
		j.started = time.Now()
	}
	q := s.cfg.Quantum
	if rem := j.maxSteps - j.steps; rem < q {
		q = rem
	}
	executed, halted := j.m.RunSteps(q)
	j.steps += q
	j.instructions += executed
	j.quanta++
	inc(s.mQuanta)
	switch {
	case halted:
		s.finishLocked(j, JobDone, nil)
		return false
	case j.steps >= j.maxSteps:
		s.finishLocked(j, JobFailed, fmt.Errorf("step limit %d exceeded", j.maxSteps))
		return false
	case j.cancelled.Load():
		s.finishLocked(j, JobCancelled, nil)
		return false
	}
	return true
}

// attachJobObservers wires the per-job profiler/tracer right after the
// machine builds, before its first quantum runs; j.mu is held.
func (s *Service) attachJobObservers(j *Job) {
	if s.cfg.JIT != nil {
		s.cfg.JIT.Attach(j.m.CPU())
	}
	if !j.spec.Profile && !j.spec.Trace {
		return
	}
	obs := &trace.Observer{}
	if j.spec.Profile {
		p := trace.NewProfiler()
		// Shared: the fleet flamegraph reads while the job runs.
		p.Share()
		for _, im := range j.m.Images() {
			p.AddImage(im)
		}
		obs.Profiler = p
		j.prof.Store(p)
	}
	var tr *trace.Tracer
	if j.spec.Trace {
		tr = trace.NewTracer(0)
		obs.Tracer = tr
	}
	if k := j.m.Kernel(); k != nil {
		obs.AttachMachine(k)
	} else {
		obs.Attach(j.m.CPU())
	}
	if tr != nil && s.cfg.Tracers != nil {
		s.cfg.Tracers.AddTracer(j.ID, tr)
	}
}

// finishLocked moves a job to a terminal state; j.mu is held.
func (s *Service) finishLocked(j *Job, state JobState, err error) {
	j.state = state
	j.err = err
	j.finished = time.Now()
	close(j.done)
	s.mu.Lock()
	s.active--
	s.tenantActive[j.spec.Tenant]--
	if s.tenantActive[j.spec.Tenant] <= 0 {
		delete(s.tenantActive, j.spec.Tenant)
	}
	s.mu.Unlock()
	switch state {
	case JobDone:
		inc(s.mCompleted)
	case JobFailed:
		inc(s.mFailed)
	case JobCancelled:
		inc(s.mCancelled)
	}
	if j.spec.Template != "" && j.m != nil && s.mCOWFaults != nil {
		s.mCOWFaults.Add(j.m.COWStats().Faults)
	}
	if j.spec.Trace && s.cfg.Tracers != nil {
		// Terminal jobs emit no more events; stop offering them as
		// sampled-SSE sources (clients already tailing drain normally).
		s.cfg.Tracers.RemoveTracer(j.ID)
	}
	if fn := s.cfg.OnJobTerminal; fn != nil {
		fn(s.sampleLocked(j, state))
	}
}

// sampleLocked captures the job's fleet-rollup sample; j.mu is held
// and the job is terminal, so every field is final.
func (s *Service) sampleLocked(j *Job, state JobState) JobSample {
	sample := JobSample{
		Tenant:         j.spec.Tenant,
		Name:           j.Name,
		Engine:         "none",
		Outcome:        state.String(),
		LatencySeconds: j.finished.Sub(j.created).Seconds(),
		Instructions:   j.instructions,
		Preempts:       j.quanta,
	}
	if !j.admitted.IsZero() {
		sample.AdmissionSeconds = j.admitted.Sub(j.created).Seconds()
	}
	if !j.started.IsZero() {
		if run := j.finished.Sub(j.started).Seconds(); run > 0 {
			sample.InstrsPerSec = float64(j.instructions) / run
		}
	}
	if j.m != nil {
		sample.Engine = j.m.Engine().String()
		ts := j.m.Trans()
		sample.Counters = map[string]uint64{
			"xlate.predecode_hits":           ts.PredecodeHits,
			"xlate.predecode_misses":         ts.PredecodeMisses,
			"xlate.predecode_collisions":     ts.PredecodeCollisions,
			"xlate.block_hits":               ts.BlockHits,
			"xlate.block_chained":            ts.BlockChained,
			"xlate.block_translations":       ts.BlockTranslations,
			"xlate.block_invalidations":      ts.BlockInvalidations,
			"xlate.block_bails":              ts.BlockBails,
			"xlate.trace.formed":             ts.TraceFormed,
			"xlate.trace.compiled":           ts.TraceCompiled,
			"xlate.trace.guard_exits":        ts.TraceGuardExits,
			"xlate.trace.invalidations":      ts.TraceInvalidations,
			"xlate.trace.dispatch_hits":      ts.TraceDispatchHits,
			"xlate.trace.poisoned":           ts.TracePoisoned,
			"xlate.trace.deopt.environment":  ts.TraceDeoptEnvironment,
			"xlate.trace.deopt.interrupt":    ts.TraceDeoptInterrupt,
			"xlate.trace.deopt.chain_budget": ts.TraceDeoptChainBudget,
		}
		for r := cpu.DeoptReason(0); r < cpu.NumDeoptReasons; r++ {
			sample.Counters["xlate.trace.guard_exits."+r.String()] = ts.TraceDeopts[r]
		}
		for r := cpu.FormRefusal(0); r < cpu.NumFormRefusals; r++ {
			sample.Counters["xlate.trace.refuse."+r.String()] = ts.TraceFormRefusals[r]
		}
		for tier := cpu.Tier(0); tier < cpu.NumTiers; tier++ {
			sample.Counters["xlate.tier."+tier.String()] = ts.TierInstrs[tier]
		}
		if j.spec.Template != "" {
			sample.Counters["jobs.cow_faults"] = j.m.COWStats().Faults
		}
	}
	return sample
}

// JITSites snapshots the job's live trace/block caches — the per-PC
// tier heatmap — symbolized against its profiler when one is attached.
// It waits out at most one quantum (j.mu), so the machine is idle for
// the read and no cpu.ShareTraces is needed.
func (j *Job) JITSites() (trace.JITSites, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.m == nil {
		return trace.JITSites{}, false
	}
	return trace.CollectJITSites(j.m.CPU(), j.prof.Load()), true
}

// FleetJITSites collects every built job's tier heatmap, keyed
// "id/name", for the telemetry server's /jit/traces endpoint.
func (s *Service) FleetJITSites() map[string]trace.JITSites {
	out := make(map[string]trace.JITSites)
	for _, j := range s.Jobs() {
		if sites, ok := j.JITSites(); ok {
			out[j.ID+"/"+j.Name] = sites
		}
	}
	return out
}

// TenantActive returns the number of unfinished jobs per tenant.
func (s *Service) TenantActive() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.tenantActive))
	for t, n := range s.tenantActive {
		if n > 0 {
			out[t] = uint64(n)
		}
	}
	return out
}

// FleetFolded merges the folded profiles of every profiled job —
// running or terminal — into one stack -> cycles map. Profilers are
// shared, so this never waits out a quantum.
func (s *Service) FleetFolded() map[string]uint64 {
	out := make(map[string]uint64)
	for _, j := range s.Jobs() {
		for stack, n := range j.FoldedProfile() {
			out[stack] += n
		}
	}
	return out
}

// Profiler returns the job's profiler, or nil if the job was not
// submitted with Profile or has not built its machine yet. It does not
// take the job mutex, so it is safe mid-quantum.
func (j *Job) Profiler() *trace.Profiler { return j.prof.Load() }

// FoldedProfile returns the job's folded cycle-attribution stacks, or
// nil for unprofiled jobs. Safe mid-quantum: the profiler is shared.
func (j *Job) FoldedProfile() map[string]uint64 {
	p := j.prof.Load()
	if p == nil {
		return nil
	}
	return p.Folded()
}

// Wait blocks until the job reaches a terminal state or the context
// expires, returning the job's error.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status is a point-in-time view of a job.
type Status struct {
	ID           string        `json:"id"`
	Name         string        `json:"name,omitempty"`
	Tenant       string        `json:"tenant,omitempty"`
	Template     string        `json:"template,omitempty"`
	State        string        `json:"state"`
	Instructions uint64        `json:"instructions"`
	Steps        uint64        `json:"steps"`
	Quanta       uint64        `json:"quanta"`
	MaxSteps     uint64        `json:"max_steps"`
	Error        string        `json:"error,omitempty"`
	Output       string        `json:"output,omitempty"`
	Created      time.Time     `json:"created"`
	Started      time.Time     `json:"started"`
	Finished     time.Time     `json:"finished"`
	Elapsed      time.Duration `json:"-"`
}

// Status reports the job's current state. Output is included only for
// terminal jobs (use Snapshot to inspect a running one).
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:           j.ID,
		Name:         j.Name,
		Tenant:       j.spec.Tenant,
		Template:     j.spec.Template,
		State:        j.state.String(),
		Instructions: j.instructions,
		Steps:        j.steps,
		Quanta:       j.quanta,
		MaxSteps:     j.maxSteps,
		Created:      j.created,
		Started:      j.started,
		Finished:     j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.m != nil && (j.state == JobDone || j.state == JobFailed || j.state == JobCancelled) {
		st.Output = j.m.Output()
		st.Elapsed = j.finished.Sub(j.started)
	}
	return st
}

// Output returns the job's console output so far (waits for a quantum
// boundary).
func (j *Job) Output() (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.m == nil {
		return "", errors.New("sim: job has not started")
	}
	return j.m.Output(), nil
}

// Snapshot checkpoints the job's machine. Safe at any time: the job
// mutex serializes it against the run loop at a quantum boundary, so
// the capture is always at an instruction boundary. A terminal job
// snapshots its final state; a queued job that has not built its
// machine yet cannot be snapshotted.
func (j *Job) Snapshot() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.m == nil {
		return nil, errors.New("sim: job has not started")
	}
	return j.m.SnapshotBytes()
}
