package sim_test

// Snapshot/restore must be invisible: a run that is checkpointed
// mid-flight and resumed from the snapshot must be observably identical
// to one that never stopped — same console output, same Stats, same
// final registers and memory, and the same observer event stream,
// hashed event-for-event across the snapshot boundary. These tests pin
// that on all three engines, on the kernel machine, and under an
// in-flight DMA transfer. (Translation-cache counters are exempt: a
// restored machine re-predecodes and re-translates, warming its caches
// afresh, which is exactly the derived state a snapshot must not
// carry.)

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/mem"
	"mips/internal/reorg"
	"mips/internal/sim"
)

// eventHasher folds every observer callback into one FNV stream, so two
// runs compare event-for-event with a single value. The same hasher
// object keeps hashing across a snapshot/restore boundary, which is
// what makes the split run directly comparable to the uninterrupted
// one.
type eventHasher struct {
	h interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
	buf [40]byte
}

func newEventHasher() *eventHasher { return &eventHasher{h: fnv.New64a()} }

func (e *eventHasher) event(tag byte, args ...uint32) {
	e.buf[0] = tag
	n := 1
	for _, a := range args {
		binary.LittleEndian.PutUint32(e.buf[n:], a)
		n += 4
	}
	e.h.Write(e.buf[:n])
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// hooks returns the facade hook set feeding the hasher. A step hook
// forces the exact per-instruction engine (the documented fallback), so
// comparisons that must exercise the superblock engine omit it.
func (e *eventHasher) hooks(stepHook bool) sim.Hooks {
	h := sim.Hooks{
		Mem:    func(pc, addr uint32, store bool) { e.event('m', pc, addr, b2u(store)) },
		Branch: func(pc, target uint32, taken bool) { e.event('b', pc, target, b2u(taken)) },
		Exc: func(pc uint32, primary, secondary isa.Cause, trapCode uint16) {
			e.event('x', pc, uint32(primary), uint32(secondary), uint32(trapCode))
		},
		RFE:   func(pc uint32) { e.event('r', pc) },
		Stall: func(pc uint32) { e.event('w', pc) },
	}
	if stepHook {
		h.Step = func(pc uint32, in isa.Instr) { e.event('s', pc) }
	}
	return h
}

func compileCorpus(t *testing.T, name string, kernelTarget bool) *isa.Image {
	t.Helper()
	p, err := corpus.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	mopt := codegen.MIPSOptions{}
	if kernelTarget {
		mopt.StackTop = codegen.KernelStackTop
	}
	im, _, err := codegen.CompileMIPS(p.Source, mopt, reorg.All())
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return im
}

// machineImage is everything observable about one finished run.
type machineImage struct {
	output string
	stats  cpu.Stats
	events uint64
	mem    uint64
	regs   [isa.NumRegs]uint32
}

func capture(t *testing.T, m *sim.Machine, eh *eventHasher) machineImage {
	t.Helper()
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
	mh := fnv.New64a()
	var word [4]byte
	phys := m.CPU().Bus.MMU.Phys
	for a := uint32(0); a < phys.Size(); a++ {
		binary.LittleEndian.PutUint32(word[:], phys.Peek(a))
		mh.Write(word[:])
	}
	img := machineImage{
		output: m.Output(),
		stats:  *m.Stats(),
		events: eh.h.Sum64(),
		mem:    mh.Sum64(),
	}
	copy(img.regs[:], m.CPU().Regs[:])
	return img
}

func diffImages(t *testing.T, straight, split machineImage) {
	t.Helper()
	if split.output != straight.output {
		t.Errorf("output diverges:\n    split %q\n straight %q", split.output, straight.output)
	}
	if split.stats != straight.stats {
		t.Errorf("stats diverge:\n    split %+v\n straight %+v", split.stats, straight.stats)
	}
	if split.regs != straight.regs {
		t.Errorf("final registers diverge:\n    split %v\n straight %v", split.regs, straight.regs)
	}
	if split.mem != straight.mem {
		t.Error("final physical memory diverges")
	}
	if split.events != straight.events {
		t.Error("observer event streams diverge across the snapshot boundary")
	}
}

// TestSnapshotRestoreDifferential checkpoints a bare-machine run
// mid-flight on every engine, resumes from the snapshot, and demands
// the resumed run be indistinguishable from one that never stopped.
func TestSnapshotRestoreDifferential(t *testing.T) {
	engines := []sim.Engine{sim.Reference, sim.FastPath, sim.Blocks, sim.Traces}
	for _, prog := range []string{"fib", "sort"} {
		for _, eng := range engines {
			eng := eng
			t.Run(prog+"/"+eng.String(), func(t *testing.T) {
				im := compileCorpus(t, prog, false)
				// A step hook forces the exact engine.
				stepHook := eng != sim.Blocks && eng != sim.Traces

				// The uninterrupted run.
				ehA := newEventHasher()
				a, err := sim.New(sim.WithEngine(eng), sim.WithHooks(ehA.hooks(stepHook)))
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Load(im); err != nil {
					t.Fatal(err)
				}
				if _, err := a.Run(200_000_000); err != nil {
					t.Fatal(err)
				}
				straight := capture(t, a, ehA)

				// The split run: k steps, snapshot, restore, finish. The
				// hasher object spans the boundary.
				ehB := newEventHasher()
				b, err := sim.New(sim.WithEngine(eng), sim.WithHooks(ehB.hooks(stepHook)))
				if err != nil {
					t.Fatal(err)
				}
				if err := b.Load(im); err != nil {
					t.Fatal(err)
				}
				// A Blocks or Traces step retires a whole chained run, so
				// its checkpoint lands after far fewer steps.
				k := uint64(2000)
				if eng == sim.Blocks || eng == sim.Traces {
					k = 50
				}
				if _, halted := b.RunSteps(k); halted {
					t.Fatal("program finished before the checkpoint; the test is vacuous")
				}
				snap, err := b.SnapshotBytes()
				if err != nil {
					t.Fatal(err)
				}
				r, err := sim.Restore(bytes.NewReader(snap), sim.WithHooks(ehB.hooks(stepHook)))
				if err != nil {
					t.Fatal(err)
				}
				if got := r.Engine(); got != eng {
					t.Fatalf("restored engine = %v, want %v", got, eng)
				}
				if _, err := r.Run(200_000_000); err != nil {
					t.Fatal(err)
				}
				diffImages(t, straight, capture(t, r, ehB))
			})
		}
	}
}

// TestSnapshotRestoreAcrossEngines snapshots on one engine and resumes
// on another; the engines are observably identical, so the run must
// still match the uninterrupted one.
func TestSnapshotRestoreAcrossEngines(t *testing.T) {
	im := compileCorpus(t, "sort", false)

	ehA := newEventHasher()
	a, err := sim.New(sim.WithEngine(sim.Reference), sim.WithHooks(ehA.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	straight := capture(t, a, ehA)

	ehB := newEventHasher()
	b, err := sim.New(sim.WithEngine(sim.Blocks), sim.WithHooks(ehB.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, halted := b.RunSteps(1000); halted { // blocks steps: sort runs ~3k of them
		t.Fatal("program finished before the checkpoint")
	}
	snap, err := b.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Restore(bytes.NewReader(snap), sim.WithEngine(sim.FastPath), sim.WithHooks(ehB.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine() != sim.FastPath {
		t.Fatalf("engine override ignored: %v", r.Engine())
	}
	if _, err := r.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	diffImages(t, straight, capture(t, r, ehB))
}

// TestSnapshotRandomPreemptAcrossEngines is the trace tier's
// preempt/restore property test: a run is chopped into randomly sized
// step quanta, and at every quantum boundary the machine is snapshotted
// and restored onto a rotating engine — traces included, so checkpoints
// land while the trace cache is warm and mid-way through hot loops.
// Compiled traces are derived state a snapshot must not carry; every
// resumed machine rebuilds heat and traces afresh and must still
// produce the exact event stream of a run that never stopped. Three
// schedules, seeded differently, pin this against luck.
func TestSnapshotRandomPreemptAcrossEngines(t *testing.T) {
	im := compileCorpus(t, "fib", false)

	ehA := newEventHasher()
	a, err := sim.New(sim.WithEngine(sim.Traces), sim.WithHooks(ehA.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	straight := capture(t, a, ehA)
	if a.Trans().TraceDispatchHits == 0 {
		t.Fatal("uninterrupted traces run never dispatched a trace; the test is vacuous")
	}
	if a.Trans().TraceSideHits+a.Trans().TraceICHits == 0 {
		t.Fatal("uninterrupted traces run never resolved a side exit in-tier; the mid-side-trace preemption property is vacuous")
	}

	rotation := []sim.Engine{sim.Traces, sim.Blocks, sim.Traces, sim.FastPath, sim.Traces, sim.Reference}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			eh := newEventHasher()
			m, err := sim.New(sim.WithEngine(sim.Traces), sim.WithHooks(eh.hooks(false)))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Load(im); err != nil {
				t.Fatal(err)
			}
			// Shallow chaining makes a Step fine-grained (one block or
			// one trace pass), so heat counters — derived state every
			// restore rebuilds from zero — re-cross the formation
			// threshold within a quantum. Chain depth is pure dispatch
			// and never changes architecture.
			m.CPU().SetChainFollow(2)
			for hop := 0; !m.Halted(); hop++ {
				if hop > 100_000 {
					t.Fatal("run did not finish; preemption made no progress")
				}
				if _, halted := m.RunSteps(uint64(1 + r.Intn(200))); halted {
					break
				}
				snap, err := m.SnapshotBytes()
				if err != nil {
					t.Fatal(err)
				}
				next := rotation[r.Intn(len(rotation))]
				m, err = sim.Restore(bytes.NewReader(snap), sim.WithEngine(next), sim.WithHooks(eh.hooks(false)))
				if err != nil {
					t.Fatal(err)
				}
				m.CPU().SetChainFollow(2)
			}
			// Trans counters ride the snapshot (unlike the caches they
			// count, they are architectural history, not derived state),
			// so the final machine reports the whole schedule.
			if m.Trans().TraceDispatchHits == 0 {
				t.Error("no preemption quantum dispatched through a compiled trace; the schedule never checkpointed a warm trace tier")
			}
			diffImages(t, straight, capture(t, m, eh))
		})
	}
}

// TestSnapshotDeterministic pins byte-for-byte determinism: the same
// machine state snapshots to the same bytes, and an immediate
// re-snapshot of a restored machine reproduces the original.
func TestSnapshotDeterministic(t *testing.T) {
	im := compileCorpus(t, "fib", false)
	m, err := sim.New(sim.WithEngine(sim.Blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, halted := m.RunSteps(50); halted { // blocks steps are coarse
		t.Fatal("program finished early")
	}
	s1, err := m.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Error("two snapshots of the same machine differ")
	}
	r, err := sim.Restore(bytes.NewReader(s1))
	if err != nil {
		t.Fatal(err)
	}
	s3, err := r.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s3) {
		t.Error("re-snapshot of a restored machine differs from the original")
	}
}

// TestSnapshotRestoreKernel runs the full machine — demand paging,
// preemptive scheduling, two processes — through a mid-run checkpoint
// and compares against the uninterrupted run.
func TestSnapshotRestoreKernel(t *testing.T) {
	im := compileCorpus(t, "fib", true)
	build := func(eh *eventHasher) *sim.Machine {
		m, err := sim.New(
			sim.WithEngine(sim.FastPath),
			sim.WithKernel(kernel.Config{TimerPeriod: 500}),
			sim.WithHooks(eh.hooks(false)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := m.Load(im); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}

	ehA := newEventHasher()
	a := build(ehA)
	if _, err := a.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	straight := capture(t, a, ehA)

	ehB := newEventHasher()
	b := build(ehB)
	if _, halted := b.RunSteps(20_000); halted {
		t.Fatal("kernel run finished before the checkpoint")
	}
	snap, err := b.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Restore(bytes.NewReader(snap), sim.WithHooks(ehB.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel() == nil {
		t.Fatal("restored machine lost its kernel")
	}
	if _, err := r.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	diffImages(t, straight, capture(t, r, ehB))
	if straight.output == "" {
		t.Error("kernel run produced no console output; the comparison is vacuous")
	}
}

// TestSnapshotRestoreUnderDMA checkpoints while a DMA block transfer is
// mid-flight; the restored machine must finish the transfer exactly as
// the uninterrupted one does.
func TestSnapshotRestoreUnderDMA(t *testing.T) {
	im := compileCorpus(t, "sort", false)
	const (
		src   = 40_000
		dst   = 50_000
		words = 4_096
	)
	build := func(eh *eventHasher) *sim.Machine {
		m, err := sim.New(sim.WithEngine(sim.FastPath), sim.WithDMA(), sim.WithHooks(eh.hooks(false)))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(im); err != nil {
			t.Fatal(err)
		}
		// Seed a recognizable source block and queue the transfer before
		// the run, so it drains on free memory cycles as the program runs.
		phys := m.CPU().Bus.MMU.Phys
		for i := uint32(0); i < words; i++ {
			phys.Poke(src+i, 0xD00D0000|i)
		}
		m.DMA().Queue(mem.Transfer{Src: src, Dst: dst, Words: words})
		return m
	}

	ehA := newEventHasher()
	a := build(ehA)
	if _, err := a.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	straight := capture(t, a, ehA)
	if a.DMA().Moved() != words {
		t.Fatalf("uninterrupted run moved %d DMA words, want %d", a.DMA().Moved(), words)
	}

	ehB := newEventHasher()
	b := build(ehB)
	if _, halted := b.RunSteps(1000); halted {
		t.Fatal("program finished before the checkpoint")
	}
	if !b.DMA().Busy() {
		t.Fatal("DMA transfer already drained at the checkpoint; the test is vacuous")
	}
	snap, err := b.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Restore(bytes.NewReader(snap), sim.WithHooks(ehB.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if r.DMA() == nil {
		t.Fatal("restored machine lost its DMA engine")
	}
	if _, err := r.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	diffImages(t, straight, capture(t, r, ehB))
	if got := r.DMA().Moved(); got != words {
		t.Errorf("restored run finished with %d DMA words moved, want %d", got, words)
	}
}
