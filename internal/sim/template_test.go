package sim_test

// Warm-fork admission must be invisible to the program: a job forked
// from a golden template must be observably identical — output, stats,
// registers, memory image, and observer event stream — to a job that
// cold-booted the same machine. These tests pin that on all four
// engines, with many concurrent forks sharing one golden frame set
// (run under -race), with a writer mutating pages while sibling forks
// read them, and across a snapshot-preempt-resume of a forked job.

import (
	"bytes"
	"sync"
	"testing"

	"mips/internal/kernel"
	"mips/internal/mem"
	"mips/internal/sim"
)

// bakeTemplate builds the template master (bare machine, fib) and
// captures it into a fresh pool.
func bakeTemplate(t *testing.T, warmup uint64) (*sim.TemplatePool, *sim.Template) {
	t.Helper()
	im := compileCorpus(t, "fib", false)
	// The master runs warm-up on the exact per-instruction engine so a
	// step budget counts instructions; snapshots are engine-agnostic, so
	// forks still run on any engine.
	master, err := sim.New(sim.WithEngine(sim.Reference))
	if err != nil {
		t.Fatal(err)
	}
	if err := master.Load(im); err != nil {
		t.Fatal(err)
	}
	pool := sim.NewTemplatePool()
	tpl, err := pool.Capture("fib", master, warmup)
	if err != nil {
		t.Fatal(err)
	}
	return pool, tpl
}

// coldRun runs fib cold on the given engine with a fresh hasher and
// returns its image.
func coldRun(t *testing.T, eng sim.Engine, stepHook bool) machineImage {
	t.Helper()
	im := compileCorpus(t, "fib", false)
	eh := newEventHasher()
	m, err := sim.New(sim.WithEngine(eng), sim.WithHooks(eh.hooks(stepHook)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	return capture(t, m, eh)
}

// TestTemplateForkDifferential forks several jobs from one template
// concurrently on every engine; each fork's whole observable image must
// equal the cold-booted run's. Run under -race this also exercises the
// golden frame set's share-without-synchronization contract.
func TestTemplateForkDifferential(t *testing.T) {
	_, tpl := bakeTemplate(t, 0)
	engines := []sim.Engine{sim.Reference, sim.FastPath, sim.Blocks, sim.Traces}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			stepHook := eng != sim.Blocks && eng != sim.Traces
			straight := coldRun(t, eng, stepHook)

			const nForks = 3
			var wg sync.WaitGroup
			images := make([]machineImage, nForks)
			cows := make([]mem.COWStats, nForks)
			errs := make([]error, nForks)
			for i := 0; i < nForks; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					eh := newEventHasher()
					f, err := tpl.Fork(sim.WithEngine(eng), sim.WithHooks(eh.hooks(stepHook)))
					if err != nil {
						errs[i] = err
						return
					}
					if _, err := f.Run(200_000_000); err != nil {
						errs[i] = err
						return
					}
					images[i] = capture(t, f, eh)
					cows[i] = f.COWStats()
				}(i)
			}
			wg.Wait()
			for i := 0; i < nForks; i++ {
				if errs[i] != nil {
					t.Fatalf("fork %d: %v", i, errs[i])
				}
				diffImages(t, straight, images[i])
				if !cows[i].Forked || cows[i].Faults == 0 {
					t.Errorf("fork %d ran without COW faults (%+v); the fork path was not exercised", i, cows[i])
				}
			}
			if straight.output == "" {
				t.Error("no output; the comparison is vacuous")
			}
		})
	}
}

// TestTemplateForkKernel forks the full kernel machine — demand paging,
// preemptive timer, two processes — and compares against cold boot.
// It also pins the O(pages-touched) claim: the fork must privatize far
// fewer pages than the machine holds.
func TestTemplateForkKernel(t *testing.T) {
	im := compileCorpus(t, "fib", true)
	build := func(eh *eventHasher) *sim.Machine {
		opts := []sim.Option{
			sim.WithEngine(sim.FastPath),
			sim.WithKernel(kernel.Config{TimerPeriod: 500}),
		}
		if eh != nil {
			opts = append(opts, sim.WithHooks(eh.hooks(false)))
		}
		m, err := sim.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := m.Load(im); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}

	ehA := newEventHasher()
	a := build(ehA)
	if _, err := a.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	straight := capture(t, a, ehA)
	if straight.output == "" {
		t.Fatal("kernel run produced no output; the comparison is vacuous")
	}

	pool := sim.NewTemplatePool()
	tpl, err := pool.Capture("fib-kernel", build(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	ehB := newEventHasher()
	f, err := tpl.Fork(sim.WithHooks(ehB.hooks(false)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kernel() == nil {
		t.Fatal("forked machine lost its kernel")
	}
	if f.Template() != "fib-kernel" {
		t.Fatalf("fork template = %q", f.Template())
	}
	if _, err := f.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	diffImages(t, straight, capture(t, f, ehB))

	cow := f.COWStats()
	totalPages := int(f.CPU().Bus.MMU.Phys.Size()+mem.PageWords-1) / mem.PageWords
	if cow.Faults == 0 {
		t.Error("kernel fork ran without a single COW fault")
	}
	if cow.PrivatePages*2 >= totalPages {
		t.Errorf("fork privatized %d of %d pages; admission is not O(pages-touched)", cow.PrivatePages, totalPages)
	}
}

// TestTemplateForkIsolation has a writer fork mutating pages while
// sibling forks read the same addresses concurrently: the siblings must
// keep seeing the golden contents (run under -race).
func TestTemplateForkIsolation(t *testing.T) {
	_, tpl := bakeTemplate(t, 0)
	writer, err := tpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	golden := make(map[uint32]uint32)
	phys := writer.CPU().Bus.MMU.Phys
	addrs := []uint32{0, 100, mem.PageWords, 2 * mem.PageWords, 3*mem.PageWords + 17, phys.Size() - 1}
	for _, a := range addrs {
		golden[a] = phys.Peek(a)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for round := uint32(0); round < 100; round++ {
			for _, a := range addrs {
				phys.Poke(a, 0xBAD00000|round)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sibling, err := tpl.Fork()
			if err != nil {
				t.Error(err)
				return
			}
			sp := sibling.CPU().Bus.MMU.Phys
			<-start
			for round := 0; round < 100; round++ {
				for _, a := range addrs {
					if v := sp.Peek(a); v != golden[a] {
						t.Errorf("sibling saw writer's mutation at %#x: %#x (golden %#x)", a, v, golden[a])
						return
					}
				}
			}
			if st := sibling.COWStats(); st.PrivatePages != 0 {
				t.Errorf("read-only sibling privatized %d pages", st.PrivatePages)
			}
		}()
	}
	close(start)
	wg.Wait()

	if st := writer.COWStats(); st.Faults == 0 {
		t.Error("writer fork poked pages without COW faults")
	}
}

// TestTemplateForkSnapshotPreemptResume checkpoints a forked job
// mid-run — the capture must flatten the COW pages into a
// self-contained snapshot — and resumes it after the template is gone.
func TestTemplateForkSnapshotPreemptResume(t *testing.T) {
	straight := coldRun(t, sim.FastPath, true)

	pool, tpl := bakeTemplate(t, 0)
	eh := newEventHasher()
	f, err := tpl.Fork(sim.WithHooks(eh.hooks(true)))
	if err != nil {
		t.Fatal(err)
	}
	if _, halted := f.RunSteps(2000); halted {
		t.Fatal("fork finished before the checkpoint; the test is vacuous")
	}
	if f.COWStats().Faults == 0 {
		t.Fatal("fork checkpoint lands before any COW fault; the flattening property is vacuous")
	}
	snap, err := f.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Drop the template entirely: the snapshot must restore without it.
	if !pool.Delete("fib") {
		t.Fatal("template delete failed")
	}
	r, err := sim.Restore(bytes.NewReader(snap), sim.WithHooks(eh.hooks(true)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Template() != "fib" {
		t.Errorf("restored fork lost its template provenance: %q", r.Template())
	}
	if st := r.COWStats(); st.Forked {
		t.Errorf("restored machine still claims COW sharing: %+v", st)
	}
	if _, err := r.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	diffImages(t, straight, capture(t, r, eh))
}

// TestTemplateForkNoCopiesUntilWrite pins the admission cost claim the
// benchmark gate relies on: a fresh fork has made zero page copies, and
// page copies appear only as stores land.
func TestTemplateForkNoCopiesUntilWrite(t *testing.T) {
	_, tpl := bakeTemplate(t, 0)
	f, err := tpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	st := f.COWStats()
	if !st.Forked || st.PrivatePages != 0 || st.Faults != 0 {
		t.Fatalf("fresh fork COW state %+v; admission copied pages before first write", st)
	}
	if _, halted := f.RunSteps(500); !halted {
		// fib may or may not halt in 500 steps; either way stores landed.
		_ = halted
	}
	if st := f.COWStats(); st.Faults == 0 {
		t.Fatal("running fork never faulted a page copy")
	}
}

// TestTemplateWarmupFork captures a template after a warm-up budget;
// forks resume mid-program and must still finish with the cold run's
// output and cumulative instruction count.
func TestTemplateWarmupFork(t *testing.T) {
	straight := coldRun(t, sim.Traces, false)

	_, tpl := bakeTemplate(t, 3000)
	f, err := tpl.Fork(sim.WithEngine(sim.Traces))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if !f.Halted() {
		t.Fatal("warm fork did not halt")
	}
	if got := f.Output(); got != straight.output {
		t.Errorf("warm fork output = %q, want %q", got, straight.output)
	}
	// Stats ride the snapshot: the fork's cumulative counts must equal
	// the uninterrupted run's.
	if got := f.Stats().Instructions; got != straight.stats.Instructions {
		t.Errorf("warm fork retired %d cumulative instructions, want %d", got, straight.stats.Instructions)
	}
}
