package sim_test

// The job service's JIT introspection wiring: a shared event log
// observes every job's trace-JIT lifecycle, terminal samples carry the
// deopt/refusal/tier counter families for the fleet rollup, and the
// per-job tier heatmap is readable at quantum boundaries.

import (
	"context"
	"sync"
	"testing"
	"time"

	"mips/internal/cpu"
	"mips/internal/sim"
	"mips/internal/trace"
)

func TestServiceJITIntrospection(t *testing.T) {
	im := compileCorpus(t, "fib", false)
	log := trace.NewJITLog(1 << 14)
	var mu sync.Mutex
	samples := []sim.JobSample{}
	svc := sim.NewService(sim.ServiceConfig{
		Workers: 2,
		JIT:     log,
		OnJobTerminal: func(s sim.JobSample) {
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		},
	})
	defer svc.Close()

	j, err := svc.Submit(sim.JobSpec{Name: "fib", Build: buildFor(im, sim.Traces)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	var kinds [8]int
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	if kinds[cpu.JITCompiled] == 0 || kinds[cpu.JITGuardExit] == 0 {
		t.Errorf("shared log missed the lifecycle: compiled=%d exits=%d",
			kinds[cpu.JITCompiled], kinds[cpu.JITGuardExit])
	}

	mu.Lock()
	defer mu.Unlock()
	if len(samples) != 1 {
		t.Fatalf("got %d terminal samples, want 1", len(samples))
	}
	ctr := samples[0].Counters
	var perReason uint64
	for r := cpu.DeoptReason(0); r < cpu.NumDeoptReasons; r++ {
		n, ok := ctr["xlate.trace.guard_exits."+r.String()]
		if !ok {
			t.Fatalf("sample lacks per-reason counter for %s", r)
		}
		perReason += n
	}
	if perReason != ctr["xlate.trace.guard_exits"] {
		t.Errorf("sample reasons sum to %d, want guard_exits %d",
			perReason, ctr["xlate.trace.guard_exits"])
	}
	var tiers uint64
	for tier := cpu.Tier(0); tier < cpu.NumTiers; tier++ {
		tiers += ctr["xlate.tier."+tier.String()]
	}
	if tiers != samples[0].Instructions {
		t.Errorf("sample tiers sum to %d, want instructions %d", tiers, samples[0].Instructions)
	}
	if ctr["xlate.tier.traces"] == 0 {
		t.Error("traces-engine job retired nothing in the trace tier")
	}

	sites := svc.FleetJITSites()
	if len(sites) != 1 {
		t.Fatalf("FleetJITSites has %d entries, want 1: %v", len(sites), sites)
	}
	for label, s := range sites {
		if label != j.ID+"/fib" {
			t.Errorf("site label = %q", label)
		}
		if len(s.Traces) == 0 {
			t.Error("terminal traced job has no live trace sites")
		}
		if s.Tiers["traces"] != ctr["xlate.tier.traces"] {
			t.Errorf("heatmap tier split %v disagrees with sample counters", s.Tiers)
		}
	}
}
