package sim_test

// Restore takes bytes from the network; malformed input of every kind
// must fail with ErrSnapshotFormat and never panic.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/reorg"
	"mips/internal/sim"
)

// validSnapshot builds one real snapshot to mutate.
func validSnapshot(t *testing.T) []byte {
	t.Helper()
	im := compileCorpus(t, "fib", false)
	m, err := sim.New(sim.WithEngine(sim.FastPath))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		t.Fatal(err)
	}
	m.RunSteps(500)
	snap, err := m.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func mustFormatError(t *testing.T, name string, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Restore panicked: %v", name, r)
		}
	}()
	_, err := sim.Restore(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("%s: Restore accepted malformed input", name)
	}
	if !errors.Is(err, sim.ErrSnapshotFormat) {
		t.Errorf("%s: error %v does not wrap ErrSnapshotFormat", name, err)
	}
}

func TestRestoreRejectsMalformedSnapshots(t *testing.T) {
	snap := validSnapshot(t)

	t.Run("empty", func(t *testing.T) { mustFormatError(t, "empty", nil) })
	t.Run("short-header", func(t *testing.T) { mustFormatError(t, "short-header", snap[:10]) })
	t.Run("truncated-payload", func(t *testing.T) {
		mustFormatError(t, "truncated-payload", snap[:len(snap)/2])
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] ^= 0xFF
		mustFormatError(t, "bad-magic", bad)
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		binary.LittleEndian.PutUint32(bad[8:12], sim.SnapshotVersion+1)
		mustFormatError(t, "bad-version", bad)
	})
	t.Run("length-bomb", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		binary.LittleEndian.PutUint64(bad[12:20], 1<<40)
		mustFormatError(t, "length-bomb", bad)
	})
	t.Run("bad-crc", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[20] ^= 0xFF
		mustFormatError(t, "bad-crc", bad)
	})
	t.Run("payload-flip", func(t *testing.T) {
		// Corrupt the gob but keep the CRC consistent, so the gob decoder
		// itself has to reject it.
		bad := append([]byte(nil), snap...)
		bad[24] ^= 0xFF
		binary.LittleEndian.PutUint32(bad[20:24], crc32.ChecksumIEEE(bad[24:]))
		mustFormatError(t, "payload-flip", bad)
	})
	t.Run("garbage-payload", func(t *testing.T) {
		garbage := bytes.Repeat([]byte{0xA5}, 64)
		bad := make([]byte, 24+len(garbage))
		copy(bad, snap[:8]) // keep magic
		binary.LittleEndian.PutUint32(bad[8:12], sim.SnapshotVersion)
		binary.LittleEndian.PutUint64(bad[12:20], uint64(len(garbage)))
		binary.LittleEndian.PutUint32(bad[20:24], crc32.ChecksumIEEE(garbage))
		copy(bad[24:], garbage)
		mustFormatError(t, "garbage-payload", bad)
	})
}

// FuzzRestore hammers Restore with arbitrary bytes (seeded with a real
// snapshot and its truncations); it must return an error or a machine,
// never panic.
func FuzzRestore(f *testing.F) {
	p, err := corpus.Get("fib")
	if err != nil {
		f.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		f.Fatal(err)
	}
	m, err := sim.New(sim.WithEngine(sim.FastPath))
	if err != nil {
		f.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		f.Fatal(err)
	}
	m.RunSteps(500)
	snap, err := m.SnapshotBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:24])
	f.Add(snap[:len(snap)-3])
	f.Add([]byte("MIPSSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := sim.Restore(bytes.NewReader(data))
		if err == nil {
			// Valid snapshots must restore into a runnable machine.
			r.RunSteps(10)
		}
	})
}
