package sim_test

// Fleet-hook integration: 64 concurrent jobs across tenants feed
// terminal samples into the sharded rollup with per-tenant labels
// (the ISSUE acceptance scenario), profiled jobs yield folded stacks
// mergeable into a fleet flamegraph, and traced jobs come and go from
// the tracer directory as they start and finish.

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mips/internal/sim"
	"mips/internal/telemetry/fleet"
)

func TestServiceFleetRollup64Jobs(t *testing.T) {
	im := compileCorpus(t, "fib", false)
	rollup := fleet.NewRollup(0)
	var mu sync.Mutex
	var samples []sim.JobSample
	svc := sim.NewService(sim.ServiceConfig{
		Workers:    4,
		QueueDepth: 128,
		Quantum:    40,
		OnJobTerminal: func(s sim.JobSample) {
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
			rollup.Observe(fleet.JobSample{
				Tenant: s.Tenant, Engine: s.Engine, Outcome: s.Outcome,
				LatencySeconds: s.LatencySeconds, InstrsPerSec: s.InstrsPerSec,
				Instructions: s.Instructions, Preempts: s.Preempts, Counters: s.Counters,
			})
		},
	})
	defer svc.Close()

	const n = 64
	tenants := []string{"alpha", "beta", ""} // "" normalizes to default
	engines := []sim.Engine{sim.Reference, sim.FastPath, sim.Blocks}
	jobs := make([]*sim.Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := svc.Submit(sim.JobSpec{
			Name:   "fib",
			Tenant: tenants[i%len(tenants)],
			Build:  buildFor(im, engines[i%len(engines)]),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, j := range jobs {
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(samples) != n {
		t.Fatalf("terminal samples = %d, want %d", len(samples), n)
	}
	byTenant := map[string]int{}
	for _, s := range samples {
		byTenant[s.Tenant]++
		if s.Outcome != "done" {
			t.Errorf("sample outcome = %q, want done", s.Outcome)
		}
		if s.Engine == "none" || s.Engine == "" {
			t.Errorf("sample engine = %q, want a resolved engine", s.Engine)
		}
		if s.Instructions == 0 || s.Preempts < 2 {
			t.Errorf("sample instr/preempts = %d/%d; jobs must retire work across several quanta",
				s.Instructions, s.Preempts)
		}
		if s.LatencySeconds <= 0 || s.InstrsPerSec <= 0 {
			t.Errorf("sample latency/rate = %g/%g, want positive", s.LatencySeconds, s.InstrsPerSec)
		}
		if _, ok := s.Counters["xlate.block_translations"]; !ok {
			t.Error("sample is missing the xlate.* counters")
		}
	}
	if byTenant["alpha"] == 0 || byTenant["beta"] == 0 || byTenant[sim.DefaultTenant] == 0 {
		t.Errorf("tenant distribution = %v; empty tenant must normalize to %q", byTenant, sim.DefaultTenant)
	}
	if active := svc.TenantActive(); len(active) != 0 {
		t.Errorf("tenantActive after all jobs terminal = %v, want empty", active)
	}

	if got := rollup.Jobs(); got != n {
		t.Fatalf("rollup jobs = %d, want %d", got, n)
	}
	var buf bytes.Buffer
	if err := rollup.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`tenant="alpha"`, `tenant="beta"`, `tenant="default"`,
		`engine="reference"`, `quantile="0.99"`,
		"jobs_latency_seconds", "jobs_outcomes", "xlate_block_translations",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rollup exposition missing %q", want)
		}
	}
}

func TestServiceProfiledJobFoldedStacks(t *testing.T) {
	im := compileCorpus(t, "fib", false)
	svc := sim.NewService(sim.ServiceConfig{Workers: 2, Quantum: 1000})
	defer svc.Close()

	plain, err := svc.Submit(sim.JobSpec{Name: "plain", Build: buildFor(im, sim.FastPath)})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := svc.Submit(sim.JobSpec{Name: "prof", Profile: true, Build: buildFor(im, sim.FastPath)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := plain.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := prof.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	if plain.FoldedProfile() != nil || plain.Profiler() != nil {
		t.Error("unprofiled job must have no profile")
	}
	folded := prof.FoldedProfile()
	if len(folded) == 0 {
		t.Fatal("profiled job produced no folded stacks")
	}
	var cycles uint64
	for stack, n := range folded {
		if !strings.HasPrefix(stack, "user;") && !strings.HasPrefix(stack, "kernel;") {
			t.Errorf("stack %q lacks an address-space frame", stack)
		}
		cycles += n
	}
	if cycles == 0 {
		t.Error("folded stacks carry zero cycles")
	}
	// Symbolization: the job machine's loaded image feeds the profiler,
	// so at least one stack names a real symbol rather than the
	// unsymbolized bucket.
	named := false
	for stack := range folded {
		if !strings.Contains(stack, "<unsymbolized>") && !strings.Contains(stack, "<kernel>") {
			named = true
		}
	}
	if !named {
		t.Errorf("no symbolized stacks in %v", folded)
	}

	// The service-level union includes the profiled job's stacks.
	union := svc.FleetFolded()
	for stack, n := range folded {
		if union[stack] != n {
			t.Errorf("fleet union [%q] = %d, want %d", stack, union[stack], n)
		}
	}
}

func TestServiceTracedJobDirectoryLifecycle(t *testing.T) {
	im := spinImage(t)
	dir := fleet.NewDirectory()
	svc := sim.NewService(sim.ServiceConfig{Workers: 1, Quantum: 100, Tracers: dir})
	defer svc.Close()

	j, err := svc.Submit(sim.JobSpec{Name: "spin", Trace: true, Build: buildFor(im, sim.FastPath)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for dir.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("traced job never registered its tracer")
		}
		time.Sleep(time.Millisecond)
	}
	names, tracers, total := dir.SampleTracers(0)
	if total != 1 || names[0] != j.ID || tracers[0] == nil {
		t.Fatalf("directory = %v (%d), want the job's tracer", names, total)
	}

	svc.Cancel(j.ID)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	j.Wait(ctx)
	deadline = time.Now().Add(10 * time.Second)
	for dir.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("terminal job's tracer never left the directory")
		}
		time.Sleep(time.Millisecond)
	}
}
