package sim

// The zero-overhead contract, pinned: with no telemetry attached — no
// metrics registry, no terminal-sample callback, no tracer directory,
// no profiler — the job hot path (one whole scheduling quantum)
// performs zero heap allocations. The fleet observability layer is
// strictly pay-for-what-you-observe, and this test is what keeps it
// that way. An internal-package test so it can drive runQuantum
// directly, with no worker goroutines muddying the measurement.

import (
	"testing"
	"time"

	"mips/internal/asm"
	"mips/internal/reorg"
)

// newQuietSpinJob builds a service with every telemetry hook absent and
// one never-halting job whose machine is already built, so each
// runQuantum call is purely the steady-state hot path.
func newQuietSpinJob(tb testing.TB, quantum uint64) (*Service, *Job) {
	tb.Helper()
	u, err := asm.Parse("\t.entry main\nmain:\tjmp main\n")
	if err != nil {
		tb.Fatal(err)
	}
	ro, _ := reorg.Reorganize(u, reorg.All())
	im, err := asm.Assemble(ro)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := New()
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.Load(im); err != nil {
		tb.Fatal(err)
	}
	// No NewService: workers would race us for the job. The struct is
	// assembled by hand exactly as Submit would leave it.
	s := &Service{
		cfg:          ServiceConfig{Quantum: quantum, DefaultMaxSteps: 1 << 62},
		jobs:         make(map[string]*Job),
		tenantActive: map[string]int{DefaultTenant: 1},
		ready:        make(chan *Job, 1),
		stop:         make(chan struct{}),
	}
	j := &Job{
		ID:       "bench-1",
		Name:     "spin",
		svc:      s,
		spec:     JobSpec{Tenant: DefaultTenant},
		state:    JobQueued,
		m:        m,
		maxSteps: 1 << 62,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.active = 1
	return s, j
}

func TestJobServiceNoTelemetryZeroAlloc(t *testing.T) {
	s, j := newQuietSpinJob(t, 10_000)
	// One warm-up quantum takes the job through its JobQueued →
	// JobRunning transition and any lazy engine state.
	if !s.runQuantum(j) {
		t.Fatal("spin job finished unexpectedly")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if !s.runQuantum(j) {
			t.Fatal("spin job finished unexpectedly")
		}
	})
	if allocs != 0 {
		t.Fatalf("job hot path allocated %.1f times per quantum with no telemetry attached; want 0", allocs)
	}
}

// BenchmarkJobServiceNoTelemetry is the bench-gate twin of the test
// above: allocs/op must stay 0 and ns/op tracks the scheduling quantum
// overhead on top of raw execution.
func BenchmarkJobServiceNoTelemetry(b *testing.B) {
	s, j := newQuietSpinJob(b, 10_000)
	if !s.runQuantum(j) {
		b.Fatal("spin job finished unexpectedly")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.runQuantum(j) {
			b.Fatal("spin job finished unexpectedly")
		}
	}
}
