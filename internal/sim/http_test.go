package sim_test

// End-to-end over the wire: submit a job, poll it to completion, fetch
// its output and snapshot, resubmit the snapshot as a new job, and get
// the same answer — the same loop scripts/mipsd_smoke.sh runs against a
// real daemon in CI.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mips/internal/asm"
	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/isa"
	"mips/internal/reorg"
	"mips/internal/sim"
)

func testPrograms(t *testing.T) map[string]sim.ProgramFunc {
	t.Helper()
	progs := map[string]sim.ProgramFunc{}
	for _, name := range []string{"fib", "sort"} {
		p, err := corpus.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		src := p.Source
		progs[name] = func(kernelTarget bool) (*isa.Image, error) {
			mopt := codegen.MIPSOptions{}
			if kernelTarget {
				mopt.StackTop = codegen.KernelStackTop
			}
			im, _, err := codegen.CompileMIPS(src, mopt, reorg.All())
			return im, err
		}
	}
	// A program that never halts, for cancellation and backpressure.
	progs["spin"] = func(bool) (*isa.Image, error) {
		u, err := asm.Parse("\t.entry main\nmain:\tjmp main\n")
		if err != nil {
			return nil, err
		}
		ro, _ := reorg.Reorganize(u, reorg.All())
		return asm.Assemble(ro)
	}
	return progs
}

type httpHarness struct {
	t   *testing.T
	ts  *httptest.Server
	svc *sim.Service
}

func newHTTPHarness(t *testing.T, cfg sim.ServiceConfig) *httpHarness {
	t.Helper()
	svc := sim.NewService(cfg)
	ts := httptest.NewServer(svc.Handler(sim.HTTPConfig{Programs: testPrograms(t)}))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &httpHarness{t: t, ts: ts, svc: svc}
}

func (h *httpHarness) postJSON(path string, body any) (*http.Response, []byte) {
	h.t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.Post(h.ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func (h *httpHarness) get(path string) (*http.Response, []byte) {
	h.t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

// submit posts a job and returns its status.
func (h *httpHarness) submit(req map[string]any) sim.Status {
	h.t.Helper()
	resp, body := h.postJSON("/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		h.t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st sim.Status
	if err := json.Unmarshal(body, &st); err != nil {
		h.t.Fatalf("submit response: %v", err)
	}
	return st
}

// waitDone polls a job's status endpoint until it is terminal.
func (h *httpHarness) waitDone(id string) sim.Status {
	h.t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, body := h.get("/jobs/" + id)
		if resp.StatusCode != http.StatusOK {
			h.t.Fatalf("status %s: %d: %s", id, resp.StatusCode, body)
		}
		var st sim.Status
		if err := json.Unmarshal(body, &st); err != nil {
			h.t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("job %s never finished", id)
	return sim.Status{}
}

func TestHTTPJobLifecycle(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 2, Quantum: 500})

	// Unknown program and bad engine are rejected eagerly.
	if resp, _ := h.postJSON("/jobs", map[string]any{"program": "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown program: status %d", resp.StatusCode)
	}
	if resp, _ := h.postJSON("/jobs", map[string]any{"program": "fib", "engine": "warp"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad engine: status %d", resp.StatusCode)
	}

	// Submit, poll to done, read the output.
	st := h.submit(map[string]any{"program": "fib", "engine": "blocks"})
	final := h.waitDone(st.ID)
	if final.State != "done" {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	resp, out := h.get("/jobs/" + st.ID + "/output")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("output: status %d", resp.StatusCode)
	}
	p, _ := corpus.Get("fib")
	if p.Output != "" && string(out) != p.Output {
		t.Errorf("output = %q, want %q", out, p.Output)
	}

	// The terminal job still snapshots; resubmitting the snapshot runs
	// to the same output (it is already halted, so it finishes at once).
	resp, snap := h.get("/jobs/" + st.ID + "/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	re := h.submit(map[string]any{"snapshot": snap, "engine": "fast", "name": "fib-resumed"})
	refinal := h.waitDone(re.ID)
	if refinal.State != "done" {
		t.Fatalf("resumed job state = %s (%s)", refinal.State, refinal.Error)
	}
	if refinal.Output != string(out) {
		t.Errorf("resumed output = %q, want %q", refinal.Output, out)
	}

	// The listing shows both jobs.
	resp, body := h.get("/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list []sim.Status
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Errorf("listing has %d jobs, want 2", len(list))
	}

	// Unknown job IDs 404.
	if resp, _ := h.get("/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
}

func TestHTTPSnapshotMidRunMigratesEngines(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 1, Quantum: 200})

	st := h.submit(map[string]any{"program": "sort", "engine": "reference"})
	// Poll for a mid-run snapshot (409 until the machine is built).
	var snap []byte
	deadline := time.Now().Add(time.Minute)
	for {
		resp, body := h.get("/jobs/" + st.ID + "/snapshot")
		if resp.StatusCode == http.StatusOK {
			snap = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot: last status %d", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
	re := h.submit(map[string]any{"snapshot": snap, "engine": "blocks"})
	a := h.waitDone(st.ID)
	b := h.waitDone(re.ID)
	if a.State != "done" || b.State != "done" {
		t.Fatalf("states: original %s (%s), resumed %s (%s)", a.State, a.Error, b.State, b.Error)
	}
	if a.Output != b.Output {
		t.Errorf("engine migration changed output:\n original %q\n  resumed %q", a.Output, b.Output)
	}
	if a.Output == "" {
		t.Error("no output; the comparison is vacuous")
	}
}

func TestHTTPCancelAndBackpressure(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 1, QueueDepth: 2, Quantum: 100})

	// Two never-halting jobs fill the queue; the third bounces with 429.
	longjob := map[string]any{"program": "spin", "engine": "reference", "max_steps": uint64(200_000_000)}
	a := h.submit(longjob)
	b := h.submit(longjob)
	resp, _ := h.postJSON("/jobs", longjob)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	// Cancel both over the wire.
	for _, id := range []string{a.ID, b.ID} {
		resp, body := h.postJSON("/jobs/"+id+"/cancel", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: status %d: %s", id, resp.StatusCode, body)
		}
	}
	for _, id := range []string{a.ID, b.ID} {
		if st := h.waitDone(id); st.State != "cancelled" && st.State != "done" {
			t.Errorf("job %s state = %s after cancel", id, st.State)
		}
	}
}

// TestHTTPKernelJob submits a multi-process kernel job over the wire.
func TestHTTPKernelJob(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 2, Quantum: 2000})
	st := h.submit(map[string]any{"program": "fib", "kernel": true, "timer": 400, "processes": 2})
	final := h.waitDone(st.ID)
	if final.State != "done" {
		t.Fatalf("kernel job state = %s (%s)", final.State, final.Error)
	}
	if final.Output == "" {
		t.Error("kernel job produced no console output")
	}

	// processes > 1 without kernel is a 400.
	if resp, _ := h.postJSON("/jobs", map[string]any{"program": "fib", "processes": 2}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bare multi-process: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPTenantAndProfile covers the fleet-facing request fields: a
// tenant label that survives into status, a profiled job whose folded
// stacks are served at /jobs/{id}/profile, and the 409 for jobs that
// were not profiled.
func TestHTTPTenantAndProfile(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 2, Quantum: 500})

	st := h.submit(map[string]any{"program": "fib", "tenant": "acme", "profile": true})
	if st.Tenant != "acme" {
		t.Errorf("submit status tenant = %q, want acme", st.Tenant)
	}
	final := h.waitDone(st.ID)
	if final.State != "done" {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	if final.Tenant != "acme" {
		t.Errorf("final status tenant = %q, want acme", final.Tenant)
	}

	resp, body := h.get("/jobs/" + st.ID + "/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status = %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("profile endpoint returned no folded stacks")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "user;") && !strings.HasPrefix(line, "kernel;") {
			t.Errorf("folded line %q lacks an address-space frame", line)
		}
		if strings.LastIndexByte(line, ' ') < 0 {
			t.Errorf("folded line %q has no count", line)
		}
	}

	// Default tenant fills in; unprofiled jobs 409 on /profile.
	plain := h.submit(map[string]any{"program": "fib"})
	if plain.Tenant != sim.DefaultTenant {
		t.Errorf("default tenant = %q, want %q", plain.Tenant, sim.DefaultTenant)
	}
	h.waitDone(plain.ID)
	if resp, _ := h.get("/jobs/" + plain.ID + "/profile"); resp.StatusCode != http.StatusConflict {
		t.Errorf("unprofiled job profile status = %d, want 409", resp.StatusCode)
	}
}
