package sim

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mips/internal/mem"
)

// Warm-fork admission (paper §2: move work out of the repeated path
// into one-time preparation). A Template is a named golden snapshot —
// a machine captured after kernel boot and program load, optionally
// after a warm-up step budget so heat tables re-form fast — held in a
// form forks can be minted from without redoing any of that work:
//
//   - the snapshot payload is decoded once (gob decode is O(state));
//   - the physical-memory capture is materialized once into an
//     immutable mem.Golden frame set;
//   - the kernel image, when the template is a kernel machine, comes
//     from the per-size assembly cache (kernel.NewMachineShell).
//
// Fork then costs O(pages-touched): the new machine's memory is a
// copy-on-write view of the golden frames, and only the CPU registers,
// MMU map, and device state — all small — are copied per fork. The
// template's snapshot bytes stay byte-deterministic and engine-
// agnostic; a fork may run on any engine regardless of which engine
// the template was captured on.

// ErrTemplateMissing reports a fork or lookup against a template name
// the pool does not hold.
var ErrTemplateMissing = errors.New("sim: no such template")

// Template is one named golden snapshot forks are minted from. Safe for
// concurrent use: the decoded wire and golden frames are immutable.
type Template struct {
	name    string
	raw     []byte // canonical snapshot bytes (as uploaded/captured)
	wire    *snapshotWire
	golden  *mem.Golden
	created time.Time
	forks   atomic.Uint64
}

// Name returns the template's pool name.
func (t *Template) Name() string { return t.name }

// Snapshot returns the template's canonical snapshot bytes. The slice
// is shared; callers must not modify it.
func (t *Template) Snapshot() []byte { return t.raw }

// Fork mints a new machine from the template in O(pages-touched):
// copy-on-write memory over the golden frames plus a copy of the small
// per-machine state. Options may re-attach observability and override
// the engine, exactly as for Restore.
func (t *Template) Fork(opts ...Option) (*Machine, error) {
	cfg := config{spaceBits: t.wire.SpaceBits}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := buildFromWire(t.wire, &cfg, t.golden.Fork())
	if err != nil {
		return nil, err
	}
	m.template = t.name
	t.forks.Add(1)
	return m, nil
}

// Info returns the template's listing metadata.
func (t *Template) Info() TemplateInfo {
	return TemplateInfo{
		Name:      t.name,
		Kernel:    t.wire.Kernel,
		Engine:    Engine(t.wire.Engine).String(),
		PhysWords: t.wire.Phys.Size,
		Bytes:     len(t.raw),
		Created:   t.created,
		Forks:     t.forks.Load(),
	}
}

// TemplateInfo is the listing view of a template.
type TemplateInfo struct {
	Name      string    `json:"name"`
	Kernel    bool      `json:"kernel"`
	Engine    string    `json:"engine"` // engine the template was captured on (forks may override)
	PhysWords uint32    `json:"phys_words"`
	Bytes     int       `json:"bytes"` // snapshot payload size
	Created   time.Time `json:"created"`
	Forks     uint64    `json:"forks"` // machines minted from this template
}

// TemplatePool is a named set of golden snapshots. Safe for concurrent
// use; templates themselves are immutable once stored.
type TemplatePool struct {
	mu        sync.RWMutex
	templates map[string]*Template
}

// NewTemplatePool returns an empty pool.
func NewTemplatePool() *TemplatePool {
	return &TemplatePool{templates: make(map[string]*Template)}
}

// Put stores a template under name from snapshot bytes (the Snapshot
// wire format), replacing any previous template of that name. The
// bytes are validated and pre-decoded so every later Fork skips the
// decode entirely.
func (p *TemplatePool) Put(name string, snapshot []byte) (*Template, error) {
	if name == "" {
		return nil, errors.New("sim: template needs a name")
	}
	wire, err := decodeWire(bytes.NewReader(snapshot))
	if err != nil {
		return nil, err
	}
	t := &Template{
		name:    name,
		raw:     append([]byte(nil), snapshot...),
		wire:    wire,
		golden:  mem.GoldenFromState(wire.Phys),
		created: time.Now(),
	}
	p.mu.Lock()
	p.templates[name] = t
	p.mu.Unlock()
	return t, nil
}

// Capture boots the machine, optionally runs a warm-up step budget
// (letting heat tables and translation caches form before the golden
// image is frozen), snapshots it, and stores the result under name.
// The machine is consumed as the template master and should not be
// run afterwards.
func (p *TemplatePool) Capture(name string, m *Machine, warmupSteps uint64) (*Template, error) {
	m.Boot()
	if warmupSteps > 0 {
		if _, halted := m.RunSteps(warmupSteps); halted {
			return nil, fmt.Errorf("sim: template %q halted during warm-up (%d steps)", name, warmupSteps)
		}
	}
	snap, err := m.SnapshotBytes()
	if err != nil {
		return nil, err
	}
	return p.Put(name, snap)
}

// Get returns a template by name.
func (p *TemplatePool) Get(name string) (*Template, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.templates[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTemplateMissing, name)
	}
	return t, nil
}

// Delete removes a template, reporting whether it existed. Machines
// already forked from it keep running: they hold the golden frames
// through their own references.
func (p *TemplatePool) Delete(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.templates[name]
	delete(p.templates, name)
	return ok
}

// List returns every template's metadata, sorted by name.
func (p *TemplatePool) List() []TemplateInfo {
	p.mu.RLock()
	out := make([]TemplateInfo, 0, len(p.templates))
	for _, t := range p.templates {
		out = append(out, t.Info())
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
