package sim_test

// The /v1 surface: versioned paths, the uniform JSON error envelope
// with machine-readable codes, list filtering/pagination, and the
// template CRUD + warm-fork admission flow.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"mips/internal/corpus"
	"mips/internal/sim"
)

// do issues a request with a JSON body (nil = empty) and returns the
// response and body bytes.
func (h *httpHarness) do(method, path string, body any) (*http.Response, []byte) {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

// errCode decodes the error envelope and returns its code, failing the
// test if the body is not a well-formed envelope.
func (h *httpHarness) errCode(body []byte) string {
	h.t.Helper()
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		h.t.Fatalf("error response is not the JSON envelope: %v (%s)", err, body)
	}
	if env.Error == "" {
		h.t.Fatalf("error envelope has empty error field: %s", body)
	}
	return env.Code
}

// TestHTTPErrorEnvelope pins the machine-readable error codes: every
// failing response is {"error": ..., "code": ...} with the documented
// code.
func TestHTTPErrorEnvelope(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 1, QueueDepth: 1, Quantum: 100})

	// bad_spec: unknown program, bad engine, malformed body, conflicting
	// sources — on both the /v1 and legacy paths.
	for _, path := range []string{"/v1/jobs", "/jobs"} {
		resp, body := h.postJSON(path, map[string]any{"program": "nope"})
		if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
			t.Errorf("%s unknown program: status %d code %q, want 400 %q", path, resp.StatusCode, h.errCode(body), sim.CodeBadSpec)
		}
	}
	resp, body := h.postJSON("/v1/jobs", map[string]any{"program": "fib", "engine": "warp"})
	if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
		t.Errorf("bad engine: status %d code %q", resp.StatusCode, h.errCode(body))
	}
	resp, body = h.postJSON("/v1/jobs", map[string]any{"program": "fib", "template": "tpl"})
	if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
		t.Errorf("program+template: status %d code %q", resp.StatusCode, h.errCode(body))
	}

	// not_found: unknown job ID.
	resp, body = h.get("/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound || h.errCode(body) != sim.CodeNotFound {
		t.Errorf("unknown job: status %d code %q, want 404 %q", resp.StatusCode, h.errCode(body), sim.CodeNotFound)
	}

	// template_missing: submitting against and fetching a template the
	// pool does not hold.
	resp, body = h.postJSON("/v1/jobs", map[string]any{"template": "ghost"})
	if resp.StatusCode != http.StatusNotFound || h.errCode(body) != sim.CodeTemplateMissing {
		t.Errorf("submit ghost template: status %d code %q, want 404 %q", resp.StatusCode, h.errCode(body), sim.CodeTemplateMissing)
	}
	resp, body = h.get("/v1/templates/ghost")
	if resp.StatusCode != http.StatusNotFound || h.errCode(body) != sim.CodeTemplateMissing {
		t.Errorf("get ghost template: status %d code %q", resp.StatusCode, h.errCode(body))
	}
	resp, body = h.do(http.MethodDelete, "/v1/templates/ghost", nil)
	if resp.StatusCode != http.StatusNotFound || h.errCode(body) != sim.CodeTemplateMissing {
		t.Errorf("delete ghost template: status %d code %q", resp.StatusCode, h.errCode(body))
	}

	// queue_full: one never-halting job fills the depth-1 queue.
	longjob := map[string]any{"program": "spin", "engine": "reference", "max_steps": uint64(200_000_000)}
	st := h.submit(longjob)
	resp, body = h.postJSON("/v1/jobs", longjob)
	if resp.StatusCode != http.StatusTooManyRequests || h.errCode(body) != sim.CodeQueueFull {
		t.Errorf("overflow: status %d code %q, want 429 %q", resp.StatusCode, h.errCode(body), sim.CodeQueueFull)
	}
	h.postJSON("/v1/jobs/"+st.ID+"/cancel", nil)
	h.waitDone(st.ID)

	// closed: a drained service refuses new work.
	h.svc.Close()
	resp, body = h.postJSON("/v1/jobs", map[string]any{"program": "fib"})
	if resp.StatusCode != http.StatusServiceUnavailable || h.errCode(body) != sim.CodeClosed {
		t.Errorf("closed service: status %d code %q, want 503 %q", resp.StatusCode, h.errCode(body), sim.CodeClosed)
	}
}

// TestHTTPTemplateLifecycle runs the whole warm-fork flow over the
// wire: bake a template from a program, fork jobs from it, compare the
// fork's output against a cold-boot run, then delete the template.
func TestHTTPTemplateLifecycle(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 2, Quantum: 500})

	// Bake: PUT a program template.
	resp, body := h.do(http.MethodPut, "/v1/templates/fib-warm", map[string]any{"program": "fib"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("template put: status %d: %s", resp.StatusCode, body)
	}
	var info sim.TemplateInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "fib-warm" || info.PhysWords == 0 || info.Bytes == 0 {
		t.Fatalf("template info = %+v", info)
	}

	// Listing and single get both show it.
	resp, body = h.get("/v1/templates")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("template list: status %d", resp.StatusCode)
	}
	var list struct {
		Templates []sim.TemplateInfo `json:"templates"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Templates) != 1 || list.Templates[0].Name != "fib-warm" {
		t.Fatalf("template listing = %+v", list.Templates)
	}
	if resp, _ := h.get("/v1/templates/fib-warm"); resp.StatusCode != http.StatusOK {
		t.Fatalf("template get: status %d", resp.StatusCode)
	}

	// Cold-boot reference run.
	cold := h.submit(map[string]any{"program": "fib", "engine": "fast"})
	coldFinal := h.waitDone(cold.ID)
	if coldFinal.State != "done" {
		t.Fatalf("cold job state = %s (%s)", coldFinal.State, coldFinal.Error)
	}

	// Fork two jobs from the template on different engines.
	for _, engine := range []string{"reference", "blocks"} {
		st := h.submit(map[string]any{"template": "fib-warm", "engine": engine})
		if st.Template != "fib-warm" {
			t.Errorf("submit status template = %q, want fib-warm", st.Template)
		}
		final := h.waitDone(st.ID)
		if final.State != "done" {
			t.Fatalf("forked job (%s) state = %s (%s)", engine, final.State, final.Error)
		}
		if final.Output != coldFinal.Output {
			t.Errorf("forked output (%s) = %q, want cold-boot %q", engine, final.Output, coldFinal.Output)
		}
		if final.Template != "fib-warm" {
			t.Errorf("final status template = %q", final.Template)
		}
	}
	p, _ := corpus.Get("fib")
	if p.Output != "" && coldFinal.Output != p.Output {
		t.Errorf("cold output = %q, want corpus %q", coldFinal.Output, p.Output)
	}

	// The fork count shows in template metadata.
	resp, body = h.get("/v1/templates/fib-warm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("template get: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Forks != 2 {
		t.Errorf("template forks = %d, want 2", info.Forks)
	}

	// Delete; the template is gone but nothing else broke.
	resp, _ = h.do(http.MethodDelete, "/v1/templates/fib-warm", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("template delete: status %d", resp.StatusCode)
	}
	if resp, _ := h.get("/v1/templates/fib-warm"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted template still served: status %d", resp.StatusCode)
	}

	// Template PUT with neither/both sources is a bad_spec.
	resp, body = h.do(http.MethodPut, "/v1/templates/x", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
		t.Errorf("empty template put: status %d code %q", resp.StatusCode, h.errCode(body))
	}
}

// TestHTTPListFilterPagination covers ?state=, ?limit=, and ?after= on
// GET /v1/jobs — and that the legacy GET /jobs keeps its bare-array
// shape.
func TestHTTPListFilterPagination(t *testing.T) {
	h := newHTTPHarness(t, sim.ServiceConfig{Workers: 2, Quantum: 500})

	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		st := h.submit(map[string]any{"program": "fib", "name": fmt.Sprintf("fib-%d", i)})
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := h.waitDone(id); st.State != "done" {
			t.Fatalf("job %s state = %s", id, st.State)
		}
	}

	var page struct {
		Jobs []sim.Status `json:"jobs"`
		Next string       `json:"next"`
	}
	decode := func(body []byte) {
		page = struct {
			Jobs []sim.Status `json:"jobs"`
			Next string       `json:"next"`
		}{}
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("list decode: %v (%s)", err, body)
		}
	}

	// Unpaginated: all five, submission order.
	resp, body := h.get("/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	decode(body)
	if len(page.Jobs) != 5 || page.Next != "" {
		t.Fatalf("full list: %d jobs, next %q", len(page.Jobs), page.Next)
	}
	for i, st := range page.Jobs {
		if st.ID != ids[i] {
			t.Errorf("list order: job %d = %s, want %s", i, st.ID, ids[i])
		}
	}

	// Paginate by 2: three pages, cursor chained.
	var got []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination did not terminate")
		}
		path := "/v1/jobs?limit=2"
		if cursor != "" {
			path += "&after=" + cursor
		}
		_, body := h.get(path)
		decode(body)
		for _, st := range page.Jobs {
			got = append(got, st.ID)
		}
		if page.Next == "" {
			break
		}
		cursor = page.Next
	}
	if len(got) != 5 {
		t.Fatalf("paginated walk returned %d jobs: %v", len(got), got)
	}
	for i := range got {
		if got[i] != ids[i] {
			t.Errorf("paginated order: %d = %s, want %s", i, got[i], ids[i])
		}
	}

	// State filter: everything is done; nothing is running.
	_, body = h.get("/v1/jobs?state=done")
	decode(body)
	if len(page.Jobs) != 5 {
		t.Errorf("state=done: %d jobs, want 5", len(page.Jobs))
	}
	_, body = h.get("/v1/jobs?state=running")
	decode(body)
	if len(page.Jobs) != 0 {
		t.Errorf("state=running: %d jobs, want 0", len(page.Jobs))
	}

	// Bad state and bad cursor are bad_spec.
	resp, body = h.get("/v1/jobs?state=zombie")
	if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
		t.Errorf("bad state: status %d code %q", resp.StatusCode, h.errCode(body))
	}
	resp, body = h.get("/v1/jobs?after=job-999")
	if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
		t.Errorf("bad cursor: status %d code %q", resp.StatusCode, h.errCode(body))
	}
	resp, body = h.get("/v1/jobs?limit=bogus")
	if resp.StatusCode != http.StatusBadRequest || h.errCode(body) != sim.CodeBadSpec {
		t.Errorf("bad limit: status %d code %q", resp.StatusCode, h.errCode(body))
	}

	// Legacy list: still the bare array.
	_, body = h.get("/jobs")
	var bare []sim.Status
	if err := json.Unmarshal(body, &bare); err != nil {
		t.Fatalf("legacy list is no longer a bare array: %v (%s)", err, body)
	}
	if len(bare) != 5 {
		t.Errorf("legacy list: %d jobs, want 5", len(bare))
	}

	// /v1 job paths serve the same jobs as the legacy aliases.
	resp, _ = h.get("/v1/jobs/" + ids[0] + "/status")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/v1 status alias: status %d", resp.StatusCode)
	}
	resp, _ = h.get("/v1/jobs/" + ids[0] + "/output")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/v1 output: status %d", resp.StatusCode)
	}
}
