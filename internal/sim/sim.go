package sim

import (
	"errors"
	"strconv"
	"strings"

	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/mem"
	"mips/internal/trace"
)

// regResult is the register the bare machine's monitor-call ABI passes
// its argument in (matches the code generator's convention).
const regResult = isa.Reg(1)

// barePhysWords is the default bare-machine memory size: 65K words,
// enough for every corpus program with headroom.
const barePhysWords = 1 << 16

// Hooks bundles the CPU's observer callbacks for WithHooks. Nil fields
// stay uninstalled, preserving the zero-overhead contract; a Step hook
// forces the exact per-instruction engine by design.
type Hooks struct {
	Step   func(pc uint32, in isa.Instr)
	Mem    func(pc, addr uint32, store bool)
	Branch func(pc, target uint32, taken bool)
	Exc    func(pc uint32, primary, secondary isa.Cause, trapCode uint16)
	RFE    func(pc uint32)
	Stall  func(pc uint32)
}

type config struct {
	engine      Engine
	kernelCfg   *kernel.Config
	interlocked bool
	physWords   int
	spaceBits   uint8
	hooks       Hooks
	attach      []func(*cpu.CPU)
	observer    *trace.Observer
	registry    *trace.Registry
	dma         bool
}

// Option configures New (and Restore, for the options that attach
// observers or override the engine).
type Option func(*config)

// WithEngine selects the execution engine. Default (the zero Engine)
// follows the process-wide default.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithKernel builds the full machine — dispatch ROM, demand paging,
// devices — instead of the bare machine. Images loaded afterwards become
// kernel processes.
func WithKernel(cfg kernel.Config) Option { return func(c *config) { c.kernelCfg = &cfg } }

// WithInterlocked enables the hardware-interlock counterfactual on the
// bare machine (the ablation experiments).
func WithInterlocked(on bool) Option { return func(c *config) { c.interlocked = on } }

// WithPhysWords sets the bare machine's physical memory size in words
// (default 65536). Kernel machines size memory via kernel.Config.
func WithPhysWords(n int) Option { return func(c *config) { c.physWords = n } }

// WithSpaceBits sets the address-space size (log2 words) processes are
// loaded with on the kernel machine (default 16, the minimum).
func WithSpaceBits(b uint8) Option { return func(c *config) { c.spaceBits = b } }

// WithHooks installs CPU observer callbacks.
func WithHooks(h Hooks) Option { return func(c *config) { c.hooks = h } }

// WithAttach registers a callback invoked with the constructed CPU —
// the escape hatch for observers the typed options don't cover
// (profilers, tracers, tests). May be given more than once.
func WithAttach(fn func(*cpu.CPU)) Option {
	return func(c *config) { c.attach = append(c.attach, fn) }
}

// WithTelemetry registers the machine's counters into a metrics
// registry: cpu.* and xlate.* for bare machines, plus kernel.* (and
// dma.* when a DMA engine is attached) for kernel machines. New fails
// if the registry already holds those series.
func WithTelemetry(reg *trace.Registry) Option { return func(c *config) { c.registry = reg } }

// WithObserver attaches a trace.Observer (tracer and/or profiler).
func WithObserver(obs *trace.Observer) Option { return func(c *config) { c.observer = obs } }

// WithDMA attaches a DMA engine to the bare machine's free memory
// cycles (kernel machines manage their own devices).
func WithDMA() Option { return func(c *config) { c.dma = true } }

// Machine is a simulation behind one uniform surface: load images, run
// (wholesale or in quanta), observe, snapshot. Construct with New or
// Restore. A Machine is not safe for concurrent use; the job service
// serializes access at quantum boundaries.
type Machine struct {
	engine      Engine
	interlocked bool
	spaceBits   uint8

	cpu  *cpu.CPU
	kern *kernel.Machine // nil for the bare machine

	out      strings.Builder // bare-machine console
	hazards  []cpu.Hazard
	booted   bool // kernel machine has taken its reset exception
	loaded   int
	images   []*isa.Image // every image loaded, for late symbolization
	template string       // template the machine was forked from ("" = none)
}

// New builds a machine. With no options: the bare machine on the
// process-default engine.
func New(opts ...Option) (*Machine, error) {
	cfg := config{spaceBits: 16}
	for _, o := range opts {
		o(&cfg)
	}
	m := &Machine{engine: cfg.engine.resolve(), interlocked: cfg.interlocked, spaceBits: cfg.spaceBits}

	if cfg.kernelCfg != nil {
		k, err := kernel.NewMachine(*cfg.kernelCfg)
		if err != nil {
			return nil, err
		}
		m.kern = k
		m.cpu = k.CPU
	} else {
		words := cfg.physWords
		if words <= 0 {
			words = barePhysWords
		}
		phys := mem.NewPhysical(words)
		bus := cpu.NewBus(phys)
		if cfg.dma {
			bus.DMA = mem.NewDMA(phys)
		}
		m.cpu = cpu.New(bus)
		m.cpu.Interlocked = cfg.interlocked
		m.installBareTrap()
		m.cpu.SetAudit(func(h cpu.Hazard) { m.hazards = append(m.hazards, h) })
		m.booted = true // the bare machine needs no reset exception
	}
	m.engine.apply(m.cpu)
	if err := m.attachObservers(&cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// installBareTrap services monitor calls host-side: the bare machine's
// whole "kernel" is one rfe at physical address zero (installed at
// Load), and this hook does the work the trap asked for.
func (m *Machine) installBareTrap() {
	m.cpu.SetTrapHook(func(code uint16) {
		switch code {
		case kernel.SysHalt:
			m.cpu.Halt()
		case kernel.SysPutChar:
			m.out.WriteByte(byte(m.cpu.Regs[regResult]))
		case kernel.SysPutInt:
			m.out.WriteString(strconv.FormatInt(int64(int32(m.cpu.Regs[regResult])), 10))
			m.out.WriteByte('\n')
		}
	})
}

// attachObservers wires hooks, observers, and telemetry — shared by New
// and Restore.
func (m *Machine) attachObservers(cfg *config) error {
	h := cfg.hooks
	if h.Step != nil {
		m.cpu.SetStepHook(h.Step)
	}
	if h.Mem != nil {
		m.cpu.SetMemHook(h.Mem)
	}
	if h.Branch != nil {
		m.cpu.SetBranchHook(h.Branch)
	}
	if h.Exc != nil {
		m.cpu.SetExcHook(h.Exc)
	}
	if h.RFE != nil {
		m.cpu.SetRFEHook(h.RFE)
	}
	if h.Stall != nil {
		m.cpu.SetStallHook(h.Stall)
	}
	if obs := cfg.observer; obs != nil {
		if m.kern != nil {
			obs.AttachMachine(m.kern)
		} else {
			obs.Attach(m.cpu)
		}
	}
	if reg := cfg.registry; reg != nil {
		if m.kern != nil {
			if err := trace.RegisterMachine(reg, m.kern); err != nil {
				return err
			}
		} else {
			if err := trace.RegisterCPUStats(reg, "cpu.", &m.cpu.Stats); err != nil {
				return err
			}
			if err := trace.RegisterTranslation(reg, "xlate.", &m.cpu.Trans); err != nil {
				return err
			}
		}
		if d := m.cpu.Bus.DMA; d != nil {
			if err := trace.RegisterDMA(reg, "dma.", d); err != nil {
				return err
			}
		}
	}
	for _, fn := range cfg.attach {
		fn(m.cpu)
	}
	return nil
}

// Load loads an image: onto the bare machine directly (one image only),
// or as a new process of the kernel machine. May be called repeatedly
// on kernel machines to load several processes.
func (m *Machine) Load(im *isa.Image) error {
	if m.kern != nil {
		_, err := m.kern.AddProcess(im, m.spaceBits)
		if err == nil {
			m.loaded++
			m.images = append(m.images, im)
		}
		return err
	}
	if m.loaded > 0 {
		return errors.New("sim: bare machine already holds an image")
	}
	if err := m.cpu.LoadImage(im); err != nil {
		return err
	}
	// Monitor calls vector through the exception path to physical
	// address zero; one rfe resumes after the trap (the host hook
	// already did the work). Images start above it (BareTextBase).
	m.cpu.IMem[0] = isa.Word(isa.RFE())
	m.cpu.SetPC(uint32(im.Entry))
	m.loaded++
	m.images = append(m.images, im)
	return nil
}

// Images returns every image loaded into the machine, in load order.
// Observers attached after construction (the job service's per-job
// profiler) use them to register symbols; machines built by Restore
// have none, so restored jobs profile unsymbolized.
func (m *Machine) Images() []*isa.Image { return m.images }

// boot takes the kernel machine through its power-up reset exactly
// once; resumed (restored) machines skip it.
func (m *Machine) boot() {
	if !m.booted {
		m.cpu.Reset()
		m.booted = true
	}
}

// Boot forces the one-time power-up reset now instead of at the first
// Run/RunSteps call. Template capture uses it so a golden snapshot is
// taken post-boot — forks then start retiring user instructions
// immediately — and the admission benchmark uses it to separate
// construction cost from execution.
func (m *Machine) Boot() { m.boot() }

// Template returns the name of the template this machine was forked
// from, or "" for machines that were built cold. The label survives
// snapshot/restore (provenance).
func (m *Machine) Template() string { return m.template }

// COWStats reports the machine's copy-on-write memory counters:
// zero-valued for cold-built machines, live fault/privatization counts
// for template forks.
func (m *Machine) COWStats() mem.COWStats { return m.cpu.Bus.MMU.Phys.COWStats() }

// Run executes until the machine halts or the step limit is reached,
// returning the number of instructions executed. Calling Run again
// continues where the previous call stopped.
func (m *Machine) Run(maxSteps uint64) (uint64, error) {
	m.boot()
	return m.cpu.Run(maxSteps)
}

// RunSteps executes at most n scheduler steps (a step retires one
// instruction word, one whole chained superblock run on the Blocks
// engine, or one whole trace-dispatch pass on the Traces engine) and
// reports the instructions executed and whether the machine halted.
// It is the job service's preemption quantum: the machine stops at an
// instruction boundary, snapshot-safe, and continues with the next
// call.
func (m *Machine) RunSteps(n uint64) (uint64, bool) {
	m.boot()
	start := m.cpu.Stats.Instructions
	for i := uint64(0); i < n; i++ {
		if m.cpu.Step() != nil {
			break
		}
	}
	return m.cpu.Stats.Instructions - start, m.cpu.Halted
}

// Output returns everything the program wrote to the console so far.
func (m *Machine) Output() string {
	if m.kern != nil {
		return m.kern.ConsoleOutput()
	}
	return m.out.String()
}

// Stats returns the machine's dynamic measurements.
func (m *Machine) Stats() *cpu.Stats { return &m.cpu.Stats }

// Trans returns the translation-layer counters.
func (m *Machine) Trans() *cpu.TranslationStats { return &m.cpu.Trans }

// Hazards returns the load-use violations the audit recorded (bare
// machine; correct reorganized code records none).
func (m *Machine) Hazards() []cpu.Hazard { return m.hazards }

// Halted reports whether the machine has stopped.
func (m *Machine) Halted() bool { return m.cpu.Halted }

// Engine returns the resolved engine the machine runs on.
func (m *Machine) Engine() Engine { return m.engine }

// CPU exposes the underlying processor for tests and tools that need
// state the facade does not surface. Treat it as read-mostly.
func (m *Machine) CPU() *cpu.CPU { return m.cpu }

// Kernel returns the kernel machine, or nil for the bare machine.
func (m *Machine) Kernel() *kernel.Machine { return m.kern }

// DMA returns the bare machine's DMA engine (WithDMA), the kernel
// machine's if attached, or nil.
func (m *Machine) DMA() *mem.DMA { return m.cpu.Bus.DMA }
