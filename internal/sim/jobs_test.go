package sim_test

// The job service's contract: many machines share a bounded worker pool
// fairly through checkpoint-preemption, submission backpressure is
// explicit, and a job snapshotted mid-run resumes into the same final
// output. The concurrency tests here are the ones `go test -race` leans
// on.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"mips/internal/asm"
	"mips/internal/corpus"
	"mips/internal/isa"
	"mips/internal/reorg"
	"mips/internal/sim"
	"mips/internal/trace"
)

// spinImage assembles an image that never halts, for cancellation and
// backpressure tests.
func spinImage(t *testing.T) *isa.Image {
	t.Helper()
	u, err := asm.Parse("\t.entry main\nmain:\tjmp main\n")
	if err != nil {
		t.Fatal(err)
	}
	ro, _ := reorg.Reorganize(u, reorg.All())
	im, err := asm.Assemble(ro)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func buildFor(im *isa.Image, engine sim.Engine) func() (*sim.Machine, error) {
	return func() (*sim.Machine, error) {
		m, err := sim.New(sim.WithEngine(engine))
		if err != nil {
			return nil, err
		}
		if err := m.Load(im); err != nil {
			return nil, err
		}
		return m, nil
	}
}

// TestServiceManyConcurrentJobs runs 64 jobs over a small worker pool
// with a quantum tiny enough that every job is preempted many times,
// and verifies each finishes with the right output.
func TestServiceManyConcurrentJobs(t *testing.T) {
	p, err := corpus.Get("fib")
	if err != nil {
		t.Fatal(err)
	}
	im := compileCorpus(t, "fib", false)
	reg := trace.NewRegistry()
	svc := sim.NewService(sim.ServiceConfig{
		Workers:    4,
		QueueDepth: 128,
		// Small enough that every engine is preempted repeatedly — one
		// Blocks step retires a whole chained superblock run, so fib is
		// only ~120 Blocks steps end to end.
		Quantum: 40,
		Metrics: reg,
	})
	defer svc.Close()

	const n = 64
	jobs := make([]*sim.Job, 0, n)
	engines := []sim.Engine{sim.Reference, sim.FastPath, sim.Blocks}
	for i := 0; i < n; i++ {
		j, err := svc.Submit(sim.JobSpec{
			Name:  "fib",
			Build: buildFor(im, engines[i%len(engines)]),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, j := range jobs {
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		st := j.Status()
		if st.State != "done" {
			t.Errorf("job %d state = %s (%s)", i, st.State, st.Error)
		}
		if st.Quanta < 2 {
			t.Errorf("job %d ran in %d quanta; preemption never happened", i, st.Quanta)
		}
		if p.Output != "" && st.Output != p.Output {
			t.Errorf("job %d output = %q, want %q", i, st.Output, p.Output)
		}
	}
	snap := reg.Snapshot()
	if snap["jobs.completed"] != n {
		t.Errorf("jobs.completed = %d, want %d", snap["jobs.completed"], n)
	}
	if snap["jobs.active"] != 0 {
		t.Errorf("jobs.active = %d after all jobs finished", snap["jobs.active"])
	}
}

// TestServiceBackpressure pins the admission bound: QueueDepth
// unfinished jobs in the system rejects the next Submit with
// ErrQueueFull, and capacity frees as jobs finish.
func TestServiceBackpressure(t *testing.T) {
	im := spinImage(t)
	reg := trace.NewRegistry()
	svc := sim.NewService(sim.ServiceConfig{
		Workers:    1,
		QueueDepth: 2,
		Quantum:    100,
		Metrics:    reg,
	})
	defer svc.Close()

	j1, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath)})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath)}); !errors.Is(err, sim.ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := reg.Snapshot()["jobs.rejected"]; got != 1 {
		t.Errorf("jobs.rejected = %d, want 1", got)
	}

	svc.Cancel(j1.ID)
	svc.Cancel(j2.ID)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	j1.Wait(ctx)
	j2.Wait(ctx)
	if _, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath), MaxSteps: 200}); err != nil {
		t.Fatalf("submit after capacity freed: %v", err)
	}
}

// TestServiceCancelAndTimeout covers the two ways a job dies at a
// quantum boundary.
func TestServiceCancelAndTimeout(t *testing.T) {
	im := spinImage(t)
	svc := sim.NewService(sim.ServiceConfig{Workers: 2, Quantum: 100})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	j, err := svc.Submit(sim.JobSpec{Name: "spin", Build: buildFor(im, sim.FastPath)})
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Cancel(j.ID) {
		t.Fatal("Cancel returned false for a live job")
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st := j.Status(); st.State != "cancelled" {
		t.Errorf("state = %s, want cancelled", st.State)
	}

	jt, err := svc.Submit(sim.JobSpec{
		Name:    "spin-timeout",
		Build:   buildFor(im, sim.FastPath),
		Timeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jt.Wait(ctx); !errors.Is(err, sim.ErrTimeout) {
		t.Fatalf("wait: err = %v, want ErrTimeout", err)
	}
	if st := jt.Status(); st.State != "failed" {
		t.Errorf("state = %s, want failed", st.State)
	}

	if svc.Cancel("job-999") {
		t.Error("Cancel invented a job")
	}
}

// TestServiceStepLimit pins that a job that never halts fails cleanly
// at its step budget.
func TestServiceStepLimit(t *testing.T) {
	im := spinImage(t)
	svc := sim.NewService(sim.ServiceConfig{Workers: 1, Quantum: 100})
	defer svc.Close()
	j, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath), MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := j.Wait(ctx); err == nil {
		t.Fatal("spin job completed without error")
	}
	if st := j.Status(); st.State != "failed" {
		t.Errorf("state = %s, want failed", st.State)
	}
}

// TestServiceSnapshotMidRunResumes downloads a live job's checkpoint,
// submits it as a new job, and demands both finish with identical
// output — the checkpoint-migration workflow end to end.
func TestServiceSnapshotMidRunResumes(t *testing.T) {
	im := compileCorpus(t, "sort", false)
	svc := sim.NewService(sim.ServiceConfig{Workers: 2, Quantum: 300})
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	j, err := svc.Submit(sim.JobSpec{Name: "sort", Build: buildFor(im, sim.Blocks)})
	if err != nil {
		t.Fatal(err)
	}
	// Grab a checkpoint while the job is (very likely) still running;
	// either way the snapshot is taken at a quantum boundary and must
	// resume to the same final output.
	var snap []byte
	for {
		snap, err = j.Snapshot()
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("job never built its machine")
		case <-time.After(time.Millisecond):
		}
	}
	r, err := svc.Submit(sim.JobSpec{
		Name: "sort-resumed",
		Build: func() (*sim.Machine, error) {
			return sim.Restore(bytes.NewReader(snap))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("original: %v", err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatalf("resumed: %v", err)
	}
	jOut, _ := j.Output()
	rOut, _ := r.Output()
	if jOut != rOut {
		t.Errorf("resumed output %q != original %q", rOut, jOut)
	}
	if jOut == "" {
		t.Error("sort produced no output; the comparison is vacuous")
	}
}

// TestServiceDrain pins graceful shutdown: Drain refuses new work and
// returns once every accepted job is terminal.
func TestServiceDrain(t *testing.T) {
	im := compileCorpus(t, "fib", false)
	svc := sim.NewService(sim.ServiceConfig{Workers: 2, Quantum: 1000})
	for i := 0; i < 8; i++ {
		if _, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := svc.Submit(sim.JobSpec{Build: buildFor(im, sim.FastPath)}); !errors.Is(err, sim.ErrClosed) {
		t.Fatalf("submit after drain: err = %v, want ErrClosed", err)
	}
	svc.Close()
	for _, j := range svc.Jobs() {
		if st := j.Status(); st.State != "done" {
			t.Errorf("%s state = %s after drain", j.ID, st.State)
		}
	}
}
