package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"mips/internal/cpu"
	"mips/internal/kernel"
	"mips/internal/mem"
)

// Snapshot wire format, version 5:
//
//	offset  size  field
//	0       8     magic "MIPSSNAP"
//	8       4     format version, little-endian uint32
//	12      8     payload length in bytes, little-endian uint64
//	20      4     CRC-32 (IEEE) of the payload
//	24      n     payload: gob-encoded snapshotWire
//
// The payload is deterministic: every map in the machine state is
// flattened to a slice sorted by key before encoding, so two identical
// machines produce byte-identical snapshots. Version policy: the
// version bumps on ANY change to snapshotWire or the captured state
// structs — there is no in-place migration; Restore rejects versions it
// was not built for (see DESIGN.md "Snapshot format").

const (
	snapshotMagic = "MIPSSNAP"
	// SnapshotVersion is the current snapshot format version. Version 2
	// extended cpu.TranslationStats with the trace-tier counters;
	// version 3 extended it again with the deopt/refusal taxonomy and
	// tier-residency counters; version 4 added the side-trace, inline-
	// cache, and heat-eviction counters; version 5 added the template
	// provenance label (warm-fork admission). Each changes the gob
	// payload.
	SnapshotVersion = 5
	snapshotHeader  = 24
	// maxSnapshotPayload bounds how much Restore will read: a corrupt
	// length field must not become an allocation bomb. 1 GiB is far
	// above any real machine capture (the largest memory is 16 MB plus
	// instruction memory and backing store).
	maxSnapshotPayload = 1 << 30
)

// ErrSnapshotFormat wraps every malformed-snapshot failure, so callers
// can distinguish "bad bytes" from I/O errors.
var ErrSnapshotFormat = fmt.Errorf("sim: malformed snapshot")

// snapshotWire is the gob payload: machine shape, facade state, and the
// per-layer captures.
type snapshotWire struct {
	Kernel      bool
	Engine      int32
	Interlocked bool
	Booted      bool
	SpaceBits   uint8
	Output      string // bare-machine console
	Hazards     []cpu.Hazard
	Template    string // template the machine was forked from ("" = none)

	CPU  cpu.State
	Phys mem.PhysState
	MMU  mem.MMUState
	DMA  *mem.DMAState
	Kern *kernel.State
}

// Snapshot writes a deterministic, versioned checkpoint of the whole
// machine. Call it only at an instruction boundary: between Step/Run
// calls, or from the job service's quantum boundaries.
func (m *Machine) Snapshot(w io.Writer) error {
	wire := snapshotWire{
		Kernel:      m.kern != nil,
		Engine:      int32(m.engine),
		Interlocked: m.interlocked,
		Booted:      m.booted,
		SpaceBits:   m.spaceBits,
		Output:      m.out.String(),
		Hazards:     append([]cpu.Hazard(nil), m.hazards...),
		Template:    m.template,
		CPU:         m.cpu.CaptureState(),
		Phys:        m.cpu.Bus.MMU.Phys.CaptureState(),
		MMU:         m.cpu.Bus.MMU.CaptureState(),
	}
	if d := m.cpu.Bus.DMA; d != nil {
		st := d.CaptureState()
		wire.DMA = &st
	}
	if m.kern != nil {
		st := m.kern.CaptureState()
		wire.Kern = &st
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&wire); err != nil {
		return fmt.Errorf("sim: snapshot encode: %w", err)
	}
	var hdr [snapshotHeader]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// SnapshotBytes is Snapshot into a byte slice.
func (m *Machine) SnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeWire validates the container and decodes the payload. Malformed
// input of any kind — truncated, wrong magic or version, bad checksum,
// corrupt gob — returns an error wrapping ErrSnapshotFormat; it never
// panics (the fuzz tests pin this).
func decodeWire(r io.Reader) (*snapshotWire, error) {
	var hdr [snapshotHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrSnapshotFormat, err)
	}
	if string(hdr[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)", ErrSnapshotFormat, v, SnapshotVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[12:20])
	if n > maxSnapshotPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrSnapshotFormat, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrSnapshotFormat, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(hdr[20:24]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotFormat)
	}
	wire, err := decodeGob(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: payload decode: %v", ErrSnapshotFormat, err)
	}
	return wire, nil
}

// decodeGob decodes the payload, converting any decoder panic (gob can
// panic on pathological type descriptions) into an error.
func decodeGob(payload []byte) (wire *snapshotWire, err error) {
	defer func() {
		if r := recover(); r != nil {
			wire, err = nil, fmt.Errorf("decoder panic: %v", r)
		}
	}()
	wire = new(snapshotWire)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(wire); err != nil {
		return nil, err
	}
	return wire, nil
}

// Restore rebuilds a machine from a snapshot. The machine continues
// exactly where the original left off: same registers, memory, pipeline
// and device state, same future event stream. Options may re-attach
// observability (WithHooks, WithTelemetry, WithObserver, WithAttach)
// and override the engine (WithEngine) — engine choice never changes
// observable behavior, so a snapshot taken on one engine may resume on
// another.
func Restore(r io.Reader, opts ...Option) (*Machine, error) {
	wire, err := decodeWire(r)
	if err != nil {
		return nil, err
	}
	cfg := config{spaceBits: wire.SpaceBits}
	for _, o := range opts {
		o(&cfg)
	}
	return buildFromWire(wire, &cfg, nil)
}

// buildFromWire materializes a machine from a decoded snapshot payload —
// the tail shared by Restore and Template.Fork. With fork nil the
// machine gets a fresh physical memory and the capture's contents are
// copied in. With fork non-nil (a copy-on-write fork of the template's
// golden frames, already holding the captured contents) the memory is
// adopted as-is and the O(memory) physical restore is skipped — that
// skip is what makes warm-fork admission O(pages-touched).
//
// The wire may be shared by concurrent forks: this function and every
// RestoreState it calls only read from it (slices are deep-copied into
// the machine).
func buildFromWire(wire *snapshotWire, cfg *config, fork *mem.Physical) (*Machine, error) {
	if cfg.spaceBits == 0 {
		cfg.spaceBits = 16
	}
	engine := Engine(wire.Engine)
	if cfg.engine != Default {
		engine = cfg.engine.resolve()
	}
	if engine < Reference || engine > Traces {
		return nil, fmt.Errorf("%w: engine %d out of range", ErrSnapshotFormat, wire.Engine)
	}

	m := &Machine{
		engine:      engine,
		interlocked: wire.Interlocked,
		spaceBits:   cfg.spaceBits,
		booted:      wire.Booted,
		loaded:      1,
		hazards:     append([]cpu.Hazard(nil), wire.Hazards...),
		template:    wire.Template,
	}
	if wire.Kernel {
		if wire.Kern == nil {
			return nil, fmt.Errorf("%w: kernel snapshot without device state", ErrSnapshotFormat)
		}
		var k *kernel.Machine
		var err error
		if fork != nil {
			k, err = kernel.NewMachineShell(fork, kernel.Config{})
		} else {
			k, err = kernel.NewMachine(kernel.Config{PhysWords: int(wire.Phys.Size)})
		}
		if err != nil {
			return nil, fmt.Errorf("sim: restore: %w", err)
		}
		m.kern = k
		m.cpu = k.CPU
		k.RestoreState(*wire.Kern)
	} else {
		phys := fork
		if phys == nil {
			phys = mem.NewPhysical(int(wire.Phys.Size))
		}
		bus := cpu.NewBus(phys)
		if wire.DMA != nil || cfg.dma {
			bus.DMA = mem.NewDMA(phys)
		}
		m.cpu = cpu.New(bus)
		m.installBareTrap()
		m.cpu.SetAudit(func(h cpu.Hazard) { m.hazards = append(m.hazards, h) })
		m.out.WriteString(wire.Output)
	}
	if fork == nil {
		if err := m.cpu.Bus.MMU.Phys.RestoreState(wire.Phys); err != nil {
			return nil, fmt.Errorf("sim: restore: %w", err)
		}
	}
	m.cpu.Bus.MMU.RestoreState(wire.MMU)
	if err := m.cpu.RestoreState(wire.CPU); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	if wire.DMA != nil {
		m.cpu.Bus.DMA.RestoreState(*wire.DMA)
	}
	m.cpu.Interlocked = wire.Interlocked
	m.engine.apply(m.cpu)
	if err := m.attachObservers(cfg); err != nil {
		return nil, err
	}
	return m, nil
}
