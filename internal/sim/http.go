package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"mips/internal/isa"
	"mips/internal/kernel"
)

// HTTP surface of the job service, mounted under /jobs (cmd/mipsd
// mounts it on the telemetry server):
//
//	POST /jobs               submit a job (JSON body, see jobRequest)
//	GET  /jobs               list job statuses
//	GET  /jobs/{id}          one job's status
//	GET  /jobs/{id}/output   console output so far (text)
//	GET  /jobs/{id}/profile  folded cycle stacks (text; profile: true jobs)
//	GET  /jobs/{id}/snapshot checkpoint download (binary, resumable)
//	POST /jobs/{id}/cancel   request cancellation
//
// A submitted job names a built-in program, or carries a snapshot from
// a previous run (the /jobs/{id}/snapshot bytes, base64 in JSON) to
// resume it — possibly on a different engine.

// ProgramFunc compiles a named program; kernelTarget selects the
// kernel-process memory layout. cmd/mipsd supplies the corpus this way
// so the sim package stays free of the compiler.
type ProgramFunc func(kernelTarget bool) (*isa.Image, error)

// HTTPConfig assembles the job HTTP handler.
type HTTPConfig struct {
	// Programs maps submittable program names to their builders.
	Programs map[string]ProgramFunc
}

// jobRequest is the POST /jobs body.
type jobRequest struct {
	Name      string `json:"name"`       // display label (default: program)
	Tenant    string `json:"tenant"`     // fleet-rollup tenant label (default "default")
	Program   string `json:"program"`    // built-in program name
	Snapshot  []byte `json:"snapshot"`   // base64 snapshot to resume instead
	Engine    string `json:"engine"`     // reference | fast | blocks (default: process default)
	Kernel    bool   `json:"kernel"`     // run under the kernel machine
	Timer     uint32 `json:"timer"`      // kernel timer period (implies kernel)
	Processes int    `json:"processes"`  // kernel: copies of the program to load (default 1)
	SpaceBits uint8  `json:"space_bits"` // kernel address-space size (default 16)
	MaxSteps  uint64 `json:"max_steps"`  // step budget (default: service default)
	TimeoutMS int64  `json:"timeout_ms"` // wall-clock bound (0 = none)
	Profile   bool   `json:"profile"`    // attach a profiler (exact engine; fleet flamegraph)
	Trace     bool   `json:"trace"`      // attach a tracer (exact engine; sampled SSE source)
}

// Handler returns the job service's HTTP API.
func (s *Service) Handler(cfg HTTPConfig) http.Handler {
	h := &jobHandler{svc: s, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("POST /jobs/{$}", h.submit)
	mux.HandleFunc("GET /jobs", h.list)
	mux.HandleFunc("GET /jobs/{$}", h.list)
	mux.HandleFunc("GET /jobs/{id}", h.status)
	mux.HandleFunc("GET /jobs/{id}/output", h.output)
	mux.HandleFunc("GET /jobs/{id}/profile", h.profile)
	mux.HandleFunc("GET /jobs/{id}/snapshot", h.snapshot)
	mux.HandleFunc("POST /jobs/{id}/cancel", h.cancel)
	return mux
}

type jobHandler struct {
	svc *Service
	cfg HTTPConfig
}

func httpError(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (h *jobHandler) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSnapshotPayload)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := h.buildSpec(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := h.svc.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// buildSpec validates a request eagerly (unknown program, bad engine)
// but defers machine construction to the worker pool.
func (h *jobHandler) buildSpec(req jobRequest) (JobSpec, error) {
	engine, err := ParseEngine(req.Engine)
	if err != nil {
		return JobSpec{}, err
	}
	spec := JobSpec{
		Name:     req.Name,
		Tenant:   req.Tenant,
		MaxSteps: req.MaxSteps,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		Profile:  req.Profile,
		Trace:    req.Trace,
	}
	if len(req.Snapshot) > 0 {
		if req.Program != "" {
			return JobSpec{}, errors.New("give either a program or a snapshot, not both")
		}
		snap := req.Snapshot
		if spec.Name == "" {
			spec.Name = "restore"
		}
		spec.Build = func() (*Machine, error) {
			return Restore(bytes.NewReader(snap), WithEngine(engine))
		}
		return spec, nil
	}
	prog, ok := h.cfg.Programs[req.Program]
	if !ok {
		names := make([]string, 0, len(h.cfg.Programs))
		for n := range h.cfg.Programs {
			names = append(names, n)
		}
		sort.Strings(names)
		return JobSpec{}, fmt.Errorf("unknown program %q (have %v)", req.Program, names)
	}
	if spec.Name == "" {
		spec.Name = req.Program
	}
	useKernel := req.Kernel || req.Timer > 0
	nproc := req.Processes
	if nproc <= 0 {
		nproc = 1
	}
	if nproc > 1 && !useKernel {
		return JobSpec{}, errors.New("multiple processes need kernel: true")
	}
	spec.Build = func() (*Machine, error) {
		im, err := prog(useKernel)
		if err != nil {
			return nil, err
		}
		opts := []Option{WithEngine(engine)}
		if useKernel {
			opts = append(opts, WithKernel(kernel.Config{TimerPeriod: req.Timer}))
			if req.SpaceBits > 0 {
				opts = append(opts, WithSpaceBits(req.SpaceBits))
			}
		}
		m, err := New(opts...)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nproc; i++ {
			if err := m.Load(im); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	return spec, nil
}

func (h *jobHandler) list(w http.ResponseWriter, r *http.Request) {
	jobs := h.svc.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *jobHandler) job(w http.ResponseWriter, r *http.Request) *Job {
	j, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return nil
	}
	return j
}

func (h *jobHandler) status(w http.ResponseWriter, r *http.Request) {
	if j := h.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (h *jobHandler) output(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	out, err := j.Output()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(out))
}

// profile serves the job's folded cycle-attribution stacks as text,
// heaviest stack first — the same format /profile/flame emits, so the
// output feeds flamegraph tooling directly.
func (h *jobHandler) profile(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	folded := j.FoldedProfile()
	if folded == nil {
		httpError(w, http.StatusConflict, errors.New("job was not submitted with profile: true (or has not built its machine)"))
		return
	}
	type row struct {
		stack string
		n     uint64
	}
	rows := make([]row, 0, len(folded))
	for s, n := range folded {
		rows = append(rows, row{s, n})
	}
	sort.Slice(rows, func(i, k int) bool {
		if rows[i].n != rows[k].n {
			return rows[i].n > rows[k].n
		}
		return rows[i].stack < rows[k].stack
	})
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, rw := range rows {
		fmt.Fprintf(w, "%s %d\n", rw.stack, rw.n)
	}
}

func (h *jobHandler) snapshot(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	snap, err := j.Snapshot()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.snap", j.ID))
	w.Write(snap)
}

func (h *jobHandler) cancel(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	h.svc.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}
