package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"mips/internal/isa"
	"mips/internal/kernel"
)

// HTTP surface of the job service (cmd/mipsd mounts it on the
// telemetry server). The versioned surface lives under /v1:
//
//	POST   /v1/jobs                  submit a job (JSON body, see jobRequest)
//	GET    /v1/jobs                  list jobs (?state= filter, ?limit=/?after= pagination)
//	GET    /v1/jobs/{id}             one job's status
//	GET    /v1/jobs/{id}/status      alias of the above
//	GET    /v1/jobs/{id}/output      console output so far (text)
//	GET    /v1/jobs/{id}/profile     folded cycle stacks (text; profile: true jobs)
//	GET    /v1/jobs/{id}/snapshot    checkpoint download (binary, resumable)
//	POST   /v1/jobs/{id}/cancel      request cancellation
//	PUT    /v1/templates/{name}      create/replace a golden template (JSON body, see templateRequest)
//	GET    /v1/templates             list templates
//	GET    /v1/templates/{name}      one template's metadata
//	DELETE /v1/templates/{name}      delete a template (live forks keep running)
//
// The legacy unversioned /jobs paths remain mounted as thin aliases for
// one release (see the README deprecation note); new clients should use
// /v1. Every error response is one JSON envelope:
//
//	{"error": "human-readable message", "code": "machine_readable_code"}
//
// with codes queue_full, closed, not_found, bad_spec, template_missing.
//
// A submitted job names a built-in program, carries a snapshot from a
// previous run (the snapshot endpoint's bytes, base64 in JSON) to
// resume it — possibly on a different engine — or names a template to
// warm-fork from.

// ProgramFunc compiles a named program; kernelTarget selects the
// kernel-process memory layout. cmd/mipsd supplies the corpus this way
// so the sim package stays free of the compiler.
type ProgramFunc func(kernelTarget bool) (*isa.Image, error)

// HTTPConfig assembles the job HTTP handler.
type HTTPConfig struct {
	// Programs maps submittable program names to their builders.
	Programs map[string]ProgramFunc
	// Templates is the golden-template pool served under /v1/templates
	// and forked by template submissions. Handler creates a private pool
	// when nil.
	Templates *TemplatePool
}

// Machine-readable error codes carried in the JSON error envelope.
const (
	CodeQueueFull       = "queue_full"       // admission backpressure; retry after jobs finish
	CodeClosed          = "closed"           // service is draining/closed
	CodeNotFound        = "not_found"        // no such job, or state not available yet
	CodeBadSpec         = "bad_spec"         // malformed or inconsistent request
	CodeTemplateMissing = "template_missing" // no such template
)

// errorEnvelope is the uniform JSON error body.
type errorEnvelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Name      string `json:"name"`       // display label (default: program/template)
	Tenant    string `json:"tenant"`     // fleet-rollup tenant label (default "default")
	Program   string `json:"program"`    // built-in program name
	Snapshot  []byte `json:"snapshot"`   // base64 snapshot to resume instead
	Template  string `json:"template"`   // golden template to warm-fork instead
	Engine    string `json:"engine"`     // reference | fast | blocks | traces (default: process default)
	Kernel    bool   `json:"kernel"`     // run under the kernel machine
	Timer     uint32 `json:"timer"`      // kernel timer period (implies kernel)
	Processes int    `json:"processes"`  // kernel: copies of the program to load (default 1)
	SpaceBits uint8  `json:"space_bits"` // kernel address-space size (default 16)
	MaxSteps  uint64 `json:"max_steps"`  // step budget (default: service default)
	TimeoutMS int64  `json:"timeout_ms"` // wall-clock bound (0 = none)
	Profile   bool   `json:"profile"`    // attach a profiler (exact engine; fleet flamegraph)
	Trace     bool   `json:"trace"`      // attach a tracer (exact engine; sampled SSE source)
}

// templateRequest is the PUT /v1/templates/{name} body: either a
// program spec (the machine is built, booted, optionally warmed up,
// and captured server-side) or a pre-captured snapshot.
type templateRequest struct {
	Program     string `json:"program"`      // built-in program to bake in
	Snapshot    []byte `json:"snapshot"`     // pre-captured snapshot instead
	Engine      string `json:"engine"`       // capture engine (forks may override; snapshots are engine-agnostic)
	Kernel      bool   `json:"kernel"`       // bake the kernel machine
	Timer       uint32 `json:"timer"`        // kernel timer period (implies kernel)
	Processes   int    `json:"processes"`    // kernel: copies of the program (default 1)
	SpaceBits   uint8  `json:"space_bits"`   // kernel address-space size (default 16)
	WarmupSteps uint64 `json:"warmup_steps"` // steps to run before capture (heat tables re-form fast in forks)
}

// jobListPage is the GET /v1/jobs response envelope.
type jobListPage struct {
	Jobs []Status `json:"jobs"`
	// Next, when set, is the ?after= cursor for the next page.
	Next string `json:"next,omitempty"`
}

// templateList is the GET /v1/templates response envelope.
type templateList struct {
	Templates []TemplateInfo `json:"templates"`
}

// Handler returns the job service's HTTP API (both the /v1 surface and
// the legacy unversioned aliases).
func (s *Service) Handler(cfg HTTPConfig) http.Handler {
	if cfg.Templates == nil {
		cfg.Templates = NewTemplatePool()
	}
	h := &jobHandler{svc: s, cfg: cfg}
	mux := http.NewServeMux()

	// Versioned surface.
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("POST /v1/jobs/{$}", h.submit)
	mux.HandleFunc("GET /v1/jobs", h.list)
	mux.HandleFunc("GET /v1/jobs/{$}", h.list)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("GET /v1/jobs/{id}/status", h.status)
	mux.HandleFunc("GET /v1/jobs/{id}/output", h.output)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", h.profile)
	mux.HandleFunc("GET /v1/jobs/{id}/snapshot", h.snapshot)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", h.cancel)
	mux.HandleFunc("PUT /v1/templates/{name}", h.templatePut)
	mux.HandleFunc("GET /v1/templates", h.templateIndex)
	mux.HandleFunc("GET /v1/templates/{$}", h.templateIndex)
	mux.HandleFunc("GET /v1/templates/{name}", h.templateGet)
	mux.HandleFunc("DELETE /v1/templates/{name}", h.templateDelete)

	// Legacy unversioned aliases, kept for one release. The legacy list
	// keeps its original bare-array shape; everything else shares the
	// /v1 handlers.
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("POST /jobs/{$}", h.submit)
	mux.HandleFunc("GET /jobs", h.legacyList)
	mux.HandleFunc("GET /jobs/{$}", h.legacyList)
	mux.HandleFunc("GET /jobs/{id}", h.status)
	mux.HandleFunc("GET /jobs/{id}/output", h.output)
	mux.HandleFunc("GET /jobs/{id}/profile", h.profile)
	mux.HandleFunc("GET /jobs/{id}/snapshot", h.snapshot)
	mux.HandleFunc("POST /jobs/{id}/cancel", h.cancel)
	return mux
}

type jobHandler struct {
	svc *Service
	cfg HTTPConfig
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorEnvelope{Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (h *jobHandler) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSnapshotPayload)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := h.buildSpec(req)
	if errors.Is(err, ErrTemplateMissing) {
		httpError(w, http.StatusNotFound, CodeTemplateMissing, err)
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	j, err := h.svc.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, CodeQueueFull, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, CodeClosed, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// buildSpec validates a request eagerly (unknown program or template,
// bad engine) but defers machine construction to the worker pool.
func (h *jobHandler) buildSpec(req jobRequest) (JobSpec, error) {
	engine, err := ParseEngine(req.Engine)
	if err != nil {
		return JobSpec{}, err
	}
	spec := JobSpec{
		Name:     req.Name,
		Tenant:   req.Tenant,
		MaxSteps: req.MaxSteps,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		Profile:  req.Profile,
		Trace:    req.Trace,
	}
	sources := 0
	for _, given := range []bool{req.Program != "", len(req.Snapshot) > 0, req.Template != ""} {
		if given {
			sources++
		}
	}
	if sources > 1 {
		return JobSpec{}, errors.New("give exactly one of program, snapshot, or template")
	}
	if req.Template != "" {
		t, err := h.cfg.Templates.Get(req.Template)
		if err != nil {
			return JobSpec{}, err
		}
		if spec.Name == "" {
			spec.Name = req.Template
		}
		spec.Template = req.Template
		spec.Build = func() (*Machine, error) {
			return t.Fork(WithEngine(engine))
		}
		return spec, nil
	}
	if len(req.Snapshot) > 0 {
		snap := req.Snapshot
		if spec.Name == "" {
			spec.Name = "restore"
		}
		spec.Build = func() (*Machine, error) {
			return Restore(bytes.NewReader(snap), WithEngine(engine))
		}
		return spec, nil
	}
	prog, ok := h.cfg.Programs[req.Program]
	if !ok {
		names := make([]string, 0, len(h.cfg.Programs))
		for n := range h.cfg.Programs {
			names = append(names, n)
		}
		sort.Strings(names)
		return JobSpec{}, fmt.Errorf("unknown program %q (have %v)", req.Program, names)
	}
	if spec.Name == "" {
		spec.Name = req.Program
	}
	useKernel := req.Kernel || req.Timer > 0
	nproc := req.Processes
	if nproc <= 0 {
		nproc = 1
	}
	if nproc > 1 && !useKernel {
		return JobSpec{}, errors.New("multiple processes need kernel: true")
	}
	spec.Build = func() (*Machine, error) {
		return buildProgramMachine(prog, engine, useKernel, req.Timer, req.SpaceBits, nproc)
	}
	return spec, nil
}

// buildProgramMachine compiles a program and loads it into a fresh
// machine — the cold-boot admission path, shared by job submission and
// template baking.
func buildProgramMachine(prog ProgramFunc, engine Engine, useKernel bool, timer uint32, spaceBits uint8, nproc int) (*Machine, error) {
	im, err := prog(useKernel)
	if err != nil {
		return nil, err
	}
	opts := []Option{WithEngine(engine)}
	if useKernel {
		opts = append(opts, WithKernel(kernel.Config{TimerPeriod: timer}))
		if spaceBits > 0 {
			opts = append(opts, WithSpaceBits(spaceBits))
		}
	}
	m, err := New(opts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nproc; i++ {
		if err := m.Load(im); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// list serves GET /v1/jobs: submission order, optionally filtered by
// ?state= and paginated with ?limit= / ?after= (an ID from a previous
// page; the page starts strictly after it).
func (h *jobHandler) list(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := q.Get("state")
	if state != "" {
		switch state {
		case JobQueued.String(), JobRunning.String(), JobDone.String(), JobFailed.String(), JobCancelled.String():
		default:
			httpError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("unknown state %q", state))
			return
		}
	}
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("bad limit %q", s))
			return
		}
		limit = n
	}
	after := q.Get("after")

	page := jobListPage{Jobs: []Status{}}
	skipping := after != ""
	for _, j := range h.svc.Jobs() {
		if skipping {
			if j.ID == after {
				skipping = false
			}
			continue
		}
		st := j.Status()
		if state != "" && st.State != state {
			continue
		}
		if limit > 0 && len(page.Jobs) == limit {
			page.Next = page.Jobs[len(page.Jobs)-1].ID
			break
		}
		page.Jobs = append(page.Jobs, st)
	}
	if skipping {
		httpError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("unknown cursor %q", after))
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// legacyList preserves the unversioned GET /jobs shape — a bare status
// array, no filtering — for the deprecation window.
func (h *jobHandler) legacyList(w http.ResponseWriter, r *http.Request) {
	jobs := h.svc.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *jobHandler) job(w http.ResponseWriter, r *http.Request) *Job {
	j, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return nil
	}
	return j
}

func (h *jobHandler) status(w http.ResponseWriter, r *http.Request) {
	if j := h.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (h *jobHandler) output(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	out, err := j.Output()
	if err != nil {
		httpError(w, http.StatusConflict, CodeNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(out))
}

// profile serves the job's folded cycle-attribution stacks as text,
// heaviest stack first — the same format /profile/flame emits, so the
// output feeds flamegraph tooling directly.
func (h *jobHandler) profile(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	folded := j.FoldedProfile()
	if folded == nil {
		httpError(w, http.StatusConflict, CodeNotFound, errors.New("job was not submitted with profile: true (or has not built its machine)"))
		return
	}
	type row struct {
		stack string
		n     uint64
	}
	rows := make([]row, 0, len(folded))
	for s, n := range folded {
		rows = append(rows, row{s, n})
	}
	sort.Slice(rows, func(i, k int) bool {
		if rows[i].n != rows[k].n {
			return rows[i].n > rows[k].n
		}
		return rows[i].stack < rows[k].stack
	})
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, rw := range rows {
		fmt.Fprintf(w, "%s %d\n", rw.stack, rw.n)
	}
}

func (h *jobHandler) snapshot(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	snap, err := j.Snapshot()
	if err != nil {
		httpError(w, http.StatusConflict, CodeNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.snap", j.ID))
	w.Write(snap)
}

func (h *jobHandler) cancel(w http.ResponseWriter, r *http.Request) {
	j := h.job(w, r)
	if j == nil {
		return
	}
	h.svc.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

// templatePut creates or replaces a golden template: from a program
// spec — built, booted, optionally warmed up, and captured here, since
// template baking is the one-time preparation the fork path amortizes —
// or from pre-captured snapshot bytes.
func (h *jobHandler) templatePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req templateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSnapshotPayload)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("bad request body: %w", err))
		return
	}
	if (req.Program == "") == (len(req.Snapshot) == 0) {
		httpError(w, http.StatusBadRequest, CodeBadSpec, errors.New("give exactly one of program or snapshot"))
		return
	}
	if len(req.Snapshot) > 0 {
		t, err := h.cfg.Templates.Put(name, req.Snapshot)
		if err != nil {
			httpError(w, http.StatusBadRequest, CodeBadSpec, err)
			return
		}
		writeJSON(w, http.StatusCreated, t.Info())
		return
	}
	engine, err := ParseEngine(req.Engine)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	prog, ok := h.cfg.Programs[req.Program]
	if !ok {
		httpError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("unknown program %q", req.Program))
		return
	}
	useKernel := req.Kernel || req.Timer > 0
	nproc := req.Processes
	if nproc <= 0 {
		nproc = 1
	}
	if nproc > 1 && !useKernel {
		httpError(w, http.StatusBadRequest, CodeBadSpec, errors.New("multiple processes need kernel: true"))
		return
	}
	m, err := buildProgramMachine(prog, engine, useKernel, req.Timer, req.SpaceBits, nproc)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	t, err := h.cfg.Templates.Capture(name, m, req.WarmupSteps)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.Info())
}

func (h *jobHandler) templateIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, templateList{Templates: h.cfg.Templates.List()})
}

func (h *jobHandler) templateGet(w http.ResponseWriter, r *http.Request) {
	t, err := h.cfg.Templates.Get(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, CodeTemplateMissing, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Info())
}

func (h *jobHandler) templateDelete(w http.ResponseWriter, r *http.Request) {
	if !h.cfg.Templates.Delete(r.PathValue("name")) {
		httpError(w, http.StatusNotFound, CodeTemplateMissing, fmt.Errorf("%w: %q", ErrTemplateMissing, r.PathValue("name")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
