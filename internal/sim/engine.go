// Package sim is the public facade over the simulator: one way to
// construct a machine (bare or full-kernel), pick its execution engine,
// attach observability, drive it in step quanta, and checkpoint it to a
// deterministic, versioned snapshot that restores into an observably
// identical machine. Packages codegen and tables, and every command,
// build their machines through it; the layers underneath (cpu, mem,
// kernel) stay mechanism, not policy.
package sim

import (
	"fmt"

	"mips/internal/cpu"
)

// Engine selects the execution engine. The engines are observably
// identical — same outputs, same Stats, same observer event streams —
// and differ only in how fast the simulation itself runs; the
// differential tests in codegen and sim pin the equivalence.
type Engine int

const (
	// Default defers to the process-wide default engine (Traces unless
	// SetDefault changed it). It is the zero value, so zero-configured
	// machines follow the process default.
	Default Engine = iota
	// Reference is the reference interpreter: pieces re-read and
	// re-decoded every cycle. The baseline the others are tested against.
	Reference
	// FastPath is the predecoded per-instruction engine.
	FastPath
	// Blocks is the superblock translation engine layered on the fast
	// path: straight-line runs execute as cached, chained blocks.
	Blocks
	// Traces is the trace JIT tier layered on the superblock engine:
	// profile-guided multi-block traces, fused across taken branches,
	// compiled to threaded Go closures. Falls back tier by tier
	// (trace -> superblock -> fast path -> reference) on any guard
	// failure, fault, or configuration the traces cannot prove quiet.
	Traces
)

func (e Engine) String() string {
	switch e {
	case Reference:
		return "reference"
	case FastPath:
		return "fast"
	case Blocks:
		return "blocks"
	case Traces:
		return "traces"
	default:
		return "default"
	}
}

// ParseEngine converts a CLI/API engine name. It accepts the String
// forms plus the common aliases "fastpath", "interp", and "trace".
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "reference", "interp", "ref":
		return Reference, nil
	case "fast", "fastpath":
		return FastPath, nil
	case "blocks", "block":
		return Blocks, nil
	case "traces", "trace":
		return Traces, nil
	case "", "default":
		return Default, nil
	}
	return Default, fmt.Errorf("sim: unknown engine %q (want reference, fast, blocks, or traces)", s)
}

// defaultEngine is what Default resolves to; process-wide, set once by
// the command line before machines are built.
var defaultEngine = Traces

// SetDefault sets the process-wide default engine: what Engine(0)
// resolves to, and what CPUs constructed outside the facade start with.
// Call it from main before building machines; it is not synchronized
// against concurrent machine construction. Passing Default is a no-op.
func SetDefault(e Engine) {
	if e == Default {
		return
	}
	defaultEngine = e
	cpu.SetDefaultFastPath(e != Reference)
	cpu.SetDefaultBlocks(e == Blocks || e == Traces)
	cpu.SetDefaultTraces(e == Traces)
}

// resolve maps Default to the current process-wide default.
func (e Engine) resolve() Engine {
	if e == Default {
		return defaultEngine
	}
	return e
}

// apply configures a CPU for the engine.
func (e Engine) apply(c *cpu.CPU) {
	switch e.resolve() {
	case Reference:
		c.SetFastPath(false)
		c.SetBlocks(false)
		c.SetTraces(false)
	case FastPath:
		c.SetFastPath(true)
		c.SetBlocks(false)
		c.SetTraces(false)
	case Blocks:
		c.SetFastPath(true)
		c.SetBlocks(true)
		c.SetTraces(false)
	default:
		c.SetFastPath(true)
		c.SetBlocks(true)
		c.SetTraces(true)
	}
}
