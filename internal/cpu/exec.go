package cpu

import (
	"mips/internal/isa"
	"mips/internal/mem"
)

// regWrite is a register write staged during word execution. All writes
// are staged and applied only after the word's memory reference commits,
// implementing the restartability rule of §3.3: "requiring an
// instruction that calls for a memory reference to not allow register
// writes to take place until after the reference has been committed".
type regWrite struct {
	reg     isa.Reg
	val     uint32
	delayed bool // load result: visible only after the load delay
}

// maxStagedWrites bounds the register writes one instruction word can
// stage: at most one from the ALU slot and one from the memory/control
// slot, so the fixed staging array never spills to the heap.
const maxStagedWrites = 4

// stagePut stages one register write for commit at the end of the word.
func (c *CPU) stagePut(r isa.Reg, v uint32, delayed bool) {
	c.stage[c.nstage] = regWrite{reg: r, val: v, delayed: delayed}
	c.nstage++
}

// execWord executes one instruction word on the reference path: reads
// all sources, performs the memory reference, computes ALU results, then
// commits writes. A memory fault or enabled overflow suppresses every
// write and vectors through the exception sequence. The predecoded fast
// path (execFast) must stay observably identical to this function; the
// differential tests enforce it.
func (c *CPU) execWord(in isa.Instr, pc uint32) {
	c.Stats.Instructions++
	c.Stats.Cycles++
	if in.IsNop() {
		c.Stats.Nops++
		c.Stats.FreeCycles++
		c.Bus.offerFree(&c.Stats)
		return
	}

	c.nstage = 0
	var loVal uint32
	hasLo := false
	overflow := false
	var memFault *mem.Fault
	var trapCode = -1

	// ALU-class piece: compute but do not write yet.
	if p := in.ALU; p != nil && !p.IsNop() {
		c.Stats.Pieces++
		switch p.Kind {
		case isa.PieceALU:
			v, lo, ovf := c.evalALU(p, pc)
			if ovf && c.Sur.OverflowEnabled() {
				overflow = true
			}
			if p.Op == isa.OpMovLo {
				loVal, hasLo = lo, true
			} else {
				c.stagePut(p.Dst, v, false)
			}
		case isa.PieceSetCond:
			a := c.operand(p.Src1, pc)
			b := c.operand(p.Src2, pc)
			var v uint32
			if p.Cmp.Eval(a, b) {
				v = 1
			}
			c.stagePut(p.Dst, v, false)
		}
	}

	// Memory/control piece.
	usedDataCycle := false
	if p := in.Mem; p != nil && !p.IsNop() {
		c.Stats.Pieces++
		switch p.Kind {
		case isa.PieceLoad:
			usedDataCycle = true
			if p.Mode == isa.AModeLongImm {
				// The long immediate comes from the instruction stream,
				// not the data port: no data cycle and no load delay.
				usedDataCycle = false
				c.stagePut(p.Data, uint32(p.Disp), false)
				break
			}
			addr := c.effectiveAddr(p, pc)
			v, f := c.Bus.Read(addr, c.Mapped())
			if f != nil {
				memFault = f
				break
			}
			c.Stats.Loads++
			if c.onMem != nil {
				c.onMem(pc, addr, false)
			}
			c.stagePut(p.Data, v, true)
		case isa.PieceStore:
			usedDataCycle = true
			addr := c.effectiveAddr(p, pc)
			val := c.readReg(p.Data, pc)
			if f := c.Bus.Write(addr, val, c.Mapped()); f != nil {
				memFault = f
				break
			}
			c.Stats.Stores++
			if c.onMem != nil {
				c.onMem(pc, addr, true)
			}
		case isa.PieceBranch:
			c.Stats.Branches++
			a := c.operand(p.Src1, pc)
			b := c.operand(p.Src2, pc)
			taken := p.Cmp.Eval(a, b)
			if taken {
				c.Stats.TakenBranches++
				c.scheduleBranch(uint32(p.Target), isa.BranchDelay)
			}
			if c.onBranch != nil {
				c.onBranch(pc, uint32(p.Target), taken)
			}
		case isa.PieceJump:
			c.Stats.Branches++
			c.Stats.TakenBranches++
			c.scheduleBranch(uint32(p.Target), isa.BranchDelay)
			if c.onBranch != nil {
				c.onBranch(pc, uint32(p.Target), true)
			}
		case isa.PieceCall:
			c.Stats.Branches++
			c.Stats.TakenBranches++
			// The link value is the address the subroutine returns to:
			// past the call and its delay slot.
			c.stagePut(p.Dst, pc+1+isa.BranchDelay, false)
			c.scheduleBranch(uint32(p.Target), isa.BranchDelay)
			if c.onBranch != nil {
				c.onBranch(pc, uint32(p.Target), true)
			}
		case isa.PieceJumpInd:
			c.Stats.Branches++
			c.Stats.TakenBranches++
			target := c.operand(p.Src1, pc)
			c.scheduleBranch(target, isa.IndirectJumpDelay)
			if c.onBranch != nil {
				c.onBranch(pc, target, true)
			}
		case isa.PieceTrap:
			trapCode = int(p.TrapCode)
		case isa.PieceSpecial:
			c.execSpecial(p)
		}
	}

	c.finishWord(pc, usedDataCycle, overflow, memFault, trapCode, loVal, hasLo)
}

// finishWord is the common tail of word execution, shared by the
// reference and fast paths: data-slot accounting, the exception priority
// rule, the staged-write commit, and software-trap entry.
func (c *CPU) finishWord(pc uint32, usedDataCycle, overflow bool, memFault *mem.Fault, trapCode int, loVal uint32, hasLo bool) {
	// Account the data-memory slot.
	if usedDataCycle {
		c.Stats.DataCycles++
	} else {
		c.Stats.FreeCycles++
		c.Bus.offerFree(&c.Stats)
	}

	// Exception priority within one word: the ALU piece is logically
	// first (paper §3.3 orders an overflow ahead of a younger mapping
	// error), so overflow is the primary cause with any memory fault
	// secondary. Either suppresses all writes.
	if overflow || memFault != nil {
		primary, secondary := isa.CauseNone, isa.CauseNone
		switch {
		case overflow && memFault != nil:
			primary, secondary = isa.CauseOverflow, memFault.Cause
		case overflow:
			primary = isa.CauseOverflow
		default:
			primary = memFault.Cause
		}
		// The word did not complete: put it back at the head of the
		// fetch queue so it is return address zero and restarts.
		c.pushPC(pc)
		c.exception(primary, secondary, 0)
		return
	}

	// Commit.
	for i := 0; i < c.nstage; i++ {
		w := &c.stage[i]
		if w.delayed {
			c.writeLoad(w.reg, w.val)
		} else {
			c.writeReg(w.reg, w.val)
		}
	}
	if hasLo {
		c.Lo = loVal
	}

	// A software trap completes before the exception is taken, so the
	// saved return addresses resume after it.
	if trapCode >= 0 {
		// The hook observes the register file as the monitor routine
		// would — after the exception's pipeline drain.
		c.flushPending()
		if c.onTrap != nil {
			c.onTrap(uint16(trapCode))
			if c.Halted {
				// The hook stopped the machine (a halt monitor call);
				// no exception is taken and the saved state stands.
				return
			}
		}
		c.exception(isa.CauseTrap, isa.CauseNone, uint16(trapCode))
	}
}

// offerFree hands the free data cycle to the DMA engine and accounts it.
func (b *Bus) offerFree(s *Stats) {
	if b.OfferFreeCycle() {
		s.DMACycles++
	}
}

// evalALU computes an ALU piece on the reference path: it reads the
// operands in architectural order and defers the arithmetic to aluEval.
func (c *CPU) evalALU(p *isa.Piece, pc uint32) (val, lo uint32, overflow bool) {
	a := c.operand(p.Src1, pc)
	var b uint32
	if !p.Op.Unary() {
		b = c.operand(p.Src2, pc)
	}
	var dstVal uint32
	if p.Op == isa.OpMStep || p.Op == isa.OpDStep {
		dstVal = c.readReg(p.Dst, pc)
	}
	return aluEval(p.Op, a, b, dstVal, c.Lo)
}

// aluEval is the pure ALU core shared by the reference and fast paths:
// given the already-read operand values (a, b), the destination's
// current value (multiply/divide steps only), and the byte selector, it
// returns the result, the new byte-selector value for movlo, and whether
// signed overflow occurred.
func aluEval(op isa.ALUOp, a, b, dstVal, lo uint32) (val, loOut uint32, overflow bool) {
	switch op {
	case isa.OpAdd:
		val = a + b
		overflow = addOverflows(a, b, val)
	case isa.OpSub:
		val = a - b
		overflow = subOverflows(a, b, val)
	case isa.OpRSub:
		val = b - a
		overflow = subOverflows(b, a, val)
	case isa.OpAnd:
		val = a & b
	case isa.OpOr:
		val = a | b
	case isa.OpXor:
		val = a ^ b
	case isa.OpBic:
		val = a &^ b
	case isa.OpSll:
		val = shiftL(a, b)
	case isa.OpSrl:
		val = shiftR(a, b)
	case isa.OpSra:
		val = shiftRA(a, b)
	case isa.OpRSll:
		val = shiftL(b, a)
	case isa.OpRSrl:
		val = shiftR(b, a)
	case isa.OpRSra:
		val = shiftRA(b, a)
	case isa.OpMov:
		val = a
	case isa.OpNot:
		val = ^a
	case isa.OpNeg:
		val = -a
		overflow = a == 1<<31 // negating the minimum integer overflows
	case isa.OpXC:
		// Extract byte: the low two bits of the byte pointer select the
		// byte; byte 0 is the most significant (text reads left to right).
		val = ExtractByte(b, a)
	case isa.OpIC:
		// Insert byte: replace byte (lo mod 4) of the word with the low
		// byte of the source.
		val = InsertByte(b, lo, a)
	case isa.OpMovLo:
		loOut = a
	case isa.OpMStep:
		// Multiply step: conditionally accumulate. dst += s1 when the low
		// bit of s2 is set; the shift-and-add multiply loop is built from
		// this plus plain shifts.
		val = dstVal
		if b&1 != 0 {
			val += a
		}
	case isa.OpDStep:
		// Divide step: shift the accumulator left, inserting the top bit
		// of s2.
		val = dstVal<<1 | b>>31
	}
	return val, loOut, overflow
}

// execSpecial executes a special-register piece. Privilege was already
// checked at decode.
func (c *CPU) execSpecial(p *isa.Piece) {
	c.doSpecial(p.SpecOp, p.SpecReg, p.Dst, p.Src1.Reg)
}

// doSpecial is the special-register core shared by the reference and
// fast paths. src is the source register of a special-register write.
func (c *CPU) doSpecial(op isa.SpecialOp, reg isa.SpecialReg, dst, src isa.Reg) {
	switch op {
	case isa.SpecRead:
		var v uint32
		switch reg {
		case isa.SpecLo:
			v = c.Lo
		case isa.SpecSurprise:
			v = uint32(c.Sur)
		case isa.SpecSegBase:
			v, _ = c.Bus.MMU.Seg.Registers()
		case isa.SpecSegLimit:
			_, v = c.Bus.MMU.Seg.Registers()
		case isa.SpecRet0:
			v = c.Ret[0]
		case isa.SpecRet1:
			v = c.Ret[1]
		case isa.SpecRet2:
			v = c.Ret[2]
		}
		c.stagePut(dst, v, false)
	case isa.SpecWrite:
		v := c.Regs[src]
		switch reg {
		case isa.SpecLo:
			c.Lo = v
		case isa.SpecSurprise:
			c.Sur = isa.Surprise(v)
		case isa.SpecSegBase:
			_, limit := c.Bus.MMU.Seg.Registers()
			c.Bus.MMU.Seg = mem.SetRegisters(v, limit)
		case isa.SpecSegLimit:
			base, _ := c.Bus.MMU.Seg.Registers()
			c.Bus.MMU.Seg = mem.SetRegisters(base, v)
		case isa.SpecRet0:
			c.Ret[0] = v
		case isa.SpecRet1:
			c.Ret[1] = v
		case isa.SpecRet2:
			c.Ret[2] = v
		}
	case isa.SpecRFE:
		// Return from exception: restore the previous privilege level and
		// resume at the three saved return addresses — the offending
		// instruction, its successor, then the pending branch target.
		c.Sur = c.Sur.Leave()
		c.setPCQueue(c.Ret[0], c.Ret[1], c.Ret[2])
		if c.onRFE != nil {
			c.onRFE(c.Ret[0])
		}
	}
}

// effectiveAddr computes a load/store address.
func (c *CPU) effectiveAddr(p *isa.Piece, pc uint32) uint32 {
	switch p.Mode {
	case isa.AModeAbs:
		return uint32(p.Disp)
	case isa.AModeDisp:
		return c.readReg(p.Base, pc) + uint32(p.Disp)
	case isa.AModeIndex:
		return c.readReg(p.Base, pc) + c.readReg(p.Index, pc)
	case isa.AModeShift:
		return c.readReg(p.Base, pc) + c.readReg(p.Index, pc)>>p.Shift
	}
	return 0
}

func shiftL(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v << by
}

func shiftR(v, by uint32) uint32 {
	if by >= 32 {
		return 0
	}
	return v >> by
}

func shiftRA(v, by uint32) uint32 {
	if by >= 32 {
		by = 31
	}
	return uint32(int32(v) >> by)
}

func addOverflows(a, b, sum uint32) bool {
	return (a^b)&(1<<31) == 0 && (a^sum)&(1<<31) != 0
}

func subOverflows(a, b, diff uint32) bool {
	return (a^b)&(1<<31) != 0 && (a^diff)&(1<<31) != 0
}

// ExtractByte returns byte (ptr mod 4) of the word, zero extended. Byte
// zero is the most significant byte.
func ExtractByte(word, ptr uint32) uint32 {
	sel := ptr & 3
	return word >> (8 * (3 - sel)) & 0xFF
}

// InsertByte returns the word with byte (sel mod 4) replaced by the low
// byte of src.
func InsertByte(word, sel, src uint32) uint32 {
	s := sel & 3
	shift := 8 * (3 - s)
	return word&^(0xFF<<shift) | (src&0xFF)<<shift
}
