package cpu

import (
	"testing"

	"mips/internal/isa"
	"mips/internal/mem"
)

// loopCPU builds a CPU running a small counted loop: r1 counts down
// from n, r2 accumulates r3 each iteration, then trap 0 halts. The loop
// body re-executes the same words, so it exercises predecode-cache hits.
func loopCPU(n int32) *CPU {
	br := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	br.Target = 2
	return newTestCPU(
		w(isa.LoadImm32(1, n)),                         // 0
		w(isa.Mov(3, isa.Imm(5))),                      // 1
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.R(3))),   // 2: loop body
		w(isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1))), // 3
		w(br),        // 4: bne r1, #0, 2
		w(isa.Nop()), // 5: branch delay
		halt,         // 6
	)
}

func TestFastPathLoopMatchesReference(t *testing.T) {
	fast := loopCPU(100)
	run(t, fast, 10_000)
	ref := loopCPU(100)
	ref.SetFastPath(false)
	run(t, ref, 10_000)
	if fast.Regs != ref.Regs {
		t.Errorf("registers diverge:\n fast %v\n  ref %v", fast.Regs, ref.Regs)
	}
	if fast.Stats != ref.Stats {
		t.Errorf("stats diverge:\n fast %+v\n  ref %+v", fast.Stats, ref.Stats)
	}
	if fast.Regs[2] != 500 {
		t.Errorf("r2 = %d, want 500", fast.Regs[2])
	}
}

// TestPredecodeSeesInstructionRewrite overwrites the loop body after the
// predecode cache has executed it many times. The new word must take
// effect on its next fetch: the cache validates each record against the
// live instruction memory every time.
func TestPredecodeSeesInstructionRewrite(t *testing.T) {
	patchLoop := func(c *CPU) {
		var patched bool
		c.SetStepHook(func(pc uint32, in isa.Instr) {
			// After 50 iterations the body at word 2 has long been
			// cached; switch the accumulator step from +r3 (5) to +1.
			// The hook fires after this instance was fetched, so the
			// patch is seen from the next iteration on.
			if !patched && pc == 2 && c.Regs[1] == 50 {
				patched = true
				c.IMem[2] = w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1)))
			}
		})
	}
	c := loopCPU(100)
	patchLoop(c)
	run(t, c, 10_000)
	// 51 iterations at +5 (the patching iteration was already fetched),
	// then 49 at +1.
	if want := uint32(51*5 + 49*1); c.Regs[2] != want {
		t.Errorf("r2 = %d, want %d (stale predecode record executed)", c.Regs[2], want)
	}
	ref := loopCPU(100)
	ref.SetFastPath(false)
	patchLoop(ref)
	run(t, ref, 10_000)
	if ref.Regs != c.Regs || ref.Stats != c.Stats {
		t.Errorf("paths diverge under rewrite:\n fast %v\n  ref %v", c.Regs, ref.Regs)
	}
}

// TestPredecodeSurvivesLoadImageReuse reuses one CPU for two images that
// place different instructions at the same addresses — the loader-reuse
// pattern of the experiment harnesses.
func TestPredecodeSurvivesLoadImageReuse(t *testing.T) {
	c := loopCPU(10)
	run(t, c, 10_000)
	if c.Regs[2] != 50 {
		t.Fatalf("first program: r2 = %d, want 50", c.Regs[2])
	}

	im := &isa.Image{Words: []isa.Instr{
		w(isa.Mov(2, isa.Imm(9))),
		halt,
	}}
	c.Reset()
	if err := c.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	c.Halted = false
	run(t, c, 100)
	if c.Regs[2] != 9 {
		t.Errorf("second program: r2 = %d, want 9 (stale predecode record executed)", c.Regs[2])
	}
}

// TestSteadyStateZeroAlloc pins the allocation-free commit path: once
// warm, stepping the loop must not allocate — on either engine. This is
// the property that keeps the simulator's throughput allocation-bound
// no more.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name   string
		fast   bool
		blocks bool
		traces bool
	}{
		{"traces", true, true, true},
		{"blocks", true, true, false},
		{"fast", true, false, false},
		{"reference", false, false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := loopCPU(2_000_000)
			c.SetFastPath(tc.fast)
			c.SetBlocks(tc.blocks)
			c.SetTraces(tc.traces)
			// Warm up: caches filled, pending-write slices at capacity.
			// 128 steps carries the traces case past heat-counter
			// saturation, recording, and compilation, so measurement sees
			// only warm trace dispatch.
			for i := 0; i < 128; i++ {
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if tc.traces && c.Trans.TraceCompiled == 0 {
				t.Fatal("warmup did not compile a trace; the measurement would be vacuous")
			}
			avg := testing.AllocsPerRun(1000, func() {
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Step allocates %v allocs/op, want 0", avg)
			}
		})
	}
}

// TestFastPathToggle switches engines mid-run; the machine state is
// shared, so execution must continue seamlessly.
func TestFastPathToggle(t *testing.T) {
	c := loopCPU(100)
	n := 0
	c.SetStepHook(func(pc uint32, in isa.Instr) {
		n++
		if n%7 == 0 {
			c.SetFastPath(!c.FastPath())
		}
	})
	run(t, c, 10_000)
	if c.Regs[2] != 500 {
		t.Errorf("r2 = %d, want 500", c.Regs[2])
	}
}

// TestPredecodeSlotAliasing pins the direct-mapped collision case: two
// physical addresses pdMaxEntries apart share a slot once the cache is
// at full size, and the record's pa binding must keep them from
// cross-validating — each fetch at the other address is a counted
// collision miss that redecodes, never a false hit.
func TestPredecodeSlotAliasing(t *testing.T) {
	c := newTestCPU(halt)
	const lo = uint32(2)
	const hi = lo + pdMaxEntries
	c.IMem = make([]isa.Instr, hi+4)
	c.IMem[lo] = w(isa.Mov(1, isa.Imm(7)))
	c.IMem[hi] = w(isa.Mov(1, isa.Imm(9)))

	// The first high fetch grows the cache to its full size (replacing
	// the backing array), so it runs before any slot pointer is taken.
	d1, f := c.fetchFast(hi)
	if f != nil {
		t.Fatalf("fetch hi: %v", f)
	}
	if d1.pa != hi || d1.src != c.IMem[hi] {
		t.Fatalf("hi record bound to pa=%d", d1.pa)
	}
	d2, f := c.fetchFast(lo)
	if f != nil {
		t.Fatalf("fetch lo: %v", f)
	}
	if d2 != d1 {
		t.Fatalf("addresses %d and %d do not share a slot; aliasing case not exercised", lo, hi)
	}
	if d2.pa != lo || d2.src != c.IMem[lo] {
		t.Errorf("lo fetch returned the hi record: pa=%d (cross-validated alias)", d2.pa)
	}
	if c.Trans.PredecodeCollisions != 1 {
		t.Errorf("collisions = %d, want 1", c.Trans.PredecodeCollisions)
	}
	// Bouncing back rebinds the slot again: a second counted collision.
	d3, f := c.fetchFast(hi)
	if f != nil {
		t.Fatalf("refetch hi: %v", f)
	}
	if d3.pa != hi || d3.src != c.IMem[hi] {
		t.Errorf("hi refetch returned the lo record: pa=%d", d3.pa)
	}
	if c.Trans.PredecodeCollisions != 2 {
		t.Errorf("collisions = %d, want 2", c.Trans.PredecodeCollisions)
	}
	if c.Trans.PredecodeHits != 0 {
		t.Errorf("hits = %d, want 0 (an alias hit is a wrong-instruction execution)", c.Trans.PredecodeHits)
	}
}

// TestPredecodeCacheGrows checks the decode cache's lazy growth: a
// program whose text extends past the initial cache size must still
// execute correctly (records beyond the mask share slots).
func TestPredecodeCacheGrows(t *testing.T) {
	words := make([]isa.Instr, 0, pdMinEntries*3)
	for i := 0; i < pdMinEntries*3-2; i++ {
		words = append(words, w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1))))
	}
	words = append(words, halt)
	phys := mem.NewPhysical(1 << 16)
	c := New(NewBus(phys))
	c.IMem = words
	c.SetTrapHook(func(code uint16) { c.Halt() })
	run(t, c, uint64(len(words))+10)
	if want := uint32(pdMinEntries*3 - 2); c.Regs[2] != want {
		t.Errorf("r2 = %d, want %d", c.Regs[2], want)
	}
}
