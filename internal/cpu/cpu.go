// Package cpu is a cycle-level simulator of the MIPS processor: a
// single-issue, five-stage, word-addressed pipeline with no hardware
// interlocks. The architectural consequences the paper builds on are
// modeled exactly:
//
//   - the instruction after a load reads the loaded register's old value
//     (load delay 1);
//   - the instruction after any branch, jump, or call always executes
//     (branch delay 1), and two instructions execute after an indirect
//     jump (delay 2);
//   - a faulting memory reference suppresses all register writes of its
//     instruction word, so instructions restart cleanly;
//   - on an exception the machine saves three return addresses, packs the
//     cause into the surprise register, disables mapping and interrupts,
//     and dispatches to physical address zero;
//   - every instruction word without a load/store piece leaves its data
//     memory cycle free, announced to the DMA engine.
//
// Correct code comes from the package reorg scheduler; an optional
// auditor (SetAudit) records load-use violations so tests can prove
// schedules legal.
//
// Execution has two observably identical engines: the reference
// interpreter (execWord), which re-reads the instruction word's pieces
// every cycle, and a predecoded fast path (predecode.go) that caches a
// flat executable record per physical instruction address — the paper's
// own move of hoisting work out of the dynamic hot path, applied to the
// simulator itself. The fast path is the default; SetFastPath(false)
// selects the reference engine, and the differential tests hold the two
// to identical statistics, memory images, and trace event streams.
package cpu

import (
	"errors"
	"fmt"
	"sync"

	"mips/internal/isa"
	"mips/internal/mem"
)

// ErrHalted is returned by Step and Run once the processor has halted.
var ErrHalted = errors.New("cpu: halted")

// pcqCap is the fetch-queue capacity: three live entries (the three
// return addresses an exception saves) plus one slot for re-queuing a
// faulted instruction word ahead of them.
const pcqCap = 4

// CPU is the processor state.
type CPU struct {
	// Regs are the sixteen general registers.
	Regs [isa.NumRegs]uint32
	// Lo is the byte-selector special register.
	Lo uint32
	// Sur is the surprise register.
	Sur isa.Surprise
	// Ret are the three return addresses saved on exception entry.
	Ret [3]uint32

	// IMem is the instruction memory, indexed by physical word address
	// (the dual instruction/data memory interface of §3.2).
	IMem []isa.Instr
	// Bus is the data-memory interface.
	Bus *Bus

	// Stats accumulates dynamic measurements.
	Stats Stats

	// Interlocked switches on the counterfactual the paper argues
	// against (§4.2.1): hardware load interlocks. Reading a register
	// with a pending load stalls the pipe until the value arrives
	// instead of returning the stale value. Delayed branches remain
	// architectural. Used by the ablation experiments only.
	Interlocked bool

	// Halted is set by the halt device hook or Halt.
	Halted bool

	// pcq is the fetch queue: pcq[0] is the next instruction to execute,
	// and the top three entries are exactly the three return addresses an
	// exception must save (delayed branches put future targets here). It
	// is a fixed array so steady-state execution never allocates.
	pcq [pcqCap]uint32
	pcn int // number of valid entries in pcq

	// pend holds load results not yet visible in the register file
	// (pendN live entries, issue-ordered). A fixed array: the load
	// delay bounds the in-flight count, and keeping it pointer-free
	// spares the hot path any write-barrier traffic.
	pend  [4]delayedWrite
	pendN int

	// excSeq counts exception entries; the block engine compares it
	// across a block to notice a supervisor transition cheaply.
	excSeq uint64

	// lastWrite tracks the sequence number of the latest architectural
	// write to each register, so a delayed load commit never clobbers a
	// younger ALU result.
	lastWrite [isa.NumRegs]uint64

	// stage is the fixed staging area for the current word's register
	// writes (the §3.3 restartability rule), applied by finishWord;
	// nstage counts the staged entries. A fixed array keeps the commit
	// path allocation-free.
	stage  [maxStagedWrites]regWrite
	nstage int

	// fastpath selects the predecoded execution engine; pd is its cache
	// of flat executable records, direct-mapped by physical word address.
	fastpath bool
	pd       []decoded
	pdMask   uint32

	// blocks selects the superblock engine layered above the fast path
	// (block.go). bc is its direct-mapped cache of translated blocks,
	// liveBlocks the dense list the write barrier walks, codeBits the
	// coverage bitmap the barrier prefilters with, lastBlk the chain
	// source for the next block entry, and barrierOn records that the
	// physical-memory write barrier has been installed.
	blocks     bool
	bc         []*block
	bcMask     uint32
	liveBlocks []*block
	codeBits   []uint64
	lastBlk    *block
	barrierOn  bool

	// chainFollow bounds how many chained blocks (or chained traces)
	// one Step may execute; see SetChainFollow.
	chainFollow int

	// traces selects the trace JIT tier layered above the superblock
	// engine (trace_form.go, trace_compile.go, tracecache.go). tc is
	// its direct-mapped cache of compiled traces, liveTraces the dense
	// list the write barrier walks, heat the per-entry-PC hotness
	// counters that trigger formation, trec the in-flight path
	// recording, and trOvfOn the overflow-enable latch the dispatch
	// loop sets for the compiled closures.
	traces     bool
	tc         []*trace
	liveTraces []*trace
	heat       []heatEntry
	trec       traceRec
	trOvfOn    bool

	// Trans counts translation-layer behavior (predecode and superblock
	// caches). It lives outside Stats so the execution engines remain
	// statistics-identical under the differential tests.
	Trans TranslationStats

	seq     uint64
	intLine bool

	// deopt carries the reason of the most recent trace guard exit:
	// compiled closures set it immediately before returning false, and
	// runTrace consumes it at its single guard-exit accounting site.
	deopt DeoptReason

	// trMu, when non-nil (ShareTraces), guards structural mutation of
	// the live block/trace lists so TraceSites/BlockSites can run while
	// the machine does.
	trMu *sync.Mutex

	audit    func(Hazard)
	onTrap   func(code uint16)
	onStep   func(pc uint32, in isa.Instr)
	onMem    func(pc, addr uint32, store bool)
	onBranch func(pc, target uint32, taken bool)
	onExc    func(pc uint32, primary, secondary isa.Cause, trapCode uint16)
	onRFE    func(pc uint32)
	onStall  func(pc uint32)
	onJIT    func(JITEvent)
}

type delayedWrite struct {
	reg      isa.Reg
	val      uint32
	issuedAt uint64
	commitAt uint64
}

// defaultBlocks, defaultFastPath, and defaultTraces are the engine
// settings newly built CPUs start with; the setters let command-line
// tools apply an engine flag to machines they do not construct directly
// (package sim's SetDefault drives all three).
var (
	defaultBlocks   = true
	defaultFastPath = true
	defaultTraces   = true
)

// SetDefaultBlocks sets whether CPUs built by New start with the
// superblock engine enabled.
func SetDefaultBlocks(on bool) { defaultBlocks = on }

// SetDefaultFastPath sets whether CPUs built by New start with the
// predecoded fast path enabled.
func SetDefaultFastPath(on bool) { defaultFastPath = on }

// SetDefaultTraces sets whether CPUs built by New start with the trace
// JIT tier enabled.
func SetDefaultTraces(on bool) { defaultTraces = on }

// New builds a CPU over the given bus, starting at word address 0 in
// supervisor state with mapping and interrupts disabled — the power-up
// reset condition. The predecoded fast path is enabled.
func New(bus *Bus) *CPU {
	c := &CPU{Bus: bus, fastpath: defaultFastPath, blocks: defaultBlocks, traces: defaultTraces}
	c.Sur = c.Sur.SetSupervisor(true)
	c.pcq[0], c.pcn = 0, 1
	c.pd = make([]decoded, pdMinEntries)
	c.pdMask = pdMinEntries - 1
	c.chainFollow = defaultChainFollow
	return c
}

// Reset re-enters the power-up state at word address 0.
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint32{}
	c.Lo = 0
	c.Sur = isa.Surprise(0).SetSupervisor(true).WithCauses(isa.CauseReset, isa.CauseNone)
	c.Ret = [3]uint32{}
	c.pcq[0], c.pcn = 0, 1
	c.pendN = 0
	c.lastWrite = [isa.NumRegs]uint64{}
	c.Halted = false
	c.intLine = false
}

// SetFastPath selects between the predecoded fast path (the default)
// and the reference interpreter. The two engines are observably
// identical; the reference path exists as the baseline the differential
// tests compare against.
func (c *CPU) SetFastPath(on bool) { c.fastpath = on }

// FastPath reports whether the predecoded fast path is active.
func (c *CPU) FastPath() bool { return c.fastpath }

// SetBlocks selects whether the superblock engine may run. It layers
// on the fast path, so SetFastPath(false) also disables it; per-step
// tracers (SetStepHook) and Interlocked mode suspend it automatically.
func (c *CPU) SetBlocks(on bool) { c.blocks = on }

// Blocks reports whether the superblock engine is enabled.
func (c *CPU) Blocks() bool { return c.blocks }

// SetTraces selects whether the trace JIT tier may run. It layers on
// the superblock engine, so SetBlocks(false) or SetFastPath(false) also
// disables it; traces form only in the quiet machine configuration
// (unmapped, no devices, no DMA, no tickers) and every deviation bails
// tier by tier — trace to superblock to fast path to reference — at an
// exact instruction boundary.
func (c *CPU) SetTraces(on bool) { c.traces = on }

// Traces reports whether the trace JIT tier is enabled.
func (c *CPU) Traces() bool { return c.traces }

// SetChainFollow tunes how many chained blocks (or chained traces) one
// Step may execute before returning, bounding how much work Run's step
// budget can hide. Values below 1 reset the default.
func (c *CPU) SetChainFollow(n int) {
	if n < 1 {
		n = defaultChainFollow
	}
	c.chainFollow = n
}

// ChainFollow reports the per-Step chain-follow bound.
func (c *CPU) ChainFollow() int { return c.chainFollow }

// PC returns the address of the next instruction to execute.
func (c *CPU) PC() uint32 { return c.pcq[0] }

// SetPC replaces the fetch stream, discarding any pending delayed
// branches. Loaders use it to start execution at an image entry point.
func (c *CPU) SetPC(pc uint32) { c.pcq[0], c.pcn = pc, 1 }

// setPCQueue replaces the fetch stream with three explicit entries (the
// return-from-exception resume sequence).
func (c *CPU) setPCQueue(a, b, d uint32) {
	c.pcq[0], c.pcq[1], c.pcq[2] = a, b, d
	c.pcn = 3
}

// popPC removes and returns the head of the fetch queue. The shift
// moves fixed slots (dead tail entries included) so it compiles to
// register moves instead of a bounded memmove.
func (c *CPU) popPC() uint32 {
	pc := c.pcq[0]
	c.pcq[0], c.pcq[1], c.pcq[2] = c.pcq[1], c.pcq[2], c.pcq[3]
	c.pcn--
	return pc
}

// pushPC re-queues a word address at the head of the fetch queue (the
// restart of a faulted instruction).
func (c *CPU) pushPC(pc uint32) {
	c.pcq[3], c.pcq[2], c.pcq[1] = c.pcq[2], c.pcq[1], c.pcq[0]
	c.pcq[0] = pc
	c.pcn++
}

// SetAudit installs a hazard auditor invoked on every load-use
// violation. Pass nil to disable.
func (c *CPU) SetAudit(fn func(Hazard)) { c.audit = fn }

// SetTrapHook installs a callback invoked (in addition to the
// architectural exception) whenever a software trap executes. Harnesses
// use it to observe monitor calls without a full kernel.
func (c *CPU) SetTrapHook(fn func(code uint16)) { c.onTrap = fn }

// SetStepHook installs a tracer invoked before each executed
// instruction word with its address. Pass nil to disable.
func (c *CPU) SetStepHook(fn func(pc uint32, in isa.Instr)) { c.onStep = fn }

// SetMemHook installs an observer invoked on every completed data-memory
// reference with the issuing PC, the (virtual) address, and whether it
// was a store. Faulting references do not report. Pass nil to disable.
func (c *CPU) SetMemHook(fn func(pc, addr uint32, store bool)) { c.onMem = fn }

// SetBranchHook installs an observer invoked on every executed
// control-transfer piece with the branch PC, the target, and whether the
// transfer was taken (jumps, calls, and indirect jumps always are).
// Pass nil to disable.
func (c *CPU) SetBranchHook(fn func(pc, target uint32, taken bool)) { c.onBranch = fn }

// SetExcHook installs an observer invoked on every exception entry,
// after the architectural state has been saved: pc is the first saved
// return address (the instruction that will restart or resume),
// trapCode is meaningful only when primary is CauseTrap. Pass nil to
// disable.
func (c *CPU) SetExcHook(fn func(pc uint32, primary, secondary isa.Cause, trapCode uint16)) {
	c.onExc = fn
}

// SetRFEHook installs an observer invoked on every return from
// exception with the PC execution resumes at. Pass nil to disable.
func (c *CPU) SetRFEHook(fn func(pc uint32)) { c.onRFE = fn }

// SetStallHook installs an observer invoked once per hardware-interlock
// stall cycle (Interlocked mode only) with the PC of the stalled
// instruction. Pass nil to disable.
func (c *CPU) SetStallHook(fn func(pc uint32)) { c.onStall = fn }

// Interrupt drives the single external interrupt line (paper §3.3:
// "There is a single interrupt line onto the chip"). The level is held
// until released; the processor takes the interrupt before the next
// instruction once interrupts are enabled.
func (c *CPU) Interrupt(level bool) { c.intLine = level }

// Halt stops the processor; Step returns ErrHalted afterwards.
func (c *CPU) Halt() { c.Halted = true }

// LoadImage copies an image into instruction memory and initialized data
// into physical memory, and sets the PC to the entry point.
func (c *CPU) LoadImage(im *isa.Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	end := int(im.TextBase) + len(im.Words)
	if end > len(c.IMem) {
		grown := make([]isa.Instr, end)
		copy(grown, c.IMem)
		c.IMem = grown
	}
	copy(c.IMem[im.TextBase:], im.Words)
	for addr, val := range im.Data {
		c.Bus.MMU.Phys.Poke(uint32(addr), val)
	}
	c.InvalidateDecoded()
	c.InvalidateTraces()
	c.InvalidateBlocks()
	c.SetPC(uint32(im.Entry))
	return nil
}

// fill extends the fetch queue with sequential addresses so that three
// entries are always present.
func (c *CPU) fill() {
	for c.pcn < 3 {
		c.pcq[c.pcn] = c.pcq[c.pcn-1] + 1
		c.pcn++
	}
}

// scheduleBranch installs a delayed control transfer: after delay more
// sequential instructions, execution continues at target. The queue
// currently holds the instructions after the branch.
func (c *CPU) scheduleBranch(target uint32, delay int) {
	c.fill()
	c.pcq[delay] = target
	c.pcn = delay + 1
}

// commitLoads applies pending load results that have reached their
// commit time, unless a younger write already replaced the register.
// Entries are appended in issue order with a fixed delay, so the due
// ones always form a prefix.
func (c *CPU) commitLoads() {
	i := 0
	for i < c.pendN && c.pend[i].commitAt <= c.seq {
		w := &c.pend[i]
		if c.lastWrite[w.reg] <= w.issuedAt {
			c.Regs[w.reg] = w.val
			c.lastWrite[w.reg] = w.issuedAt
		}
		i++
	}
	if i == 0 {
		return
	}
	n := 0
	for j := i; j < c.pendN; j++ {
		c.pend[n] = c.pend[j]
		n++
	}
	c.pendN = n
}

// readReg reads a register for operand use. Without interlocks a
// pending load is a hazard: the stale value is returned and the auditor
// notified. With interlocks the pipe stalls until the load commits.
func (c *CPU) readReg(r isa.Reg, pc uint32) uint32 {
	if c.Interlocked {
		stalled := false
		n := 0
		for j := 0; j < c.pendN; j++ {
			w := c.pend[j]
			if w.reg != r {
				c.pend[n] = w
				n++
				continue
			}
			// Stall: the value arrives now, one bubble charged.
			if c.lastWrite[w.reg] <= w.issuedAt {
				c.Regs[w.reg] = w.val
				c.lastWrite[w.reg] = w.issuedAt
			}
			stalled = true
		}
		if stalled {
			c.pendN = n
			c.Stats.StallCycles++
			c.Stats.Cycles++
			if c.onStall != nil {
				c.onStall(pc)
			}
		}
		return c.Regs[r]
	}
	if c.audit != nil {
		for j := 0; j < c.pendN; j++ {
			if c.pend[j].reg == r {
				c.audit(Hazard{Seq: c.seq, PC: pc, Reg: r})
			}
		}
	}
	return c.Regs[r]
}

func (c *CPU) operand(o isa.Operand, pc uint32) uint32 {
	if o.IsImm {
		return uint32(o.Imm)
	}
	return c.readReg(o.Reg, pc)
}

// writeReg performs an immediate architectural register write.
func (c *CPU) writeReg(r isa.Reg, v uint32) {
	c.Regs[r] = v
	c.lastWrite[r] = c.seq
}

// writeLoad schedules a load result: invisible to the next instruction,
// visible to the one after (load delay 1).
func (c *CPU) writeLoad(r isa.Reg, v uint32) {
	if c.pendN == len(c.pend) {
		// Cannot happen architecturally (the fixed load delay bounds
		// the in-flight count well below the capacity), but stay safe:
		// retire the oldest entry early.
		w := &c.pend[0]
		if c.lastWrite[w.reg] <= w.issuedAt {
			c.Regs[w.reg] = w.val
			c.lastWrite[w.reg] = w.issuedAt
		}
		for j := 1; j < c.pendN; j++ {
			c.pend[j-1] = c.pend[j]
		}
		c.pendN--
	}
	c.pend[c.pendN] = delayedWrite{
		reg: r, val: v, issuedAt: c.seq, commitAt: c.seq + 1 + isa.LoadDelay,
	}
	c.pendN++
}

// flushPending completes all in-flight load writes immediately — the
// pipeline drain of exception entry: "an attempt is made to complete
// any unfinished instructions" (paper §3.3).
func (c *CPU) flushPending() {
	for j := 0; j < c.pendN; j++ {
		w := &c.pend[j]
		if c.lastWrite[w.reg] <= w.issuedAt {
			c.Regs[w.reg] = w.val
			c.lastWrite[w.reg] = w.issuedAt
		}
	}
	c.pendN = 0
}

// exception performs the architectural exception sequence (paper §3.3).
// If restart is true the current instruction has not completed and the
// fetch queue still has it at the head, so it becomes the first return
// address and will re-execute on return.
func (c *CPU) exception(primary, secondary isa.Cause, trapCode uint16) {
	c.excSeq++
	c.flushPending()
	c.fill()
	c.Ret[0], c.Ret[1], c.Ret[2] = c.pcq[0], c.pcq[1], c.pcq[2]
	c.Sur = c.Sur.Enter(primary, secondary)
	if primary == isa.CauseTrap {
		c.Sur = c.Sur.WithTrapCode(trapCode)
	}
	c.pcq[0], c.pcn = 0, 1
	c.Stats.Exceptions[primary]++
	// Completing in-flight instructions and refilling the pipe costs a
	// pipeline's worth of cycles.
	c.Stats.Cycles += isa.PipeStages
	if c.onExc != nil {
		c.onExc(c.Ret[0], primary, secondary, trapCode)
	}
}

// privileged reports whether any piece of the word requires supervisor
// privilege, without allocating.
func privileged(in isa.Instr) bool {
	if in.ALU != nil && in.ALU.Privileged() {
		return true
	}
	return in.Mem != nil && in.Mem.Privileged()
}

// Step executes one instruction word. It returns ErrHalted once the
// processor stops; architectural faults are not errors — they vector
// through the exception mechanism.
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	// Superblock and trace dispatch: when the fetch queue holds no
	// in-flight branch target, its head is a block entry point and the
	// whole straight-line run executes as one translated block — or,
	// one tier up, a compiled multi-block trace. Per-step tracers and
	// interlock mode need per-instruction stepping, and a false return
	// (unresolvable entry) falls through tier by tier to the exact path.
	if c.blocks && c.fastpath && !c.Interlocked && c.onStep == nil &&
		c.queueSequential() {
		if c.traces && c.stepTraces() {
			return nil
		}
		i0 := c.Stats.Instructions
		ok := c.stepBlocks()
		c.Trans.TierInstrs[TierBlocks] += c.Stats.Instructions - i0
		if ok {
			return nil
		}
	}
	c.seq++
	c.commitLoads()
	c.fill()

	// The single interrupt line is sampled between instructions; the
	// interrupted instruction has not started, so it is return address 0.
	// Supervisor code runs with interrupts deferred until it returns to
	// user level, so the dispatch ROM's save area cannot be clobbered.
	if c.intLine && c.Sur.InterruptsEnabled() && !c.Sur.Supervisor() {
		c.exception(isa.CauseInterrupt, isa.CauseNone, 0)
		return nil
	}

	pc := c.pcq[0]
	if c.fastpath {
		i0 := c.Stats.Instructions
		c.stepFast(pc)
		c.Trans.TierInstrs[TierFast] += c.Stats.Instructions - i0
		return nil
	}

	in, fault := c.fetch(pc)
	if fault != nil {
		c.Bus.LastFault = fault
		c.exception(fault.Cause, isa.CauseNone, 0)
		return nil
	}

	// Privilege is enforced at decode.
	if privileged(in) && !c.Sur.Supervisor() {
		c.exception(isa.CausePrivilege, isa.CauseNone, 0)
		return nil
	}

	c.popPC()
	if c.onStep != nil {
		c.onStep(pc, in)
	}
	i0 := c.Stats.Instructions
	c.execWord(in, pc)
	c.Trans.TierInstrs[TierReference] += c.Stats.Instructions - i0
	c.Bus.Tick()
	return nil
}

// Mapped reports whether addresses currently translate through the
// segmentation unit and page map. The privilege level selects the
// address space (paper §3.2: "the current privilege level and mapping
// state are available to the rest of the system as part of the virtual
// address"): supervisor code always runs physical, which is how the
// return-from-exception sequence alternates between the two spaces.
func (c *CPU) Mapped() bool {
	return c.Sur.MappingEnabled() && !c.Sur.Supervisor()
}

// fetch translates the PC and reads instruction memory.
func (c *CPU) fetch(pc uint32) (isa.Instr, *mem.Fault) {
	pa := pc
	if c.Mapped() {
		var f *mem.Fault
		pa, f = c.Bus.MMU.Translate(pc, false, true)
		if f != nil {
			return isa.Instr{}, f
		}
	}
	if pa >= uint32(len(c.IMem)) {
		return isa.Instr{}, &mem.Fault{Cause: isa.CausePageFault, Addr: pa}
	}
	in := c.IMem[pa]
	if in.ALU == nil && in.Mem == nil {
		// Unprogrammed instruction memory decodes as illegal.
		return isa.Instr{}, &mem.Fault{Cause: isa.CauseIllegal, Addr: pa}
	}
	return in, nil
}

// Run executes until the processor halts or the step limit is reached.
// It returns the number of instructions executed and nil on a clean
// halt, or an error describing why execution stopped.
func (c *CPU) Run(maxSteps uint64) (uint64, error) {
	start := c.Stats.Instructions
	for i := uint64(0); i < maxSteps; i++ {
		if err := c.Step(); err != nil {
			if errors.Is(err, ErrHalted) {
				return c.Stats.Instructions - start, nil
			}
			return c.Stats.Instructions - start, err
		}
	}
	if c.Halted {
		return c.Stats.Instructions - start, nil
	}
	return c.Stats.Instructions - start, fmt.Errorf("cpu: step limit %d exceeded at pc=%d", maxSteps, c.PC())
}
