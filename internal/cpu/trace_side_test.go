package cpu

// Side-exit traces and indirect inline caches: the deopt-driven half of
// the trace tier. A periodic direction pattern is no test — multi-block
// recording absorbs any period that fits in traceMaxBlocks and the
// trace runs clean — so these workloads derive branch directions and
// indirect targets from a branchless Galois LFSR, which no finite
// recording can predict. The tests pin that (a) the machine stays
// architecturally identical to the lower tiers under ~50% guard
// misprediction, (b) hot exits resolve inside the trace tier through
// side stubs and inline caches, (c) the new counters partition exactly,
// and (d) the derived side state obeys the same coherence and
// allocation rules as the traces it hangs off.

import (
	"testing"

	"mips/internal/isa"
)

var (
	lfsrTaps uint32 = 0xEDB88320
	lfsrSeed uint32 = 0xACE12345
)

// lfsrBranchCPU builds a loop whose branch direction is the LFSR's
// output bit: r4 steps one Galois round per iteration (branchlessly, so
// the only data-dependent branch is the one under test) and the bit
// picks the +3 or +2 arm. Any compiled trace records one direction at
// word 8 and mispredicts about half of all passes — the side-stub
// formation workload.
func lfsrBranchCPU(n int32) *CPU {
	pick := isa.Branch(isa.CmpNE, isa.R(5), isa.Imm(0), "")
	pick.Target = 13
	skip := isa.Jump("")
	skip.Target = 15
	back := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	back.Target = 3
	return newTestCPU(
		w(isa.LoadImm32(1, n)),                          // 0
		w(isa.LoadImm32(8, int32(lfsrTaps))),            // 1
		w(isa.LoadImm32(4, int32(lfsrSeed))),            // 2
		w(isa.ALU(isa.OpAnd, 5, isa.R(4), isa.Imm(1))),  // 3: entry: output bit
		w(isa.ALU(isa.OpSrl, 4, isa.R(4), isa.Imm(1))),  // 4
		w(isa.ALU(isa.OpRSub, 3, isa.R(5), isa.Imm(0))), // 5: mask = 0 - bit
		w(isa.ALU(isa.OpAnd, 3, isa.R(3), isa.R(8))),    // 6
		w(isa.ALU(isa.OpXor, 4, isa.R(4), isa.R(3))),    // 7: feedback
		w(pick),      // 8: bne r5, #0, 13
		w(isa.Nop()), // 9: delay slot (patch target)
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(2))), // 10: clear arm
		w(skip),      // 11: j 15
		w(isa.Nop()), // 12: delay slot
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(3))), // 13: set arm
		w(isa.Nop()), // 14
		w(isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1))), // 15: converge
		w(back),      // 16: bne r1, #0, 3
		w(isa.Nop()), // 17: delay slot
		halt,         // 18
	)
}

// lfsrBranchR2 is the architectural result the workload must produce.
func lfsrBranchR2(n int32) uint32 {
	s := lfsrSeed
	var r2 uint32
	for i := int32(0); i < n; i++ {
		bit := s & 1
		s = (s >> 1) ^ (lfsrTaps & -bit)
		if bit != 0 {
			r2 += 3
		} else {
			r2 += 2
		}
	}
	return r2
}

// TestSideTraceLFSRBranch pins side-stub formation and the exit
// partition on the unpredictable-direction workload, differentially
// against the other three engines.
func TestSideTraceLFSRBranch(t *testing.T) {
	const n = 4000
	trc := lfsrBranchCPU(n)
	run(t, trc, 1_000_000)

	blk := lfsrBranchCPU(n)
	blk.SetTraces(false)
	run(t, blk, 1_000_000)

	fast := lfsrBranchCPU(n)
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)

	ref := lfsrBranchCPU(n)
	ref.SetTraces(false)
	ref.SetBlocks(false)
	ref.SetFastPath(false)
	run(t, ref, 1_000_000)

	if trc.Regs != blk.Regs || trc.Regs != fast.Regs || trc.Regs != ref.Regs {
		t.Errorf("registers diverge:\n traces %v\n blocks %v\n   fast %v\n    ref %v",
			trc.Regs, blk.Regs, fast.Regs, ref.Regs)
	}
	if trc.Stats != blk.Stats || trc.Stats != fast.Stats || trc.Stats != ref.Stats {
		t.Errorf("stats diverge:\n traces %+v\n blocks %+v\n   fast %+v\n    ref %+v",
			trc.Stats, blk.Stats, fast.Stats, ref.Stats)
	}
	if want := lfsrBranchR2(n); trc.Regs[2] != want {
		t.Errorf("r2 = %d, want %d", trc.Regs[2], want)
	}

	if trc.Trans.TraceCompiled == 0 {
		t.Fatal("workload never compiled a trace; side exits cannot be exercised")
	}
	if trc.Trans.TraceSideCompiled == 0 {
		t.Error("unpredictable branch never compiled a side stub")
	}
	if trc.Trans.TraceSideHits == 0 {
		t.Error("no direction exit was resolved in-tier")
	}
	// The taxonomy still partitions the (now rarer) real guard exits.
	if got, want := trc.Trans.GuardExitReasonTotal(), trc.Trans.TraceGuardExits; got != want {
		t.Errorf("deopt reasons sum to %d, want TraceGuardExits %d", got, want)
	}
	// In-tier resolution must dominate: the whole point of the side stub
	// is that a 50%-mispredicting guard stops exiting to dispatch.
	if trc.Trans.TraceSideHits <= trc.Trans.TraceDeopts[DeoptBranchDirection] {
		t.Errorf("side hits (%d) do not dominate branch-direction exits (%d)",
			trc.Trans.TraceSideHits, trc.Trans.TraceDeopts[DeoptBranchDirection])
	}
	// Side stubs appear in the introspection view, flagged as such, and
	// the per-site counters still sum to the globals (nothing was dropped
	// in this run, so live sites account for everything).
	var stubs int
	var hits, sideHits, icHits uint64
	for _, s := range trc.TraceSites() {
		if s.Side {
			stubs++
		}
		hits += s.Hits
		sideHits += s.SideHits
		icHits += s.ICHits
	}
	if stubs == 0 {
		t.Error("no side stub visible in TraceSites")
	}
	if hits != trc.Trans.TraceDispatchHits {
		t.Errorf("site hits sum to %d, want TraceDispatchHits %d", hits, trc.Trans.TraceDispatchHits)
	}
	if sideHits != trc.Trans.TraceSideHits || icHits != trc.Trans.TraceICHits {
		t.Errorf("per-site side/IC hits (%d/%d) diverge from globals (%d/%d)",
			sideHits, icHits, trc.Trans.TraceSideHits, trc.Trans.TraceICHits)
	}
}

// lfsrIndirectCPU builds a loop whose indirect jump target is COMPUTED
// branchlessly from two LFSR bits — `16 + 4*(bit1+bit0)` picks one of
// three landing sites A/B/C — so the indirect guard itself, not an
// earlier direction guard, is what catches the divergence. The compiled
// trace bakes one target in as the expected continuation; the other two
// must install into the jump op's two-entry inline cache, and three
// targets exactly fill recorded-plus-IC so steady state never churns.
// After the arms converge, a second branch on the LFSR bit adds a ~50%
// mispredicting direction guard, so one workload exercises side stubs
// and inline caches together.
func lfsrIndirectCPU(n int32) *CPU {
	convA := isa.Jump("")
	convA.Target = 28
	convB := isa.Jump("")
	convB.Target = 28
	dir := isa.Branch(isa.CmpNE, isa.R(3), isa.Imm(0), "")
	dir.Target = 34
	skip := isa.Jump("")
	skip.Target = 36
	back := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	back.Target = 3
	return newTestCPU(
		w(isa.LoadImm32(1, n)),                          // 0
		w(isa.LoadImm32(8, int32(lfsrTaps))),            // 1
		w(isa.LoadImm32(4, int32(lfsrSeed))),            // 2
		w(isa.ALU(isa.OpAnd, 6, isa.R(4), isa.Imm(1))),  // 3: entry: bit0
		w(isa.ALU(isa.OpAnd, 5, isa.R(4), isa.Imm(2))),  // 4: bit1 (in place)
		w(isa.ALU(isa.OpSrl, 5, isa.R(5), isa.Imm(1))),  // 5
		w(isa.ALU(isa.OpAdd, 5, isa.R(5), isa.R(6))),    // 6: 0,1,1,2
		w(isa.ALU(isa.OpSll, 5, isa.R(5), isa.Imm(2))),  // 7
		w(isa.ALU(isa.OpAdd, 9, isa.R(5), isa.Imm(16))), // 8: target = 16+4*site
		w(isa.ALU(isa.OpSrl, 4, isa.R(4), isa.Imm(1))),  // 9: LFSR shift
		w(isa.ALU(isa.OpRSub, 3, isa.R(6), isa.Imm(0))), // 10: mask = 0 - bit0
		w(isa.ALU(isa.OpAnd, 7, isa.R(3), isa.R(8))),    // 11
		w(isa.ALU(isa.OpXor, 4, isa.R(4), isa.R(7))),    // 12: feedback
		w(isa.JumpInd(9)),                               // 13: computed target
		w(isa.Nop()),                                    // 14: delay slot
		w(isa.Nop()),                                    // 15: delay slot
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1))),  // 16: A (site 0)
		w(convA),     // 17: j 28
		w(isa.Nop()), // 18: delay slot
		w(isa.Nop()), // 19: pad
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(2))), // 20: B (site 1)
		w(convB),     // 21: j 28
		w(isa.Nop()), // 22: delay slot
		w(isa.Nop()), // 23: pad
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(3))), // 24: C (site 2)
		w(isa.Nop()), // 25
		w(isa.Nop()), // 26
		w(isa.Nop()), // 27
		w(isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1))), // 28: converge
		w(dir),       // 29: bne r3, #0, 34
		w(isa.Nop()), // 30: delay slot
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(5))), // 31: bit-clear arm
		w(skip),      // 32: j 36
		w(isa.Nop()), // 33: delay slot
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(7))), // 34: bit-set arm
		w(isa.Nop()), // 35
		w(back),      // 36: bne r1, #0, 3
		w(isa.Nop()), // 37: delay slot
		halt,         // 38
	)
}

// lfsrIndirectR2 mirrors the workload's accumulation in plain Go.
func lfsrIndirectR2(n int32) uint32 {
	s := lfsrSeed
	var r2 uint32
	for i := int32(0); i < n; i++ {
		bit := s & 1
		site := (s>>1)&1 + bit
		s = (s >> 1) ^ (lfsrTaps & -bit)
		r2 += site + 1 // arms add 1, 2, 3
		if bit != 0 {
			r2 += 7
		} else {
			r2 += 5
		}
	}
	return r2
}

// TestInlineCacheLFSRIndirect pins the indirect inline cache on the
// rotating-target workload, differentially against the other three
// engines: targets beyond the recorded one install into the IC, hot
// lookups resolve in-tier, and the exit/resolution counters partition.
func TestInlineCacheLFSRIndirect(t *testing.T) {
	const n = 4000
	trc := lfsrIndirectCPU(n)
	run(t, trc, 1_000_000)

	blk := lfsrIndirectCPU(n)
	blk.SetTraces(false)
	run(t, blk, 1_000_000)

	fast := lfsrIndirectCPU(n)
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)

	ref := lfsrIndirectCPU(n)
	ref.SetTraces(false)
	ref.SetBlocks(false)
	ref.SetFastPath(false)
	run(t, ref, 1_000_000)

	if trc.Regs != blk.Regs || trc.Regs != fast.Regs || trc.Regs != ref.Regs {
		t.Errorf("registers diverge:\n traces %v\n blocks %v\n   fast %v\n    ref %v",
			trc.Regs, blk.Regs, fast.Regs, ref.Regs)
	}
	if trc.Stats != blk.Stats || trc.Stats != fast.Stats || trc.Stats != ref.Stats {
		t.Errorf("stats diverge:\n traces %+v\n blocks %+v\n   fast %+v\n    ref %+v",
			trc.Stats, blk.Stats, fast.Stats, ref.Stats)
	}
	if want := lfsrIndirectR2(n); trc.Regs[2] != want {
		t.Errorf("r2 = %d, want %d", trc.Regs[2], want)
	}

	if trc.Trans.TraceCompiled == 0 {
		t.Fatal("workload never compiled a trace; the inline cache cannot be exercised")
	}
	if trc.Trans.TraceICInstalls < 2 {
		t.Errorf("rotating indirect target installed %d inline-cache entries, want >= 2 (both non-recorded targets)",
			trc.Trans.TraceICInstalls)
	}
	if trc.Trans.TraceICHits == 0 {
		t.Error("no indirect-target exit was resolved through the inline cache")
	}
	if got, want := trc.Trans.GuardExitReasonTotal(), trc.Trans.TraceGuardExits; got != want {
		t.Errorf("deopt reasons sum to %d, want TraceGuardExits %d", got, want)
	}
	if trc.Trans.TraceICHits <= trc.Trans.TraceDeopts[DeoptIndirectTarget] {
		t.Errorf("IC hits (%d) do not dominate indirect-target exits (%d)",
			trc.Trans.TraceICHits, trc.Trans.TraceDeopts[DeoptIndirectTarget])
	}
}

// TestSideTracePatchInvalidation is the self-modification contract
// applied to a side stub: a patch into the stub's covered word — the
// branch delay slot it compiled — must drop the stub (and its parent)
// through the write barrier, never replaying stale code, and the stub
// must re-form from the patched memory once its exit runs hot again.
// The patch lands only at Step boundaries where the current iteration's
// delay slot has not yet executed (PC <= the branch shadow), so the
// architectural result stays exactly computable.
func TestSideTracePatchInvalidation(t *testing.T) {
	const n = 8000
	c := lfsrBranchCPU(n)
	patched := false
	var left uint32
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		// Wait for a live side stub before patching, so the drop path
		// under test actually has a stub to drop. Word 9 (the shadow nop
		// both the parent trace and the stub compiled) becomes an
		// accumulator bump; it executes exactly once per remaining
		// iteration regardless of branch direction. Rewrite IMem AND
		// Poke physical — the harness contract.
		if !patched && c.Trans.TraceSideCompiled > 0 && c.PC() <= 9 && c.Regs[1] > 0 {
			patched = true
			left = c.Regs[1]
			c.IMem[9] = w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(10)))
			c.Bus.MMU.Phys.Poke(9, 0)
		}
	}
	if !patched {
		t.Fatal("no Step boundary offered a patch point with a live side stub")
	}
	if want := lfsrBranchR2(n) + 10*left; c.Regs[2] != want {
		t.Errorf("r2 = %d, want %d (stale side stub executed after patch)", c.Regs[2], want)
	}
	if c.Trans.TraceInvalidations == 0 {
		t.Error("patch into side-stub text never tripped the write barrier")
	}
	if c.Trans.TraceSideCompiled < 2 {
		t.Errorf("side stub compiled %d times, want >= 2 (initial build plus post-patch rebuild)",
			c.Trans.TraceSideCompiled)
	}
}

// TestSideTraceZeroAllocSteadyState extends the steady-state allocation
// contract to the new dispatch paths: once side stubs and inline-cache
// entries exist, resolving guard exits through them must not allocate.
func TestSideTraceZeroAllocSteadyState(t *testing.T) {
	c := lfsrIndirectCPU(2_000_000)
	// Warm until formation, stub builds, and IC installs have all
	// happened and every heat entry has settled — never during the
	// measurement.
	for i := 0; i < 8192; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Trans.TraceCompiled == 0 || c.Trans.TraceSideCompiled == 0 || c.Trans.TraceICInstalls == 0 {
		t.Fatalf("warmup did not reach steady state (compiled=%d side=%d ic=%d); the measurement would be vacuous",
			c.Trans.TraceCompiled, c.Trans.TraceSideCompiled, c.Trans.TraceICInstalls)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Step with live side stubs/ICs allocates %v allocs/op, want 0", avg)
	}
}
