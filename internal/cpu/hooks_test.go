package cpu

import (
	"testing"

	"mips/internal/isa"
)

// The observability hooks must fire exactly once per architectural
// event, with the PC of the word responsible, including around the
// machine's irregular control flow: delayed branches and exception
// entry/restart. The trace and profiler layers are built entirely on
// these guarantees.

func TestStepHookSeesDelayedBranchOrder(t *testing.T) {
	br := isa.Branch(isa.CmpAlw, isa.R(0), isa.R(0), "")
	br.Target = 4
	c := newTestCPU(
		w(br),                      // 0: branch to 4
		w(isa.Mov(1, isa.Imm(11))), // 1: delay slot — executes
		w(isa.Mov(2, isa.Imm(22))), // 2: skipped
		w(isa.Mov(3, isa.Imm(33))), // 3: skipped
		w(isa.Mov(4, isa.Imm(44))), // 4: target
		halt,
	)
	var pcs []uint32
	c.SetStepHook(func(pc uint32, in isa.Instr) { pcs = append(pcs, pc) })
	run(t, c, 100)
	want := []uint32{0, 1, 4, 5}
	if len(pcs) != len(want) {
		t.Fatalf("step hook fired at %v, want %v", pcs, want)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("step hook fired at %v, want %v", pcs, want)
		}
	}
	if uint64(len(pcs)) != c.Stats.Instructions {
		t.Errorf("step hook fired %d times, Stats.Instructions = %d", len(pcs), c.Stats.Instructions)
	}
}

func TestBranchHookReportsTakenAndFallThrough(t *testing.T) {
	notTaken := isa.Branch(isa.CmpNev, isa.R(0), isa.R(0), "")
	notTaken.Target = 9
	taken := isa.Branch(isa.CmpAlw, isa.R(0), isa.R(0), "")
	taken.Target = 4
	c := newTestCPU(
		w(notTaken),  // 0: falls through
		w(taken),     // 1: to 4
		w(isa.Nop()), // 2: delay slot
		w(isa.Nop()), // 3: skipped
		halt,         // 4
	)
	type branch struct {
		pc, target uint32
		taken      bool
	}
	var got []branch
	c.SetBranchHook(func(pc, target uint32, tk bool) { got = append(got, branch{pc, target, tk}) })
	run(t, c, 100)
	want := []branch{{0, 9, false}, {1, 4, true}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("branch hook got %v, want %v", got, want)
	}
}

func TestMemHookReportsLoadsAndStores(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(7))),
		w(isa.Mov(2, isa.Imm(100))),
		w(isa.StoreDisp(1, 2, 5)), // 2: mem[105] = r1
		w(isa.LoadDisp(3, 2, 5)),  // 3: r3 = mem[105]
		w(isa.Nop()),
		halt,
	)
	type ref struct {
		pc, addr uint32
		store    bool
	}
	var got []ref
	c.SetMemHook(func(pc, addr uint32, store bool) { got = append(got, ref{pc, addr, store}) })
	run(t, c, 100)
	want := []ref{{2, 105, true}, {3, 105, false}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("mem hook got %v, want %v", got, want)
	}
}

func TestExcAndRFEHooksAcrossTrapRestart(t *testing.T) {
	// Handler at 0 returns from exception; user code traps at 4 and
	// continues at 5.
	c := newTestCPU(
		w(isa.RFE()),              // 0: handler
		w(isa.Nop()),              // 1
		w(isa.Nop()),              // 2
		w(isa.Nop()),              // 3
		w(isa.Trap(77)),           // 4: user trap
		w(isa.Mov(2, isa.Imm(9))), // 5: resumed here
		halt,                      // 6
	)
	c.SetTrapHook(func(code uint16) {
		if code == 0 {
			c.Halt()
		}
		// trap 77 is left to the "kernel" at address 0
	})
	c.SetPC(4)

	var order []string
	c.SetStepHook(func(pc uint32, in isa.Instr) { order = append(order, "step") })
	var excPC uint32
	var excPrimary isa.Cause
	var excCode uint16
	c.SetExcHook(func(pc uint32, primary, secondary isa.Cause, code uint16) {
		order = append(order, "exc")
		if excPrimary == isa.CauseNone { // record the first exception only
			excPC, excPrimary, excCode = pc, primary, code
		}
	})
	var rfePC uint32
	c.SetRFEHook(func(pc uint32) {
		order = append(order, "rfe")
		if rfePC == 0 {
			rfePC = pc
		}
	})
	run(t, c, 100)

	// trap step → exception entry → handler step → rfe → resumed steps
	// (the final halt trap re-enters the handler, so check the prefix).
	want := []string{"step", "exc", "step", "rfe", "step", "step"}
	if len(order) < len(want) {
		t.Fatalf("hook order = %v, want prefix %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook order = %v, want prefix %v", order, want)
		}
	}
	if excPC != 5 {
		t.Errorf("exc hook restart pc = %d, want 5 (after the trap)", excPC)
	}
	if excPrimary != isa.CauseTrap || excCode != 77 {
		t.Errorf("exc hook cause = %s code = %d, want trap 77", excPrimary, excCode)
	}
	if rfePC != 5 {
		t.Errorf("rfe hook resume pc = %d, want 5", rfePC)
	}
	if c.Regs[2] != 9 {
		t.Error("execution did not resume after the trap")
	}
}

func TestStallHookFiresOnInterlock(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(100))),
		w(isa.LoadDisp(2, 1, 0)), // 1: load r2
		w(isa.Mov(3, isa.R(2))),  // 2: immediate use — interlock stall
		halt,
	)
	c.Interlocked = true
	var stalls []uint32
	c.SetStallHook(func(pc uint32) { stalls = append(stalls, pc) })
	run(t, c, 100)
	if len(stalls) == 0 {
		t.Fatal("stall hook never fired on a load-use interlock")
	}
	if uint64(len(stalls)) != c.Stats.StallCycles {
		t.Errorf("stall hook fired %d times, Stats.StallCycles = %d", len(stalls), c.Stats.StallCycles)
	}
	for _, pc := range stalls {
		if pc != 2 {
			t.Errorf("stall charged to pc %d, want 2 (the using word)", pc)
		}
	}
}

// TestHookCycleIdentity is the invariant the profiler is built on: every
// machine cycle is visible through exactly one hook — one per step, one
// per stall, PipeStages per exception.
func TestHookCycleIdentity(t *testing.T) {
	c := newTestCPU(
		w(isa.RFE()),                // 0: handler
		w(isa.Nop()),                // 1
		w(isa.Nop()),                // 2
		w(isa.Nop()),                // 3
		w(isa.Mov(1, isa.Imm(100))), // 4
		w(isa.LoadDisp(2, 1, 0)),    // 5
		w(isa.Mov(3, isa.R(2))),     // 6: interlock stall
		w(isa.Trap(9)),              // 7: exception
		halt,                        // 8
	)
	c.SetTrapHook(func(code uint16) {
		if code == 0 {
			c.Halt()
		}
	})
	c.Interlocked = true
	c.SetPC(4)
	var steps, stalls, excs uint64
	c.SetStepHook(func(pc uint32, in isa.Instr) { steps++ })
	c.SetStallHook(func(pc uint32) { stalls++ })
	c.SetExcHook(func(pc uint32, p, s isa.Cause, code uint16) { excs++ })
	run(t, c, 100)
	got := steps + stalls + isa.PipeStages*excs
	if got != c.Stats.Cycles {
		t.Errorf("hooks account for %d cycles (%d steps + %d stalls + %d exc refills), Stats.Cycles = %d",
			got, steps, stalls, excs, c.Stats.Cycles)
	}
	if excs == 0 || stalls == 0 {
		t.Fatalf("test did not exercise all hook kinds: %d excs, %d stalls", excs, stalls)
	}
}
