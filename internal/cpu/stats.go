package cpu

import (
	"fmt"

	"mips/internal/isa"
)

// Stats accumulates the dynamic measurements the paper's evaluation
// draws on: instruction and piece counts, memory-port utilization (the
// free-memory-cycle provision of §3.1), branch behavior, and exception
// activity.
type Stats struct {
	// Instructions counts executed instruction words; with the
	// single-issue five-stage pipe, each costs one cycle.
	Instructions uint64
	// Pieces counts executed non-nop pieces (a packed word contributes two).
	Pieces uint64
	// Nops counts executed no-op words: the explicit cost of
	// software-imposed interlocks.
	Nops uint64
	// Cycles is total machine cycles: instructions plus pipeline refill
	// penalties for exceptions (and interlock stalls when enabled).
	Cycles uint64
	// StallCycles counts hardware-interlock bubbles (Interlocked mode
	// only; always zero on the real no-interlock machine).
	StallCycles uint64
	// DataCycles counts cycles whose data-memory slot carried a load or
	// store; FreeCycles counts the rest ("wasted bandwidth came close to
	// 40% of the available bandwidth", §3.1); DMACycles counts free
	// cycles actually consumed by the DMA engine.
	DataCycles uint64
	FreeCycles uint64
	DMACycles  uint64
	// Loads and Stores count data references.
	Loads, Stores uint64
	// Branches counts executed control-flow pieces; TakenBranches those
	// that transferred control.
	Branches      uint64
	TakenBranches uint64
	// Exceptions counts exception entries by primary cause.
	Exceptions [isa.NumCauses]uint64
}

// TotalExceptions sums exception entries over all causes.
func (s *Stats) TotalExceptions() uint64 {
	var n uint64
	for _, c := range s.Exceptions {
		n += c
	}
	return n
}

// FreeBandwidthFraction returns the fraction of data-memory cycles left
// free, the quantity behind the paper's ~40% observation.
func (s *Stats) FreeBandwidthFraction() float64 {
	total := s.DataCycles + s.FreeCycles
	if total == 0 {
		return 0
	}
	return float64(s.FreeCycles) / float64(total)
}

func (s *Stats) String() string {
	return fmt.Sprintf("instr=%d pieces=%d nops=%d cycles=%d stalls=%d loads=%d stores=%d free=%.1f%% dma=%d branches=%d/%d exc=%d",
		s.Instructions, s.Pieces, s.Nops, s.Cycles, s.StallCycles, s.Loads, s.Stores,
		100*s.FreeBandwidthFraction(), s.DMACycles, s.TakenBranches, s.Branches, s.TotalExceptions())
}

// Hazard records one software-interlock violation observed by the
// auditor: an instruction read a register whose load had not yet
// committed. On the real machine this silently reads the stale value;
// the auditor exists so tests can prove the reorganizer never emits such
// code.
type Hazard struct {
	Seq uint64  // dynamic instruction sequence number
	PC  uint32  // word address of the offending instruction
	Reg isa.Reg // register read too early
}

func (h Hazard) String() string {
	return fmt.Sprintf("load-use hazard at pc=%d (seq %d): %s read before load committed", h.PC, h.Seq, h.Reg)
}
