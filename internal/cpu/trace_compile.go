package cpu

// Trace compilation and dispatch: the execution half of the trace JIT
// tier. A validated flat path (trace_form.go) compiles to an array of
// specialized Go closures — threaded code, one closure per instruction
// word (consecutive nops collapse into one) — and dispatch runs the
// array with no per-word fetch, no queue maintenance, no environmental
// checks, and no statistics updates: a clean pass bulk-adds the
// precomputed cost of the whole trace.
//
// Every check a closure would repeat per word is hoisted to dispatch
// entry, where the quiet-configuration guard (stepTraces) has already
// discharged it: no device, ticker, or DMA engine exists to raise the
// interrupt line or remap memory mid-trace, privilege and overflow
// enable can only change through words a trace refuses to contain, and
// the write barrier reports the one store hazard that remains (a store
// into the trace's own code) through tr.valid.
//
// Exits are exact. Each closure captures the statistics prefix of the
// words before it plus its own partial contribution, and the precise
// fetch-queue image for each way it can leave: the fault-restart queue
// an exception saves as return addresses, the completion queue after a
// finished word, and the redirect queues of a mispredicted branch
// direction or indirect-jump target. A trace therefore abandons
// execution at an exact instruction boundary with the machine
// indistinguishable from the block engine having run the same prefix —
// the tier-bail ladder (trace -> superblock -> fast path -> reference)
// never shows through architecturally.

import "mips/internal/isa"

// plus returns the sum of two cost vectors.
func (tc traceCost) plus(o traceCost) traceCost {
	tc.instr += o.instr
	tc.cycles += o.cycles
	tc.pieces += o.pieces
	tc.nops += o.nops
	tc.loads += o.loads
	tc.stores += o.stores
	tc.branches += o.branches
	tc.taken += o.taken
	tc.data += o.data
	tc.free += o.free
	return tc
}

// Per-class happy-path cost of one word, identical to what the block
// engine's quiet loop accounts for the same word.
var (
	wcNop     = traceCost{instr: 1, cycles: 1, nops: 1, free: 1}
	wcALU     = traceCost{instr: 1, cycles: 1, pieces: 1, free: 1}
	wcLoadImm = traceCost{instr: 1, cycles: 1, pieces: 1, free: 1}
	wcLoad    = traceCost{instr: 1, cycles: 1, pieces: 1, loads: 1, data: 1}
	wcStore   = traceCost{instr: 1, cycles: 1, pieces: 1, stores: 1, data: 1}
	wcBranch  = traceCost{instr: 1, cycles: 1, pieces: 1, branches: 1, free: 1}
	wcTaken   = traceCost{instr: 1, cycles: 1, pieces: 1, branches: 1, taken: 1, free: 1}
	// A faulting memory word accounts its data cycle but not the
	// load/store completion count, exactly like finishWord's fault path.
	wcMemFault = traceCost{instr: 1, cycles: 1, pieces: 1, data: 1}

	// Packed words carry two active pieces; otherwise the same shapes.
	wcPackedLoadImm  = traceCost{instr: 1, cycles: 1, pieces: 2, free: 1}
	wcPackedLoad     = traceCost{instr: 1, cycles: 1, pieces: 2, loads: 1, data: 1}
	wcPackedStore    = traceCost{instr: 1, cycles: 1, pieces: 2, stores: 1, data: 1}
	wcPackedBranch   = traceCost{instr: 1, cycles: 1, pieces: 2, branches: 1, free: 1}
	wcPackedTaken    = traceCost{instr: 1, cycles: 1, pieces: 2, branches: 1, taken: 1, free: 1}
	wcPackedMemFault = traceCost{instr: 1, cycles: 1, pieces: 2, data: 1}
)

// rdOp reads a predecoded operand on the unguarded path: no load can be
// pending at this position, so the register file is current.
func rdOp(c *CPU, o fastOp) uint32 {
	if o.imm {
		return o.val
	}
	return c.Regs[o.reg]
}

// rdOpG reads a predecoded operand on the guarded path, through the
// exact hazard-audited read.
func rdOpG(c *CPU, o fastOp, vpc uint32) uint32 {
	if o.imm {
		return o.val
	}
	return c.leanRead(o.reg, vpc)
}

// traceFault abandons the trace at a faulting word: the word restarts
// at the head of the restored fetch queue (return address zero),
// exactly as bailFault leaves it. The caller has already accounted the
// executed prefix.
func (c *CPU) traceFault(q [3]uint32, cause isa.Cause) {
	c.deopt = DeoptFault
	c.pcq[0], c.pcq[1], c.pcq[2] = q[0], q[1], q[2]
	c.pcn = 3
	c.exception(cause, isa.CauseNone, 0)
}

// traceFault2 is traceFault with a secondary cause: a packed word whose
// ALU piece overflowed while its memory piece also faulted, ordered by
// the exception priority rule (overflow primary, mapping secondary).
func (c *CPU) traceFault2(q [3]uint32, primary, secondary isa.Cause) {
	c.deopt = DeoptFault
	c.pcq[0], c.pcq[1], c.pcq[2] = q[0], q[1], q[2]
	c.pcn = 3
	c.exception(primary, secondary, 0)
}

// runTrace executes a compiled trace from its entry, then chains
// trace-to-trace through the cache (a loop trace chains to itself)
// bounded by the same follow budget as block chaining. A guard exit
// chains too when it left a single-entry (hence sequential) queue and
// raised no exception: a mispredicted direction frequently lands at the
// entry of the trace covering the other path, and bouncing through the
// lower tiers for one Step would forfeit the dispatch. The environment
// guards hold for the whole chain: nothing inside a trace can change
// what stepTraces checked (the quiet configuration has no source of
// interrupts, and privilege or overflow enable only change through
// words a trace refuses to contain).
func (c *CPU) runTrace(tr *trace) {
	c.trOvfOn = c.Sur.OverflowEnabled()
	exc0 := c.excSeq
	for follow := 0; ; follow++ {
		c.Trans.TraceDispatchHits++
		tr.hits++
		if !tr.warm {
			tr.warm = true
			if c.onJIT != nil {
				c.emitJIT(JITEvent{Kind: JITDispatchCold, PC: tr.pa, Len: uint32(len(tr.ops))})
			}
		}
		ops := tr.ops
		clean := true
		xi := 0
		i0 := c.Stats.Instructions
		for i := 0; i < len(ops); i++ {
			if !ops[i](c) {
				clean, xi = false, i
				break
			}
		}
		if clean {
			tr.cost.add(&c.Stats)
			c.pcq[0], c.pcn = tr.endPC, 1
			tr.instrs += c.Stats.Instructions - i0
		} else {
			tr.instrs += c.Stats.Instructions - i0
			// The closure set c.deopt immediately before returning
			// false. Mispredicted directions and indirect targets first
			// try to resolve inside the tier — chain straight into the
			// trace or side stub covering where execution actually went
			// — and only an unresolved exit counts as a guard exit, so
			// the per-reason slots stay an exact partition of the total
			// and every op exit counts exactly one of guard-exit,
			// side-hit, or IC-hit.
			r := c.deopt
			if (r == DeoptBranchDirection || r == DeoptIndirectTarget) &&
				c.excSeq == exc0 && follow < c.chainFollow {
				if nt := c.sideResolve(tr, xi, r); nt != nil {
					tr = nt
					continue
				}
			}
			c.Trans.TraceGuardExits++
			c.Trans.TraceDeopts[r]++
			tr.deopts[r]++
			if c.onJIT != nil {
				c.emitJIT(JITEvent{Kind: JITGuardExit, Reason: uint8(r), PC: tr.pa, Len: uint32(xi)})
			}
			if c.Halted || c.excSeq != exc0 || c.pcn != 1 {
				return
			}
		}
		if follow >= c.chainFollow {
			// Standing down with a compiled trace ready at the next PC
			// is lost trace time, not a guard failure: counted as a
			// dispatch-level deopt outside the guard-exit partition.
			if c.traceAt(c.pcq[0]) != nil {
				c.Trans.TraceDeoptChainBudget++
			}
			return
		}
		nt := c.traceAt(c.pcq[0])
		if nt == nil {
			return
		}
		tr = nt
	}
}

// sideResolve tries to keep a mispredicted-direction or wrong-target
// exit inside the trace tier. The exiting closure left the exact
// architectural fetch queue, which is all the classification needs:
//
//   - a sequential queue (the cold arm starts at the next word, no
//     delay slot in flight) chains into a compiled trace there;
//   - a branch redirect queue [ds, target] chains into the op's side
//     stub — the flattened delay slot ending at the target — compiling
//     it once the exit crosses sideThreshold;
//   - an indirect redirect queue [ds0, ds1, target] looks the target up
//     in the op's inline cache (MRU first), installing a new stub on a
//     hot miss.
//
// A successful resolution returns the trace to continue in, having
// counted a side/IC hit; nil falls back to the guard-exit path.
func (c *CPU) sideResolve(tr *trace, xi int, r DeoptReason) *trace {
	if c.pcn == 1 || (c.pcn == 2 && c.pcq[1] == c.pcq[0]+1) {
		if nt := c.traceAt(c.pcq[0]); nt != nil {
			c.Trans.TraceSideHits++
			tr.sideHits++
			return nt
		}
		return nil
	}
	if tr.sides == nil {
		return nil
	}
	s := &tr.sides[xi]
	if r == DeoptBranchDirection {
		if c.pcn != 2 {
			return nil
		}
		if st := s.br; st != nil && st.valid {
			c.Trans.TraceSideHits++
			tr.sideHits++
			return st
		}
		s.br = nil // dropped by the barrier: rebuild from live memory
		if s.hot == sideNever {
			return nil
		}
		s.hot++
		if s.hot < sideThreshold {
			return nil
		}
		st := c.buildSideStub(c.pcq[0], 1, c.pcq[1])
		if st == nil {
			s.hot = sideNever
			return nil
		}
		s.hot = 0
		s.br = st
		c.Trans.TraceSideCompiled++
		if c.onJIT != nil {
			c.emitJIT(JITEvent{Kind: JITSideCompiled, PC: st.pa, Len: uint32(len(st.ops))})
		}
		c.Trans.TraceSideHits++
		tr.sideHits++
		return st
	}
	// DeoptIndirectTarget: queue is [vpc+1, vpc+2, target].
	if c.pcn != 3 {
		return nil
	}
	t := c.pcq[2]
	if st := s.ic[0]; st != nil && st.valid && s.icTgt[0] == t {
		c.Trans.TraceICHits++
		tr.icHits++
		return st
	}
	if st := s.ic[1]; st != nil && st.valid && s.icTgt[1] == t {
		s.ic[0], s.ic[1] = s.ic[1], s.ic[0]
		s.icTgt[0], s.icTgt[1] = s.icTgt[1], s.icTgt[0]
		c.Trans.TraceICHits++
		tr.icHits++
		return st
	}
	if s.hot == sideNever {
		return nil
	}
	s.hot++
	if s.hot < sideThreshold {
		return nil
	}
	st := c.buildSideStub(c.pcq[0], 2, t)
	if st == nil {
		// Compilability depends only on the delay-slot words, which are
		// the same for every target: poison the whole slot.
		s.hot = sideNever
		return nil
	}
	s.hot = 0
	s.ic[1], s.icTgt[1] = s.ic[0], s.icTgt[0]
	s.ic[0], s.icTgt[0] = st, t
	c.Trans.TraceICInstalls++
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITSideCompiled, PC: st.pa, Len: uint32(len(st.ops))})
	}
	c.Trans.TraceICHits++
	tr.icHits++
	return st
}

// buildSideStub compiles the minimal continuation of a guard exit: the
// dsN delay-slot words still in flight (starting at dsPC), flattened
// with the exact fault-restart and completion queues of a drain toward
// control target x, ending at x. After a clean stub pass the queue is
// [x] and the ordinary chain loop picks up the trace there — so the
// stub stitches the parent to the cold path's own trace, forming a
// trace tree, without ever returning to dispatch.
//
// The words come fresh from live instruction memory (pc == pa in the
// quiet configuration), never from the parent's recording: a stub built
// after self-modification must reflect what the lower tiers would
// fetch. Stubs are derived state like every trace — the write barrier
// drops them, validity is checked at every use, and a dropped stub
// re-forms from memory on the next hot exit.
func (c *CPU) buildSideStub(dsPC uint32, dsN int, x uint32) *trace {
	if uint64(dsPC)+uint64(dsN) > uint64(len(c.IMem)) {
		return nil
	}
	var words [2]traceWord
	for k := 0; k < dsN; k++ {
		pa := dsPC + uint32(k)
		in := c.IMem[pa]
		if in.ALU == nil && in.Mem == nil {
			return nil
		}
		w := &words[k]
		decodeWord(&w.d, pa, in)
		classifyLean(&w.d)
		if !dsCompilable(&w.d) {
			return nil
		}
		w.vpc = pa
		// Entry state is unknown (a load may be pending from the
		// parent): every stub word runs the guarded variant.
		w.hazard = true
	}
	if dsN == 1 {
		words[0].fq = [3]uint32{dsPC, x, x + 1}
		words[0].cq = [2]uint32{x}
		words[0].cqn = 1
	} else {
		d1 := dsPC + 1
		words[0].fq = [3]uint32{dsPC, d1, x}
		words[0].cq = [2]uint32{d1, x}
		words[0].cqn = 2
		words[1].fq = [3]uint32{d1, x, x + 1}
		words[1].cq = [2]uint32{x}
		words[1].cqn = 1
	}
	tr := c.compileTrace(words[:dsN], dsPC, x, []traceSpan{{pa: dsPC, n: uint32(dsN)}})
	if tr == nil {
		return nil
	}
	tr.side = true
	tr.sides = nil // stub words carry no resolvable guards
	c.installSideTrace(tr)
	return tr
}

// compileTrace builds the closure array for a flattened path. It is
// total over validated words: formation already refused everything the
// emitters cannot specialize, so a nil return means an internal
// inconsistency and the path is simply not installed.
func (c *CPU) compileTrace(words []traceWord, entry, endPC uint32, spans []traceSpan) *trace {
	tr := &trace{pa: entry, endPC: endPC, spans: spans}
	ops := make([]traceOp, 0, len(words))
	var pre traceCost
	for i := 0; i < len(words); {
		w := &words[i]
		if w.d.bclass == bcNop {
			// Collapse the run of consecutive nops (crossing block
			// boundaries in the flattened path) into one closure.
			k := 1
			guarded := w.hazard
			for i+k < len(words) && words[i+k].d.bclass == bcNop {
				guarded = guarded || words[i+k].hazard
				k++
			}
			ops = append(ops, emitNops(k, guarded))
			for j := 0; j < k; j++ {
				pre = pre.plus(wcNop)
			}
			i += k
			continue
		}
		var op traceOp
		var happy traceCost
		switch w.d.bclass {
		case bcGeneral:
			packedALU := w.d.aluKind == isa.PieceALU || w.d.aluKind == isa.PieceSetCond
			switch w.d.memKind {
			case isa.PieceBranch, isa.PieceJump, isa.PieceCall, isa.PieceJumpInd:
				if packedALU {
					op, happy = emitPackedTerm(w, pre)
				} else {
					op, happy = emitGeneralTerm(tr, w, pre)
				}
			case isa.PieceLoad, isa.PieceStore:
				if packedALU {
					op, happy = emitPacked(tr, w, pre)
				} else {
					op, happy = emitGeneral(tr, w, pre)
				}
			default:
				op, happy = emitGeneral(tr, w, pre)
			}
		case bcALU:
			op, happy = emitALU(w, pre)
		case bcLoad:
			op, happy = emitLoad(w, pre)
		case bcStore:
			op, happy = emitStore(tr, w, pre)
		case bcBranch:
			op, happy = emitBranch(w, pre)
		case bcJump:
			op, happy = emitJump(w, pre)
		case bcCall:
			op, happy = emitCall(w, pre)
		case bcJumpInd:
			op, happy = emitJumpInd(w, pre)
		}
		if op == nil {
			return nil
		}
		ops = append(ops, op)
		pre = pre.plus(happy)
		i++
	}
	if len(ops) == 0 {
		return nil
	}
	tr.ops = ops
	tr.cost = pre
	// Side-exit state, one slot per op, allocated here so the dispatch
	// path never does: a resolvable guard exit indexes its own op.
	tr.sides = make([]sideSlot, len(ops))
	return tr
}

// emitNops compiles a run of k consecutive nops. Unguarded, the whole
// run is one sequence-counter bump; guarded, pending-load commits drain
// at each position exactly as per-word stepping would.
func emitNops(k int, guarded bool) traceOp {
	n := uint64(k)
	if !guarded {
		return func(c *CPU) bool {
			c.seq += n
			return true
		}
	}
	return func(c *CPU) bool {
		for j := uint64(0); j < n; j++ {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
		}
		return true
	}
}

// emitGeneral compiles a packed or otherwise unclassified body word
// through the exact executor, exactly as the block engine's quiet loop
// runs one: the word accounts its own statistics live (so it
// contributes nothing to the trace's bulk cost or to later exit
// prefixes), and any redirect, halt, fault, or self-invalidation exits
// the trace at the boundary the executor left.
func emitGeneral(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc := w.vpc
	ec := pre
	return func(c *CPU) bool {
		c.seq++
		if c.pendN != 0 {
			c.commitLoads()
		}
		e0 := c.excSeq
		c.pcq[0], c.pcq[1] = vpc+1, vpc+2
		c.pcn = 2
		c.execFast(&d, vpc)
		if c.Halted || c.pcn != 2 || c.pcq[0] != vpc+1 {
			switch {
			case c.Halted:
				c.deopt = DeoptHalt
			case c.excSeq != e0:
				c.deopt = DeoptFault
			default:
				c.deopt = DeoptQueueShape
			}
			ec.add(&c.Stats)
			return false
		}
		if !tr.valid {
			c.deopt = DeoptInvalidation
			ec.add(&c.Stats)
			c.pcq[0], c.pcn = vpc+1, 1
			return false
		}
		return true
	}, traceCost{}
}

// emitGeneralTerm compiles a packed terminator — a control piece sharing
// its word with computation — through the exact executor, then guards on
// the fetch-queue shape the recorded direction leaves behind. A redirect
// the other way (or a halt or fault) exits the trace with the machine
// exactly where the executor left it: no queue restore is needed because
// the executor maintains the queue itself. Like emitGeneral the word
// accounts its own statistics live, so exits charge only the prefix.
func emitGeneralTerm(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc := w.vpc
	ec := pre
	if d.memKind == isa.PieceJumpInd {
		exp := w.expTarget
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			e0 := c.excSeq
			c.pcq[0], c.pcq[1] = vpc+1, vpc+2
			c.pcn = 2
			c.execFast(&d, vpc)
			if c.Halted || c.pcn != 3 || c.pcq[0] != vpc+1 ||
				c.pcq[1] != vpc+2 || c.pcq[2] != exp || !tr.valid {
				switch {
				case c.Halted:
					c.deopt = DeoptHalt
				case c.excSeq != e0:
					c.deopt = DeoptFault
				case !tr.valid:
					c.deopt = DeoptInvalidation
				case c.pcn == 3 && c.pcq[0] == vpc+1 && c.pcq[1] == vpc+2:
					// The executor produced the indirect redirect shape
					// with a target other than the recorded one.
					c.deopt = DeoptIndirectTarget
				default:
					c.deopt = DeoptQueueShape
				}
				ec.add(&c.Stats)
				return false
			}
			return true
		}, traceCost{}
	}
	// Direct control: a taken branch, jump, or call schedules the target
	// one slot out; a not-taken branch leaves the queue sequential.
	// Formation refused shadow targets, so the two shapes are disjoint.
	q1 := vpc + 2
	qAlt := d.target
	if w.taken {
		q1 = d.target
		qAlt = vpc + 2
	}
	isBranch := d.memKind == isa.PieceBranch
	return func(c *CPU) bool {
		c.seq++
		if c.pendN != 0 {
			c.commitLoads()
		}
		e0 := c.excSeq
		c.pcq[0], c.pcq[1] = vpc+1, vpc+2
		c.pcn = 2
		c.execFast(&d, vpc)
		if c.Halted || c.pcn != 2 || c.pcq[0] != vpc+1 ||
			c.pcq[1] != q1 || !tr.valid {
			switch {
			case c.Halted:
				c.deopt = DeoptHalt
			case c.excSeq != e0:
				c.deopt = DeoptFault
			case !tr.valid:
				c.deopt = DeoptInvalidation
			case isBranch && c.pcn == 2 && c.pcq[0] == vpc+1 && c.pcq[1] == qAlt:
				// The packed branch resolved the other way: the queue is
				// exactly the opposite direction's shape.
				c.deopt = DeoptBranchDirection
			default:
				c.deopt = DeoptQueueShape
			}
			ec.add(&c.Stats)
			return false
		}
		return true
	}, traceCost{}
}

// packedALU evaluates the computation piece of a packed word: operand
// reads in the exact executor's order, overflow latched against the
// dispatch-latched trap enable. It returns the value to commit to the
// ALU destination (or the byte-selector value for movlo) and whether an
// enabled overflow occurred; the caller owns commit order and the
// overflow exit.
func (c *CPU) packedALU(d *decoded, vpc uint32, guarded bool) (v, lo uint32, ovf bool) {
	var a, b uint32
	if guarded {
		a = rdOpG(c, d.a1, vpc)
	} else {
		a = rdOp(c, d.a1)
	}
	if d.aluKind == isa.PieceSetCond {
		if guarded {
			b = rdOpG(c, d.a2, vpc)
		} else {
			b = rdOp(c, d.a2)
		}
		if d.aluCmp.Eval(a, b) {
			v = 1
		}
		return v, 0, false
	}
	if !d.aluUnary {
		if guarded {
			b = rdOpG(c, d.a2, vpc)
		} else {
			b = rdOp(c, d.a2)
		}
	}
	var dstVal uint32
	if d.aluDstRead {
		if guarded {
			dstVal = c.leanRead(d.aluDst, vpc)
		} else {
			dstVal = c.Regs[d.aluDst]
		}
	}
	v, lo, o := aluEval(d.aluOp, a, b, dstVal, c.Lo)
	return v, lo, o && c.trOvfOn
}

// emitPacked compiles a packed body word — an ALU-class piece sharing
// its word with a load or store — as one specialized closure instead of
// routing through the exact executor. Semantics mirror execFast +
// finishWord exactly: operand reads before address reads, the memory
// piece executing even when the ALU piece overflowed (a store commits
// to memory, a load counts, and only the register writes are
// suppressed), overflow primary over a memory fault, and the staged
// commit order (ALU write, then the load's delayed write). Position
// exactness comes from the flattened queues, so packed words compile
// anywhere in a trace — body, delay slot — unlike emitGeneral's fixed
// sequential shape.
func emitPacked(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	cq, cqn := w.cq, int(w.cqn)
	guarded := w.hazard
	movLo := d.aluKind == isa.PieceALU && d.aluOp == isa.OpMovLo
	dst := d.aluDst
	data := d.data

	if d.memKind == isa.PieceLoad && d.mode == isa.AModeLongImm {
		imm := uint32(d.disp)
		ecOvf := pre.plus(wcPackedLoadImm)
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			aluV, loV, ovf := c.packedALU(&d, vpc, guarded)
			if ovf {
				ecOvf.add(&c.Stats)
				c.traceFault(fq, isa.CauseOverflow)
				return false
			}
			if movLo {
				c.Regs[data] = imm
				c.lastWrite[data] = c.seq
				c.Lo = loV
				return true
			}
			// Stage order: ALU write first, the immediate second (a
			// shared destination takes the immediate).
			c.Regs[dst] = aluV
			c.lastWrite[dst] = c.seq
			c.Regs[data] = imm
			c.lastWrite[data] = c.seq
			return true
		}, wcPackedLoadImm
	}

	ecFault := pre.plus(wcPackedMemFault)
	if d.memKind == isa.PieceLoad {
		ecOvf := pre.plus(wcPackedLoad)
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			aluV, loV, ovf := c.packedALU(&d, vpc, guarded)
			var addr uint32
			if guarded {
				addr = c.leanAddr(&d, vpc)
			} else {
				switch d.mode {
				case isa.AModeAbs:
					addr = uint32(d.disp)
				case isa.AModeDisp:
					addr = c.Regs[d.base] + uint32(d.disp)
				case isa.AModeIndex:
					addr = c.Regs[d.base] + c.Regs[d.index]
				default:
					addr = c.Regs[d.base] + c.Regs[d.index]>>d.shift
				}
			}
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ecFault.add(&c.Stats)
				if ovf {
					c.traceFault2(fq, isa.CauseOverflow, f.Cause)
				} else {
					c.traceFault(fq, f.Cause)
				}
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if ovf {
				// The load completed and counts; only the writes are
				// suppressed.
				ecOvf.add(&c.Stats)
				c.traceFault(fq, isa.CauseOverflow)
				return false
			}
			if !movLo {
				c.Regs[dst] = aluV
				c.lastWrite[dst] = c.seq
			}
			c.writeLoad(data, v)
			if movLo {
				c.Lo = loV
			}
			return true
		}, wcPackedLoad
	}

	// Packed store.
	ecDone := pre.plus(wcPackedStore)
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		aluV, loV, ovf := c.packedALU(&d, vpc, guarded)
		var addr, val uint32
		if guarded {
			addr = c.leanAddr(&d, vpc)
			val = c.leanRead(data, vpc)
		} else {
			switch d.mode {
			case isa.AModeAbs:
				addr = uint32(d.disp)
			case isa.AModeDisp:
				addr = c.Regs[d.base] + uint32(d.disp)
			case isa.AModeIndex:
				addr = c.Regs[d.base] + c.Regs[d.index]
			default:
				addr = c.Regs[d.base] + c.Regs[d.index]>>d.shift
			}
			val = c.Regs[data]
		}
		if f := c.Bus.Write(addr, val, false); f != nil {
			ecFault.add(&c.Stats)
			if ovf {
				c.traceFault2(fq, isa.CauseOverflow, f.Cause)
			} else {
				c.traceFault(fq, f.Cause)
			}
			return false
		}
		if c.onMem != nil {
			c.onMem(vpc, addr, true)
		}
		if ovf {
			// The store hit memory (and may have invalidated this very
			// trace); the register write is suppressed and the word
			// restarts through the exception.
			ecDone.add(&c.Stats)
			c.traceFault(fq, isa.CauseOverflow)
			return false
		}
		if movLo {
			c.Lo = loV
		} else {
			c.Regs[dst] = aluV
			c.lastWrite[dst] = c.seq
		}
		if !tr.valid {
			c.deopt = DeoptInvalidation
			ecDone.add(&c.Stats)
			c.pcq[0], c.pcq[1] = cq[0], cq[1]
			c.pcn = cqn
			return false
		}
		return true
	}, wcPackedStore
}

// emitPackedTerm compiles a packed terminator — an ALU-class piece
// sharing its word with a branch, jump, call, or indirect jump — as one
// specialized closure. The control piece evaluates exactly (hook fired
// with the real outcome before any exit), the recorded direction or
// target is the guard, and a disagreeing resolution restores the exact
// redirect queue the executor would have produced. An enabled overflow
// accounts the word with its real control outcome, then restarts it
// through the fault queue the real direction leaves behind — the queue
// entries past the architectural return window are discarded by the
// exception sequence, so three entries always suffice.
func emitPackedTerm(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	guarded := w.hazard
	movLo := d.aluKind == isa.PieceALU && d.aluOp == isa.OpMovLo
	dst := d.aluDst

	if d.memKind == isa.PieceJumpInd {
		exp := w.expTarget
		ec := pre.plus(wcPackedTaken)
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			aluV, loV, ovf := c.packedALU(&d, vpc, guarded)
			var t uint32
			if guarded {
				t = rdOpG(c, d.m1, vpc)
			} else {
				t = rdOp(c, d.m1)
			}
			if c.onBranch != nil {
				c.onBranch(vpc, t, true)
			}
			if ovf {
				// The jump executed, then the word restarted: the
				// fourth queue entry (the target, two delays out) falls
				// past the saved return window, so the restart queue is
				// the sequential image.
				ec.add(&c.Stats)
				c.traceFault(fq, isa.CauseOverflow)
				return false
			}
			if movLo {
				c.Lo = loV
			} else {
				c.Regs[dst] = aluV
				c.lastWrite[dst] = c.seq
			}
			if t != exp {
				c.deopt = DeoptIndirectTarget
				ec.add(&c.Stats)
				c.pcq[0], c.pcq[1], c.pcq[2] = vpc+1, vpc+2, t
				c.pcn = 3
				return false
			}
			return true
		}, wcPackedTaken
	}

	if d.memKind == isa.PieceBranch {
		target := d.target
		recTaken := w.taken
		ecTaken := pre.plus(wcPackedTaken)
		ecNot := pre.plus(wcPackedBranch)
		happy := wcPackedBranch
		if recTaken {
			happy = wcPackedTaken
		}
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			aluV, loV, ovf := c.packedALU(&d, vpc, guarded)
			var a, b uint32
			if guarded {
				a, b = rdOpG(c, d.m1, vpc), rdOpG(c, d.m2, vpc)
			} else {
				a, b = rdOp(c, d.m1), rdOp(c, d.m2)
			}
			t := d.memCmp.Eval(a, b)
			if c.onBranch != nil {
				c.onBranch(vpc, target, t)
			}
			if ovf {
				// Word accounted with its real outcome, then restarted:
				// the fault queue carries the real direction's redirect.
				q1 := vpc + 2
				if t {
					ecTaken.add(&c.Stats)
					q1 = target
				} else {
					ecNot.add(&c.Stats)
				}
				c.traceFault([3]uint32{vpc, vpc + 1, q1}, isa.CauseOverflow)
				return false
			}
			if movLo {
				c.Lo = loV
			} else {
				c.Regs[dst] = aluV
				c.lastWrite[dst] = c.seq
			}
			if t != recTaken {
				c.deopt = DeoptBranchDirection
				if t {
					ecTaken.add(&c.Stats)
					c.pcq[0], c.pcq[1] = vpc+1, target
					c.pcn = 2
				} else {
					ecNot.add(&c.Stats)
					c.pcq[0], c.pcn = vpc+1, 1
				}
				return false
			}
			return true
		}, happy
	}

	// Direct jump or call: always taken, the only exit is overflow.
	target := d.target
	isCall := d.memKind == isa.PieceCall
	linkDst := d.linkDst
	link := vpc + 1 + isa.BranchDelay
	ec := pre.plus(wcPackedTaken)
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		aluV, loV, ovf := c.packedALU(&d, vpc, guarded)
		if c.onBranch != nil {
			c.onBranch(vpc, target, true)
		}
		if ovf {
			ec.add(&c.Stats)
			c.traceFault([3]uint32{vpc, vpc + 1, target}, isa.CauseOverflow)
			return false
		}
		if movLo {
			c.Lo = loV
		} else {
			c.Regs[dst] = aluV
			c.lastWrite[dst] = c.seq
		}
		if isCall {
			// Link commits after the ALU write, exactly as staged.
			c.Regs[linkDst] = link
			c.lastWrite[linkDst] = c.seq
		}
		return true
	}, wcPackedTaken
}

// emitALU compiles a single-ALU-piece word. The overflow-capable ops
// check the dispatch-latched trap enable and exit through the exact
// fault path; everything else is pure compute and writeback.
func emitALU(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	ec := pre.plus(wcALU) // the overflow exit accounts the full word
	dst := d.aluDst
	a1, a2 := d.a1, d.a2

	if w.hazard {
		// Guarded generic: exact reads, per-word commit drain.
		if d.aluKind == isa.PieceSetCond {
			cmp := d.aluCmp
			return func(c *CPU) bool {
				c.seq++
				if c.pendN != 0 {
					c.commitLoads()
				}
				a := rdOpG(c, a1, vpc)
				b := rdOpG(c, a2, vpc)
				var v uint32
				if cmp.Eval(a, b) {
					v = 1
				}
				c.Regs[dst] = v
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			a := rdOpG(c, a1, vpc)
			var b uint32
			if !d.aluUnary {
				b = rdOpG(c, a2, vpc)
			}
			var dstVal uint32
			if d.aluDstRead {
				dstVal = c.leanRead(dst, vpc)
			}
			v, lo, ovf := aluEval(d.aluOp, a, b, dstVal, c.Lo)
			if ovf && c.trOvfOn {
				ec.add(&c.Stats)
				c.traceFault(fq, isa.CauseOverflow)
				return false
			}
			if d.aluOp == isa.OpMovLo {
				c.Lo = lo
				return true
			}
			c.Regs[dst] = v
			c.lastWrite[dst] = c.seq
			return true
		}, wcALU
	}

	if d.aluKind == isa.PieceSetCond {
		cmp := d.aluCmp
		return func(c *CPU) bool {
			c.seq++
			a, b := rdOp(c, a1), rdOp(c, a2)
			var v uint32
			if cmp.Eval(a, b) {
				v = 1
			}
			c.Regs[dst] = v
			c.lastWrite[dst] = c.seq
			return true
		}, wcALU
	}
	// Unguarded specializations for the dominant ops; the rest fall back
	// to the shared evaluator.
	switch d.aluOp {
	case isa.OpAdd:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				a, b := rdOp(c, a1), rdOp(c, a2)
				v := a + b
				if c.trOvfOn && addOverflows(a, b, v) {
					ec.add(&c.Stats)
					c.traceFault(fq, isa.CauseOverflow)
					return false
				}
				c.Regs[dst] = v
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpSub:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				a, b := rdOp(c, a1), rdOp(c, a2)
				v := a - b
				if c.trOvfOn && subOverflows(a, b, v) {
					ec.add(&c.Stats)
					c.traceFault(fq, isa.CauseOverflow)
					return false
				}
				c.Regs[dst] = v
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpAnd:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				c.Regs[dst] = rdOp(c, a1) & rdOp(c, a2)
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpOr:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				c.Regs[dst] = rdOp(c, a1) | rdOp(c, a2)
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpXor:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				c.Regs[dst] = rdOp(c, a1) ^ rdOp(c, a2)
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpMov:
		return func(c *CPU) bool {
			c.seq++
			c.Regs[dst] = rdOp(c, a1)
			c.lastWrite[dst] = c.seq
			return true
		}, wcALU
	}
	return func(c *CPU) bool {
		c.seq++
		a := rdOp(c, a1)
		var b uint32
		if !d.aluUnary {
			b = rdOp(c, a2)
		}
		var dstVal uint32
		if d.aluDstRead {
			dstVal = c.Regs[dst]
		}
		v, lo, ovf := aluEval(d.aluOp, a, b, dstVal, c.Lo)
		if ovf && c.trOvfOn {
			ec.add(&c.Stats)
			c.traceFault(fq, isa.CauseOverflow)
			return false
		}
		if d.aluOp == isa.OpMovLo {
			c.Lo = lo
			return true
		}
		c.Regs[dst] = v
		c.lastWrite[dst] = c.seq
		return true
	}, wcALU
}

// emitLoad compiles a load word. Long immediates never touch the data
// port; real loads read through the deviceless unmapped bus fast path,
// fire the memory hook, and commit eagerly when the flattened successor
// proves the delay window unobservable, else through the exact
// delayed-commit machinery.
func emitLoad(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	data := d.data
	if d.mode == isa.AModeLongImm {
		imm := uint32(d.disp)
		guarded := w.hazard
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			c.Regs[data] = imm
			c.lastWrite[data] = c.seq
			return true
		}, wcLoadImm
	}
	ec := pre.plus(wcMemFault)
	eager := w.eager
	if w.hazard {
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			addr := c.leanAddr(&d, vpc)
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ec.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if eager {
				c.Regs[data] = v
				c.lastWrite[data] = c.seq
			} else {
				c.writeLoad(data, v)
			}
			return true
		}, wcLoad
	}
	switch d.mode {
	case isa.AModeDisp:
		base, disp := d.base, uint32(d.disp)
		return func(c *CPU) bool {
			c.seq++
			addr := c.Regs[base] + disp
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ec.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if eager {
				c.Regs[data] = v
				c.lastWrite[data] = c.seq
			} else {
				c.writeLoad(data, v)
			}
			return true
		}, wcLoad
	case isa.AModeAbs:
		addr := uint32(d.disp)
		return func(c *CPU) bool {
			c.seq++
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ec.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if eager {
				c.Regs[data] = v
				c.lastWrite[data] = c.seq
			} else {
				c.writeLoad(data, v)
			}
			return true
		}, wcLoad
	}
	return func(c *CPU) bool {
		c.seq++
		var addr uint32
		if d.mode == isa.AModeIndex {
			addr = c.Regs[d.base] + c.Regs[d.index]
		} else {
			addr = c.Regs[d.base] + c.Regs[d.index]>>d.shift
		}
		v, f := c.Bus.Read(addr, false)
		if f != nil {
			ec.add(&c.Stats)
			c.traceFault(fq, f.Cause)
			return false
		}
		if c.onMem != nil {
			c.onMem(vpc, addr, false)
		}
		if eager {
			c.Regs[data] = v
			c.lastWrite[data] = c.seq
		} else {
			c.writeLoad(data, v)
		}
		return true
	}, wcLoad
}

// emitStore compiles a store word. The write goes through the
// deviceless unmapped bus fast path, whose physical write barrier is
// the one mechanism that can invalidate this very trace mid-run: the
// closure checks tr.valid after the write and exits at the completed
// word's boundary with the exact remaining queue.
func emitStore(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	cq, cqn := w.cq, int(w.cqn)
	data := d.data
	ecFault := pre.plus(wcMemFault)
	ecDone := pre.plus(wcStore)
	if w.hazard {
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			addr := c.leanAddr(&d, vpc)
			val := c.leanRead(data, vpc)
			if f := c.Bus.Write(addr, val, false); f != nil {
				ecFault.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, true)
			}
			if !tr.valid {
				c.deopt = DeoptInvalidation
				ecDone.add(&c.Stats)
				c.pcq[0], c.pcq[1] = cq[0], cq[1]
				c.pcn = cqn
				return false
			}
			return true
		}, wcStore
	}
	if d.mode == isa.AModeDisp {
		base, disp := d.base, uint32(d.disp)
		return func(c *CPU) bool {
			c.seq++
			addr := c.Regs[base] + disp
			if f := c.Bus.Write(addr, c.Regs[data], false); f != nil {
				ecFault.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, true)
			}
			if !tr.valid {
				c.deopt = DeoptInvalidation
				ecDone.add(&c.Stats)
				c.pcq[0], c.pcq[1] = cq[0], cq[1]
				c.pcn = cqn
				return false
			}
			return true
		}, wcStore
	}
	return func(c *CPU) bool {
		c.seq++
		var addr uint32
		switch d.mode {
		case isa.AModeAbs:
			addr = uint32(d.disp)
		case isa.AModeIndex:
			addr = c.Regs[d.base] + c.Regs[d.index]
		default:
			addr = c.Regs[d.base] + c.Regs[d.index]>>d.shift
		}
		if f := c.Bus.Write(addr, c.Regs[data], false); f != nil {
			ecFault.add(&c.Stats)
			c.traceFault(fq, f.Cause)
			return false
		}
		if c.onMem != nil {
			c.onMem(vpc, addr, true)
		}
		if !tr.valid {
			c.deopt = DeoptInvalidation
			ecDone.add(&c.Stats)
			c.pcq[0], c.pcq[1] = cq[0], cq[1]
			c.pcn = cqn
			return false
		}
		return true
	}, wcStore
}

// emitBranch compiles a conditional-branch terminator with its recorded
// direction as the guard. The actual condition is evaluated exactly;
// when it disagrees with the recording, the closure fires the branch
// hook for the real outcome, accounts the word, restores the queue the
// real direction produces, and exits.
func emitBranch(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc := w.vpc
	m1, m2 := d.m1, d.m2
	cmp, target := d.memCmp, d.target
	guarded := w.hazard
	if w.taken {
		ec := pre.plus(wcBranch) // the not-taken exit never counts a taken branch
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			var a, b uint32
			if guarded {
				a, b = rdOpG(c, m1, vpc), rdOpG(c, m2, vpc)
			} else {
				a, b = rdOp(c, m1), rdOp(c, m2)
			}
			t := cmp.Eval(a, b)
			if c.onBranch != nil {
				c.onBranch(vpc, target, t)
			}
			if !t {
				c.deopt = DeoptBranchDirection
				ec.add(&c.Stats)
				c.pcq[0], c.pcn = vpc+1, 1
				return false
			}
			return true
		}, wcTaken
	}
	ec := pre.plus(wcTaken)
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		var a, b uint32
		if guarded {
			a, b = rdOpG(c, m1, vpc), rdOpG(c, m2, vpc)
		} else {
			a, b = rdOp(c, m1), rdOp(c, m2)
		}
		t := cmp.Eval(a, b)
		if c.onBranch != nil {
			c.onBranch(vpc, target, t)
		}
		if t {
			c.deopt = DeoptBranchDirection
			ec.add(&c.Stats)
			c.pcq[0], c.pcq[1] = vpc+1, target
			c.pcn = 2
			return false
		}
		return true
	}, wcBranch
}

// emitJump compiles an unconditional direct jump: always taken, no
// guard, no exit — the flattening already placed the target's words
// next.
func emitJump(w *traceWord, _ traceCost) (traceOp, traceCost) {
	vpc, target := w.vpc, w.d.target
	guarded := w.hazard
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		if c.onBranch != nil {
			c.onBranch(vpc, target, true)
		}
		return true
	}, wcTaken
}

// emitCall compiles a call: an unconditional jump plus the link-register
// commit, which lands after the branch hook exactly as on the staged
// path.
func emitCall(w *traceWord, _ traceCost) (traceOp, traceCost) {
	vpc, target := w.vpc, w.d.target
	linkDst := w.d.linkDst
	link := vpc + 1 + isa.BranchDelay
	guarded := w.hazard
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		if c.onBranch != nil {
			c.onBranch(vpc, target, true)
		}
		c.Regs[linkDst] = link
		c.lastWrite[linkDst] = c.seq
		return true
	}, wcTaken
}

// emitJumpInd compiles an indirect jump with the recorded target as the
// guard. A different runtime target fires the hook for the real target,
// accounts the word, restores the exact two-delay redirect queue, and
// exits.
func emitJumpInd(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, exp := w.vpc, w.expTarget
	m1 := d.m1
	guarded := w.hazard
	ec := pre.plus(wcTaken)
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		var t uint32
		if guarded {
			t = rdOpG(c, m1, vpc)
		} else {
			t = rdOp(c, m1)
		}
		if c.onBranch != nil {
			c.onBranch(vpc, t, true)
		}
		if t != exp {
			c.deopt = DeoptIndirectTarget
			ec.add(&c.Stats)
			c.pcq[0], c.pcq[1], c.pcq[2] = vpc+1, vpc+2, t
			c.pcn = 3
			return false
		}
		return true
	}, wcTaken
}
