package cpu

// Trace compilation and dispatch: the execution half of the trace JIT
// tier. A validated flat path (trace_form.go) compiles to an array of
// specialized Go closures — threaded code, one closure per instruction
// word (consecutive nops collapse into one) — and dispatch runs the
// array with no per-word fetch, no queue maintenance, no environmental
// checks, and no statistics updates: a clean pass bulk-adds the
// precomputed cost of the whole trace.
//
// Every check a closure would repeat per word is hoisted to dispatch
// entry, where the quiet-configuration guard (stepTraces) has already
// discharged it: no device, ticker, or DMA engine exists to raise the
// interrupt line or remap memory mid-trace, privilege and overflow
// enable can only change through words a trace refuses to contain, and
// the write barrier reports the one store hazard that remains (a store
// into the trace's own code) through tr.valid.
//
// Exits are exact. Each closure captures the statistics prefix of the
// words before it plus its own partial contribution, and the precise
// fetch-queue image for each way it can leave: the fault-restart queue
// an exception saves as return addresses, the completion queue after a
// finished word, and the redirect queues of a mispredicted branch
// direction or indirect-jump target. A trace therefore abandons
// execution at an exact instruction boundary with the machine
// indistinguishable from the block engine having run the same prefix —
// the tier-bail ladder (trace -> superblock -> fast path -> reference)
// never shows through architecturally.

import "mips/internal/isa"

// plus returns the sum of two cost vectors.
func (tc traceCost) plus(o traceCost) traceCost {
	tc.instr += o.instr
	tc.cycles += o.cycles
	tc.pieces += o.pieces
	tc.nops += o.nops
	tc.loads += o.loads
	tc.stores += o.stores
	tc.branches += o.branches
	tc.taken += o.taken
	tc.data += o.data
	tc.free += o.free
	return tc
}

// Per-class happy-path cost of one word, identical to what the block
// engine's quiet loop accounts for the same word.
var (
	wcNop     = traceCost{instr: 1, cycles: 1, nops: 1, free: 1}
	wcALU     = traceCost{instr: 1, cycles: 1, pieces: 1, free: 1}
	wcLoadImm = traceCost{instr: 1, cycles: 1, pieces: 1, free: 1}
	wcLoad    = traceCost{instr: 1, cycles: 1, pieces: 1, loads: 1, data: 1}
	wcStore   = traceCost{instr: 1, cycles: 1, pieces: 1, stores: 1, data: 1}
	wcBranch  = traceCost{instr: 1, cycles: 1, pieces: 1, branches: 1, free: 1}
	wcTaken   = traceCost{instr: 1, cycles: 1, pieces: 1, branches: 1, taken: 1, free: 1}
	// A faulting memory word accounts its data cycle but not the
	// load/store completion count, exactly like finishWord's fault path.
	wcMemFault = traceCost{instr: 1, cycles: 1, pieces: 1, data: 1}
)

// rdOp reads a predecoded operand on the unguarded path: no load can be
// pending at this position, so the register file is current.
func rdOp(c *CPU, o fastOp) uint32 {
	if o.imm {
		return o.val
	}
	return c.Regs[o.reg]
}

// rdOpG reads a predecoded operand on the guarded path, through the
// exact hazard-audited read.
func rdOpG(c *CPU, o fastOp, vpc uint32) uint32 {
	if o.imm {
		return o.val
	}
	return c.leanRead(o.reg, vpc)
}

// traceFault abandons the trace at a faulting word: the word restarts
// at the head of the restored fetch queue (return address zero),
// exactly as bailFault leaves it. The caller has already accounted the
// executed prefix.
func (c *CPU) traceFault(q [3]uint32, cause isa.Cause) {
	c.deopt = DeoptFault
	c.pcq[0], c.pcq[1], c.pcq[2] = q[0], q[1], q[2]
	c.pcn = 3
	c.exception(cause, isa.CauseNone, 0)
}

// runTrace executes a compiled trace from its entry, then chains
// trace-to-trace through the cache (a loop trace chains to itself)
// bounded by the same follow budget as block chaining. A guard exit
// chains too when it left a single-entry (hence sequential) queue and
// raised no exception: a mispredicted direction frequently lands at the
// entry of the trace covering the other path, and bouncing through the
// lower tiers for one Step would forfeit the dispatch. The environment
// guards hold for the whole chain: nothing inside a trace can change
// what stepTraces checked (the quiet configuration has no source of
// interrupts, and privilege or overflow enable only change through
// words a trace refuses to contain).
func (c *CPU) runTrace(tr *trace) {
	c.trOvfOn = c.Sur.OverflowEnabled()
	exc0 := c.excSeq
	for follow := 0; ; follow++ {
		c.Trans.TraceDispatchHits++
		tr.hits++
		if !tr.warm {
			tr.warm = true
			if c.onJIT != nil {
				c.emitJIT(JITEvent{Kind: JITDispatchCold, PC: tr.pa, Len: uint32(len(tr.ops))})
			}
		}
		ops := tr.ops
		clean := true
		i0 := c.Stats.Instructions
		for i := 0; i < len(ops); i++ {
			if !ops[i](c) {
				// The closure set c.deopt immediately before returning
				// false, so this single accounting site keeps the
				// per-reason slots an exact partition of the legacy
				// total — and attributes the exit to this trace's site.
				r := c.deopt
				c.Trans.TraceGuardExits++
				c.Trans.TraceDeopts[r]++
				tr.deopts[r]++
				clean = false
				if c.onJIT != nil {
					c.emitJIT(JITEvent{Kind: JITGuardExit, Reason: uint8(r), PC: tr.pa, Len: uint32(i)})
				}
				break
			}
		}
		if clean {
			tr.cost.add(&c.Stats)
			c.pcq[0], c.pcn = tr.endPC, 1
		}
		tr.instrs += c.Stats.Instructions - i0
		if !clean && (c.Halted || c.excSeq != exc0 || c.pcn != 1) {
			return
		}
		if follow >= c.chainFollow {
			// Standing down with a compiled trace ready at the next PC
			// is lost trace time, not a guard failure: counted as a
			// dispatch-level deopt outside the guard-exit partition.
			if c.traceAt(c.pcq[0]) != nil {
				c.Trans.TraceDeoptChainBudget++
			}
			return
		}
		nt := c.traceAt(c.pcq[0])
		if nt == nil {
			return
		}
		tr = nt
	}
}

// compileTrace builds the closure array for a flattened path. It is
// total over validated words: formation already refused everything the
// emitters cannot specialize, so a nil return means an internal
// inconsistency and the path is simply not installed.
func (c *CPU) compileTrace(words []traceWord, entry, endPC uint32, spans []traceSpan) *trace {
	tr := &trace{pa: entry, endPC: endPC, spans: spans}
	ops := make([]traceOp, 0, len(words))
	var pre traceCost
	for i := 0; i < len(words); {
		w := &words[i]
		if w.d.bclass == bcNop {
			// Collapse the run of consecutive nops (crossing block
			// boundaries in the flattened path) into one closure.
			k := 1
			guarded := w.hazard
			for i+k < len(words) && words[i+k].d.bclass == bcNop {
				guarded = guarded || words[i+k].hazard
				k++
			}
			ops = append(ops, emitNops(k, guarded))
			for j := 0; j < k; j++ {
				pre = pre.plus(wcNop)
			}
			i += k
			continue
		}
		var op traceOp
		var happy traceCost
		switch w.d.bclass {
		case bcGeneral:
			switch w.d.memKind {
			case isa.PieceBranch, isa.PieceJump, isa.PieceCall, isa.PieceJumpInd:
				op, happy = emitGeneralTerm(tr, w, pre)
			default:
				op, happy = emitGeneral(tr, w, pre)
			}
		case bcALU:
			op, happy = emitALU(w, pre)
		case bcLoad:
			op, happy = emitLoad(w, pre)
		case bcStore:
			op, happy = emitStore(tr, w, pre)
		case bcBranch:
			op, happy = emitBranch(w, pre)
		case bcJump:
			op, happy = emitJump(w, pre)
		case bcCall:
			op, happy = emitCall(w, pre)
		case bcJumpInd:
			op, happy = emitJumpInd(w, pre)
		}
		if op == nil {
			return nil
		}
		ops = append(ops, op)
		pre = pre.plus(happy)
		i++
	}
	if len(ops) == 0 {
		return nil
	}
	tr.ops = ops
	tr.cost = pre
	return tr
}

// emitNops compiles a run of k consecutive nops. Unguarded, the whole
// run is one sequence-counter bump; guarded, pending-load commits drain
// at each position exactly as per-word stepping would.
func emitNops(k int, guarded bool) traceOp {
	n := uint64(k)
	if !guarded {
		return func(c *CPU) bool {
			c.seq += n
			return true
		}
	}
	return func(c *CPU) bool {
		for j := uint64(0); j < n; j++ {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
		}
		return true
	}
}

// emitGeneral compiles a packed or otherwise unclassified body word
// through the exact executor, exactly as the block engine's quiet loop
// runs one: the word accounts its own statistics live (so it
// contributes nothing to the trace's bulk cost or to later exit
// prefixes), and any redirect, halt, fault, or self-invalidation exits
// the trace at the boundary the executor left.
func emitGeneral(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc := w.vpc
	ec := pre
	return func(c *CPU) bool {
		c.seq++
		if c.pendN != 0 {
			c.commitLoads()
		}
		e0 := c.excSeq
		c.pcq[0], c.pcq[1] = vpc+1, vpc+2
		c.pcn = 2
		c.execFast(&d, vpc)
		if c.Halted || c.pcn != 2 || c.pcq[0] != vpc+1 {
			switch {
			case c.Halted:
				c.deopt = DeoptHalt
			case c.excSeq != e0:
				c.deopt = DeoptFault
			default:
				c.deopt = DeoptQueueShape
			}
			ec.add(&c.Stats)
			return false
		}
		if !tr.valid {
			c.deopt = DeoptInvalidation
			ec.add(&c.Stats)
			c.pcq[0], c.pcn = vpc+1, 1
			return false
		}
		return true
	}, traceCost{}
}

// emitGeneralTerm compiles a packed terminator — a control piece sharing
// its word with computation — through the exact executor, then guards on
// the fetch-queue shape the recorded direction leaves behind. A redirect
// the other way (or a halt or fault) exits the trace with the machine
// exactly where the executor left it: no queue restore is needed because
// the executor maintains the queue itself. Like emitGeneral the word
// accounts its own statistics live, so exits charge only the prefix.
func emitGeneralTerm(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc := w.vpc
	ec := pre
	if d.memKind == isa.PieceJumpInd {
		exp := w.expTarget
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			e0 := c.excSeq
			c.pcq[0], c.pcq[1] = vpc+1, vpc+2
			c.pcn = 2
			c.execFast(&d, vpc)
			if c.Halted || c.pcn != 3 || c.pcq[0] != vpc+1 ||
				c.pcq[1] != vpc+2 || c.pcq[2] != exp || !tr.valid {
				switch {
				case c.Halted:
					c.deopt = DeoptHalt
				case c.excSeq != e0:
					c.deopt = DeoptFault
				case !tr.valid:
					c.deopt = DeoptInvalidation
				case c.pcn == 3 && c.pcq[0] == vpc+1 && c.pcq[1] == vpc+2:
					// The executor produced the indirect redirect shape
					// with a target other than the recorded one.
					c.deopt = DeoptIndirectTarget
				default:
					c.deopt = DeoptQueueShape
				}
				ec.add(&c.Stats)
				return false
			}
			return true
		}, traceCost{}
	}
	// Direct control: a taken branch, jump, or call schedules the target
	// one slot out; a not-taken branch leaves the queue sequential.
	// Formation refused shadow targets, so the two shapes are disjoint.
	q1 := vpc + 2
	qAlt := d.target
	if w.taken {
		q1 = d.target
		qAlt = vpc + 2
	}
	isBranch := d.memKind == isa.PieceBranch
	return func(c *CPU) bool {
		c.seq++
		if c.pendN != 0 {
			c.commitLoads()
		}
		e0 := c.excSeq
		c.pcq[0], c.pcq[1] = vpc+1, vpc+2
		c.pcn = 2
		c.execFast(&d, vpc)
		if c.Halted || c.pcn != 2 || c.pcq[0] != vpc+1 ||
			c.pcq[1] != q1 || !tr.valid {
			switch {
			case c.Halted:
				c.deopt = DeoptHalt
			case c.excSeq != e0:
				c.deopt = DeoptFault
			case !tr.valid:
				c.deopt = DeoptInvalidation
			case isBranch && c.pcn == 2 && c.pcq[0] == vpc+1 && c.pcq[1] == qAlt:
				// The packed branch resolved the other way: the queue is
				// exactly the opposite direction's shape.
				c.deopt = DeoptBranchDirection
			default:
				c.deopt = DeoptQueueShape
			}
			ec.add(&c.Stats)
			return false
		}
		return true
	}, traceCost{}
}

// emitALU compiles a single-ALU-piece word. The overflow-capable ops
// check the dispatch-latched trap enable and exit through the exact
// fault path; everything else is pure compute and writeback.
func emitALU(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	ec := pre.plus(wcALU) // the overflow exit accounts the full word
	dst := d.aluDst
	a1, a2 := d.a1, d.a2

	if w.hazard {
		// Guarded generic: exact reads, per-word commit drain.
		if d.aluKind == isa.PieceSetCond {
			cmp := d.aluCmp
			return func(c *CPU) bool {
				c.seq++
				if c.pendN != 0 {
					c.commitLoads()
				}
				a := rdOpG(c, a1, vpc)
				b := rdOpG(c, a2, vpc)
				var v uint32
				if cmp.Eval(a, b) {
					v = 1
				}
				c.Regs[dst] = v
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			a := rdOpG(c, a1, vpc)
			var b uint32
			if !d.aluUnary {
				b = rdOpG(c, a2, vpc)
			}
			var dstVal uint32
			if d.aluDstRead {
				dstVal = c.leanRead(dst, vpc)
			}
			v, lo, ovf := aluEval(d.aluOp, a, b, dstVal, c.Lo)
			if ovf && c.trOvfOn {
				ec.add(&c.Stats)
				c.traceFault(fq, isa.CauseOverflow)
				return false
			}
			if d.aluOp == isa.OpMovLo {
				c.Lo = lo
				return true
			}
			c.Regs[dst] = v
			c.lastWrite[dst] = c.seq
			return true
		}, wcALU
	}

	if d.aluKind == isa.PieceSetCond {
		cmp := d.aluCmp
		return func(c *CPU) bool {
			c.seq++
			a, b := rdOp(c, a1), rdOp(c, a2)
			var v uint32
			if cmp.Eval(a, b) {
				v = 1
			}
			c.Regs[dst] = v
			c.lastWrite[dst] = c.seq
			return true
		}, wcALU
	}
	// Unguarded specializations for the dominant ops; the rest fall back
	// to the shared evaluator.
	switch d.aluOp {
	case isa.OpAdd:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				a, b := rdOp(c, a1), rdOp(c, a2)
				v := a + b
				if c.trOvfOn && addOverflows(a, b, v) {
					ec.add(&c.Stats)
					c.traceFault(fq, isa.CauseOverflow)
					return false
				}
				c.Regs[dst] = v
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpSub:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				a, b := rdOp(c, a1), rdOp(c, a2)
				v := a - b
				if c.trOvfOn && subOverflows(a, b, v) {
					ec.add(&c.Stats)
					c.traceFault(fq, isa.CauseOverflow)
					return false
				}
				c.Regs[dst] = v
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpAnd:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				c.Regs[dst] = rdOp(c, a1) & rdOp(c, a2)
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpOr:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				c.Regs[dst] = rdOp(c, a1) | rdOp(c, a2)
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpXor:
		if !d.aluUnary {
			return func(c *CPU) bool {
				c.seq++
				c.Regs[dst] = rdOp(c, a1) ^ rdOp(c, a2)
				c.lastWrite[dst] = c.seq
				return true
			}, wcALU
		}
	case isa.OpMov:
		return func(c *CPU) bool {
			c.seq++
			c.Regs[dst] = rdOp(c, a1)
			c.lastWrite[dst] = c.seq
			return true
		}, wcALU
	}
	return func(c *CPU) bool {
		c.seq++
		a := rdOp(c, a1)
		var b uint32
		if !d.aluUnary {
			b = rdOp(c, a2)
		}
		var dstVal uint32
		if d.aluDstRead {
			dstVal = c.Regs[dst]
		}
		v, lo, ovf := aluEval(d.aluOp, a, b, dstVal, c.Lo)
		if ovf && c.trOvfOn {
			ec.add(&c.Stats)
			c.traceFault(fq, isa.CauseOverflow)
			return false
		}
		if d.aluOp == isa.OpMovLo {
			c.Lo = lo
			return true
		}
		c.Regs[dst] = v
		c.lastWrite[dst] = c.seq
		return true
	}, wcALU
}

// emitLoad compiles a load word. Long immediates never touch the data
// port; real loads read through the deviceless unmapped bus fast path,
// fire the memory hook, and commit eagerly when the flattened successor
// proves the delay window unobservable, else through the exact
// delayed-commit machinery.
func emitLoad(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	data := d.data
	if d.mode == isa.AModeLongImm {
		imm := uint32(d.disp)
		guarded := w.hazard
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			c.Regs[data] = imm
			c.lastWrite[data] = c.seq
			return true
		}, wcLoadImm
	}
	ec := pre.plus(wcMemFault)
	eager := w.eager
	if w.hazard {
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			addr := c.leanAddr(&d, vpc)
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ec.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if eager {
				c.Regs[data] = v
				c.lastWrite[data] = c.seq
			} else {
				c.writeLoad(data, v)
			}
			return true
		}, wcLoad
	}
	switch d.mode {
	case isa.AModeDisp:
		base, disp := d.base, uint32(d.disp)
		return func(c *CPU) bool {
			c.seq++
			addr := c.Regs[base] + disp
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ec.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if eager {
				c.Regs[data] = v
				c.lastWrite[data] = c.seq
			} else {
				c.writeLoad(data, v)
			}
			return true
		}, wcLoad
	case isa.AModeAbs:
		addr := uint32(d.disp)
		return func(c *CPU) bool {
			c.seq++
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				ec.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, false)
			}
			if eager {
				c.Regs[data] = v
				c.lastWrite[data] = c.seq
			} else {
				c.writeLoad(data, v)
			}
			return true
		}, wcLoad
	}
	return func(c *CPU) bool {
		c.seq++
		var addr uint32
		if d.mode == isa.AModeIndex {
			addr = c.Regs[d.base] + c.Regs[d.index]
		} else {
			addr = c.Regs[d.base] + c.Regs[d.index]>>d.shift
		}
		v, f := c.Bus.Read(addr, false)
		if f != nil {
			ec.add(&c.Stats)
			c.traceFault(fq, f.Cause)
			return false
		}
		if c.onMem != nil {
			c.onMem(vpc, addr, false)
		}
		if eager {
			c.Regs[data] = v
			c.lastWrite[data] = c.seq
		} else {
			c.writeLoad(data, v)
		}
		return true
	}, wcLoad
}

// emitStore compiles a store word. The write goes through the
// deviceless unmapped bus fast path, whose physical write barrier is
// the one mechanism that can invalidate this very trace mid-run: the
// closure checks tr.valid after the write and exits at the completed
// word's boundary with the exact remaining queue.
func emitStore(tr *trace, w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, fq := w.vpc, w.fq
	cq, cqn := w.cq, int(w.cqn)
	data := d.data
	ecFault := pre.plus(wcMemFault)
	ecDone := pre.plus(wcStore)
	if w.hazard {
		return func(c *CPU) bool {
			c.seq++
			if c.pendN != 0 {
				c.commitLoads()
			}
			addr := c.leanAddr(&d, vpc)
			val := c.leanRead(data, vpc)
			if f := c.Bus.Write(addr, val, false); f != nil {
				ecFault.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, true)
			}
			if !tr.valid {
				c.deopt = DeoptInvalidation
				ecDone.add(&c.Stats)
				c.pcq[0], c.pcq[1] = cq[0], cq[1]
				c.pcn = cqn
				return false
			}
			return true
		}, wcStore
	}
	if d.mode == isa.AModeDisp {
		base, disp := d.base, uint32(d.disp)
		return func(c *CPU) bool {
			c.seq++
			addr := c.Regs[base] + disp
			if f := c.Bus.Write(addr, c.Regs[data], false); f != nil {
				ecFault.add(&c.Stats)
				c.traceFault(fq, f.Cause)
				return false
			}
			if c.onMem != nil {
				c.onMem(vpc, addr, true)
			}
			if !tr.valid {
				c.deopt = DeoptInvalidation
				ecDone.add(&c.Stats)
				c.pcq[0], c.pcq[1] = cq[0], cq[1]
				c.pcn = cqn
				return false
			}
			return true
		}, wcStore
	}
	return func(c *CPU) bool {
		c.seq++
		var addr uint32
		switch d.mode {
		case isa.AModeAbs:
			addr = uint32(d.disp)
		case isa.AModeIndex:
			addr = c.Regs[d.base] + c.Regs[d.index]
		default:
			addr = c.Regs[d.base] + c.Regs[d.index]>>d.shift
		}
		if f := c.Bus.Write(addr, c.Regs[data], false); f != nil {
			ecFault.add(&c.Stats)
			c.traceFault(fq, f.Cause)
			return false
		}
		if c.onMem != nil {
			c.onMem(vpc, addr, true)
		}
		if !tr.valid {
			c.deopt = DeoptInvalidation
			ecDone.add(&c.Stats)
			c.pcq[0], c.pcq[1] = cq[0], cq[1]
			c.pcn = cqn
			return false
		}
		return true
	}, wcStore
}

// emitBranch compiles a conditional-branch terminator with its recorded
// direction as the guard. The actual condition is evaluated exactly;
// when it disagrees with the recording, the closure fires the branch
// hook for the real outcome, accounts the word, restores the queue the
// real direction produces, and exits.
func emitBranch(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc := w.vpc
	m1, m2 := d.m1, d.m2
	cmp, target := d.memCmp, d.target
	guarded := w.hazard
	if w.taken {
		ec := pre.plus(wcBranch) // the not-taken exit never counts a taken branch
		return func(c *CPU) bool {
			c.seq++
			if guarded && c.pendN != 0 {
				c.commitLoads()
			}
			var a, b uint32
			if guarded {
				a, b = rdOpG(c, m1, vpc), rdOpG(c, m2, vpc)
			} else {
				a, b = rdOp(c, m1), rdOp(c, m2)
			}
			t := cmp.Eval(a, b)
			if c.onBranch != nil {
				c.onBranch(vpc, target, t)
			}
			if !t {
				c.deopt = DeoptBranchDirection
				ec.add(&c.Stats)
				c.pcq[0], c.pcn = vpc+1, 1
				return false
			}
			return true
		}, wcTaken
	}
	ec := pre.plus(wcTaken)
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		var a, b uint32
		if guarded {
			a, b = rdOpG(c, m1, vpc), rdOpG(c, m2, vpc)
		} else {
			a, b = rdOp(c, m1), rdOp(c, m2)
		}
		t := cmp.Eval(a, b)
		if c.onBranch != nil {
			c.onBranch(vpc, target, t)
		}
		if t {
			c.deopt = DeoptBranchDirection
			ec.add(&c.Stats)
			c.pcq[0], c.pcq[1] = vpc+1, target
			c.pcn = 2
			return false
		}
		return true
	}, wcBranch
}

// emitJump compiles an unconditional direct jump: always taken, no
// guard, no exit — the flattening already placed the target's words
// next.
func emitJump(w *traceWord, _ traceCost) (traceOp, traceCost) {
	vpc, target := w.vpc, w.d.target
	guarded := w.hazard
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		if c.onBranch != nil {
			c.onBranch(vpc, target, true)
		}
		return true
	}, wcTaken
}

// emitCall compiles a call: an unconditional jump plus the link-register
// commit, which lands after the branch hook exactly as on the staged
// path.
func emitCall(w *traceWord, _ traceCost) (traceOp, traceCost) {
	vpc, target := w.vpc, w.d.target
	linkDst := w.d.linkDst
	link := vpc + 1 + isa.BranchDelay
	guarded := w.hazard
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		if c.onBranch != nil {
			c.onBranch(vpc, target, true)
		}
		c.Regs[linkDst] = link
		c.lastWrite[linkDst] = c.seq
		return true
	}, wcTaken
}

// emitJumpInd compiles an indirect jump with the recorded target as the
// guard. A different runtime target fires the hook for the real target,
// accounts the word, restores the exact two-delay redirect queue, and
// exits.
func emitJumpInd(w *traceWord, pre traceCost) (traceOp, traceCost) {
	d := w.d
	vpc, exp := w.vpc, w.expTarget
	m1 := d.m1
	guarded := w.hazard
	ec := pre.plus(wcTaken)
	return func(c *CPU) bool {
		c.seq++
		if guarded && c.pendN != 0 {
			c.commitLoads()
		}
		var t uint32
		if guarded {
			t = rdOpG(c, m1, vpc)
		} else {
			t = rdOp(c, m1)
		}
		if c.onBranch != nil {
			c.onBranch(vpc, t, true)
		}
		if t != exp {
			c.deopt = DeoptIndirectTarget
			ec.add(&c.Stats)
			c.pcq[0], c.pcq[1], c.pcq[2] = vpc+1, vpc+2, t
			c.pcn = 3
			return false
		}
		return true
	}, wcTaken
}
