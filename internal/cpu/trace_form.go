package cpu

// Trace formation: the profile-guided half of the trace JIT tier.
//
// The trace dispatcher (stepTraces) sits one tier above the superblock
// engine. When the fetch queue is sequential and the machine is in the
// quiet configuration — unmapped, no DMA, no tickers, no devices — the
// head of the queue is a trace entry candidate. A compiled trace there
// executes directly (trace_compile.go). Otherwise a per-entry-PC heat
// counter accumulates, and on crossing the threshold the next Step runs
// on the block engine with path recording switched on: every chained
// superblock the Step executes is noted. The recorded path — the actual
// hot route through the code, taken branches included — is then
// validated and flattened into one trace: body words, terminators, and
// delay slots of all recorded blocks in execution order, with the
// branch directions the recording observed baked in as guards.
//
// Validation is conservative. A word the compiler cannot specialize
// (packed words, specials, traps, privileged pieces), a terminator
// whose direction cannot be derived from the recorded successor, or a
// degenerate branch whose target falls inside its own shadow truncates
// the path at the last whole block; paths that truncate to nothing mark
// the entry PC never-hot so steady state stops re-recording (and
// re-allocating). A path that closes back on its own entry becomes a
// self-looping trace — the ideal case, re-entered by the dispatch chain
// loop without leaving the frame.

import "mips/internal/isa"

// heatNever marks an entry PC whose path failed to form a trace; the
// heat counter never triggers again for it (InvalidateTraces resets).
const heatNever = ^uint32(0)

// tracePoint is one recorded step of a hot path: a superblock and the
// entry PC it executed at.
type tracePoint struct {
	b  *block
	pc uint32
}

// traceRec is the in-flight path recording, switched on for a single
// Step by stepTraces. Fixed capacity: recording never allocates.
type traceRec struct {
	active bool
	n      int
	pts    [traceMaxBlocks + 1]tracePoint
}

// recTracePoint notes one block execution on the recorded path. Called
// from the block engine's chain loop while recording is active.
func (c *CPU) recTracePoint(b *block, pc uint32) {
	if c.trec.n < len(c.trec.pts) {
		c.trec.pts[c.trec.n] = tracePoint{b: b, pc: pc}
		c.trec.n++
	}
}

// traceWord is one flattened word of a formable path: the copied
// decoded record plus everything the compiler needs to build its
// closure — the exact fault-restart queue (the three return addresses
// an exception at this word saves), the queue remaining after the word
// completes (for exits that finish the word first), and the recorded
// control direction for terminators.
type traceWord struct {
	d   decoded
	vpc uint32
	// fq is the fetch-queue state a fault at this word restarts with:
	// exception() saves it as the three return addresses.
	fq [3]uint32
	// cq/cqn is the queue remaining after this word completes, for
	// exits at the following boundary (a store invalidating its own
	// trace).
	cq  [2]uint32
	cqn uint8
	// taken is the recorded direction of a bcBranch terminator;
	// expTarget the recorded target of a bcJumpInd terminator.
	taken     bool
	expTarget uint32
	// hazard marks words that must run the guarded variant: a pending
	// load may exist at this position, so reads go through the exact
	// audit path and commits drain per word.
	hazard bool
	// eager marks a load whose delayed commit is unobservable inside
	// the trace (the next word never reads the destination), committed
	// immediately like the block engine's fEager.
	eager bool
}

// stepTraces is the trace-tier dispatcher. It returns true when it
// executed something (a compiled trace, or a recorded Step on the block
// engine); false falls through to the superblock tier untouched.
func (c *CPU) stepTraces() bool {
	bus := c.Bus
	if bus.DMA != nil || len(bus.tickers) != 0 || len(bus.devices) != 0 || c.Mapped() {
		// Not the quiet configuration: the environment checks compiled
		// traces hoist to entry cannot be discharged. Lower tiers
		// handle every one of these exactly. Count the deopt only when
		// a compiled trace was actually ready here — traceAt's own
		// nil-cache check keeps machines that never compiled a trace
		// free of the bookkeeping.
		if c.traceAt(c.pcq[0]) != nil {
			c.Trans.TraceDeoptEnvironment++
		}
		return false
	}
	pc := c.pcq[0]
	if tr := c.traceAt(pc); tr != nil {
		if c.intLine && c.Sur.InterruptsEnabled() && !c.Sur.Supervisor() {
			// A pending interrupt must be taken before the next word;
			// the lower tiers do that exactly.
			c.Trans.TraceDeoptInterrupt++
			return false
		}
		i0 := c.Stats.Instructions
		c.runTrace(tr)
		c.Trans.TierInstrs[TierTraces] += c.Stats.Instructions - i0
		return true
	}
	if !c.heatBump(pc) {
		return false
	}
	// Threshold crossed: run this Step on the block engine with path
	// recording on, then form a trace from what actually executed. The
	// recorded Step retires on the block engine, so residency charges
	// the blocks tier.
	c.trec.active = true
	c.trec.n = 0
	i0 := c.Stats.Instructions
	ok := c.stepBlocks()
	c.Trans.TierInstrs[TierBlocks] += c.Stats.Instructions - i0
	c.trec.active = false
	if ok {
		c.finishTraceRecording(pc)
	}
	c.trec.n = 0
	return ok
}

// heatBump accumulates heat for a trace-cache miss at pc and reports
// whether the formation threshold was crossed.
func (c *CPU) heatBump(pc uint32) bool {
	if c.heat == nil {
		c.heat = make([]heatEntry, heatEntries)
	}
	h := &c.heat[pc&(heatEntries-1)]
	if h.pc != pc {
		if h.n != 0 {
			// The direct-mapped slot held another entry PC still warming
			// (or poisoned): its accumulated heat is lost to aliasing.
			c.Trans.TraceHeatEvicted++
		}
		h.pc, h.n, h.boff = pc, 1, 0
		return false
	}
	if h.n == heatNever {
		return false
	}
	h.n++
	if h.n >= heatThreshold<<h.boff {
		h.n = 0
		return true
	}
	return false
}

// heatBackoff doubles an entry's effective formation threshold after a
// transient (short-path) refusal: the retry stays possible but each
// failure makes the next attempt rarer, bounding steady-state recording
// cost without the permanence of poisoning.
func (c *CPU) heatBackoff(pc uint32) {
	if c.heat == nil {
		return
	}
	if h := &c.heat[pc&(heatEntries-1)]; h.pc == pc && h.boff < heatBoffMax {
		h.boff++
	}
}

// traceYield reports whether the block chain should end at npc and hand
// control back to the Step dispatcher: a compiled trace is installed
// there, or npc's heat just crossed the formation threshold. Crossing
// re-arms the counter one bump below the threshold so the dispatcher's
// own bump starts the recording Step immediately.
func (c *CPU) traceYield(npc uint32) bool {
	if c.traceAt(npc) != nil {
		return true
	}
	if c.heatBump(npc) {
		c.heat[npc&(heatEntries-1)].n = heatThreshold - 1
		return true
	}
	return false
}

// markNeverTrace records that paths from pc do not form: stop paying
// for recordings (and their allocations) in steady state. Poisoning
// happens at most once per entry PC (a poisoned entry never crosses the
// heat threshold again), so TracePoisoned counts distinct poisoned
// entries until the next InvalidateTraces.
func (c *CPU) markNeverTrace(pc uint32) {
	if c.heat == nil {
		return
	}
	c.heat[pc&(heatEntries-1)] = heatEntry{pc: pc, n: heatNever}
	c.Trans.TracePoisoned++
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITPoisoned, PC: pc, Heat: heatThreshold})
	}
}

// dsCompilable reports whether a delay-slot record can appear inside a
// trace.
func dsCompilable(d *decoded) bool {
	if d.flags&fPriv != 0 {
		return false
	}
	switch d.bclass {
	case bcNop, bcALU, bcLoad, bcStore:
		return true
	case bcGeneral:
		// A packed computation+memory word compiles position-exactly
		// (emitPacked consumes the flattened queue images), so it may
		// ride in a delay slot. Any other general shape — packed
		// control, traps, specials — may not.
		return (d.aluKind == isa.PieceALU || d.aluKind == isa.PieceSetCond) &&
			(d.memKind == isa.PieceLoad || d.memKind == isa.PieceStore)
	}
	return false
}

// validateTraceBlock checks that one recorded block can be compiled in
// full — body, terminator, and the delay slots its recorded direction
// executes — and derives that direction from the recorded successor
// entry nextPC. It returns ok=false when the block must truncate the
// path, with why classifying the refusal for the formation taxonomy.
func validateTraceBlock(b *block, pc, nextPC uint32) (ok, taken bool, dsCount uint8, why FormRefusal) {
	if b == nil || !b.valid || b.pa != pc || !b.hasTerm || b.termless {
		return false, false, 0, RefusalBlock
	}
	for i := uint32(0); i < b.n; i++ {
		// Any body class compiles: the lean classes specialize, and
		// packed or unclassified words (bcGeneral) run through the exact
		// executor inside the trace, just as the block engine's quiet
		// loop runs them. Privileged pieces still refuse — they can
		// change what dispatch latched.
		if b.code[i].flags&fPriv != 0 {
			return false, false, 0, RefusalPrivileged
		}
	}
	term := &b.term
	if term.flags&fPriv != 0 {
		return false, false, 0, RefusalPrivileged
	}
	// The fallthroughs below mean the recorded successor derives no
	// direction, or the direction's delay slots cannot compile.
	why = RefusalDelaySlot
	t := pc + b.n
	switch term.bclass {
	case bcBranch:
		// A branch into its own shadow (target at t+1 or t+2) leaves
		// the recorded successor ambiguous between directions; refuse.
		if term.target == t+1 || term.target == t+2 {
			return false, false, 0, RefusalShadowBranch
		}
		if nextPC == t+1 {
			return true, false, 0, 0
		}
		if nextPC == term.target && b.dsN >= 1 && dsCompilable(&b.ds[0]) {
			return true, true, 1, 0
		}
	case bcJump, bcCall:
		if nextPC == term.target && b.dsN >= 1 && dsCompilable(&b.ds[0]) {
			return true, true, 1, 0
		}
	case bcJumpInd:
		// Targets inside the two-word shadow (or just past it, where
		// the queue stays sequential and no delay slot drains) collapse
		// into shapes the flattening cannot represent; refuse.
		if nextPC == t+1 || nextPC == t+2 || nextPC == t+3 {
			return false, false, 0, RefusalJumpInd
		}
		if b.dsN == 2 && dsCompilable(&b.ds[0]) && dsCompilable(&b.ds[1]) {
			return true, true, 2, 0
		}
		why = RefusalJumpInd
	case bcGeneral:
		// A packed terminator: the control piece shares its word with
		// computation, so the word itself runs through the exact
		// executor (emitGeneralTerm) and only the recorded direction —
		// derived from the control piece's kind exactly as in the lean
		// cases above — must flatten. The same shadow refusals apply.
		switch term.memKind {
		case isa.PieceBranch:
			if term.target == t+1 || term.target == t+2 {
				return false, false, 0, RefusalShadowBranch
			}
			if nextPC == t+1 {
				return true, false, 0, 0
			}
			if nextPC == term.target && b.dsN >= 1 && dsCompilable(&b.ds[0]) {
				return true, true, 1, 0
			}
		case isa.PieceJump, isa.PieceCall:
			if nextPC == term.target && b.dsN >= 1 && dsCompilable(&b.ds[0]) {
				return true, true, 1, 0
			}
		case isa.PieceJumpInd:
			if nextPC == t+1 || nextPC == t+2 || nextPC == t+3 {
				return false, false, 0, RefusalJumpInd
			}
			if b.dsN == 2 && dsCompilable(&b.ds[0]) && dsCompilable(&b.ds[1]) {
				return true, true, 2, 0
			}
			why = RefusalJumpInd
		default:
			// Traps and special-register terminators never compile.
			why = RefusalBlock
		}
	default:
		why = RefusalBlock
	}
	return false, false, 0, why
}

// finishTraceRecording validates the recorded path, flattens it to
// trace words, compiles, and installs. entry is the recorded entry PC.
func (c *CPU) finishTraceRecording(entry uint32) {
	pts := c.trec.pts[:c.trec.n]
	if len(pts) < 2 || pts[0].pc != entry {
		// A short path is usually transient — the block engine has not
		// chained through this entry yet, or an interrupt cut the
		// recording Step — so the entry backs off instead of poisoning:
		// each failure doubles the threshold the next retry must re-earn.
		// Recording is allocation-free up to this point, so retries cost
		// only the recorded Step itself. Structural failures (validation
		// refusing the first block, compilation failing) still poison.
		c.refuseTrace(RefusalShortPath, entry)
		c.heatBackoff(entry)
		return
	}
	// A path that revisits its entry closes into a loop trace; an open
	// path drops its final block (its exit direction is unknown — it
	// may have bailed mid-body).
	lim := len(pts) - 1
	closed := false
	for i := 1; i < len(pts); i++ {
		if pts[i].pc == entry {
			lim, closed = i, true
			break
		}
	}

	// Pass 1: validate without allocating, truncating at the first
	// block that cannot compile.
	var taken [traceMaxBlocks]bool
	var dsCount [traceMaxBlocks]uint8
	ops := 0
	for j := 0; j < lim; j++ {
		nextPC := pts[lim].pc
		if closed && j == lim-1 {
			nextPC = entry
		} else if j+1 < lim {
			nextPC = pts[j+1].pc
		}
		ok, tk, dc, why := validateTraceBlock(pts[j].b, pts[j].pc, nextPC)
		if !ok {
			// At most one refusal counts per recording: the first block
			// that truncates the path.
			c.refuseTrace(why, pts[j].pc)
			lim, closed = j, false
			break
		}
		ops += int(pts[j].b.n) + 1 + int(dc)
		if ops > traceMaxOps {
			c.refuseTrace(RefusalOpBudget, pts[j].pc)
			lim, closed = j, false
			break
		}
		taken[j], dsCount[j] = tk, dc
	}
	if lim < 1 {
		c.markNeverTrace(entry)
		return
	}
	endPC := pts[lim].pc
	if closed {
		endPC = entry
	}
	c.Trans.TraceFormed++
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITFormed, PC: entry, Len: uint32(lim), Heat: heatThreshold})
	}

	// Pass 2: flatten to trace words with exact per-word exit queues.
	words := make([]traceWord, 0, ops)
	spans := make([]traceSpan, 0, lim)
	for j := 0; j < lim; j++ {
		b, pc := pts[j].b, pts[j].pc
		spans = append(spans, traceSpan{pa: b.pa, n: b.cover})
		for i := uint32(0); i < b.n; i++ {
			vpc := pc + i
			words = append(words, traceWord{
				d: b.code[i], vpc: vpc,
				fq: [3]uint32{vpc, vpc + 1, vpc + 2},
				cq: [2]uint32{vpc + 1}, cqn: 1,
			})
		}
		t := pc + b.n
		tw := traceWord{
			d: b.term, vpc: t, taken: taken[j],
			fq: [3]uint32{t, t + 1, t + 2},
			cq: [2]uint32{t + 1}, cqn: 1,
		}
		x := b.term.target // control target the recorded direction follows
		if b.term.bclass == bcJumpInd ||
			(b.term.bclass == bcGeneral && b.term.memKind == isa.PieceJumpInd) {
			x = pts[lim].pc
			if closed && j == lim-1 {
				x = entry
			} else if j+1 < lim {
				x = pts[j+1].pc
			}
			tw.expTarget = x
		}
		words = append(words, tw)
		switch dsCount[j] {
		case 1:
			d0 := t + 1
			words = append(words, traceWord{
				d: b.ds[0], vpc: d0,
				fq: [3]uint32{d0, x, x + 1},
				cq: [2]uint32{x}, cqn: 1,
			})
		case 2:
			d0, d1 := t+1, t+2
			words = append(words, traceWord{
				d: b.ds[0], vpc: d0,
				fq: [3]uint32{d0, d1, x},
				cq: [2]uint32{d1, x}, cqn: 2,
			})
			words = append(words, traceWord{
				d: b.ds[1], vpc: d1,
				fq: [3]uint32{d1, x, x + 1},
				cq: [2]uint32{x}, cqn: 1,
			})
		}
	}

	// Eager-load marking over the flattened path: the one-word hazard
	// window is observable only by the immediately following word, and
	// inside a trace that word is statically known even across block
	// and branch boundaries. The final word has no known successor, so
	// its load keeps the delayed commit.
	for i := range words {
		w := &words[i]
		if w.d.bclass != bcLoad || w.d.mode == isa.AModeLongImm {
			continue
		}
		if i+1 < len(words) && words[i+1].d.bclass != bcGeneral &&
			!readsReg(&words[i+1].d, w.d.data) {
			w.eager = true
		}
	}
	// Hazard positions: loads pending at entry drain within the first
	// two words; a delayed in-trace commit lands two words after its
	// (non-eager) load. Those positions read through the exact audit
	// path and drain commits per word.
	for i := range words {
		if i < 2 {
			words[i].hazard = true
		}
		d := &words[i].d
		if (d.bclass == bcLoad && !words[i].eager && d.mode != isa.AModeLongImm) ||
			(d.bclass == bcGeneral && d.memKind == isa.PieceLoad &&
				d.mode != isa.AModeLongImm) {
			// A non-eager load's commit lands two words later, and a
			// packed load (always delayed) leaves the same window; no
			// other shape pends a write. The window drains per word.
			for k := i + 1; k <= i+2 && k < len(words); k++ {
				words[k].hazard = true
			}
		}
	}

	tr := c.compileTrace(words, entry, endPC, spans)
	if tr == nil {
		c.markNeverTrace(entry)
		return
	}
	c.installTrace(tr)
	c.Trans.TraceCompiled++
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITCompiled, PC: entry, Len: uint32(len(tr.ops)), Heat: heatThreshold})
	}
}

// refuseTrace accounts one formation refusal: the taxonomy counter and,
// when a hook is attached, the event with the refusing block's PC.
func (c *CPU) refuseTrace(why FormRefusal, pc uint32) {
	c.Trans.TraceFormRefusals[why]++
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITRefused, Reason: uint8(why), PC: pc, Heat: heatThreshold})
	}
}
