package cpu

// The superblock execution engine. Step dispatches here when the fetch
// queue holds no in-flight branch target: the head of the queue is then
// a block entry point, and the whole straight-line run up to and
// including the next control transfer executes as one translated block
// (blockcache.go) — per-word fetch, queue maintenance, and pipeline
// bookkeeping replaced by a tight loop over flat records with the
// block's statically known cost. Delay slots and anything the lean
// paths cannot prove equivalent run on the exact per-instruction
// engine: the reference interpreter remains the oracle, and every
// deviation (fault, trap, interrupt, halt, invalidation, page-map
// change) abandons the block at a precise instruction boundary.

import (
	"mips/internal/isa"
)

// queueSequential reports whether the fetch queue holds only the
// sequential successors of its head — no delayed branch target in
// flight, so the head is a block entry point.
func (c *CPU) queueSequential() bool {
	for i := 1; i < c.pcn; i++ {
		if c.pcq[i] != c.pcq[0]+uint32(i) {
			return false
		}
	}
	return true
}

// recordChain notes that this block was followed by the block s at
// virtual entry vpc. Two edges cover the common shapes (a loop back
// edge plus a fall-through or exit); further successors churn the
// second slot so pathological indirect fan-out stays bounded.
func (lb *block) recordChain(vpc uint32, s *block) {
	for i := 0; i < lb.succN; i++ {
		if lb.succVPC[i] == vpc {
			lb.succ[i] = s
			return
		}
	}
	if lb.succN < len(lb.succ) {
		lb.succVPC[lb.succN] = vpc
		lb.succ[lb.succN] = s
		lb.succN++
		return
	}
	lb.succVPC[1] = vpc
	lb.succ[1] = s
}

// leanRead reads a register on the lean block path. With no pending
// load the read has no architectural side effects (the hazard auditor
// only ever fires against a pending load), so it collapses to a
// register-file load; otherwise it defers to readReg for exact audit
// behavior.
func (c *CPU) leanRead(r isa.Reg, vpc uint32) uint32 {
	if c.pendN != 0 {
		return c.readReg(r, vpc)
	}
	return c.Regs[r]
}

func (c *CPU) leanOperand(o fastOp, vpc uint32) uint32 {
	if o.imm {
		return o.val
	}
	return c.leanRead(o.reg, vpc)
}

// leanAddr computes a load/store effective address, reading registers
// in the same order as effectiveAddr.
func (c *CPU) leanAddr(d *decoded, vpc uint32) uint32 {
	switch d.mode {
	case isa.AModeAbs:
		return uint32(d.disp)
	case isa.AModeDisp:
		return c.leanRead(d.base, vpc) + uint32(d.disp)
	case isa.AModeIndex:
		return c.leanRead(d.base, vpc) + c.leanRead(d.index, vpc)
	case isa.AModeShift:
		return c.leanRead(d.base, vpc) + c.leanRead(d.index, vpc)>>d.shift
	}
	return 0
}

// leanALU executes the compute and writeback of a word whose only work
// is a single ALU-class piece. It reports overflow instead of raising
// it (ovfOn is the entry-latched trap enable — only exceptions and
// special pieces change it, and both end a block), leaving the
// destination unwritten in that case exactly like the staged-commit
// path.
func (c *CPU) leanALU(d *decoded, vpc uint32, ovfOn bool) bool {
	c.Stats.Pieces++
	switch d.aluKind {
	case isa.PieceALU:
		a := c.leanOperand(d.a1, vpc)
		var b uint32
		if !d.aluUnary {
			b = c.leanOperand(d.a2, vpc)
		}
		var dstVal uint32
		if d.aluDstRead {
			dstVal = c.leanRead(d.aluDst, vpc)
		}
		v, lo, ovf := aluEval(d.aluOp, a, b, dstVal, c.Lo)
		if ovf && ovfOn {
			return true
		}
		if d.aluOp == isa.OpMovLo {
			c.Lo = lo
		} else {
			c.Regs[d.aluDst] = v
			c.lastWrite[d.aluDst] = c.seq
		}
	case isa.PieceSetCond:
		a := c.leanOperand(d.a1, vpc)
		b := c.leanOperand(d.a2, vpc)
		var v uint32
		if d.aluCmp.Eval(a, b) {
			v = 1
		}
		c.Regs[d.aluDst] = v
		c.lastWrite[d.aluDst] = c.seq
	}
	return false
}

// runPure executes a block whose body is nothing but nops and ALU
// words, with the bulk accounting precomputed at translation time. The
// caller has proved no step of the body can deviate: no loads are
// pending (so reads are side-effect free and nothing commits mid-run),
// no tickers or DMA exist (so no device can observe or perturb the
// run), the interrupt line is low, and overflow cannot trap.
func (c *CPU) runPure(b *block, n uint32) {
	for i := uint32(0); i < n; i++ {
		d := &b.code[i]
		c.seq++
		if d.bclass == bcNop {
			continue
		}
		switch d.aluKind {
		case isa.PieceALU:
			a := d.a1.val
			if !d.a1.imm {
				a = c.Regs[d.a1.reg]
			}
			var bv uint32
			if !d.aluUnary {
				bv = d.a2.val
				if !d.a2.imm {
					bv = c.Regs[d.a2.reg]
				}
			}
			var dstVal uint32
			if d.aluDstRead {
				dstVal = c.Regs[d.aluDst]
			}
			v, lo, _ := aluEval(d.aluOp, a, bv, dstVal, c.Lo)
			if d.aluOp == isa.OpMovLo {
				c.Lo = lo
			} else {
				c.Regs[d.aluDst] = v
				c.lastWrite[d.aluDst] = c.seq
			}
		case isa.PieceSetCond:
			a := d.a1.val
			if !d.a1.imm {
				a = c.Regs[d.a1.reg]
			}
			bv := d.a2.val
			if !d.a2.imm {
				bv = c.Regs[d.a2.reg]
			}
			var v uint32
			if d.aluCmp.Eval(a, bv) {
				v = 1
			}
			c.Regs[d.aluDst] = v
			c.lastWrite[d.aluDst] = c.seq
		}
	}
	// Bulk accounting from the translation-time cost: one cycle per
	// word, every data-memory cycle free (no DMA exists to claim them).
	c.Stats.Instructions += uint64(n)
	c.Stats.Cycles += uint64(n)
	c.Stats.Pieces += b.sPieces
	c.Stats.Nops += b.sNops
	c.Stats.FreeCycles += uint64(n)
}

// runQuiet executes a block body in the quiet configuration (no DMA,
// no tickers, unmapped, no memory hook, no interrupt pending): the
// per-word environmental checks of the general loop are provably dead,
// and with no tickers every Bus.Tick is a no-op and is omitted. It
// reports false when the block bailed (fault, halt, invalidation, or an
// exact-executor word that redirected the queue) with the fetch queue
// already pointing at the resume address.
func (c *CPU) runQuiet(b *block, pc uint32, ovfOn bool) bool {
	n := b.n
	for i := uint32(0); i < n; i++ {
		d := &b.code[i]
		c.seq++
		if c.pendN != 0 {
			c.commitLoads()
		}
		switch d.bclass {
		case bcNop:
			if k := uint64(d.nopRun); k > 1 && c.pendN == 0 {
				c.seq += k - 1
				c.Stats.Instructions += k
				c.Stats.Cycles += k
				c.Stats.Nops += k
				c.Stats.FreeCycles += k
				i += uint32(k) - 1
				continue
			}
			c.Stats.Instructions++
			c.Stats.Cycles++
			c.Stats.Nops++
			c.Stats.FreeCycles++
		case bcALU:
			c.Stats.Instructions++
			c.Stats.Cycles++
			c.Stats.FreeCycles++
			if c.leanALU(d, pc+i, ovfOn) {
				c.bailFault(pc+i, isa.CauseOverflow)
				return false
			}
		case bcLoad:
			c.Stats.Instructions++
			c.Stats.Cycles++
			c.Stats.Pieces++
			if d.mode == isa.AModeLongImm {
				c.Regs[d.data] = uint32(d.disp)
				c.lastWrite[d.data] = c.seq
				c.Stats.FreeCycles++
				break
			}
			addr := c.leanAddr(d, pc+i)
			v, f := c.Bus.Read(addr, false)
			if f != nil {
				c.Stats.DataCycles++
				c.bailFault(pc+i, f.Cause)
				return false
			}
			c.Stats.Loads++
			c.Stats.DataCycles++
			if d.flags&fEager != 0 {
				c.Regs[d.data] = v
				c.lastWrite[d.data] = c.seq
			} else {
				c.writeLoad(d.data, v)
			}
		case bcStore:
			c.Stats.Instructions++
			c.Stats.Cycles++
			c.Stats.Pieces++
			addr := c.leanAddr(d, pc+i)
			val := c.leanRead(d.data, pc+i)
			if f := c.Bus.Write(addr, val, false); f != nil {
				c.Stats.DataCycles++
				c.bailFault(pc+i, f.Cause)
				return false
			}
			c.Stats.Stores++
			c.Stats.DataCycles++
			if c.Halted {
				c.pcq[0], c.pcn = pc+i+1, 1
				c.Trans.BlockBails++
				return false
			}
			if !b.valid {
				c.pcq[0], c.pcn = pc+i+1, 1
				c.Trans.BlockBails++
				return false
			}
		default:
			vpc := pc + i
			c.pcq[0], c.pcq[1] = vpc+1, vpc+2
			c.pcn = 2
			c.execFast(d, vpc)
			if c.Halted || c.pcn != 2 || c.pcq[0] != vpc+1 {
				c.Trans.BlockBails++
				return false
			}
			if !b.valid {
				c.pcq[0], c.pcn = vpc+1, 1
				c.Trans.BlockBails++
				return false
			}
		}
	}
	return true
}

// blockStep runs one exact per-instruction step with the full Step
// preamble — used for undecodable block exits and delay slots, which
// always execute on the exact per-instruction path.
func (c *CPU) blockStep() {
	c.seq++
	if c.pendN != 0 {
		c.commitLoads()
	}
	c.fill()
	if c.intLine && c.Sur.InterruptsEnabled() && !c.Sur.Supervisor() {
		c.exception(isa.CauseInterrupt, isa.CauseNone, 0)
		return
	}
	c.stepFast(c.pcq[0])
}

// bailFault abandons the block at a faulting word: the word restarts at
// the head of the refilled fetch queue (return address zero), exactly
// as finishWord's fault path leaves it.
func (c *CPU) bailFault(vpc uint32, cause isa.Cause) {
	c.pcq[0], c.pcq[1], c.pcq[2] = vpc, vpc+1, vpc+2
	c.pcn = 3
	c.exception(cause, isa.CauseNone, 0)
	c.Trans.BlockBails++
}

// stepBlocks executes one superblock (body, terminator, and the
// terminator's delay slots) starting at the head of the fetch queue.
// It returns false, with no architectural effect, if the entry cannot
// be resolved to instruction memory — the caller then takes the exact
// path, which raises the fetch fault with reference semantics.
func (c *CPU) stepBlocks() bool {
	b, ok := c.runBlocks()
	// The chain anchor is written once per Step, not once per chained
	// block: the hot chain loop alternating between two blocks would
	// otherwise emit a GC pointer-write barrier every iteration.
	if b != nil && c.lastBlk != b {
		c.lastBlk = b
	}
	return ok
}

// runBlocks resolves the entry block and executes the chain, returning
// the last block that ran so the caller can anchor the next Step's
// chain lookup on it.
func (c *CPU) runBlocks() (*block, bool) {
	pc := c.pcq[0]
	mapped := c.Mapped()
	prev := c.lastBlk

	// Resolve the entry to a block: through a chain edge when one
	// matches (mapping off only — a chained pointer bakes in a
	// virtual-to-physical identity), else through the cache.
	var b *block
	if prev != nil && !mapped {
		for i := 0; i < prev.succN; i++ {
			if prev.succVPC[i] == pc {
				if s := prev.succ[i]; s.valid && s.pa == pc {
					b = s
					c.Trans.BlockChained++
				}
				break
			}
		}
	}
	if b == nil {
		pa := pc
		if mapped {
			p, f := c.Bus.MMU.Translate(pc, false, true)
			if f != nil {
				return nil, false
			}
			pa = p
		}
		if pa >= uint32(len(c.IMem)) {
			return nil, false
		}
		if cached := *c.blockSlot(pa); cached != nil && cached.valid && cached.pa == pa {
			b = cached
			c.Trans.BlockHits++
		} else {
			b = c.translateBlock(pa)
		}
		// Per-word identity validation against live instruction
		// memory — the same coherence rule the predecode cache
		// applies per fetch. The write barrier already catches
		// physical-memory writers; this catches direct IMem rewriting
		// (harnesses, image loaders). Chain-followed entries skip it:
		// a chain edge is only followed while the barrier holds the
		// target valid, and every chain is entered through a validated
		// cache lookup first.
		if !c.blockCurrent(b) {
			b = c.translateBlock(b.pa)
		}
		if prev != nil && prev.valid && !mapped {
			prev.recordChain(pc, b)
		}
	}
	bus := c.Bus
	doTick := len(bus.tickers) > 0
	dmaOn := bus.DMA != nil
	// With the trace tier live in its quiet configuration, chained
	// entries feed the tier's heat profile and yield to compiled traces:
	// Step entry is the only point the trace dispatcher sees, and a
	// 64-deep chain would otherwise starve it of both heat and
	// dispatches (the chain's exit PCs cycle around a loop instead of
	// revisiting one entry).
	traceTier := c.traces && !c.trec.active && !dmaOn && !doTick &&
		!mapped && len(bus.devices) == 0

	// Chained blocks execute back to back inside one Step while nothing
	// needs the per-step dispatch: the hot loop never leaves this
	// frame. Chaining stops at any block whose exit ran outside the
	// lean classes (a special could have changed privilege, overflow
	// enable, or the address map), at any exception, and at a bounded
	// follow count so Run's step budget keeps teeth.
	for follow := 0; ; follow++ {
		b.execs++
		if c.trec.active {
			c.recTracePoint(b, pc)
		}
		var pmGen uint64
		if mapped {
			pmGen = c.Bus.MMU.Map.Generation()
		}
		ovfOn := c.Sur.OverflowEnabled()
		n := b.n
		exc0 := c.excSeq

		if b.pure && n > 0 && c.pendN == 0 && !c.intLine &&
			!dmaOn && !doTick && !(ovfOn && b.hasOvf) {
			c.runPure(b, n)
		} else if n > 0 && !dmaOn && !doTick && !mapped && c.onMem == nil &&
			!(c.intLine && c.Sur.InterruptsEnabled() && !c.Sur.Supervisor()) {
			// Quiet configuration: no DMA to offer cycles to, no ticker
			// to advance, no mapping generation to track, no memory
			// hook, and no interrupt pending. Nothing can raise the
			// line or remap mid-body, so the per-word environmental
			// checks vanish; only stores (which can invalidate this
			// block or hit a halt device) and exact-executor words keep
			// their exit checks.
			if !c.runQuiet(b, pc, ovfOn) {
				return b, true
			}
		} else if n > 0 {
			intOK := c.Sur.InterruptsEnabled() && !c.Sur.Supervisor()
			for i := uint32(0); i < n; i++ {
				vpc := pc + i
				c.seq++
				if c.pendN != 0 {
					c.commitLoads()
				}
				if c.intLine && intOK {
					c.pcq[0], c.pcn = vpc, 1
					c.exception(isa.CauseInterrupt, isa.CauseNone, 0)
					c.Trans.BlockBails++
					return b, true
				}
				d := &b.code[i]
				switch d.bclass {
				case bcNop:
					// A run of nops retires in bulk when nothing can
					// observe the intermediate cycles: no DMA to offer
					// them to, no ticker to advance, no pending load
					// whose commit lands mid-run. Nops cannot fault,
					// write, or invalidate anything, and without
					// tickers no interrupt can rise inside the run.
					if k := uint64(d.nopRun); k > 1 && !dmaOn && !doTick &&
						c.pendN == 0 {
						c.seq += k - 1
						c.Stats.Instructions += k
						c.Stats.Cycles += k
						c.Stats.Nops += k
						c.Stats.FreeCycles += k
						i += uint32(k) - 1
						continue
					}
					c.Stats.Instructions++
					c.Stats.Cycles++
					c.Stats.Nops++
					c.Stats.FreeCycles++
					if dmaOn {
						bus.offerFree(&c.Stats)
					}
					if doTick {
						bus.Tick()
					}
				case bcALU:
					c.Stats.Instructions++
					c.Stats.Cycles++
					if c.leanALU(d, vpc, ovfOn) {
						// Mirror finishWord on the overflow path: the free
						// data cycle is accounted and offered first, then
						// the word restarts at the head of the saved queue.
						c.Stats.FreeCycles++
						if dmaOn {
							bus.offerFree(&c.Stats)
						}
						c.bailFault(vpc, isa.CauseOverflow)
						bus.Tick()
						return b, true
					}
					c.Stats.FreeCycles++
					if dmaOn {
						bus.offerFree(&c.Stats)
					}
					if doTick {
						bus.Tick()
					}
				case bcLoad:
					c.Stats.Instructions++
					c.Stats.Cycles++
					c.Stats.Pieces++
					if d.mode == isa.AModeLongImm {
						// The long immediate comes from the instruction
						// stream, not the data port: no data cycle and no
						// load delay.
						c.Regs[d.data] = uint32(d.disp)
						c.lastWrite[d.data] = c.seq
						c.Stats.FreeCycles++
						if dmaOn {
							bus.offerFree(&c.Stats)
						}
						if doTick {
							bus.Tick()
						}
						break
					}
					addr := c.leanAddr(d, vpc)
					v, f := bus.Read(addr, mapped)
					if f != nil {
						c.Stats.DataCycles++
						c.bailFault(vpc, f.Cause)
						bus.Tick()
						return b, true
					}
					c.Stats.Loads++
					if c.onMem != nil {
						c.onMem(vpc, addr, false)
					}
					c.Stats.DataCycles++
					if d.flags&fEager != 0 {
						c.Regs[d.data] = v
						c.lastWrite[d.data] = c.seq
					} else {
						c.writeLoad(d.data, v)
					}
					if doTick {
						bus.Tick()
					}
				case bcStore:
					c.Stats.Instructions++
					c.Stats.Cycles++
					c.Stats.Pieces++
					addr := c.leanAddr(d, vpc)
					val := c.leanRead(d.data, vpc)
					if f := bus.Write(addr, val, mapped); f != nil {
						c.Stats.DataCycles++
						c.bailFault(vpc, f.Cause)
						bus.Tick()
						return b, true
					}
					c.Stats.Stores++
					if c.onMem != nil {
						c.onMem(vpc, addr, true)
					}
					c.Stats.DataCycles++
					if doTick {
						bus.Tick()
					}
					if c.Halted {
						// The store hit the halt device; the word itself
						// completed.
						c.pcq[0], c.pcn = vpc+1, 1
						c.Trans.BlockBails++
						return b, true
					}
				default:
					// Packed words run through the exact executor with the
					// fetch queue set to what per-word stepping would hold:
					// the two sequential successors.
					c.pcq[0], c.pcq[1] = vpc+1, vpc+2
					c.pcn = 2
					c.execFast(d, vpc)
					bus.Tick()
					if c.Halted || c.pcn != 2 || c.pcq[0] != vpc+1 {
						// Halt device, memory fault, or trap: the queue
						// already points where execution must resume.
						c.Trans.BlockBails++
						return b, true
					}
				}
				// A store, DMA move, or device tick may have invalidated
				// this very block or remapped the address space; both end
				// the block at an exact instruction boundary.
				if !b.valid || (mapped && bus.MMU.Map.Generation() != pmGen) {
					c.pcq[0], c.pcn = vpc+1, 1
					c.Trans.BlockBails++
					return b, true
				}
			}
		}

		// The terminator runs from its cached record when one was decoded
		// (skipping re-fetch: its identity was validated with the body),
		// then the delay slots of a taken transfer drain — from their
		// cached records while those stay coherent, else on the exact
		// engine — until the fetch queue is sequential again. The queue is
		// pre-filled so the terminator's pipeline refill is a no-op.
		t := pc + n
		c.pcq[0], c.pcq[1], c.pcq[2] = t, t+1, t+2
		c.pcn = 3
		if b.termless {
			return b, true
		}
		// Chaining may continue only through exits proven lean: a
		// cached control-class terminator and cached lean delay slots.
		// A path recording may additionally look across an unprivileged
		// packed terminator (control piece sharing the word with
		// computation): the drain below still leaves the machine at an
		// exact boundary, the halt/exception/sequential checks still
		// gate the continuation, and trace validation decides whether
		// the packed word compiles. Without this the hottest loops the
		// reorganizer packs most aggressively could never record a
		// multi-block path.
		chainable := b.hasTerm && (b.term.bclass >= bcBranch ||
			(c.trec.active && b.term.bclass == bcGeneral && b.term.flags&fPriv == 0))
		if b.hasTerm {
			c.dsStep(&b.term, dmaOn, doTick, ovfOn)
		} else {
			c.blockStep()
		}
		for k := 0; !c.Halted && !c.queueSequential() && k < pcqCap; k++ {
			if j := c.pcq[0] - (t + 1); j < uint32(b.dsN) && b.valid &&
				(!mapped || bus.MMU.Map.Generation() == pmGen) {
				if b.ds[j].bclass == bcGeneral {
					chainable = false
				}
				c.dsStep(&b.ds[j], dmaOn, doTick, ovfOn)
			} else {
				chainable = false
				c.blockStep()
			}
		}
		if !chainable || c.Halted || c.excSeq != exc0 ||
			follow >= c.chainFollow || !c.queueSequential() {
			return b, true
		}
		if c.trec.active && c.trec.n > traceMaxBlocks {
			// The recording buffer is full: chaining further retires
			// instructions the recording cannot use (formation truncates
			// at traceMaxBlocks anyway), charging the block tier for
			// nothing. End the recording Step at this exact boundary.
			return b, true
		}
		npc := c.pcq[0]
		if traceTier && c.traceYield(npc) {
			return b, true
		}
		var nb *block
		for i := 0; i < b.succN; i++ {
			if b.succVPC[i] == npc {
				if s := b.succ[i]; s.valid && s.pa == npc {
					nb = s
					c.Trans.BlockChained++
				}
				break
			}
		}
		if nb == nil && c.trec.active && !mapped && npc < uint32(len(c.IMem)) {
			// A recording must capture the whole hot path, but chain
			// edges toward trace-covered entries are never built (trace
			// dispatch intercepts those entries before the block engine
			// sees them). Resolve through the cache exactly as dispatch
			// entry does — translation cost is formation-time, paid once.
			if cached := *c.blockSlot(npc); cached != nil && cached.valid && cached.pa == npc {
				nb = cached
				c.Trans.BlockHits++
			} else {
				nb = c.translateBlock(npc)
			}
			if !c.blockCurrent(nb) {
				nb = c.translateBlock(nb.pa)
			}
			if b.valid {
				b.recordChain(npc, nb)
			}
		}
		if nb == nil {
			return b, true
		}
		b, pc = nb, npc
	}
}

// blockCurrent reports whether every word a block caches — body,
// terminator, delay slots — still matches live instruction memory.
func (c *CPU) blockCurrent(b *block) bool {
	for i := uint32(0); i < b.n; i++ {
		if c.IMem[b.pa+i] != b.code[i].src {
			return false
		}
	}
	if b.hasTerm {
		if c.IMem[b.pa+b.n] != b.term.src {
			return false
		}
		for j := uint32(0); j < uint32(b.dsN); j++ {
			if c.IMem[b.pa+b.n+1+j] != b.ds[j].src {
				return false
			}
		}
	} else if b.n == 0 && c.IMem[b.pa] != b.entrySrc {
		return false
	}
	return true
}

// dsStep executes one word at the head of the fetch queue from a cached
// record: the full Step preamble and exact queue maintenance of
// stepFast, minus the fetch (the caller validated the record's identity
// at block entry and keeps it coherent through the write barrier). Lean
// classes run inline; anything else goes through the exact executor.
func (c *CPU) dsStep(d *decoded, dmaOn, doTick, ovfOn bool) {
	c.seq++
	if c.pendN != 0 {
		c.commitLoads()
	}
	c.fill()
	if c.intLine && c.Sur.InterruptsEnabled() && !c.Sur.Supervisor() {
		c.exception(isa.CauseInterrupt, isa.CauseNone, 0)
		return
	}
	if d.flags&fPriv != 0 && !c.Sur.Supervisor() {
		c.exception(isa.CausePrivilege, isa.CauseNone, 0)
		return
	}
	pc := c.popPC()
	c.Stats.Instructions++
	c.Stats.Cycles++
	switch d.bclass {
	case bcNop:
		c.Stats.Nops++
		c.Stats.FreeCycles++
		if dmaOn {
			c.Bus.offerFree(&c.Stats)
		}
	case bcALU:
		if c.leanALU(d, pc, ovfOn) {
			c.Stats.FreeCycles++
			if dmaOn {
				c.Bus.offerFree(&c.Stats)
			}
			c.pushPC(pc)
			c.exception(isa.CauseOverflow, isa.CauseNone, 0)
			c.Bus.Tick()
			return
		}
		c.Stats.FreeCycles++
		if dmaOn {
			c.Bus.offerFree(&c.Stats)
		}
	case bcLoad:
		c.Stats.Pieces++
		if d.mode == isa.AModeLongImm {
			c.Regs[d.data] = uint32(d.disp)
			c.lastWrite[d.data] = c.seq
			c.Stats.FreeCycles++
			if dmaOn {
				c.Bus.offerFree(&c.Stats)
			}
			break
		}
		addr := c.leanAddr(d, pc)
		v, f := c.Bus.Read(addr, c.Mapped())
		if f != nil {
			c.Stats.DataCycles++
			c.pushPC(pc)
			c.exception(f.Cause, isa.CauseNone, 0)
			c.Bus.Tick()
			return
		}
		c.Stats.Loads++
		if c.onMem != nil {
			c.onMem(pc, addr, false)
		}
		c.Stats.DataCycles++
		c.writeLoad(d.data, v)
	case bcStore:
		c.Stats.Pieces++
		addr := c.leanAddr(d, pc)
		val := c.leanRead(d.data, pc)
		if f := c.Bus.Write(addr, val, c.Mapped()); f != nil {
			c.Stats.DataCycles++
			c.pushPC(pc)
			c.exception(f.Cause, isa.CauseNone, 0)
			c.Bus.Tick()
			return
		}
		c.Stats.Stores++
		if c.onMem != nil {
			c.onMem(pc, addr, true)
		}
		c.Stats.DataCycles++
	case bcBranch:
		c.Stats.Pieces++
		c.Stats.Branches++
		a := c.leanOperand(d.m1, pc)
		b := c.leanOperand(d.m2, pc)
		taken := d.memCmp.Eval(a, b)
		if taken {
			c.Stats.TakenBranches++
			c.scheduleBranch(d.target, isa.BranchDelay)
		}
		if c.onBranch != nil {
			c.onBranch(pc, d.target, taken)
		}
		c.Stats.FreeCycles++
		if dmaOn {
			c.Bus.offerFree(&c.Stats)
		}
	case bcJump:
		c.Stats.Pieces++
		c.Stats.Branches++
		c.Stats.TakenBranches++
		c.scheduleBranch(d.target, isa.BranchDelay)
		if c.onBranch != nil {
			c.onBranch(pc, d.target, true)
		}
		c.Stats.FreeCycles++
		if dmaOn {
			c.Bus.offerFree(&c.Stats)
		}
	case bcCall:
		c.Stats.Pieces++
		c.Stats.Branches++
		c.Stats.TakenBranches++
		c.scheduleBranch(d.target, isa.BranchDelay)
		if c.onBranch != nil {
			c.onBranch(pc, d.target, true)
		}
		// The link commit lands after the branch hook, as on the
		// staged path: the hook observes the pre-call register file.
		c.Regs[d.linkDst] = pc + 1 + isa.BranchDelay
		c.lastWrite[d.linkDst] = c.seq
		c.Stats.FreeCycles++
		if dmaOn {
			c.Bus.offerFree(&c.Stats)
		}
	case bcJumpInd:
		c.Stats.Pieces++
		c.Stats.Branches++
		c.Stats.TakenBranches++
		target := c.leanOperand(d.m1, pc)
		c.scheduleBranch(target, isa.IndirectJumpDelay)
		if c.onBranch != nil {
			c.onBranch(pc, target, true)
		}
		c.Stats.FreeCycles++
		if dmaOn {
			c.Bus.offerFree(&c.Stats)
		}
	default:
		c.Stats.Instructions--
		c.Stats.Cycles--
		c.execFast(d, pc)
		c.Bus.Tick()
		return
	}
	if doTick {
		c.Bus.Tick()
	}
}
