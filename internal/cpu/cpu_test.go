package cpu

import (
	"testing"

	"mips/internal/isa"
	"mips/internal/mem"
)

// newTestCPU builds a CPU with 64K words of physical memory and a halt
// hook on trap 0.
func newTestCPU(words ...isa.Instr) *CPU {
	phys := mem.NewPhysical(1 << 16)
	c := New(NewBus(phys))
	c.IMem = make([]isa.Instr, len(words))
	copy(c.IMem, words)
	c.SetTrapHook(func(code uint16) {
		if code == 0 {
			c.Halt()
		}
	})
	return c
}

// run executes until halt or failure.
func run(t *testing.T, c *CPU, max uint64) {
	t.Helper()
	if _, err := c.Run(max); err != nil {
		t.Fatalf("run: %v (pc=%d, sur=%s)", err, c.PC(), c.Sur)
	}
}

func w(p isa.Piece) isa.Instr { return isa.Word(p) }

var halt = w(isa.Trap(0))

func TestALUArithmetic(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(10))),
		w(isa.Mov(2, isa.Imm(3))),
		w(isa.ALU(isa.OpAdd, 3, isa.R(1), isa.R(2))),   // 13
		w(isa.ALU(isa.OpSub, 4, isa.R(1), isa.R(2))),   // 7
		w(isa.ALU(isa.OpRSub, 5, isa.R(2), isa.R(1))),  // 10-3 = 7
		w(isa.ALU(isa.OpSll, 6, isa.R(1), isa.Imm(2))), // 40
		w(isa.ALU(isa.OpXor, 7, isa.R(1), isa.R(2))),   // 9
		halt,
	)
	run(t, c, 100)
	want := map[isa.Reg]uint32{3: 13, 4: 7, 5: 7, 6: 40, 7: 9}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestReverseOperatorsGiveNegativeConstants(t *testing.T) {
	// rsub #5, r1 computes 5 - r1; with r1 = 3 the result is 2, and
	// sub r1, #5 gives -2 — the two ways the ISA expresses ±small
	// constants without a sign bit (paper §2.2).
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(3))),
		w(isa.ALU(isa.OpRSub, 2, isa.Imm(5), isa.R(1))), // r1 - 5 = -2
		w(isa.ALU(isa.OpSub, 3, isa.R(1), isa.Imm(5))),  // r1 - 5 = -2
		halt,
	)
	run(t, c, 100)
	if int32(c.Regs[2]) != -2 || int32(c.Regs[3]) != -2 {
		t.Errorf("r2 = %d, r3 = %d, want -2, -2", int32(c.Regs[2]), int32(c.Regs[3]))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := newTestCPU(
		w(isa.LoadImm32(1, 0x1234)),
		w(isa.Mov(2, isa.Imm(100))),
		w(isa.StoreDisp(1, 2, 5)), // mem[105] = r1
		w(isa.LoadDisp(3, 2, 5)),  // r3 = mem[105]
		w(isa.Nop()),              // load delay
		w(isa.Mov(4, isa.R(3))),
		halt,
	)
	run(t, c, 100)
	if c.Regs[4] != 0x1234 {
		t.Errorf("r4 = %#x, want 0x1234", c.Regs[4])
	}
	if c.Stats.Loads != 1 || c.Stats.Stores != 1 {
		t.Errorf("loads/stores = %d/%d", c.Stats.Loads, c.Stats.Stores)
	}
}

func TestLoadDelayExposesStaleValue(t *testing.T) {
	// With no interlocks, the instruction right after a load reads the
	// register's OLD value; one instruction later the new value appears.
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(7))),  // r1 = 7 (stale value)
		w(isa.Mov(2, isa.Imm(50))), // address base
		w(isa.LoadImm32(3, 99)),
		w(isa.Nop()),
		w(isa.StoreDisp(3, 2, 0)), // mem[50] = 99
		w(isa.LoadDisp(1, 2, 0)),  // r1 <- 99, delayed
		w(isa.Mov(4, isa.R(1))),   // delay slot: sees 7
		w(isa.Mov(5, isa.R(1))),   // sees 99
		halt,
	)
	run(t, c, 100)
	if c.Regs[4] != 7 {
		t.Errorf("r4 = %d, want stale 7", c.Regs[4])
	}
	if c.Regs[5] != 99 {
		t.Errorf("r5 = %d, want fresh 99", c.Regs[5])
	}
}

func TestHazardAuditorFlagsLoadUse(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(2, isa.Imm(50))),
		w(isa.LoadDisp(1, 2, 0)),
		w(isa.Mov(4, isa.R(1))), // violation: r1 not yet committed
		halt,
	)
	var hazards []Hazard
	c.SetAudit(func(h Hazard) { hazards = append(hazards, h) })
	run(t, c, 100)
	if len(hazards) != 1 {
		t.Fatalf("hazards = %v, want exactly 1", hazards)
	}
	if hazards[0].Reg != 1 || hazards[0].PC != 2 {
		t.Errorf("hazard = %+v", hazards[0])
	}
	if hazards[0].String() == "" {
		t.Error("empty hazard description")
	}
}

func TestLoadCommitDoesNotClobberYoungerWrite(t *testing.T) {
	// A load followed immediately by an ALU write of the same register:
	// the ALU write is architecturally later and must win.
	c := newTestCPU(
		w(isa.Mov(2, isa.Imm(50))),
		w(isa.LoadDisp(1, 2, 0)),   // r1 <- mem[50] (0), delayed
		w(isa.Mov(1, isa.Imm(42))), // younger write
		w(isa.Nop()),
		w(isa.Mov(3, isa.R(1))),
		halt,
	)
	run(t, c, 100)
	if c.Regs[3] != 42 {
		t.Errorf("r3 = %d, want 42 (younger ALU write must win)", c.Regs[3])
	}
}

func TestBranchDelaySlot(t *testing.T) {
	// Taken branch: the next instruction still executes.
	br := isa.Branch(isa.CmpAlw, isa.R(0), isa.R(0), "")
	br.Target = 4
	c := newTestCPU(
		w(br),                      // 0: branch to 4
		w(isa.Mov(1, isa.Imm(11))), // 1: delay slot — executes
		w(isa.Mov(2, isa.Imm(22))), // 2: skipped
		w(isa.Mov(3, isa.Imm(33))), // 3: skipped
		w(isa.Mov(4, isa.Imm(44))), // 4: target
		halt,
	)
	run(t, c, 100)
	if c.Regs[1] != 11 {
		t.Error("delay slot did not execute")
	}
	if c.Regs[2] != 0 || c.Regs[3] != 0 {
		t.Error("skipped instructions executed")
	}
	if c.Regs[4] != 44 {
		t.Error("branch target did not execute")
	}
	if c.Stats.TakenBranches != 1 {
		t.Errorf("taken branches = %d", c.Stats.TakenBranches)
	}
}

func TestUntakenBranchFallsThrough(t *testing.T) {
	br := isa.Branch(isa.CmpNev, isa.R(0), isa.R(0), "")
	br.Target = 3
	c := newTestCPU(
		w(br),
		w(isa.Mov(1, isa.Imm(1))),
		w(isa.Mov(2, isa.Imm(2))),
		halt,
	)
	run(t, c, 100)
	if c.Regs[1] != 1 || c.Regs[2] != 2 {
		t.Error("fall-through path wrong")
	}
	if c.Stats.TakenBranches != 0 || c.Stats.Branches != 1 {
		t.Errorf("branch stats = %d/%d", c.Stats.TakenBranches, c.Stats.Branches)
	}
}

func TestIndirectJumpTwoDelaySlots(t *testing.T) {
	c := newTestCPU(
		w(isa.LoadImm32(15, 6)),    // 0: target address
		w(isa.Nop()),               // 1: load delay
		w(isa.JumpInd(15)),         // 2: jump r15, delay 2
		w(isa.Mov(1, isa.Imm(11))), // 3: delay slot 1 — executes
		w(isa.Mov(2, isa.Imm(22))), // 4: delay slot 2 — executes
		w(isa.Mov(3, isa.Imm(33))), // 5: skipped
		w(isa.Mov(4, isa.Imm(44))), // 6: target
		halt,
	)
	run(t, c, 100)
	if c.Regs[1] != 11 || c.Regs[2] != 22 {
		t.Error("indirect jump delay slots did not execute")
	}
	if c.Regs[3] != 0 {
		t.Error("instruction after delay slots executed")
	}
	if c.Regs[4] != 44 {
		t.Error("indirect target did not execute")
	}
}

func TestCallLinksPastDelaySlot(t *testing.T) {
	call := isa.Call("", isa.RegLink)
	call.Target = 5
	c := newTestCPU(
		w(isa.Nop()),                // 0
		w(call),                     // 1: call 5, link = 3
		w(isa.Mov(1, isa.Imm(11))),  // 2: delay slot
		w(isa.Mov(2, isa.Imm(22))),  // 3: return lands here
		halt,                        // 4
		w(isa.Mov(3, isa.Imm(33))),  // 5: subroutine
		w(isa.JumpInd(isa.RegLink)), // 6: return, delay 2
		w(isa.Mov(4, isa.Imm(44))),  // 7: delay slot 1
		w(isa.Mov(5, isa.Imm(55))),  // 8: delay slot 2
	)
	run(t, c, 100)
	if c.Regs[1] != 11 || c.Regs[3] != 33 || c.Regs[4] != 44 || c.Regs[5] != 55 {
		t.Errorf("call path regs = %v", c.Regs[:6])
	}
	if c.Regs[2] != 22 {
		t.Error("return did not land past the delay slot")
	}
}

func TestSetConditionally(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(5))),
		w(isa.SetCond(isa.CmpEQ, 2, isa.R(1), isa.Imm(5))), // 1
		w(isa.SetCond(isa.CmpLT, 3, isa.R(1), isa.Imm(5))), // 0
		w(isa.SetCond(isa.CmpLE, 4, isa.R(1), isa.Imm(5))), // 1
		halt,
	)
	run(t, c, 100)
	if c.Regs[2] != 1 || c.Regs[3] != 0 || c.Regs[4] != 1 {
		t.Errorf("setcond results = %d,%d,%d", c.Regs[2], c.Regs[3], c.Regs[4])
	}
}

func TestByteExtractInsert(t *testing.T) {
	// The paper's load-byte sequence: ld (r0>>2),r1 ; xc r0,r1,r1
	// followed by the store-byte sequence with movlo and ic.
	c := newTestCPU(
		w(isa.LoadImm32(1, 0x41424344)),             // "ABCD"
		w(isa.Mov(2, isa.Imm(1))),                   // byte pointer 1
		w(isa.ALU(isa.OpXC, 3, isa.R(2), isa.R(1))), // r3 = 'B'
		// Now replace byte 2 with 'x' (0x78).
		w(isa.Mov(4, isa.Imm(2))),
		w(isa.ALU(isa.OpMovLo, 0, isa.R(4), isa.Operand{})),
		w(isa.Mov(5, isa.Imm(0x78))),
		w(isa.ALU(isa.OpIC, 1, isa.R(5), isa.R(1))),
		halt,
	)
	run(t, c, 100)
	if c.Regs[3] != 0x42 {
		t.Errorf("extract = %#x, want 0x42", c.Regs[3])
	}
	if c.Regs[1] != 0x41427844 {
		t.Errorf("insert = %#x, want 0x41427844", c.Regs[1])
	}
}

func TestExtractInsertByteHelpers(t *testing.T) {
	w := uint32(0x11223344)
	for i, want := range []uint32{0x11, 0x22, 0x33, 0x44} {
		if got := ExtractByte(w, uint32(i)); got != want {
			t.Errorf("ExtractByte(%d) = %#x, want %#x", i, got, want)
		}
		// Pointers are taken mod 4.
		if got := ExtractByte(w, uint32(i+8)); got != want {
			t.Errorf("ExtractByte(%d) = %#x, want %#x", i+8, got, want)
		}
	}
	if got := InsertByte(w, 0, 0xAA); got != 0xAA223344 {
		t.Errorf("InsertByte(0) = %#x", got)
	}
	if got := InsertByte(w, 3, 0x1BB); got != 0x112233BB {
		t.Errorf("InsertByte(3) = %#x (high source bits must be ignored)", got)
	}
}

func TestTrapSavesStateAndTrapCode(t *testing.T) {
	// Handler at 0 reads the surprise register and halts via the hook.
	c := newTestCPU(
		w(isa.ReadSpecial(1, isa.SpecSurprise)), // 0: handler
		halt,                                    // 1
		w(isa.Nop()),                            // 2
		w(isa.Nop()),                            // 3
		w(isa.Trap(77)),                         // 4: user trap
		w(isa.Mov(2, isa.Imm(9))),               // 5: return address 0
	)
	c.SetPC(4)
	run(t, c, 100)
	sur := isa.Surprise(c.Regs[1])
	p1, _ := sur.Causes()
	if p1 != isa.CauseTrap {
		t.Errorf("cause = %s, want trap", p1)
	}
	if sur.TrapCode() != 77 {
		t.Errorf("trap code = %d, want 77", sur.TrapCode())
	}
	// A trap completes; the saved return addresses resume after it.
	if c.Ret[0] != 5 || c.Ret[1] != 6 || c.Ret[2] != 7 {
		t.Errorf("ret = %v, want [5 6 7]", c.Ret)
	}
	if !sur.Supervisor() {
		t.Error("exception entry must raise privilege")
	}
}

func TestOverflowTrap(t *testing.T) {
	big := isa.LoadImm32(1, 0x7FFFFFFF)
	c := newTestCPU(
		halt, // 0: handler
		w(big),
		w(isa.Nop()),
		w(isa.ALU(isa.OpAdd, 2, isa.R(1), isa.Imm(1))), // overflow
		w(isa.Mov(3, isa.Imm(5))),
	)
	c.Sur = c.Sur.SetOverflow(true)
	c.SetPC(1)
	run(t, c, 100)
	p1, _ := c.Sur.Causes()
	if p1 != isa.CauseOverflow {
		t.Errorf("cause = %s, want overflow", p1)
	}
	if c.Regs[2] != 0 {
		t.Error("overflowing result must not be written")
	}
	// The faulting instruction is return address 0 (it did not complete).
	if c.Ret[0] != 3 {
		t.Errorf("ret0 = %d, want 3", c.Ret[0])
	}
}

func TestOverflowIgnoredWhenDisabled(t *testing.T) {
	big := isa.LoadImm32(1, 0x7FFFFFFF)
	c := newTestCPU(
		w(big),
		w(isa.Nop()),
		w(isa.ALU(isa.OpAdd, 2, isa.R(1), isa.Imm(1))),
		halt,
	)
	run(t, c, 100)
	if c.Regs[2] != 0x80000000 {
		t.Errorf("r2 = %#x, want wrapped 0x80000000", c.Regs[2])
	}
	if c.Stats.Exceptions[isa.CauseOverflow] != 0 {
		t.Error("overflow trapped while disabled")
	}
}

func TestDataFaultSuppressesALUWriteInSameWord(t *testing.T) {
	// A packed word whose store faults must also suppress its ALU
	// piece's write, so the word restarts cleanly (paper §3.3).
	add := isa.ALU(isa.OpAdd, 1, isa.R(1), isa.Imm(1))
	st := isa.StoreDisp(2, 3, 0) // r3 = huge address -> fault
	packed, ok := isa.Pack(add, st)
	if !ok {
		t.Fatal("pack failed")
	}
	c := newTestCPU(
		halt, // 0: handler
		w(isa.LoadImm32(3, 0x7FFFFFFF)),
		w(isa.Nop()),
		packed, // 3
	)
	c.SetPC(1)
	run(t, c, 100)
	if c.Regs[1] != 0 {
		t.Errorf("r1 = %d; ALU write must be suppressed on memory fault", c.Regs[1])
	}
	if c.Ret[0] != 3 {
		t.Errorf("ret0 = %d, want the faulting word", c.Ret[0])
	}
	p1, _ := c.Sur.Causes()
	if p1 != isa.CausePageFault {
		t.Errorf("cause = %s", p1)
	}
}

func TestOverflowPrimaryOverMemFaultSecondary(t *testing.T) {
	// When one word raises both an overflow (ALU piece) and a memory
	// fault, the overflow is logically first: primary cause overflow,
	// secondary the fault.
	add := isa.ALU(isa.OpAdd, 2, isa.R(2), isa.R(2))
	ld := isa.LoadDisp(4, 3, 0)
	packed, ok := isa.Pack(add, ld)
	if !ok {
		t.Fatal("pack failed")
	}
	c := newTestCPU(
		halt,
		w(isa.LoadImm32(2, 0x40000000)),
		w(isa.LoadImm32(3, 0x7FFFFFFF)),
		w(isa.Nop()),
		packed,
	)
	c.Sur = c.Sur.SetOverflow(true)
	c.SetPC(1)
	run(t, c, 100)
	p1, p2 := c.Sur.Causes()
	if p1 != isa.CauseOverflow || p2 != isa.CausePageFault {
		t.Errorf("causes = %s/%s, want overflow/pagefault", p1, p2)
	}
}

func TestPrivilegeEnforcement(t *testing.T) {
	c := newTestCPU(
		halt,                                    // 0: handler
		w(isa.WriteSpecial(isa.SpecSegBase, 1)), // 1: privileged
	)
	c.Sur = c.Sur.SetSupervisor(false)
	c.SetPC(1)
	run(t, c, 100)
	p1, _ := c.Sur.Causes()
	if p1 != isa.CausePrivilege {
		t.Errorf("cause = %s, want privilege", p1)
	}
	if c.Ret[0] != 1 {
		t.Errorf("ret0 = %d", c.Ret[0])
	}
}

func TestUserMayAccessByteSelector(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(2))),
		w(isa.ALU(isa.OpMovLo, 0, isa.R(1), isa.Operand{})),
		w(isa.ReadSpecial(2, isa.SpecLo)),
		halt,
	)
	c.Sur = c.Sur.SetSupervisor(false)
	// Trap 0 still reaches the hook even at user level.
	run(t, c, 100)
	if c.Regs[2] != 2 {
		t.Errorf("lo readback = %d", c.Regs[2])
	}
	if c.Stats.Exceptions[isa.CausePrivilege] != 0 {
		t.Error("byte selector access must not require privilege")
	}
}

func TestRFEResumesThroughIndirectJumpDelay(t *testing.T) {
	// The paper's motivating case for three return addresses: an
	// exception hits the instruction after an indirect jump; resumption
	// must execute the offending instruction, its successor, and then
	// the branch target.
	c := newTestCPU(
		// Handler: clear r5 as a marker, then rfe.
		w(isa.Mov(5, isa.Imm(1))),  // 0
		w(isa.RFE()),               // 1
		w(isa.Nop()),               // 2
		w(isa.LoadImm32(15, 8)),    // 3: target = 8
		w(isa.Nop()),               // 4
		w(isa.JumpInd(15)),         // 5: delay 2
		w(isa.Trap(3)),             // 6: delay slot 1 — traps
		w(isa.Mov(2, isa.Imm(22))), // 7: delay slot 2
		w(isa.Mov(3, isa.Imm(33))), // 8: target
		halt,                       // 9
	)
	c.SetPC(3)
	run(t, c, 100)
	if c.Regs[5] != 1 {
		t.Fatal("handler did not run")
	}
	// Trap completes: ret = [7, 8, 9]? No — the trap is in the delay
	// slot, so the pending target is already queued: ret = [7, 8, ...]
	// with 8 the jump target.
	if c.Ret[0] != 7 || c.Ret[1] != 8 {
		t.Errorf("ret = %v", c.Ret)
	}
	if c.Regs[2] != 22 || c.Regs[3] != 33 {
		t.Errorf("resume path wrong: r2=%d r3=%d", c.Regs[2], c.Regs[3])
	}
}

func TestInterruptTakenBetweenInstructions(t *testing.T) {
	c := newTestCPU(
		// Handler: note the interrupt, clear the line, halt.
		w(isa.Mov(7, isa.Imm(1))), // 0
		halt,                      // 1
		w(isa.Nop()),              // 2
		w(isa.Mov(1, isa.Imm(5))), // 3: main
		w(isa.Mov(2, isa.Imm(6))), // 4
	)
	// Interrupts are deferred in supervisor state, so run at user level.
	c.Sur = c.Sur.SetSupervisor(false).SetInterrupts(true)
	// The test raises the line externally between two specific
	// instructions, which needs per-instruction Step granularity; the
	// superblock engine would run the whole straight-line block in the
	// first Step, before the line rises.
	c.SetBlocks(false)
	c.SetPC(3)
	if err := c.Step(); err != nil { // executes instr 3
		t.Fatal(err)
	}
	c.Interrupt(true)
	run(t, c, 100)
	if c.Regs[7] != 1 {
		t.Error("interrupt handler did not run")
	}
	p1, _ := c.Sur.Causes()
	if p1 != isa.CauseInterrupt {
		t.Errorf("cause = %s", p1)
	}
	// The interrupted instruction (4) had not started.
	if c.Ret[0] != 4 {
		t.Errorf("ret0 = %d, want 4", c.Ret[0])
	}
	if c.Regs[2] != 0 {
		t.Error("instruction after interrupt point executed")
	}
}

func TestInterruptMaskedWhenDisabled(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(5))),
		halt,
	)
	c.Interrupt(true) // interrupts disabled by default
	run(t, c, 100)
	if c.Stats.Exceptions[isa.CauseInterrupt] != 0 {
		t.Error("masked interrupt was taken")
	}
	if c.Regs[1] != 5 {
		t.Error("program did not run")
	}
}

func TestFreeCycleAccounting(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(50))),
		w(isa.StoreDisp(1, 1, 0)), // uses the data port
		w(isa.Mov(2, isa.Imm(2))), // free
		w(isa.LoadDisp(3, 1, 0)),  // uses the data port
		w(isa.Nop()),              // free
		halt,                      // free (trap)
	)
	run(t, c, 100)
	if c.Stats.DataCycles != 2 {
		t.Errorf("data cycles = %d, want 2", c.Stats.DataCycles)
	}
	if c.Stats.FreeCycles != 4 {
		t.Errorf("free cycles = %d, want 4", c.Stats.FreeCycles)
	}
	got := c.Stats.FreeBandwidthFraction()
	if got < 0.66 || got > 0.67 {
		t.Errorf("free fraction = %f", got)
	}
}

func TestDMADrainsFreeCycles(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(1))),
		w(isa.Mov(2, isa.Imm(2))),
		w(isa.Mov(3, isa.Imm(3))),
		w(isa.Mov(4, isa.Imm(4))),
		halt,
	)
	c.Bus.MMU.Phys.Poke(10, 0xAB)
	dma := mem.NewDMA(c.Bus.MMU.Phys)
	c.Bus.DMA = dma
	dma.Queue(mem.Transfer{Src: 10, Dst: 20, Words: 1})
	run(t, c, 100)
	if c.Bus.MMU.Phys.Peek(20) != 0xAB {
		t.Error("DMA transfer did not complete on free cycles")
	}
	if c.Stats.DMACycles != 2 {
		t.Errorf("DMA cycles = %d, want 2", c.Stats.DMACycles)
	}
}

func TestMappedExecution(t *testing.T) {
	// User process with PID 1, 64K-word space, text mapped at virtual 0.
	phys := mem.NewPhysical(1 << 16)
	c := New(NewBus(phys))
	c.SetTrapHook(func(code uint16) {
		if code == 0 {
			c.Halt()
		}
	})
	// Physical frame 4 holds the user text (IMem is physically indexed).
	c.IMem = make([]isa.Instr, 6<<mem.PageBits)
	base := uint32(4) << mem.PageBits
	text := []isa.Instr{
		w(isa.Mov(1, isa.Imm(50))),
		w(isa.StoreDisp(1, 1, 0)), // virtual word 50
		w(isa.LoadDisp(2, 1, 0)),
		w(isa.Nop()),
		halt,
	}
	copy(c.IMem[base:], text)
	c.Bus.MMU.Seg = mem.NewSegUnit(1, 16)
	// System virtual page for PID 1, page 0 -> frame 4 (text+data).
	sysPage := uint32(1) << 16 >> mem.PageBits
	c.Bus.MMU.Map.Map(sysPage, 4, true)
	c.Sur = c.Sur.SetSupervisor(false).SetMapping(true)
	c.SetPC(0)
	run(t, c, 100)
	if c.Regs[2] != 50 {
		t.Errorf("r2 = %d", c.Regs[2])
	}
	// The store landed in frame 4.
	if phys.Peek(base+50) != 50 {
		t.Error("mapped store landed in the wrong frame")
	}
}

func TestFetchFaultOnUnmappedPage(t *testing.T) {
	phys := mem.NewPhysical(1 << 16)
	c := New(NewBus(phys))
	c.IMem = make([]isa.Instr, 16)
	c.IMem[0] = halt // handler
	c.SetTrapHook(func(code uint16) {
		if code == 0 {
			c.Halt()
		}
	})
	c.Bus.MMU.Seg = mem.NewSegUnit(0, 16)
	c.Sur = c.Sur.SetSupervisor(false).SetMapping(true)
	c.SetPC(5) // no page mapped
	run(t, c, 100)
	p1, _ := c.Sur.Causes()
	if p1 != isa.CausePageFault {
		t.Errorf("cause = %s, want pagefault", p1)
	}
	if c.Ret[0] != 5 {
		t.Errorf("ret0 = %d, want faulting pc", c.Ret[0])
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	c := newTestCPU(
		halt,        // 0: handler
		isa.Instr{}, // 1: empty word decodes as illegal
	)
	c.SetPC(1)
	run(t, c, 100)
	p1, _ := c.Sur.Causes()
	if p1 != isa.CauseIllegal {
		t.Errorf("cause = %s, want illegal", p1)
	}
}

func TestSpecialRegisterRoundTrips(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(3))),
		w(isa.WriteSpecial(isa.SpecRet0, 1)),
		w(isa.ReadSpecial(2, isa.SpecRet0)),
		w(isa.Mov(3, isa.Imm(18))),
		w(isa.WriteSpecial(isa.SpecSegLimit, 3)),
		w(isa.ReadSpecial(4, isa.SpecSegLimit)),
		halt,
	)
	run(t, c, 100)
	if c.Regs[2] != 3 {
		t.Errorf("ret0 round trip = %d", c.Regs[2])
	}
	if c.Regs[4] != 18 {
		t.Errorf("seglimit round trip = %d", c.Regs[4])
	}
}

func TestPackedWordAutoIncrementIdiom(t *testing.T) {
	// ld 0(r1) packed with add r1,#1: the load uses the old r1, the add
	// bumps it — the "auto increment" behavior of §3.3.
	ld := isa.LoadDisp(2, 1, 0)
	add := isa.ALU(isa.OpAdd, 1, isa.R(1), isa.Imm(1))
	packed, ok := isa.Pack(add, ld)
	if !ok {
		t.Fatal("pack failed")
	}
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(50))),
		packed,
		w(isa.Nop()),
		w(isa.Mov(3, isa.R(2))),
		halt,
	)
	c.Bus.MMU.Phys.Poke(50, 1234)
	c.Bus.MMU.Phys.Poke(51, 9999)
	run(t, c, 100)
	if c.Regs[3] != 1234 {
		t.Errorf("load used wrong address: r3 = %d", c.Regs[3])
	}
	if c.Regs[1] != 51 {
		t.Errorf("pointer not bumped: r1 = %d", c.Regs[1])
	}
}

func TestMStepMultiplyLoop(t *testing.T) {
	// 13 * 11 via the multiply-step primitive: acc += x when y is odd,
	// then shift x left and y right, eight times is enough for 4-bit y.
	var prog []isa.Instr
	prog = append(prog,
		w(isa.Mov(1, isa.Imm(13))), // x
		w(isa.Mov(2, isa.Imm(11))), // y
		w(isa.Mov(3, isa.Imm(0))),  // acc
	)
	for i := 0; i < 8; i++ {
		prog = append(prog,
			w(isa.ALU(isa.OpMStep, 3, isa.R(1), isa.R(2))),
			w(isa.ALU(isa.OpSll, 1, isa.R(1), isa.Imm(1))),
			w(isa.ALU(isa.OpSrl, 2, isa.R(2), isa.Imm(1))),
		)
	}
	prog = append(prog, halt)
	c := newTestCPU(prog...)
	run(t, c, 100)
	if c.Regs[3] != 143 {
		t.Errorf("mstep product = %d, want 143", c.Regs[3])
	}
}

func TestRunStepLimit(t *testing.T) {
	// An infinite loop must hit the step limit, not hang.
	loop := isa.Jump("")
	loop.Target = 0
	c := newTestCPU(w(loop), w(isa.Nop()))
	if _, err := c.Run(50); err == nil {
		t.Error("expected step-limit error")
	}
}

func TestResetRestoresPowerUpState(t *testing.T) {
	c := newTestCPU(
		w(isa.Mov(1, isa.Imm(9))),
		halt,
	)
	run(t, c, 10)
	c.Reset()
	if c.Halted || c.PC() != 0 || c.Regs[1] != 0 {
		t.Error("reset did not restore power-up state")
	}
	if !c.Sur.Supervisor() {
		t.Error("reset must enter supervisor state")
	}
	p1, _ := c.Sur.Causes()
	if p1 != isa.CauseReset {
		t.Errorf("reset cause = %s", p1)
	}
}

func TestLoadImageSetsUpMachine(t *testing.T) {
	im := isa.NewImage()
	im.TextBase = 8
	im.Entry = 8
	im.Words = []isa.Instr{
		w(isa.LoadAbs(1, 100)),
		w(isa.Nop()),
		halt,
	}
	im.Data[100] = 777
	c := newTestCPU()
	if err := c.LoadImage(im); err != nil {
		t.Fatalf("load: %v", err)
	}
	run(t, c, 100)
	if c.Regs[1] != 777 {
		t.Errorf("r1 = %d", c.Regs[1])
	}
}

func TestStatsString(t *testing.T) {
	c := newTestCPU(w(isa.Mov(1, isa.Imm(1))), halt)
	run(t, c, 10)
	if c.Stats.String() == "" {
		t.Error("empty stats string")
	}
}
