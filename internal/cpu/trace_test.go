package cpu

import (
	"testing"

	"mips/internal/isa"
	"mips/internal/mem"
)

// tracesCPU builds the standard counted loop with the full trace tier
// enabled (the construction default); the helper exists so the intent
// reads at the call site next to blocksCPU/fast/reference variants.
func tracesCPU(n int32) *CPU {
	c := loopCPU(n)
	c.SetTraces(true)
	return c
}

// TestTracesLoopMatchesBlocks runs the counted loop on the trace tier,
// the plain superblock engine, the fast path, and the reference
// interpreter, and requires strictly identical architectural state and
// statistics. The trace tier must also have actually worked: formed,
// compiled, and dispatched through at least one trace — a loop that
// never leaves the superblock engine is not exercising the tentpole.
func TestTracesLoopMatchesBlocks(t *testing.T) {
	trc := tracesCPU(6000)
	run(t, trc, 1_000_000)

	blk := loopCPU(6000)
	blk.SetTraces(false)
	run(t, blk, 1_000_000)

	fast := loopCPU(6000)
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)

	ref := loopCPU(6000)
	ref.SetTraces(false)
	ref.SetBlocks(false)
	ref.SetFastPath(false)
	run(t, ref, 1_000_000)

	if trc.Regs != blk.Regs || trc.Regs != fast.Regs || trc.Regs != ref.Regs {
		t.Errorf("registers diverge:\n traces %v\n blocks %v\n   fast %v\n    ref %v",
			trc.Regs, blk.Regs, fast.Regs, ref.Regs)
	}
	if trc.Stats != blk.Stats || trc.Stats != fast.Stats || trc.Stats != ref.Stats {
		t.Errorf("stats diverge:\n traces %+v\n blocks %+v\n   fast %+v\n    ref %+v",
			trc.Stats, blk.Stats, fast.Stats, ref.Stats)
	}
	if trc.Regs[2] != 30000 {
		t.Errorf("r2 = %d, want 30000", trc.Regs[2])
	}
	if trc.Trans.TraceFormed == 0 || trc.Trans.TraceCompiled == 0 {
		t.Errorf("loop never compiled a trace (formed=%d compiled=%d)",
			trc.Trans.TraceFormed, trc.Trans.TraceCompiled)
	}
	if trc.Trans.TraceDispatchHits == 0 {
		t.Error("loop never dispatched through a compiled trace")
	}
	if blk.Trans.TraceFormed != 0 {
		t.Error("blocks-only run formed traces")
	}
}

// descendingStoreCPU builds a loop whose store pointer r4 walks down
// one word per iteration from base: the store lands in plain data until
// r4 crosses into the loop's own text, at which point the write barrier
// fires from inside the loop's own store. Choose base so the crossing
// happens long after the trace tier is warm.
func descendingStoreCPU(iters, base int32) *CPU {
	br := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	br.Target = 2
	return newTestCPU(
		w(isa.LoadImm32(1, iters)),                     // 0
		w(isa.LoadImm32(4, base)),                      // 1
		w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1))), // 2: loop body
		w(isa.ALU(isa.OpSub, 4, isa.R(4), isa.Imm(1))), // 3
		w(isa.StoreDisp(2, 4, 0)),                      // 4: [r4] := r2
		w(isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1))), // 5
		w(br),        // 6: bne r1, #0, 2
		w(isa.Nop()), // 7: branch delay
		halt,         // 8
	)
}

// TestTraceSelfModifyStore covers the store-into-own-trace invalidation
// path. The loop runs clean long enough for the trace tier to compile
// its path, then the descending store pointer crosses into the loop's
// own text: the write barrier drops the trace from inside its own store
// closure, which must notice tr.valid going false and exit at the
// store's exact instruction boundary. Instruction memory is untouched,
// so architectural results must match the fast path exactly; no stale
// trace may ever replay.
func TestTraceSelfModifyStore(t *testing.T) {
	const iters, base = 280, 286
	trc := descendingStoreCPU(iters, base)
	trc.SetTraces(true)
	// Chain depth 1 makes every loop iteration its own Step, so the
	// heat counter warms in tens of iterations instead of thousands;
	// chain depth is pure dispatch and never changes architecture.
	trc.SetChainFollow(1)
	run(t, trc, 1_000_000)

	fast := descendingStoreCPU(iters, base)
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)

	if trc.Regs != fast.Regs {
		t.Errorf("registers diverge:\n traces %v\n   fast %v", trc.Regs, fast.Regs)
	}
	if trc.Stats != fast.Stats {
		t.Errorf("stats diverge:\n traces %+v\n   fast %+v", trc.Stats, fast.Stats)
	}
	if want := uint32(iters); trc.Regs[2] != want {
		t.Errorf("r2 = %d, want %d", trc.Regs[2], want)
	}
	if trc.Trans.TraceCompiled == 0 {
		t.Fatal("loop never compiled a trace; the case is not exercised")
	}
	if trc.Trans.TraceInvalidations == 0 {
		t.Error("store into compiled trace text never tripped the write barrier")
	}
	if trc.Trans.TraceGuardExits == 0 {
		t.Error("no trace exited early; the store-into-own-trace exit never ran")
	}
}

// TestTraceDMAQuietGuard pins the trace tier's quiet-environment rule:
// a machine with a DMA engine attached must never form a trace (DMA
// writes can land between any two instructions, including into trace
// text mid-pass), degrading to the superblock engine whose per-write
// barrier handles the invalidation. Results must match the fast path
// with the identical DMA schedule.
func TestTraceDMAQuietGuard(t *testing.T) {
	build := func() *CPU {
		c := loopCPU(5000)
		c.SetTraces(true)
		dma := mem.NewDMA(c.Bus.MMU.Phys)
		c.Bus.DMA = dma
		// Dst 0 overwrites physical words 0..7: the loop's text range.
		dma.Queue(mem.Transfer{Src: 0x4000, Dst: 0, Words: 8})
		return c
	}
	trc := build()
	run(t, trc, 1_000_000)

	fast := build()
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)

	if trc.Regs != fast.Regs {
		t.Errorf("registers diverge:\n traces %v\n   fast %v", trc.Regs, fast.Regs)
	}
	if trc.Stats != fast.Stats {
		t.Errorf("stats diverge:\n traces %+v\n   fast %+v", trc.Stats, fast.Stats)
	}
	if trc.Stats.DMACycles == 0 {
		t.Fatal("DMA consumed no free cycles; the guard was not exercised")
	}
	if trc.Trans.TraceFormed != 0 || trc.Trans.TraceCompiled != 0 {
		t.Errorf("traces formed with a DMA engine attached (formed=%d compiled=%d); the quiet-environment guard leaked",
			trc.Trans.TraceFormed, trc.Trans.TraceCompiled)
	}
	if trc.Trans.BlockChained == 0 {
		t.Error("loop ran without superblock chaining; degradation did not reach the block tier")
	}
}

// TestTracePatchBetweenSteps is the harness self-modification contract
// applied to the trace tier: a writer that patches code between Steps
// must rewrite IMem and Poke the physical word; the Poke must drop the
// covering compiled trace so the patch takes effect on the very next
// Step, even though trace dispatch skips per-entry revalidation.
func TestTracePatchBetweenSteps(t *testing.T) {
	const iters = 5000
	c := tracesCPU(iters)
	patched := false
	var left uint32
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		// Patch only at a loop-head Step boundary, after the trace tier
		// is warm, so the remaining iteration count is exact: switch the
		// accumulator step from +r3 (5) to +1.
		if !patched && c.PC() == 2 && c.Trans.TraceDispatchHits > 0 && c.Regs[1] > 0 {
			patched = true
			left = c.Regs[1]
			c.IMem[2] = w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1)))
			c.Bus.MMU.Phys.Poke(2, 0)
		}
	}
	if !patched {
		t.Fatal("patch point never reached with a warm trace tier")
	}
	if want := (iters-left)*5 + left; c.Regs[2] != want {
		t.Errorf("r2 = %d, want %d (stale trace executed after patch)", c.Regs[2], want)
	}
	if c.Trans.TraceDispatchHits == 0 {
		t.Error("loop never dispatched through a compiled trace")
	}
	if c.Trans.TraceInvalidations == 0 {
		t.Error("Poke into compiled trace text never dropped the trace")
	}
}

// TestTraceEngineToggle switches the trace tier on and off mid-run;
// machine state is shared with the lower tiers, so execution must
// continue seamlessly from any Step boundary.
func TestTraceEngineToggle(t *testing.T) {
	c := tracesCPU(3000)
	on := true
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		on = !on
		c.SetTraces(on)
	}
	if c.Regs[2] != 15000 {
		t.Errorf("r2 = %d, want 15000", c.Regs[2])
	}
}

// TestTraceChainFollowKnob pins the tunable chain-depth limit: depth 1
// must still execute correctly (every pass returns to the dispatcher),
// and a deeper limit must reduce the number of Step calls needed for
// the same work, which is the knob's whole point.
func TestTraceChainFollowKnob(t *testing.T) {
	stepsFor := func(follow int) (int, *CPU) {
		c := tracesCPU(4000)
		c.SetChainFollow(follow)
		steps := 0
		for !c.Halted {
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
			steps++
		}
		return steps, c
	}
	shallowSteps, shallow := stepsFor(1)
	deepSteps, deep := stepsFor(64)
	if shallow.Regs != deep.Regs || shallow.Stats != deep.Stats {
		t.Errorf("chain depth changed architectural state:\n depth1 %+v\n depth64 %+v",
			shallow.Stats, deep.Stats)
	}
	if shallow.Regs[2] != 20000 {
		t.Errorf("r2 = %d, want 20000", shallow.Regs[2])
	}
	if deepSteps >= shallowSteps {
		t.Errorf("deep chaining took %d steps, shallow %d; the knob has no effect", deepSteps, shallowSteps)
	}
	if got := deep.ChainFollow(); got != 64 {
		t.Errorf("ChainFollow() = %d, want 64", got)
	}
}
