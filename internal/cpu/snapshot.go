package cpu

import (
	"fmt"

	"mips/internal/isa"
	"mips/internal/mem"
)

// State is the complete architectural state of the processor at an
// instruction boundary: everything a restored CPU needs to continue the
// exact event stream of the original. The translation caches (predecode
// records, superblocks, and the staging area) are deliberately absent —
// they are derived state, rebuilt on demand, and dropping them cannot
// change observable behavior (Trans counts live outside Stats for the
// same reason).
type State struct {
	Regs [isa.NumRegs]uint32
	Lo   uint32
	Sur  isa.Surprise
	Ret  [3]uint32

	// PCQ/PCN are the fetch queue: in-flight delayed-branch targets.
	PCQ [pcqCap]uint32
	PCN int

	// Pend holds load results not yet visible in the register file.
	Pend []PendingLoad

	Seq       uint64
	ExcSeq    uint64
	LastWrite [isa.NumRegs]uint64

	IntLine     bool
	Halted      bool
	Interlocked bool

	Stats Stats
	Trans TranslationStats

	// IMem is the full instruction memory, physically indexed.
	IMem []isa.Instr
	// LastFault is the external mapping unit's fault latch.
	LastFault *mem.Fault
}

// PendingLoad is one in-flight delayed load write.
type PendingLoad struct {
	Reg      isa.Reg
	Val      uint32
	IssuedAt uint64
	CommitAt uint64
}

// CaptureState snapshots the processor's architectural state. It must
// be called at an instruction boundary (between Step calls); the
// returned State shares nothing with the CPU.
func (c *CPU) CaptureState() State {
	st := State{
		Regs:        c.Regs,
		Lo:          c.Lo,
		Sur:         c.Sur,
		Ret:         c.Ret,
		PCQ:         c.pcq,
		PCN:         c.pcn,
		Seq:         c.seq,
		ExcSeq:      c.excSeq,
		LastWrite:   c.lastWrite,
		IntLine:     c.intLine,
		Halted:      c.Halted,
		Interlocked: c.Interlocked,
		Stats:       c.Stats,
		Trans:       c.Trans,
	}
	for i := 0; i < c.pendN; i++ {
		w := c.pend[i]
		st.Pend = append(st.Pend, PendingLoad{
			Reg: w.reg, Val: w.val, IssuedAt: w.issuedAt, CommitAt: w.commitAt,
		})
	}
	st.IMem = make([]isa.Instr, len(c.IMem))
	copy(st.IMem, c.IMem)
	if f := c.Bus.LastFault; f != nil {
		fc := *f
		st.LastFault = &fc
	}
	return st
}

// RestoreState replaces the processor's architectural state with a
// previous capture. The predecode, superblock, and trace caches are dropped —
// they rebuild against the restored instruction memory — so the restored
// machine produces the exact event stream the original would have,
// though its translation-layer counters (Trans) diverge by the warm-up.
func (c *CPU) RestoreState(st State) error {
	if st.PCN < 1 || st.PCN > pcqCap {
		return fmt.Errorf("cpu: restore: fetch queue depth %d out of range", st.PCN)
	}
	if len(st.Pend) > len(c.pend) {
		return fmt.Errorf("cpu: restore: %d pending loads exceed capacity %d", len(st.Pend), len(c.pend))
	}
	c.Regs = st.Regs
	c.Lo = st.Lo
	c.Sur = st.Sur
	c.Ret = st.Ret
	c.pcq = st.PCQ
	c.pcn = st.PCN
	c.pendN = len(st.Pend)
	for i, w := range st.Pend {
		c.pend[i] = delayedWrite{reg: w.Reg, val: w.Val, issuedAt: w.IssuedAt, commitAt: w.CommitAt}
	}
	c.seq = st.Seq
	c.excSeq = st.ExcSeq
	c.lastWrite = st.LastWrite
	c.intLine = st.IntLine
	c.Halted = st.Halted
	c.Interlocked = st.Interlocked
	c.Stats = st.Stats
	c.Trans = st.Trans
	c.nstage = 0
	c.IMem = make([]isa.Instr, len(st.IMem))
	copy(c.IMem, st.IMem)
	c.Bus.LastFault = nil
	if st.LastFault != nil {
		fc := *st.LastFault
		c.Bus.LastFault = &fc
	}
	c.InvalidateDecoded()
	c.InvalidateTraces()
	c.InvalidateBlocks()
	return nil
}
