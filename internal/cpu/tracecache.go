package cpu

// The trace cache: the fourth execution tier's data structures and
// their coherence machinery. A trace is a hot multi-block path — body
// words, terminators, and delay slots of several superblocks, fused
// across taken branches — compiled to a flat array of specialized Go
// closures (trace_compile.go). Formation is profile-guided: per-entry-PC
// heat counters trigger a one-Step path recording through the block
// engine, and the recorded path compiles if every word on it can be
// specialized (trace_form.go).
//
// Coherence reuses the superblock write barrier: a trace keeps the span
// list of the words it compiled from, marks them in the coverage bitmap,
// and writeBarrier drops any trace whose span covers a written physical
// word. Like chain edges, traces trust the barrier rather than
// revalidating every word per dispatch — the same harness contract as
// PR 4: rewrite IMem AND Poke physical. Traces are derived state:
// snapshots exclude them, and LoadImage/RestoreState drop them.

const (
	// tcEntries is the trace cache size, direct-mapped by entry PC.
	// Trace entry points are far sparser than block entries.
	tcEntries = 1 << 8

	// heatEntries sizes the direct-mapped heat table; heatThreshold is
	// how many trace-tier dispatch misses an entry PC accumulates
	// before a path recording triggers. The threshold can sit this low
	// because recordings no longer depend on how deeply the block
	// engine has chained (the recording loop resolves successors
	// through the block cache itself) and a transiently short path
	// backs off instead of poisoning, so early recording costs little
	// and short programs reach the trace tier while they still matter.
	heatEntries   = 1 << 9
	heatThreshold = 8

	// traceMaxBlocks bounds how many superblocks one recording may
	// fuse; traceMaxOps bounds the compiled op count.
	traceMaxBlocks = 16
	traceMaxOps    = 256

	// sideThreshold is how many times one op's guard must exit toward
	// the same unresolved continuation before a side stub is compiled
	// for it. Lower than heatThreshold: the parent trace being hot is
	// already established, only the exit's own heat is in question.
	sideThreshold = 16
)

// traceOp is one compiled trace operation: a specialized closure over
// its operands, statistics prefix, and exit queues. It returns true to
// continue the trace, false after exiting it (having already restored
// the fetch queue, accounted the executed prefix, and raised any
// exception) — always at an exact instruction boundary.
type traceOp func(c *CPU) bool

// traceCost is the execution cost of a run of trace ops, precomputed at
// compile time: the bulk statistics a clean pass adds, and (captured
// per closure) the exact prefix an early exit accounts instead.
type traceCost struct {
	instr, cycles, pieces, nops uint64
	loads, stores               uint64
	branches, taken             uint64
	data, free                  uint64
}

// add accumulates a cost into the CPU statistics.
func (tc *traceCost) add(s *Stats) {
	s.Instructions += tc.instr
	s.Cycles += tc.cycles
	s.Pieces += tc.pieces
	s.Nops += tc.nops
	s.Loads += tc.loads
	s.Stores += tc.stores
	s.Branches += tc.branches
	s.TakenBranches += tc.taken
	s.DataCycles += tc.data
	s.FreeCycles += tc.free
}

// traceSpan is one contiguous instruction-memory range a trace compiled
// from (one recorded superblock's covered words).
type traceSpan struct {
	pa uint32
	n  uint32
}

// sideSlot is one compiled op's side-exit state: how hot its guard
// exits run, the side stub compiled for a branch guard's cold arm, and
// the small inline target cache of an indirect guard (MRU entry first).
// All of it is derived state rebuilt on demand: validity is checked on
// every use, and a dropped stub re-forms from live instruction memory.
type sideSlot struct {
	hot   uint32 // exits observed since the last build (sideNever: poisoned)
	br    *trace // cold-arm stub of a branch-direction guard
	icTgt [2]uint32
	ic    [2]*trace // indirect-target stubs keyed by icTgt
}

// sideNever poisons a side slot whose continuation cannot compile, so
// steady state stops re-attempting (and re-allocating) the build. A
// rebuilt parent trace allocates fresh slots.
const sideNever = ^uint32(0)

// trace is one compiled trace: the flat closure array, the bulk cost of
// a clean pass, the resume point after it, and the coherence spans.
type trace struct {
	pa    uint32 // entry PC (physical == virtual: traces run unmapped only)
	ops   []traceOp
	cost  traceCost
	endPC uint32 // sequential resume point after a clean pass
	spans []traceSpan

	valid   bool
	warm    bool // dispatched at least once (gates the dispatch-cold event)
	side    bool // a side stub: reached by exit-to-entry chaining, not the cache
	liveIdx int  // index in CPU.liveTraces, for swap-removal

	// sides holds per-op side-exit state, indexed like ops. Allocated at
	// compile time so the dispatch path never allocates; side stubs keep
	// it nil (their words carry no resolvable guards).
	sides []sideSlot

	// Per-site introspection history, written by the CPU goroutine and
	// read by TraceSites via atomic loads: dispatches, instructions
	// retired inside this trace, guard exits by reason, and exits
	// resolved in-tier (side stubs and inline caches).
	hits     uint64
	instrs   uint64
	sideHits uint64
	icHits   uint64
	deopts   [NumDeoptReasons]uint64
}

// covers reports whether a physical word address falls inside any span.
func (tr *trace) covers(addr uint32) bool {
	for _, sp := range tr.spans {
		if addr-sp.pa < sp.n {
			return true
		}
	}
	return false
}

// heatEntry is one slot of the direct-mapped heat table. boff is the
// entry's backoff exponent: a short-path refusal doubles the effective
// threshold instead of poisoning, so transient failures (the block
// engine had not chained through the entry yet) retry cheaply while
// persistent ones decay toward never without a permanent mark.
type heatEntry struct {
	pc   uint32
	n    uint32
	boff uint8
}

// heatBoffMax caps the backoff exponent: 4<<10 = 4096 misses between
// retries is close enough to never while still self-healing if the
// code around the entry changes shape.
const heatBoffMax = 10

// traceSlot returns the trace-cache slot for an entry PC, building the
// cache lazily.
func (c *CPU) traceSlot(pc uint32) **trace {
	if c.tc == nil {
		c.tc = make([]*trace, tcEntries)
	}
	return &c.tc[pc&(tcEntries-1)]
}

// traceAt returns the valid compiled trace entered at pc, or nil.
func (c *CPU) traceAt(pc uint32) *trace {
	if c.tc == nil {
		return nil
	}
	if tr := c.tc[pc&(tcEntries-1)]; tr != nil && tr.valid && tr.pa == pc {
		return tr
	}
	return nil
}

// installTrace places a compiled trace in the cache, evicting any slot
// occupant, and arms the write barrier over its spans.
func (c *CPU) installTrace(tr *trace) {
	c.lockTraces()
	slot := c.traceSlot(tr.pa)
	if old := *slot; old != nil {
		c.dropTrace(old)
	}
	*slot = tr
	tr.valid = true
	tr.liveIdx = len(c.liveTraces)
	c.liveTraces = append(c.liveTraces, tr)
	c.unlockTraces()
	for _, sp := range tr.spans {
		c.coverWords(sp.pa, sp.n)
	}
	c.armBarrier()
}

// installSideTrace registers a side stub with the live list and the
// write barrier but not the trace cache: a stub's entry is reached with
// a non-sequential fetch queue (mid delay-slot drain), so it must never
// be found by a plain head-of-queue lookup — only by the exit-to-entry
// wiring in its parent's side slot.
func (c *CPU) installSideTrace(tr *trace) {
	c.lockTraces()
	tr.valid = true
	tr.liveIdx = len(c.liveTraces)
	c.liveTraces = append(c.liveTraces, tr)
	c.unlockTraces()
	for _, sp := range tr.spans {
		c.coverWords(sp.pa, sp.n)
	}
	c.armBarrier()
}

// dropTrace invalidates a trace and removes it from the live list.
// Callers under ShareTraces hold the trace mutex (install, barrier,
// bulk invalidation all lock before dropping).
func (c *CPU) dropTrace(tr *trace) {
	if !tr.valid {
		return
	}
	tr.valid = false
	last := len(c.liveTraces) - 1
	moved := c.liveTraces[last]
	c.liveTraces[tr.liveIdx] = moved
	moved.liveIdx = tr.liveIdx
	c.liveTraces = c.liveTraces[:last]
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITInvalidated, PC: tr.pa, Len: uint32(len(tr.ops))})
	}
}

// InvalidateTraces drops every compiled trace and resets the heat
// table. Whole-image reloads and state restores call it so traces never
// outlive the code they were compiled from; the write barrier handles
// everything in between.
func (c *CPU) InvalidateTraces() {
	c.lockTraces()
	emit := c.onJIT != nil
	for _, tr := range c.liveTraces {
		tr.valid = false
		if emit {
			c.emitJIT(JITEvent{Kind: JITInvalidated, PC: tr.pa, Len: uint32(len(tr.ops))})
		}
	}
	c.liveTraces = c.liveTraces[:0]
	for i := range c.tc {
		c.tc[i] = nil
	}
	c.unlockTraces()
	for i := range c.heat {
		c.heat[i] = heatEntry{}
	}
	c.trec.active = false
	c.trec.n = 0
}
