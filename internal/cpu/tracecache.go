package cpu

// The trace cache: the fourth execution tier's data structures and
// their coherence machinery. A trace is a hot multi-block path — body
// words, terminators, and delay slots of several superblocks, fused
// across taken branches — compiled to a flat array of specialized Go
// closures (trace_compile.go). Formation is profile-guided: per-entry-PC
// heat counters trigger a one-Step path recording through the block
// engine, and the recorded path compiles if every word on it can be
// specialized (trace_form.go).
//
// Coherence reuses the superblock write barrier: a trace keeps the span
// list of the words it compiled from, marks them in the coverage bitmap,
// and writeBarrier drops any trace whose span covers a written physical
// word. Like chain edges, traces trust the barrier rather than
// revalidating every word per dispatch — the same harness contract as
// PR 4: rewrite IMem AND Poke physical. Traces are derived state:
// snapshots exclude them, and LoadImage/RestoreState drop them.

const (
	// tcEntries is the trace cache size, direct-mapped by entry PC.
	// Trace entry points are far sparser than block entries.
	tcEntries = 1 << 8

	// heatEntries sizes the direct-mapped heat table; heatThreshold is
	// how many trace-tier dispatch misses an entry PC accumulates
	// before a path recording triggers.
	heatEntries   = 1 << 9
	heatThreshold = 32

	// traceMaxBlocks bounds how many superblocks one recording may
	// fuse; traceMaxOps bounds the compiled op count.
	traceMaxBlocks = 16
	traceMaxOps    = 256
)

// traceOp is one compiled trace operation: a specialized closure over
// its operands, statistics prefix, and exit queues. It returns true to
// continue the trace, false after exiting it (having already restored
// the fetch queue, accounted the executed prefix, and raised any
// exception) — always at an exact instruction boundary.
type traceOp func(c *CPU) bool

// traceCost is the execution cost of a run of trace ops, precomputed at
// compile time: the bulk statistics a clean pass adds, and (captured
// per closure) the exact prefix an early exit accounts instead.
type traceCost struct {
	instr, cycles, pieces, nops uint64
	loads, stores               uint64
	branches, taken             uint64
	data, free                  uint64
}

// add accumulates a cost into the CPU statistics.
func (tc *traceCost) add(s *Stats) {
	s.Instructions += tc.instr
	s.Cycles += tc.cycles
	s.Pieces += tc.pieces
	s.Nops += tc.nops
	s.Loads += tc.loads
	s.Stores += tc.stores
	s.Branches += tc.branches
	s.TakenBranches += tc.taken
	s.DataCycles += tc.data
	s.FreeCycles += tc.free
}

// traceSpan is one contiguous instruction-memory range a trace compiled
// from (one recorded superblock's covered words).
type traceSpan struct {
	pa uint32
	n  uint32
}

// trace is one compiled trace: the flat closure array, the bulk cost of
// a clean pass, the resume point after it, and the coherence spans.
type trace struct {
	pa    uint32 // entry PC (physical == virtual: traces run unmapped only)
	ops   []traceOp
	cost  traceCost
	endPC uint32 // sequential resume point after a clean pass
	spans []traceSpan

	valid   bool
	warm    bool // dispatched at least once (gates the dispatch-cold event)
	liveIdx int  // index in CPU.liveTraces, for swap-removal

	// Per-site introspection history, written by the CPU goroutine and
	// read by TraceSites via atomic loads: dispatches, instructions
	// retired inside this trace, and guard exits by reason.
	hits   uint64
	instrs uint64
	deopts [NumDeoptReasons]uint64
}

// covers reports whether a physical word address falls inside any span.
func (tr *trace) covers(addr uint32) bool {
	for _, sp := range tr.spans {
		if addr-sp.pa < sp.n {
			return true
		}
	}
	return false
}

// heatEntry is one slot of the direct-mapped heat table.
type heatEntry struct {
	pc uint32
	n  uint32
}

// traceSlot returns the trace-cache slot for an entry PC, building the
// cache lazily.
func (c *CPU) traceSlot(pc uint32) **trace {
	if c.tc == nil {
		c.tc = make([]*trace, tcEntries)
	}
	return &c.tc[pc&(tcEntries-1)]
}

// traceAt returns the valid compiled trace entered at pc, or nil.
func (c *CPU) traceAt(pc uint32) *trace {
	if c.tc == nil {
		return nil
	}
	if tr := c.tc[pc&(tcEntries-1)]; tr != nil && tr.valid && tr.pa == pc {
		return tr
	}
	return nil
}

// installTrace places a compiled trace in the cache, evicting any slot
// occupant, and arms the write barrier over its spans.
func (c *CPU) installTrace(tr *trace) {
	c.lockTraces()
	slot := c.traceSlot(tr.pa)
	if old := *slot; old != nil {
		c.dropTrace(old)
	}
	*slot = tr
	tr.valid = true
	tr.liveIdx = len(c.liveTraces)
	c.liveTraces = append(c.liveTraces, tr)
	c.unlockTraces()
	for _, sp := range tr.spans {
		c.coverWords(sp.pa, sp.n)
	}
	c.armBarrier()
}

// dropTrace invalidates a trace and removes it from the live list.
// Callers under ShareTraces hold the trace mutex (install, barrier,
// bulk invalidation all lock before dropping).
func (c *CPU) dropTrace(tr *trace) {
	if !tr.valid {
		return
	}
	tr.valid = false
	last := len(c.liveTraces) - 1
	moved := c.liveTraces[last]
	c.liveTraces[tr.liveIdx] = moved
	moved.liveIdx = tr.liveIdx
	c.liveTraces = c.liveTraces[:last]
	if c.onJIT != nil {
		c.emitJIT(JITEvent{Kind: JITInvalidated, PC: tr.pa, Len: uint32(len(tr.ops))})
	}
}

// InvalidateTraces drops every compiled trace and resets the heat
// table. Whole-image reloads and state restores call it so traces never
// outlive the code they were compiled from; the write barrier handles
// everything in between.
func (c *CPU) InvalidateTraces() {
	c.lockTraces()
	emit := c.onJIT != nil
	for _, tr := range c.liveTraces {
		tr.valid = false
		if emit {
			c.emitJIT(JITEvent{Kind: JITInvalidated, PC: tr.pa, Len: uint32(len(tr.ops))})
		}
	}
	c.liveTraces = c.liveTraces[:0]
	for i := range c.tc {
		c.tc[i] = nil
	}
	c.unlockTraces()
	for i := range c.heat {
		c.heat[i] = heatEntry{}
	}
	c.trec.active = false
	c.trec.n = 0
}
