package cpu

import (
	"mips/internal/mem"
)

// Device is a memory-mapped peripheral on the physical address bus.
// The paper's protection scheme relies on peripherals living on the
// virtual address bus where user-level processes cannot reach them
// unmapped (paper §3.2); in this model devices claim physical word
// addresses and the kernel reaches them with mapping disabled.
type Device interface {
	// Contains reports whether the device claims the physical address.
	Contains(phys uint32) bool
	// ReadWord returns the device register at the address.
	ReadWord(phys uint32) uint32
	// WriteWord stores to the device register at the address.
	WriteWord(phys, val uint32)
}

// Bus is the processor's data-memory interface: the MMU (segmentation
// unit, page map, physical RAM) plus memory-mapped devices and the DMA
// engine that consumes free memory cycles.
type Bus struct {
	MMU     *mem.MMU
	DMA     *mem.DMA
	devices []Device
	tickers []Ticker

	// LastFault is the external mapping unit's fault latch: the most
	// recent translation fault, which the page-fault handler reads
	// through the fault-register device to learn the faulting address.
	LastFault *mem.Fault
}

// Ticker is implemented by devices that advance with machine cycles
// (timers). The CPU ticks the bus once per executed instruction.
type Ticker interface {
	Tick()
}

// NewBus builds a bus over the given physical memory.
func NewBus(phys *mem.Physical) *Bus {
	return &Bus{MMU: mem.NewMMU(phys)}
}

// Attach adds a memory-mapped device. Devices that also implement
// Ticker advance once per executed instruction.
func (b *Bus) Attach(d Device) {
	b.devices = append(b.devices, d)
	if t, ok := d.(Ticker); ok {
		b.tickers = append(b.tickers, t)
	}
}

// Tick advances time-driven devices by one machine cycle.
func (b *Bus) Tick() {
	for _, t := range b.tickers {
		t.Tick()
	}
}

func (b *Bus) device(phys uint32) Device {
	for _, d := range b.devices {
		if d.Contains(phys) {
			return d
		}
	}
	return nil
}

// Read fetches a data word. mapped selects whether the segmentation and
// page map translate the address.
func (b *Bus) Read(addr uint32, mapped bool) (uint32, *mem.Fault) {
	if !mapped && len(b.devices) == 0 {
		// Unmapped access on a deviceless bus: translation is the
		// identity and no device can claim the address. LastFault is
		// only ever set by translation faults, so this path preserves
		// it exactly.
		return b.MMU.Phys.Read(addr)
	}
	pa, f := b.MMU.Translate(addr, false, mapped)
	if f != nil {
		b.LastFault = f
		return 0, f
	}
	if d := b.device(pa); d != nil {
		return d.ReadWord(pa), nil
	}
	return b.MMU.Phys.Read(pa)
}

// Write stores a data word.
func (b *Bus) Write(addr, val uint32, mapped bool) *mem.Fault {
	if !mapped && len(b.devices) == 0 {
		return b.MMU.Phys.Write(addr, val)
	}
	pa, f := b.MMU.Translate(addr, true, mapped)
	if f != nil {
		b.LastFault = f
		return f
	}
	if d := b.device(pa); d != nil {
		d.WriteWord(pa, val)
		return nil
	}
	return b.MMU.Phys.Write(pa, val)
}

// OfferFreeCycle forwards an unused data-memory cycle to the DMA engine,
// if one is attached. It reports whether the cycle was consumed.
func (b *Bus) OfferFreeCycle() bool {
	if b.DMA == nil {
		return false
	}
	return b.DMA.OfferFreeCycle()
}
