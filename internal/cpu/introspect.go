package cpu

// Tier introspection: the taxonomy and query surface that makes the
// translation tiers explain themselves. Three pieces live here:
//
//   - the deopt-reason taxonomy: every early trace exit carries a
//     DeoptReason, every refused formation a FormRefusal, and the
//     per-reason counters in TranslationStats partition the legacy
//     totals exactly (TraceDeopts sums to TraceGuardExits);
//   - tier residency: TierInstrs attributes every retired instruction
//     to the engine tier that retired it, and TraceSites/BlockSites
//     expose the per-entry-PC heatmap behind the global counters;
//   - the JIT event hook: a nil-checked callback (SetJITHook) fired on
//     trace formation, compilation, first dispatch, guard exits,
//     refusals, poisonings, and invalidations. With no hook installed
//     the only cost anywhere is a nil check, preserving the zero-cost
//     observer contract.
//
// The counters themselves are unconditional: like the rest of
// TranslationStats they are plain adds on paths that already maintain
// counters, written only by the CPU goroutine and read by observers
// through atomic loads (the package trace registry convention).

import (
	"sync"
	"sync/atomic"
)

// DeoptReason classifies why a compiled trace was abandoned at a guard
// exit. The reasons partition TraceGuardExits: every guard exit
// increments exactly one TraceDeopts slot.
type DeoptReason uint8

const (
	// DeoptBranchDirection: a conditional branch resolved against the
	// recorded direction.
	DeoptBranchDirection DeoptReason = iota
	// DeoptIndirectTarget: an indirect jump resolved to a target other
	// than the recorded one.
	DeoptIndirectTarget
	// DeoptQueueShape: a packed word left the fetch queue in a shape
	// the flattening did not bake in (the queue-shape guard of
	// emitGeneral/emitGeneralTerm).
	DeoptQueueShape
	// DeoptFault: the word raised an exception — memory fault,
	// arithmetic overflow, trap — and the trace exited through the
	// exact fault-restart queue.
	DeoptFault
	// DeoptInvalidation: a store inside the trace hit the trace's own
	// code and the write barrier invalidated it mid-run.
	DeoptInvalidation
	// DeoptHalt: a store hit the halt device and stopped the machine
	// mid-trace.
	DeoptHalt

	// NumDeoptReasons bounds the guard-exit reason space.
	NumDeoptReasons
)

// deoptNames are the metric/JSON suffixes, aligned with the constants.
var deoptNames = [NumDeoptReasons]string{
	"branch_direction", "indirect_target", "queue_shape",
	"fault", "invalidation", "halt",
}

func (r DeoptReason) String() string {
	if r < NumDeoptReasons {
		return deoptNames[r]
	}
	return "unknown"
}

// FormRefusal classifies why trace formation refused (truncated at) a
// recorded block, or refused a recording outright.
type FormRefusal uint8

const (
	// RefusalPrivileged: a privileged word in the body or terminator —
	// it could change what dispatch latched.
	RefusalPrivileged FormRefusal = iota
	// RefusalShadowBranch: a branch targeting its own shadow, which
	// leaves the recorded successor ambiguous between directions.
	RefusalShadowBranch
	// RefusalJumpInd: an unflattenable indirect-jump shape — a target
	// inside the two-word shadow, or delay slots that cannot compile.
	RefusalJumpInd
	// RefusalDelaySlot: a taken direct transfer whose delay slot cannot
	// compile, or a recorded successor that derives no direction.
	RefusalDelaySlot
	// RefusalBlock: a recorded block that is invalid, termless, or
	// otherwise not a whole compilable unit.
	RefusalBlock
	// RefusalShortPath: a recording shorter than two blocks (nothing to
	// fuse) or one that does not start at its own entry.
	RefusalShortPath
	// RefusalOpBudget: the flattened path exceeded traceMaxOps.
	RefusalOpBudget

	// NumFormRefusals bounds the refusal reason space.
	NumFormRefusals
)

var refusalNames = [NumFormRefusals]string{
	"privileged", "shadow_branch", "jump_ind", "delay_slot",
	"block", "short_path", "op_budget",
}

func (r FormRefusal) String() string {
	if r < NumFormRefusals {
		return refusalNames[r]
	}
	return "unknown"
}

// Tier identifies one execution engine tier for residency accounting.
type Tier uint8

const (
	// TierReference: the per-word reference interpreter.
	TierReference Tier = iota
	// TierFast: the predecoded per-instruction fast path.
	TierFast
	// TierBlocks: the superblock engine (chained block runs included).
	TierBlocks
	// TierTraces: the trace JIT tier (chained trace passes included).
	TierTraces

	// NumTiers bounds the tier space.
	NumTiers
)

var tierNames = [NumTiers]string{"reference", "fast", "blocks", "traces"}

func (t Tier) String() string {
	if t < NumTiers {
		return tierNames[t]
	}
	return "unknown"
}

// GuardExitReasonTotal sums the per-reason deopt counters. The taxonomy
// partitions the legacy counter, so this always equals TraceGuardExits;
// the differential suite pins the invariant.
func (t *TranslationStats) GuardExitReasonTotal() uint64 {
	var n uint64
	for _, v := range t.TraceDeopts {
		n += v
	}
	return n
}

// TierInstrTotal sums instructions over all tiers. On a machine run
// from reset it equals Stats.Instructions: every retired instruction is
// attributed to exactly one tier.
func (t *TranslationStats) TierInstrTotal() uint64 {
	var n uint64
	for _, v := range t.TierInstrs {
		n += v
	}
	return n
}

// TierInstr reads one tier's residency counter with an atomic load, so
// a telemetry reader sampling a running CPU never sees a torn value
// (the CPU goroutine remains the single writer).
func (t *TranslationStats) TierInstr(tier Tier) uint64 {
	return atomic.LoadUint64(&t.TierInstrs[tier])
}

// JITEventKind identifies one kind of trace-JIT lifecycle event.
type JITEventKind uint8

const (
	// JITFormed: a recording validated into a formable path (Len counts
	// fused blocks).
	JITFormed JITEventKind = iota
	// JITCompiled: a trace compiled to closures and installed (Len
	// counts compiled ops).
	JITCompiled
	// JITDispatchCold: the first dispatch of a compiled trace.
	JITDispatchCold
	// JITGuardExit: an early trace exit; Reason is the DeoptReason.
	JITGuardExit
	// JITInvalidated: a compiled trace dropped (write barrier, slot
	// eviction, or bulk invalidation).
	JITInvalidated
	// JITRefused: formation truncated at a refusing block; Reason is
	// the FormRefusal.
	JITRefused
	// JITPoisoned: an entry PC marked never-hot (heatNever) after its
	// path failed to form.
	JITPoisoned
	// JITSideCompiled: a side stub compiled for a hot guard exit — the
	// cold arm of a branch-direction guard or an indirect-target miss —
	// and wired exit-to-entry into the trace tree.
	JITSideCompiled
)

var jitKindNames = [...]string{
	"formed", "compiled", "dispatch_cold", "guard_exit",
	"invalidated", "refused", "poisoned", "side_compiled",
}

func (k JITEventKind) String() string {
	if int(k) < len(jitKindNames) {
		return jitKindNames[k]
	}
	return "unknown"
}

// JITEvent is one fixed-size trace-JIT lifecycle event, delivered to
// the SetJITHook callback. PC is the trace entry PC; Len the compiled
// op count (or fused block count for JITFormed); Heat the formation
// threshold in effect; Reason a DeoptReason (guard exits) or a
// FormRefusal (refusals/poisonings).
type JITEvent struct {
	Kind   JITEventKind
	Reason uint8
	Cycle  uint64
	PC     uint32
	Len    uint32
	Heat   uint32
}

// SetJITHook installs an observer invoked on every trace-JIT lifecycle
// event: formation, compilation, first dispatch, guard exits (with
// their deopt reason), refusals, poisonings, and invalidations. Pass
// nil to disable; with no hook the tier pays only nil checks.
func (c *CPU) SetJITHook(fn func(JITEvent)) { c.onJIT = fn }

// emitJIT stamps the machine cycle and delivers one event. Callers
// nil-check c.onJIT first so detached machines pay nothing more.
func (c *CPU) emitJIT(e JITEvent) {
	e.Cycle = c.Stats.Cycles
	c.onJIT(e)
}

// ShareTraces switches the trace cache's structural mutations
// (install, drop, bulk invalidation) behind a mutex so TraceSites and
// BlockSites may be called while the machine runs — the telemetry
// server's live /jit/traces view. Those operations are rare (compile
// and invalidation time only), so sharing costs the hot path nothing.
func (c *CPU) ShareTraces() {
	if c.trMu == nil {
		c.trMu = &sync.Mutex{}
	}
}

func (c *CPU) lockTraces() {
	if c.trMu != nil {
		c.trMu.Lock()
	}
}

func (c *CPU) unlockTraces() {
	if c.trMu != nil {
		c.trMu.Unlock()
	}
}

// TraceSite is the per-entry-PC introspection view of one live compiled
// trace: identity, shape, and its dispatch/retirement/deopt history.
type TraceSite struct {
	EntryPC  uint32
	EndPC    uint32
	Ops      int    // compiled closure count
	Blocks   int    // superblocks fused
	Words    uint32 // instruction-memory words covered (span total)
	Side     bool   // a side stub (guard-exit continuation), not a heat-formed entry
	Hits     uint64 // dispatches (cache entry and chaining alike)
	Instrs   uint64 // instructions retired inside this trace
	SideHits uint64 // branch-direction exits here resolved in-tier
	ICHits   uint64 // indirect-target exits here resolved through the ICs
	Deopts   [NumDeoptReasons]uint64
}

// TraceSites returns the introspection view of every live compiled
// trace, unordered. Safe while the machine runs once ShareTraces was
// called (counters are read with atomic loads; the live list is
// guarded by the shared mutex).
func (c *CPU) TraceSites() []TraceSite {
	c.lockTraces()
	defer c.unlockTraces()
	out := make([]TraceSite, 0, len(c.liveTraces))
	for _, tr := range c.liveTraces {
		s := TraceSite{
			EntryPC:  tr.pa,
			EndPC:    tr.endPC,
			Ops:      len(tr.ops),
			Blocks:   len(tr.spans),
			Side:     tr.side,
			Hits:     atomic.LoadUint64(&tr.hits),
			Instrs:   atomic.LoadUint64(&tr.instrs),
			SideHits: atomic.LoadUint64(&tr.sideHits),
			ICHits:   atomic.LoadUint64(&tr.icHits),
		}
		for _, sp := range tr.spans {
			s.Words += sp.n
		}
		for r := range tr.deopts {
			s.Deopts[r] = atomic.LoadUint64(&tr.deopts[r])
		}
		out = append(out, s)
	}
	return out
}

// BlockSite is the per-entry-PC view of one live superblock: its shape
// and how many times the block engine entered it. Together with
// TraceSites it is the per-PC tier heatmap behind TierInstrs.
type BlockSite struct {
	EntryPC uint32
	Words   uint32 // covered words (body, terminator, delay slots)
	Execs   uint64 // times the block engine entered this block
}

// BlockSites returns the per-entry-PC view of every live superblock,
// unordered, under the same sharing rules as TraceSites.
func (c *CPU) BlockSites() []BlockSite {
	c.lockTraces()
	defer c.unlockTraces()
	out := make([]BlockSite, 0, len(c.liveBlocks))
	for _, b := range c.liveBlocks {
		out = append(out, BlockSite{
			EntryPC: b.pa,
			Words:   b.cover,
			Execs:   atomic.LoadUint64(&b.execs),
		})
	}
	return out
}
