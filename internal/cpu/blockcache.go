package cpu

// The superblock translation cache: the layer above the predecode cache
// that fuses straight-line runs of predecoded instructions into blocks
// (block.go executes them). This file owns the data structures and their
// coherence machinery:
//
//   - translateBlock scans instruction memory from a block entry point
//     up to the next control transfer and builds the flat block record,
//     including the statically precomputed execution cost (on a pipeline
//     with no hardware interlocks the cycle and stall cost of
//     straight-line code is fully determined at translation time);
//   - a direct-mapped cache keyed by physical entry address holds the
//     blocks, with the same per-word identity validation the predecode
//     cache uses (stepBlocks compares every cached source word against
//     live instruction memory on entry);
//   - a write barrier installed on physical memory invalidates every
//     block whose body overlaps a written word — CPU stores, DMA moves,
//     and device pokes included — so paging traffic and self-modifying
//     stores can never leave a stale translation executable. A coverage
//     bitmap keeps the barrier to one bit test on the store fast path.

import (
	"fmt"

	"mips/internal/isa"
	"mips/internal/mem"
)

const (
	// blockMaxWords caps a block's body; longer straight-line runs
	// split into chained blocks.
	blockMaxWords = 64
	// defaultChainFollow is the default bound on how many chained
	// blocks (or chained traces) one Step may execute, so Run's step
	// budget still bounds runaway programs. SetChainFollow tunes it
	// per CPU; the sweep benchmark in bench_test.go justifies the
	// default.
	defaultChainFollow = 64
	// bcMinEntries/bcMaxEntries bound the direct-mapped block cache,
	// grown on demand like the predecode cache. Block entry points are
	// much sparser than instruction words, so the cap is smaller.
	bcMinEntries = 1 << 8
	bcMaxEntries = 1 << 13
)

// Lean execution classes, assigned per body word at translation time.
// The block engine executes bcNop/bcALU words with a specialized inline
// path; everything else runs through execFast, which is exact for every
// word kind.
const (
	bcGeneral uint8 = iota // packed or unclassified: execute via execFast
	bcNop                  // the word performs no work
	bcALU                  // single ALU-class piece, no memory piece
	bcLoad                 // single load piece
	bcStore                // single store piece

	// Control classes appear only in terminator and delay-slot records
	// (translation stops a body before any control transfer).
	bcBranch
	bcJump
	bcCall
	bcJumpInd
)

// block is one translated superblock: a straight-line run of body words
// (everything up to, but not including, the next control transfer) plus
// its statically precomputed cost and chain slots to successor blocks.
type block struct {
	pa uint32 // physical address of the first body word
	n  uint32 // body length in words (0: the entry word is a terminator)

	// code holds the flat executable records of the body words, in
	// execution order; code[i] was decoded from IMem[pa+i] and carries
	// the source identity for entry validation. entrySrc is the same
	// identity for n == 0 blocks, which cache no body.
	code     []decoded
	entrySrc isa.Instr

	// term is the cached record of the terminating word at pa+n, when
	// that word decodes (hasTerm), and ds the records of up to two
	// delay-slot words after it; all execute via dsStep, which skips
	// re-fetch because their identity is validated at block entry.
	// cover is the number of words from pa the write barrier must
	// watch (body, terminator, delay slots).
	term    decoded
	ds      [2]decoded
	dsN     uint8
	hasTerm bool
	cover   uint32

	// Statically precomputed execution cost: each body word is exactly
	// one cycle (no hardware interlocks, so straight-line code cannot
	// stall), every body word's data-memory slot usage is known at
	// translation time, and the piece/nop totals are fixed. A pure
	// block bulk-adds these instead of counting per word.
	sPieces uint64
	sNops   uint64

	pure     bool // body is all bcNop/bcALU: eligible for the bulk path
	hasOvf   bool // some ALU word can raise arithmetic overflow
	termless bool // the scan hit a size/page limit, not a real terminator
	valid    bool
	liveIdx  int // index in CPU.liveBlocks, for swap-removal

	// execs counts block-engine entries (lookup and chain alike),
	// written by the CPU goroutine and read by BlockSites via atomic
	// loads for the per-PC tier heatmap.
	execs uint64

	// Chain slots: the last two observed successor entry points, so hot
	// block-to-block transfers skip the cache lookup entirely. Chains
	// are recorded and followed only with mapping disabled, where the
	// virtual entry address is the physical one.
	succVPC [2]uint32
	succ    [2]*block
	succN   int
}

// TranslationStats counts translation-layer behavior: the predecode
// cache and the superblock cache. It lives outside Stats because Stats
// is held engine-independent by the differential tests' strict equality,
// while these counters intentionally describe the engine itself.
type TranslationStats struct {
	// PredecodeHits and PredecodeMisses count fetches served by a valid
	// flat record vs. fetches that (re)decoded the word.
	PredecodeHits   uint64
	PredecodeMisses uint64
	// PredecodeCollisions counts misses whose direct-mapped slot held a
	// record for a different physical address — the aliasing case that
	// must never cross-validate.
	PredecodeCollisions uint64

	// BlockHits counts block-cache lookups served by a valid block;
	// BlockChained counts entries that skipped the lookup through a
	// chain slot; BlockTranslations counts blocks built (first sight
	// and retranslation after invalidation alike).
	BlockHits         uint64
	BlockChained      uint64
	BlockTranslations uint64
	// BlockInvalidations counts blocks dropped by the memory write
	// barrier (self-modifying stores, DMA, paging traffic).
	BlockInvalidations uint64
	// BlockBails counts mid-block falls back to the exact
	// per-instruction engine: faults, traps, interrupts, halts, and
	// conservative coherence bails after stores.
	BlockBails uint64

	// TraceFormed counts hot-path recordings that finished with a
	// formable multi-block path; TraceCompiled counts traces actually
	// compiled to closures and installed (a formed path whose words
	// cannot all be specialized truncates, and too-short truncations
	// compile nothing).
	TraceFormed   uint64
	TraceCompiled uint64
	// TraceGuardExits counts early trace exits of every kind — branch
	// direction guards, faults, self-invalidating stores — all of which
	// leave the machine at an exact instruction boundary.
	TraceGuardExits uint64
	// TraceInvalidations counts traces dropped by the memory write
	// barrier.
	TraceInvalidations uint64
	// TraceDispatchHits counts trace executions started (cache entry
	// and trace-to-trace chaining alike).
	TraceDispatchHits uint64

	// TraceDeopts partitions TraceGuardExits by DeoptReason: every
	// guard exit increments exactly one slot, so the slots always sum
	// to TraceGuardExits (GuardExitReasonTotal pins the invariant).
	TraceDeopts [NumDeoptReasons]uint64
	// Dispatch-level deopts: times the trace tier stood down before
	// entering a compiled trace, counted only when a compiled trace was
	// actually ready at the pending PC (so quiet machines with no
	// traces pay no bookkeeping and the counters measure lost trace
	// time, not mere configuration).
	//
	// TraceDeoptEnvironment: the machine configuration was not quiet —
	// address mapping, DMA in flight, ticking devices — which the
	// compiled closures do not model. TraceDeoptInterrupt: an interrupt
	// line was pending and must be sampled at the exact engine's
	// boundary. TraceDeoptChainBudget: a trace run returned with the
	// next trace ready only because the chain-follow budget for the
	// Step was exhausted.
	TraceDeoptEnvironment uint64
	TraceDeoptInterrupt   uint64
	TraceDeoptChainBudget uint64

	// TraceFormRefusals counts formation refusals by FormRefusal — at
	// most one per recording, attributed to the first block (or whole
	// path) that refused. TracePoisoned counts entry PCs marked
	// heatNever, never to be recorded again.
	TraceFormRefusals [NumFormRefusals]uint64
	TracePoisoned     uint64

	// Side-exit resolution. TraceSideHits counts branch-direction guard
	// exits resolved inside the trace tier — the exit chained straight
	// into the trace or side stub covering the other direction instead
	// of falling back to dispatch; TraceICHits the same for
	// indirect-target exits resolved through a trace word's inline
	// target cache. Together with TraceGuardExits they partition every
	// op-level trace exit: each exit counts exactly one of the three.
	// TraceSideCompiled counts side stubs compiled for hot branch arms,
	// TraceICInstalls stubs installed into inline-cache entries.
	TraceSideHits     uint64
	TraceICHits       uint64
	TraceSideCompiled uint64
	TraceICInstalls   uint64

	// TraceHeatEvicted counts direct-mapped heat-table slots reclaimed
	// by a colliding entry PC while still warming (or poisoned) — the
	// aliasing that silently stalls trace formation on large corpora.
	TraceHeatEvicted uint64

	// TierInstrs attributes every retired instruction to the engine
	// tier that retired it (reference interpreter, predecoded fast
	// path, superblock engine, trace JIT). On a machine run from reset
	// the slots sum to Stats.Instructions.
	TierInstrs [NumTiers]uint64
}

// String renders the counters as one line. The segments up through
// "traces ..." are a stable prefix for -stats golden users; the deopt,
// refuse, and tier segments introduced with the introspection taxonomy
// append after it and new fields must keep appending, never reorder.
func (t *TranslationStats) String() string {
	return fmt.Sprintf("predecode hit=%d miss=%d collide=%d | blocks hit=%d chain=%d xlate=%d inval=%d bail=%d | traces formed=%d compiled=%d hit=%d exit=%d inval=%d"+
		" | deopt dir=%d ind=%d shape=%d fault=%d inval=%d halt=%d env=%d int=%d budget=%d"+
		" | refuse priv=%d shadow=%d jind=%d ds=%d block=%d short=%d ops=%d poison=%d"+
		" | tier ref=%d fast=%d blocks=%d traces=%d"+
		" | side hit=%d ichit=%d comp=%d icinst=%d heatevict=%d",
		t.PredecodeHits, t.PredecodeMisses, t.PredecodeCollisions,
		t.BlockHits, t.BlockChained, t.BlockTranslations, t.BlockInvalidations, t.BlockBails,
		t.TraceFormed, t.TraceCompiled, t.TraceDispatchHits, t.TraceGuardExits, t.TraceInvalidations,
		t.TraceDeopts[DeoptBranchDirection], t.TraceDeopts[DeoptIndirectTarget], t.TraceDeopts[DeoptQueueShape],
		t.TraceDeopts[DeoptFault], t.TraceDeopts[DeoptInvalidation], t.TraceDeopts[DeoptHalt],
		t.TraceDeoptEnvironment, t.TraceDeoptInterrupt, t.TraceDeoptChainBudget,
		t.TraceFormRefusals[RefusalPrivileged], t.TraceFormRefusals[RefusalShadowBranch],
		t.TraceFormRefusals[RefusalJumpInd], t.TraceFormRefusals[RefusalDelaySlot],
		t.TraceFormRefusals[RefusalBlock], t.TraceFormRefusals[RefusalShortPath],
		t.TraceFormRefusals[RefusalOpBudget], t.TracePoisoned,
		t.TierInstrs[TierReference], t.TierInstrs[TierFast], t.TierInstrs[TierBlocks], t.TierInstrs[TierTraces],
		t.TraceSideHits, t.TraceICHits, t.TraceSideCompiled, t.TraceICInstalls, t.TraceHeatEvicted)
}

// bodyKind reports whether a memory/control slot kind may appear inside
// a block body. Control transfers, traps, and special-register pieces
// terminate the block and execute on the exact per-instruction path.
func bodyKind(k isa.PieceKind) bool {
	return k == isa.PieceNop || k == isa.PieceLoad || k == isa.PieceStore
}

// ovfCapable reports whether an ALU op can raise arithmetic overflow.
func ovfCapable(op isa.ALUOp) bool {
	return op == isa.OpAdd || op == isa.OpSub || op == isa.OpRSub || op == isa.OpNeg
}

// classifyLean assigns the lean execution class of one cached word.
// Packed words (both slots active) always classify bcGeneral and run
// through the exact executor.
func classifyLean(d *decoded) {
	switch {
	case d.flags&fNop != 0:
		d.bclass = bcNop
	case d.memKind == isa.PieceNop && d.aluKind != isa.PieceNop:
		d.bclass = bcALU
	case d.aluKind != isa.PieceNop:
		d.bclass = bcGeneral
	case d.memKind == isa.PieceLoad:
		d.bclass = bcLoad
	case d.memKind == isa.PieceStore:
		d.bclass = bcStore
	case d.memKind == isa.PieceBranch:
		d.bclass = bcBranch
	case d.memKind == isa.PieceJump:
		d.bclass = bcJump
	case d.memKind == isa.PieceCall:
		d.bclass = bcCall
	case d.memKind == isa.PieceJumpInd:
		d.bclass = bcJumpInd
	default:
		d.bclass = bcGeneral
	}
}

// readsReg reports whether executing a decoded word reads register r,
// conservatively answering true for any piece kind it does not model.
func readsReg(d *decoded, r isa.Reg) bool {
	switch d.aluKind {
	case isa.PieceALU:
		if !d.a1.imm && d.a1.reg == r {
			return true
		}
		if !d.aluUnary && !d.a2.imm && d.a2.reg == r {
			return true
		}
		if d.aluDstRead && d.aluDst == r {
			return true
		}
	case isa.PieceSetCond:
		if (!d.a1.imm && d.a1.reg == r) || (!d.a2.imm && d.a2.reg == r) {
			return true
		}
	}
	switch d.memKind {
	case isa.PieceNop, isa.PieceJump, isa.PieceCall, isa.PieceTrap:
	case isa.PieceLoad, isa.PieceStore:
		if d.memKind == isa.PieceStore && d.data == r {
			return true
		}
		switch d.mode {
		case isa.AModeDisp:
			if d.base == r {
				return true
			}
		case isa.AModeIndex, isa.AModeShift:
			if d.base == r || d.index == r {
				return true
			}
		}
	case isa.PieceBranch:
		if (!d.m1.imm && d.m1.reg == r) || (!d.m2.imm && d.m2.reg == r) {
			return true
		}
	case isa.PieceJumpInd:
		if !d.m1.imm && d.m1.reg == r {
			return true
		}
	default:
		return true
	}
	return false
}

// blockSlot returns the cache slot for a block entry address, building
// the cache lazily and growing it (up to bcMaxEntries) when the
// program's footprint exceeds it. Growth drops all blocks: the mask
// changes, so existing slot assignments are meaningless.
func (c *CPU) blockSlot(pa uint32) **block {
	if c.bc == nil {
		c.bc = make([]*block, bcMinEntries)
		c.bcMask = bcMinEntries - 1
	}
	if pa >= uint32(len(c.bc)) && len(c.bc) < bcMaxEntries {
		size := len(c.bc)
		for size < bcMaxEntries && uint32(size) <= pa {
			size *= 2
		}
		c.InvalidateBlocks()
		c.bc = make([]*block, size)
		c.bcMask = uint32(size - 1)
	}
	return &c.bc[pa&c.bcMask]
}

// translateBlock scans the straight-line run of instruction words at pa,
// builds the block record with its precomputed cost, and installs it in
// the cache (evicting any previous occupant of the slot).
func (c *CPU) translateBlock(pa uint32) *block {
	c.Trans.BlockTranslations++
	// Never cross a page boundary: page-granular translation guarantees
	// that virtual and physical in-page offsets agree, so cached words
	// that stay inside the entry's page execute contiguously in both
	// spaces. pageLimit also bounds the cached terminator/delay-slot
	// records; the body is additionally capped at blockMaxWords.
	pageLimit := uint32(len(c.IMem))
	if pageEnd := pa&^uint32(mem.PageWords-1) + mem.PageWords; pageEnd < pageLimit {
		pageLimit = pageEnd
	}
	limit := pageLimit
	if capEnd := pa + blockMaxWords; capEnd < limit {
		limit = capEnd
	}
	b := &block{pa: pa, valid: true, pure: true, termless: true}
	for wa := pa; wa < limit; wa++ {
		in := c.IMem[wa]
		if in.ALU == nil && in.Mem == nil {
			// Unprogrammed memory: a real (faulting) terminator,
			// executed un-cached so the illegal fault stays exact.
			b.termless = false
			break
		}
		var d decoded
		decodeWord(&d, wa, in)
		if d.flags&fPriv != 0 || !bodyKind(d.memKind) {
			// The block's terminator: cached alongside the body so the
			// exit skips a re-fetch. Privileged words also land here,
			// keeping privilege checks out of the body loop.
			classifyLean(&d)
			b.termless = false
			b.term = d
			b.hasTerm = true
			break
		}
		classifyLean(&d)
		switch d.bclass {
		case bcNop:
			b.sNops++
		case bcALU:
			b.sPieces++
			if ovfCapable(d.aluOp) {
				b.hasOvf = true
			}
		default:
			b.pure = false
			if d.aluKind != isa.PieceNop {
				b.sPieces++
			}
			if d.memKind != isa.PieceNop {
				b.sPieces++
			}
		}
		b.code = append(b.code, d)
	}
	b.n = uint32(len(b.code))
	if b.n == 0 {
		b.termless = false
		b.entrySrc = c.IMem[pa]
	}
	// Eager-load marking. Without hardware interlocks a load's delayed
	// commit is observable only through its one-word hazard window: the
	// word right after the load sees the stale register (and trips the
	// hazard auditor). When that statically known next word does not
	// read the destination, committing immediately is equivalent — any
	// younger write still lands last, and every path that ends the run
	// before the commit time (trap, fault, overflow, interrupt) drains
	// the pipe and commits it anyway. The one exception is a word that
	// can stop the machine without an exception — a store hitting a
	// halt device, or anything routed through the exact executor — so
	// those keep the delayed-commit machinery.
	run := uint8(0)
	for i := len(b.code) - 1; i >= 0; i-- {
		if b.code[i].bclass == bcNop {
			if run < 255 {
				run++
			}
			b.code[i].nopRun = run
		} else {
			run = 0
		}
	}
	for i := range b.code {
		d := &b.code[i]
		if d.bclass != bcLoad || d.mode == isa.AModeLongImm {
			continue
		}
		var next *decoded
		if i+1 < len(b.code) {
			next = &b.code[i+1]
		} else if b.hasTerm {
			next = &b.term
		}
		if next != nil && next.bclass != bcGeneral &&
			next.bclass != bcStore && !readsReg(next, d.data) {
			d.flags |= fEager
		}
	}
	// Cache the delay-slot words after a real terminator: a taken
	// transfer always executes them, and caching them keeps a hot
	// loop's tail off the per-instruction fetch path. Any decodable
	// word qualifies (dsStep checks privilege dynamically and routes
	// non-lean classes through the exact executor).
	if b.hasTerm {
		for wa := pa + b.n + 1; wa < pageLimit && b.dsN < 2; wa++ {
			in := c.IMem[wa]
			if in.ALU == nil && in.Mem == nil {
				break
			}
			d := &b.ds[b.dsN]
			decodeWord(d, wa, in)
			classifyLean(d)
			b.dsN++
		}
	}
	// The barrier must watch the whole cached range: body stores, DMA
	// moves on later free cycles, and device ticks can all rewrite a
	// word this block would execute from its cache.
	b.cover = b.n
	if b.hasTerm {
		b.cover += 1 + uint32(b.dsN)
	}

	slot := c.blockSlot(pa)
	c.lockTraces()
	if old := *slot; old != nil {
		c.dropBlock(old)
	}
	*slot = b
	b.liveIdx = len(c.liveBlocks)
	c.liveBlocks = append(c.liveBlocks, b)
	c.unlockTraces()
	if b.cover > 0 {
		c.coverWords(pa, b.cover)
		c.armBarrier()
	}
	return b
}

// dropBlock invalidates a block and removes it from the live list.
func (c *CPU) dropBlock(b *block) {
	if !b.valid {
		return
	}
	b.valid = false
	last := len(c.liveBlocks) - 1
	moved := c.liveBlocks[last]
	c.liveBlocks[b.liveIdx] = moved
	moved.liveIdx = b.liveIdx
	c.liveBlocks = c.liveBlocks[:last]
}

// coverWords marks the body words of a block in the coverage bitmap the
// write barrier prefilters against. Bits stay set after invalidation
// (conservative: a stale bit costs one live-list walk, never a stale
// execution).
func (c *CPU) coverWords(pa, n uint32) {
	need := int((pa+n-1)>>6) + 1
	for len(c.codeBits) < need {
		c.codeBits = append(c.codeBits, 0)
	}
	for w := pa; w < pa+n; w++ {
		c.codeBits[w>>6] |= 1 << (w & 63)
	}
}

// armBarrier installs the physical-memory write barrier once the first
// block with a body exists. Reference-only and block-free runs never pay
// for it.
func (c *CPU) armBarrier() {
	if c.barrierOn {
		return
	}
	c.barrierOn = true
	c.Bus.MMU.Phys.SetWriteBarrier(c.writeBarrier)
}

// writeBarrier invalidates every translated block whose body covers the
// written physical word, and every compiled trace whose span list does.
// It runs on every store, DMA move, and device poke, so the common case
// — a write outside any code range — must be one bounds check and one
// bit test.
func (c *CPU) writeBarrier(addr uint32) {
	w := addr >> 6
	if w >= uint32(len(c.codeBits)) || c.codeBits[w]&(1<<(addr&63)) == 0 {
		return
	}
	c.lockTraces()
	defer c.unlockTraces()
	for i := 0; i < len(c.liveBlocks); {
		b := c.liveBlocks[i]
		if addr-b.pa < b.cover {
			c.Trans.BlockInvalidations++
			c.dropBlock(b)
			continue // dropBlock swapped a new block into slot i
		}
		i++
	}
	for i := 0; i < len(c.liveTraces); {
		tr := c.liveTraces[i]
		if tr.covers(addr) {
			c.Trans.TraceInvalidations++
			c.dropTrace(tr)
			continue // dropTrace swapped a new trace into slot i
		}
		i++
	}
}

// InvalidateBlocks drops every translated block. Entry validation
// already keeps the cache coherent word by word; this exists so
// whole-image reloads and cache regrowth release translations eagerly.
// Live traces keep their own coverage, so the bitmap is rebuilt from
// their spans after the clear.
func (c *CPU) InvalidateBlocks() {
	c.lockTraces()
	for _, b := range c.liveBlocks {
		b.valid = false
	}
	c.liveBlocks = c.liveBlocks[:0]
	c.unlockTraces()
	for i := range c.bc {
		c.bc[i] = nil
	}
	for i := range c.codeBits {
		c.codeBits[i] = 0
	}
	c.lastBlk = nil
	for _, tr := range c.liveTraces {
		for _, sp := range tr.spans {
			c.coverWords(sp.pa, sp.n)
		}
	}
}
