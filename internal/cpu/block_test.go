package cpu

import (
	"testing"

	"mips/internal/isa"
	"mips/internal/mem"
)

// TestBlocksLoopMatchesFastAndReference runs the standard counted loop
// on all three engines — superblocks, per-instruction fast path, and
// the reference interpreter — and requires strictly identical
// architectural state and statistics. The block engine must also have
// actually chained: a loop that never takes a chain edge is not
// exercising the tentpole.
func TestBlocksLoopMatchesFastAndReference(t *testing.T) {
	blk := loopCPU(200)
	blk.SetTraces(false)
	run(t, blk, 100_000)

	fast := loopCPU(200)
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 100_000)

	ref := loopCPU(200)
	ref.SetTraces(false)
	ref.SetFastPath(false)
	run(t, ref, 100_000)

	if blk.Regs != fast.Regs || blk.Regs != ref.Regs {
		t.Errorf("registers diverge:\n blocks %v\n   fast %v\n    ref %v",
			blk.Regs, fast.Regs, ref.Regs)
	}
	if blk.Stats != fast.Stats || blk.Stats != ref.Stats {
		t.Errorf("stats diverge:\n blocks %+v\n   fast %+v\n    ref %+v",
			blk.Stats, fast.Stats, ref.Stats)
	}
	if blk.Regs[2] != 1000 {
		t.Errorf("r2 = %d, want 1000", blk.Regs[2])
	}
	if blk.Trans.BlockChained == 0 {
		t.Error("loop executed without a single chained block entry")
	}
}

// selfModifyCPU builds a looped straight-line run of `body` add words
// (long enough to span a block boundary when body > blockMaxWords)
// whose tail stores r3 into the physical word at storeTarget — text
// territory — every iteration.
func selfModifyCPU(iters int32, body int, storeTarget int32) *CPU {
	words := []isa.Instr{
		w(isa.LoadImm32(1, iters)),
		w(isa.Mov(3, isa.Imm(7))),
	}
	for i := 0; i < body; i++ {
		words = append(words, w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1))))
	}
	br := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	br.Target = 2
	words = append(words,
		w(isa.StoreAbs(3, storeTarget)),
		w(isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1))),
		w(br),
		w(isa.Nop()),
		halt,
	)
	return newTestCPU(words...)
}

// TestBlockSelfModifyStore covers the write-barrier coherence rule for
// stores into cached text. Instruction memory itself is untouched (the
// machine executes from IMem), so architectural results must match the
// per-instruction fast path exactly; what the barrier buys is that the
// affected blocks are dropped and rebuilt instead of executing stale.
func TestBlockSelfModifyStore(t *testing.T) {
	for _, tc := range []struct {
		name        string
		body        int
		storeTarget int32
	}{
		// The store lives past the first block boundary (body spans
		// blockMaxWords) and hits a word cached by the first block:
		// invalidation crosses the boundary between blocks.
		{"across-boundary", blockMaxWords + 8, 4},
		// The store hits a later word of its own still-running block:
		// the engine must bail at the store's exact instruction
		// boundary and rebuild.
		{"own-block", 16, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const iters = 50
			blk := selfModifyCPU(iters, tc.body, tc.storeTarget)
			blk.SetTraces(false)
			run(t, blk, 1_000_000)

			fast := selfModifyCPU(iters, tc.body, tc.storeTarget)
			fast.SetTraces(false)
			fast.SetBlocks(false)
			run(t, fast, 1_000_000)

			if blk.Regs != fast.Regs {
				t.Errorf("registers diverge:\n blocks %v\n   fast %v", blk.Regs, fast.Regs)
			}
			if blk.Stats != fast.Stats {
				t.Errorf("stats diverge:\n blocks %+v\n   fast %+v", blk.Stats, fast.Stats)
			}
			if want := uint32(iters * tc.body); blk.Regs[2] != want {
				t.Errorf("r2 = %d, want %d", blk.Regs[2], want)
			}
			if blk.Trans.BlockInvalidations == 0 {
				t.Error("self-modifying store never tripped the write barrier")
			}
			if tc.name == "own-block" && blk.Trans.BlockBails == 0 {
				t.Error("store into the running block did not bail at an instruction boundary")
			}
			// Every invalidation forces a rebuild on the next entry; a
			// translation count no higher than a clean run's would mean
			// stale blocks kept executing.
			if blk.Trans.BlockTranslations <= uint64(blk.Trans.BlockInvalidations) {
				t.Errorf("translations %d should exceed invalidations %d (rebuild per drop plus initial builds)",
					blk.Trans.BlockTranslations, blk.Trans.BlockInvalidations)
			}
		})
	}
}

// TestBlockPatchBetweenSteps is the harness self-modification contract:
// a writer that changes code must rewrite IMem (what the CPU executes
// and validates against) and write the physical word (what fires the
// barrier, as the kernel pager does). Chained blocks skip per-entry
// revalidation, so the Poke is what guarantees the patch takes effect
// on the very next Step.
func TestBlockPatchBetweenSteps(t *testing.T) {
	const iters = 1000
	c := loopCPU(iters)
	c.SetTraces(false)
	patched := false
	var left uint32
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		// Patch only at a loop-head Step boundary so the remaining
		// iteration count is exact: switch the accumulator step from
		// +r3 (5) to +1.
		if !patched && c.PC() == 2 && c.Regs[1] <= iters/2 && c.Regs[1] > 0 {
			patched = true
			left = c.Regs[1]
			c.IMem[2] = w(isa.ALU(isa.OpAdd, 2, isa.R(2), isa.Imm(1)))
			c.Bus.MMU.Phys.Poke(2, 0)
		}
	}
	if !patched {
		t.Fatal("patch point never reached (no loop-head Step boundary)")
	}
	if want := (iters-left)*5 + left; c.Regs[2] != want {
		t.Errorf("r2 = %d, want %d (stale block executed after patch)", c.Regs[2], want)
	}
	if c.Trans.BlockChained == 0 {
		t.Error("loop ran without chaining; the chain-trust path was not exercised")
	}
	if c.Trans.BlockInvalidations == 0 {
		t.Error("Poke into cached text never tripped the write barrier")
	}
}

// TestBlockDMAInvalidation has the DMA engine overwrite the loop's own
// text words on stolen free cycles while the loop is hot and chained.
// Each DMA word-write must drop the covering block mid-loop; execution
// continues exactly (IMem is untouched) and matches the fast path with
// the identical DMA schedule.
func TestBlockDMAInvalidation(t *testing.T) {
	build := func() *CPU {
		c := loopCPU(5000)
		c.SetTraces(false)
		dma := mem.NewDMA(c.Bus.MMU.Phys)
		c.Bus.DMA = dma
		// Dst 0 overwrites physical words 0..7: the loop's text range.
		dma.Queue(mem.Transfer{Src: 0x4000, Dst: 0, Words: 8})
		return c
	}
	blk := build()
	run(t, blk, 1_000_000)

	fast := build()
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)

	if blk.Regs != fast.Regs {
		t.Errorf("registers diverge:\n blocks %v\n   fast %v", blk.Regs, fast.Regs)
	}
	if blk.Stats != fast.Stats {
		t.Errorf("stats diverge:\n blocks %+v\n   fast %+v", blk.Stats, fast.Stats)
	}
	if blk.Regs[2] != 25000 {
		t.Errorf("r2 = %d, want 25000", blk.Regs[2])
	}
	if blk.Stats.DMACycles == 0 {
		t.Fatal("DMA consumed no free cycles; the mid-loop case was not exercised")
	}
	if blk.Trans.BlockChained == 0 {
		t.Error("loop ran without chaining")
	}
	if blk.Trans.BlockInvalidations == 0 {
		t.Error("DMA writes into cached text never tripped the write barrier")
	}
}

// TestBlockEngineToggle switches the superblock engine on and off
// mid-run; machine state is shared with the per-instruction path, so
// execution must continue seamlessly from any Step boundary.
func TestBlockEngineToggle(t *testing.T) {
	c := loopCPU(300)
	c.SetTraces(false)
	on := true
	for !c.Halted {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		on = !on
		c.SetBlocks(on)
	}
	if c.Regs[2] != 1500 {
		t.Errorf("r2 = %d, want 1500", c.Regs[2])
	}
}
