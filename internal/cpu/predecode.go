package cpu

// The predecode cache: the simulator's own application of the paper's
// thesis that work belongs out of the dynamic hot path. The reference
// engine re-examines an instruction word's pieces — two pointer
// indirections, a kind switch, operand unwrapping, privilege and nop
// classification — on every execution. The fast path does all of that
// once per (physical address, word) pair and stores the result as a
// flat executable record in a direct-mapped cache; steady-state
// execution then runs over contiguous flat records with no pointer
// chasing and no heap allocation.
//
// Correctness with a mutable instruction store is by identity check,
// not by write hooks: every fetch compares the cached record's source
// word against the live IMem slot (isa.Instr is two piece pointers, so
// the comparison is two loads). Any path that changes instruction
// memory — LoadImage reuse, a harness writing c.IMem[pc] directly, the
// kernel's paging disk recycling a frame for a different process's code
// page — changes the slot's piece pointers and misses the cache, which
// re-decodes. LoadImage additionally drops the whole cache so records
// for a discarded image do not linger.

import (
	"mips/internal/isa"
	"mips/internal/mem"
)

const (
	// pdMinEntries is the predecode cache size a CPU starts with; the
	// cache grows on demand up to pdMaxEntries and is then direct-mapped
	// over the low address bits. Both are powers of two.
	pdMinEntries = 1 << 8
	pdMaxEntries = 1 << 15
)

// decoded flags.
const (
	fNop  uint8 = 1 << iota // the word performs no work
	fPriv                   // some piece requires supervisor privilege
	// fEager marks a block-body load whose delayed commit is
	// statically unobservable (the next word neither reads the
	// destination nor can stop the machine), so the block engine
	// writes the register immediately. Set only on block-private
	// records, never in the predecode cache.
	fEager
)

// fastOp is a predecoded operand: either an immediate value, already
// widened, or a register number.
type fastOp struct {
	imm bool
	reg isa.Reg
	val uint32
}

func mkFastOp(o isa.Operand) fastOp {
	if o.IsImm {
		return fastOp{imm: true, val: uint32(o.Imm)}
	}
	return fastOp{reg: o.Reg}
}

// fastOperand reads a predecoded operand with the same architectural
// side effects (hazard audit, interlock stalls) as operand.
func (c *CPU) fastOperand(o fastOp, pc uint32) uint32 {
	if o.imm {
		return o.val
	}
	return c.readReg(o.reg, pc)
}

// decoded is the flat executable record of one instruction word. pa and
// src identify the word it was decoded from; the rest is everything
// execution needs, laid out without indirection.
type decoded struct {
	pa  uint32
	src isa.Instr

	flags uint8
	// bclass is the lean execution class the superblock engine assigns
	// at block translation (blockcache.go); predecode-cache records
	// leave it at bcGeneral, which is always safe.
	bclass uint8
	// nopRun is the length of the consecutive nop run starting at this
	// word, set only on block-body records: the block engine retires a
	// whole run with bulk accounting when nothing can observe the
	// intermediate cycles.
	nopRun uint8

	// ALU slot (PieceALU or PieceSetCond); PieceNop when absent.
	aluKind    isa.PieceKind
	aluOp      isa.ALUOp
	aluUnary   bool
	aluDstRead bool // multiply/divide steps read the destination
	aluDst     isa.Reg
	aluCmp     isa.Cmp
	a1, a2     fastOp

	// Memory/control slot; PieceNop when absent.
	memKind  isa.PieceKind
	mode     isa.AddrMode
	memCmp   isa.Cmp
	data     isa.Reg
	base     isa.Reg
	index    isa.Reg
	shift    uint8
	linkDst  isa.Reg
	specOp   isa.SpecialOp
	specReg  isa.SpecialReg
	trapCode uint16
	disp     int32
	target   uint32
	m1, m2   fastOp
}

// decodeWord fills d with the flat record for the word in at physical
// address pa. It mirrors exactly what execWord reads from the pieces.
func decodeWord(d *decoded, pa uint32, in isa.Instr) {
	*d = decoded{pa: pa, src: in, aluKind: isa.PieceNop, memKind: isa.PieceNop}
	if in.IsNop() {
		d.flags |= fNop
	}
	if p := in.ALU; p != nil {
		if p.Privileged() {
			d.flags |= fPriv
		}
		if !p.IsNop() {
			d.aluKind = p.Kind
			d.aluOp = p.Op
			d.aluUnary = p.Op.Unary()
			d.aluDstRead = p.Op == isa.OpMStep || p.Op == isa.OpDStep
			d.aluDst = p.Dst
			d.aluCmp = p.Cmp
			d.a1 = mkFastOp(p.Src1)
			d.a2 = mkFastOp(p.Src2)
		}
	}
	if p := in.Mem; p != nil {
		if p.Privileged() {
			d.flags |= fPriv
		}
		if !p.IsNop() {
			d.memKind = p.Kind
			d.mode = p.Mode
			d.memCmp = p.Cmp
			d.data = p.Data
			d.base = p.Base
			d.index = p.Index
			d.shift = p.Shift
			d.linkDst = p.Dst
			d.specOp = p.SpecOp
			d.specReg = p.SpecReg
			d.trapCode = p.TrapCode
			d.disp = p.Disp
			d.target = uint32(p.Target)
			d.m1 = mkFastOp(p.Src1)
			d.m2 = mkFastOp(p.Src2)
		}
	}
}

// InvalidateDecoded drops every predecoded record. Fetch validation
// (comparing the cached source word against live instruction memory)
// already keeps the cache coherent; this exists so whole-image reloads
// release records eagerly instead of aging them out slot by slot.
func (c *CPU) InvalidateDecoded() {
	for i := range c.pd {
		c.pd[i] = decoded{}
	}
}

// pdSlot returns the cache slot for a physical address, growing the
// direct-mapped cache (up to pdMaxEntries) when the program's footprint
// exceeds it, so small programs keep a small cache and large ones avoid
// conflict misses.
func (c *CPU) pdSlot(pa uint32) *decoded {
	if pa >= uint32(len(c.pd)) && len(c.pd) < pdMaxEntries {
		size := len(c.pd)
		for size < pdMaxEntries && uint32(size) <= pa {
			size *= 2
		}
		c.pd = make([]decoded, size)
		c.pdMask = uint32(size - 1)
	}
	return &c.pd[pa&c.pdMask]
}

// fetchFast translates the PC and returns the predecoded record for the
// instruction there, decoding on a miss. Fault behavior is identical to
// fetch.
func (c *CPU) fetchFast(pc uint32) (*decoded, *mem.Fault) {
	pa := pc
	if c.Mapped() {
		var f *mem.Fault
		pa, f = c.Bus.MMU.Translate(pc, false, true)
		if f != nil {
			return nil, f
		}
	}
	if pa >= uint32(len(c.IMem)) {
		return nil, &mem.Fault{Cause: isa.CausePageFault, Addr: pa}
	}
	in := c.IMem[pa]
	if in.ALU == nil && in.Mem == nil {
		// Unprogrammed instruction memory decodes as illegal.
		return nil, &mem.Fault{Cause: isa.CauseIllegal, Addr: pa}
	}
	d := c.pdSlot(pa)
	if d.pa != pa || d.src != in {
		// A populated slot bound to a different physical address is a
		// direct-mapped collision: the aliasing case the d.pa binding
		// exists to keep from cross-validating.
		if d.pa != pa && (d.src.ALU != nil || d.src.Mem != nil) {
			c.Trans.PredecodeCollisions++
		}
		c.Trans.PredecodeMisses++
		decodeWord(d, pa, in)
	} else {
		c.Trans.PredecodeHits++
	}
	return d, nil
}

// stepFast is the fast-path body of Step after the common preamble:
// fetch through the predecode cache, then execute the flat record.
func (c *CPU) stepFast(pc uint32) {
	d, fault := c.fetchFast(pc)
	if fault != nil {
		c.Bus.LastFault = fault
		c.exception(fault.Cause, isa.CauseNone, 0)
		return
	}

	// Privilege is enforced at decode, here predecoded into a flag.
	if d.flags&fPriv != 0 && !c.Sur.Supervisor() {
		c.exception(isa.CausePrivilege, isa.CauseNone, 0)
		return
	}

	c.popPC()
	if c.onStep != nil {
		c.onStep(pc, d.src)
	}
	c.execFast(d, pc)
	c.Bus.Tick()
}

// fastAddr computes a load/store effective address from a flat record,
// reading registers in the same order as effectiveAddr.
func (c *CPU) fastAddr(d *decoded, pc uint32) uint32 {
	switch d.mode {
	case isa.AModeAbs:
		return uint32(d.disp)
	case isa.AModeDisp:
		return c.readReg(d.base, pc) + uint32(d.disp)
	case isa.AModeIndex:
		return c.readReg(d.base, pc) + c.readReg(d.index, pc)
	case isa.AModeShift:
		return c.readReg(d.base, pc) + c.readReg(d.index, pc)>>d.shift
	}
	return 0
}

// execFast executes one predecoded instruction word. It is the flat
// mirror of execWord: same read order, same statistics, same hook
// firings, same fault behavior, ending in the shared finishWord tail.
func (c *CPU) execFast(d *decoded, pc uint32) {
	c.Stats.Instructions++
	c.Stats.Cycles++
	if d.flags&fNop != 0 {
		c.Stats.Nops++
		c.Stats.FreeCycles++
		c.Bus.offerFree(&c.Stats)
		return
	}

	c.nstage = 0
	var loVal uint32
	hasLo := false
	overflow := false
	var memFault *mem.Fault
	trapCode := -1

	// ALU-class piece: compute but do not write yet.
	switch d.aluKind {
	case isa.PieceALU:
		c.Stats.Pieces++
		a := c.fastOperand(d.a1, pc)
		var b uint32
		if !d.aluUnary {
			b = c.fastOperand(d.a2, pc)
		}
		var dstVal uint32
		if d.aluDstRead {
			dstVal = c.readReg(d.aluDst, pc)
		}
		v, lo, ovf := aluEval(d.aluOp, a, b, dstVal, c.Lo)
		if ovf && c.Sur.OverflowEnabled() {
			overflow = true
		}
		if d.aluOp == isa.OpMovLo {
			loVal, hasLo = lo, true
		} else {
			c.stagePut(d.aluDst, v, false)
		}
	case isa.PieceSetCond:
		c.Stats.Pieces++
		a := c.fastOperand(d.a1, pc)
		b := c.fastOperand(d.a2, pc)
		var v uint32
		if d.aluCmp.Eval(a, b) {
			v = 1
		}
		c.stagePut(d.aluDst, v, false)
	}

	// Memory/control piece.
	usedDataCycle := false
	switch d.memKind {
	case isa.PieceNop:
	case isa.PieceLoad:
		c.Stats.Pieces++
		usedDataCycle = true
		if d.mode == isa.AModeLongImm {
			// The long immediate comes from the instruction stream,
			// not the data port: no data cycle and no load delay.
			usedDataCycle = false
			c.stagePut(d.data, uint32(d.disp), false)
			break
		}
		addr := c.fastAddr(d, pc)
		v, f := c.Bus.Read(addr, c.Mapped())
		if f != nil {
			memFault = f
			break
		}
		c.Stats.Loads++
		if c.onMem != nil {
			c.onMem(pc, addr, false)
		}
		c.stagePut(d.data, v, true)
	case isa.PieceStore:
		c.Stats.Pieces++
		usedDataCycle = true
		addr := c.fastAddr(d, pc)
		val := c.readReg(d.data, pc)
		if f := c.Bus.Write(addr, val, c.Mapped()); f != nil {
			memFault = f
			break
		}
		c.Stats.Stores++
		if c.onMem != nil {
			c.onMem(pc, addr, true)
		}
	case isa.PieceBranch:
		c.Stats.Pieces++
		c.Stats.Branches++
		a := c.fastOperand(d.m1, pc)
		b := c.fastOperand(d.m2, pc)
		taken := d.memCmp.Eval(a, b)
		if taken {
			c.Stats.TakenBranches++
			c.scheduleBranch(d.target, isa.BranchDelay)
		}
		if c.onBranch != nil {
			c.onBranch(pc, d.target, taken)
		}
	case isa.PieceJump:
		c.Stats.Pieces++
		c.Stats.Branches++
		c.Stats.TakenBranches++
		c.scheduleBranch(d.target, isa.BranchDelay)
		if c.onBranch != nil {
			c.onBranch(pc, d.target, true)
		}
	case isa.PieceCall:
		c.Stats.Pieces++
		c.Stats.Branches++
		c.Stats.TakenBranches++
		// The link value is the address the subroutine returns to:
		// past the call and its delay slot.
		c.stagePut(d.linkDst, pc+1+isa.BranchDelay, false)
		c.scheduleBranch(d.target, isa.BranchDelay)
		if c.onBranch != nil {
			c.onBranch(pc, d.target, true)
		}
	case isa.PieceJumpInd:
		c.Stats.Pieces++
		c.Stats.Branches++
		c.Stats.TakenBranches++
		target := c.fastOperand(d.m1, pc)
		c.scheduleBranch(target, isa.IndirectJumpDelay)
		if c.onBranch != nil {
			c.onBranch(pc, target, true)
		}
	case isa.PieceTrap:
		c.Stats.Pieces++
		trapCode = int(d.trapCode)
	case isa.PieceSpecial:
		c.Stats.Pieces++
		c.doSpecial(d.specOp, d.specReg, d.linkDst, d.m1.reg)
	}

	c.finishWord(pc, usedDataCycle, overflow, memFault, trapCode, loVal, hasLo)
}
