package cpu

import (
	"testing"

	"mips/internal/isa"
)

// shadowBranchCPU builds a counted loop whose inner branch targets its
// own delay slot (word 4 = branch PC 3 + 1): execution is well defined
// on every engine, but trace formation must refuse the block — the
// recorded successor cannot disambiguate the branch direction — and
// poison the entry so steady state stops re-recording.
func shadowBranchCPU(n int32) *CPU {
	shadow := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	shadow.Target = 4 // own shadow: branch PC 3, delay slot 4
	back := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	back.Target = 2
	return newTestCPU(
		w(isa.LoadImm32(1, n)), // 0
		w(isa.Nop()),           // 1
		w(isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1))), // 2: loop entry
		w(shadow),    // 3: bne r1, #0, 4 (own delay slot)
		w(isa.Nop()), // 4: delay slot / shadow target
		w(back),      // 5: bne r1, #0, 2
		w(isa.Nop()), // 6: branch delay
		halt,         // 7
	)
}

// TestHeatNeverShadowBranchPoisoning covers the heatNever path: a hot
// entry whose first block refuses (shadow-target branch) is poisoned,
// the refusal lands in the taxonomy, and — the point of poisoning — the
// entry is never re-recorded: re-running the same code from the same
// machine leaves every formation counter exactly where it was.
func TestHeatNeverShadowBranchPoisoning(t *testing.T) {
	c := shadowBranchCPU(3000)
	c.SetChainFollow(1) // every block entry is a Step: heat warms fast
	run(t, c, 1_000_000)

	if c.Trans.TraceFormRefusals[RefusalShadowBranch] == 0 {
		t.Fatal("shadow-target branch never refused formation")
	}
	if c.Trans.TracePoisoned == 0 {
		t.Fatal("refused entry was never poisoned")
	}
	// The loop entry (word 2) records a path whose first block is the
	// shadow branch's: the whole recording refuses and the entry must
	// be heatNever.
	if h := c.heat[2&(heatEntries-1)]; h.pc != 2 || h.n != heatNever {
		t.Fatalf("loop entry not poisoned: heat slot %+v", h)
	}

	refusals := c.Trans.TraceFormRefusals
	poisoned := c.Trans.TracePoisoned
	formed := c.Trans.TraceFormed

	// Same machine, same code, second run: every poisoned entry stays
	// poisoned, so no recording, refusal, or poisoning may recur.
	c.Halted = false
	c.SetPC(0)
	run(t, c, 1_000_000)
	if c.Trans.TraceFormRefusals != refusals {
		t.Errorf("refusals recounted after poisoning: %v -> %v", refusals, c.Trans.TraceFormRefusals)
	}
	if c.Trans.TracePoisoned != poisoned {
		t.Errorf("entry re-poisoned: %d -> %d", poisoned, c.Trans.TracePoisoned)
	}
	if c.Trans.TraceFormed != formed {
		t.Errorf("poisoned entries re-recorded: formed %d -> %d", formed, c.Trans.TraceFormed)
	}
}

// TestDeoptTaxonomyPartition pins the core invariant on a live machine:
// the per-reason deopt counters partition TraceGuardExits exactly, the
// loop's exit branch shows up as a branch-direction deopt, and the
// per-site view (TraceSites) attributes the same counts per entry PC.
func TestDeoptTaxonomyPartition(t *testing.T) {
	c := tracesCPU(6000)
	run(t, c, 1_000_000)

	if c.Trans.TraceGuardExits == 0 {
		t.Fatal("loop recorded no guard exits; the partition check is vacuous")
	}
	if got, want := c.Trans.GuardExitReasonTotal(), c.Trans.TraceGuardExits; got != want {
		t.Errorf("deopt reasons sum to %d, want TraceGuardExits %d", got, want)
	}
	if c.Trans.TraceDeopts[DeoptBranchDirection] == 0 {
		t.Error("loop exit never counted as a branch-direction deopt")
	}

	sites := c.TraceSites()
	if len(sites) == 0 {
		t.Fatal("no live trace sites after a traced run")
	}
	var hits, instrs, sideHits, icHits uint64
	var perSite [NumDeoptReasons]uint64
	for _, s := range sites {
		hits += s.Hits
		instrs += s.Instrs
		sideHits += s.SideHits
		icHits += s.ICHits
		for r, v := range s.Deopts {
			perSite[r] += v
		}
	}
	// Nothing invalidates in this program, so every dispatch and deopt
	// is still attributed to a live site.
	if hits != c.Trans.TraceDispatchHits {
		t.Errorf("site hits sum to %d, want TraceDispatchHits %d", hits, c.Trans.TraceDispatchHits)
	}
	if perSite != c.Trans.TraceDeopts {
		t.Errorf("site deopts %v, want global %v", perSite, c.Trans.TraceDeopts)
	}
	if instrs == 0 || instrs != c.Trans.TierInstrs[TierTraces] {
		t.Errorf("site instrs sum to %d, want trace-tier residency %d", instrs, c.Trans.TierInstrs[TierTraces])
	}
	// The in-tier resolution counters partition per-site exactly like the
	// guard exits: every side/IC hit is attributed to the exiting trace.
	if sideHits != c.Trans.TraceSideHits {
		t.Errorf("site side hits sum to %d, want global %d", sideHits, c.Trans.TraceSideHits)
	}
	if icHits != c.Trans.TraceICHits {
		t.Errorf("site IC hits sum to %d, want global %d", icHits, c.Trans.TraceICHits)
	}
}

// TestDeoptInvalidationReason: the store-into-own-trace exit classifies
// as an invalidation deopt, not any other reason.
func TestDeoptInvalidationReason(t *testing.T) {
	c := descendingStoreCPU(280, 286)
	c.SetTraces(true)
	c.SetChainFollow(1)
	run(t, c, 1_000_000)
	if c.Trans.TraceInvalidations == 0 {
		t.Fatal("write barrier never fired; the case is not exercised")
	}
	if c.Trans.TraceDeopts[DeoptInvalidation] == 0 {
		t.Error("self-invalidating store never counted as an invalidation deopt")
	}
	if got, want := c.Trans.GuardExitReasonTotal(), c.Trans.TraceGuardExits; got != want {
		t.Errorf("deopt reasons sum to %d, want TraceGuardExits %d", got, want)
	}
}

// TestTierResidency pins the residency partition per engine: every
// retired instruction charges exactly one tier, and single-engine runs
// charge only their own tier.
func TestTierResidency(t *testing.T) {
	trc := tracesCPU(6000)
	run(t, trc, 1_000_000)
	if got, want := trc.Trans.TierInstrTotal(), trc.Stats.Instructions; got != want {
		t.Errorf("traces run: tiers sum to %d, want Instructions %d", got, want)
	}
	if trc.Trans.TierInstrs[TierTraces] == 0 {
		t.Error("traced loop retired nothing in the trace tier")
	}
	if trc.Trans.TierInstrs[TierBlocks] == 0 {
		t.Error("traced loop retired nothing in the blocks tier (warm-up runs there)")
	}

	fast := loopCPU(1000)
	fast.SetTraces(false)
	fast.SetBlocks(false)
	run(t, fast, 1_000_000)
	if fast.Trans.TierInstrs[TierFast] != fast.Stats.Instructions {
		t.Errorf("fast-only run: tier fast %d, want all %d",
			fast.Trans.TierInstrs[TierFast], fast.Stats.Instructions)
	}

	ref := loopCPU(1000)
	ref.SetTraces(false)
	ref.SetBlocks(false)
	ref.SetFastPath(false)
	run(t, ref, 1_000_000)
	if ref.Trans.TierInstrs[TierReference] != ref.Stats.Instructions {
		t.Errorf("reference run: tier reference %d, want all %d",
			ref.Trans.TierInstrs[TierReference], ref.Stats.Instructions)
	}
}

// TestJITEventHook drives the full event lifecycle through SetJITHook:
// a hot loop must report formation, compilation, a single cold dispatch
// per trace, and reasoned guard exits, in a causally sensible order.
func TestJITEventHook(t *testing.T) {
	c := tracesCPU(6000)
	c.ShareTraces() // exercise the shared-mutation path under events
	var events []JITEvent
	c.SetJITHook(func(e JITEvent) { events = append(events, e) })
	run(t, c, 1_000_000)

	var byKind [8]int
	for _, e := range events {
		byKind[e.Kind]++
	}
	if byKind[JITFormed] == 0 || byKind[JITCompiled] == 0 {
		t.Fatalf("no formation events: formed=%d compiled=%d", byKind[JITFormed], byKind[JITCompiled])
	}
	if got, want := byKind[JITCompiled], int(c.Trans.TraceCompiled); got != want {
		t.Errorf("compiled events %d, want counter %d", got, want)
	}
	if got, want := byKind[JITDispatchCold], int(c.Trans.TraceCompiled+c.Trans.TraceSideCompiled); got != want {
		t.Errorf("dispatch-cold events %d, want one per compiled trace and side stub (%d)", got, want)
	}
	if got, want := byKind[JITSideCompiled], int(c.Trans.TraceSideCompiled); got != want {
		t.Errorf("side-compiled events %d, want counter %d", got, want)
	}
	if got, want := byKind[JITGuardExit], int(c.Trans.TraceGuardExits); got != want {
		t.Errorf("guard-exit events %d, want counter %d", got, want)
	}
	for _, e := range events {
		if e.Kind == JITGuardExit && DeoptReason(e.Reason) >= NumDeoptReasons {
			t.Fatalf("guard-exit event with invalid reason %d", e.Reason)
		}
		if e.Kind == JITRefused && FormRefusal(e.Reason) >= NumFormRefusals {
			t.Fatalf("refusal event with invalid reason %d", e.Reason)
		}
	}
	// Cycle stamps never decrease: events arrive in machine order.
	var last uint64
	for _, e := range events {
		if e.Cycle < last {
			t.Fatalf("event cycle went backwards: %d after %d", e.Cycle, last)
		}
		last = e.Cycle
	}
}

// TestBlockSitesHeatmap: the per-PC block view counts entries for the
// hot loop block and its execs line up with residency being nonzero.
func TestBlockSitesHeatmap(t *testing.T) {
	c := loopCPU(2000)
	c.SetTraces(false)
	run(t, c, 1_000_000)
	sites := c.BlockSites()
	if len(sites) == 0 {
		t.Fatal("no live blocks after a block-engine run")
	}
	var hot *BlockSite
	for i := range sites {
		if sites[i].EntryPC == 2 {
			hot = &sites[i]
		}
	}
	if hot == nil || hot.Execs < 1000 {
		t.Fatalf("loop block missing or cold in BlockSites: %+v", sites)
	}
	if c.Trans.TierInstrs[TierBlocks] == 0 {
		t.Error("block run retired nothing in the blocks tier")
	}
}

// TestReasonNames pins the metric suffixes: exporters build family
// names from these, so a rename is a breaking change.
func TestReasonNames(t *testing.T) {
	wantDeopt := []string{"branch_direction", "indirect_target", "queue_shape", "fault", "invalidation", "halt"}
	for r, want := range wantDeopt {
		if got := DeoptReason(r).String(); got != want {
			t.Errorf("DeoptReason(%d) = %q, want %q", r, got, want)
		}
	}
	wantRef := []string{"privileged", "shadow_branch", "jump_ind", "delay_slot", "block", "short_path", "op_budget"}
	for r, want := range wantRef {
		if got := FormRefusal(r).String(); got != want {
			t.Errorf("FormRefusal(%d) = %q, want %q", r, got, want)
		}
	}
	wantTier := []string{"reference", "fast", "blocks", "traces"}
	for r, want := range wantTier {
		if got := Tier(r).String(); got != want {
			t.Errorf("Tier(%d) = %q, want %q", r, got, want)
		}
	}
	wantKind := []string{"formed", "compiled", "dispatch_cold", "guard_exit",
		"invalidated", "refused", "poisoned", "side_compiled"}
	for k, want := range wantKind {
		if got := JITEventKind(k).String(); got != want {
			t.Errorf("JITEventKind(%d) = %q, want %q", k, got, want)
		}
	}
	if DeoptReason(200).String() != "unknown" || FormRefusal(200).String() != "unknown" ||
		Tier(200).String() != "unknown" || JITEventKind(200).String() != "unknown" {
		t.Error("out-of-range reason does not stringify as unknown")
	}
}
