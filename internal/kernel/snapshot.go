package kernel

import (
	"sort"

	"mips/internal/isa"
)

// State is a capture of the kernel machine's device complement: the
// console, the interval timer, the paging disk (backing store included),
// and the page-map port's staging registers. The CPU, physical memory,
// and MMU are captured separately by their own packages; the kernel's
// own scheduling state (process table, counters) lives in kernel RAM and
// rides along in the physical-memory capture.
type State struct {
	Console []byte

	TimerPeriod  uint32
	TimerCounter uint32
	TimerPending bool

	DiskVPage  uint32
	DiskFrame  uint32
	DiskPages  []DiskPage
	DiskReads  int
	DiskWrites int

	PMVPage uint32
	PMFrame uint32
	PMFlags uint32

	NProc int
}

// DiskPage is one backing-store page: data words, instruction words, or
// both (the machine's dual memory interface pages them together).
type DiskPage struct {
	VPage uint32
	Data  []uint32
	Code  []isa.Instr
}

// CaptureState snapshots the device state. Disk pages are sorted by
// virtual page so identical machines capture identical bytes; page
// contents are copied, sharing nothing with the live machine.
func (m *Machine) CaptureState() State {
	st := State{
		Console:      append([]byte(nil), m.dev.console.Bytes()...),
		TimerPeriod:  m.dev.timer.period,
		TimerCounter: m.dev.timer.counter,
		TimerPending: m.dev.timer.pending,
		DiskVPage:    m.disk.vpage,
		DiskFrame:    m.disk.frame,
		DiskReads:    m.disk.reads,
		DiskWrites:   m.disk.writes,
		PMVPage:      m.pmPort.vpage,
		PMFrame:      m.pmPort.frame,
		PMFlags:      m.pmPort.flags,
		NProc:        m.nproc,
	}
	pages := map[uint32]bool{}
	for v := range m.disk.data {
		pages[v] = true
	}
	for v := range m.disk.code {
		pages[v] = true
	}
	for v := range pages {
		pg := DiskPage{VPage: v}
		if ws, ok := m.disk.data[v]; ok {
			pg.Data = append([]uint32(nil), ws...)
		}
		if ws, ok := m.disk.code[v]; ok {
			pg.Code = append([]isa.Instr(nil), ws...)
		}
		st.DiskPages = append(st.DiskPages, pg)
	}
	sort.Slice(st.DiskPages, func(i, j int) bool { return st.DiskPages[i].VPage < st.DiskPages[j].VPage })
	return st
}

// RestoreState replaces the device state with a previous capture. The
// caller restores the CPU, physical memory, and MMU separately.
//
// Backing-store page contents are adopted by reference, not copied: the
// disk's write path (writeBack) always replaces a map entry with a
// freshly built slice and never mutates one in place, so any number of
// machines restored from one capture — warm forks sharing a template's
// decoded wire — may share the page slices safely. Only the maps
// themselves are per-machine.
func (m *Machine) RestoreState(st State) {
	m.dev.console.Reset()
	m.dev.console.Write(st.Console)
	m.dev.timer.period = st.TimerPeriod
	m.dev.timer.counter = st.TimerCounter
	m.dev.timer.pending = st.TimerPending
	m.disk.vpage = st.DiskVPage
	m.disk.frame = st.DiskFrame
	m.disk.reads = st.DiskReads
	m.disk.writes = st.DiskWrites
	m.disk.data = make(map[uint32][]uint32, len(st.DiskPages))
	m.disk.code = make(map[uint32][]isa.Instr, len(st.DiskPages))
	for _, pg := range st.DiskPages {
		if pg.Data != nil {
			m.disk.data[pg.VPage] = pg.Data
		}
		if pg.Code != nil {
			m.disk.code[pg.VPage] = pg.Code
		}
	}
	m.pmPort.vpage = st.PMVPage
	m.pmPort.frame = st.PMFrame
	m.pmPort.flags = st.PMFlags
	m.nproc = st.NProc
}
