package kernel

import (
	"bytes"
	"strconv"

	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/mem"
)

// Memory-mapped device registers. The window sits above physical RAM;
// only unmapped (supervisor) references can reach it, which together
// with the two-level privilege scheme "protects the exterior mapping
// unit and any peripherals ... from user level processes" (paper §3.2).
const (
	// IOBase sits above the largest supported RAM (4M words) and within
	// the reach of a long-immediate constant (signed 24 bits), so the
	// kernel can name device registers in one instruction.
	IOBase = 6 << 20

	RegHalt       = IOBase + 0  // write: stop the machine
	RegConsoleCh  = IOBase + 1  // write: append a character
	RegConsoleInt = IOBase + 2  // write: append a decimal integer and newline
	RegFaultAddr  = IOBase + 3  // read: system virtual address of the last fault
	RegFaultWrite = IOBase + 4  // read: 1 if the last fault was a write
	RegIntSource  = IOBase + 5  // read: which device requests service (prioritized)
	RegTimerAck   = IOBase + 6  // write: acknowledge the timer interrupt
	RegTimerSet   = IOBase + 7  // write: set the timer period (0 disables)
	RegDiskVPage  = IOBase + 8  // write: virtual page to transfer
	RegDiskFrame  = IOBase + 9  // write: frame to fill or write back
	RegDiskGo     = IOBase + 10 // write: read the page into the frame (immediate)
	RegPMVPage    = IOBase + 11 // write: page-map port, virtual page
	RegPMFrame    = IOBase + 12 // write: page-map port, frame
	RegPMFlags    = IOBase + 13 // write: page-map port, flags (bit0 writable)
	RegPMOp       = IOBase + 14 // write: 1 install, 2 remove
	RegDiskWrite  = IOBase + 15 // write: write the frame back to the page (immediate)
	ioLimit       = IOBase + 16
)

// Interrupt source codes returned by RegIntSource, the "external
// prioritization logic" the global interrupt handler queries (§3.3).
const (
	IntNone  = 0
	IntTimer = 1
)

// devices is the single bus device multiplexing all kernel peripherals.
// One struct keeps the address decode in one place, as a real I/O
// decoder would.
type devices struct {
	m *Machine

	console bytes.Buffer
	timer   timer
}

type timer struct {
	period  uint32
	counter uint32
	pending bool
}

func (d *devices) Contains(phys uint32) bool { return phys >= IOBase && phys < ioLimit }

func (d *devices) ReadWord(phys uint32) uint32 {
	switch phys {
	case RegFaultAddr:
		if f := d.m.CPU.Bus.LastFault; f != nil {
			return f.Addr
		}
	case RegFaultWrite:
		if f := d.m.CPU.Bus.LastFault; f != nil && f.Write {
			return 1
		}
	case RegIntSource:
		if d.timer.pending {
			return IntTimer
		}
		return IntNone
	}
	return 0
}

func (d *devices) WriteWord(phys, val uint32) {
	switch phys {
	case RegHalt:
		d.m.CPU.Halt()
	case RegConsoleCh:
		d.console.WriteByte(byte(val))
	case RegConsoleInt:
		d.console.WriteString(strconv.FormatInt(int64(int32(val)), 10))
		d.console.WriteByte('\n')
	case RegTimerAck:
		d.timer.pending = false
		d.updateIntLine()
	case RegTimerSet:
		d.timer.period = val
		d.timer.counter = 0
	case RegDiskVPage:
		d.m.disk.vpage = val
	case RegDiskFrame:
		d.m.disk.frame = val
	case RegDiskGo:
		d.m.disk.transfer(d.m)
	case RegDiskWrite:
		d.m.disk.writeBack(d.m)
	case RegPMVPage:
		d.m.pmPort.vpage = val
	case RegPMFrame:
		d.m.pmPort.frame = val
	case RegPMFlags:
		d.m.pmPort.flags = val
	case RegPMOp:
		switch val {
		case 1:
			d.m.CPU.Bus.MMU.Map.Map(d.m.pmPort.vpage, d.m.pmPort.frame, d.m.pmPort.flags&1 != 0)
		case 2:
			d.m.CPU.Bus.MMU.Map.Unmap(d.m.pmPort.vpage)
		}
	}
}

// Tick advances the interval timer; on expiry it raises the single
// interrupt line until acknowledged. The timer counts user-level cycles
// only — it meters process time, so a long exception path cannot starve
// the process it interrupts.
func (d *devices) Tick() {
	if d.timer.period == 0 || d.m.CPU.Sur.Supervisor() {
		return
	}
	d.timer.counter++
	if d.timer.counter >= d.timer.period {
		d.timer.counter = 0
		d.timer.pending = true
		d.updateIntLine()
	}
}

func (d *devices) updateIntLine() {
	d.m.CPU.Interrupt(d.timer.pending)
}

// pmPort is the staging registers of the off-chip page map's MMIO port.
type pmPort struct {
	vpage, frame, flags uint32
}

// disk is the paging store: a map from system virtual page to page
// contents (both data words and instruction words, since the machine has
// a dual instruction/data memory interface). A "go" command copies the
// page into the selected frame.
type disk struct {
	vpage, frame uint32
	data         map[uint32][]uint32
	code         map[uint32][]isa.Instr
	reads        int
	writes       int
}

func newDisk() *disk {
	return &disk{data: make(map[uint32][]uint32), code: make(map[uint32][]isa.Instr)}
}

// addPage installs backing-store contents for a system virtual page.
func (dk *disk) addPage(vpage uint32, code []isa.Instr, data []uint32) {
	if code != nil {
		dk.code[vpage] = code
	}
	if data != nil {
		dk.data[vpage] = data
	}
}

// transfer fills the selected frame from backing store. A page with no
// backing contents is zero-filled (fresh stack or heap).
func (dk *disk) transfer(m *Machine) {
	dk.reads++
	base := dk.frame << mem.PageBits
	for i := uint32(0); i < mem.PageWords; i++ {
		m.Phys.Poke(base+i, 0)
	}
	if ws, ok := dk.data[dk.vpage]; ok {
		for i, w := range ws {
			m.Phys.Poke(base+uint32(i), w)
		}
	}
	// Instruction memory is physically indexed alongside data memory.
	end := int(base) + mem.PageWords
	if end > len(m.CPU.IMem) {
		grown := make([]isa.Instr, end)
		copy(grown, m.CPU.IMem)
		m.CPU.IMem = grown
	}
	for i := range m.CPU.IMem[base:end] {
		m.CPU.IMem[base+uint32(i)] = isa.Instr{}
	}
	if ws, ok := dk.code[dk.vpage]; ok {
		copy(m.CPU.IMem[base:], ws)
	}
}

// writeBack copies the selected frame's contents out to backing store,
// so an evicted dirty page survives until its next fault.
func (dk *disk) writeBack(m *Machine) {
	dk.writes++
	base := dk.frame << mem.PageBits
	data := make([]uint32, mem.PageWords)
	for i := uint32(0); i < mem.PageWords; i++ {
		data[i] = m.Phys.Peek(base + i)
	}
	dk.data[dk.vpage] = data
	if int(base)+mem.PageWords <= len(m.CPU.IMem) {
		code := make([]isa.Instr, mem.PageWords)
		copy(code, m.CPU.IMem[base:])
		dk.code[dk.vpage] = code
	}
}

var _ cpu.Device = (*devices)(nil)
var _ cpu.Ticker = (*devices)(nil)
