package kernel

import (
	"strings"
	"testing"

	"mips/internal/asm"
	"mips/internal/isa"
	"mips/internal/reorg"
)

// buildUser assembles a user program through the full toolchain.
func buildUser(t *testing.T, src string) *isa.Image {
	t.Helper()
	u, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ro, _ := reorg.Reorganize(u, reorg.All())
	im, err := asm.Assemble(ro)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return im
}

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

func TestKernelAssembles(t *testing.T) {
	m := newMachine(t, Config{})
	if m.Phys.ROMLimit() != ROMLimit {
		t.Errorf("ROM limit = %d", m.Phys.ROMLimit())
	}
	// The cause table must be populated with handler addresses.
	for c := isa.Cause(0); c < isa.NumCauses; c++ {
		if m.Phys.Peek(causeTab+uint32(c)) == 0 && c != 0 {
			t.Errorf("cause table entry %s is zero", c)
		}
	}
}

func TestBootWithNoProcessesHalts(t *testing.T) {
	m := newMachine(t, Config{})
	if _, err := m.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestSingleProcessHelloWorld(t *testing.T) {
	user := buildUser(t, `
	.entry main
main:	mov #'H', r1
	trap #1
	mov #'i', r1
	trap #1
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.ConsoleOutput(); got != "Hi" {
		t.Errorf("console = %q", got)
	}
	if m.PageFaults() == 0 {
		t.Error("demand paging should have faulted in the text page")
	}
}

func TestPutIntMonitorCall(t *testing.T) {
	user := buildUser(t, `
	.entry main
main:	mov #0, r1
	sub r1, #7, r1		; -7
	trap #2
	mov #42, r1
	trap #2
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "-7\n42\n" {
		t.Errorf("console = %q", got)
	}
}

func TestDemandPagingAcrossPages(t *testing.T) {
	// Touch data on several distinct pages; every touch must fault in
	// exactly one page, transparently.
	user := buildUser(t, `
	.entry main
main:	mov #0, r1		; page counter
	mov #7, r3
	ldi #1024, r4		; page stride in words
	ldi #6144, r2		; first data address (page 6, above text)
loop:	st r3, (r2)
	ld (r2), r5
	bne r5, r3, bad
	add r2, r4, r2
	add r1, #1, r1
	blt r1, #5, loop
	mov #1, r1
	trap #2
	trap #0
bad:	mov #0, r1
	trap #2
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "1\n" {
		t.Errorf("console = %q (memory roundtrip through paging failed)", got)
	}
	// One text page + five data pages at least.
	if m.PageFaults() < 6 {
		t.Errorf("page faults = %d, want >= 6", m.PageFaults())
	}
	if int(m.PageFaults()) != m.DiskReads() {
		t.Errorf("faults %d != disk reads %d", m.PageFaults(), m.DiskReads())
	}
	if m.ResidentPages() != m.DiskReads() {
		t.Errorf("resident pages %d != disk reads %d", m.ResidentPages(), m.DiskReads())
	}
}

func TestStackPagesZeroFilled(t *testing.T) {
	// The initial stack pointer sits in the top region; pushing must
	// fault in a fresh zero page and work transparently.
	user := buildUser(t, `
	.entry main
main:	mov #9, r1
	st r1, 0(sp)
	st r1, 1(sp)
	ld 0(sp), r2
	mov r2, r1
	trap #2
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "9\n" {
		t.Errorf("console = %q", got)
	}
}

func TestExitMonitorCall(t *testing.T) {
	user := buildUser(t, `
	.entry main
main:	mov #'a', r1
	trap #1
	trap #4			; exit: last process exiting halts the machine
	mov #'b', r1		; unreachable
	trap #1
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "a" {
		t.Errorf("console = %q", got)
	}
}

func TestTwoProcessesYieldCooperatively(t *testing.T) {
	procA := buildUser(t, `
	.entry main
main:	mov #'A', r1
	trap #1
	trap #3			; yield
	mov #'C', r1
	trap #1
	trap #3
	trap #4			; exit
`)
	procB := buildUser(t, `
	.entry main
main:	mov #'B', r1
	trap #1
	trap #3
	mov #'D', r1
	trap #1
	trap #4
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(procA, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(procB, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "ABCD" {
		t.Errorf("console = %q, want interleaved ABCD", got)
	}
	if m.ContextSwitches() < 3 {
		t.Errorf("switches = %d", m.ContextSwitches())
	}
}

func TestPreemptiveTimeSlicing(t *testing.T) {
	// Two compute loops with no yields; the timer must interleave them.
	// Each prints a marker when done.
	loop := func(mark byte) string {
		return `
	.entry main
main:	mov #0, r1
	ldi #3000, r2
spin:	add r1, #1, r1
	blt r1, r2, spin
	mov #'` + string(mark) + `', r1
	trap #1
	trap #4
`
	}
	m := newMachine(t, Config{TimerPeriod: 100})
	if _, err := m.AddProcess(buildUser(t, loop('x')), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(buildUser(t, loop('y')), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	out := m.ConsoleOutput()
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Errorf("console = %q; both processes must finish", out)
	}
	if m.ContextSwitches() < 10 {
		t.Errorf("switches = %d; timer should preempt repeatedly", m.ContextSwitches())
	}
}

func TestContextSwitchPreservesAllRegisters(t *testing.T) {
	// Process A fills every allocatable register with a signature and
	// yields repeatedly while B does the same with another signature;
	// each then verifies its registers. Any save/restore slip corrupts
	// the check.
	sigProg := func(base int, mark byte) string {
		var b strings.Builder
		b.WriteString("\t.entry main\nmain:\n")
		// Set r5..r13 to base+k.
		for r := 5; r <= 13; r++ {
			b.WriteString("\tldi #")
			b.WriteString(itoa(base + r))
			b.WriteString(", r")
			b.WriteString(itoa(r))
			b.WriteString("\n")
		}
		b.WriteString("\ttrap #3\n\ttrap #3\n\ttrap #3\n")
		// Verify.
		for r := 5; r <= 13; r++ {
			b.WriteString("\tldi #" + itoa(base+r) + ", r1\n")
			b.WriteString("\tbne r1, r" + itoa(r) + ", bad\n")
		}
		b.WriteString("\tmov #'" + string(mark) + "', r1\n\ttrap #1\n\ttrap #4\n")
		b.WriteString("bad:\tmov #'!', r1\n\ttrap #1\n\ttrap #4\n")
		return b.String()
	}
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(buildUser(t, sigProg(1000, 'p')), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(buildUser(t, sigProg(2000, 'q')), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	out := m.ConsoleOutput()
	if strings.Contains(out, "!") {
		t.Fatalf("register corruption across context switch: %q", out)
	}
	if !strings.Contains(out, "p") || !strings.Contains(out, "q") {
		t.Errorf("console = %q", out)
	}
}

func TestProcessesAreIsolated(t *testing.T) {
	// Both processes use the same virtual addresses; segmentation must
	// keep their data disjoint.
	prog := func(val int, mark byte) string {
		return `
	.entry main
main:	ldi #5000, r2
	ldi #` + itoa(val) + `, r3
	st r3, (r2)
	trap #3			; yield so the other process runs
	ld (r2), r4
	bne r4, r3, bad
	mov #'` + string(mark) + `', r1
	trap #1
	trap #4
bad:	mov #'!', r1
	trap #1
	trap #4
`
	}
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(buildUser(t, prog(111, 'a')), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(buildUser(t, prog(222, 'b')), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	out := m.ConsoleOutput()
	if strings.Contains(out, "!") {
		t.Fatalf("address spaces not isolated: %q", out)
	}
}

func TestSegmentationHoleKillsProcess(t *testing.T) {
	// A reference between the two valid regions must terminate the
	// process (the kernel's choice per §3.1), halting the machine since
	// it is the only one.
	user := buildUser(t, `
	.entry main
main:	ldi #1073741824, r2	; 2^30: in the hole of a 16-bit space
	ld (r2), r3
	mov #'s', r1		; unreachable: the load kills us
	trap #1
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "" {
		t.Errorf("console = %q; process should have been killed", got)
	}
}

func TestPrivilegedInstructionKillsUserProcess(t *testing.T) {
	user := buildUser(t, `
	.entry main
main:	mov #1, r1
	wrspec r1, segbase	; privileged
	mov #'p', r1		; unreachable
	trap #1
	trap #0
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "" {
		t.Errorf("console = %q", got)
	}
	if m.CPU.Stats.Exceptions[isa.CausePrivilege] != 1 {
		t.Errorf("privilege exceptions = %d", m.CPU.Stats.Exceptions[isa.CausePrivilege])
	}
}

func TestKilledProcessDoesNotStopOthers(t *testing.T) {
	bad := buildUser(t, `
	.entry main
main:	ldi #1073741824, r2
	ld (r2), r3		; killed here
	trap #0
`)
	good := buildUser(t, `
	.entry main
main:	mov #'g', r1
	trap #1
	trap #4
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(bad, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(good, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "g" {
		t.Errorf("console = %q", got)
	}
}

func TestProcessTableFull(t *testing.T) {
	user := buildUser(t, "\t.entry main\nmain:\ttrap #4\n")
	m := newMachine(t, Config{})
	for i := 0; i < MaxProcs; i++ {
		if _, err := m.AddProcess(user, 20); err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	if _, err := m.AddProcess(user, 20); err == nil {
		t.Error("expected process-table-full error")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	// More working set than physical memory: the kernel must evict FIFO
	// victims with dirty write-back, and every page's data must survive
	// its round trip through backing store. 16 frames total: 8 kernel
	// and frame-table frames, 8 user frames; the program walks 20 data
	// pages twice, verifying contents.
	prog := buildUser(t, `
	.entry main
main:	mov #0, r5		; pass counter
	mov #20, r7		; pages
pass:	mov #0, r6		; page index
	ldi #10240, r2		; base virtual address (page 10, clear of text)
fill:	ldi #1024, r3
	add r6, #3, r4		; value = pageindex + 3 + pass
	add r4, r5, r4
	st r4, (r2)		; touch the page (dirty it)
	add r2, r3, r2
	add r6, #1, r6
	blt r6, r7, fill
	; verify
	mov #0, r6
	ldi #10240, r2
chk:	ldi #1024, r3
	ld (r2), r1
	add r6, #3, r4
	add r4, r5, r4
	bne r1, r4, bad
	add r2, r3, r2
	add r6, #1, r6
	blt r6, r7, chk
	add r5, #1, r5
	blt r5, #2, pass
	mov #'e', r1
	trap #1
	trap #4
bad:	mov #'!', r1
	trap #1
	trap #4
`)
	m, err := NewMachine(Config{PhysWords: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(prog, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatalf("machine failed under memory pressure: %v", err)
	}
	if got := m.ConsoleOutput(); got != "e" {
		t.Fatalf("console = %q; data corrupted across eviction", got)
	}
	if m.Evictions() == 0 {
		t.Error("no evictions despite working set > memory")
	}
	if m.DiskWrites() == 0 {
		t.Error("no dirty write-backs recorded")
	}
	if m.ResidentPages() > 8 {
		t.Errorf("resident pages = %d with only 8 user frames", m.ResidentPages())
	}
}

func TestEvictedTextPageRestored(t *testing.T) {
	// Force the victim to include the process's own text page; the next
	// instruction fetch must fault it back in intact.
	prog := buildUser(t, `
	.entry main
main:	mov #0, r6
	ldi #10240, r2
walk:	ldi #1024, r3
	st r6, (r2)		; 12 pages: guarantees the text page evicts
	add r2, r3, r2
	add r6, #1, r6
	blt r6, #12, walk
	mov #'t', r1
	trap #1
	trap #4
`)
	m, err := NewMachine(Config{PhysWords: 16 << 10}) // 8 user frames
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(prog, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "t" {
		t.Errorf("console = %q; text did not survive eviction", got)
	}
	if m.Evictions() == 0 {
		t.Error("expected evictions")
	}
}

func TestROMIsProtectedFromUserStores(t *testing.T) {
	// A user store cannot reach physical ROM: its address translates
	// through the page map into user frames, and the dispatch code at
	// physical zero stays intact.
	user := buildUser(t, `
	.entry main
main:	mov #0, r2
	st r2, (r2)		; virtual address 0 -> user frame, not ROM
	trap #3			; yield (exercises the kernel again)
	mov #'k', r1
	trap #1
	trap #4
`)
	m := newMachine(t, Config{})
	if _, err := m.AddProcess(user, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.ConsoleOutput(); got != "k" {
		t.Errorf("console = %q", got)
	}
}

func TestKernelEncodesToBits(t *testing.T) {
	// The dispatch ROM itself must fit the 32-bit binary encoding.
	u, err := asm.Parse(kernelSource(1 << 12))
	if err != nil {
		t.Fatal(err)
	}
	ro, _ := reorg.Reorganize(u, reorg.All())
	im, err := asm.Assemble(ro)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := isa.EncodeProgram(im.Words, im.TextBase)
	if err != nil {
		t.Fatalf("kernel does not encode: %v", err)
	}
	decoded, err := isa.DecodeProgram(bits, im.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		if decoded[i].String() != im.Words[i].String() {
			t.Fatalf("word %d: %q != %q", i, decoded[i], im.Words[i])
		}
	}
}
