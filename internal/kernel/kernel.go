// Package kernel is the minimal operating system of paper §3: the
// dispatch routine resident in ROM at physical address zero, secondary
// dispatch for the 4096 monitor calls, demand paging driven by the
// external mapping unit's fault latch, and round-robin context switching
// on timer interrupts with per-process register save areas.
//
// The kernel is written in MIPS assembly and put through the same
// reorganizer/assembler chain as user code — "it must always be resident
// (even on the power-up reset exception) it must be put in a ROM"
// (paper §3.3). The Go side only wires devices and loads processes.
package kernel

import "fmt"

// Kernel RAM layout (physical word addresses). The dispatch ROM occupies
// [0, ROMLimit); the kernel's mutable state sits just above it.
const (
	kScratch0 = 2048 // r1..r4 saved by the dispatch routine
	kSaveSur  = 2052 // saved surprise register
	kSaveRet0 = 2053 // three saved return addresses
	kCurrent  = 2056 // index of the running process
	kNProc    = 2057 // number of loaded processes
	kNAlive   = 2058 // processes not yet exited or killed
	kFrameNxt = 2059 // next free physical frame number
	kNSwitch  = 2060 // context-switch counter
	kNFault   = 2061 // page-fault counter
	kNEvict   = 2062 // eviction counter
	kEvictPtr = 2063 // FIFO replacement pointer (next victim frame)
	kProcTab  = 2112 // process table: slotWords words per process

	slotWords = 32
	slotSur   = 16
	slotRet0  = 17
	slotAlive = 20
	slotPID   = 21
	slotBits  = 22

	causeTab = 1024 // jump table indexed by primary exception cause

	// kFrameTab is the frame-to-virtual-page reverse map driving page
	// replacement: one word per physical frame, occupying the frames
	// between the kernel and the first user frame. Sized for the largest
	// supported machine (4096 frames).
	kFrameTab = 4096

	// ROMLimit seals the dispatch routine and its tables; kernel RAM
	// starts at kScratch0 above it.
	ROMLimit = 2048

	// FirstUserFrame is the first physical frame handed to demand
	// paging; below it sit the kernel (frames 0-3) and the frame table
	// (frames 4-7).
	FirstUserFrame = 8

	// MaxProcs bounds the process table.
	MaxProcs = 8
)

// Monitor-call codes (the software trap's 12-bit field).
const (
	SysHalt    = 0 // stop the whole machine
	SysPutChar = 1 // write the low byte of r1 to the console
	SysPutInt  = 2 // write r1 to the console as a signed decimal
	SysYield   = 3 // give up the processor to the next ready process
	SysExit    = 4 // terminate the calling process
)

// kernelSource builds the kernel assembly. Device register addresses,
// RAM layout constants, and the machine's frame count are interpolated;
// everything else is literal MIPS assembly in sequential semantics —
// the reorganizer schedules it for the pipeline like any other program.
func kernelSource(maxFrames uint32) string {
	return fmt.Sprintf(`
; MIPS kernel: dispatch ROM, monitor calls, demand paging, context switch.
	.text 0
	.entry dispatch

; --- primary dispatch (physical address 0) ----------------------------
; Save the scratch registers and the three return addresses, then index
; the cause table with the primary exception cause field.
dispatch:
	st r1, @%[1]d		; SCRATCH0
	st r2, @%[2]d
	st r3, @%[3]d
	st r4, @%[4]d
	rdspec surprise, r1
	st r1, @%[5]d		; SAVESUR
	rdspec ret0, r2
	st r2, @%[6]d
	rdspec ret1, r2
	st r2, @%[7]d
	rdspec ret2, r2
	st r2, @%[8]d
	srl r1, #8, r2		; primary cause field
	and r2, #15, r2
	ldi causetab, r3
	ld (r3+r2), r4
	jmpr r4

; --- handlers ----------------------------------------------------------
h_none:
	jmp ret_simple

h_reset:				; power-up boot
	ld @%[10]d, r1		; NPROC
	beq0 r1, #0, do_halt
	mov #0, r1
	st r1, @%[9]d		; CURRENT = 0
	jmp proc_restore

h_interrupt:
	ldi #%[13]d, r1		; RegIntSource
	ld (r1), r2
	beq r2, #%[14]d, int_timer
	jmp ret_simple		; unknown requester: ignore
int_timer:
	ldi #%[15]d, r1		; RegTimerAck
	st r1, (r1)
	jmp switch_save

h_trap:
	ld @%[5]d, r1		; saved surprise
	srl r1, #8, r1
	srl r1, #8, r1		; 12-bit trap code at bit 16
	ldi #4095, r2
	and r1, r2, r1
	beq0 r1, #0, do_halt	; SysHalt
	beq r1, #1, t_putch
	beq r1, #2, t_putint
	beq r1, #3, switch_save	; SysYield
	beq r1, #4, kill	; SysExit
	jmp kill		; unknown monitor call

t_putch:
	ld @%[1]d, r2		; user r1
	ldi #%[16]d, r3		; RegConsoleCh
	st r2, (r3)
	jmp ret_simple
t_putint:
	ld @%[1]d, r2
	ldi #%[17]d, r3		; RegConsoleInt
	st r2, (r3)
	jmp ret_simple

h_overflow:
	jmp kill
h_segfault:
	jmp kill
h_privilege:
	jmp kill
h_illegal:
	jmp kill

; --- demand paging -----------------------------------------------------
; Allocate a frame (free, or evicted FIFO with dirty write-back), fill
; it from backing store, install the translation, and restart the
; faulting instruction.
h_pagefault:
	ld @%[12]d, r1		; NFAULT++
	add r1, #1, r1
	st r1, @%[12]d
	ldi #%[18]d, r1		; RegFaultAddr
	ld (r1), r2
	srl r2, #10, r2		; system virtual page
	ld @%[11]d, r3		; FRAMENEXT
	ldi #%[36]d, r4		; physical frame count
	bltu r3, r4, pf_free
	; No free frame: evict the FIFO victim.
	ld @%[39]d, r1		; NEVICT++
	add r1, #1, r1
	st r1, @%[39]d
	ld @%[40]d, r3		; victim frame from EVICTPTR
	ldi #%[37]d, r1		; frame table base
	ld (r1+r3), r4		; the page the victim holds
	ldi #%[19]d, r1		; disk vpage := old page
	st r4, (r1)
	ldi #%[20]d, r1		; disk frame := victim
	st r3, (r1)
	ldi #%[38]d, r1		; disk write-back
	st r3, (r1)
	ldi #%[22]d, r1		; page map vpage := old page
	st r4, (r1)
	mov #2, r4
	ldi #%[25]d, r1		; page map op = remove
	st r4, (r1)
	; Advance the FIFO pointer with wraparound.
	add r3, #1, r4
	ldi #%[36]d, r1
	bltu r4, r1, pf_adv
	mov #%[41]d, r4		; wrap to the first user frame
pf_adv:	st r4, @%[40]d
	jmp pf_fill
pf_free:
	add r3, #1, r4
	st r4, @%[11]d
pf_fill:
	ldi #%[37]d, r1		; record frame -> page
	st r2, (r1+r3)
	ldi #%[19]d, r1		; disk vpage
	st r2, (r1)
	ldi #%[20]d, r1		; disk frame
	st r3, (r1)
	ldi #%[21]d, r1		; disk go
	st r3, (r1)
	ldi #%[22]d, r1		; page map vpage
	st r2, (r1)
	ldi #%[23]d, r1		; page map frame
	st r3, (r1)
	mov #1, r4
	ldi #%[24]d, r1		; page map flags (writable)
	st r4, (r1)
	ldi #%[25]d, r1		; page map op = install
	st r4, (r1)
	jmp ret_simple

; --- return to the interrupted context from the save area ---------------
ret_simple:
	ld @%[6]d, r1
	wrspec r1, ret0
	ld @%[7]d, r1
	wrspec r1, ret1
	ld @%[8]d, r1
	wrspec r1, ret2
	ld @%[5]d, r1
	mov #20, r2		; re-enable mapping and interrupts (bits 4, 2)
	or r1, r2, r1
	wrspec r1, surprise
	ld @%[2]d, r2
	ld @%[3]d, r3
	ld @%[4]d, r4
	ld @%[1]d, r1
	rfe

; --- context switch ------------------------------------------------------
; Save the full register state into the current process's table slot;
; the dual instruction/data interface lets this store sequence saturate
; the data port, which is why MIPS has no move-multiple instruction
; (paper 3.2).
switch_save:
	ld @%[26]d, r1		; NSWITCH++
	add r1, #1, r1
	st r1, @%[26]d
	ld @%[9]d, r1		; CURRENT
	sll r1, #5, r2
	ldi #%[27]d, r3		; PROCTAB
	add r3, r2, r3
	ld @%[1]d, r2
	st r2, 1(r3)
	ld @%[2]d, r2
	st r2, 2(r3)
	ld @%[3]d, r2
	st r2, 3(r3)
	ld @%[4]d, r2
	st r2, 4(r3)
	st r0, 0(r3)
	st r5, 5(r3)
	st r6, 6(r3)
	st r7, 7(r3)
	st r8, 8(r3)
	st r9, 9(r3)
	st r10, 10(r3)
	st r11, 11(r3)
	st r12, 12(r3)
	st r13, 13(r3)
	st r14, 14(r3)
	st r15, 15(r3)
	ld @%[5]d, r2
	st r2, %[28]d(r3)	; surprise
	ld @%[6]d, r2
	st r2, %[29]d(r3)	; ret0
	ld @%[7]d, r2
	st r2, 18(r3)
	ld @%[8]d, r2
	st r2, 19(r3)
	jmp pick

; pick the next ready process, round robin
pick:
	ld @%[9]d, r1
adv:	add r1, #1, r1
	ld @%[10]d, r2		; NPROC
	blt r1, r2, chk
	mov #0, r1
chk:	sll r1, #5, r2
	ldi #%[27]d, r3
	add r3, r2, r3
	ld %[30]d(r3), r2	; alive flag
	beq0 r2, #0, adv
	st r1, @%[9]d		; CURRENT
	jmp proc_restore

; restore the full state of process CURRENT and return to it
proc_restore:
	ld @%[9]d, r1
	sll r1, #5, r2
	ldi #%[27]d, r3
	add r3, r2, r3
	ld %[31]d(r3), r2	; pid
	wrspec r2, segbase
	ld %[32]d(r3), r2	; address-space bits
	wrspec r2, seglimit
	ld %[29]d(r3), r2
	wrspec r2, ret0
	ld 18(r3), r2
	wrspec r2, ret1
	ld 19(r3), r2
	wrspec r2, ret2
	ld %[28]d(r3), r2
	mov #20, r4		; mapping + interrupts
	or r2, r4, r2
	wrspec r2, surprise
	ld 5(r3), r5
	ld 6(r3), r6
	ld 7(r3), r7
	ld 8(r3), r8
	ld 9(r3), r9
	ld 10(r3), r10
	ld 11(r3), r11
	ld 12(r3), r12
	ld 13(r3), r13
	ld 14(r3), r14
	ld 15(r3), r15
	ld 1(r3), r1
	ld 2(r3), r2
	ld 4(r3), r4
	ld 3(r3), r3
	rfe

; terminate the current process; halt when none remain
kill:
	ld @%[9]d, r1
	sll r1, #5, r2
	ldi #%[27]d, r3
	add r3, r2, r3
	mov #0, r2
	st r2, %[30]d(r3)	; alive = 0
	ld @%[33]d, r1		; NALIVE--
	sub r1, #1, r1
	st r1, @%[33]d
	beq0 r1, #0, do_halt
	jmp pick

do_halt:
	ldi #%[34]d, r1		; RegHalt
	st r1, (r1)
	jmp do_halt		; unreachable: the store stops the machine

; --- cause jump table (in ROM, indexed by isa.Cause) --------------------
	.data %[35]d
causetab:
	.word h_none, h_reset, h_interrupt, h_trap, h_overflow
	.word h_pagefault, h_segfault, h_privilege, h_illegal
	.word h_none, h_none, h_none, h_none, h_none, h_none, h_none
`,
		kScratch0, kScratch0+1, kScratch0+2, kScratch0+3, // 1-4
		kSaveSur,                            // 5
		kSaveRet0, kSaveRet0+1, kSaveRet0+2, // 6-8
		kCurrent, kNProc, kFrameNxt, kNFault, // 9-12
		RegIntSource, IntTimer, RegTimerAck, // 13-15
		RegConsoleCh, RegConsoleInt, // 16-17
		RegFaultAddr,                          // 18
		RegDiskVPage, RegDiskFrame, RegDiskGo, // 19-21
		RegPMVPage, RegPMFrame, RegPMFlags, RegPMOp, // 22-25
		kNSwitch, kProcTab, slotSur, slotRet0, slotAlive, // 26-30
		slotPID, slotBits, kNAlive, RegHalt, causeTab, // 31-35
		maxFrames, kFrameTab, RegDiskWrite, // 36-38
		kNEvict, kEvictPtr, FirstUserFrame, // 39-41
	)
}
