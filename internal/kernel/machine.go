package kernel

import (
	"fmt"
	"sync"

	"mips/internal/asm"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/mem"
	"mips/internal/reorg"
)

// Machine is a complete MIPS system: processor, physical memory, the
// kernel in ROM, and the device complement (console, timer, paging disk,
// page-map port, halt register).
type Machine struct {
	CPU  *cpu.CPU
	Phys *mem.Physical

	dev    *devices
	disk   *disk
	pmPort pmPort
	kim    *isa.Image

	nproc int
}

// Config adjusts machine construction.
type Config struct {
	// PhysWords is the physical memory size in words (default 1<<22,
	// 16 MB).
	PhysWords int
	// TimerPeriod, if nonzero, makes the interval timer raise the
	// interrupt line every TimerPeriod instructions (preemptive
	// round-robin scheduling).
	TimerPeriod uint32
}

// kernelImages memoizes the assembled kernel per physical page count
// (the only input to kernelSource). Assembling the kernel — parse,
// reorganize, encode — dominates machine construction, and every
// machine of a given memory size runs byte-identical kernel text, so
// one assembly per size serves the whole process. The cached image is
// shared read-only: LoadImage copies the words into instruction memory
// and never writes the image.
var kernelImages sync.Map // phys pages (uint32) -> *isa.Image

// kernelImage returns the assembled kernel for a machine with the given
// number of physical pages, building and caching it on first use.
func kernelImage(physPages uint32) (*isa.Image, error) {
	if im, ok := kernelImages.Load(physPages); ok {
		return im.(*isa.Image), nil
	}
	unit, err := asm.Parse(kernelSource(physPages))
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	ro, _ := reorg.Reorganize(unit, reorg.All())
	im, err := asm.Assemble(ro)
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	if len(im.Words) >= causeTab {
		return nil, fmt.Errorf("kernel text too large: %d words", len(im.Words))
	}
	cached, _ := kernelImages.LoadOrStore(physPages, im)
	return cached.(*isa.Image), nil
}

// NewMachine builds and boots-ready a machine: the kernel is assembled
// through the reorganizer, loaded at physical address zero, and sealed
// as ROM.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.PhysWords == 0 {
		cfg.PhysWords = 1 << 22
	}
	if cfg.PhysWords > IOBase {
		return nil, fmt.Errorf("kernel: physical memory (%d words) overlaps the device window at %d", cfg.PhysWords, IOBase)
	}
	m, err := newShell(mem.NewPhysical(cfg.PhysWords), cfg)
	if err != nil {
		return nil, err
	}
	if err := m.CPU.LoadImage(m.kim); err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	m.Phys.SealROM(ROMLimit)
	m.Phys.Poke(kFrameNxt, FirstUserFrame)
	m.Phys.Poke(kEvictPtr, FirstUserFrame)
	if cfg.PhysWords < (FirstUserFrame+1)<<mem.PageBits {
		return nil, fmt.Errorf("kernel: %d words leave no user frames", cfg.PhysWords)
	}
	return m, nil
}

// NewMachineShell builds a machine chassis — CPU, bus, devices, empty
// backing store — around an existing physical memory WITHOUT writing a
// single word of it: no kernel load into memory, no ROM seal, no
// kernel-RAM pokes. It exists for the warm-fork admission path: the
// supplied memory is a copy-on-write fork of a booted template, so the
// kernel text, ROM seal, and scheduler RAM already sit in the shared
// golden frames, and writing any of them here would both be redundant
// and privatize pages the fork may never touch. The caller restores
// CPU, MMU, and device state from the template's capture immediately
// after.
func NewMachineShell(phys *mem.Physical, cfg Config) (*Machine, error) {
	if int(phys.Size()) > IOBase {
		return nil, fmt.Errorf("kernel: physical memory (%d words) overlaps the device window at %d", phys.Size(), IOBase)
	}
	return newShell(phys, cfg)
}

// newShell assembles the device complement and (cached) kernel image
// around phys. It performs no memory writes.
func newShell(phys *mem.Physical, cfg Config) (*Machine, error) {
	im, err := kernelImage(phys.Size() >> mem.PageBits)
	if err != nil {
		return nil, err
	}
	m := &Machine{Phys: phys}
	m.disk = newDisk()
	bus := cpu.NewBus(phys)
	m.CPU = cpu.New(bus)
	m.dev = &devices{m: m}
	m.dev.timer.period = cfg.TimerPeriod
	bus.Attach(m.dev)
	m.kim = im
	return m, nil
}

// AddProcess loads a user image as a new process with the given address
// space size (log2 words; 16 gives the minimum 65K-word space). The
// image is placed in backing store; nothing is resident until the first
// page fault.
func (m *Machine) AddProcess(im *isa.Image, spaceBits uint8) (pid uint32, err error) {
	if m.nproc >= MaxProcs {
		return 0, fmt.Errorf("process table full")
	}
	if err := im.Validate(); err != nil {
		return 0, err
	}
	idx := m.nproc
	pid = uint32(idx + 1)
	seg := mem.NewSegUnit(pid, spaceBits)
	if seg.PID() != pid {
		return 0, fmt.Errorf("pid %d does not fit %d-bit space", pid, spaceBits)
	}

	// Spread the text over backing pages.
	codePages := make(map[uint32][]isa.Instr)
	for i, w := range im.Words {
		va := uint32(im.TextBase) + uint32(i)
		sys, f := seg.Translate(va)
		if f != nil {
			return 0, fmt.Errorf("text outside address space at %#x", va)
		}
		vp, off := sys>>mem.PageBits, sys&(mem.PageWords-1)
		pg := codePages[vp]
		if pg == nil {
			pg = make([]isa.Instr, mem.PageWords)
			codePages[vp] = pg
		}
		pg[off] = w
	}
	dataPages := make(map[uint32][]uint32)
	for addr, val := range im.Data {
		sys, f := seg.Translate(uint32(addr))
		if f != nil {
			return 0, fmt.Errorf("data outside address space at %#x", addr)
		}
		vp, off := sys>>mem.PageBits, sys&(mem.PageWords-1)
		pg := dataPages[vp]
		if pg == nil {
			pg = make([]uint32, mem.PageWords)
			dataPages[vp] = pg
		}
		pg[off] = val
	}
	for vp, pg := range codePages {
		m.disk.addPage(vp, pg, dataPages[vp])
		delete(dataPages, vp)
	}
	for vp, pg := range dataPages {
		m.disk.addPage(vp, nil, pg)
	}

	// Initial register state in the process table. The stack pointer
	// starts at the top of the 32-bit space (the upper valid region);
	// stack pages are zero-filled on first touch.
	slot := uint32(kProcTab + idx*slotWords)
	m.Phys.Poke(slot+14, 0xFFFFFFFF-uint32(mem.PageWords)) // initial sp
	// Saved surprise: supervisor current (exception frame shape),
	// previous level user; the restore path ORs in mapping+interrupts.
	m.Phys.Poke(slot+slotSur, uint32(isa.Surprise(0).SetSupervisor(true)))
	entry := uint32(im.Entry)
	m.Phys.Poke(slot+slotRet0, entry)
	m.Phys.Poke(slot+slotRet0+1, entry+1)
	m.Phys.Poke(slot+slotRet0+2, entry+2)
	m.Phys.Poke(slot+slotAlive, 1)
	m.Phys.Poke(slot+slotPID, pid)
	m.Phys.Poke(slot+slotBits, uint32(spaceBits))

	m.nproc++
	m.Phys.Poke(kNProc, uint32(m.nproc))
	m.Phys.Poke(kNAlive, m.Phys.Peek(kNAlive)+1)
	return pid, nil
}

// Run boots the machine (reset exception into the dispatch ROM) and
// executes until halt or the step limit. It returns the number of
// instructions executed.
func (m *Machine) Run(maxSteps uint64) (uint64, error) {
	m.CPU.Reset()
	return m.CPU.Run(maxSteps)
}

// ConsoleOutput returns everything written through the console device.
func (m *Machine) ConsoleOutput() string { return m.dev.console.String() }

// KernelImage returns the assembled dispatch-ROM image, whose symbol
// table names the kernel's handlers (for profiler symbolization).
func (m *Machine) KernelImage() *isa.Image { return m.kim }

// CurrentPID returns the process identifier of the process the kernel
// scheduler currently runs (the segmentation PID of its address space),
// or 0 before any process has been loaded. Observability code polls it
// on exception returns to detect context switches.
func (m *Machine) CurrentPID() uint32 {
	if m.nproc == 0 {
		return 0
	}
	idx := m.Phys.Peek(kCurrent)
	return m.Phys.Peek(kProcTab + idx*slotWords + slotPID)
}

// PageFaults returns the kernel's demand-paging count.
func (m *Machine) PageFaults() uint32 { return m.Phys.Peek(kNFault) }

// ContextSwitches returns the kernel's context-switch count.
func (m *Machine) ContextSwitches() uint32 { return m.Phys.Peek(kNSwitch) }

// DiskReads returns the number of pages fetched from backing store.
func (m *Machine) DiskReads() int { return m.disk.reads }

// DiskWrites returns the number of evicted pages written back.
func (m *Machine) DiskWrites() int { return m.disk.writes }

// Evictions returns the kernel's page-replacement count.
func (m *Machine) Evictions() uint32 { return m.Phys.Peek(kNEvict) }

// ResidentPages returns the number of installed page translations.
func (m *Machine) ResidentPages() int { return m.CPU.Bus.MMU.Map.Len() }
