package kernel_test

// This test lives outside package kernel because it imports codegen,
// which (through the sim facade) imports kernel: an in-package test
// would be an import cycle.

import (
	"testing"

	"mips/internal/codegen"
	"mips/internal/kernel"
	"mips/internal/reorg"
)

func TestCompiledProgramRunsAsProcess(t *testing.T) {
	// End-to-end across the whole repository: Pasqual source compiled
	// through the reorganizer, loaded as a demand-paged process, run
	// under the ROM kernel with preemption enabled.
	im, _, err := codegen.CompileMIPS(`
program asprocess;
var i, s: integer;
function triple(x: integer): integer;
begin
  triple := 3 * x
end;
begin
  s := 0;
  for i := 1 to 25 do s := s + triple(i);
  writeint(s)
end.
`, codegen.MIPSOptions{StackTop: codegen.KernelStackTop}, reorg.All())
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(kernel.Config{TimerPeriod: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddProcess(im, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	// 3 * (1+..+25) = 975. Compiled programs end in trap #0 (halt).
	if got := m.ConsoleOutput(); got != "975\n" {
		t.Errorf("console = %q", got)
	}
	if m.PageFaults() == 0 {
		t.Error("process should demand-page its text and stack")
	}
}
