package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mips/internal/ccarch"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/lang"
	"mips/internal/reorg"
	"mips/internal/sim"
)

// progGen emits random but well-formed, terminating Pasqual programs:
// the property harness for the whole tool chain. Loops are bounded by
// construction, divisors are always nonzero, and array indexes are
// reduced into range, so every generated program has defined behavior.
type progGen struct {
	r     *rand.Rand
	b     strings.Builder
	depth int
	loops int // nesting level: each while gets its own counter i<n>
}

func (g *progGen) pick(n int) int { return g.r.Intn(n) }

// intExpr emits an integer expression.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 {
		switch g.pick(8) {
		case 0:
			return fmt.Sprint(g.r.Intn(16)) // 4-bit band
		case 1:
			return fmt.Sprint(16 + g.r.Intn(240)) // 8-bit band
		case 2:
			return fmt.Sprint(256 + g.r.Intn(100000)) // long immediates
		case 3:
			// Parenthesized: Pascal allows a sign only at the head of a
			// simple expression.
			return fmt.Sprintf("(-%d)", g.r.Intn(300)) // reverse-operator band
		case 4, 5:
			return string(rune('a' + g.pick(4))) // a..d
		case 6:
			return fmt.Sprintf("arr[%d]", g.pick(8))
		default:
			return fmt.Sprintf("i%d", g.pick(3)) // some loop counter
		}
	}
	l := g.intExpr(depth - 1)
	r := g.intExpr(depth - 1)
	switch g.pick(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r)
	case 3:
		// Divisor forced into 2..18.
		return fmt.Sprintf("(%s div ((%s) mod 9 + 10))", l, r)
	case 4:
		return fmt.Sprintf("(%s mod ((%s) mod 9 + 10))", l, r)
	default:
		return fmt.Sprintf("(-%s)", l)
	}
}

// boolExpr emits a boolean expression.
func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		rel := []string{"=", "<>", "<", "<=", ">", ">="}[g.pick(6)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(1), rel, g.intExpr(1))
	}
	l := g.boolExpr(depth - 1)
	r := g.boolExpr(depth - 1)
	switch g.pick(3) {
	case 0:
		return fmt.Sprintf("(%s and %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s or %s)", l, r)
	default:
		return fmt.Sprintf("(not %s)", l)
	}
}

// index emits an always-in-range array index expression.
func (g *progGen) index() string {
	return fmt.Sprintf("(((%s) mod 8 + 8) mod 8)", g.intExpr(1))
}

func (g *progGen) stmt(depth int) {
	ind := strings.Repeat("  ", g.depth+1)
	switch g.pick(7) {
	case 0, 1:
		v := string(rune('a' + g.pick(4)))
		fmt.Fprintf(&g.b, "%s%s := %s;\n", ind, v, g.intExpr(2))
	case 2:
		fmt.Fprintf(&g.b, "%sarr[%s] := %s;\n", ind, g.index(), g.intExpr(2))
	case 3:
		fmt.Fprintf(&g.b, "%sf := %s;\n", ind, g.boolExpr(2))
	case 4:
		if depth <= 0 {
			fmt.Fprintf(&g.b, "%swriteint(%s);\n", ind, g.intExpr(1))
			return
		}
		fmt.Fprintf(&g.b, "%sif %s then begin\n", ind, g.boolExpr(1))
		g.depth++
		g.stmts(depth-1, 1+g.pick(3))
		g.depth--
		if g.pick(2) == 0 {
			fmt.Fprintf(&g.b, "%send else begin\n", ind)
			g.depth++
			g.stmts(depth-1, 1+g.pick(2))
			g.depth--
		}
		fmt.Fprintf(&g.b, "%send;\n", ind)
	case 5:
		if depth <= 0 {
			fmt.Fprintf(&g.b, "%swriteint(%s);\n", ind, g.intExpr(1))
			return
		}
		// A bounded counting loop with its own counter: always
		// terminates even when loops nest.
		if g.loops >= 3 {
			fmt.Fprintf(&g.b, "%swriteint(%s);\n", ind, g.intExpr(1))
			return
		}
		v := fmt.Sprintf("i%d", g.loops)
		n := 1 + g.pick(6)
		fmt.Fprintf(&g.b, "%s%s := 0;\n", ind, v)
		fmt.Fprintf(&g.b, "%swhile %s < %d do begin\n", ind, v, n)
		g.depth++
		g.loops++
		g.stmts(depth-1, 1+g.pick(2))
		g.loops--
		fmt.Fprintf(&g.b, "%s  %s := %s + 1;\n", ind, v, v)
		g.depth--
		fmt.Fprintf(&g.b, "%send;\n", ind)
	default:
		fmt.Fprintf(&g.b, "%swriteint(%s);\n", ind, g.intExpr(2))
	}
}

func (g *progGen) stmts(depth, n int) {
	for k := 0; k < n; k++ {
		g.stmt(depth)
	}
}

// generate produces one random program.
func generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.b.WriteString("program fuzz;\nvar a, b, c, d, i, i0, i1, i2: integer;\n")
	g.b.WriteString("var arr: array[0..7] of integer;\nvar f: boolean;\nbegin\n")
	g.b.WriteString("  a := 3; b := 7; c := 11; d := 1;\n")
	g.stmts(2, 6+g.pick(6))
	// Make all state observable at the end.
	g.b.WriteString("  writeint(a); writeint(b); writeint(c); writeint(d);\n")
	g.b.WriteString("  if f then writeint(1) else writeint(0);\n")
	g.b.WriteString("  i := 0;\n  while i < 8 do begin writeint(arr[i]); i := i + 1 end\nend.\n")
	return g.b.String()
}

// TestFuzzDifferential runs generated programs through every execution
// path and demands identical output: reference interpreter, MIPS under
// four reorganizer stages (with the hazard auditor armed), the
// hardware-interlock counterfactual, and the CC machine under three
// policy/strategy pairings.
func TestFuzzDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := generate(seed)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		want, err := (&lang.Interp{Fuel: 100_000_000}).Run(prog)
		if err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}

		stages := map[string]reorg.Options{
			"none":  {},
			"reorg": {Reorganize: true},
			"full":  reorg.All(),
		}
		for name, ropt := range stages {
			im, _, err := CompileMIPS(src, MIPSOptions{}, ropt)
			if err != nil {
				t.Fatalf("seed %d/%s: compile: %v\n%s", seed, name, err, src)
			}
			res, err := RunMIPS(im, 200_000_000)
			if err != nil {
				t.Fatalf("seed %d/%s: run: %v\n%s", seed, name, err, src)
			}
			if len(res.Hazards) > 0 {
				t.Fatalf("seed %d/%s: hazard %v\n%s", seed, name, res.Hazards[0], src)
			}
			if res.Output != want {
				t.Fatalf("seed %d/%s: output mismatch\n got %q\nwant %q\n%s",
					seed, name, res.Output, want, src)
			}
		}

		// Hardware-interlock counterfactual with interlock-assuming code.
		hwOpt := reorg.All()
		hwOpt.AssumeInterlocks = true
		im, _, err := CompileMIPS(src, MIPSOptions{}, hwOpt)
		if err != nil {
			t.Fatalf("seed %d/hw: compile: %v", seed, err)
		}
		res, err := RunMIPSOn(im, 200_000_000, true)
		if err != nil {
			t.Fatalf("seed %d/hw: run: %v\n%s", seed, err, src)
		}
		if res.Output != want {
			t.Fatalf("seed %d/hw: output mismatch\n got %q\nwant %q\n%s", seed, res.Output, want, src)
		}

		ccCombos := []struct {
			pol   ccarch.Policy
			strat BoolStrategy
		}{
			{ccarch.PolicyVAX, BoolEarlyOut},
			{ccarch.Policy360, BoolFullEval},
			{ccarch.PolicyM68000, BoolCondSet},
		}
		for _, cc := range ccCombos {
			ccres, err := GenCC(prog, CCOptions{Policy: cc.pol, Strategy: cc.strat, Eliminate: true})
			if err != nil {
				t.Fatalf("seed %d/%s: gen: %v", seed, cc.pol.Name, err)
			}
			out, _, err := RunCC(ccres, cc.pol, 200_000_000)
			if err != nil {
				t.Fatalf("seed %d/%s: run: %v\n%s", seed, cc.pol.Name, err, src)
			}
			if out != want {
				t.Fatalf("seed %d/%s/%s: output mismatch\n got %q\nwant %q\n%s",
					seed, cc.pol.Name, cc.strat, out, want, src)
			}
		}
	}
}

// rewriteWord replaces an instruction word with a semantically identical
// copy built from fresh pieces. The new word compares unequal to the old
// one (isa.Instr is two piece pointers), exactly what a store into
// instruction memory looks like to the predecode cache — which must
// re-decode the word instead of replaying the stale record.
func rewriteWord(in isa.Instr) isa.Instr {
	var out isa.Instr
	if in.ALU != nil {
		p := *in.ALU
		out.ALU = &p
	}
	if in.Mem != nil {
		p := *in.Mem
		out.Mem = &p
	}
	return out
}

// TestFuzzBlocksSelfModify is the translation tiers' self-modification
// property test, run on every caching engine (traces, blocks, fast
// path). A step hook would force the exact engine, so the mutation
// schedule rides the exception hook instead — it fires on every monitor
// trap (writeint), which all engines deliver at identical points. Each
// mutation follows the harness self-modification contract: rewrite the
// IMem word (what the CPU executes and validates) AND touch the
// physical word (what fires the write barrier). Chained block entries
// and compiled traces skip per-entry revalidation by design, so an
// engine that misses a barrier invalidation replays a stale
// translation and diverges — on the traces engine the mutation lands
// in code the trace tier has compiled, exercising the
// store-into-own-trace invalidation path.
func TestFuzzBlocksSelfModify(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := generate(seed)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		want, err := (&lang.Interp{Fuel: 100_000_000}).Run(prog)
		if err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}
		im, _, err := CompileMIPS(src, MIPSOptions{}, reorg.All())
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}

		run := func(engine sim.Engine) RunResult {
			var excs uint64
			res, err := RunMIPSWith(im, 200_000_000, RunOptions{
				Engine: engine,
				Attach: func(c *cpu.CPU) {
					c.SetExcHook(func(pc uint32, primary, secondary isa.Cause, trapCode uint16) {
						excs++
						if excs%2 != 0 {
							return
						}
						phys := c.Bus.MMU.Phys
						for off := uint32(0); off < 6; off++ {
							a := pc + off
							if a < uint32(len(c.IMem)) {
								c.IMem[a] = rewriteWord(c.IMem[a])
								// Barrier-only touch: same value back, so
								// data memory is unchanged but every block
								// and trace caching this word is dropped.
								phys.Poke(a, phys.Peek(a))
							}
						}
					})
				},
			})
			if err != nil {
				t.Fatalf("seed %d (%v): run: %v\n%s", seed, engine, err, src)
			}
			return res
		}
		trc := run(sim.Traces)
		blk := run(sim.Blocks)
		fast := run(sim.FastPath)
		if trc.Output != want {
			t.Fatalf("seed %d: trace tier diverged under self-modification\n got %q\nwant %q\n%s",
				seed, trc.Output, want, src)
		}
		if blk.Output != want {
			t.Fatalf("seed %d: block engine diverged under self-modification\n got %q\nwant %q\n%s",
				seed, blk.Output, want, src)
		}
		if fast.Output != want {
			t.Fatalf("seed %d: fast path diverged under self-modification\n got %q\nwant %q\n%s",
				seed, fast.Output, want, src)
		}
		if blk.Stats != fast.Stats {
			t.Fatalf("seed %d: stats diverge under self-modification\n blocks %+v\n   fast %+v\n%s",
				seed, blk.Stats, fast.Stats, src)
		}
		if trc.Stats != blk.Stats {
			t.Fatalf("seed %d: stats diverge under self-modification\n traces %+v\n blocks %+v\n%s",
				seed, trc.Stats, blk.Stats, src)
		}
	}
}

// TestFuzzSelfModifyDifferential runs generated programs while a step
// hook keeps storing into instruction memory — rewriting words in a
// deterministic pattern — on both execution engines. The rewrites are
// semantic no-ops, so the reference interpreter is unaffected by
// construction; a predecode cache that misses an invalidation executes
// a stale record and diverges. Both paths must produce the interpreter's
// output and identical statistics.
func TestFuzzSelfModifyDifferential(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := generate(seed)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		want, err := (&lang.Interp{Fuel: 100_000_000}).Run(prog)
		if err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}
		im, _, err := CompileMIPS(src, MIPSOptions{}, reorg.All())
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}

		// The mutation schedule is a pure function of the step count, so
		// both engines see the identical store sequence: every few steps,
		// rewrite a window of words around the current PC — including the
		// word about to execute.
		run := func(reference bool) RunResult {
			var steps uint64
			res, err := RunMIPSWith(im, 200_000_000, RunOptions{
				Reference: reference,
				Attach: func(c *cpu.CPU) {
					c.SetStepHook(func(pc uint32, in isa.Instr) {
						steps++
						if steps%3 != 0 {
							return
						}
						for off := uint32(0); off < 4; off++ {
							a := pc + off
							if a < uint32(len(c.IMem)) {
								c.IMem[a] = rewriteWord(c.IMem[a])
							}
						}
					})
				},
			})
			if err != nil {
				t.Fatalf("seed %d (reference=%v): run: %v\n%s", seed, reference, err, src)
			}
			return res
		}
		fast := run(false)
		ref := run(true)
		if fast.Output != want {
			t.Fatalf("seed %d: fast path diverged under self-modification\n got %q\nwant %q\n%s",
				seed, fast.Output, want, src)
		}
		if ref.Output != want {
			t.Fatalf("seed %d: reference path diverged under self-modification\n got %q\nwant %q\n%s",
				seed, ref.Output, want, src)
		}
		if fast.Stats != ref.Stats {
			t.Fatalf("seed %d: stats diverge under self-modification\n fast %+v\n  ref %+v\n%s",
				seed, fast.Stats, ref.Stats, src)
		}
	}
}
