package codegen

import (
	"testing"

	"mips/internal/ccarch"
	"mips/internal/lang"
)

// ccDiffTest compiles src for the CC machine under every legal
// strategy/policy pairing and checks output equality with the
// interpreter.
func ccDiffTest(t *testing.T, src string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want, err := (&lang.Interp{}).Run(prog)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	type combo struct {
		pol   ccarch.Policy
		strat BoolStrategy
		elim  bool
	}
	combos := []combo{
		{ccarch.PolicyVAX, BoolFullEval, false},
		{ccarch.PolicyVAX, BoolEarlyOut, false},
		{ccarch.PolicyVAX, BoolEarlyOut, true},
		{ccarch.PolicyVAX, BoolFullEval, true},
		{ccarch.Policy360, BoolFullEval, true},
		{ccarch.Policy360, BoolEarlyOut, false},
		{ccarch.PolicyM68000, BoolCondSet, false},
		{ccarch.PolicyM68000, BoolCondSet, true},
		{ccarch.PolicyM68000, BoolFullEval, false},
	}
	for _, c := range combos {
		res, err := GenCC(prog, CCOptions{Policy: c.pol, Strategy: c.strat, Eliminate: c.elim})
		if err != nil {
			t.Fatalf("%s/%s: gen: %v", c.pol.Name, c.strat, err)
		}
		got, _, err := RunCC(res, c.pol, 20_000_000)
		if err != nil {
			t.Fatalf("%s/%s/elim=%t: run: %v", c.pol.Name, c.strat, c.elim, err)
		}
		if got != want {
			t.Errorf("%s/%s/elim=%t: output = %q, want %q", c.pol.Name, c.strat, c.elim, got, want)
		}
	}
}

func TestCCHelloWorld(t *testing.T) {
	ccDiffTest(t, `
program hello;
begin
  writechar('c'); writechar('c'); writeint(-7)
end.`)
}

func TestCCArithmeticAndLoops(t *testing.T) {
	ccDiffTest(t, `
program arith;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 12 do s := s + i * i;
  writeint(s);
  writeint(100 div 7); writeint(100 mod 7);
  writeint(-100 div 7); writeint(-100 mod 7);
  i := 5;
  while i > 0 do i := i - 1;
  writeint(i);
  repeat i := i + 2 until i >= 7;
  writeint(i)
end.`)
}

func TestCCBooleanStrategies(t *testing.T) {
	ccDiffTest(t, `
program bools;
var found, b: boolean; rec, key, i: integer;
begin
  rec := 5; key := 5; i := 12;
  found := (rec = key) or (i = 13);
  if found then writeint(1) else writeint(0);
  found := (rec <> key) and (i < 13);
  if not found then writeint(2);
  b := (rec > 1) and ((key < 9) or (i = 0));
  if b then writeint(3);
  if (rec = 9) or (key = 9) then writeint(4) else writeint(5)
end.`)
}

func TestCCFunctionsAndRecursion(t *testing.T) {
	ccDiffTest(t, `
program fib;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n
  else fib := fib(n - 1) + fib(n - 2)
end;
begin
  writeint(fib(11))
end.`)
}

func TestCCArraysRecordsParams(t *testing.T) {
	ccDiffTest(t, `
program structs;
type pt = record x, y: integer end;
var
  v: array[1..6] of integer;
  p: pt;
  i: integer;
procedure scale(var q: pt; k: integer);
begin
  q.x := q.x * k; q.y := q.y * k
end;
begin
  for i := 1 to 6 do v[i] := 2 * i;
  writeint(v[1] + v[6]);
  p.x := 3; p.y := 5;
  scale(p, 4);
  writeint(p.x); writeint(p.y)
end.`)
}

func TestCCStringConstants(t *testing.T) {
	ccDiffTest(t, `
program msg;
const hi = 'cc!';
var i: integer;
begin
  for i := 0 to 2 do writechar(hi[i])
end.`)
}

func TestCCImpureBooleanKeepsSideEffects(t *testing.T) {
	ccDiffTest(t, `
program impure;
var x: boolean;
function noisy: boolean;
begin
  writechar('n');
  noisy := true
end;
begin
  x := false and noisy;
  if x then writeint(1) else writeint(0)
end.`)
}

func TestCCCondSetRequiresPolicy(t *testing.T) {
	prog, err := lang.Parse(`program p; begin end.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenCC(prog, CCOptions{Policy: ccarch.PolicyVAX, Strategy: BoolCondSet}); err == nil {
		t.Error("cond-set on the VAX policy should be rejected")
	}
}

// figure1Source is the paper's running example:
// Found := (Rec = Key) OR (I = 13).
const figure1Source = `
program figure1;
var found: boolean; rec, key, i: integer;
begin
  rec := 1; key := 2; i := 13;
  found := (rec = key) or (i = 13);
  if found then writechar('t') else writechar('f')
end.`

func TestFigureStrategiesBranchCounts(t *testing.T) {
	prog, err := lang.Parse(figure1Source)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol ccarch.Policy, strat BoolStrategy) ccarch.Stats {
		res, err := GenCC(prog, CCOptions{Policy: pol, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := RunCC(res, pol, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if out != "t" {
			t.Fatalf("%s: wrong result %q", strat, out)
		}
		return st
	}
	full := run(ccarch.PolicyVAX, BoolFullEval)
	early := run(ccarch.PolicyVAX, BoolEarlyOut)
	condset := run(ccarch.PolicyM68000, BoolCondSet)

	// Figure 1 vs Figure 2: the conditional-set version of the boolean
	// assignment is branch-free, so it executes fewer branches overall.
	if condset.Branches >= full.Branches {
		t.Errorf("cond-set branches = %d, full-eval = %d; Figure 2 should win",
			condset.Branches, full.Branches)
	}
	// Early-out executes no more instructions than full evaluation.
	if early.Instructions > full.Instructions {
		t.Errorf("early-out = %d instructions, full = %d", early.Instructions, full.Instructions)
	}
	// Cost comparison under the Table 6 weights.
	w := ccarch.PaperWeights()
	if condset.Cost(w) >= full.Cost(w) {
		t.Errorf("cond-set cost %v not below full-eval cost %v", condset.Cost(w), full.Cost(w))
	}
}

func TestCCCompareEliminationOnRealCode(t *testing.T) {
	// A loop decrement followed by a zero test. With memory-resident
	// variables the value is reloaded before the test, so only a
	// set-on-moves machine (VAX) saves the compare — via the load.
	src := `
program loopdown;
var i, s: integer;
begin
  s := 0;
  i := 10;
  repeat
    s := s + i;
    i := i - 1
  until i = 0;
  writeint(s)
end.`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res360, err := GenCC(prog, CCOptions{Policy: ccarch.Policy360, Strategy: BoolEarlyOut, Eliminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res360.Savings.Saved() != 0 {
		t.Errorf("360 saved %d compares; the reload kills the chain", res360.Savings.Saved())
	}
	resVAX, err := GenCC(prog, CCOptions{Policy: ccarch.PolicyVAX, Strategy: BoolEarlyOut, Eliminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if resVAX.Savings.SavedByMoves == 0 {
		t.Errorf("VAX load-sets-codes saved nothing: %+v", resVAX.Savings)
	}
	out, _, err := RunCC(resVAX, ccarch.PolicyVAX, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if out != "55\n" {
		t.Errorf("output after elimination = %q", out)
	}
}

func TestCCCompareEliminationByOps(t *testing.T) {
	// A value-context comparison of an arithmetic result against zero:
	// the subtract's codes are still live at the compare even on a
	// set-on-ops-only machine (the intervening preset move is neutral
	// there).
	src := `
program opsave;
var x, y: integer; b: boolean;
begin
  x := 9; y := 9;
  b := (x - y) = 0;
  if b then writeint(1) else writeint(0)
end.`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenCC(prog, CCOptions{Policy: ccarch.Policy360, Strategy: BoolFullEval, Eliminate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Savings.SavedByOps == 0 {
		t.Errorf("arithmetic-then-test saved nothing: %+v", res.Savings)
	}
	out, _, err := RunCC(res, ccarch.Policy360, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestCCSavingsAreSmallFractionOnMixedCode(t *testing.T) {
	// The paper's Table 3 point: compares saved by condition codes are a
	// small fraction of all compares on ordinary code.
	src := `
program mixed;
var i, j, s: integer; a: array[0..9] of integer;
begin
  s := 0;
  for i := 0 to 9 do a[i] := i * 3;
  for i := 0 to 9 do
    for j := 0 to 9 do
      if a[i] < a[j] then s := s + 1;
  writeint(s)
end.`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenCC(prog, CCOptions{Policy: ccarch.PolicyVAX, Strategy: BoolEarlyOut})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Savings.Saved()) / float64(res.Savings.TotalCompares)
	if frac > 0.25 {
		t.Errorf("savings fraction %.2f implausibly high (paper: ~1-2%%)", frac)
	}
}
