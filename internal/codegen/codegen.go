// Package codegen translates checked Pasqual programs to the two target
// machines of the paper's comparisons:
//
//   - the MIPS model (word-addressed, no condition codes): naive
//     one-piece-per-operation output in sequential semantics, exactly
//     the shape the postpass reorganizer consumes (paper §4.2.1: "All
//     the programs were written in C and compiled to instruction pieces
//     by a version of the Portable C Compiler" — here Pasqual plays the
//     source language and this backend the PCC role);
//   - the condition-code machine (package ccarch), with the boolean
//     evaluation strategies of §2.3.2: full evaluation, early-out, and
//     conditional set.
//
// Both backends share one storage layout so instruction counts compare
// like for like.
package codegen

import (
	"fmt"

	"mips/internal/lang"
)

// Layout assigns storage to a program's objects: globals and string
// constants get static word addresses; locals and parameters get frame
// offsets. Both backends use the same layout.
type Layout struct {
	Mode lang.AllocMode

	// DataBase is the first word address used for globals.
	DataBase int32
	// StackTop is the initial stack pointer (frames grow down).
	StackTop int32

	// GlobalAddr maps each global to its word address.
	GlobalAddr map[*lang.Object]int32
	// StringAddr maps string constants to their (byte-packed) word
	// addresses.
	StringAddr map[*lang.Object]int32
	// DataEnd is the first unused word after static data.
	DataEnd int32
	// Init holds initial memory contents (string constants).
	Init map[int32]uint32

	// Frames maps each procedure (nil for the main body) to its layout.
	Frames map[*lang.ProcDecl]*Frame
}

// Frame is one procedure's activation record layout, in words from the
// frame base (the stack pointer after entry):
//
//	0:          saved return address
//	1..:        parameters (value or address for var parameters)
//	then:       locals
//	then:       loop-limit temporaries (one per for statement)
//	then:       expression spill slots
type Frame struct {
	Proc *lang.ProcDecl

	Offsets   map[*lang.Object]int32 // params and locals
	LoopTmp   map[*lang.ForStmt]int32
	SpillBase int32
	Size      int32
}

// NumSpillSlots is the number of expression spill slots per frame; deep
// expressions across calls spill live temporaries here.
const NumSpillSlots = 12

// NewLayout computes the storage layout of a program. wideStrings
// stores string constants one character per word — required by the
// condition-code machine, which has no byte insert/extract.
func NewLayout(p *lang.Program, mode lang.AllocMode, wideStrings bool) *Layout {
	l := &Layout{
		Mode:       mode,
		DataBase:   4096,
		StackTop:   1<<16 - 64,
		GlobalAddr: make(map[*lang.Object]int32),
		StringAddr: make(map[*lang.Object]int32),
		Init:       make(map[int32]uint32),
		Frames:     make(map[*lang.ProcDecl]*Frame),
	}
	// Scalars first: they are the frequently touched globals, and small
	// gp-relative displacements fit the packable field.
	addr := l.DataBase
	for _, g := range p.Globals {
		if g.Type.Scalar() {
			l.GlobalAddr[g] = addr
			addr += mode.SizeWords(g.Type)
		}
	}
	for _, g := range p.Globals {
		if !g.Type.Scalar() {
			l.GlobalAddr[g] = addr
			addr += mode.SizeWords(g.Type)
		}
	}
	for _, c := range p.Consts {
		if !c.IsStr {
			continue
		}
		l.StringAddr[c] = addr
		if wideStrings {
			for i := 0; i < len(c.StrVal); i++ {
				l.Init[addr] = uint32(c.StrVal[i])
				addr++
			}
		} else {
			addr += packString(l.Init, addr, c.StrVal)
		}
	}
	l.DataEnd = addr

	for _, proc := range p.Procs {
		l.Frames[proc] = buildFrame(proc, mode)
	}
	l.Frames[nil] = buildMainFrame(p, mode)
	return l
}

// packString stores a string byte-packed (byte 0 most significant) at
// addr and returns the number of words used. No terminator: Pasqual
// string constants carry their length in the type.
func packString(init map[int32]uint32, addr int32, s string) int32 {
	words := (int32(len(s)) + 3) / 4
	for w := int32(0); w < words; w++ {
		var v uint32
		for b := int32(0); b < 4; b++ {
			v <<= 8
			if i := w*4 + b; i < int32(len(s)) {
				v |= uint32(s[i])
			}
		}
		init[addr+w] = v
	}
	return words
}

func buildFrame(proc *lang.ProcDecl, mode lang.AllocMode) *Frame {
	f := &Frame{
		Proc:    proc,
		Offsets: make(map[*lang.Object]int32),
		LoopTmp: make(map[*lang.ForStmt]int32),
	}
	off := int32(1) // slot 0: saved return address
	for _, p := range proc.Params {
		f.Offsets[p] = off
		if p.ByRef {
			off++ // an address
		} else {
			off += mode.SizeWords(p.Type)
		}
	}
	for _, loc := range proc.Locals {
		f.Offsets[loc] = off
		off += mode.SizeWords(loc.Type)
	}
	if proc.ResultObj != nil {
		f.Offsets[proc.ResultObj] = off
		off++
	}
	off = addLoopTemps(f, proc.Body, off)
	f.SpillBase = off
	f.Size = off + NumSpillSlots
	return f
}

func buildMainFrame(p *lang.Program, mode lang.AllocMode) *Frame {
	f := &Frame{
		Offsets: make(map[*lang.Object]int32),
		LoopTmp: make(map[*lang.ForStmt]int32),
	}
	off := addLoopTemps(f, p.Body, 1)
	f.SpillBase = off
	f.Size = off + NumSpillSlots
	return f
}

// addLoopTemps assigns one frame slot per for statement (the loop limit
// is evaluated once, before the loop, per Pascal semantics).
func addLoopTemps(f *Frame, stmts []lang.Stmt, off int32) int32 {
	for _, s := range stmts {
		switch st := s.(type) {
		case *lang.ForStmt:
			f.LoopTmp[st] = off
			off++
			off = addLoopTemps(f, st.Body, off)
		case *lang.IfStmt:
			off = addLoopTemps(f, st.Then, off)
			off = addLoopTemps(f, st.Else, off)
		case *lang.WhileStmt:
			off = addLoopTemps(f, st.Body, off)
		case *lang.RepeatStmt:
			off = addLoopTemps(f, st.Body, off)
		case *lang.BlockStmt:
			off = addLoopTemps(f, st.Stmts, off)
		}
	}
	return off
}

// exprPure reports whether evaluating the expression has no side
// effects and cannot fault, making early-out elision of its evaluation
// legal. Function calls are impure (they may write output or diverge);
// everything else in Pasqual is pure.
func exprPure(e lang.Expr) bool {
	switch ex := e.(type) {
	case *lang.CallExpr:
		return false
	case *lang.BinExpr:
		return exprPure(ex.L) && exprPure(ex.R)
	case *lang.UnExpr:
		return exprPure(ex.E)
	case *lang.IndexExpr:
		return exprPure(ex.Arr) && exprPure(ex.Idx)
	case *lang.FieldExpr:
		return exprPure(ex.Rec)
	}
	return true
}

// genError is the panic payload for code generation failures; the
// public entry points recover it into an error.
type genError struct{ err error }

func fail(pos lang.Pos, format string, args ...any) {
	panic(genError{fmt.Errorf("codegen: %s: %s", pos, fmt.Sprintf(format, args...))})
}

func catch(err *error) {
	if r := recover(); r != nil {
		if ge, ok := r.(genError); ok {
			*err = ge.err
			return
		}
		panic(r)
	}
}
