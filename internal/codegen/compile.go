package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"mips/internal/asm"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/lang"
	"mips/internal/mem"
	"mips/internal/reorg"
)

// CompileMIPS runs the full tool chain: Pasqual source → naive pieces →
// reorganizer → assembler → loadable image. It returns the image and
// the reorganizer's statistics (the Table 11 quantities).
func CompileMIPS(src string, mopt MIPSOptions, ropt reorg.Options) (*isa.Image, reorg.Stats, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, reorg.Stats{}, err
	}
	unit, err := GenMIPS(prog, mopt)
	if err != nil {
		return nil, reorg.Stats{}, err
	}
	ro, st := reorg.Reorganize(unit, ropt)
	im, err := asm.Assemble(ro)
	if err != nil {
		return nil, st, fmt.Errorf("assemble: %w", err)
	}
	return im, st, nil
}

// RunResult is the outcome of executing a compiled program on the bare
// machine.
type RunResult struct {
	Output  string
	Stats   cpu.Stats
	Hazards []cpu.Hazard
}

// RunMIPS executes an image on a bare machine (no kernel): monitor
// calls are serviced by a host-side trap hook, exactly the environment
// of the paper's dynamic simulations.
func RunMIPS(im *isa.Image, maxSteps uint64) (RunResult, error) {
	return RunMIPSWith(im, maxSteps, RunOptions{})
}

// RunMIPSOn is RunMIPS with the hardware-interlock counterfactual
// selectable, for the ablation experiments.
func RunMIPSOn(im *isa.Image, maxSteps uint64, interlocked bool) (RunResult, error) {
	return RunMIPSWith(im, maxSteps, RunOptions{Interlocked: interlocked})
}

// RunOptions configures RunMIPSWith.
type RunOptions struct {
	// Interlocked enables the hardware-interlock counterfactual.
	Interlocked bool
	// Reference runs the CPU's reference execution path instead of the
	// predecoded fast path; the differential tests compare the two.
	Reference bool
	// NoBlocks disables the superblock translation engine, leaving the
	// per-instruction predecoded fast path. The differential tests
	// compare block execution against it.
	NoBlocks bool
	// Attach, if non-nil, is called with the constructed CPU after the
	// bare machine is assembled and before execution begins — the hook
	// point for tracers, profilers, and metrics registries.
	Attach func(c *cpu.CPU)
}

// RunMIPSWith is RunMIPS with the bare machine exposed: observers
// attach through opt.Attach instead of rebuilding the harness by hand.
func RunMIPSWith(im *isa.Image, maxSteps uint64, opt RunOptions) (RunResult, error) {
	var res RunResult
	phys := mem.NewPhysical(1 << 16)
	c := cpu.New(cpu.NewBus(phys))
	c.Interlocked = opt.Interlocked
	if opt.Reference {
		c.SetFastPath(false)
	}
	if opt.NoBlocks {
		c.SetBlocks(false)
	}
	var out strings.Builder
	c.SetTrapHook(func(code uint16) {
		switch code {
		case trapHalt:
			c.Halt()
		case trapPutChar:
			out.WriteByte(byte(c.Regs[regResult]))
		case trapPutInt:
			out.WriteString(strconv.FormatInt(int64(int32(c.Regs[regResult])), 10))
			out.WriteByte('\n')
		}
	})
	c.SetAudit(func(h cpu.Hazard) { res.Hazards = append(res.Hazards, h) })
	if err := c.LoadImage(im); err != nil {
		return res, err
	}
	// Monitor calls vector through the exception path to physical
	// address zero; the bare machine's whole "kernel" is one rfe that
	// resumes after the trap (the host hook already did the work).
	// Compiled images start at BareTextBase to leave room for it.
	c.IMem[0] = isa.Word(isa.RFE())
	c.SetPC(uint32(im.Entry))
	if opt.Attach != nil {
		opt.Attach(c)
	}
	_, err := c.Run(maxSteps)
	res.Output = out.String()
	res.Stats = c.Stats
	return res, err
}
