package codegen

import (
	"fmt"

	"mips/internal/asm"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/lang"
	"mips/internal/reorg"
	"mips/internal/sim"
)

// CompileMIPS runs the full tool chain: Pasqual source → naive pieces →
// reorganizer → assembler → loadable image. It returns the image and
// the reorganizer's statistics (the Table 11 quantities).
func CompileMIPS(src string, mopt MIPSOptions, ropt reorg.Options) (*isa.Image, reorg.Stats, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, reorg.Stats{}, err
	}
	unit, err := GenMIPS(prog, mopt)
	if err != nil {
		return nil, reorg.Stats{}, err
	}
	ro, st := reorg.Reorganize(unit, ropt)
	im, err := asm.Assemble(ro)
	if err != nil {
		return nil, st, fmt.Errorf("assemble: %w", err)
	}
	return im, st, nil
}

// RunResult is the outcome of executing a compiled program on the bare
// machine.
type RunResult struct {
	Output  string
	Stats   cpu.Stats
	Hazards []cpu.Hazard
}

// RunMIPS executes an image on a bare machine (no kernel): monitor
// calls are serviced by a host-side trap hook, exactly the environment
// of the paper's dynamic simulations.
func RunMIPS(im *isa.Image, maxSteps uint64) (RunResult, error) {
	return RunMIPSWith(im, maxSteps, RunOptions{})
}

// RunMIPSOn is RunMIPS with the hardware-interlock counterfactual
// selectable, for the ablation experiments.
func RunMIPSOn(im *isa.Image, maxSteps uint64, interlocked bool) (RunResult, error) {
	return RunMIPSWith(im, maxSteps, RunOptions{Interlocked: interlocked})
}

// RunOptions configures RunMIPSWith.
type RunOptions struct {
	// Interlocked enables the hardware-interlock counterfactual.
	Interlocked bool
	// Engine selects the execution engine; the zero value follows the
	// process-wide default (sim.SetDefault).
	Engine sim.Engine
	// Reference runs the CPU's reference execution path instead of the
	// predecoded fast path; the differential tests compare the two.
	//
	// Deprecated: set Engine to sim.Reference. When set it overrides
	// Engine, preserving the old behavior for one release.
	Reference bool
	// NoBlocks disables the superblock translation engine, leaving the
	// per-instruction predecoded fast path. The differential tests
	// compare block execution against it.
	//
	// Deprecated: set Engine to sim.FastPath. When set it overrides
	// Engine, preserving the old behavior for one release.
	NoBlocks bool
	// Attach, if non-nil, is called with the constructed CPU after the
	// bare machine is assembled and before execution begins — the hook
	// point for tracers, profilers, and metrics registries.
	Attach func(c *cpu.CPU)
}

// engine resolves the deprecated boolean knobs against the Engine
// field: the booleans win when set, so existing callers keep their
// behavior until they migrate.
func (opt RunOptions) engine() sim.Engine {
	switch {
	case opt.Reference:
		return sim.Reference
	case opt.NoBlocks:
		return sim.FastPath
	}
	return opt.Engine
}

// RunMIPSWith is RunMIPS with the bare machine exposed: observers
// attach through opt.Attach instead of rebuilding the harness by hand.
// It is a thin veneer over the sim facade, kept for its compact result
// shape; new code should use sim.New directly.
func RunMIPSWith(im *isa.Image, maxSteps uint64, opt RunOptions) (RunResult, error) {
	opts := []sim.Option{sim.WithEngine(opt.engine()), sim.WithInterlocked(opt.Interlocked)}
	if opt.Attach != nil {
		opts = append(opts, sim.WithAttach(opt.Attach))
	}
	m, err := sim.New(opts...)
	if err != nil {
		return RunResult{}, err
	}
	if err := m.Load(im); err != nil {
		return RunResult{}, err
	}
	_, err = m.Run(maxSteps)
	return RunResult{Output: m.Output(), Stats: *m.Stats(), Hazards: m.Hazards()}, err
}
