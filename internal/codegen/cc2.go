package codegen

import (
	"mips/internal/ccarch"
	"mips/internal/lang"
)

// ccPlace describes where a CC-machine lvalue lives: a base register
// plus displacement (the machine's only addressing mode, with r0 the
// software zero for absolute addresses).
type ccPlace struct {
	base   ccarch.Reg
	disp   int32
	ownReg bool // base is an owned temporary
}

func (g *ccGen) freeCCPlace(p ccPlace) {
	if p.ownReg {
		g.free(p.base)
	}
}

func (g *ccGen) lvalue(e lang.Expr) ccPlace {
	switch ex := e.(type) {
	case *lang.VarExpr:
		o := ex.Obj
		switch {
		case o.Kind == lang.ObjConst && o.IsStr:
			return ccPlace{base: ccZero, disp: g.lay.StringAddrCC(o)}
		case o.Kind == lang.ObjGlobal:
			return ccPlace{base: ccZero, disp: g.lay.GlobalAddr[o]}
		case o.ByRef:
			r := g.alloc(ex.ExprPos())
			g.emit(ccarch.Ld(r, ccSP, g.frame.Offsets[o]))
			return ccPlace{base: r, ownReg: true}
		default:
			return ccPlace{base: ccSP, disp: g.frame.Offsets[o]}
		}

	case *lang.IndexExpr:
		arrT := ex.Arr.ExprType()
		base := g.containerAddr(ex.Arr)
		idx := g.eval(ex.Idx)
		if arrT.Lo != 0 {
			g.emit(ccarch.ALU(ccarch.OpSub, idx, ccarch.R(idx), ccarch.Imm(arrT.Lo)))
		}
		if w := g.lay.Mode.SizeWords(arrT.Elem); w != 1 {
			g.emit(ccarch.ALU(ccarch.OpMul, idx, ccarch.R(idx), ccarch.Imm(w)))
		}
		g.emit(ccarch.ALU(ccarch.OpAdd, base, ccarch.R(base), ccarch.R(idx)))
		g.free(idx)
		return ccPlace{base: base, ownReg: true}

	case *lang.FieldExpr:
		recT := ex.Rec.ExprType()
		p := g.lvalue(ex.Rec)
		p.disp += g.lay.Mode.FieldOffsetWords(recT, ex.FieldIndex)
		return p
	}
	fail(e.ExprPos(), "not an lvalue: %T", e)
	return ccPlace{}
}

// StringAddrCC returns a string constant's address (helper to keep the
// CC backend independent of the MIPS one).
func (l *Layout) StringAddrCC(o *lang.Object) int32 { return l.StringAddr[o] }

// containerAddr materializes an array/record base address into an owned
// register.
func (g *ccGen) containerAddr(e lang.Expr) ccarch.Reg {
	p := g.lvalue(e)
	if p.ownReg && p.disp == 0 {
		return p.base
	}
	var r ccarch.Reg
	if p.ownReg {
		r = p.base
	} else {
		r = g.alloc(e.ExprPos())
	}
	g.emit(ccarch.ALU(ccarch.OpAdd, r, ccarch.R(p.base), ccarch.Imm(p.disp)))
	return r
}

func (g *ccGen) loadScalar(e lang.Expr) ccarch.Reg {
	p := g.lvalue(e)
	var d ccarch.Reg
	if p.ownReg {
		d = p.base
	} else {
		d = g.alloc(e.ExprPos())
	}
	g.emit(ccarch.Ld(d, p.base, p.disp))
	return d
}

func (g *ccGen) storeScalar(e lang.Expr, v ccarch.Reg) {
	p := g.lvalue(e)
	g.emit(ccarch.St(v, p.base, p.disp))
	g.freeCCPlace(p)
}

// eval computes an expression into a fresh temporary.
func (g *ccGen) eval(e lang.Expr) ccarch.Reg {
	switch ex := e.(type) {
	case *lang.IntExpr:
		return g.loadConst(ex.Val, ex.ExprPos())
	case *lang.CharExpr:
		return g.loadConst(ex.Val, ex.ExprPos())
	case *lang.BoolExpr:
		v := int32(0)
		if ex.Val {
			v = 1
		}
		return g.loadConst(v, ex.ExprPos())

	case *lang.VarExpr:
		if ex.Obj.Kind == lang.ObjConst && !ex.Obj.IsStr {
			return g.loadConst(ex.Obj.ConstVal, ex.ExprPos())
		}
		return g.loadScalar(ex)
	case *lang.IndexExpr, *lang.FieldExpr:
		return g.loadScalar(e)

	case *lang.UnExpr:
		switch ex.Op {
		case lang.OpOrd, lang.OpChr:
			return g.eval(ex.E)
		case lang.OpNeg:
			r := g.eval(ex.E)
			g.emit(ccarch.Instr{Op: ccarch.OpSub, Dst: r, Src1: ccarch.Imm(0), Src2: ccarch.R(r)})
			return r
		case lang.OpNot:
			r := g.eval(ex.E)
			g.emit(ccarch.ALU(ccarch.OpXor, r, ccarch.R(r), ccarch.Imm(1)))
			return r
		}

	case *lang.BinExpr:
		return g.evalBin(ex)

	case *lang.CallExpr:
		return g.genCall(ex)
	}
	fail(e.ExprPos(), "cannot evaluate %T", e)
	return 0
}

func (g *ccGen) loadConst(v int32, pos lang.Pos) ccarch.Reg {
	r := g.alloc(pos)
	g.emit(ccarch.Mov(r, ccarch.Imm(v)))
	return r
}

// operand evaluates an expression as an operand, using immediates for
// constants (the CC machine's immediate fields are not size-limited in
// this model).
func (g *ccGen) operand(e lang.Expr) ccarch.Operand {
	if v, ok := constValue(e); ok {
		return ccarch.Imm(v)
	}
	return ccarch.R(g.eval(e))
}

func (g *ccGen) freeOperand(o ccarch.Operand) {
	if !o.IsImm {
		g.free(o.Reg)
	}
}

func (g *ccGen) evalBin(ex *lang.BinExpr) ccarch.Reg {
	if ex.Op.Relational() {
		return g.evalRelation(ex)
	}
	switch ex.Op {
	case lang.OpAnd, lang.OpOr:
		return g.evalBoolOp(ex)
	}
	var op ccarch.Op
	switch ex.Op {
	case lang.OpAdd:
		op = ccarch.OpAdd
	case lang.OpSub:
		op = ccarch.OpSub
	case lang.OpMul:
		op = ccarch.OpMul
	case lang.OpDiv:
		op = ccarch.OpDiv
	case lang.OpMod:
		op = ccarch.OpMod
	}
	l := g.eval(ex.L)
	r := g.operand(ex.R)
	g.emit(ccarch.ALU(op, l, ccarch.R(l), r))
	g.freeOperand(r)
	return l
}

// evalRelation produces a 0/1 value from a comparison under the chosen
// strategy.
func (g *ccGen) evalRelation(ex *lang.BinExpr) ccarch.Reg {
	cond := ccCond(ex.Op)

	if g.opt.Strategy == BoolCondSet {
		// Figure 2: the conditional-set instruction, branch-free.
		l := g.eval(ex.L)
		r := g.operand(ex.R)
		g.emit(ccarch.Cmp(ccarch.R(l), r))
		g.freeOperand(r)
		g.emit(ccarch.Scc(cond, l))
		return l
	}
	// Figure 1: preset the result, compare, branch over the other
	// store. The preset must precede the compare — on a set-on-moves
	// machine (VAX) the move would clobber the codes.
	d := g.alloc(ex.ExprPos())
	g.emit(ccarch.Mov(d, ccarch.Imm(0)))
	l := g.eval(ex.L)
	r := g.operand(ex.R)
	g.emit(ccarch.Cmp(ccarch.R(l), r))
	g.free(l)
	g.freeOperand(r)
	done := g.newLabel()
	g.emit(ccarch.Bcc(cond.Negate(), done))
	g.emit(ccarch.Mov(d, ccarch.Imm(1)))
	g.label(done)
	return d
}

// evalBoolOp produces a 0/1 value for and/or under the strategy.
func (g *ccGen) evalBoolOp(ex *lang.BinExpr) ccarch.Reg {
	if g.opt.Strategy == BoolEarlyOut && exprPure(ex.R) {
		// Early-out: a branch chain with one store per outcome.
		d := g.alloc(ex.ExprPos())
		done := g.newLabel()
		g.emit(ccarch.Mov(d, ccarch.Imm(1)))
		g.condBranch(ex, done, true)
		g.emit(ccarch.Mov(d, ccarch.Imm(0)))
		g.label(done)
		return d
	}
	// Full evaluation (or conditional set): operand values combined
	// bitwise.
	l := g.eval(ex.L)
	r := g.eval(ex.R)
	op := ccarch.OpAnd
	if ex.Op == lang.OpOr {
		op = ccarch.OpOr
	}
	g.emit(ccarch.ALU(op, l, ccarch.R(l), ccarch.R(r)))
	g.free(r)
	return l
}

func ccCond(op lang.BinOp) ccarch.Cond {
	switch op {
	case lang.OpEq:
		return ccarch.CondEQ
	case lang.OpNE:
		return ccarch.CondNE
	case lang.OpLT:
		return ccarch.CondLT
	case lang.OpLE:
		return ccarch.CondLE
	case lang.OpGT:
		return ccarch.CondGT
	case lang.OpGE:
		return ccarch.CondGE
	}
	return ccarch.CondAlways
}
