package codegen

import (
	"fmt"

	"mips/internal/ccarch"
	"mips/internal/lang"
)

// BoolStrategy selects how boolean expressions compile on the
// condition-code machine — the three alternatives of paper §2.3.2 and
// Figures 1-2.
type BoolStrategy uint8

const (
	// BoolFullEval evaluates every operand to a 0/1 value with branch
	// sequences and combines them bitwise (Figure 1, left).
	BoolFullEval BoolStrategy = iota
	// BoolEarlyOut short-circuits with branch chains (Figure 1, right).
	BoolEarlyOut
	// BoolCondSet uses the conditional-set instruction (Figure 2);
	// requires a policy with scc (the M68000 row).
	BoolCondSet
)

func (s BoolStrategy) String() string {
	switch s {
	case BoolFullEval:
		return "full-eval"
	case BoolEarlyOut:
		return "early-out"
	case BoolCondSet:
		return "cond-set"
	}
	return "?"
}

// CCOptions configures the condition-code backend.
type CCOptions struct {
	Policy   ccarch.Policy
	Strategy BoolStrategy
	// Eliminate runs the redundant-compare elimination after code
	// generation (the Table 3 measurement).
	Eliminate bool
}

// CCResult is the compiled program, its initial data image, and the
// compare-elimination report.
type CCResult struct {
	Prog    *ccarch.Program
	Init    map[int32]uint32
	Savings ccarch.CmpSavings
}

// GenCC compiles a Pasqual program for the condition-code machine. The
// CC machine is always word-allocated (it has no byte insert/extract),
// so instruction counts compare against word-allocated MIPS code.
func GenCC(p *lang.Program, opt CCOptions) (res CCResult, err error) {
	defer catch(&err)
	if opt.Strategy == BoolCondSet && !opt.Policy.CondSet {
		return res, fmt.Errorf("codegen: policy %s has no conditional set", opt.Policy.Name)
	}
	g := &ccGen{
		prog: p,
		lay:  NewLayout(p, lang.WideAlloc, true),
		opt:  opt,
		b:    ccarch.NewBuilder(),
	}
	g.gen()
	cp, perr := g.b.Program()
	if perr != nil {
		return res, perr
	}
	if opt.Eliminate {
		cp, res.Savings = ccarch.EliminateCompares(cp, opt.Policy)
	} else {
		// Count compares even when not eliminating, for the tables.
		_, res.Savings = ccarch.EliminateCompares(cp, opt.Policy)
	}
	res.Prog = cp
	res.Init = g.lay.Init
	return res, nil
}

// RunCC executes a compiled CC program with its initial data image.
func RunCC(res CCResult, policy ccarch.Policy, maxSteps uint64) (string, ccarch.Stats, error) {
	m := ccarch.NewMachine(policy, 1<<16)
	for addr, val := range res.Init {
		m.Mem[addr] = val
	}
	err := m.Run(res.Prog, maxSteps)
	return m.Out.String(), m.Stats, err
}

type ccGen struct {
	prog *lang.Program
	lay  *Layout
	opt  CCOptions
	b    *ccarch.Builder

	inUse  [ccarch.NumRegs]bool
	frame  *Frame
	labelN int
}

// CC-machine register conventions: r0 is a hardwired zero by software
// convention (never written), r1..r11 are temporaries, r13 scratch,
// r14 the stack pointer.
const (
	ccZero    = ccarch.Reg(0)
	ccTmpLo   = ccarch.Reg(1)
	ccTmpHi   = ccarch.Reg(11)
	ccScratch = ccarch.Reg(13)
	ccSP      = ccarch.Reg(14)
)

func (g *ccGen) emit(ins ...ccarch.Instr) { g.b.Emit(ins...) }
func (g *ccGen) label(name string)        { g.b.Label(name) }

func (g *ccGen) newLabel() string {
	g.labelN++
	return fmt.Sprintf(".C%d", g.labelN)
}

func (g *ccGen) alloc(pos lang.Pos) ccarch.Reg {
	for r := ccTmpLo; r <= ccTmpHi; r++ {
		if !g.inUse[r] {
			g.inUse[r] = true
			return r
		}
	}
	fail(pos, "expression too deep: out of temporary registers")
	return 0
}

func (g *ccGen) free(r ccarch.Reg) { g.inUse[r] = false }

func (g *ccGen) gen() {
	g.frame = g.lay.Frames[nil]
	g.emit(ccarch.Mov(ccSP, ccarch.Imm(g.lay.StackTop)))
	g.adjustSP(-g.frame.Size)
	g.stmts(g.prog.Body)
	g.emit(ccarch.Halt())
	for _, proc := range g.prog.Procs {
		g.genProc(proc)
	}
}

func (g *ccGen) genProc(proc *lang.ProcDecl) {
	g.frame = g.lay.Frames[proc]
	g.label("p$" + proc.Name)
	g.stmts(proc.Body)
	if proc.ResultObj != nil {
		g.emit(ccarch.Ld(ccTmpLo, ccSP, g.frame.Offsets[proc.ResultObj]))
	}
	g.emit(ccarch.Ret())
}

func (g *ccGen) adjustSP(delta int32) {
	if delta == 0 {
		return
	}
	if delta > 0 {
		g.emit(ccarch.ALU(ccarch.OpAdd, ccSP, ccarch.R(ccSP), ccarch.Imm(delta)))
	} else {
		g.emit(ccarch.ALU(ccarch.OpSub, ccSP, ccarch.R(ccSP), ccarch.Imm(-delta)))
	}
}
