package codegen

import (
	"fmt"

	"mips/internal/asm"
	"mips/internal/isa"
	"mips/internal/lang"
)

// Register conventions for compiled code. The hardware attaches no
// meaning to general registers; this is pure software convention.
const (
	regResult  = isa.Reg(1) // function results and runtime-routine arguments
	regTmpLo   = isa.Reg(1)
	regTmpHi   = isa.Reg(11)
	regGP      = isa.Reg(12) // global pointer: globals are gp-relative, the packable displacement mode
	regScratch = isa.Reg(13) // address-arithmetic scratch, never allocated
	regSP      = isa.RegSP
	regRA      = isa.RegLink
)

// Monitor-call codes used by compiled programs (matching package kernel).
const (
	trapHalt    = 0
	trapPutChar = 1
	trapPutInt  = 2
)

// MIPSOptions configures the MIPS backend.
type MIPSOptions struct {
	// Mode selects word or byte allocation for arrays of characters and
	// booleans (Tables 7-10).
	Mode lang.AllocMode
	// NoSetCond disables the set-conditionally instruction, forcing
	// branchy boolean evaluation — the ablation for Tables 5/6.
	NoSetCond bool
	// StackTop overrides the initial stack pointer. Zero selects the
	// bare-machine default (just under 64K words of physical memory).
	// Programs run as kernel processes should use KernelStackTop, which
	// lies in the upper valid region of the segmented address space.
	StackTop int32
}

// KernelStackTop is a stack origin in the top region of every process
// address space (it is a small negative word address, which the
// segmentation unit maps to the top of the 32-bit space).
const KernelStackTop = -256

// BareTextBase is the text origin of compiled images: word 0 is left
// for the bare machine's exception handler (a single rfe).
const BareTextBase = 16

// GenMIPS compiles a program to naive MIPS instruction pieces in
// sequential semantics: one piece per operation, no delay slots, no
// packing. Run the result through reorg.Reorganize and asm.Assemble to
// get a loadable image.
func GenMIPS(p *lang.Program, opt MIPSOptions) (u *asm.Unit, err error) {
	defer catch(&err)
	g := &mipsGen{
		prog: p,
		lay:  NewLayout(p, opt.Mode, false),
		opt:  opt,
		unit: &asm.Unit{DataLabels: make(map[string]int32), TextBase: BareTextBase},
	}
	if opt.StackTop != 0 {
		g.lay.StackTop = opt.StackTop
	}
	g.gen()
	return g.unit, nil
}

type mipsGen struct {
	prog *lang.Program
	lay  *Layout
	opt  MIPSOptions
	unit *asm.Unit

	pending []string
	inUse   [isa.NumRegs]bool
	frame   *Frame
	labelN  int

	needMul, needDiv, needMod bool
}

// emit appends one piece as a statement, attaching pending labels.
func (g *mipsGen) emit(p isa.Piece) {
	g.unit.Stmts = append(g.unit.Stmts, asm.Stmt{Labels: g.pending, Pieces: []isa.Piece{p}})
	g.pending = nil
}

// label binds a label to the next emitted piece.
func (g *mipsGen) label(name string) { g.pending = append(g.pending, name) }

func (g *mipsGen) newLabel() string {
	g.labelN++
	return fmt.Sprintf(".L%d", g.labelN)
}

// alloc claims a free temporary register.
func (g *mipsGen) alloc(pos lang.Pos) isa.Reg {
	for r := regTmpLo; r <= regTmpHi; r++ {
		if !g.inUse[r] {
			g.inUse[r] = true
			return r
		}
	}
	fail(pos, "expression too deep: out of temporary registers")
	return 0
}

func (g *mipsGen) free(r isa.Reg) { g.inUse[r] = false }

// gen drives whole-program generation: entry stub, main body,
// procedures, runtime routines, and the data section.
func (g *mipsGen) gen() {
	g.frame = g.lay.Frames[nil]
	g.unit.Entry = "main"
	g.label("main")
	g.emit(isa.LoadImm32(regSP, g.lay.StackTop))
	g.emit(isa.LoadImm32(regGP, g.lay.DataBase))
	g.adjustSP(-g.frame.Size)
	for _, s := range g.prog.Body {
		g.stmt(s)
	}
	g.emit(isa.Trap(trapHalt))

	for _, proc := range g.prog.Procs {
		g.genProc(proc)
	}
	g.genRuntime()

	for addr, val := range g.lay.Init {
		g.unit.Data = append(g.unit.Data, asm.DataItem{Addr: addr, Value: val})
	}
}

func (g *mipsGen) genProc(proc *lang.ProcDecl) {
	g.frame = g.lay.Frames[proc]
	g.label("p$" + proc.Name)
	g.emit(isa.StoreDisp(regRA, regSP, 0))
	for _, s := range proc.Body {
		g.stmt(s)
	}
	if proc.ResultObj != nil {
		g.emit(isa.LoadDisp(regResult, regSP, g.frame.Offsets[proc.ResultObj]))
	}
	g.emit(isa.LoadDisp(regRA, regSP, 0))
	g.emit(isa.JumpInd(regRA))
}

// adjustSP adds a (possibly large) constant to the stack pointer.
func (g *mipsGen) adjustSP(delta int32) {
	switch {
	case delta == 0:
	case delta > 0 && delta <= isa.Imm4Max:
		g.emit(isa.ALU(isa.OpAdd, regSP, isa.R(regSP), isa.Imm(delta)))
	case delta < 0 && -delta <= isa.Imm4Max:
		g.emit(isa.ALU(isa.OpSub, regSP, isa.R(regSP), isa.Imm(-delta)))
	default:
		g.emit(isa.LoadImm32(regScratch, delta))
		g.emit(isa.ALU(isa.OpAdd, regSP, isa.R(regSP), isa.R(regScratch)))
	}
}

// loadConst materializes a constant, using the shortest form: 4-bit
// constants ride in operand fields (callers use constOperand first),
// 8-bit constants use move-immediate, everything else a long immediate
// (the Table 1 hierarchy).
func (g *mipsGen) loadConst(v int32, pos lang.Pos) isa.Reg {
	r := g.alloc(pos)
	switch {
	case v >= 0 && v <= isa.Imm8Max:
		g.emit(isa.Mov(r, isa.Imm(v)))
	case v < 0 && -v <= isa.Imm8Max:
		// Reverse subtract from zero expresses small negatives without
		// sign-extension hardware (paper §2.2).
		g.emit(isa.Mov(r, isa.Imm(-v)))
		g.emit(isa.ALU(isa.OpRSub, r, isa.R(r), isa.Imm(0)))
	default:
		g.emit(isa.LoadImm32(r, v))
	}
	return r
}

// constOperand returns an immediate operand if the expression is a
// constant fitting the 4-bit field.
func constOperand(e lang.Expr) (isa.Operand, bool) {
	v, ok := constValue(e)
	if ok && v >= 0 && v <= isa.Imm4Max {
		return isa.Imm(v), true
	}
	return isa.Operand{}, false
}

func constValue(e lang.Expr) (int32, bool) {
	switch ex := e.(type) {
	case *lang.IntExpr:
		return ex.Val, true
	case *lang.CharExpr:
		return ex.Val, true
	case *lang.BoolExpr:
		if ex.Val {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// operand evaluates an expression as an instruction operand: a 4-bit
// immediate when possible, otherwise a temporary register (which the
// caller must free via freeOperand).
func (g *mipsGen) operand(e lang.Expr) isa.Operand {
	if op, ok := constOperand(e); ok {
		return op
	}
	return isa.R(g.eval(e))
}

func (g *mipsGen) freeOperand(o isa.Operand) {
	if !o.IsImm {
		g.free(o.Reg)
	}
}

// eval generates code computing the expression into a fresh temporary.
func (g *mipsGen) eval(e lang.Expr) isa.Reg {
	switch ex := e.(type) {
	case *lang.IntExpr:
		return g.loadConst(ex.Val, ex.ExprPos())
	case *lang.CharExpr:
		return g.loadConst(ex.Val, ex.ExprPos())
	case *lang.BoolExpr:
		v := int32(0)
		if ex.Val {
			v = 1
		}
		return g.loadConst(v, ex.ExprPos())

	case *lang.VarExpr:
		if ex.Obj.Kind == lang.ObjConst && !ex.Obj.IsStr {
			return g.loadConst(ex.Obj.ConstVal, ex.ExprPos())
		}
		return g.loadScalar(ex)

	case *lang.IndexExpr, *lang.FieldExpr:
		return g.loadScalar(e)

	case *lang.UnExpr:
		switch ex.Op {
		case lang.OpOrd, lang.OpChr:
			return g.eval(ex.E) // free at the machine level
		case lang.OpNeg:
			r := g.eval(ex.E)
			g.emit(isa.ALU(isa.OpNeg, r, isa.R(r), isa.Operand{}))
			return r
		case lang.OpNot:
			r := g.eval(ex.E)
			g.emit(isa.ALU(isa.OpXor, r, isa.R(r), isa.Imm(1)))
			return r
		}

	case *lang.BinExpr:
		return g.evalBin(ex)

	case *lang.CallExpr:
		return g.genCall(ex)
	}
	fail(e.ExprPos(), "cannot evaluate %T", e)
	return 0
}

func (g *mipsGen) evalBin(ex *lang.BinExpr) isa.Reg {
	if ex.Op.Relational() {
		return g.evalRelation(ex)
	}
	switch ex.Op {
	case lang.OpAnd, lang.OpOr:
		// Value context: full evaluation with bitwise ops over 0/1
		// (branch-free, the §2.3.2 set-conditionally style). Both
		// operands are evaluated, matching the language semantics.
		l := g.eval(ex.L)
		r := g.operand(ex.R)
		op := isa.OpAnd
		if ex.Op == lang.OpOr {
			op = isa.OpOr
		}
		g.emit(isa.ALU(op, l, isa.R(l), r))
		g.freeOperand(r)
		return l

	case lang.OpMul:
		if v, ok := constValue(ex.R); ok {
			l := g.eval(ex.L)
			g.mulConst(l, v, ex.ExprPos())
			return l
		}
		if v, ok := constValue(ex.L); ok {
			r := g.eval(ex.R)
			g.mulConst(r, v, ex.ExprPos())
			return r
		}
		g.needMul = true
		return g.genRuntimeCall("$mul", ex)
	case lang.OpDiv:
		g.needDiv = true
		return g.genRuntimeCall("$div", ex)
	case lang.OpMod:
		g.needMod = true
		return g.genRuntimeCall("$mod", ex)
	}

	// Add and subtract, with the reverse-operator trick for constants.
	l := ex.L
	r := ex.R
	op := isa.OpAdd
	if ex.Op == lang.OpSub {
		op = isa.OpSub
	}
	// const - x  =>  reverse subtract: dst = s2 - s1 with the constant
	// as s2, the paper's reverse-operator idiom (§2.2).
	if lv, ok := constOperand(l); ok && ex.Op == lang.OpSub {
		rr := g.eval(r)
		g.emit(isa.ALU(isa.OpRSub, rr, isa.R(rr), lv))
		return rr
	}
	// x + negative-const => x - |const|, and vice versa.
	if rv, ok := constValue(r); ok && rv < 0 && -rv <= isa.Imm4Max {
		if op == isa.OpAdd {
			op = isa.OpSub
		} else {
			op = isa.OpAdd
		}
		lr := g.eval(l)
		g.emit(isa.ALU(op, lr, isa.R(lr), isa.Imm(-rv)))
		return lr
	}
	lr := g.eval(l)
	ro := g.operand(r)
	g.emit(isa.ALU(op, lr, isa.R(lr), ro))
	g.freeOperand(ro)
	return lr
}

// evalRelation computes a 0/1 boolean from a comparison: a single
// set-conditionally instruction (paper Figure 3), or a branchy sequence
// under the NoSetCond ablation.
func (g *mipsGen) evalRelation(ex *lang.BinExpr) isa.Reg {
	if !g.opt.NoSetCond {
		l := g.eval(ex.L)
		r := g.operand(ex.R)
		g.emit(isa.SetCond(relCmp(ex.Op), l, isa.R(l), r))
		g.freeOperand(r)
		return l
	}
	// Ablation: no conditional set — load 0, branch, load 1 (Figure 1).
	d := g.alloc(ex.ExprPos())
	g.emit(isa.Mov(d, isa.Imm(0)))
	skip := g.newLabel()
	g.condBranch(ex, skip, false)
	g.emit(isa.Mov(d, isa.Imm(1)))
	g.label(skip)
	g.emit(isa.Nop()) // label anchor; removed by the reorganizer's packer
	return d
}

func relCmp(op lang.BinOp) isa.Cmp {
	switch op {
	case lang.OpEq:
		return isa.CmpEQ
	case lang.OpNE:
		return isa.CmpNE
	case lang.OpLT:
		return isa.CmpLT
	case lang.OpLE:
		return isa.CmpLE
	case lang.OpGT:
		return isa.CmpGT
	case lang.OpGE:
		return isa.CmpGE
	}
	return isa.CmpNev
}

// mulConst multiplies a register by a compile-time constant with shifts
// and adds.
func (g *mipsGen) mulConst(r isa.Reg, c int32, pos lang.Pos) {
	neg := false
	if c < 0 {
		neg = true
		c = -c
	}
	switch c {
	case 0:
		g.emit(isa.Mov(r, isa.Imm(0)))
		return
	case 1:
	default:
		if c&(c-1) == 0 {
			g.emit(isa.ALU(isa.OpSll, r, isa.R(r), shiftAmount(log2(c), g, pos)))
		} else {
			// Binary decomposition into a scratch accumulator.
			acc := g.alloc(pos)
			g.emit(isa.Mov(acc, isa.Imm(0)))
			first := true
			for bit := 0; bit < 31; bit++ {
				if c&(1<<bit) == 0 {
					continue
				}
				if bit > 0 {
					// Shift the source up to this bit position.
					g.emit(isa.ALU(isa.OpSll, r, isa.R(r), shiftAmount(bit-prevBit(c, bit), g, pos)))
				}
				if first {
					g.emit(isa.Mov(acc, isa.R(r)))
					first = false
				} else {
					g.emit(isa.ALU(isa.OpAdd, acc, isa.R(acc), isa.R(r)))
				}
			}
			g.emit(isa.Mov(r, isa.R(acc)))
			g.free(acc)
		}
	}
	if neg {
		g.emit(isa.ALU(isa.OpNeg, r, isa.R(r), isa.Operand{}))
	}
}

// shiftAmount yields a shift-count operand; counts above the 4-bit
// immediate limit go through the scratch register.
func shiftAmount(n int, g *mipsGen, pos lang.Pos) isa.Operand {
	if n <= isa.Imm4Max {
		return isa.Imm(int32(n))
	}
	g.emit(isa.Mov(regScratch, isa.Imm(int32(n))))
	return isa.R(regScratch)
}

func log2(c int32) int {
	n := 0
	for c > 1 {
		c >>= 1
		n++
	}
	return n
}

// prevBit returns the position of the set bit below `bit` in c, or 0.
func prevBit(c int32, bit int) int {
	for b := bit - 1; b >= 0; b-- {
		if c&(1<<b) != 0 {
			return b
		}
	}
	return 0
}
