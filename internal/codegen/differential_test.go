package codegen

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"mips/internal/corpus"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/reorg"
	"mips/internal/sim"
)

// The predecoded fast path and the reference interpreter must be one
// machine with two dispatch mechanisms: same outputs, same statistics,
// same final memory, and the same observer event stream, for every
// corpus program. These tests pin that equivalence.

// eventHasher folds every CPU observer callback into one FNV stream, so
// two runs can be compared event-for-event with a single value. Any
// divergence — an extra stall, a hook fired with different arguments, a
// missing trap — changes the hash.
type eventHasher struct {
	h interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
	buf [40]byte
}

func newEventHasher() *eventHasher { return &eventHasher{h: fnv.New64a()} }

func (e *eventHasher) event(tag byte, args ...uint32) {
	e.buf[0] = tag
	n := 1
	for _, a := range args {
		binary.LittleEndian.PutUint32(e.buf[n:], a)
		n += 4
	}
	e.h.Write(e.buf[:n])
}

// attach registers the hasher on every observer hook the CPU offers.
// stepHook selects whether the per-instruction step hook is included: a
// step hook forces the exact engine by design (the documented fallback
// rule), so comparisons that must exercise the superblock engine attach
// everything except it.
func (e *eventHasher) attach(c *cpu.CPU, stepHook bool) {
	if stepHook {
		c.SetStepHook(func(pc uint32, in isa.Instr) { e.event('s', pc) })
	}
	c.SetMemHook(func(pc, addr uint32, store bool) { e.event('m', pc, addr, b2u(store)) })
	c.SetBranchHook(func(pc, target uint32, taken bool) { e.event('b', pc, target, b2u(taken)) })
	c.SetExcHook(func(pc uint32, primary, secondary isa.Cause, trapCode uint16) {
		e.event('x', pc, uint32(primary), uint32(secondary), uint32(trapCode))
	})
	c.SetRFEHook(func(pc uint32) { e.event('r', pc) })
	c.SetStallHook(func(pc uint32) { e.event('w', pc) })
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// machineImage is everything observable about one finished run.
type machineImage struct {
	output string
	stats  cpu.Stats
	events uint64 // event-stream hash
	mem    uint64 // final data-memory hash
	regs   [isa.NumRegs]uint32
	trans  cpu.TranslationStats
}

// runImage executes a compiled image on the bare machine with full
// observability and captures the run's observable state.
func runImage(t *testing.T, im *isa.Image, opt RunOptions, stepHook bool) machineImage {
	t.Helper()
	eh := newEventHasher()
	var cc *cpu.CPU
	opt.Attach = func(c *cpu.CPU) {
		cc = c
		eh.attach(c, stepHook)
	}
	res, err := RunMIPSWith(im, 200_000_000, opt)
	if err != nil {
		t.Fatalf("run (reference=%v, noblocks=%v): %v", opt.Reference, opt.NoBlocks, err)
	}
	mh := fnv.New64a()
	var word [4]byte
	phys := cc.Bus.MMU.Phys
	for a := uint32(0); a < phys.Size(); a++ {
		binary.LittleEndian.PutUint32(word[:], phys.Peek(a))
		mh.Write(word[:])
	}
	img := machineImage{
		output: res.Output,
		stats:  res.Stats,
		events: eh.h.Sum64(),
		mem:    mh.Sum64(),
	}
	copy(img.regs[:], cc.Regs[:])
	img.trans = cc.Trans
	return img
}

// TestFastPathMatchesReference runs every non-heavy corpus program
// through both execution engines and demands identical observable
// machines: output, the whole Stats struct, the final register file and
// physical memory, and the exact observer event stream.
func TestFastPathMatchesReference(t *testing.T) {
	for _, p := range corpus.All() {
		if p.Heavy {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			im, _, err := CompileMIPS(p.Source, MIPSOptions{}, reorg.All())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			fast := runImage(t, im, RunOptions{}, true)
			ref := runImage(t, im, RunOptions{Reference: true}, true)
			if fast.output != ref.output {
				t.Errorf("output diverges:\n fast %q\n  ref %q", fast.output, ref.output)
			}
			if fast.stats != ref.stats {
				t.Errorf("stats diverge:\n fast %+v\n  ref %+v", fast.stats, ref.stats)
			}
			if fast.regs != ref.regs {
				t.Errorf("final registers diverge:\n fast %v\n  ref %v", fast.regs, ref.regs)
			}
			if fast.mem != ref.mem {
				t.Error("final physical memory diverges")
			}
			if fast.events != ref.events {
				t.Error("observer event streams diverge")
			}
		})
	}
}

// TestBlocksMatchFastPath runs every non-heavy corpus program on the
// superblock translation engine and on the per-instruction fast path
// and demands identical observable machines. The step hook is omitted —
// it forces the exact engine — so the event streams compare memory,
// branch, exception, RFE, and stall events, all of which the block
// engine must deliver with exact per-instruction arguments.
func TestBlocksMatchFastPath(t *testing.T) {
	var chained uint64
	for _, p := range corpus.All() {
		if p.Heavy {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			im, _, err := CompileMIPS(p.Source, MIPSOptions{}, reorg.All())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			blk := runImage(t, im, RunOptions{Engine: sim.Blocks}, false)
			fast := runImage(t, im, RunOptions{NoBlocks: true}, false)
			if blk.output != fast.output {
				t.Errorf("output diverges:\n blocks %q\n   fast %q", blk.output, fast.output)
			}
			if blk.stats != fast.stats {
				t.Errorf("stats diverge:\n blocks %+v\n   fast %+v", blk.stats, fast.stats)
			}
			if blk.regs != fast.regs {
				t.Errorf("final registers diverge:\n blocks %v\n   fast %v", blk.regs, fast.regs)
			}
			if blk.mem != fast.mem {
				t.Error("final physical memory diverges")
			}
			if blk.events != fast.events {
				t.Error("observer event streams diverge")
			}
			if blk.trans.BlockTranslations == 0 {
				t.Error("block engine translated nothing; the comparison is vacuous")
			}
			if fast.trans.BlockTranslations != 0 {
				t.Error("NoBlocks run built superblocks")
			}
			chained += blk.trans.BlockChained
		})
	}
	if chained == 0 {
		t.Error("no corpus program took a chained block entry")
	}
}

// TestTracesMatchBlocks runs every non-heavy corpus program on the
// trace JIT tier and on the plain superblock engine and demands
// identical observable machines: output, the whole Stats struct, the
// final register file and physical memory, and the exact observer
// event stream (memory, branch, exception, RFE, and stall events — the
// compiled closures must deliver each with exact per-instruction
// arguments). TranslationStats is the one deliberately engine-specific
// surface, so it is checked for non-vacuity instead of equality: the
// corpus in aggregate must compile traces and dispatch through them,
// and the blocks-only runs must never form any.
func TestTracesMatchBlocks(t *testing.T) {
	var compiled, hits, exits uint64
	for _, p := range corpus.All() {
		if p.Heavy {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			im, _, err := CompileMIPS(p.Source, MIPSOptions{}, reorg.All())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			trc := runImage(t, im, RunOptions{Engine: sim.Traces}, false)
			blk := runImage(t, im, RunOptions{Engine: sim.Blocks}, false)
			if trc.output != blk.output {
				t.Errorf("output diverges:\n traces %q\n blocks %q", trc.output, blk.output)
			}
			if trc.stats != blk.stats {
				t.Errorf("stats diverge:\n traces %+v\n blocks %+v", trc.stats, blk.stats)
			}
			if trc.regs != blk.regs {
				t.Errorf("final registers diverge:\n traces %v\n blocks %v", trc.regs, blk.regs)
			}
			if trc.mem != blk.mem {
				t.Error("final physical memory diverges")
			}
			if trc.events != blk.events {
				t.Error("observer event streams diverge")
			}
			if blk.trans.TraceFormed != 0 {
				t.Error("blocks run formed traces")
			}
			// The deopt taxonomy must partition the legacy counter
			// exactly: every guard exit is attributed to one reason.
			if got, want := trc.trans.GuardExitReasonTotal(), trc.trans.TraceGuardExits; got != want {
				t.Errorf("deopt reasons sum to %d, want TraceGuardExits %d", got, want)
			}
			// Tier residency must partition retirement exactly on a
			// fresh machine: every instruction charges one tier.
			if got, want := trc.trans.TierInstrTotal(), trc.stats.Instructions; got != want {
				t.Errorf("tier residency sums to %d, want Instructions %d", got, want)
			}
			if got, want := blk.trans.TierInstrTotal(), blk.stats.Instructions; got != want {
				t.Errorf("blocks tier residency sums to %d, want Instructions %d", got, want)
			}
			compiled += trc.trans.TraceCompiled
			hits += trc.trans.TraceDispatchHits
			exits += trc.trans.TraceGuardExits
		})
	}
	if compiled == 0 {
		t.Error("no corpus program compiled a trace; the comparison is vacuous")
	}
	if hits == 0 {
		t.Error("no corpus program dispatched through a compiled trace")
	}
	if exits == 0 {
		t.Error("no corpus program recorded a guard exit; the partition check is vacuous")
	}
}

// TestFastPathMatchesReferenceKernel runs the same differential check
// on the full kernel machine — demand paging, preemptive scheduling,
// DMA, and the paging disk recycling frames under the predecode cache.
func TestFastPathMatchesReferenceKernel(t *testing.T) {
	src := `
program diff;
var i, acc: integer;
var arr: array[0..63] of integer;
begin
  i := 0;
  while i < 64 do begin arr[i] := i * 3; i := i + 1 end;
  acc := 0;
  i := 0;
  while i < 64 do begin acc := acc + arr[i]; i := i + 2 end;
  writeint(acc)
end.
`
	im, _, err := CompileMIPS(src, MIPSOptions{}, reorg.All())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	type kernelImage struct {
		console  string
		faults   uint32
		switches uint32
		stats    cpu.Stats
	}
	run := func(engine string) kernelImage {
		m, err := kernel.NewMachine(kernel.Config{TimerPeriod: 1000})
		if err != nil {
			t.Fatalf("machine: %v", err)
		}
		m.CPU.SetFastPath(engine != "reference")
		m.CPU.SetBlocks(engine == "blocks" || engine == "traces")
		m.CPU.SetTraces(engine == "traces")
		if _, err := m.AddProcess(im, 16); err != nil {
			t.Fatalf("add process: %v", err)
		}
		if _, err := m.AddProcess(im, 16); err != nil {
			t.Fatalf("add process: %v", err)
		}
		if _, err := m.Run(50_000_000); err != nil {
			t.Fatalf("run (%s): %v", engine, err)
		}
		return kernelImage{
			console:  m.ConsoleOutput(),
			faults:   m.PageFaults(),
			switches: m.ContextSwitches(),
			stats:    m.CPU.Stats,
		}
	}
	traces := run("traces")
	blocks := run("blocks")
	fast := run("fast")
	ref := run("reference")
	if fast != ref {
		t.Errorf("kernel machines diverge:\n fast %+v\n  ref %+v", fast, ref)
	}
	if blocks != fast {
		t.Errorf("kernel machines diverge:\n blocks %+v\n   fast %+v", blocks, fast)
	}
	// The kernel machine has devices and a paging MMU, so the quiet-
	// environment guard keeps traces from ever forming; the tier must
	// degrade gracefully to superblocks without observable difference.
	if traces != blocks {
		t.Errorf("kernel machines diverge:\n traces %+v\n blocks %+v", traces, blocks)
	}
}
