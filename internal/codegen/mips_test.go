package codegen

import (
	"testing"

	"mips/internal/isa"
	"mips/internal/lang"
	"mips/internal/reorg"
)

// diffTest compiles src for MIPS under every reorganizer stage and
// checks output equality with the reference interpreter plus zero
// hazards.
func diffTest(t *testing.T, src string, mopt MIPSOptions) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want, err := (&lang.Interp{Mode: mopt.Mode}).Run(prog)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	stages := map[string]reorg.Options{
		"none":  {},
		"reorg": {Reorganize: true},
		"pack":  {Reorganize: true, Pack: true},
		"full":  reorg.All(),
	}
	for name, ropt := range stages {
		im, _, err := CompileMIPS(src, mopt, ropt)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		res, err := RunMIPS(im, 50_000_000)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if len(res.Hazards) > 0 {
			t.Fatalf("%s: hazardous code: %v", name, res.Hazards[0])
		}
		if res.Output != want {
			t.Errorf("%s: output = %q, want %q", name, res.Output, want)
		}
	}
}

func TestMIPSHelloWorld(t *testing.T) {
	diffTest(t, `
program hello;
begin
  writechar('h'); writechar('i'); writeint(42)
end.`, MIPSOptions{})
}

func TestMIPSArithmetic(t *testing.T) {
	diffTest(t, `
program arith;
var i, sum: integer;
begin
  sum := 0;
  for i := 1 to 10 do sum := sum + i;
  writeint(sum);
  writeint(1000 - 7);
  writeint(7 - 1000);
  writeint(2 + 3 * 4);
  writeint((2 + 3) * 4);
  writeint(-5 + 3)
end.`, MIPSOptions{})
}

func TestMIPSMulDivMod(t *testing.T) {
	diffTest(t, `
program muldiv;
var a, b: integer;
begin
  a := 37; b := 5;
  writeint(a * b);
  writeint(a div b);
  writeint(a mod b);
  a := -37;
  writeint(a * b);
  writeint(a div b);
  writeint(a mod b);
  b := -5;
  writeint(a div b);
  writeint(a mod b);
  writeint(a * a);
  writeint(0 div 7);
  writeint(123 * 0)
end.`, MIPSOptions{})
}

func TestMIPSMulByConstants(t *testing.T) {
	diffTest(t, `
program mulconst;
var x: integer;
begin
  x := 7;
  writeint(x * 2);
  writeint(x * 8);
  writeint(x * 10);
  writeint(x * 100);
  writeint(x * 1);
  writeint(x * 0);
  writeint(3 * x);
  writeint(x * 511)
end.`, MIPSOptions{})
}

func TestMIPSControlFlow(t *testing.T) {
	diffTest(t, `
program flow;
var i, n: integer;
begin
  n := 0;
  i := 10;
  while i > 0 do begin
    if i mod 2 = 0 then n := n + i else n := n - 1;
    i := i - 1
  end;
  writeint(n);
  repeat n := n + 1 until n >= 28;
  writeint(n);
  for i := 3 downto 1 do writeint(i);
  if (n = 28) and (i >= 0) then writeint(1);
  if (n = 99) or (i < 100) then writeint(2)
end.`, MIPSOptions{})
}

func TestMIPSBooleans(t *testing.T) {
	diffTest(t, `
program bools;
var found, b: boolean; rec, key, i: integer;
begin
  rec := 5; key := 5; i := 12;
  found := (rec = key) or (i = 13);
  if found then writeint(1) else writeint(0);
  b := not found;
  if b then writeint(1) else writeint(0);
  found := (rec <> key) and (i < 13);
  if found = b then writeint(7);
  if true then writeint(8);
  if not false then writeint(9)
end.`, MIPSOptions{})
}

func TestMIPSBooleansNoSetCond(t *testing.T) {
	diffTest(t, `
program bools2;
var x: boolean; a: integer;
begin
  a := 3;
  x := a > 2;
  if x then writeint(1);
  x := (a = 3) and (a < 10) or (a = 99);
  if x then writeint(2)
end.`, MIPSOptions{NoSetCond: true})
}

func TestMIPSImpureBooleanOperands(t *testing.T) {
	// The right operand writes output; full evaluation must keep it.
	diffTest(t, `
program impure;
var x: boolean;
function noisy: boolean;
begin
  writechar('n');
  noisy := true
end;
begin
  x := false and noisy;      { n must still print }
  if x then writeint(1) else writeint(0);
  if true or noisy then writeint(2)   { n prints again: full eval }
end.`, MIPSOptions{})
}

func TestMIPSFunctionsRecursion(t *testing.T) {
	diffTest(t, `
program fib;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n
  else fib := fib(n - 1) + fib(n - 2)
end;
begin
  writeint(fib(12))
end.`, MIPSOptions{})
}

func TestMIPSVarParams(t *testing.T) {
	diffTest(t, `
program vp;
var a, b: integer; arr: array[0..4] of integer;
procedure bump(var x: integer; by: integer);
begin
  x := x + by
end;
procedure swap(var x, y: integer);
var t: integer;
begin
  t := x; x := y; y := t
end;
begin
  a := 1; b := 2;
  swap(a, b);
  writeint(a); writeint(b);
  bump(a, 10);
  writeint(a);
  arr[3] := 7;
  bump(arr[3], 5);
  writeint(arr[3])
end.`, MIPSOptions{})
}

func TestMIPSArraysRecords(t *testing.T) {
	diffTest(t, `
program structs;
type pt = record x, y: integer end;
var
  v: array[1..5] of integer;
  grid: array[0..3] of pt;
  p: pt;
  i: integer;
begin
  for i := 1 to 5 do v[i] := i * i;
  writeint(v[1] + v[5]);
  p.x := 3; p.y := 4;
  writeint(p.x * p.y);
  for i := 0 to 3 do begin
    grid[i].x := i; grid[i].y := i + 1
  end;
  writeint(grid[2].x + grid[3].y)
end.`, MIPSOptions{})
}

func TestMIPSCharArraysBothModes(t *testing.T) {
	src := `
program chars;
var
  pbuf: packed array[0..9] of char;
  ubuf: array[0..9] of char;
  i: integer;
begin
  for i := 0 to 9 do begin
    pbuf[i] := chr(ord('a') + i);
    ubuf[i] := pbuf[i]
  end;
  for i := 0 to 9 do writechar(ubuf[i]);
  for i := 9 downto 0 do writechar(pbuf[i])
end.`
	diffTest(t, src, MIPSOptions{Mode: lang.WordAlloc})
	diffTest(t, src, MIPSOptions{Mode: lang.ByteAlloc})
}

func TestMIPSStringConstants(t *testing.T) {
	diffTest(t, `
program msg;
const greeting = 'hello mips';
var i: integer;
begin
  for i := 0 to 9 do writechar(greeting[i])
end.`, MIPSOptions{})
}

func TestMIPSNegativeArrayBounds(t *testing.T) {
	diffTest(t, `
program negidx;
var a: array[-3..3] of integer; i: integer;
begin
  for i := -3 to 3 do a[i] := i * 10;
  writeint(a[-3] + a[3] + a[0])
end.`, MIPSOptions{})
}

func TestMIPSDeepExpressions(t *testing.T) {
	diffTest(t, `
program deep;
var a, b, c, d: integer;
begin
  a := 1; b := 2; c := 3; d := 4;
  writeint(((a + b) * (c + d)) - ((a - b) * (c - d)));
  writeint((a + (b * (c + (d * 2)))) * 2)
end.`, MIPSOptions{})
}

func TestMIPSCallsInsideExpressions(t *testing.T) {
	diffTest(t, `
program callexpr;
function sq(x: integer): integer;
begin
  sq := x * x
end;
function add3(a, b, c: integer): integer;
begin
  add3 := a + b + c
end;
begin
  writeint(sq(3) + sq(4));
  writeint(add3(sq(2), sq(3), sq(4)));
  writeint(sq(sq(2)))
end.`, MIPSOptions{})
}

func TestMIPSGlobalByteArrayVarParam(t *testing.T) {
	// Whole arrays pass by reference; element addressing happens in the
	// callee against the passed base.
	diffTest(t, `
program arrparam;
type buf = array[0..7] of integer;
var b: buf;
procedure fill(var x: buf; v: integer);
var i: integer;
begin
  for i := 0 to 7 do x[i] := v + i
end;
begin
  fill(b, 10);
  writeint(b[0] + b[7])
end.`, MIPSOptions{})
}

func TestMIPSHaltMidProgram(t *testing.T) {
	diffTest(t, `
program stopper;
begin
  writeint(1);
  halt;
  writeint(2)
end.`, MIPSOptions{})
}

func TestMIPSStaticCountsShrinkWithStages(t *testing.T) {
	src := `
program work;
var i, s: integer; buf: packed array[0..15] of char;
begin
  s := 0;
  for i := 0 to 15 do buf[i] := chr(64 + i);
  for i := 0 to 15 do s := s + ord(buf[i]);
  writeint(s)
end.`
	var prev int
	for i, ropt := range []reorg.Options{{}, {Reorganize: true}, {Reorganize: true, Pack: true}, reorg.All()} {
		im, _, err := CompileMIPS(src, MIPSOptions{}, ropt)
		if err != nil {
			t.Fatal(err)
		}
		n := len(im.Words)
		if i > 0 && n > prev {
			t.Errorf("stage %d grew the program: %d -> %d", i, prev, n)
		}
		prev = n
	}
	// Full optimization must beat the naive translation noticeably.
	imNone, _, _ := CompileMIPS(src, MIPSOptions{}, reorg.Options{})
	imFull, _, _ := CompileMIPS(src, MIPSOptions{}, reorg.All())
	if len(imFull.Words) >= len(imNone.Words) {
		t.Errorf("full = %d words, none = %d", len(imFull.Words), len(imNone.Words))
	}
}

func TestCompiledImagesEncodeToBits(t *testing.T) {
	// Every compiled corpus-style program must fit the 32-bit binary
	// encoding exactly — one uint32 per instruction word — and the
	// decoded program must run identically.
	srcs := []string{`
program enc1;
var i, s: integer; buf: packed array[0..15] of char;
begin
  s := 0;
  for i := 0 to 15 do buf[i] := chr(64 + i);
  for i := 0 to 15 do s := s + ord(buf[i]);
  writeint(s * 3 div 7)
end.`, `
program enc2;
function fact(n: integer): integer;
begin
  if n <= 1 then fact := 1 else fact := n * fact(n - 1)
end;
begin
  writeint(fact(10))
end.`}
	for _, src := range srcs {
		im, _, err := CompileMIPS(src, MIPSOptions{}, reorg.All())
		if err != nil {
			t.Fatal(err)
		}
		bits, err := isa.EncodeProgram(im.Words, im.TextBase)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if len(bits) != len(im.Words) {
			t.Fatalf("encoded %d words to %d bit-words", len(im.Words), len(bits))
		}
		decoded, err := isa.DecodeProgram(bits, im.TextBase)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want, err := RunMIPS(im, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		im2 := *im
		im2.Words = decoded
		got, err := RunMIPS(&im2, 50_000_000)
		if err != nil {
			t.Fatalf("decoded image run: %v", err)
		}
		if got.Output != want.Output {
			t.Fatalf("decoded image output %q, want %q", got.Output, want.Output)
		}
	}
}
