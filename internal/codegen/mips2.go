package codegen

import (
	"mips/internal/isa"
	"mips/internal/lang"
)

// place describes where an lvalue lives.
type place struct {
	// Word-addressed cases: base register plus displacement (globals
	// are gp-relative, locals sp-relative), or a computed address in an
	// owned register.
	base    isa.Reg
	disp    int32
	hasDisp bool
	addrReg isa.Reg // word address in a register (owned)
	hasReg  bool

	// Byte-addressed case: word base register plus byte index register.
	byteBase isa.Reg
	byteIdx  isa.Reg
	isByte   bool
}

func (g *mipsGen) freePlace(p place) {
	if p.hasReg {
		g.free(p.addrReg)
	}
	if p.isByte {
		g.free(p.byteBase)
		g.free(p.byteIdx)
	}
}

// loadScalar loads the value of an addressable scalar expression.
func (g *mipsGen) loadScalar(e lang.Expr) isa.Reg {
	p := g.lvalue(e)
	switch {
	case p.isByte:
		d := g.alloc(e.ExprPos())
		g.emit(isa.LoadShift(d, p.byteBase, p.byteIdx, 2))
		g.emit(isa.ALU(isa.OpXC, d, isa.R(p.byteIdx), isa.R(d)))
		g.freePlace(p)
		return d
	case p.hasDisp:
		d := g.alloc(e.ExprPos())
		g.emit(isa.LoadDisp(d, p.base, p.disp))
		return d
	default:
		// Reuse the address register as the destination.
		g.emit(isa.LoadDisp(p.addrReg, p.addrReg, 0))
		return p.addrReg
	}
}

// storeScalar stores a register into an addressable scalar expression.
func (g *mipsGen) storeScalar(e lang.Expr, v isa.Reg) {
	p := g.lvalue(e)
	switch {
	case p.isByte:
		// The paper's store-byte sequence: fetch the word, insert the
		// byte, store it back (§4.1).
		t := g.alloc(e.ExprPos())
		g.emit(isa.LoadShift(t, p.byteBase, p.byteIdx, 2))
		g.emit(isa.ALU(isa.OpMovLo, 0, isa.R(p.byteIdx), isa.Operand{}))
		g.emit(isa.ALU(isa.OpIC, t, isa.R(v), isa.R(t)))
		g.emit(isa.StoreShift(t, p.byteBase, p.byteIdx, 2))
		g.free(t)
	case p.hasDisp:
		g.emit(isa.StoreDisp(v, p.base, p.disp))
	default:
		g.emit(isa.StoreDisp(v, p.addrReg, 0))
	}
	g.freePlace(p)
}

// lvalue resolves an addressable expression to a place.
func (g *mipsGen) lvalue(e lang.Expr) place {
	switch ex := e.(type) {
	case *lang.VarExpr:
		o := ex.Obj
		switch {
		case o.Kind == lang.ObjConst && o.IsStr:
			r := g.alloc(ex.ExprPos())
			g.emit(isa.LoadImm32(r, g.lay.StringAddr[o]))
			return place{addrReg: r, hasReg: true}
		case o.Kind == lang.ObjGlobal:
			// Globals are gp-relative: the displacement(base) mode that
			// packs when the offset is small.
			return place{hasDisp: true, base: regGP, disp: g.lay.GlobalAddr[o] - g.lay.DataBase}
		case o.ByRef:
			r := g.alloc(ex.ExprPos())
			g.emit(isa.LoadDisp(r, regSP, g.frame.Offsets[o]))
			return place{addrReg: r, hasReg: true}
		default:
			off, ok := g.frame.Offsets[o]
			if !ok {
				fail(ex.ExprPos(), "no frame slot for %s", o.Name)
			}
			return place{hasDisp: true, base: regSP, disp: off}
		}

	case *lang.IndexExpr:
		arrT := ex.Arr.ExprType()
		base := g.containerAddr(ex.Arr)
		idx := g.eval(ex.Idx)
		if arrT.Lo != 0 {
			g.addConst(idx, -arrT.Lo, ex.ExprPos())
		}
		if g.lay.Mode.ElemBytePacked(arrT) {
			return place{isByte: true, byteBase: base, byteIdx: idx}
		}
		if w := g.lay.Mode.SizeWords(arrT.Elem); w != 1 {
			g.mulConst(idx, w, ex.ExprPos())
		}
		g.emit(isa.ALU(isa.OpAdd, base, isa.R(base), isa.R(idx)))
		g.free(idx)
		return place{addrReg: base, hasReg: true}

	case *lang.FieldExpr:
		recT := ex.Rec.ExprType()
		base := g.containerAddr(ex.Rec)
		off := g.lay.Mode.FieldOffsetWords(recT, ex.FieldIndex)
		if off != 0 {
			g.addConst(base, off, ex.ExprPos())
		}
		return place{addrReg: base, hasReg: true}
	}
	fail(e.ExprPos(), "not an lvalue: %T", e)
	return place{}
}

// containerAddr materializes the word address of an array or record
// expression into a register.
func (g *mipsGen) containerAddr(e lang.Expr) isa.Reg {
	p := g.lvalue(e)
	switch {
	case p.isByte:
		fail(e.ExprPos(), "array of packed byte arrays is not addressable")
	case p.hasDisp:
		r := g.alloc(e.ExprPos())
		if p.base == regGP && (p.disp < 0 || p.disp > isa.Imm4Max) {
			// A distant global: one long immediate beats gp arithmetic.
			g.emit(isa.LoadImm32(r, g.lay.DataBase+p.disp))
		} else {
			g.addrOfBase(r, p.base, p.disp)
		}
		return r
	}
	return p.addrReg
}

// addrOfBase computes base+off into r.
func (g *mipsGen) addrOfBase(r, base isa.Reg, off int32) {
	if off >= 0 && off <= isa.Imm4Max {
		g.emit(isa.ALU(isa.OpAdd, r, isa.R(base), isa.Imm(off)))
		return
	}
	g.emit(isa.LoadImm32(regScratch, off))
	g.emit(isa.ALU(isa.OpAdd, r, isa.R(base), isa.R(regScratch)))
}

// addConst adds a constant to a register in place.
func (g *mipsGen) addConst(r isa.Reg, c int32, pos lang.Pos) {
	switch {
	case c == 0:
	case c > 0 && c <= isa.Imm4Max:
		g.emit(isa.ALU(isa.OpAdd, r, isa.R(r), isa.Imm(c)))
	case c < 0 && -c <= isa.Imm4Max:
		g.emit(isa.ALU(isa.OpSub, r, isa.R(r), isa.Imm(-c)))
	default:
		g.emit(isa.LoadImm32(regScratch, c))
		g.emit(isa.ALU(isa.OpAdd, r, isa.R(r), isa.R(regScratch)))
	}
}

// Statements.

func (g *mipsGen) stmts(list []lang.Stmt) {
	for _, s := range list {
		g.stmt(s)
	}
}

func (g *mipsGen) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		g.stmts(st.Stmts)

	case *lang.AssignStmt:
		v := g.eval(st.RHS)
		g.storeScalar(st.LHS, v)
		g.free(v)

	case *lang.IfStmt:
		elseL, endL := g.newLabel(), g.newLabel()
		target := endL
		if len(st.Else) > 0 {
			target = elseL
		}
		g.condBranch(st.Cond, target, false)
		g.stmts(st.Then)
		if len(st.Else) > 0 {
			g.emit(isa.Jump(endL))
			g.label(elseL)
			g.stmts(st.Else)
		}
		g.label(endL)
		g.emit(isa.Nop())

	case *lang.WhileStmt:
		top, endL := g.newLabel(), g.newLabel()
		g.label(top)
		g.condBranch(st.Cond, endL, false)
		g.stmts(st.Body)
		g.emit(isa.Jump(top))
		g.label(endL)
		g.emit(isa.Nop())

	case *lang.RepeatStmt:
		top := g.newLabel()
		g.label(top)
		g.stmts(st.Body)
		g.condBranch(st.Cond, top, false)

	case *lang.ForStmt:
		g.genFor(st)

	case *lang.CallStmt:
		if r := g.genCall(st.Call); r != 0 {
			g.free(r)
		}
	}
}

func (g *mipsGen) genFor(st *lang.ForStmt) {
	limitOff, ok := g.frame.LoopTmp[st]
	if !ok {
		fail(st.Pos, "no loop-limit slot")
	}
	from := g.eval(st.From)
	g.storeScalar(st.Var, from)
	g.free(from)
	lim := g.eval(st.To)
	g.emit(isa.StoreDisp(lim, regSP, limitOff))
	g.free(lim)

	top, endL := g.newLabel(), g.newLabel()
	g.label(top)
	// Test: exit when var > limit (or < for downto).
	v := g.loadScalar(st.Var)
	l := g.alloc(st.Pos)
	g.emit(isa.LoadDisp(l, regSP, limitOff))
	exitCmp := isa.CmpGT
	if st.Down {
		exitCmp = isa.CmpLT
	}
	g.emit(isa.Branch(exitCmp, isa.R(v), isa.R(l), endL))
	g.free(v)
	g.free(l)
	g.stmts(st.Body)
	// Step the loop variable.
	v = g.loadScalar(st.Var)
	op := isa.OpAdd
	if st.Down {
		op = isa.OpSub
	}
	g.emit(isa.ALU(op, v, isa.R(v), isa.Imm(1)))
	g.storeScalar(st.Var, v)
	g.free(v)
	g.emit(isa.Jump(top))
	g.label(endL)
	g.emit(isa.Nop())
}

// condBranch branches to target when the condition's truth equals
// want. Pure subexpressions short-circuit (early-out); impure ones are
// fully evaluated so output side effects are preserved.
func (g *mipsGen) condBranch(e lang.Expr, target string, want bool) {
	switch ex := e.(type) {
	case *lang.BoolExpr:
		if ex.Val == want {
			g.emit(isa.Jump(target))
		}
		return

	case *lang.UnExpr:
		if ex.Op == lang.OpNot {
			g.condBranch(ex.E, target, !want)
			return
		}

	case *lang.BinExpr:
		if ex.Op.Relational() {
			cmp := relCmp(ex.Op)
			if !want {
				cmp = cmp.Negate()
			}
			l := g.eval(ex.L)
			r := g.operand(ex.R)
			g.emit(isa.Branch(cmp, isa.R(l), r, target))
			g.free(l)
			g.freeOperand(r)
			return
		}
		if (ex.Op == lang.OpAnd || ex.Op == lang.OpOr) && exprPure(ex.R) {
			isAnd := ex.Op == lang.OpAnd
			if isAnd == want {
				// Branch only if both (and) / either (or) hold: test the
				// first; on failure skip, else test the second.
				skip := g.newLabel()
				g.condBranch(ex.L, skip, !want)
				g.condBranch(ex.R, target, want)
				g.label(skip)
				g.emit(isa.Nop())
			} else {
				// and-false / or-true: either operand decides alone.
				g.condBranch(ex.L, target, want)
				g.condBranch(ex.R, target, want)
			}
			return
		}
	}
	// General case: evaluate to 0/1 and test.
	v := g.eval(e)
	cmp := isa.CmpNE0
	if !want {
		cmp = isa.CmpEQ0
	}
	g.emit(isa.Branch(cmp, isa.R(v), isa.Imm(0), target))
	g.free(v)
}

// genCall compiles builtins, procedure calls, and function calls. For
// functions it returns the temporary holding the result; for procedures
// and builtins it returns 0 (nothing to free).
func (g *mipsGen) genCall(c *lang.CallExpr) isa.Reg {
	switch c.Builtin {
	case lang.BWriteInt, lang.BWriteChar:
		code := uint16(trapPutInt)
		if c.Builtin == lang.BWriteChar {
			code = trapPutChar
		}
		v := g.eval(c.Args[0])
		// The monitor call takes its argument in r1.
		saved := g.shuffleToR1(v, c.ExprPos())
		g.emit(isa.Trap(code))
		g.unshuffleR1(saved)
		return 0
	case lang.BHalt:
		g.emit(isa.Trap(trapHalt))
		return 0
	}

	proc := c.Proc
	frame := g.lay.Frames[proc]

	// Evaluate arguments first (they may contain calls themselves).
	argRegs := make([]isa.Reg, len(c.Args))
	for i, a := range c.Args {
		if proc.Params[i].ByRef {
			argRegs[i] = g.addressOf(a)
		} else {
			argRegs[i] = g.eval(a)
		}
	}

	// Spill every other live temporary across the call.
	spilled := g.spillLive(argRegs)

	g.adjustSP(-frame.Size)
	off := int32(1)
	for i, r := range argRegs {
		g.emit(isa.StoreDisp(r, regSP, off))
		if proc.Params[i].ByRef {
			off++
		} else {
			off += g.lay.Mode.SizeWords(proc.Params[i].Type)
		}
		g.free(r)
	}
	g.emit(isa.Call("p$"+proc.Name, regRA))
	g.adjustSP(frame.Size)

	var result isa.Reg
	if proc.Result != nil {
		result = g.alloc(c.ExprPos())
		if result != regResult {
			g.emit(isa.Mov(result, isa.R(regResult)))
		}
	}
	g.restoreSpilled(spilled)
	return result
}

// addressOf computes the word address of an lvalue for a var parameter.
func (g *mipsGen) addressOf(e lang.Expr) isa.Reg {
	p := g.lvalue(e)
	switch {
	case p.isByte:
		fail(e.ExprPos(), "cannot pass a packed byte element by reference")
	case p.hasDisp:
		r := g.alloc(e.ExprPos())
		g.addrOfBase(r, p.base, p.disp)
		return r
	}
	return p.addrReg
}

// spillLive saves all in-use temporaries except the given ones to the
// frame's spill slots, freeing them for the callee.
func (g *mipsGen) spillLive(except []isa.Reg) map[isa.Reg]int32 {
	keep := map[isa.Reg]bool{}
	for _, r := range except {
		keep[r] = true
	}
	spilled := map[isa.Reg]int32{}
	slot := g.frame.SpillBase
	for r := regTmpLo; r <= regTmpHi; r++ {
		if !g.inUse[r] || keep[r] {
			continue
		}
		if slot >= g.frame.SpillBase+NumSpillSlots {
			fail(lang.Pos{}, "out of spill slots")
		}
		g.emit(isa.StoreDisp(r, regSP, slot))
		spilled[r] = slot
		slot++
		// The register stays reserved in the allocator: its value will
		// be restored after the call, so nothing else may claim it.
	}
	return spilled
}

func (g *mipsGen) restoreSpilled(spilled map[isa.Reg]int32) {
	for r := regTmpLo; r <= regTmpHi; r++ {
		if slot, ok := spilled[r]; ok {
			g.emit(isa.LoadDisp(r, regSP, slot))
		}
	}
}

// shuffleToR1 moves a value into r1 for a monitor call, spilling r1's
// current occupant if needed. It returns the spill slot, or -1.
func (g *mipsGen) shuffleToR1(v isa.Reg, pos lang.Pos) int32 {
	if v == regResult {
		return -1
	}
	saved := int32(-1)
	if g.inUse[regResult] {
		saved = g.frame.SpillBase + NumSpillSlots - 1
		g.emit(isa.StoreDisp(regResult, regSP, saved))
	}
	g.emit(isa.Mov(regResult, isa.R(v)))
	g.free(v)
	return saved
}

func (g *mipsGen) unshuffleR1(saved int32) {
	if saved >= 0 {
		g.emit(isa.LoadDisp(regResult, regSP, saved))
	} else {
		g.free(regResult)
	}
}
