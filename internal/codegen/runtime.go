package codegen

import (
	"mips/internal/isa"
	"mips/internal/lang"
)

// The runtime routines implement multiply, divide, and modulo in
// software: the MIPS hardware offers only the multiply-step primitive
// plus shifts and adds — "For intensive floating point applications, the
// use of a numeric coprocessor ... is envisioned" (paper §2.3.3); plain
// integer multiply likewise lives in a short library loop. Routines take
// arguments in r1/r2, return in r1, clobber r1..r8, and must not call
// anything (the caller's return address register is live only at the
// caller's entry, where it was saved to the frame).

const (
	regArg1 = isa.Reg(1)
	regArg2 = isa.Reg(2)
)

// genRuntimeCall evaluates a binary operation through one of the
// runtime routines.
func (g *mipsGen) genRuntimeCall(name string, ex *lang.BinExpr) isa.Reg {
	l := g.eval(ex.L)
	r := g.eval(ex.R)
	spilled := g.spillLive([]isa.Reg{l, r})

	// Shuffle l into r1 and r into r2.
	mov := func(d, s isa.Reg) {
		if d != s {
			g.emit(isa.Mov(d, isa.R(s)))
		}
	}
	switch {
	case l == regArg1:
		mov(regArg2, r)
	case r == regArg2:
		mov(regArg1, l)
	case l == regArg2 && r == regArg1:
		g.emit(isa.Mov(regScratch, isa.R(regArg2)))
		g.emit(isa.Mov(regArg2, isa.R(regArg1)))
		g.emit(isa.Mov(regArg1, isa.R(regScratch)))
	case l == regArg2:
		mov(regArg1, l)
		mov(regArg2, r)
	case r == regArg1:
		mov(regArg2, r)
		mov(regArg1, l)
	default:
		mov(regArg1, l)
		mov(regArg2, r)
	}
	g.free(l)
	g.free(r)

	g.emit(isa.Call(name, regRA))

	res := g.alloc(ex.ExprPos())
	if res != regArg1 {
		g.emit(isa.Mov(res, isa.R(regArg1)))
	}
	g.restoreSpilled(spilled)
	return res
}

// genRuntime appends the bodies of the runtime routines the program
// actually uses.
func (g *mipsGen) genRuntime() {
	if g.needMul {
		g.genMulRoutine()
	}
	if g.needDiv {
		g.genDivModRoutine("$div", false)
	}
	if g.needMod {
		g.genDivModRoutine("$mod", true)
	}
}

// genMulRoutine: r1 = r1 * r2 via multiply-step — accumulate r1 into r3
// whenever the low bit of r2 is set, shifting each iteration. Two's
// complement makes the result correct for signed operands mod 2^32.
func (g *mipsGen) genMulRoutine() {
	g.label("$mul")
	g.emit(isa.Mov(3, isa.Imm(0)))
	g.label("$mul.loop")
	g.emit(isa.Branch(isa.CmpEQ0, isa.R(2), isa.Imm(0), "$mul.done"))
	g.emit(isa.ALU(isa.OpMStep, 3, isa.R(1), isa.R(2)))
	g.emit(isa.ALU(isa.OpSll, 1, isa.R(1), isa.Imm(1)))
	g.emit(isa.ALU(isa.OpSrl, 2, isa.R(2), isa.Imm(1)))
	g.emit(isa.Jump("$mul.loop"))
	g.label("$mul.done")
	g.emit(isa.Mov(1, isa.R(3)))
	g.emit(isa.JumpInd(regRA))
}

// genDivModRoutine: restoring long division with sign fixups. Pasqual
// follows Pascal/C truncation: the quotient truncates toward zero and
// the remainder takes the dividend's sign. Division by zero yields an
// unspecified result, as on the real machine.
func (g *mipsGen) genDivModRoutine(name string, wantMod bool) {
	lbl := func(s string) string { return name + "." + s }
	g.label(name)
	// r5 = dividend sign, r6 = divisor sign; take absolute values.
	g.emit(isa.SetCond(isa.CmpLT, 5, isa.R(1), isa.Imm(0)))
	g.emit(isa.SetCond(isa.CmpLT, 6, isa.R(2), isa.Imm(0)))
	g.emit(isa.Branch(isa.CmpEQ0, isa.R(5), isa.Imm(0), lbl("p1")))
	g.emit(isa.ALU(isa.OpNeg, 1, isa.R(1), isa.Operand{}))
	g.label(lbl("p1"))
	g.emit(isa.Branch(isa.CmpEQ0, isa.R(6), isa.Imm(0), lbl("p2")))
	g.emit(isa.ALU(isa.OpNeg, 2, isa.R(2), isa.Operand{}))
	g.label(lbl("p2"))
	// Unsigned long division: r3 = quotient, r4 = remainder, r7 = count.
	g.emit(isa.Mov(3, isa.Imm(0)))
	g.emit(isa.Mov(4, isa.Imm(0)))
	g.emit(isa.Mov(7, isa.Imm(32)))
	g.label(lbl("loop"))
	g.emit(isa.ALU(isa.OpSll, 4, isa.R(4), isa.Imm(1)))
	g.emit(isa.SetCond(isa.CmpLT, 8, isa.R(1), isa.Imm(0))) // top bit of r1
	g.emit(isa.ALU(isa.OpOr, 4, isa.R(4), isa.R(8)))
	g.emit(isa.ALU(isa.OpSll, 1, isa.R(1), isa.Imm(1)))
	g.emit(isa.ALU(isa.OpSll, 3, isa.R(3), isa.Imm(1)))
	g.emit(isa.Branch(isa.CmpLTU, isa.R(4), isa.R(2), lbl("skip")))
	g.emit(isa.ALU(isa.OpSub, 4, isa.R(4), isa.R(2)))
	g.emit(isa.ALU(isa.OpOr, 3, isa.R(3), isa.Imm(1)))
	g.label(lbl("skip"))
	g.emit(isa.ALU(isa.OpSub, 7, isa.R(7), isa.Imm(1)))
	g.emit(isa.Branch(isa.CmpNE0, isa.R(7), isa.Imm(0), lbl("loop")))
	if wantMod {
		// Remainder sign follows the dividend.
		g.emit(isa.Branch(isa.CmpEQ0, isa.R(5), isa.Imm(0), lbl("done")))
		g.emit(isa.ALU(isa.OpNeg, 4, isa.R(4), isa.Operand{}))
		g.label(lbl("done"))
		g.emit(isa.Mov(1, isa.R(4)))
	} else {
		// Quotient sign is the xor of the operand signs.
		g.emit(isa.ALU(isa.OpXor, 5, isa.R(5), isa.R(6)))
		g.emit(isa.Branch(isa.CmpEQ0, isa.R(5), isa.Imm(0), lbl("done")))
		g.emit(isa.ALU(isa.OpNeg, 3, isa.R(3), isa.Operand{}))
		g.label(lbl("done"))
		g.emit(isa.Mov(1, isa.R(3)))
	}
	g.emit(isa.JumpInd(regRA))
}
