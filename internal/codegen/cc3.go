package codegen

import (
	"mips/internal/ccarch"
	"mips/internal/lang"
)

// Statements and control flow for the CC backend.

func (g *ccGen) stmts(list []lang.Stmt) {
	for _, s := range list {
		g.stmt(s)
	}
}

func (g *ccGen) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		g.stmts(st.Stmts)

	case *lang.AssignStmt:
		v := g.eval(st.RHS)
		g.storeScalar(st.LHS, v)
		g.free(v)

	case *lang.IfStmt:
		elseL, endL := g.newLabel(), g.newLabel()
		target := endL
		if len(st.Else) > 0 {
			target = elseL
		}
		g.condBranch(st.Cond, target, false)
		g.stmts(st.Then)
		if len(st.Else) > 0 {
			g.emit(ccarch.Jmp(endL))
			g.label(elseL)
			g.stmts(st.Else)
		}
		g.label(endL)

	case *lang.WhileStmt:
		top, endL := g.newLabel(), g.newLabel()
		g.label(top)
		g.condBranch(st.Cond, endL, false)
		g.stmts(st.Body)
		g.emit(ccarch.Jmp(top))
		g.label(endL)

	case *lang.RepeatStmt:
		top := g.newLabel()
		g.label(top)
		g.stmts(st.Body)
		g.condBranch(st.Cond, top, false)

	case *lang.ForStmt:
		g.genFor(st)

	case *lang.CallStmt:
		if r := g.genCall(st.Call); r != 0 {
			g.free(r)
		}
	}
}

func (g *ccGen) genFor(st *lang.ForStmt) {
	limitOff := g.frame.LoopTmp[st]
	from := g.eval(st.From)
	g.storeScalar(st.Var, from)
	g.free(from)
	lim := g.eval(st.To)
	g.emit(ccarch.St(lim, ccSP, limitOff))
	g.free(lim)

	top, endL := g.newLabel(), g.newLabel()
	g.label(top)
	v := g.loadScalar(st.Var)
	l := g.alloc(st.Pos)
	g.emit(ccarch.Ld(l, ccSP, limitOff))
	g.emit(ccarch.Cmp(ccarch.R(v), ccarch.R(l)))
	exitCond := ccarch.CondGT
	if st.Down {
		exitCond = ccarch.CondLT
	}
	g.emit(ccarch.Bcc(exitCond, endL))
	g.free(v)
	g.free(l)
	g.stmts(st.Body)
	v = g.loadScalar(st.Var)
	op := ccarch.OpAdd
	if st.Down {
		op = ccarch.OpSub
	}
	g.emit(ccarch.ALU(op, v, ccarch.R(v), ccarch.Imm(1)))
	g.storeScalar(st.Var, v)
	g.free(v)
	g.emit(ccarch.Jmp(top))
	g.label(endL)
}

// condBranch branches to target when the condition equals want,
// following the boolean strategy for composite conditions.
func (g *ccGen) condBranch(e lang.Expr, target string, want bool) {
	switch ex := e.(type) {
	case *lang.BoolExpr:
		if ex.Val == want {
			g.emit(ccarch.Jmp(target))
		}
		return

	case *lang.UnExpr:
		if ex.Op == lang.OpNot {
			g.condBranch(ex.E, target, !want)
			return
		}

	case *lang.BinExpr:
		if ex.Op.Relational() {
			// A bare comparison always uses compare-and-branch: "the
			// branch instruction will be part of the normal evaluation"
			// (§2.3.2).
			l := g.eval(ex.L)
			r := g.operand(ex.R)
			g.emit(ccarch.Cmp(ccarch.R(l), r))
			g.free(l)
			g.freeOperand(r)
			cond := ccCond(ex.Op)
			if !want {
				cond = cond.Negate()
			}
			g.emit(ccarch.Bcc(cond, target))
			return
		}
		if (ex.Op == lang.OpAnd || ex.Op == lang.OpOr) &&
			g.opt.Strategy == BoolEarlyOut && exprPure(ex.R) {
			isAnd := ex.Op == lang.OpAnd
			if isAnd == want {
				skip := g.newLabel()
				g.condBranch(ex.L, skip, !want)
				g.condBranch(ex.R, target, want)
				g.label(skip)
			} else {
				g.condBranch(ex.L, target, want)
				g.condBranch(ex.R, target, want)
			}
			return
		}
	}
	// General case: evaluate to a value and test it.
	v := g.eval(e)
	g.emit(ccarch.Tst(ccarch.R(v)))
	g.free(v)
	cond := ccarch.CondNE
	if !want {
		cond = ccarch.CondEQ
	}
	g.emit(ccarch.Bcc(cond, target))
}

// genCall compiles builtins and procedure/function calls. Functions
// return their result in r1 (loaded by the callee's epilogue).
func (g *ccGen) genCall(c *lang.CallExpr) ccarch.Reg {
	switch c.Builtin {
	case lang.BWriteInt:
		v := g.eval(c.Args[0])
		g.emit(ccarch.Instr{Op: ccarch.OpPutInt, Src1: ccarch.R(v)})
		g.free(v)
		return 0
	case lang.BWriteChar:
		v := g.eval(c.Args[0])
		g.emit(ccarch.Instr{Op: ccarch.OpPutCh, Src1: ccarch.R(v)})
		g.free(v)
		return 0
	case lang.BHalt:
		g.emit(ccarch.Halt())
		return 0
	}

	proc := c.Proc
	frame := g.lay.Frames[proc]
	argRegs := make([]ccarch.Reg, len(c.Args))
	for i, a := range c.Args {
		if proc.Params[i].ByRef {
			argRegs[i] = g.ccAddressOf(a)
		} else {
			argRegs[i] = g.eval(a)
		}
	}
	spilled := g.ccSpillLive(argRegs)
	g.adjustSP(-frame.Size)
	off := int32(1)
	for i, r := range argRegs {
		g.emit(ccarch.St(r, ccSP, off))
		if proc.Params[i].ByRef {
			off++
		} else {
			off += g.lay.Mode.SizeWords(proc.Params[i].Type)
		}
		g.free(r)
	}
	g.emit(ccarch.Call("p$" + proc.Name))
	g.adjustSP(frame.Size)

	var result ccarch.Reg
	if proc.Result != nil {
		result = g.alloc(c.ExprPos())
		if result != ccTmpLo {
			g.emit(ccarch.Mov(result, ccarch.R(ccTmpLo)))
		}
	}
	g.ccRestore(spilled)
	return result
}

func (g *ccGen) ccAddressOf(e lang.Expr) ccarch.Reg {
	p := g.lvalue(e)
	var r ccarch.Reg
	if p.ownReg {
		r = p.base
		if p.disp != 0 {
			g.emit(ccarch.ALU(ccarch.OpAdd, r, ccarch.R(r), ccarch.Imm(p.disp)))
		}
		return r
	}
	r = g.alloc(e.ExprPos())
	g.emit(ccarch.ALU(ccarch.OpAdd, r, ccarch.R(p.base), ccarch.Imm(p.disp)))
	return r
}

func (g *ccGen) ccSpillLive(except []ccarch.Reg) map[ccarch.Reg]int32 {
	keep := map[ccarch.Reg]bool{}
	for _, r := range except {
		keep[r] = true
	}
	spilled := map[ccarch.Reg]int32{}
	slot := g.frame.SpillBase
	for r := ccTmpLo; r <= ccTmpHi; r++ {
		if !g.inUse[r] || keep[r] {
			continue
		}
		if slot >= g.frame.SpillBase+NumSpillSlots {
			fail(lang.Pos{}, "out of spill slots")
		}
		g.emit(ccarch.St(r, ccSP, slot))
		spilled[r] = slot
		slot++
	}
	return spilled
}

func (g *ccGen) ccRestore(spilled map[ccarch.Reg]int32) {
	for r := ccTmpLo; r <= ccTmpHi; r++ {
		if slot, ok := spilled[r]; ok {
			g.emit(ccarch.Ld(r, ccSP, slot))
		}
	}
}
