// Package ccarch models the condition-code architectures the paper
// compares MIPS against (§2.3): a three-operand register machine whose
// conditional control flow runs through N/Z/V/C condition codes set as a
// side effect of instruction execution. A Policy selects which
// instructions set the codes and whether a conditional-set instruction
// exists, reproducing the taxonomy of Table 2:
//
//	M68000: set on operations, conditional set available
//	VAX:    set on operations and moves
//	360:    set on operations only
//	PDP-10/MIPS: no condition codes (compare-and-branch), for reference
//
// The machine is deliberately simple — the paper's comparisons are about
// instruction counts and the Table 6 cost weights (register op 1,
// compare 2, branch 4), not microarchitecture.
package ccarch

import "fmt"

// Policy describes a condition-code regime.
type Policy struct {
	// Name identifies the machine family.
	Name string
	// SetOnOps: ALU operations set the condition codes.
	SetOnOps bool
	// SetOnMoves: moves and loads also set the condition codes (VAX).
	SetOnMoves bool
	// CondSet: a conditional-set instruction (M68000 scc) exists.
	CondSet bool
	// HasCC is false for machines with no condition codes at all; they
	// use compare-and-branch and set-conditionally instead.
	HasCC bool
}

// The paper's Table 2 policies.
var (
	PolicyM68000 = Policy{Name: "M68000", HasCC: true, SetOnOps: true, CondSet: true}
	PolicyVAX    = Policy{Name: "VAX", HasCC: true, SetOnOps: true, SetOnMoves: true}
	Policy360    = Policy{Name: "360", HasCC: true, SetOnOps: true}
	PolicyNoCC   = Policy{Name: "MIPS", HasCC: false}
)

// Policies lists the Table 2 rows.
func Policies() []Policy {
	return []Policy{PolicyM68000, PolicyVAX, Policy360, PolicyNoCC}
}

// Cond is a branch/set condition decoded from the N/Z/V/C flags.
type Cond uint8

const (
	CondAlways Cond = iota
	CondEQ          // Z
	CondNE          // !Z
	CondLT          // N xor V
	CondLE          // Z or (N xor V)
	CondGT          // !(Z or (N xor V))
	CondGE          // !(N xor V)
	CondLTU         // C
	CondLEU         // C or Z
	CondGTU         // !(C or Z)
	CondGEU         // !C

	numConds
)

var condNames = [numConds]string{
	"ra", "eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu",
}

func (c Cond) String() string {
	if c < numConds {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	case CondLTU:
		return CondGEU
	case CondLEU:
		return CondGTU
	case CondGTU:
		return CondLEU
	case CondGEU:
		return CondLTU
	}
	return c
}

// Flags is the condition-code register.
type Flags struct {
	N, Z, V, C bool
}

// fromResult sets N and Z from a result, clearing V and C (the move /
// logical-operation rule).
func fromResult(v uint32) Flags {
	return Flags{N: int32(v) < 0, Z: v == 0}
}

// fromSub sets all four flags from a-b, the compare rule.
func fromSub(a, b uint32) Flags {
	d := a - b
	return Flags{
		N: int32(d) < 0,
		Z: d == 0,
		V: (a^b)&(a^d)&(1<<31) != 0,
		C: a < b, // borrow
	}
}

// fromAdd sets all four flags from a+b.
func fromAdd(a, b uint32) Flags {
	s := a + b
	return Flags{
		N: int32(s) < 0,
		Z: s == 0,
		V: (a^s)&(b^s)&(1<<31) != 0,
		C: s < a,
	}
}

// Holds reports whether the condition is satisfied by the flags.
func (f Flags) Holds(c Cond) bool {
	switch c {
	case CondAlways:
		return true
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondLT:
		return f.N != f.V
	case CondLE:
		return f.Z || f.N != f.V
	case CondGT:
		return !(f.Z || f.N != f.V)
	case CondGE:
		return f.N == f.V
	case CondLTU:
		return f.C
	case CondLEU:
		return f.C || f.Z
	case CondGTU:
		return !(f.C || f.Z)
	case CondGEU:
		return !f.C
	}
	return false
}
