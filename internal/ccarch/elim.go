package ccarch

// CmpSavings reports what a condition-code policy saves over explicit
// compares, the quantities of the paper's Table 3. The paper's finding:
// the savings are tiny — about 1.1% of compares when only operations set
// the codes, 2.1% when moves set them too.
type CmpSavings struct {
	// TotalCompares counts compare/test instructions before elimination.
	TotalCompares int
	// SavedByOps counts compares made redundant by an ALU operation that
	// already set the codes.
	SavedByOps int
	// SavedByMoves counts compares made redundant by a move or load
	// (possible only under a set-on-moves policy such as the VAX's).
	SavedByMoves int
	// MovesSettingCC counts moves whose condition-code side effect was
	// actually consumed — the paper's "moves used only to set condition
	// code" row.
	MovesSettingCC int
}

// Saved returns the total eliminated compares.
func (s CmpSavings) Saved() int { return s.SavedByOps + s.SavedByMoves }

// EliminateCompares removes compare instructions whose condition codes
// are already set by the immediately preceding instruction under the
// policy. Input programs use explicit compares everywhere (the no-CC
// style); the result is what a CC-aware code generator would emit.
//
// A compare is eliminable when:
//   - it tests a register against zero (or is a tst), and
//   - the previous instruction defines exactly that register and sets
//     the condition codes under the policy, and
//   - no label lands on the compare (the CC state would depend on the
//     path taken).
//
// The usual caveat applies (and is why CC machines frighten compiler
// writers, §2.3): signed orderings after an overflowing operation differ
// from an explicit compare against zero. Like production compilers of
// the era, elimination assumes well-defined arithmetic.
func EliminateCompares(p *Program, policy Policy) (*Program, CmpSavings) {
	var sav CmpSavings

	labelled := make(map[int]bool, len(p.Labels))
	for _, idx := range p.Labels {
		labelled[idx] = true
	}

	n := len(p.Instrs)
	drop := make([]bool, n)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op != OpCmp && in.Op != OpTst {
			continue
		}
		sav.TotalCompares++
		if !policy.HasCC {
			continue
		}
		// Must compare a register against zero.
		if in.Src1.IsImm {
			continue
		}
		if in.Op == OpCmp && !(in.Src2.IsImm && in.Src2.Imm == 0) {
			continue
		}
		if labelled[i] || i == 0 {
			continue
		}
		// Walk back over instructions that neither set the codes nor
		// disturb the compared register, to the instruction whose codes
		// would be live at the compare.
		setter := -1
		for j := i - 1; j >= 0; j-- {
			prev := &p.Instrs[j]
			if drop[j] || prev.Class() == ClassBranch {
				break
			}
			if prev.SetsCC(policy) {
				setter = j
				break
			}
			// A CC-neutral write to the compared register kills the chain.
			if d, ok := defOf(prev); ok && d == in.Src1.Reg {
				break
			}
			if labelled[j] {
				// Control may join here with unknown codes.
				break
			}
		}
		if setter < 0 {
			continue
		}
		prev := &p.Instrs[setter]
		d, ok := defOf(prev)
		if !ok || d != in.Src1.Reg {
			continue
		}
		drop[i] = true
		switch prev.Op {
		case OpMov, OpLd, OpScc:
			sav.SavedByMoves++
			sav.MovesSettingCC++
		default:
			sav.SavedByOps++
		}
	}

	// Rebuild without the dropped compares, remapping labels.
	out := &Program{Labels: make(map[string]int, len(p.Labels))}
	remap := make([]int, n+1)
	for i := 0; i < n; i++ {
		remap[i] = len(out.Instrs)
		if !drop[i] {
			out.Instrs = append(out.Instrs, p.Instrs[i])
		}
	}
	remap[n] = len(out.Instrs)
	for name, idx := range p.Labels {
		out.Labels[name] = remap[idx]
	}
	for i := range out.Instrs {
		in := &out.Instrs[i]
		switch in.Op {
		case OpBcc, OpJmp, OpCall:
			if in.Label == "" {
				in.Target = remap[in.Target]
			}
		}
	}
	if err := out.Link(); err != nil {
		// Labels were only remapped, never removed; relinking cannot fail.
		panic("ccarch: relink after elimination: " + err.Error())
	}
	return out, sav
}

// defOf returns the register an instruction defines.
func defOf(in *Instr) (Reg, bool) {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv, OpMod, OpMov, OpScc, OpLd:
		return in.Dst, true
	}
	return 0, false
}
