package ccarch

import (
	"errors"
	"fmt"
	"strings"
)

// ErrHalted is returned once the machine executes halt.
var ErrHalted = errors.New("ccarch: halted")

// Stats accumulates dynamic instruction counts by accounting class, the
// quantities Tables 5 and 6 weigh.
type Stats struct {
	Instructions uint64
	RegOps       uint64
	Compares     uint64
	Branches     uint64 // executed control-flow instructions
	TakenBranch  uint64
	MemRefs      uint64
}

// Weights are the Table 6 cost weights: "register operations take time
// 1, compares take time 2, and branches take time 4". Memory references
// carry the Table 9 memory cost.
type Weights struct {
	RegOp, Compare, Branch, Mem float64
}

// PaperWeights returns the Table 6 weighting.
func PaperWeights() Weights { return Weights{RegOp: 1, Compare: 2, Branch: 4, Mem: 4} }

// Cost applies the weights to the dynamic counts.
func (s Stats) Cost(w Weights) float64 {
	return float64(s.RegOps)*w.RegOp + float64(s.Compares)*w.Compare +
		float64(s.Branches)*w.Branch + float64(s.MemRefs)*w.Mem
}

// StaticCost applies the weights to a program's static instructions.
func StaticCost(p *Program, w Weights) float64 {
	var total float64
	for i := range p.Instrs {
		switch p.Instrs[i].Class() {
		case ClassRegOp:
			total += w.RegOp
		case ClassCompare:
			total += w.Compare
		case ClassBranch:
			total += w.Branch
		case ClassMem:
			total += w.Mem
		}
	}
	return total
}

// Machine executes programs under a policy.
type Machine struct {
	Policy Policy
	Regs   [NumRegs]uint32
	Flags  Flags
	Mem    []uint32
	Stats  Stats
	// Out collects console output from the put instructions.
	Out strings.Builder

	pc     int
	link   []int // call stack
	halted bool
}

// NewMachine returns a machine with the given memory size in words.
func NewMachine(p Policy, memWords int) *Machine {
	return &Machine{Policy: p, Mem: make([]uint32, memWords)}
}

func (m *Machine) operand(o Operand) uint32 {
	if o.IsImm {
		return uint32(o.Imm)
	}
	return m.Regs[o.Reg]
}

// Run executes the program from instruction 0 until halt or the step
// limit.
func (m *Machine) Run(p *Program, maxSteps uint64) error {
	m.pc = 0
	m.halted = false
	for steps := uint64(0); ; steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("ccarch: step limit exceeded at pc=%d", m.pc)
		}
		if err := m.Step(p); err != nil {
			if errors.Is(err, ErrHalted) {
				return nil
			}
			return err
		}
	}
}

// Step executes one instruction.
func (m *Machine) Step(p *Program) error {
	if m.halted {
		return ErrHalted
	}
	if m.pc < 0 || m.pc >= len(p.Instrs) {
		return fmt.Errorf("ccarch: pc %d out of range", m.pc)
	}
	in := &p.Instrs[m.pc]
	m.pc++
	m.Stats.Instructions++

	setFlags := func(f Flags) {
		if in.SetsCC(m.Policy) {
			m.Flags = f
		}
	}

	switch in.Op {
	case OpNop:
	case OpAdd:
		a, b := m.operand(in.Src1), m.operand(in.Src2)
		m.Regs[in.Dst] = a + b
		m.Stats.RegOps++
		setFlags(fromAdd(a, b))
	case OpSub:
		a, b := m.operand(in.Src1), m.operand(in.Src2)
		m.Regs[in.Dst] = a - b
		m.Stats.RegOps++
		setFlags(fromSub(a, b))
	case OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv, OpMod:
		a, b := m.operand(in.Src1), m.operand(in.Src2)
		var v uint32
		switch in.Op {
		case OpAnd:
			v = a & b
		case OpOr:
			v = a | b
		case OpXor:
			v = a ^ b
		case OpShl:
			v = a << (b & 31)
		case OpShr:
			v = a >> (b & 31)
		case OpMul:
			v = uint32(int32(a) * int32(b))
		case OpDiv:
			if b == 0 {
				return fmt.Errorf("ccarch: division by zero at pc=%d", m.pc-1)
			}
			v = uint32(int32(a) / int32(b))
		case OpMod:
			if b == 0 {
				return fmt.Errorf("ccarch: modulo by zero at pc=%d", m.pc-1)
			}
			v = uint32(int32(a) % int32(b))
		}
		m.Regs[in.Dst] = v
		m.Stats.RegOps++
		setFlags(fromResult(v))
	case OpMov:
		v := m.operand(in.Src1)
		m.Regs[in.Dst] = v
		m.Stats.RegOps++
		setFlags(fromResult(v))
	case OpScc:
		if !m.Policy.CondSet {
			return fmt.Errorf("ccarch: %s has no conditional set", m.Policy.Name)
		}
		var v uint32
		if m.Flags.Holds(in.Cond) {
			v = 1
		}
		m.Regs[in.Dst] = v
		m.Stats.RegOps++
		// scc itself is a move for CC purposes.
		setFlags(fromResult(v))
	case OpLd:
		addr := m.Regs[in.Base] + uint32(in.Disp)
		if addr >= uint32(len(m.Mem)) {
			return fmt.Errorf("ccarch: load out of range at %#x", addr)
		}
		v := m.Mem[addr]
		m.Regs[in.Dst] = v
		m.Stats.MemRefs++
		setFlags(fromResult(v))
	case OpSt:
		addr := m.Regs[in.Base] + uint32(in.Disp)
		if addr >= uint32(len(m.Mem)) {
			return fmt.Errorf("ccarch: store out of range at %#x", addr)
		}
		m.Mem[addr] = m.operand(in.Src1)
		m.Stats.MemRefs++
	case OpCmp:
		if !m.Policy.HasCC {
			return fmt.Errorf("ccarch: %s has no condition codes", m.Policy.Name)
		}
		m.Flags = fromSub(m.operand(in.Src1), m.operand(in.Src2))
		m.Stats.Compares++
	case OpTst:
		if !m.Policy.HasCC {
			return fmt.Errorf("ccarch: %s has no condition codes", m.Policy.Name)
		}
		m.Flags = fromResult(m.operand(in.Src1))
		m.Stats.Compares++
	case OpBcc:
		m.Stats.Branches++
		if m.Flags.Holds(in.Cond) {
			m.Stats.TakenBranch++
			m.pc = in.Target
		}
	case OpJmp:
		m.Stats.Branches++
		m.Stats.TakenBranch++
		m.pc = in.Target
	case OpCall:
		m.Stats.Branches++
		m.Stats.TakenBranch++
		m.link = append(m.link, m.pc)
		m.pc = in.Target
	case OpRet:
		m.Stats.Branches++
		m.Stats.TakenBranch++
		if len(m.link) == 0 {
			return fmt.Errorf("ccarch: return with empty call stack")
		}
		m.pc = m.link[len(m.link)-1]
		m.link = m.link[:len(m.link)-1]
	case OpPutInt:
		fmt.Fprintf(&m.Out, "%d\n", int32(m.operand(in.Src1)))
	case OpPutCh:
		m.Out.WriteByte(byte(m.operand(in.Src1)))
	case OpHalt:
		m.halted = true
		return ErrHalted
	default:
		return fmt.Errorf("ccarch: unknown op %d", in.Op)
	}
	return nil
}
