package ccarch

import "fmt"

// NumRegs is the number of general registers, matched to the MIPS model
// so compiled code is comparable.
const NumRegs = 16

// Reg names a general register.
type Reg uint8

func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// Op enumerates the instruction classes.
type Op uint8

const (
	OpNop Op = iota
	// Register operations (Table 6 weight 1).
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMul // native multiply/divide, as on the VAX
	OpDiv
	OpMod
	OpMov // register or immediate move; sets CC only under SetOnMoves
	OpScc // conditional set: dst = cond(flags) ? 1 : 0 (needs Policy.CondSet)
	// Memory references.
	OpLd // dst = mem[base+disp] (counts as a move for CC purposes)
	OpSt // mem[base+disp] = src
	// Compares (Table 6 weight 2).
	OpCmp // flags = src1 - src2
	OpTst // flags from src1
	// Control flow (Table 6 weight 4).
	OpBcc  // branch on condition
	OpJmp  // unconditional jump
	OpCall // subroutine call (pushes return onto link register r15)
	OpRet
	OpHalt
	// Console output (host devices; not counted in any cost class).
	OpPutInt
	OpPutCh

	numOps
)

var opNames = [numOps]string{
	"nop", "add", "sub", "and", "or", "xor", "shl", "shr",
	"mul", "div", "mod", "mov", "s",
	"ld", "st", "cmp", "tst", "b", "jmp", "call", "ret", "halt",
	"putint", "putch",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Class is the Table 5/6 accounting class of an instruction.
type Class uint8

const (
	ClassRegOp Class = iota
	ClassCompare
	ClassBranch
	ClassMem
	ClassNone
)

// Operand is a register or immediate source.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   int32
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// Imm makes an immediate operand.
func Imm(v int32) Operand { return Operand{IsImm: true, Imm: v} }

func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("#%d", o.Imm)
	}
	return o.Reg.String()
}

// Instr is one instruction.
type Instr struct {
	Op   Op
	Cond Cond // for Bcc and Scc
	Dst  Reg
	Src1 Operand
	Src2 Operand
	Base Reg   // for Ld/St
	Disp int32 // for Ld/St
	// Label is the symbolic target before linking; Target the resolved
	// instruction index.
	Label  string
	Target int
}

// Class returns the accounting class.
func (in *Instr) Class() Class {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv, OpMod, OpMov, OpScc:
		return ClassRegOp
	case OpCmp, OpTst:
		return ClassCompare
	case OpBcc, OpJmp, OpCall, OpRet:
		return ClassBranch
	case OpLd, OpSt:
		return ClassMem
	}
	return ClassNone
}

// SetsCC reports whether the instruction updates the condition codes
// under the policy — the irregularity that makes CC machines painful to
// pipeline (§2.3).
func (in *Instr) SetsCC(p Policy) bool {
	if !p.HasCC {
		return false
	}
	switch in.Op {
	case OpCmp, OpTst:
		return true
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpMul, OpDiv, OpMod:
		return p.SetOnOps
	case OpMov, OpLd, OpScc:
		return p.SetOnMoves
	}
	return false
}

// ReadsCC reports whether the instruction consumes the condition codes.
func (in *Instr) ReadsCC() bool { return in.Op == OpBcc || in.Op == OpScc }

func (in *Instr) String() string {
	switch in.Op {
	case OpNop, OpRet, OpHalt:
		return in.Op.String()
	case OpBcc:
		return fmt.Sprintf("b%s %s", in.Cond, in.target())
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %s", in.Op, in.target())
	case OpScc:
		return fmt.Sprintf("s%s %s", in.Cond, in.Dst)
	case OpCmp:
		return fmt.Sprintf("cmp %s, %s", in.Src1, in.Src2)
	case OpTst:
		return fmt.Sprintf("tst %s", in.Src1)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", in.Src1, in.Dst)
	case OpLd:
		return fmt.Sprintf("ld %d(%s), %s", in.Disp, in.Base, in.Dst)
	case OpSt:
		return fmt.Sprintf("st %s, %d(%s)", in.Src1, in.Disp, in.Base)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Src1, in.Src2, in.Dst)
	}
}

func (in *Instr) target() string {
	if in.Label != "" {
		return in.Label
	}
	return fmt.Sprintf("@%d", in.Target)
}

// Convenience constructors.

func Nop() Instr                     { return Instr{Op: OpNop} }
func Mov(dst Reg, src Operand) Instr { return Instr{Op: OpMov, Dst: dst, Src1: src} }
func ALU(op Op, dst Reg, a, b Operand) Instr {
	return Instr{Op: op, Dst: dst, Src1: a, Src2: b}
}
func Cmp(a, b Operand) Instr         { return Instr{Op: OpCmp, Src1: a, Src2: b} }
func Tst(a Operand) Instr            { return Instr{Op: OpTst, Src1: a} }
func Bcc(c Cond, label string) Instr { return Instr{Op: OpBcc, Cond: c, Label: label} }
func Jmp(label string) Instr         { return Instr{Op: OpJmp, Label: label} }
func Scc(c Cond, dst Reg) Instr      { return Instr{Op: OpScc, Cond: c, Dst: dst} }
func Ld(dst, base Reg, disp int32) Instr {
	return Instr{Op: OpLd, Dst: dst, Base: base, Disp: disp}
}
func St(src, base Reg, disp int32) Instr {
	return Instr{Op: OpSt, Src1: R(src), Base: base, Disp: disp}
}
func Call(label string) Instr { return Instr{Op: OpCall, Label: label} }
func Ret() Instr              { return Instr{Op: OpRet} }
func Halt() Instr             { return Instr{Op: OpHalt} }

// Program is an instruction sequence with labels.
type Program struct {
	Instrs []Instr
	Labels map[string]int // label -> instruction index
}

// Link resolves labels to instruction indices.
func (p *Program) Link() error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case OpBcc, OpJmp, OpCall:
			if in.Label == "" {
				continue
			}
			t, ok := p.Labels[in.Label]
			if !ok {
				return fmt.Errorf("undefined label %q", in.Label)
			}
			in.Target = t
		}
	}
	return nil
}

// Builder assembles a Program incrementally.
type Builder struct {
	prog Program
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{prog: Program{Labels: make(map[string]int)}}
}

// Label binds a label to the next instruction.
func (b *Builder) Label(name string) { b.prog.Labels[name] = len(b.prog.Instrs) }

// Emit appends instructions.
func (b *Builder) Emit(ins ...Instr) { b.prog.Instrs = append(b.prog.Instrs, ins...) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.prog.Instrs) }

// Program links and returns the built program.
func (b *Builder) Program() (*Program, error) {
	p := b.prog
	if err := p.Link(); err != nil {
		return nil, err
	}
	return &p, nil
}
