package ccarch

import (
	"testing"
	"testing/quick"
)

func TestFlagsMatchDirectComparisons(t *testing.T) {
	// After cmp a,b the flag conditions must agree with the direct
	// comparisons — the whole point of the N/Z/V/C encoding.
	f := func(a, b uint32) bool {
		fl := fromSub(a, b)
		sa, sb := int32(a), int32(b)
		return fl.Holds(CondEQ) == (a == b) &&
			fl.Holds(CondNE) == (a != b) &&
			fl.Holds(CondLT) == (sa < sb) &&
			fl.Holds(CondLE) == (sa <= sb) &&
			fl.Holds(CondGT) == (sa > sb) &&
			fl.Holds(CondGE) == (sa >= sb) &&
			fl.Holds(CondLTU) == (a < b) &&
			fl.Holds(CondLEU) == (a <= b) &&
			fl.Holds(CondGTU) == (a > b) &&
			fl.Holds(CondGEU) == (a >= b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCondNegateProperty(t *testing.T) {
	f := func(a, b uint32, c8 uint8) bool {
		c := Cond(c8%uint8(numConds-1)) + 1 // skip CondAlways
		fl := fromSub(a, b)
		return fl.Holds(c.Negate()) == !fl.Holds(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetsCCByPolicy(t *testing.T) {
	add := ALU(OpAdd, 1, R(2), R(3))
	mov := Mov(1, Imm(5))
	ld := Ld(1, 2, 0)
	cmp := Cmp(R(1), Imm(0))

	cases := []struct {
		p                Policy
		add, mov, ld, cc bool
	}{
		{PolicyM68000, true, false, false, true},
		{PolicyVAX, true, true, true, true},
		{Policy360, true, false, false, true},
		{PolicyNoCC, false, false, false, false},
	}
	for _, tc := range cases {
		if add.SetsCC(tc.p) != tc.add {
			t.Errorf("%s: add sets CC = %t", tc.p.Name, add.SetsCC(tc.p))
		}
		if mov.SetsCC(tc.p) != tc.mov {
			t.Errorf("%s: mov sets CC = %t", tc.p.Name, mov.SetsCC(tc.p))
		}
		if ld.SetsCC(tc.p) != tc.ld {
			t.Errorf("%s: ld sets CC = %t", tc.p.Name, ld.SetsCC(tc.p))
		}
		if cmp.SetsCC(tc.p) != tc.cc {
			t.Errorf("%s: cmp sets CC = %t", tc.p.Name, cmp.SetsCC(tc.p))
		}
	}
}

// figure1Full is the paper's Figure 1 full-evaluation sequence for
// Found := (Rec = Key) OR (I = 13), with memory laid out as:
// mem[0]=Rec, mem[1]=Key, mem[2]=I, mem[3]=Found; r0 holds 0.
func figure1Full() *Builder {
	b := NewBuilder()
	b.Emit(
		Ld(1, 0, 0),     // Rec
		Ld(2, 0, 1),     // Key
		Ld(3, 0, 2),     // I
		Mov(4, Imm(0)),  // str 0, r4
		Cmp(R(1), R(2)), // comp Rec, Key
		Bcc(CondNE, "L"),
		Mov(4, Imm(1)),
	)
	b.Label("L")
	b.Emit(
		Cmp(R(3), Imm(13)),
		Bcc(CondNE, "D"),
		Mov(4, Imm(1)),
	)
	b.Label("D")
	b.Emit(St(4, 0, 3), Halt())
	return b
}

func TestFigure1FullEvaluationSemantics(t *testing.T) {
	cases := []struct {
		rec, key, i uint32
		want        uint32
	}{
		{5, 5, 0, 1},
		{5, 6, 13, 1},
		{5, 6, 12, 0},
		{5, 5, 13, 1},
	}
	for _, tc := range cases {
		p, err := figure1Full().Program()
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(PolicyVAX, 16)
		m.Mem[0], m.Mem[1], m.Mem[2] = tc.rec, tc.key, tc.i
		if err := m.Run(p, 1000); err != nil {
			t.Fatal(err)
		}
		if m.Mem[3] != tc.want {
			t.Errorf("(%d,%d,%d): Found = %d, want %d", tc.rec, tc.key, tc.i, m.Mem[3], tc.want)
		}
	}
}

func TestFigure2ConditionalSet(t *testing.T) {
	// Figure 2: comp Rec,Key; seq r4; comp I,13; seq r5; or r4,r5 —
	// branch-free under the M68000 policy.
	b := NewBuilder()
	b.Emit(
		Ld(1, 0, 0),
		Ld(2, 0, 1),
		Ld(3, 0, 2),
		Cmp(R(1), R(2)),
		Scc(CondEQ, 4),
		Cmp(R(3), Imm(13)),
		Scc(CondEQ, 5),
		ALU(OpOr, 4, R(4), R(5)),
		St(4, 0, 3),
		Halt(),
	)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(PolicyM68000, 16)
	m.Mem[0], m.Mem[1], m.Mem[2] = 7, 8, 13
	if err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if m.Mem[3] != 1 {
		t.Errorf("Found = %d", m.Mem[3])
	}
	if m.Stats.Branches != 0 {
		t.Errorf("branches = %d, want 0", m.Stats.Branches)
	}
}

func TestSccRequiresPolicy(t *testing.T) {
	b := NewBuilder()
	b.Emit(Cmp(R(1), Imm(0)), Scc(CondEQ, 2), Halt())
	p, _ := b.Program()
	m := NewMachine(PolicyVAX, 4) // VAX row has no conditional set
	if err := m.Run(p, 100); err == nil {
		t.Error("scc on a machine without conditional set should fail")
	}
}

func TestCmpRequiresCC(t *testing.T) {
	b := NewBuilder()
	b.Emit(Cmp(R(1), R(2)), Halt())
	p, _ := b.Program()
	m := NewMachine(PolicyNoCC, 4)
	if err := m.Run(p, 100); err == nil {
		t.Error("cmp on a no-CC machine should fail")
	}
}

func TestDynamicCostWeights(t *testing.T) {
	b := NewBuilder()
	b.Emit(
		Mov(1, Imm(3)),     // 1
		Cmp(R(1), Imm(0)),  // 2
		Bcc(CondEQ, "end"), // 4 (not taken)
	)
	b.Label("end")
	b.Emit(Halt())
	p, _ := b.Program()
	m := NewMachine(PolicyVAX, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Cost(PaperWeights()); got != 7 {
		t.Errorf("cost = %v, want 7", got)
	}
}

func TestStaticCost(t *testing.T) {
	p, _ := figure1Full().Program()
	got := StaticCost(p, PaperWeights())
	// 3 ld (12) + 3 mov (3) + 2 cmp (4) + 2 bcc (8) + 1 st (4) = 31.
	if got != 31 {
		t.Errorf("static cost = %v, want 31", got)
	}
}

func TestEliminateComparesOpsPolicy(t *testing.T) {
	// sub r1,r2 -> r3; cmp r3,#0; beq  — the compare is redundant when
	// operations set the codes.
	b := NewBuilder()
	b.Emit(
		ALU(OpSub, 3, R(1), R(2)),
		Cmp(R(3), Imm(0)),
		Bcc(CondEQ, "end"),
		Mov(4, Imm(1)),
	)
	b.Label("end")
	b.Emit(Halt())
	p, _ := b.Program()

	out, sav := EliminateCompares(p, Policy360)
	if sav.TotalCompares != 1 || sav.SavedByOps != 1 || sav.SavedByMoves != 0 {
		t.Errorf("savings = %+v", sav)
	}
	if len(out.Instrs) != len(p.Instrs)-1 {
		t.Errorf("instrs = %d", len(out.Instrs))
	}
	// Semantics preserved: run both on both branch outcomes.
	for _, r1 := range []uint32{5, 9} {
		run := func(prog *Program, pol Policy) uint32 {
			m := NewMachine(pol, 4)
			m.Regs[1], m.Regs[2] = r1, 5
			if err := m.Run(prog, 100); err != nil {
				t.Fatal(err)
			}
			return m.Regs[4]
		}
		if run(p, Policy360) != run(out, Policy360) {
			t.Errorf("elimination changed semantics for r1=%d", r1)
		}
	}
}

func TestEliminateComparesMovesPolicy(t *testing.T) {
	// ld r1; tst r1; beq — redundant only under set-on-moves (VAX).
	b := NewBuilder()
	b.Emit(
		Ld(1, 0, 0),
		Tst(R(1)),
		Bcc(CondEQ, "end"),
		Mov(2, Imm(1)),
	)
	b.Label("end")
	b.Emit(Halt())
	p, _ := b.Program()

	_, sav360 := EliminateCompares(p, Policy360)
	if sav360.Saved() != 0 {
		t.Errorf("360 saved %d; loads do not set its codes", sav360.Saved())
	}
	out, savVAX := EliminateCompares(p, PolicyVAX)
	if savVAX.SavedByMoves != 1 || savVAX.MovesSettingCC != 1 {
		t.Errorf("VAX savings = %+v", savVAX)
	}
	m := NewMachine(PolicyVAX, 4)
	m.Mem[0] = 0
	if err := m.Run(out, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != 0 {
		t.Error("eliminated tst changed the branch outcome")
	}
}

func TestEliminationBlockedByLabel(t *testing.T) {
	// A label on the compare means the codes may arrive from another
	// path; the compare must stay.
	b := NewBuilder()
	b.Emit(ALU(OpSub, 3, R(1), R(2)))
	b.Label("join")
	b.Emit(
		Cmp(R(3), Imm(0)),
		Bcc(CondEQ, "join"),
		Halt(),
	)
	p, _ := b.Program()
	_, sav := EliminateCompares(p, Policy360)
	if sav.Saved() != 0 {
		t.Errorf("compare under a label eliminated: %+v", sav)
	}
}

func TestEliminationRemapsTargets(t *testing.T) {
	// A forward branch over an eliminated compare must still land on
	// the right instruction.
	b := NewBuilder()
	b.Emit(
		Jmp("over"),
		ALU(OpAdd, 3, R(1), R(2)),
		Cmp(R(3), Imm(0)), // eliminated
	)
	b.Label("over")
	b.Emit(Mov(5, Imm(9)), Halt())
	p, _ := b.Program()
	out, _ := EliminateCompares(p, Policy360)
	m := NewMachine(Policy360, 4)
	if err := m.Run(out, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[5] != 9 {
		t.Error("branch target mis-remapped after elimination")
	}
}

func TestPoliciesTable2(t *testing.T) {
	ps := Policies()
	if len(ps) != 4 {
		t.Fatalf("policies = %d", len(ps))
	}
	byName := map[string]Policy{}
	for _, p := range ps {
		byName[p.Name] = p
	}
	if !byName["M68000"].CondSet || byName["VAX"].CondSet {
		t.Error("conditional-set column wrong")
	}
	if !byName["VAX"].SetOnMoves || byName["360"].SetOnMoves {
		t.Error("set-on-moves column wrong")
	}
	if byName["MIPS"].HasCC {
		t.Error("MIPS row must have no condition codes")
	}
}

func TestBuilderAndLinkErrors(t *testing.T) {
	b := NewBuilder()
	b.Emit(Jmp("missing"), Halt())
	if _, err := b.Program(); err == nil {
		t.Error("undefined label must fail to link")
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder()
	b.Emit(
		Mov(1, Imm(3)),
		Call("double"),
		Call("double"),
		Halt(),
	)
	b.Label("double")
	b.Emit(ALU(OpAdd, 1, R(1), R(1)), Ret())
	p, _ := b.Program()
	m := NewMachine(PolicyVAX, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 12 {
		t.Errorf("r1 = %d, want 12", m.Regs[1])
	}
}

func TestNativeMulDivMod(t *testing.T) {
	b := NewBuilder()
	b.Emit(
		Mov(1, Imm(-37)),
		Mov(2, Imm(5)),
		ALU(OpMul, 3, R(1), R(2)),
		ALU(OpDiv, 4, R(1), R(2)),
		ALU(OpMod, 5, R(1), R(2)),
		Halt(),
	)
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(PolicyVAX, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if int32(m.Regs[3]) != -185 || int32(m.Regs[4]) != -7 || int32(m.Regs[5]) != -2 {
		t.Errorf("mul/div/mod = %d, %d, %d", int32(m.Regs[3]), int32(m.Regs[4]), int32(m.Regs[5]))
	}
}

func TestDivisionByZeroIsAnError(t *testing.T) {
	b := NewBuilder()
	b.Emit(ALU(OpDiv, 1, R(2), R(3)), Halt())
	p, _ := b.Program()
	if err := NewMachine(PolicyVAX, 4).Run(p, 100); err == nil {
		t.Error("divide by zero should error")
	}
	b2 := NewBuilder()
	b2.Emit(ALU(OpMod, 1, R(2), R(3)), Halt())
	p2, _ := b2.Program()
	if err := NewMachine(PolicyVAX, 4).Run(p2, 100); err == nil {
		t.Error("modulo by zero should error")
	}
}

func TestConsoleOutputOps(t *testing.T) {
	b := NewBuilder()
	b.Emit(
		Mov(1, Imm(-42)),
		Instr{Op: OpPutInt, Src1: R(1)},
		Mov(2, Imm('z')),
		Instr{Op: OpPutCh, Src1: R(2)},
		Halt(),
	)
	p, _ := b.Program()
	m := NewMachine(Policy360, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if got := m.Out.String(); got != "-42\nz" {
		t.Errorf("output = %q", got)
	}
}

func TestMulSetsCodesUnderOpsPolicy(t *testing.T) {
	// Multiply participates in the set-on-operations rule like any ALU op.
	b := NewBuilder()
	b.Emit(
		Mov(1, Imm(3)),
		Mov(2, Imm(0)),
		ALU(OpMul, 3, R(1), R(2)), // result 0 -> Z set
		Bcc(CondEQ, "zero"),
		Mov(4, Imm(1)),
	)
	b.Label("zero")
	b.Emit(Halt())
	p, _ := b.Program()
	m := NewMachine(Policy360, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[4] != 0 {
		t.Error("branch on multiply-set codes not taken")
	}
}
