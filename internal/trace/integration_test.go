package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mips/internal/asm"
	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/reorg"
	"mips/internal/trace"
)

// runObserved compiles a corpus program and runs it on the bare machine
// with a full observer (tracer + profiler) attached.
func runObserved(t *testing.T, name string) (*trace.Observer, *trace.Registry, codegen.RunResult) {
	t.Helper()
	p, err := corpus.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		t.Fatal(err)
	}
	profiler := trace.NewProfiler()
	profiler.AddImage(im)
	// fib emits slightly more events than the default ring holds; size
	// up so the whole-run event counts are exact.
	obs := &trace.Observer{Tracer: trace.NewTracer(1 << 18), Profiler: profiler}
	reg := trace.NewRegistry()
	res, err := codegen.RunMIPSWith(im, 500_000_000, codegen.RunOptions{
		Attach: func(c *cpu.CPU) {
			obs.Attach(c)
			trace.RegisterCPUStats(reg, "cpu.", &c.Stats)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != p.Output {
		t.Fatalf("%s output = %q, want %q", name, res.Output, p.Output)
	}
	return obs, reg, res
}

// TestProfilerAccountsEveryCycle is the headline profiler guarantee:
// running Puzzle with the profiler attached, the per-PC attribution and
// the per-symbol flat profile both sum exactly to Stats.Cycles.
func TestProfilerAccountsEveryCycle(t *testing.T) {
	obs, reg, res := runObserved(t, "puzzle0")
	p := obs.Profiler

	if got := p.TotalCycles(); got != res.Stats.Cycles {
		t.Errorf("profiler total = %d cycles, Stats.Cycles = %d", got, res.Stats.Cycles)
	}
	var flatSum, flatInstrs, flatNops uint64
	for _, row := range p.Flat() {
		flatSum += row.Cycles
		flatInstrs += row.Instrs
		flatNops += row.Nops
	}
	if flatSum != res.Stats.Cycles {
		t.Errorf("flat profile sums to %d cycles, Stats.Cycles = %d", flatSum, res.Stats.Cycles)
	}
	if flatInstrs != res.Stats.Instructions {
		t.Errorf("flat profile sums to %d instrs, Stats.Instructions = %d", flatInstrs, res.Stats.Instructions)
	}
	if flatNops != res.Stats.Nops {
		t.Errorf("flat profile sums to %d nops, Stats.Nops = %d", flatNops, res.Stats.Nops)
	}

	// The registry sampled the same run.
	snap := reg.Snapshot()
	if snap["cpu.cycles"] != res.Stats.Cycles {
		t.Errorf("metrics cpu.cycles = %d, want %d", snap["cpu.cycles"], res.Stats.Cycles)
	}

	// Puzzle's functions must be symbolized (not lumped as unknown).
	names := map[string]bool{}
	for _, row := range p.Flat() {
		names[row.Name] = true
	}
	for _, want := range []string{"main", "p$place", "p$fit"} {
		if !names[want] {
			t.Errorf("flat profile missing symbol %q (have %v)", want, names)
		}
	}

	var buf bytes.Buffer
	if err := p.WriteReport(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flat profile") || !strings.Contains(buf.String(), "load-use distance") {
		t.Errorf("report missing sections:\n%s", buf.String())
	}
}

func TestLoadUseHistogramObservesSchedule(t *testing.T) {
	obs, _, res := runObserved(t, "fib")
	hist := obs.Profiler.LoadUseHistogram()
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		t.Fatal("no load-use distances recorded")
	}
	// The machine has no interlocks: the reorganizer must never emit a
	// distance-1 (hazard) pair, and the simulator confirms it.
	if hist[0] != 0 {
		t.Errorf("%d distance-1 load-use pairs observed: reorganizer emitted a hazard", hist[0])
	}
	if total > res.Stats.Loads {
		t.Errorf("%d load-use pairs from %d loads", total, res.Stats.Loads)
	}
}

// chromeEvent mirrors the trace_event schema for validation.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *uint64        `json:"ts"`
	Pid  *uint32        `json:"pid"`
	Tid  *uint32        `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// TestChromeJSONLoadableSchema validates the -trace-json output against
// what Perfetto and chrome://tracing require of the JSON object format:
// a traceEvents array whose records all carry name/ph/ts/pid/tid, with
// only known phase codes, instants scoped, and B/E slices balanced.
func TestChromeJSONLoadableSchema(t *testing.T) {
	obs, _, _ := runObserved(t, "fib")

	var buf bytes.Buffer
	if err := obs.Tracer.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}

	depth := 0
	var lastTs uint64
	kinds := map[string]int{}
	for i, e := range top.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d (%s) missing ts/pid/tid", i, e.Name)
		}
		kinds[e.Ph]++
		switch e.Ph {
		case "M":
			// metadata
		case "i":
			if e.S == "" {
				t.Fatalf("instant event %d (%s) missing scope", i, e.Name)
			}
		case "B":
			depth++
		case "E":
			depth--
			if depth < 0 {
				t.Fatalf("event %d: E without matching B", i)
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
		if e.Ph != "M" {
			if *e.Ts < lastTs {
				t.Fatalf("event %d: timestamp %d goes backwards from %d", i, *e.Ts, lastTs)
			}
			lastTs = *e.Ts
		}
	}
	if depth != 0 {
		t.Fatalf("%d B slices left unclosed", depth)
	}
	if kinds["i"] == 0 || kinds["M"] == 0 {
		t.Fatalf("expected instants and metadata, got %v", kinds)
	}
}

// TestTracerRecordsExpectedEventMix checks the event stream against the
// run's own statistics.
func TestTracerRecordsExpectedEventMix(t *testing.T) {
	obs, _, res := runObserved(t, "fib")
	counts := map[trace.Kind]uint64{}
	for _, e := range obs.Tracer.Events() {
		counts[e.Kind]++
	}
	dropped := obs.Tracer.Ring().Dropped()
	if dropped != 0 {
		t.Fatalf("fib overflowed the default ring: %d dropped", dropped)
	}
	if counts[trace.KindRetire] != res.Stats.Instructions {
		t.Errorf("retire events = %d, instructions = %d", counts[trace.KindRetire], res.Stats.Instructions)
	}
	if counts[trace.KindLoad] != res.Stats.Loads {
		t.Errorf("load events = %d, loads = %d", counts[trace.KindLoad], res.Stats.Loads)
	}
	if counts[trace.KindStore] != res.Stats.Stores {
		t.Errorf("store events = %d, stores = %d", counts[trace.KindStore], res.Stats.Stores)
	}
	if counts[trace.KindBranch] != res.Stats.TakenBranches {
		t.Errorf("branch events = %d, taken branches = %d", counts[trace.KindBranch], res.Stats.TakenBranches)
	}
}

func TestLegacyStreamTextFormat(t *testing.T) {
	p, err := corpus.Get("fib")
	if err != nil {
		t.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.NewTracer(64)
	var buf bytes.Buffer
	tracer.StreamText(&buf, 3)
	obs := &trace.Observer{Tracer: tracer}
	if _, err := codegen.RunMIPSWith(im, 500_000_000, codegen.RunOptions{
		Attach: func(c *cpu.CPU) { obs.Attach(c) },
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("streamed %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		if !strings.Contains(line, "pc=") {
			t.Errorf("line %d missing pc=: %q", i, line)
		}
	}
}

// TestKernelObserverSeesSwitchesAndFaults runs two processes under the
// preemptive kernel and checks the observer against the kernel's own
// counters: context-switch events, page-fault events, the metrics
// registry, and the profiler's two-space cycle attribution.
func TestKernelObserverSeesSwitchesAndFaults(t *testing.T) {
	loop := `
	.entry main
main:	mov #0, r1
	ldi #800, r2
spin:	add r1, #1, r1
	blt r1, r2, spin
	trap #4
`
	build := func(src string) *isa.Image {
		t.Helper()
		u, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		ro, _ := reorg.Reorganize(u, reorg.All())
		im, err := asm.Assemble(ro)
		if err != nil {
			t.Fatal(err)
		}
		return im
	}
	m, err := kernel.NewMachine(kernel.Config{TimerPeriod: 150})
	if err != nil {
		t.Fatal(err)
	}
	profiler := trace.NewProfiler()
	obs := &trace.Observer{Tracer: trace.NewTracer(0), Profiler: profiler}
	obs.AttachMachine(m)
	reg := trace.NewRegistry()
	trace.RegisterMachine(reg, m)

	for i := 0; i < 2; i++ {
		if _, err := m.AddProcess(build(loop), 16); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}

	if got := profiler.TotalCycles(); got != m.CPU.Stats.Cycles {
		t.Errorf("profiler total = %d cycles, Stats.Cycles = %d", got, m.CPU.Stats.Cycles)
	}

	counts := map[trace.Kind]uint64{}
	pids := map[uint16]bool{}
	for _, e := range obs.Tracer.Events() {
		counts[e.Kind]++
		if e.Kind == trace.KindRetire {
			pids[e.PID] = true
		}
	}
	if m.ContextSwitches() == 0 {
		t.Fatal("timer produced no context switches; test is vacuous")
	}
	if counts[trace.KindSwitch] == 0 {
		t.Error("no switch events recorded despite kernel context switches")
	}
	if counts[trace.KindPageFault] != uint64(m.PageFaults()) {
		t.Errorf("page-fault events = %d, kernel counted %d", counts[trace.KindPageFault], m.PageFaults())
	}
	if counts[trace.KindExcEnter] != m.CPU.Stats.TotalExceptions() {
		t.Errorf("exc-enter events = %d, exceptions = %d", counts[trace.KindExcEnter], m.CPU.Stats.TotalExceptions())
	}
	// Both processes' user instructions must be attributed to their PIDs.
	if !pids[1] || !pids[2] {
		t.Errorf("retire events seen for pids %v, want both 1 and 2", pids)
	}

	snap := reg.Snapshot()
	if snap["kernel.context_switches"] != uint64(m.ContextSwitches()) {
		t.Errorf("metrics context_switches = %d, kernel says %d",
			snap["kernel.context_switches"], m.ContextSwitches())
	}
	if snap["kernel.page_faults"] != uint64(m.PageFaults()) {
		t.Errorf("metrics page_faults = %d, kernel says %d",
			snap["kernel.page_faults"], m.PageFaults())
	}
	if snap["cpu.cycles"] != m.CPU.Stats.Cycles {
		t.Errorf("metrics cpu.cycles = %d, want %d", snap["cpu.cycles"], m.CPU.Stats.Cycles)
	}

	// Kernel symbols must appear in the flat profile, in their own space.
	var sawKernel bool
	for _, row := range profiler.Flat() {
		if row.Kernel && strings.HasPrefix(row.Name, "switch_save") {
			sawKernel = true
		}
	}
	if !sawKernel {
		t.Error("flat profile has no kernel-space switch_save symbol")
	}
}
