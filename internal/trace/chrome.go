package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mips/internal/isa"
)

// The Chrome trace_event export renders the event stream in Perfetto or
// chrome://tracing. Machine cycles are presented as microseconds (the
// format's time unit); one "thread" per kernel process makes the
// round-robin schedule visible as alternating lanes, and exception
// entry/exit become duration slices on a dedicated kernel lane.

// chromeEvent is one trace_event record (the JSON Array Format).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Pid  uint32         `json:"pid"`
	Tid  uint32         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON Object Format wrapper.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const (
	chromePID = 1
	// kernelTid is the synthetic lane carrying exception slices; real
	// process lanes use the PID as tid (bare machine = 0).
	kernelTid = 999
)

// WriteChromeJSON exports the tracer's retained events as Chrome
// trace_event JSON.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	return WriteChromeJSON(w, t.Events())
}

// WriteChromeJSON exports events (oldest-first) as Chrome trace_event
// JSON loadable by Perfetto and chrome://tracing.
func WriteChromeJSON(w io.Writer, events []Event) error {
	var out []chromeEvent

	// Name the process and the kernel lane up front; process lanes are
	// named as they first appear.
	out = append(out,
		chromeEvent{Name: "process_name", Ph: "M", Pid: chromePID, Tid: 0,
			Args: map[string]any{"name": "mips"}},
		chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePID, Tid: kernelTid,
			Args: map[string]any{"name": "kernel (exceptions)"}},
	)
	seenTid := map[uint32]bool{kernelTid: true}
	lane := func(pid uint16) uint32 {
		tid := uint32(pid)
		if !seenTid[tid] {
			seenTid[tid] = true
			name := "machine"
			if pid != 0 {
				name = fmt.Sprintf("process %d", pid)
			}
			out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePID, Tid: tid,
				Args: map[string]any{"name": name}})
		}
		return tid
	}

	instant := func(e Event, name string, args map[string]any) {
		out = append(out, chromeEvent{Name: name, Ph: "i", Ts: e.Cycle,
			Pid: chromePID, Tid: lane(e.PID), S: "t", Args: args})
	}

	excDepth := 0
	lastTs := uint64(0)
	for _, e := range events {
		if e.Cycle > lastTs {
			lastTs = e.Cycle
		}
		switch e.Kind {
		case KindRetire:
			instant(e, "retire", map[string]any{"pc": e.PC})
		case KindLoad:
			instant(e, "load", map[string]any{"pc": e.PC, "addr": e.Addr})
		case KindStore:
			instant(e, "store", map[string]any{"pc": e.PC, "addr": e.Addr})
		case KindBranch:
			instant(e, "branch", map[string]any{"pc": e.PC, "target": e.Addr})
		case KindExcEnter:
			prim, sec, code := e.ExcCauses()
			args := map[string]any{"return_pc": e.PC, "cause": isa.Cause(prim).String()}
			if isa.Cause(sec) != isa.CauseNone {
				args["secondary"] = isa.Cause(sec).String()
			}
			if isa.Cause(prim) == isa.CauseTrap {
				args["trap_code"] = code
			}
			out = append(out, chromeEvent{Name: "exc:" + isa.Cause(prim).String(), Ph: "B",
				Ts: e.Cycle, Pid: chromePID, Tid: kernelTid, Args: args})
			excDepth++
		case KindExcExit:
			// An exit without a recorded entry (the entry fell off the
			// ring) has no slice to close; demote it to an instant.
			if excDepth == 0 {
				instant(e, "exc-exit", map[string]any{"resume_pc": e.PC})
				continue
			}
			excDepth--
			out = append(out, chromeEvent{Name: "exc", Ph: "E",
				Ts: e.Cycle, Pid: chromePID, Tid: kernelTid,
				Args: map[string]any{"resume_pc": e.PC}})
		case KindPageFault:
			instant(e, "page-fault", map[string]any{"pc": e.PC, "addr": e.Addr})
		case KindDMA:
			instant(e, "dma", map[string]any{"src": e.Arg, "dst": e.Addr})
		case KindSwitch:
			instant(e, fmt.Sprintf("switch->pid%d", e.Arg), map[string]any{"pid": e.Arg})
		case KindSyscall:
			instant(e, fmt.Sprintf("syscall:%d", e.Arg), map[string]any{"pc": e.PC, "code": e.Arg})
		}
	}
	// Close slices left open at the end of the trace (e.g. the machine
	// halted inside the kernel), keeping B/E balanced for strict loaders.
	for ; excDepth > 0; excDepth-- {
		out = append(out, chromeEvent{Name: "exc", Ph: "E", Ts: lastTs,
			Pid: chromePID, Tid: kernelTid})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock": "machine cycles as trace microseconds"},
	})
}
