package trace

import (
	"strings"
	"testing"

	"mips/internal/cpu"
	"mips/internal/kernel"
	"mips/internal/mem"
)

// Re-registering a machine's counters into a registry that already
// holds them must be an explicit error, never a silent splice of two
// series — and never a panic. Swapping is spelled UnregisterPrefix,
// then register again.

func TestRegisterDuplicateIsError(t *testing.T) {
	r := NewRegistry()
	var st cpu.Stats
	if err := RegisterCPUStats(r, "cpu.", &st); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	var st2 cpu.Stats
	err := RegisterCPUStats(r, "cpu.", &st2)
	if err == nil {
		t.Fatal("second RegisterCPUStats on the same prefix succeeded")
	}
	if !strings.Contains(err.Error(), "Unregister") {
		t.Errorf("error %q does not point at the remedy", err)
	}

	var ts cpu.TranslationStats
	if err := RegisterTranslation(r, "xlate.", &ts); err != nil {
		t.Fatalf("translation registration: %v", err)
	}
	if err := RegisterTranslation(r, "xlate.", &ts); err == nil {
		t.Fatal("duplicate RegisterTranslation succeeded")
	}

	d := mem.NewDMA(mem.NewPhysical(1024))
	if err := RegisterDMA(r, "dma.", d); err != nil {
		t.Fatalf("dma registration: %v", err)
	}
	if err := RegisterDMA(r, "dma.", d); err == nil {
		t.Fatal("duplicate RegisterDMA succeeded")
	}

	// Distinct prefixes coexist.
	if err := RegisterCPUStats(r, "cpu2.", &st2); err != nil {
		t.Fatalf("distinct prefix: %v", err)
	}
}

func TestRegisterMachineDuplicateIsError(t *testing.T) {
	r := NewRegistry()
	m, err := kernel.NewMachine(kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterMachine(r, m); err != nil {
		t.Fatalf("first machine: %v", err)
	}
	m2, err := kernel.NewMachine(kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterMachine(r, m2); err == nil {
		t.Fatal("second RegisterMachine into the same registry succeeded")
	}
	// The explicit swap: clear every prefix the machine owns, then
	// register the replacement.
	r.UnregisterPrefix("cpu.")
	r.UnregisterPrefix("xlate.")
	r.UnregisterPrefix("kernel.")
	if err := RegisterMachine(r, m2); err != nil {
		t.Fatalf("re-registration after UnregisterPrefix: %v", err)
	}
}

func TestUnregisterPrefixAllowsSwap(t *testing.T) {
	r := NewRegistry()
	var a, b cpu.Stats
	if err := RegisterCPUStats(r, "cpu.", &a); err != nil {
		t.Fatal(err)
	}
	a.Instructions = 7
	if got := r.Snapshot()["cpu.instructions"]; got != 7 {
		t.Fatalf("cpu.instructions = %d, want 7", got)
	}

	n := r.UnregisterPrefix("cpu.")
	if n == 0 {
		t.Fatal("UnregisterPrefix removed nothing")
	}
	if r.Registered("cpu.instructions") {
		t.Fatal("cpu.instructions survived UnregisterPrefix")
	}
	if err := RegisterCPUStats(r, "cpu.", &b); err != nil {
		t.Fatalf("re-registration after UnregisterPrefix: %v", err)
	}
	b.Instructions = 42
	if got := r.Snapshot()["cpu.instructions"]; got != 42 {
		t.Errorf("after swap, cpu.instructions = %d, want 42 (new machine's series)", got)
	}
}

func TestUnregisterSingleSeries(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("one", func() uint64 { return 1 })
	if !r.Registered("one") {
		t.Fatal("series not registered")
	}
	if !r.Unregister("one") {
		t.Fatal("Unregister reported failure for a live series")
	}
	if r.Unregister("one") {
		t.Fatal("Unregister reported success for a dead series")
	}
	if _, ok := r.Snapshot()["one"]; ok {
		t.Error("unregistered series still in snapshot")
	}
}

func TestTryRegisterErrorDoesNotPanic(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("dup", func() uint64 { return 1 })
	if err := r.tryRegister("dup", metricSource{fn: func() uint64 { return 2 }, kind: MetricCounter}); err == nil {
		t.Fatal("tryRegister accepted a duplicate")
	}
}
