package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"mips/internal/isa"
)

// LoadUseMax is the largest load-use distance tracked exactly; longer
// distances fall into the final overflow bucket.
const LoadUseMax = 8

// pcSample accumulates cycle attribution for one instruction word.
type pcSample struct {
	cycles uint64 // executed cycles + stall bubbles + exception refills
	instrs uint64 // times the word retired
	nops   uint64 // times the word retired as an explicit no-op
	stalls uint64 // interlock bubbles charged to the word
	excs   uint64 // exceptions whose refill penalty the word carries
}

// pcKey locates one instruction word. Kernel (exception-level) and user
// execution are separate spaces: the dispatch ROM at physical zero and a
// user program's text overlap numerically but are different code.
type pcKey struct {
	pc     uint32
	kernel bool
}

// Profiler attributes every machine cycle to an instruction word: one
// cycle per retired instruction, one per interlock stall, and a
// pipeline refill per exception (charged to the saved restart address).
// With every charge observed, the per-PC totals sum exactly to
// Stats.Cycles, which is what makes the flat profile trustworthy.
//
// It also histograms load-use distances — how many words after a load
// its result is first read — making the reorganizer's scheduling
// quality visible: distance 1 is a hazard on this machine, distance 2
// is a just-in-time schedule.
type Profiler struct {
	samples map[pcKey]*pcSample
	loadUse [LoadUseMax + 1]uint64

	// mu, when non-nil (Share), serializes the attribution hooks
	// against concurrent readers — the live telemetry server's
	// /profile endpoints walk the sample map while the simulation
	// runs, and an unguarded map write under that walk would fault.
	// Nil (the default) keeps the hot path lock-free.
	mu *sync.Mutex

	// pending[r] holds 1+seq of the youngest load into r whose first
	// use has not been seen (0 = none).
	pending [isa.NumRegs]uint64
	seq     uint64

	syms     []Symbol // user-space symbols, sorted by address
	ksyms    []Symbol // kernel-space symbols, sorted by address
	pieceBuf []*isa.Piece
	regBuf   []isa.Reg
}

// Symbol is one symbolization entry: a pc at or above Addr (and below
// the next symbol) attributes to Name.
type Symbol struct {
	Name string
	Addr uint32
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{samples: make(map[pcKey]*pcSample)}
}

// Share makes the profiler safe for concurrent readers: the attribution
// hooks and the aggregate accessors (Flat, TotalCycles,
// LoadUseHistogram, WriteReport) take a mutex. Call it before the run
// starts — typically when a telemetry server is attached — and only
// then: the lock costs one uncontended acquire per retired instruction,
// which the default unshared profiler never pays. Symbol registration
// (AddImage and friends) stays setup-time-only and is not guarded.
func (p *Profiler) Share() {
	if p.mu == nil {
		p.mu = new(sync.Mutex)
	}
}

func (p *Profiler) lock() {
	if p.mu != nil {
		p.mu.Lock()
	}
}

func (p *Profiler) unlock() {
	if p.mu != nil {
		p.mu.Unlock()
	}
}

// AddImage registers an image's symbols for per-function attribution of
// user-space execution. Compiler-internal labels (names starting with
// ".") and symbols outside the text segment are skipped.
func (p *Profiler) AddImage(im *isa.Image) {
	p.syms = addImageSymbols(p.syms, im)
}

// AddKernelImage registers an image's symbols for attribution of
// exception-level (kernel) execution.
func (p *Profiler) AddKernelImage(im *isa.Image) {
	p.ksyms = addImageSymbols(p.ksyms, im)
}

// AddSymbol registers one user-space symbolization entry.
func (p *Profiler) AddSymbol(name string, addr uint32) {
	p.syms = insertSymbol(p.syms, Symbol{Name: name, Addr: addr})
}

func addImageSymbols(syms []Symbol, im *isa.Image) []Symbol {
	lo, hi := im.TextBase, im.TextBase+int32(len(im.Words))
	for name, addr := range im.Symbols {
		if strings.HasPrefix(name, ".") || addr < lo || addr >= hi {
			continue
		}
		syms = insertSymbol(syms, Symbol{Name: name, Addr: uint32(addr)})
	}
	return syms
}

func insertSymbol(syms []Symbol, s Symbol) []Symbol {
	syms = append(syms, s)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	return syms
}

// Symbolize maps a pc to the nearest symbol at or below it in the given
// space.
func (p *Profiler) Symbolize(pc uint32, kernel bool) (name string, offset uint32, ok bool) {
	syms := p.syms
	if kernel {
		syms = p.ksyms
	}
	i := sort.Search(len(syms), func(i int) bool { return syms[i].Addr > pc })
	if i == 0 {
		return "", 0, false
	}
	s := syms[i-1]
	return s.Name, pc - s.Addr, true
}

func (p *Profiler) at(pc uint32, kernel bool) *pcSample {
	k := pcKey{pc: pc, kernel: kernel}
	s := p.samples[k]
	if s == nil {
		s = &pcSample{}
		p.samples[k] = s
	}
	return s
}

// step attributes one retired instruction word.
func (p *Profiler) step(pc uint32, in isa.Instr, kernel bool) {
	p.lock()
	defer p.unlock()
	p.seq++
	s := p.at(pc, kernel)
	s.cycles++
	s.instrs++
	if in.IsNop() {
		s.nops++
		return
	}
	// Load-use bookkeeping: reads first (both pieces of a packed word
	// issue together), then definitions.
	p.pieceBuf = in.Pieces(p.pieceBuf[:0])
	for _, piece := range p.pieceBuf {
		p.regBuf = piece.Uses(p.regBuf[:0])
		for _, r := range p.regBuf {
			if issued := p.pending[r]; issued != 0 {
				d := p.seq - (issued - 1)
				if d > LoadUseMax {
					d = LoadUseMax + 1
				}
				p.loadUse[d-1]++
				p.pending[r] = 0
			}
		}
	}
	for _, piece := range p.pieceBuf {
		if r, ok := piece.Defs(); ok {
			if piece.Kind == isa.PieceLoad && piece.Mode != isa.AModeLongImm {
				p.pending[r] = p.seq + 1
			} else {
				p.pending[r] = 0
			}
		}
	}
}

// stall attributes one interlock bubble.
func (p *Profiler) stall(pc uint32, kernel bool) {
	p.lock()
	s := p.at(pc, kernel)
	s.cycles++
	s.stalls++
	p.unlock()
}

// exception attributes a pipeline refill to the restart address in the
// interrupted space.
func (p *Profiler) exception(pc uint32, kernel bool) {
	p.lock()
	s := p.at(pc, kernel)
	s.cycles += isa.PipeStages
	s.excs++
	p.unlock()
}

// TotalCycles sums the attributed cycles over every pc in both spaces.
// With the profiler attached for a whole run it equals the CPU's
// Stats.Cycles.
func (p *Profiler) TotalCycles() uint64 {
	p.lock()
	defer p.unlock()
	var n uint64
	for _, s := range p.samples {
		n += s.cycles
	}
	return n
}

// LoadUseHistogram returns the load-use distance counts: index i holds
// distance i+1, and the final entry counts distances beyond LoadUseMax.
func (p *Profiler) LoadUseHistogram() [LoadUseMax + 1]uint64 {
	p.lock()
	defer p.unlock()
	return p.loadUse
}

// SymbolProfile is one row of the flat profile.
type SymbolProfile struct {
	Name   string
	Kernel bool // exception-level code (dispatch ROM, handlers)
	Cycles uint64
	Instrs uint64
	Nops   uint64
	Stalls uint64
	Excs   uint64
}

// Buckets for addresses below every known symbol of their space.
const (
	unknownSymbol = "<unsymbolized>"
	kernelBucket  = "<kernel>"
)

// Flat aggregates the per-PC samples into a per-symbol profile, sorted
// by descending cycles (ties by name).
func (p *Profiler) Flat() []SymbolProfile {
	type aggKey struct {
		name   string
		kernel bool
	}
	agg := make(map[aggKey]*SymbolProfile)
	p.lock()
	defer p.unlock()
	for k, s := range p.samples {
		name, _, ok := p.Symbolize(k.pc, k.kernel)
		if !ok {
			name = unknownSymbol
			if k.kernel {
				name = kernelBucket
			}
		}
		ak := aggKey{name: name, kernel: k.kernel}
		row := agg[ak]
		if row == nil {
			row = &SymbolProfile{Name: name, Kernel: k.kernel}
			agg[ak] = row
		}
		row.Cycles += s.cycles
		row.Instrs += s.instrs
		row.Nops += s.nops
		row.Stalls += s.stalls
		row.Excs += s.excs
	}
	rows := make([]SymbolProfile, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// Folded renders the flat profile as folded-stack frames: each row
// becomes a "space;symbol" stack (space is user or kernel) weighted by
// exact cycles. This is the unit the fleet aggregation layer merges —
// identical stacks from many jobs sum into one fleet flamegraph.
func (p *Profiler) Folded() map[string]uint64 {
	out := make(map[string]uint64)
	for _, row := range p.Flat() {
		space := "user"
		if row.Kernel {
			space = "kernel"
		}
		out[space+";"+foldedFrameName(row.Name)] += row.Cycles
	}
	return out
}

// foldedFrameName sanitizes a symbol for the folded format, whose
// frame separator is ';' and whose count separator is ' '.
func foldedFrameName(name string) string {
	name = strings.ReplaceAll(name, ";", "_")
	return strings.ReplaceAll(name, " ", "_")
}

// display names a row for the report; kernel-space symbols carry a "k:"
// prefix so they cannot be confused with same-named user code.
func (r SymbolProfile) display() string {
	if r.Kernel && r.Name != kernelBucket {
		return "k:" + r.Name
	}
	return r.Name
}

// WriteReport writes the flat profile, the top hot instruction words,
// and the load-use histogram as aligned text.
func (p *Profiler) WriteReport(w io.Writer, topWords int) error {
	total := p.TotalCycles()
	if total == 0 {
		_, err := fmt.Fprintln(w, "profile: no cycles recorded")
		return err
	}

	fmt.Fprintf(w, "flat profile: %d cycles by symbol\n", total)
	fmt.Fprintf(w, "  %-18s %12s %6s %6s %12s %8s %6s %8s\n",
		"symbol", "cycles", "%", "cum%", "instrs", "nops", "nop%", "stalls")
	var cum uint64
	for _, r := range p.Flat() {
		cum += r.Cycles
		nopPct := 0.0
		if r.Instrs > 0 {
			nopPct = 100 * float64(r.Nops) / float64(r.Instrs)
		}
		fmt.Fprintf(w, "  %-18s %12d %5.1f%% %5.1f%% %12d %8d %5.1f%% %8d\n",
			r.display(), r.Cycles,
			100*float64(r.Cycles)/float64(total), 100*float64(cum)/float64(total),
			r.Instrs, r.Nops, nopPct, r.Stalls)
	}

	type hot struct {
		k pcKey
		s pcSample
	}
	p.lock()
	words := make([]hot, 0, len(p.samples))
	for k, s := range p.samples {
		words = append(words, hot{k, *s})
	}
	p.unlock()
	sort.Slice(words, func(i, j int) bool {
		if words[i].s.cycles != words[j].s.cycles {
			return words[i].s.cycles > words[j].s.cycles
		}
		return words[i].k.pc < words[j].k.pc
	})
	if topWords > len(words) {
		topWords = len(words)
	}
	fmt.Fprintf(w, "hot words: top %d of %d by cycles\n", topWords, len(words))
	fmt.Fprintf(w, "  %-8s %-22s %12s %12s %8s %8s\n", "pc", "symbol", "cycles", "instrs", "nops", "stalls")
	for _, h := range words[:topWords] {
		loc := unknownSymbol
		if h.k.kernel {
			loc = kernelBucket
		}
		if name, off, ok := p.Symbolize(h.k.pc, h.k.kernel); ok {
			if h.k.kernel {
				name = "k:" + name
			}
			loc = fmt.Sprintf("%s+%d", name, off)
		}
		fmt.Fprintf(w, "  %-8d %-22s %12d %12d %8d %8d\n",
			h.k.pc, loc, h.s.cycles, h.s.instrs, h.s.nops, h.s.stalls)
	}

	fmt.Fprintf(w, "load-use distance (words from load to first use; 1 = hazard, 2 = tight schedule)\n ")
	for i, n := range p.loadUse {
		label := fmt.Sprintf("%d", i+1)
		if i == LoadUseMax {
			label = fmt.Sprintf(">%d", LoadUseMax)
		}
		fmt.Fprintf(w, " %s:%d", label, n)
	}
	_, err := fmt.Fprintln(w)
	return err
}
