package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	var v uint64
	r.Gauge("sampled", func() uint64 { return v })

	c.Inc()
	c.Add(4)
	v = 7
	got := r.Snapshot()
	want := Snapshot{"events": 5, "sampled": 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}

	// Snapshots are point-in-time: later changes don't alter them.
	c.Inc()
	v = 9
	if got["events"] != 5 || got["sampled"] != 7 {
		t.Fatal("snapshot mutated by later updates")
	}
	if names := r.Names(); !reflect.DeepEqual(names, []string{"events", "sampled"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r.Counter("x")
}

func TestSnapshotDelta(t *testing.T) {
	prev := Snapshot{"a": 10, "b": 3}
	cur := Snapshot{"a": 25, "b": 3, "new": 7}
	d := cur.Delta(prev)
	want := Snapshot{"a": 15, "b": 0, "new": 7}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
}

// TestSnapshotDeltaNewKeys pins the new-key contract the live telemetry
// sampler depends on: counters present only in the newer snapshot —
// sources registered between samples, e.g. a corebench registry
// attached to a running server — surface with their full value, even
// zero; counters that vanished are omitted; and a metric that shrank
// clamps to 0 instead of wrapping.
func TestSnapshotDeltaNewKeys(t *testing.T) {
	prev := Snapshot{"old.gone": 5, "shrinks": 100}
	cur := Snapshot{"appeared": 42, "appeared.zero": 0, "shrinks": 60}
	d := cur.Delta(prev)
	want := Snapshot{"appeared": 42, "appeared.zero": 0, "shrinks": 0}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
	if _, ok := d["old.gone"]; ok {
		t.Fatal("metric absent from the newer snapshot must be omitted")
	}
}

// TestCounterConcurrentSnapshot exercises the single-writer /
// concurrent-sampler contract under the race detector: one goroutine
// increments while another snapshots.
func TestCounterConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			c.Inc()
		}
	}()
	var last uint64
	for i := 0; i < 100; i++ {
		v := r.Snapshot()["events"]
		if v < last {
			t.Fatalf("counter went backwards: %d after %d", v, last)
		}
		last = v
	}
	<-done
	if got := r.Snapshot()["events"]; got != 10000 {
		t.Fatalf("final count = %d, want 10000", got)
	}
}

func TestRegistryMeta(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits")
	r.Gauge("level", func() uint64 { return 0 })
	r.CounterFunc("sampled_total", func() uint64 { return 0 })
	r.Describe("hits", "cache hits")
	if k, h := r.Meta("hits"); k != MetricCounter || h != "cache hits" {
		t.Fatalf("hits meta = %v %q", k, h)
	}
	if k, _ := r.Meta("level"); k != MetricGauge {
		t.Fatalf("level kind = %v, want gauge", k)
	}
	if k, _ := r.Meta("sampled_total"); k != MetricCounter {
		t.Fatalf("sampled_total kind = %v, want counter", k)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := Snapshot{"cpu.cycles": 123456, "cpu.nops": 789, "kernel.page_faults": 0}
	var buf1, buf2 bytes.Buffer
	if err := s.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	// Identical snapshots serialize to identical bytes (sorted keys).
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("identical snapshots serialized differently")
	}
	got, err := ReadSnapshot(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip = %v, want %v", got, s)
	}
}
