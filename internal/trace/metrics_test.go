package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	var v uint64
	r.Gauge("sampled", func() uint64 { return v })

	c.Inc()
	c.Add(4)
	v = 7
	got := r.Snapshot()
	want := Snapshot{"events": 5, "sampled": 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}

	// Snapshots are point-in-time: later changes don't alter them.
	c.Inc()
	v = 9
	if got["events"] != 5 || got["sampled"] != 7 {
		t.Fatal("snapshot mutated by later updates")
	}
	if names := r.Names(); !reflect.DeepEqual(names, []string{"events", "sampled"}) {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r.Counter("x")
}

func TestSnapshotDelta(t *testing.T) {
	prev := Snapshot{"a": 10, "b": 3}
	cur := Snapshot{"a": 25, "b": 3, "new": 7}
	d := cur.Delta(prev)
	want := Snapshot{"a": 15, "b": 0, "new": 7}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := Snapshot{"cpu.cycles": 123456, "cpu.nops": 789, "kernel.page_faults": 0}
	var buf1, buf2 bytes.Buffer
	if err := s.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	// Identical snapshots serialize to identical bytes (sorted keys).
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("identical snapshots serialized differently")
	}
	got, err := ReadSnapshot(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip = %v, want %v", got, s)
	}
}
