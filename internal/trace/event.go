// Package trace is the observability layer of the simulator stack. It
// has three parts, mirroring how the paper's evaluation is built on
// dynamic measurement before any optimization claim:
//
//   - a structured event tracer: a fixed-capacity ring buffer of typed,
//     cycle-timestamped events (instruction retire, load/store, taken
//     branch, exception entry/exit, page fault, DMA-consumed free cycle,
//     context switch, monitor call), exportable as Chrome trace_event
//     JSON for Perfetto and as human-readable text;
//   - a metrics registry: named counters and gauges the cpu, mem, and
//     kernel layers are registered into, with a snapshot/delta API and a
//     deterministic JSON serialization for trajectory tracking;
//   - a cycle-attribution profiler: per-PC and per-symbol histograms of
//     cycles, nops, and stalls plus a load-use-distance histogram, with
//     a flat-profile report that localizes scheduling overhead per
//     function.
//
// All three attach to the simulated machine through an Observer, which
// installs the cpu/mem hook points. With no observer attached the
// simulator's hot path stays hook-free (every hook site is a nil check).
package trace

import "fmt"

// Kind classifies a trace event.
type Kind uint8

const (
	// KindRetire is one executed instruction word.
	KindRetire Kind = iota
	// KindLoad and KindStore are completed data-memory references;
	// Addr holds the virtual address.
	KindLoad
	KindStore
	// KindBranch is an executed control-transfer piece; Addr holds the
	// target and Arg is 1 if the transfer was taken.
	KindBranch
	// KindExcEnter is an exception entry; Arg packs the primary cause
	// (bits 0-7), secondary cause (bits 8-15), and trap code (bits 16-27).
	// PC is the first saved return address.
	KindExcEnter
	// KindExcExit is a return from exception; PC is the resume address.
	KindExcExit
	// KindPageFault is a mapping fault (page or segment); Addr holds the
	// faulting address from the external mapping unit's latch.
	KindPageFault
	// KindDMA is one word moved by the DMA engine on a free memory
	// cycle; Arg holds the source and Addr the destination address.
	KindDMA
	// KindSwitch is a kernel context switch; Arg holds the incoming PID.
	KindSwitch
	// KindSyscall is a monitor call (software trap); Arg holds the
	// 12-bit trap code.
	KindSyscall

	numKinds
)

var kindNames = [numKinds]string{
	"retire", "load", "store", "branch", "exc-enter", "exc-exit",
	"page-fault", "dma", "switch", "syscall",
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Event is one trace record. The struct is fixed-size and pointer-free
// so the ring buffer never allocates after construction.
type Event struct {
	// Seq is the monotonic event sequence number, assigned at append.
	Seq uint64
	// Cycle is the machine cycle count when the event was recorded.
	Cycle uint64
	// PC is the word address of the instruction involved.
	PC uint32
	// Addr is a kind-specific address (memory address, branch target...).
	Addr uint32
	// Arg is a kind-specific argument (cause pack, trap code, PID...).
	Arg uint32
	// PID identifies the kernel process the event belongs to (0 on the
	// bare machine and during boot).
	PID uint16
	// Kind classifies the event.
	Kind Kind
}

// ExcCauses unpacks the Arg of a KindExcEnter event.
func (e Event) ExcCauses() (primary, secondary uint8, trapCode uint16) {
	return uint8(e.Arg), uint8(e.Arg >> 8), uint16(e.Arg >> 16 & 0xFFF)
}

// PackExcArg builds the Arg of a KindExcEnter event.
func PackExcArg(primary, secondary uint8, trapCode uint16) uint32 {
	return uint32(primary) | uint32(secondary)<<8 | uint32(trapCode&0xFFF)<<16
}

// DefaultRingCap is the ring capacity used when none is given: large
// enough to hold the tail of any run, small enough to allocate fast.
const DefaultRingCap = 1 << 16

// Ring is a fixed-capacity event ring buffer. Appends never allocate;
// once full, the oldest events are overwritten and counted as dropped.
type Ring struct {
	buf   []Event
	total uint64
}

// NewRing returns a ring holding up to capacity events (DefaultRingCap
// if capacity is not positive).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records an event, assigning its sequence number.
func (r *Ring) Append(e Event) {
	e.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = e
	}
	r.total++
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return cap(r.buf) }

// Len returns the number of events currently retained.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever appended.
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns the number of events overwritten by wraparound.
func (r *Ring) Dropped() uint64 { return r.total - uint64(len(r.buf)) }

// Events returns the retained events oldest-first. The slice is freshly
// allocated; the ring may keep appending afterwards.
func (r *Ring) Events() []Event {
	out := make([]Event, len(r.buf))
	if r.total <= uint64(cap(r.buf)) {
		copy(out, r.buf)
		return out
	}
	split := int(r.total % uint64(cap(r.buf)))
	n := copy(out, r.buf[split:])
	copy(out[n:], r.buf[:split])
	return out
}
