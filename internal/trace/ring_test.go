package trace

import "testing"

func TestRingAppendAssignsSequence(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Append(Event{Kind: KindRetire, PC: uint32(i)})
	}
	if r.Len() != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d, want 5/5/0", r.Len(), r.Total(), r.Dropped())
	}
	for i, e := range r.Events() {
		if e.Seq != uint64(i) || e.PC != uint32(i) {
			t.Fatalf("event %d: seq=%d pc=%d", i, e.Seq, e.PC)
		}
	}
}

func TestRingWrapKeepsNewestInOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Append(Event{Kind: KindRetire, PC: uint32(100 + i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", r.Len())
	}
	if r.Total() != 11 || r.Dropped() != 7 {
		t.Fatalf("total=%d dropped=%d, want 11/7", r.Total(), r.Dropped())
	}
	events := r.Events()
	// Oldest-first snapshot of the newest four appends: seq 7..10.
	for i, e := range events {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.PC != uint32(100+7+i) {
			t.Fatalf("event %d: seq=%d pc=%d, want seq=%d pc=%d",
				i, e.Seq, e.PC, wantSeq, 100+7+i)
		}
	}
}

func TestRingSnapshotIsIndependent(t *testing.T) {
	r := NewRing(4)
	r.Append(Event{PC: 1})
	events := r.Events()
	r.Append(Event{PC: 2})
	if len(events) != 1 || events[0].PC != 1 {
		t.Fatal("snapshot changed after later appends")
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultRingCap {
		t.Fatalf("default capacity = %d, want %d", got, DefaultRingCap)
	}
}

func TestExcArgPackRoundTrip(t *testing.T) {
	e := Event{Kind: KindExcEnter, Arg: PackExcArg(3, 5, 0x7FF)}
	prim, sec, code := e.ExcCauses()
	if prim != 3 || sec != 5 || code != 0x7FF {
		t.Fatalf("unpacked %d/%d/%d, want 3/5/2047", prim, sec, code)
	}
}
