package trace

import (
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/mem"
)

// RegisterCPUStats registers every field of a CPU's Stats under the
// given prefix (conventionally "cpu."). The registry samples the struct
// at snapshot time; nothing is added to the execution path.
func RegisterCPUStats(r *Registry, prefix string, st *cpu.Stats) {
	g := func(name string, fn func() uint64) { r.Gauge(prefix+name, fn) }
	g("instructions", func() uint64 { return st.Instructions })
	g("pieces", func() uint64 { return st.Pieces })
	g("nops", func() uint64 { return st.Nops })
	g("cycles", func() uint64 { return st.Cycles })
	g("stall_cycles", func() uint64 { return st.StallCycles })
	g("data_cycles", func() uint64 { return st.DataCycles })
	g("free_cycles", func() uint64 { return st.FreeCycles })
	g("dma_cycles", func() uint64 { return st.DMACycles })
	g("loads", func() uint64 { return st.Loads })
	g("stores", func() uint64 { return st.Stores })
	g("branches", func() uint64 { return st.Branches })
	g("taken_branches", func() uint64 { return st.TakenBranches })
	g("exceptions", st.TotalExceptions)
	for c := isa.Cause(0); c < isa.NumCauses; c++ {
		c := c
		g("exceptions."+c.String(), func() uint64 { return st.Exceptions[c] })
	}
}

// RegisterMachine registers a full kernel machine: the CPU stats under
// "cpu." and the kernel's scheduling/paging counters under "kernel.".
func RegisterMachine(r *Registry, m *kernel.Machine) {
	RegisterCPUStats(r, "cpu.", &m.CPU.Stats)
	g := func(name string, fn func() uint64) { r.Gauge("kernel."+name, fn) }
	g("page_faults", func() uint64 { return uint64(m.PageFaults()) })
	g("context_switches", func() uint64 { return uint64(m.ContextSwitches()) })
	g("evictions", func() uint64 { return uint64(m.Evictions()) })
	g("disk_reads", func() uint64 { return uint64(m.DiskReads()) })
	g("disk_writes", func() uint64 { return uint64(m.DiskWrites()) })
	g("resident_pages", func() uint64 { return uint64(m.ResidentPages()) })
}

// RegisterDMA registers a DMA engine's transfer counters under the
// given prefix (conventionally "dma.").
func RegisterDMA(r *Registry, prefix string, d *mem.DMA) {
	g := func(name string, fn func() uint64) { r.Gauge(prefix+name, fn) }
	g("words_moved", d.Moved)
	g("cycles_offered", d.Offered)
	g("words_pending", func() uint64 { return uint64(d.Pending()) })
}
