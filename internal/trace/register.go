package trace

import (
	"fmt"
	"sync/atomic"

	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/mem"
)

// registrar accumulates CounterFunc/Gauge registrations, turning the
// first duplicate name into an error instead of a panic. Registering
// the same machine (or the same prefix) twice into one registry would
// silently splice two series together; the Register* helpers refuse
// instead, and callers that really mean to swap call UnregisterPrefix
// first.
type registrar struct {
	r   *Registry
	err error
}

func (g *registrar) counter(name, help string, fn func() uint64) {
	if g.err != nil {
		return
	}
	if e := g.r.tryRegister(name, metricSource{fn: fn, kind: MetricCounter}); e != nil {
		g.err = fmt.Errorf("%w (Unregister the old series or use a fresh registry)", e)
		return
	}
	g.r.Describe(name, help)
}

func (g *registrar) gauge(name, help string, fn func() uint64) {
	if g.err != nil {
		return
	}
	if e := g.r.tryRegister(name, metricSource{fn: fn, kind: MetricGauge}); e != nil {
		g.err = fmt.Errorf("%w (Unregister the old series or use a fresh registry)", e)
		return
	}
	g.r.Describe(name, help)
}

// RegisterCPUStats registers every field of a CPU's Stats under the
// given prefix (conventionally "cpu."). The registry samples the struct
// at snapshot time; nothing is added to the execution path. The fields
// are read with atomic loads so a live telemetry server sampling
// mid-run never sees a torn value; the CPU goroutine remains the single
// writer (see the Registry concurrency contract). Registering a prefix
// that is already populated returns an error: re-registration must be
// explicit (UnregisterPrefix, then register again).
func RegisterCPUStats(r *Registry, prefix string, st *cpu.Stats) error {
	g := &registrar{r: r}
	c := func(name, help string, p *uint64) {
		g.counter(prefix+name, help, func() uint64 { return atomic.LoadUint64(p) })
	}
	c("instructions", "executed instruction words (one cycle each on the five-stage pipe)", &st.Instructions)
	c("pieces", "executed non-nop pieces (a packed word contributes two)", &st.Pieces)
	c("nops", "executed no-op words: the explicit cost of software interlocks", &st.Nops)
	c("cycles", "total machine cycles: instructions plus refill and stall penalties", &st.Cycles)
	c("stall_cycles", "hardware-interlock bubbles (interlocked counterfactual only)", &st.StallCycles)
	c("data_cycles", "cycles whose data-memory slot carried a load or store", &st.DataCycles)
	c("free_cycles", "cycles whose data-memory slot went unused (the paper's wasted bandwidth)", &st.FreeCycles)
	c("dma_cycles", "free cycles actually consumed by the DMA engine", &st.DMACycles)
	c("loads", "data-memory loads", &st.Loads)
	c("stores", "data-memory stores", &st.Stores)
	c("branches", "executed control-flow pieces", &st.Branches)
	c("taken_branches", "control-flow pieces that transferred control", &st.TakenBranches)
	g.counter(prefix+"exceptions", "exception entries over all causes", func() uint64 {
		var n uint64
		for i := range st.Exceptions {
			n += atomic.LoadUint64(&st.Exceptions[i])
		}
		return n
	})
	for cause := isa.Cause(0); cause < isa.NumCauses; cause++ {
		c("exceptions."+cause.String(), "exception entries with primary cause "+cause.String(),
			&st.Exceptions[cause])
	}
	return g.err
}

// RegisterTranslation registers the CPU's translation-layer counters —
// predecode cache and superblock cache — under the given prefix
// (conventionally "xlate."). Like RegisterCPUStats it samples with
// atomic loads and errors on duplicate registration; the CPU goroutine
// remains the single writer.
func RegisterTranslation(r *Registry, prefix string, ts *cpu.TranslationStats) error {
	g := &registrar{r: r}
	c := func(name, help string, p *uint64) {
		g.counter(prefix+name, help, func() uint64 { return atomic.LoadUint64(p) })
	}
	c("predecode_hits", "fetches served by a valid predecoded record", &ts.PredecodeHits)
	c("predecode_misses", "fetches that (re)decoded the instruction word", &ts.PredecodeMisses)
	c("predecode_collisions", "predecode misses whose direct-mapped slot held another address", &ts.PredecodeCollisions)
	c("block_hits", "superblock cache lookups served by a valid block", &ts.BlockHits)
	c("block_chained", "superblock entries through a chain slot, skipping the lookup", &ts.BlockChained)
	c("block_translations", "superblocks built (first sight and retranslation alike)", &ts.BlockTranslations)
	c("block_invalidations", "superblocks dropped by the memory write barrier", &ts.BlockInvalidations)
	c("block_bails", "mid-block falls back to the exact per-instruction engine", &ts.BlockBails)
	c("trace.formed", "hot-path recordings that produced a formable multi-block trace", &ts.TraceFormed)
	c("trace.compiled", "traces compiled to closure arrays and installed", &ts.TraceCompiled)
	c("trace.guard_exits", "early trace exits: direction guards, faults, self-invalidating stores", &ts.TraceGuardExits)
	c("trace.invalidations", "compiled traces dropped by the memory write barrier", &ts.TraceInvalidations)
	c("trace.dispatch_hits", "trace executions started (cache entry and trace-to-trace chaining)", &ts.TraceDispatchHits)
	for reason := cpu.DeoptReason(0); reason < cpu.NumDeoptReasons; reason++ {
		c("trace.guard_exits."+reason.String(),
			"guard exits deopting for reason "+reason.String()+" (partitions trace.guard_exits)",
			&ts.TraceDeopts[reason])
	}
	c("trace.deopt.environment", "trace dispatches refused because hooks or a non-quiet config force slower tiers", &ts.TraceDeoptEnvironment)
	c("trace.deopt.interrupt", "trace dispatches refused by a pending interrupt", &ts.TraceDeoptInterrupt)
	c("trace.deopt.chain_budget", "trace chains cut by the chain-follow budget with a successor trace ready", &ts.TraceDeoptChainBudget)
	for reason := cpu.FormRefusal(0); reason < cpu.NumFormRefusals; reason++ {
		c("trace.refuse."+reason.String(),
			"trace recordings refused or truncated: "+reason.String(),
			&ts.TraceFormRefusals[reason])
	}
	c("trace.poisoned", "entry PCs poisoned (heatNever) after an unformable recording", &ts.TracePoisoned)
	c("trace.side_hits", "branch-direction guard exits resolved by a side stub, never leaving the trace tier", &ts.TraceSideHits)
	c("trace.ic_hits", "indirect-target guard exits resolved by an inline target cache", &ts.TraceICHits)
	c("trace.side_compiled", "side stubs compiled for hot branch-direction exits", &ts.TraceSideCompiled)
	c("trace.ic_installs", "inline-cache entries installed for indirect-target exits", &ts.TraceICInstalls)
	c("trace.heat_evicted", "heat-table entries displaced by an aliasing entry PC before reaching threshold", &ts.TraceHeatEvicted)
	for tier := cpu.Tier(0); tier < cpu.NumTiers; tier++ {
		c("tier."+tier.String(),
			"instructions retired in the "+tier.String()+" engine tier (partitions cpu.instructions)",
			&ts.TierInstrs[tier])
	}
	return g.err
}

// RegisterMachine registers a full kernel machine: the CPU stats under
// "cpu.", the translation-layer counters under "xlate.", and the
// kernel's scheduling/paging counters under "kernel.". The kernel
// counters sample through accessor methods and are best-effort when
// read while the machine runs. Registering a second machine into the
// same registry returns an error; swap explicitly with UnregisterPrefix.
func RegisterMachine(r *Registry, m *kernel.Machine) error {
	if err := RegisterCPUStats(r, "cpu.", &m.CPU.Stats); err != nil {
		return err
	}
	if err := RegisterTranslation(r, "xlate.", &m.CPU.Trans); err != nil {
		return err
	}
	g := &registrar{r: r}
	c := func(name, help string, fn func() uint64) {
		g.counter("kernel."+name, help, fn)
	}
	c("page_faults", "demand-paging faults taken", func() uint64 { return uint64(m.PageFaults()) })
	c("context_switches", "scheduler context switches", func() uint64 { return uint64(m.ContextSwitches()) })
	c("evictions", "resident pages evicted", func() uint64 { return uint64(m.Evictions()) })
	c("disk_reads", "pages read from the paging disk", func() uint64 { return uint64(m.DiskReads()) })
	c("disk_writes", "pages written to the paging disk", func() uint64 { return uint64(m.DiskWrites()) })
	g.gauge("kernel.resident_pages", "pages currently resident in physical memory",
		func() uint64 { return uint64(m.ResidentPages()) })
	return g.err
}

// RegisterDMA registers a DMA engine's transfer counters under the
// given prefix (conventionally "dma."). Duplicate registration is an
// error, as for the other Register helpers.
func RegisterDMA(r *Registry, prefix string, d *mem.DMA) error {
	g := &registrar{r: r}
	g.counter(prefix+"words_moved", "words moved on stolen free memory cycles", d.Moved)
	g.counter(prefix+"cycles_offered", "free memory cycles offered to the DMA engine", d.Offered)
	g.gauge(prefix+"words_pending", "words queued awaiting a free memory cycle",
		func() uint64 { return uint64(d.Pending()) })
	return g.err
}
