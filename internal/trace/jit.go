package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"mips/internal/cpu"
)

// JITLog is a bounded, drop-and-count log of JIT lifecycle events
// (cpu.JITEvent): trace formation, compilation, cold dispatch, reasoned
// guard exits, refusals, poisonings, invalidations. It follows the same
// observer contract as Tracer: Attach installs the CPU hook, the CPU
// goroutine is the single producer, and readers (Events, WriteJSONL,
// the telemetry server) take a short mutex to copy out. When the ring
// fills, the oldest events are overwritten and counted in Dropped —
// the log never blocks and never grows.
//
// Subscribers get a live feed through buffered channels; a slow
// subscriber loses events (counted per subscriber) rather than stalling
// the machine. Detached (no Attach), the CPU pays only a nil check.
type JITLog struct {
	mu      sync.Mutex
	buf     []cpu.JITEvent
	next    int    // ring write cursor
	filled  bool   // ring has wrapped at least once
	total   uint64 // events ever recorded
	dropped uint64 // events overwritten after wrap
	subs    map[*JITSink]bool
}

// JITSink is one subscriber's bounded live feed, mirroring the Tracer
// Sink contract: the producer's send never blocks, overflow is dropped
// and counted here.
type JITSink struct {
	ch      chan cpu.JITEvent
	dropped atomic.Uint64
}

// Events is the receive side of the sink.
func (s *JITSink) Events() <-chan cpu.JITEvent { return s.ch }

// Dropped counts events this sink missed because its buffer was full.
func (s *JITSink) Dropped() uint64 { return s.dropped.Load() }

// DefaultJITLogSize bounds the retained event window when callers do
// not choose one. Formation events are rare; guard exits dominate, and
// 4096 of them is minutes of steady state on the bench workloads.
const DefaultJITLogSize = 4096

// NewJITLog builds a log retaining up to size events (DefaultJITLogSize
// when size <= 0).
func NewJITLog(size int) *JITLog {
	if size <= 0 {
		size = DefaultJITLogSize
	}
	return &JITLog{buf: make([]cpu.JITEvent, size)}
}

// Attach installs the log as the CPU's JIT hook. One log may observe
// only one CPU at a time per the single-writer convention; attaching to
// a second CPU is fine once the first is done (the job service reuses
// logs across sequential jobs).
func (l *JITLog) Attach(c *cpu.CPU) {
	c.SetJITHook(l.Record)
}

// Record appends one event, overwriting (and counting) the oldest when
// the ring is full, then fans out to subscribers without blocking.
func (l *JITLog) Record(e cpu.JITEvent) {
	l.mu.Lock()
	if l.filled {
		l.dropped++
	}
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.filled = true
	}
	l.total++
	for s := range l.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
		}
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *JITLog) Events() []cpu.JITEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.filled {
		return append([]cpu.JITEvent(nil), l.buf[:l.next]...)
	}
	out := make([]cpu.JITEvent, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

// Len reports how many events are currently retained.
func (l *JITLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.buf)
	}
	return l.next
}

// Total reports how many events were ever recorded.
func (l *JITLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped reports how many events fell off the ring (the drop-and-count
// contract: bounded memory, honest accounting).
func (l *JITLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Subscribe returns a buffered live feed of future events
// (DefaultSinkBuffer when buffer <= 0). Sends never block: events
// beyond the buffer are dropped and counted against the sink, not the
// machine.
func (l *JITLog) Subscribe(buffer int) *JITSink {
	if buffer <= 0 {
		buffer = DefaultSinkBuffer
	}
	s := &JITSink{ch: make(chan cpu.JITEvent, buffer)}
	l.mu.Lock()
	if l.subs == nil {
		l.subs = make(map[*JITSink]bool)
	}
	l.subs[s] = true
	l.mu.Unlock()
	return s
}

// Subscribers reports how many sinks are attached (tests use it to
// sequence emits after a stream handler's subscribe).
func (l *JITLog) Subscribers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}

// Unsubscribe detaches a sink and closes its channel. Idempotent.
func (l *JITLog) Unsubscribe(s *JITSink) {
	l.mu.Lock()
	if l.subs[s] {
		delete(l.subs, s)
		close(s.ch)
	}
	l.mu.Unlock()
}

// JITEventJSON is the wire shape of one event, shared by the JSONL
// export, the telemetry endpoints, and the SSE stream.
type JITEventJSON struct {
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
	PC     uint32 `json:"pc"`
	Len    uint32 `json:"len,omitempty"`
	Heat   uint32 `json:"heat,omitempty"`
}

// MarshalJITEvent converts a cpu.JITEvent to its wire shape, decoding
// the reason byte per kind.
func MarshalJITEvent(e cpu.JITEvent) JITEventJSON {
	return JITEventJSON{
		Cycle:  e.Cycle,
		Kind:   e.Kind.String(),
		Reason: jitReason(e),
		PC:     e.PC,
		Len:    e.Len,
		Heat:   e.Heat,
	}
}

// jitReason decodes the per-kind reason byte; kinds without a reason
// axis return "".
func jitReason(e cpu.JITEvent) string {
	switch e.Kind {
	case cpu.JITGuardExit:
		return cpu.DeoptReason(e.Reason).String()
	case cpu.JITRefused, cpu.JITPoisoned:
		return cpu.FormRefusal(e.Reason).String()
	}
	return ""
}

// WriteJSONL writes the retained events as JSON lines, oldest first.
// This is the `mipsrun -jitlog` format: one self-describing object per
// line, greppable and jq-able.
func (l *JITLog) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.Events() {
		if err := enc.Encode(MarshalJITEvent(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeJSON exports the retained events as Chrome trace_event
// JSON on a dedicated JIT lane (cycles as microseconds, matching the
// Tracer export, so the two files line up when loaded side by side).
func (l *JITLog) WriteChromeJSON(w io.Writer) error {
	return WriteJITChromeJSON(w, l.Events())
}

// jitTid is the synthetic lane carrying JIT lifecycle instants in the
// Chrome export; it deliberately avoids the Tracer's process lanes and
// kernelTid.
const jitTid = 998

// WriteJITChromeJSON exports JIT events (oldest-first) as Chrome
// trace_event JSON loadable by Perfetto and chrome://tracing. Guard
// exits render as "deopt:<reason>" instants, refusals as
// "refuse:<reason>", so the reason taxonomy is visible directly in the
// timeline without opening args.
func WriteJITChromeJSON(w io.Writer, events []cpu.JITEvent) error {
	out := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePID, Tid: 0,
			Args: map[string]any{"name": "mips"}},
		{Name: "thread_name", Ph: "M", Pid: chromePID, Tid: jitTid,
			Args: map[string]any{"name": "jit (tier events)"}},
	}
	for _, e := range events {
		name := e.Kind.String()
		args := map[string]any{"pc": e.PC}
		if e.Len != 0 {
			args["len"] = e.Len
		}
		if e.Heat != 0 {
			args["heat"] = e.Heat
		}
		switch e.Kind {
		case cpu.JITGuardExit:
			name = "deopt:" + cpu.DeoptReason(e.Reason).String()
			args["reason"] = cpu.DeoptReason(e.Reason).String()
		case cpu.JITRefused:
			name = "refuse:" + cpu.FormRefusal(e.Reason).String()
			args["reason"] = cpu.FormRefusal(e.Reason).String()
		case cpu.JITPoisoned:
			name = "poisoned"
			args["reason"] = cpu.FormRefusal(e.Reason).String()
		}
		out = append(out, chromeEvent{Name: name, Ph: "i", Ts: e.Cycle,
			Pid: chromePID, Tid: jitTid, S: "t", Args: args})
	}
	return json.NewEncoder(w).Encode(chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock": "machine cycles as trace microseconds"},
	})
}

// JITTraceSite is the wire shape of one live trace's residency record:
// where it starts, how big it is, how often it runs, and how it deopts,
// with the entry PC symbolized against the profiler's images when one
// is available.
type JITTraceSite struct {
	EntryPC uint32            `json:"entry_pc"`
	EndPC   uint32            `json:"end_pc"`
	Symbol  string            `json:"symbol,omitempty"`
	Ops     int               `json:"ops"`
	Blocks  int               `json:"blocks"`
	Words   uint32            `json:"words"`
	Hits    uint64            `json:"hits"`
	Instrs  uint64            `json:"instrs"`
	Deopts  map[string]uint64 `json:"deopts,omitempty"`
}

// JITBlockSite is the block-tier counterpart: one live superblock's
// entry, size and execution count.
type JITBlockSite struct {
	EntryPC uint32 `json:"entry_pc"`
	Words   uint32 `json:"words"`
	Execs   uint64 `json:"execs"`
	Symbol  string `json:"symbol,omitempty"`
}

// JITSites is the per-PC tier heatmap served by /jit/traces: the live
// trace and block caches with residency counters, plus the global tier
// split so a reader can tell how much execution the listed sites cover.
type JITSites struct {
	Traces []JITTraceSite    `json:"traces"`
	Blocks []JITBlockSite    `json:"blocks"`
	Tiers  map[string]uint64 `json:"tiers"`
}

// CollectJITSites snapshots the CPU's live trace/block caches into the
// wire shape, sorted hottest-first. The profiler is optional; when
// present, entry PCs gain "symbol+offset" names (user image first, then
// kernel). Reading a running CPU requires cpu.ShareTraces, same as the
// telemetry server's other live reads.
func CollectJITSites(c *cpu.CPU, p *Profiler) JITSites {
	sites := JITSites{Tiers: make(map[string]uint64, int(cpu.NumTiers))}
	for t := cpu.Tier(0); t < cpu.NumTiers; t++ {
		sites.Tiers[t.String()] = c.Trans.TierInstr(t)
	}
	for _, s := range c.TraceSites() {
		js := JITTraceSite{
			EntryPC: s.EntryPC, EndPC: s.EndPC, Symbol: symbolize(p, s.EntryPC),
			Ops: s.Ops, Blocks: s.Blocks, Words: s.Words,
			Hits: s.Hits, Instrs: s.Instrs,
		}
		for r := cpu.DeoptReason(0); r < cpu.NumDeoptReasons; r++ {
			if n := s.Deopts[r]; n != 0 {
				if js.Deopts == nil {
					js.Deopts = make(map[string]uint64)
				}
				js.Deopts[r.String()] = n
			}
		}
		sites.Traces = append(sites.Traces, js)
	}
	for _, s := range c.BlockSites() {
		sites.Blocks = append(sites.Blocks, JITBlockSite{
			EntryPC: s.EntryPC, Words: s.Words, Execs: s.Execs,
			Symbol: symbolize(p, s.EntryPC),
		})
	}
	sort.Slice(sites.Traces, func(i, j int) bool {
		if sites.Traces[i].Hits != sites.Traces[j].Hits {
			return sites.Traces[i].Hits > sites.Traces[j].Hits
		}
		return sites.Traces[i].EntryPC < sites.Traces[j].EntryPC
	})
	sort.Slice(sites.Blocks, func(i, j int) bool {
		if sites.Blocks[i].Execs != sites.Blocks[j].Execs {
			return sites.Blocks[i].Execs > sites.Blocks[j].Execs
		}
		return sites.Blocks[i].EntryPC < sites.Blocks[j].EntryPC
	})
	return sites
}

func symbolize(p *Profiler, pc uint32) string {
	if p == nil {
		return ""
	}
	name, off, ok := p.Symbolize(pc, false)
	if !ok {
		name, off, ok = p.Symbolize(pc, true)
	}
	if !ok {
		return ""
	}
	if off == 0 {
		return name
	}
	return fmt.Sprintf("%s+%d", name, off)
}
