package trace

import "testing"

// TestSinkBoundedDrop is the deterministic half of the SSE backpressure
// guarantee: with no consumer draining, a sink holds exactly its buffer
// and counts every overflow instead of blocking the emitter.
func TestSinkBoundedDrop(t *testing.T) {
	tr := NewTracer(16)
	sink := tr.Subscribe(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindRetire, Cycle: uint64(i)})
	}
	if got := sink.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6 (10 emitted into a 4-slot buffer)", got)
	}
	if got := len(sink.ch); got != 4 {
		t.Fatalf("buffered = %d, want 4", got)
	}
	// The buffered prefix arrives in order with ring-consistent Seq.
	for i := 0; i < 4; i++ {
		e := <-sink.Events()
		if e.Seq != uint64(i) || e.Cycle != uint64(i) {
			t.Fatalf("event %d = seq %d cycle %d", i, e.Seq, e.Cycle)
		}
	}
	// The ring itself retained everything regardless of sink pressure.
	if got := tr.Ring().Total(); got != 10 {
		t.Fatalf("ring total = %d, want 10", got)
	}
}

func TestSinkSubscribeUnsubscribe(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Subscribe(8)
	b := tr.Subscribe(8)
	if got := tr.Subscribers(); got != 2 {
		t.Fatalf("subscribers = %d, want 2", got)
	}
	tr.Emit(Event{Kind: KindRetire})
	if len(a.ch) != 1 || len(b.ch) != 1 {
		t.Fatal("both sinks should receive the event")
	}
	tr.Unsubscribe(a)
	tr.Emit(Event{Kind: KindRetire})
	if len(a.ch) != 1 {
		t.Fatal("unsubscribed sink kept receiving")
	}
	if len(b.ch) != 2 {
		t.Fatal("remaining sink missed an event")
	}
	tr.Unsubscribe(b)
	if got := tr.Subscribers(); got != 0 {
		t.Fatalf("subscribers = %d, want 0", got)
	}
	// Emitting with no subscribers is the zero-cost path.
	tr.Emit(Event{Kind: KindRetire})
}
