package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/mem"
)

func jitEvent(kind cpu.JITEventKind, pc uint32, cycle uint64) cpu.JITEvent {
	return cpu.JITEvent{Kind: kind, PC: pc, Cycle: cycle}
}

// buildLoopCPU assembles a counted loop hot enough to form traces, on a
// bare machine with a trap-0 halt hook.
func buildLoopCPU(n int32) (*cpu.CPU, error) {
	back := isa.Branch(isa.CmpNE, isa.R(1), isa.Imm(0), "")
	back.Target = 2
	words := []isa.Piece{
		isa.LoadImm32(1, n),                         // 0
		isa.Mov(3, isa.Imm(5)),                      // 1
		isa.ALU(isa.OpAdd, 2, isa.R(2), isa.R(3)),   // 2: loop entry
		isa.ALU(isa.OpSub, 1, isa.R(1), isa.Imm(1)), // 3
		back,        // 4
		isa.Nop(),   // 5: branch delay
		isa.Trap(0), // 6
	}
	c := cpu.New(cpu.NewBus(mem.NewPhysical(1 << 16)))
	c.IMem = make([]isa.Instr, len(words))
	for i, p := range words {
		c.IMem[i] = isa.Word(p)
	}
	c.SetTrapHook(func(code uint16) {
		if code == 0 {
			c.Halt()
		}
	})
	return c, nil
}

func TestJITLogBoundedDropAndCount(t *testing.T) {
	l := NewJITLog(4)
	for i := 0; i < 10; i++ {
		l.Record(jitEvent(cpu.JITGuardExit, uint32(i), uint64(i)))
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want ring bound 4", got)
	}
	if got := l.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := l.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	ev := l.Events()
	if len(ev) != 4 || ev[0].PC != 6 || ev[3].PC != 9 {
		t.Errorf("Events = %+v, want oldest-first PCs 6..9", ev)
	}
}

func TestJITLogSubscribe(t *testing.T) {
	l := NewJITLog(16)
	sink := l.Subscribe(2)
	l.Record(jitEvent(cpu.JITFormed, 10, 1))
	l.Record(jitEvent(cpu.JITCompiled, 10, 2))
	l.Record(jitEvent(cpu.JITGuardExit, 10, 3)) // buffer full: dropped for the sink
	if e := <-sink.Events(); e.Kind != cpu.JITFormed {
		t.Errorf("first subscribed event = %v", e.Kind)
	}
	if e := <-sink.Events(); e.Kind != cpu.JITCompiled {
		t.Errorf("second subscribed event = %v", e.Kind)
	}
	select {
	case e := <-sink.Events():
		t.Errorf("slow subscriber received overflow event %v", e.Kind)
	default:
	}
	if got := sink.Dropped(); got != 1 {
		t.Errorf("sink Dropped = %d, want 1", got)
	}
	// The log itself retained everything regardless.
	if got := l.Len(); got != 3 {
		t.Errorf("log Len = %d, want 3", got)
	}
	l.Unsubscribe(sink)
	if _, ok := <-sink.Events(); ok {
		t.Error("channel not closed by Unsubscribe")
	}
	l.Unsubscribe(sink) // double-unsubscribe must be safe
	l.Record(jitEvent(cpu.JITInvalidated, 10, 4))
}

func TestJITLogAttachObservesMachine(t *testing.T) {
	c, err := buildLoopCPU(6000)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBlocks(true)
	c.SetTraces(true)
	l := NewJITLog(0)
	l.Attach(c)
	for i := 0; i < 1_000_000 && !c.Halted; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var kinds [8]int
	for _, e := range l.Events() {
		kinds[e.Kind]++
	}
	if kinds[cpu.JITFormed] == 0 || kinds[cpu.JITCompiled] == 0 || kinds[cpu.JITGuardExit] == 0 {
		t.Fatalf("lifecycle incomplete: formed=%d compiled=%d exits=%d",
			kinds[cpu.JITFormed], kinds[cpu.JITCompiled], kinds[cpu.JITGuardExit])
	}
}

func TestJITWriteJSONL(t *testing.T) {
	l := NewJITLog(16)
	l.Record(cpu.JITEvent{Kind: cpu.JITGuardExit, Reason: uint8(cpu.DeoptBranchDirection), Cycle: 7, PC: 2, Len: 5})
	l.Record(cpu.JITEvent{Kind: cpu.JITRefused, Reason: uint8(cpu.RefusalShadowBranch), Cycle: 9, PC: 3})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec JITEventJSON
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "guard_exit" || rec.Reason != "branch_direction" || rec.Cycle != 7 || rec.PC != 2 {
		t.Errorf("first record = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "refused" || rec.Reason != "shadow_branch" {
		t.Errorf("second record = %+v", rec)
	}
}

func TestJITWriteChromeJSON(t *testing.T) {
	l := NewJITLog(16)
	l.Record(cpu.JITEvent{Kind: cpu.JITFormed, Cycle: 1, PC: 2, Len: 3})
	l.Record(cpu.JITEvent{Kind: cpu.JITGuardExit, Reason: uint8(cpu.DeoptFault), Cycle: 5, PC: 2, Len: 1})
	var buf bytes.Buffer
	if err := l.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid trace JSON: %v", err)
	}
	var sawDeopt, sawFormed bool
	for _, e := range tr.TraceEvents {
		switch e.Name {
		case "deopt:fault":
			sawDeopt = true
		case "formed":
			sawFormed = true
		}
	}
	if !sawDeopt || !sawFormed {
		t.Errorf("missing named instants (deopt=%v formed=%v) in %v", sawDeopt, sawFormed, tr.TraceEvents)
	}
}

func TestCollectJITSites(t *testing.T) {
	c, err := buildLoopCPU(6000)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBlocks(true)
	c.SetTraces(true)
	for i := 0; i < 1_000_000 && !c.Halted; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sites := CollectJITSites(c, nil)
	if len(sites.Traces) == 0 {
		t.Fatal("no trace sites on a traced loop")
	}
	top := sites.Traces[0]
	if top.Hits == 0 || top.Instrs == 0 {
		t.Errorf("hottest site has no residency: %+v", top)
	}
	for i := 1; i < len(sites.Traces); i++ {
		if sites.Traces[i].Hits > sites.Traces[i-1].Hits {
			t.Fatal("trace sites not sorted hottest-first")
		}
	}
	if len(sites.Tiers) != int(cpu.NumTiers) {
		t.Errorf("tier map has %d entries, want %d", len(sites.Tiers), cpu.NumTiers)
	}
	var sum uint64
	for _, v := range sites.Tiers {
		sum += v
	}
	if sum != c.Stats.Instructions {
		t.Errorf("tier map sums to %d, want Instructions %d", sum, c.Stats.Instructions)
	}
}

func TestRegisterTranslationTaxonomy(t *testing.T) {
	r := NewRegistry()
	var ts cpu.TranslationStats
	if err := RegisterTranslation(r, "xlate.", &ts); err != nil {
		t.Fatal(err)
	}
	ts.TraceDeopts[cpu.DeoptBranchDirection] = 11
	ts.TraceFormRefusals[cpu.RefusalShadowBranch] = 5
	ts.TierInstrs[cpu.TierTraces] = 900
	ts.TracePoisoned = 2
	snap := r.Snapshot()
	checks := map[string]uint64{
		"xlate.trace.guard_exits.branch_direction": 11,
		"xlate.trace.refuse.shadow_branch":         5,
		"xlate.tier.traces":                        900,
		"xlate.trace.poisoned":                     2,
		"xlate.trace.deopt.environment":            0,
	}
	for name, want := range checks {
		got, ok := snap[name]
		if !ok {
			t.Errorf("series %q not registered", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
