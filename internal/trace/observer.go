package trace

import (
	"mips/internal/cpu"
	"mips/internal/isa"
	"mips/internal/kernel"
	"mips/internal/mem"
)

// Observer binds a Tracer and/or a Profiler to one simulated machine by
// installing the cpu/mem hook points. Either part may be nil; the hooks
// fan events out to whichever parts are present. Detaching restores the
// hook-free (zero-overhead) fast path.
type Observer struct {
	// Tracer, if non-nil, receives structured events.
	Tracer *Tracer
	// Profiler, if non-nil, accumulates cycle attribution.
	Profiler *Profiler

	c      *cpu.CPU
	pidFn  func() uint16
	curPID uint16

	// inKernel tracks whether execution is at exception level: set on
	// every exception entry, cleared on return from exception. The
	// profiler keeps kernel and user cycles in separate spaces because
	// their addresses overlap numerically.
	inKernel bool
}

// Attach installs the observer's hooks on a bare CPU. Any previously
// installed step/mem/branch/exception/rfe/stall hooks are replaced (the
// trap hook, which services monitor calls, is left alone).
func (o *Observer) Attach(c *cpu.CPU) {
	o.c = c
	c.SetStepHook(o.onStep)
	c.SetMemHook(o.onMem)
	c.SetBranchHook(o.onBranch)
	c.SetExcHook(o.onExc)
	c.SetRFEHook(o.onRFE)
	c.SetStallHook(o.onStall)
}

// AttachMachine installs the observer on a full kernel machine. Context
// switches are detected by polling the scheduler's current process on
// every exception return, so each event carries the PID of the process
// it belongs to (one Perfetto lane per process). The machine boots into
// the dispatch ROM, so execution starts at exception level.
func (o *Observer) AttachMachine(m *kernel.Machine) {
	o.Attach(m.CPU)
	o.pidFn = func() uint16 { return uint16(m.CurrentPID()) }
	o.inKernel = true
	if p := o.Profiler; p != nil {
		p.AddKernelImage(m.KernelImage())
	}
}

// AttachDMA makes the observer record a KindDMA event for every word
// the engine moves on a stolen free cycle.
func (o *Observer) AttachDMA(d *mem.DMA) {
	d.SetMoveHook(func(src, dst uint32) {
		if t := o.Tracer; t != nil {
			t.Emit(Event{Kind: KindDMA, Cycle: o.cycle(), PID: o.curPID, Addr: dst, Arg: src})
		}
	})
}

// Detach clears every hook the observer installed, restoring the
// zero-observer fast path.
func (o *Observer) Detach() {
	if o.c == nil {
		return
	}
	o.c.SetStepHook(nil)
	o.c.SetMemHook(nil)
	o.c.SetBranchHook(nil)
	o.c.SetExcHook(nil)
	o.c.SetRFEHook(nil)
	o.c.SetStallHook(nil)
	o.c = nil
}

func (o *Observer) cycle() uint64 { return o.c.Stats.Cycles }

func (o *Observer) onStep(pc uint32, in isa.Instr) {
	if t := o.Tracer; t != nil {
		t.retire(o.curPID, o.cycle(), pc, in)
	}
	if p := o.Profiler; p != nil {
		p.step(pc, in, o.inKernel)
	}
}

func (o *Observer) onMem(pc, addr uint32, store bool) {
	t := o.Tracer
	if t == nil {
		return
	}
	k := KindLoad
	if store {
		k = KindStore
	}
	t.Emit(Event{Kind: k, Cycle: o.cycle(), PID: o.curPID, PC: pc, Addr: addr})
}

func (o *Observer) onBranch(pc, target uint32, taken bool) {
	t := o.Tracer
	if t == nil || !taken {
		return
	}
	t.Emit(Event{Kind: KindBranch, Cycle: o.cycle(), PID: o.curPID, PC: pc, Addr: target, Arg: 1})
}

func (o *Observer) onExc(pc uint32, primary, secondary isa.Cause, trapCode uint16) {
	// The refill penalty interrupts the context that was running; charge
	// it there, then enter the kernel space.
	if p := o.Profiler; p != nil {
		p.exception(pc, o.inKernel)
	}
	o.inKernel = true
	t := o.Tracer
	if t == nil {
		return
	}
	cyc := o.cycle()
	t.Emit(Event{
		Kind: KindExcEnter, Cycle: cyc, PID: o.curPID, PC: pc,
		Arg: PackExcArg(uint8(primary), uint8(secondary), trapCode),
	})
	switch primary {
	case isa.CauseTrap:
		t.Emit(Event{Kind: KindSyscall, Cycle: cyc, PID: o.curPID, PC: pc, Arg: uint32(trapCode)})
	case isa.CausePageFault, isa.CauseSegFault:
		var addr uint32
		if f := o.c.Bus.LastFault; f != nil {
			addr = f.Addr
		}
		t.Emit(Event{Kind: KindPageFault, Cycle: cyc, PID: o.curPID, PC: pc, Addr: addr})
	}
}

func (o *Observer) onRFE(pc uint32) {
	o.inKernel = false
	if t := o.Tracer; t != nil {
		t.Emit(Event{Kind: KindExcExit, Cycle: o.cycle(), PID: o.curPID, PC: pc})
	}
	// The scheduler commits a context switch by returning into the new
	// process, so the exception return is the place to sample it.
	if o.pidFn != nil {
		if np := o.pidFn(); np != o.curPID {
			o.curPID = np
			if t := o.Tracer; t != nil {
				t.Emit(Event{Kind: KindSwitch, Cycle: o.cycle(), PID: np, PC: pc, Arg: uint32(np)})
			}
		}
	}
}

func (o *Observer) onStall(pc uint32) {
	if p := o.Profiler; p != nil {
		p.stall(pc, o.inKernel)
	}
}
