package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mips/internal/isa"
)

// Tracer records structured events into a ring buffer, optionally
// streaming the first N retired instructions as text (the legacy
// `mipsrun -trace N` format) and fanning events out to any live
// subscribers (the telemetry server's SSE endpoint).
type Tracer struct {
	ring *Ring

	stream   io.Writer
	streamN  uint64
	streamed uint64

	// subs is a copy-on-write subscriber list. The emit path pays one
	// atomic pointer load per event; with no subscriber that load reads
	// nil and nothing else happens, so attaching a tracer without a
	// live stream costs what it always did.
	subs  atomic.Pointer[[]*Sink]
	subMu sync.Mutex
}

// DefaultSinkBuffer is the per-subscriber event buffer used when
// Subscribe is given a non-positive size.
const DefaultSinkBuffer = 1024

// Sink is one bounded subscription to a tracer's live event stream.
// Delivery never blocks the emitting (simulation) goroutine: when the
// buffer is full the event is dropped and counted instead. The ring
// remains the complete record; a sink is a best-effort tail.
type Sink struct {
	ch      chan Event
	dropped atomic.Uint64
}

// Events returns the subscription channel. It is never closed; a
// consumer stops by unsubscribing and walking away.
func (s *Sink) Events() <-chan Event { return s.ch }

// Dropped returns how many events were discarded because the buffer was
// full when they were emitted.
func (s *Sink) Dropped() uint64 { return s.dropped.Load() }

func (s *Sink) offer(e Event) {
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
	}
}

// Subscribe attaches a new bounded sink receiving every event emitted
// from now on. buf is the channel buffer (DefaultSinkBuffer if not
// positive). Safe to call from any goroutine.
func (t *Tracer) Subscribe(buf int) *Sink {
	if buf <= 0 {
		buf = DefaultSinkBuffer
	}
	s := &Sink{ch: make(chan Event, buf)}
	t.subMu.Lock()
	defer t.subMu.Unlock()
	var cur []*Sink
	if p := t.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*Sink, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, s)
	t.subs.Store(&next)
	return s
}

// Unsubscribe detaches a sink. The sink's channel is left open (an
// in-flight non-blocking send must never panic); it simply stops
// receiving.
func (t *Tracer) Unsubscribe(s *Sink) {
	t.subMu.Lock()
	defer t.subMu.Unlock()
	p := t.subs.Load()
	if p == nil {
		return
	}
	next := make([]*Sink, 0, len(*p))
	for _, cur := range *p {
		if cur != s {
			next = append(next, cur)
		}
	}
	if len(next) == 0 {
		t.subs.Store(nil)
		return
	}
	t.subs.Store(&next)
}

// Subscribers returns the number of attached sinks.
func (t *Tracer) Subscribers() int {
	if p := t.subs.Load(); p != nil {
		return len(*p)
	}
	return 0
}

func (t *Tracer) publish(e Event) {
	if p := t.subs.Load(); p != nil {
		for _, s := range *p {
			s.offer(e)
		}
	}
}

// NewTracer returns a tracer over a fresh ring of the given capacity
// (DefaultRingCap if capacity is not positive).
func NewTracer(capacity int) *Tracer {
	return &Tracer{ring: NewRing(capacity)}
}

// StreamText makes the tracer print the first n retired instructions to
// w as they execute, one per line: sequence number, PC, disassembly.
func (t *Tracer) StreamText(w io.Writer, n uint64) {
	t.stream = w
	t.streamN = n
}

// Ring returns the underlying event ring.
func (t *Tracer) Ring() *Ring { return t.ring }

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event { return t.ring.Events() }

// Emit appends an event to the ring and fans it out to subscribers.
func (t *Tracer) Emit(e Event) {
	e.Seq = t.ring.Total() // Append assigns this same sequence number
	t.ring.Append(e)
	t.publish(e)
}

// retire records an instruction-retire event and feeds the text stream.
func (t *Tracer) retire(pid uint16, cycle uint64, pc uint32, in isa.Instr) {
	t.Emit(Event{Kind: KindRetire, Cycle: cycle, PC: pc, PID: pid})
	if t.stream != nil && t.streamed < t.streamN {
		fmt.Fprintf(t.stream, "%8d  pc=%-6d %s\n", t.streamed, pc, in)
		t.streamed++
	}
}

// WriteText dumps the retained events as human-readable text, one event
// per line, oldest first.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		if err := writeEventText(w, e); err != nil {
			return err
		}
	}
	if d := t.ring.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events dropped (ring capacity %d)\n", d, t.ring.Cap()); err != nil {
			return err
		}
	}
	return nil
}

func writeEventText(w io.Writer, e Event) error {
	var err error
	switch e.Kind {
	case KindRetire:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d retire     pc=%d\n", e.Seq, e.Cycle, e.PID, e.PC)
	case KindLoad, KindStore:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d %-10s pc=%d addr=%#x\n", e.Seq, e.Cycle, e.PID, e.Kind, e.PC, e.Addr)
	case KindBranch:
		taken := "not-taken"
		if e.Arg != 0 {
			taken = "taken"
		}
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d branch     pc=%d target=%d %s\n", e.Seq, e.Cycle, e.PID, e.PC, e.Addr, taken)
	case KindExcEnter:
		prim, sec, code := e.ExcCauses()
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d exc-enter  ret=%d cause=%s/%s code=%d\n",
			e.Seq, e.Cycle, e.PID, e.PC, isa.Cause(prim), isa.Cause(sec), code)
	case KindExcExit:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d exc-exit   resume=%d\n", e.Seq, e.Cycle, e.PID, e.PC)
	case KindPageFault:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d page-fault pc=%d addr=%#x\n", e.Seq, e.Cycle, e.PID, e.PC, e.Addr)
	case KindDMA:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d dma        src=%#x dst=%#x\n", e.Seq, e.Cycle, e.PID, e.Arg, e.Addr)
	case KindSwitch:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d switch     -> pid %d\n", e.Seq, e.Cycle, e.PID, e.Arg)
	case KindSyscall:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d syscall    pc=%d code=%d\n", e.Seq, e.Cycle, e.PID, e.PC, e.Arg)
	default:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d %s pc=%d addr=%#x arg=%d\n", e.Seq, e.Cycle, e.PID, e.Kind, e.PC, e.Addr, e.Arg)
	}
	return err
}
