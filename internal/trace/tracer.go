package trace

import (
	"fmt"
	"io"

	"mips/internal/isa"
)

// Tracer records structured events into a ring buffer, optionally
// streaming the first N retired instructions as text (the legacy
// `mipsrun -trace N` format).
type Tracer struct {
	ring *Ring

	stream   io.Writer
	streamN  uint64
	streamed uint64
}

// NewTracer returns a tracer over a fresh ring of the given capacity
// (DefaultRingCap if capacity is not positive).
func NewTracer(capacity int) *Tracer {
	return &Tracer{ring: NewRing(capacity)}
}

// StreamText makes the tracer print the first n retired instructions to
// w as they execute, one per line: sequence number, PC, disassembly.
func (t *Tracer) StreamText(w io.Writer, n uint64) {
	t.stream = w
	t.streamN = n
}

// Ring returns the underlying event ring.
func (t *Tracer) Ring() *Ring { return t.ring }

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event { return t.ring.Events() }

// Emit appends an event to the ring.
func (t *Tracer) Emit(e Event) { t.ring.Append(e) }

// retire records an instruction-retire event and feeds the text stream.
func (t *Tracer) retire(pid uint16, cycle uint64, pc uint32, in isa.Instr) {
	t.ring.Append(Event{Kind: KindRetire, Cycle: cycle, PC: pc, PID: pid})
	if t.stream != nil && t.streamed < t.streamN {
		fmt.Fprintf(t.stream, "%8d  pc=%-6d %s\n", t.streamed, pc, in)
		t.streamed++
	}
}

// WriteText dumps the retained events as human-readable text, one event
// per line, oldest first.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		if err := writeEventText(w, e); err != nil {
			return err
		}
	}
	if d := t.ring.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events dropped (ring capacity %d)\n", d, t.ring.Cap()); err != nil {
			return err
		}
	}
	return nil
}

func writeEventText(w io.Writer, e Event) error {
	var err error
	switch e.Kind {
	case KindRetire:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d retire     pc=%d\n", e.Seq, e.Cycle, e.PID, e.PC)
	case KindLoad, KindStore:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d %-10s pc=%d addr=%#x\n", e.Seq, e.Cycle, e.PID, e.Kind, e.PC, e.Addr)
	case KindBranch:
		taken := "not-taken"
		if e.Arg != 0 {
			taken = "taken"
		}
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d branch     pc=%d target=%d %s\n", e.Seq, e.Cycle, e.PID, e.PC, e.Addr, taken)
	case KindExcEnter:
		prim, sec, code := e.ExcCauses()
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d exc-enter  ret=%d cause=%s/%s code=%d\n",
			e.Seq, e.Cycle, e.PID, e.PC, isa.Cause(prim), isa.Cause(sec), code)
	case KindExcExit:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d exc-exit   resume=%d\n", e.Seq, e.Cycle, e.PID, e.PC)
	case KindPageFault:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d page-fault pc=%d addr=%#x\n", e.Seq, e.Cycle, e.PID, e.PC, e.Addr)
	case KindDMA:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d dma        src=%#x dst=%#x\n", e.Seq, e.Cycle, e.PID, e.Arg, e.Addr)
	case KindSwitch:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d switch     -> pid %d\n", e.Seq, e.Cycle, e.PID, e.Arg)
	case KindSyscall:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d syscall    pc=%d code=%d\n", e.Seq, e.Cycle, e.PID, e.PC, e.Arg)
	default:
		_, err = fmt.Fprintf(w, "%10d cyc=%-10d pid=%-2d %s pc=%d addr=%#x arg=%d\n", e.Seq, e.Cycle, e.PID, e.Kind, e.PC, e.Addr, e.Arg)
	}
	return err
}
