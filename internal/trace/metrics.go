package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a set of named metrics: owned counters and sampled gauges.
// The simulated layers (cpu, mem, kernel) are registered into one
// registry, replacing scattered per-layer accessors with a uniform
// snapshot/delta API. Sources are sampled only at Snapshot time, so a
// registered machine pays nothing while running.
type Registry struct {
	mu      sync.Mutex
	sources map[string]func() uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]func() uint64)}
}

// Counter is a registry-owned monotonic counter.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Counter registers and returns a new owned counter. Registering a
// duplicate name panics: metric names identify series across runs.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Gauge(name, c.Value)
	return c
}

// Gauge registers a sampled metric: fn is called at every Snapshot.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		panic(fmt.Sprintf("trace: duplicate metric %q", name))
	}
	r.sources[name] = fn
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot samples every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.sources))
	for n, fn := range r.sources {
		s[n] = fn()
	}
	return s
}

// Snapshot is one sample of a registry: metric name to value.
type Snapshot map[string]uint64

// Delta returns the per-metric change since prev (s minus prev). Metrics
// absent from prev are treated as starting at zero; metrics absent from
// s are omitted.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for n, v := range s {
		d[n] = v - prev[n]
	}
	return d
}

// WriteJSON serializes the snapshot as indented JSON with sorted keys,
// so identical snapshots produce identical bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadSnapshot deserializes a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}
