package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind classifies a registered metric for exposition (the
// Prometheus TYPE line served by internal/telemetry).
type MetricKind uint8

const (
	// MetricGauge is a level that may rise and fall (resident pages,
	// pending DMA words).
	MetricGauge MetricKind = iota
	// MetricCounter is a monotonically non-decreasing total (cycles,
	// instructions, page faults).
	MetricCounter
)

func (k MetricKind) String() string {
	if k == MetricCounter {
		return "counter"
	}
	return "gauge"
}

// metricSource is one registered series: the sampling function plus the
// exposition metadata.
type metricSource struct {
	fn   func() uint64
	kind MetricKind
	help string
}

// Registry is a set of named metrics: owned counters and sampled gauges.
// The simulated layers (cpu, mem, kernel) are registered into one
// registry, replacing scattered per-layer accessors with a uniform
// snapshot/delta API. Sources are sampled only at Snapshot time, so a
// registered machine pays nothing while running.
//
// Concurrency contract: each metric has a single writer — the goroutine
// running the simulation it measures. Snapshot may be called from any
// goroutine (the live telemetry server samples while the machine runs);
// owned Counters are fully synchronized via atomics, and the standard
// gauges registered by RegisterCPUStats read their fields with atomic
// loads, so concurrent samples are never torn. Gauges that sample
// through accessor methods (the kernel counters) are best-effort when
// read mid-run: values are monotonic but may lag by an update.
type Registry struct {
	mu      sync.Mutex
	sources map[string]metricSource
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]metricSource)}
}

// Counter is a registry-owned monotonic counter. It is safe for
// concurrent use: increments are atomic, and Value (sampled by
// Registry.Snapshot, possibly from the telemetry goroutine) is an
// atomic load.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Counter registers and returns a new owned counter. Registering a
// duplicate name panics: metric names identify series across runs.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(name, metricSource{fn: c.Value, kind: MetricCounter})
	return c
}

// Gauge registers a sampled level metric: fn is called at every
// Snapshot.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.register(name, metricSource{fn: fn, kind: MetricGauge})
}

// CounterFunc registers a sampled metric that is semantically a
// monotonic total — an externally-owned counter read at Snapshot time.
// The distinction from Gauge is exposition metadata only.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.register(name, metricSource{fn: fn, kind: MetricCounter})
}

func (r *Registry) register(name string, src metricSource) {
	if err := r.tryRegister(name, src); err != nil {
		panic(err.Error())
	}
}

// tryRegister installs a source, reporting a duplicate name as an error
// instead of panicking. The Register* helpers (register.go) build on it
// so attaching a whole machine twice is an explicit, recoverable error.
func (r *Registry) tryRegister(name string, src metricSource) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("trace: duplicate metric %q", name)
	}
	r.sources[name] = src
	return nil
}

// Registered reports whether a metric name is already taken.
func (r *Registry) Registered(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[name]
	return ok
}

// Unregister removes a metric, reporting whether it existed. Together
// with UnregisterPrefix it is the explicit swap path: re-registering a
// machine requires removing the old series first, so a silent overwrite
// can never splice two machines' histories into one series.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[name]
	delete(r.sources, name)
	return ok
}

// UnregisterPrefix removes every metric whose name starts with prefix
// and returns how many were removed.
func (r *Registry) UnregisterPrefix(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.sources {
		if strings.HasPrefix(name, prefix) {
			delete(r.sources, name)
			n++
		}
	}
	return n
}

// Describe attaches help text to a registered metric, surfaced as the
// HELP line of the Prometheus exposition. Describing an unregistered
// name is a no-op.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if src, ok := r.sources[name]; ok {
		src.help = help
		r.sources[name] = src
	}
}

// Meta returns a metric's kind and help text.
func (r *Registry) Meta(name string) (MetricKind, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src := r.sources[name]
	return src.kind, src.help
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot samples every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.sources))
	for n, src := range r.sources {
		s[n] = src.fn()
	}
	return s
}

// Snapshot is one sample of a registry: metric name to value.
type Snapshot map[string]uint64

// Delta returns the per-metric change since prev (s minus prev). The
// receiver is the newer snapshot; metrics absent from prev — counters
// registered after prev was taken, such as a new experiment source
// attached to a live telemetry server — are surfaced with their full
// value (they started at zero). Metrics absent from s are omitted. A
// metric that shrank reports 0 rather than a wrapped uint64: Delta is
// meant for monotonic series, and a rate of "absurdly huge" is strictly
// worse than "none" when a gauge dips between samples.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for n, v := range s {
		if p := prev[n]; v >= p {
			d[n] = v - p
		} else {
			d[n] = 0
		}
	}
	return d
}

// WriteJSON serializes the snapshot as indented JSON with sorted keys,
// so identical snapshots produce identical bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadSnapshot deserializes a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}
