package lang

import (
	"strings"
	"testing"
)

// runSrc interprets a program and returns its output.
func runSrc(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ip := &Interp{}
	out, err := ip.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll(`program P; { comment } (* another *)
var x: integer;
begin x := x + 'a'; if x <= 10 then x := 3 .. end.`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{
		KwProgram, Ident, Semi,
		KwVar, Ident, Colon, Ident, Semi,
		KwBegin, Ident, Assign, Ident, Plus, CharLit, Semi,
		KwIf, Ident, LE, IntLit, KwThen, Ident, Assign, IntLit, DotDot, KwEnd, Dot,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexerStringsAndEscapes(t *testing.T) {
	toks, err := LexAll(`'x' 'it''s' ''''`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != CharLit || toks[0].Val != 'x' {
		t.Errorf("char = %v", toks[0])
	}
	if toks[1].Kind != StrLit || toks[1].Text != "it's" {
		t.Errorf("string = %v", toks[1])
	}
	if toks[2].Kind != CharLit || toks[2].Val != '\'' {
		t.Errorf("quote = %v", toks[2])
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"{ unterminated", "'unterminated", "@", "99999999999"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) accepted bad input", src)
		}
	}
}

func TestHelloWorld(t *testing.T) {
	out := runSrc(t, `
program hello;
begin
  writechar('h'); writechar('i'); writeint(42)
end.`)
	if out != "hi42\n" {
		t.Errorf("out = %q", out)
	}
}

func TestArithmeticAndControl(t *testing.T) {
	out := runSrc(t, `
program arith;
var i, sum: integer;
begin
  sum := 0;
  for i := 1 to 10 do sum := sum + i;
  writeint(sum);                      { 55 }
  writeint(17 div 5); writeint(17 mod 5);
  writeint(-3 * 4);
  i := 0;
  while i < 3 do i := i + 1;
  writeint(i);
  repeat i := i - 1 until i = 0;
  writeint(i);
  for i := 5 downto 3 do writeint(i)
end.`)
	want := "55\n3\n2\n-12\n3\n0\n5\n4\n3\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestBooleansFullEvaluation(t *testing.T) {
	out := runSrc(t, `
program bools;
var found: boolean; rec, key, i: integer;
begin
  rec := 5; key := 5; i := 12;
  found := (rec = key) or (i = 13);
  if found then writeint(1) else writeint(0);
  found := (rec <> key) and (i < 13);
  if not found then writeint(2);
  if true and (1 < 2) or false then writeint(3)
end.`)
	if out != "1\n2\n3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := runSrc(t, `
program fib;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n
  else fib := fib(n - 1) + fib(n - 2)
end;
begin
  writeint(fib(10))
end.`)
	if out != "55\n" {
		t.Errorf("out = %q", out)
	}
}

func TestVarParameters(t *testing.T) {
	out := runSrc(t, `
program swapper;
var a, b: integer;
procedure swap(var x, y: integer);
var t: integer;
begin
  t := x; x := y; y := t
end;
begin
  a := 1; b := 2;
  swap(a, b);
  writeint(a); writeint(b)
end.`)
	if out != "2\n1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestArraysAndRecords(t *testing.T) {
	out := runSrc(t, `
program structs;
type
  vec = array[1..3] of integer;
  pt = record x, y: integer end;
var
  v: vec;
  p: pt;
  grid: array[0..2] of pt;
  i: integer;
begin
  for i := 1 to 3 do v[i] := i * i;
  writeint(v[1] + v[2] + v[3]);     { 14 }
  p.x := 7; p.y := 9;
  writeint(p.x + p.y);              { 16 }
  for i := 0 to 2 do begin
    grid[i].x := i; grid[i].y := 2 * i
  end;
  writeint(grid[2].x + grid[2].y)   { 6 }
end.`)
	if out != "14\n16\n6\n" {
		t.Errorf("out = %q", out)
	}
}

func TestPackedArraysAndChars(t *testing.T) {
	out := runSrc(t, `
program chars;
var
  buf: packed array[0..7] of char;
  i: integer;
begin
  buf[0] := 'o'; buf[1] := 'k';
  for i := 0 to 1 do writechar(buf[i]);
  writechar(chr(ord('a') + 1))
end.`)
	if out != "okb" {
		t.Errorf("out = %q", out)
	}
}

func TestStringConstants(t *testing.T) {
	out := runSrc(t, `
program msg;
const greeting = 'hey';
var i: integer;
begin
  for i := 0 to 2 do writechar(greeting[i])
end.`)
	if out != "hey" {
		t.Errorf("out = %q", out)
	}
}

func TestConstFolding(t *testing.T) {
	out := runSrc(t, `
program consts;
const n = 4; m = n * 2 + 1; neg = -3;
var a: array[0..m] of integer;
begin
  a[m] := n + neg;
  writeint(a[m]); writeint(m)
end.`)
	if out != "1\n9\n" {
		t.Errorf("out = %q", out)
	}
}

func TestHaltBuiltin(t *testing.T) {
	out := runSrc(t, `
program stopper;
begin
  writeint(1);
  halt;
  writeint(2)
end.`)
	if out != "1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIndexOutOfRangeCaught(t *testing.T) {
	prog, err := Parse(`
program oops;
var a: array[0..3] of integer; i: integer;
begin
  i := 9;
  a[i] := 1
end.`)
	if err != nil {
		t.Fatal(err)
	}
	ip := &Interp{}
	if _, err := ip.Run(prog); err == nil {
		t.Error("expected index range error")
	}
}

func TestDivisionByZeroCaught(t *testing.T) {
	prog, err := Parse(`
program oops;
var a, b: integer;
begin
  b := 0;
  a := 1 div b
end.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Interp{}).Run(prog); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestFuelLimit(t *testing.T) {
	prog, err := Parse(`
program spin;
var i: integer;
begin
  i := 1;
  while i > 0 do i := i + 0
end.`)
	if err != nil {
		t.Fatal(err)
	}
	ip := &Interp{Fuel: 1000}
	if _, err := ip.Run(prog); err != ErrFuel {
		t.Errorf("err = %v, want fuel exhaustion", err)
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		`program p; var x: integer; begin x := 'a' end.`,                    // char to int
		`program p; var x: boolean; begin x := 1 end.`,                      // int to bool
		`program p; var x: integer; begin x := 1 and 2 end.`,                // and on ints
		`program p; var x: integer; begin if x then x := 1 end.`,            // non-bool cond
		`program p; var x: integer; begin x := y end.`,                      // undefined
		`program p; var a: array[0..3] of integer; begin a := a end.`,       // composite assign
		`program p; var x: integer; begin x[0] := 1 end.`,                   // index non-array
		`program p; const c = 1; begin c := 2 end.`,                         // assign to const
		`program p; var x: integer; begin x := 1 < 'a' end.`,                // mixed compare
		`program p; function f: integer; begin f := 0 end; begin f(1) end.`, // arity
		`program p; var x, x: integer; begin end.`,                          // duplicate
		`program p; begin while 1 do halt end.`,                             // non-bool while
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted bad program: %s", src)
		}
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("program p;\nvar x integer;\nbegin end.")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestRefCountingWidths(t *testing.T) {
	src := `
program refs;
var
  c: char;
  n: integer;
  pbuf: packed array[0..3] of char;
  ubuf: array[0..3] of char;
begin
  n := 1;          { 32-bit store }
  c := 'x';        { char store: 32 word-alloc, 8 byte-alloc }
  pbuf[0] := c;    { 8-bit store either way (packed), plus char load }
  ubuf[0] := c;    { 32-bit word-alloc, 8-bit byte-alloc }
end.`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	count := func(mode AllocMode) (stores8, stores32, loads8, loads32 int) {
		ip := &Interp{Mode: mode}
		ip.OnRef = func(ev RefEvent) {
			switch {
			case ev.Store && ev.Bits == 8:
				stores8++
			case ev.Store:
				stores32++
			case ev.Bits == 8:
				loads8++
			default:
				loads32++
			}
		}
		if _, err := ip.Run(prog); err != nil {
			t.Fatal(err)
		}
		return
	}
	s8, s32, l8, l32 := count(WordAlloc)
	if s8 != 1 || s32 != 3 {
		t.Errorf("word-alloc stores: 8-bit %d (want 1), 32-bit %d (want 3)", s8, s32)
	}
	if l8 != 0 || l32 != 2 {
		t.Errorf("word-alloc loads: 8-bit %d (want 0), 32-bit %d (want 2)", l8, l32)
	}
	s8, s32, l8, l32 = count(ByteAlloc)
	if s8 != 3 || s32 != 1 {
		t.Errorf("byte-alloc stores: 8-bit %d (want 3), 32-bit %d (want 1)", s8, s32)
	}
	if l8 != 2 || l32 != 0 {
		t.Errorf("byte-alloc loads: 8-bit %d (want 2), 32-bit %d (want 0)", l8, l32)
	}
}

func TestRefCountingCharness(t *testing.T) {
	src := `
program p;
var c: char; b: boolean; n: integer;
begin
  c := 'a'; b := true; n := 1
end.`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var charRefs, total int
	ip := &Interp{Mode: ByteAlloc}
	ip.OnRef = func(ev RefEvent) {
		total++
		if ev.Char {
			charRefs++
		}
	}
	if _, err := ip.Run(prog); err != nil {
		t.Fatal(err)
	}
	if total != 3 || charRefs != 1 {
		t.Errorf("refs = %d, char refs = %d", total, charRefs)
	}
}

func TestSizeWordsAndOffsets(t *testing.T) {
	chars := &Type{Kind: TArray, Lo: 0, Hi: 9, Elem: CharType}
	packed := &Type{Kind: TArray, Lo: 0, Hi: 9, Elem: CharType, Packed: true}
	rec := &Type{Kind: TRecord, Fields: []Field{
		{Name: "a", Type: IntType},
		{Name: "b", Type: chars},
		{Name: "c", Type: CharType},
	}}
	if n := WordAlloc.SizeWords(chars); n != 10 {
		t.Errorf("word-alloc char array = %d words", n)
	}
	if n := ByteAlloc.SizeWords(chars); n != 3 {
		t.Errorf("byte-alloc char array = %d words", n)
	}
	if n := WordAlloc.SizeWords(packed); n != 3 {
		t.Errorf("packed char array = %d words", n)
	}
	if off := WordAlloc.FieldOffsetWords(rec, 2); off != 11 {
		t.Errorf("word-alloc field offset = %d", off)
	}
	if off := ByteAlloc.FieldOffsetWords(rec, 2); off != 4 {
		t.Errorf("byte-alloc field offset = %d", off)
	}
	// The paper: word-based global activation records average 20% larger.
	if WordAlloc.SizeWords(rec) <= ByteAlloc.SizeWords(rec) {
		t.Error("word allocation should be larger for char-heavy records")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	out := runSrc(t, `
PROGRAM Caps;
VAR X: INTEGER;
BEGIN
  X := 5;
  WriteInt(X)
END.`)
	if out != "5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionResultVariableIdiom(t *testing.T) {
	// Inside max, "max := a" assigns the result; "max(...)" recurses.
	out := runSrc(t, `
program maxer;
function max(a, b: integer): integer;
begin
  if a > b then max := a else max := b
end;
function max3(a, b, c: integer): integer;
begin
  max3 := max(max(a, b), c)
end;
begin
  writeint(max3(3, 9, 5))
end.`)
	if out != "9\n" {
		t.Errorf("out = %q", out)
	}
}
