package lang

// Parser parses and type-checks Pasqual in one pass: Pascal's
// declare-before-use rule makes the combined pass natural. The result is
// a fully resolved, typed AST.
type Parser struct {
	toks []Token
	pos  int

	prog    *Program
	globals map[string]*Object
	types   map[string]*Type
	procs   map[string]*ProcDecl

	// Current procedure scope (nil at program level).
	cur      *ProcDecl
	curScope map[string]*Object
}

// Parse parses a Pasqual program.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	toks = append(toks, Token{Kind: EOF})
	p := &Parser{
		toks:    toks,
		prog:    &Program{},
		globals: make(map[string]*Object),
		types:   make(map[string]*Type),
		procs:   make(map[string]*ProcDecl),
	}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *Parser) tok() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k Kind) bool {
	if p.tok().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.tok()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseProgram() error {
	if _, err := p.expect(KwProgram); err != nil {
		return err
	}
	name, err := p.expect(Ident)
	if err != nil {
		return err
	}
	p.prog.Name = name.Text
	if _, err := p.expect(Semi); err != nil {
		return err
	}
	for {
		switch p.tok().Kind {
		case KwConst:
			if err := p.parseConstSection(); err != nil {
				return err
			}
		case KwType:
			if err := p.parseTypeSection(); err != nil {
				return err
			}
		case KwVar:
			if err := p.parseVarSection(); err != nil {
				return err
			}
		case KwFunction, KwProcedure:
			if err := p.parseProcDecl(); err != nil {
				return err
			}
		default:
			body, err := p.parseBlock()
			if err != nil {
				return err
			}
			p.prog.Body = body
			if _, err := p.expect(Dot); err != nil {
				return err
			}
			return nil
		}
	}
}

// declare installs an object in the current scope.
func (p *Parser) declare(o *Object) error {
	scope := p.globals
	if p.curScope != nil {
		scope = p.curScope
	}
	if _, dup := scope[o.Name]; dup {
		return errf(o.Pos, "duplicate declaration of %s", o.Name)
	}
	if p.curScope == nil {
		if _, dup := p.types[o.Name]; dup {
			return errf(o.Pos, "%s already names a type", o.Name)
		}
		if _, dup := p.procs[o.Name]; dup {
			return errf(o.Pos, "%s already names a procedure", o.Name)
		}
	}
	scope[o.Name] = o
	return nil
}

// lookup resolves a name: current scope, then globals.
func (p *Parser) lookup(name string) (*Object, bool) {
	if p.curScope != nil {
		if o, ok := p.curScope[name]; ok {
			return o, true
		}
	}
	o, ok := p.globals[name]
	return o, ok
}

func (p *Parser) parseConstSection() error {
	p.next() // const
	for p.tok().Kind == Ident {
		name := p.next()
		if _, err := p.expect(Eq); err != nil {
			return err
		}
		o := &Object{Name: name.Text, Kind: ObjConst, Pos: name.Pos, Owner: p.cur}
		if p.tok().Kind == StrLit {
			s := p.next()
			o.IsStr = true
			o.StrVal = s.Text
			o.Type = &Type{Kind: TArray, Lo: 0, Hi: int32(len(s.Text) - 1), Elem: CharType, Packed: true}
		} else {
			v, typ, err := p.parseConstExpr()
			if err != nil {
				return err
			}
			o.ConstVal = v
			o.Type = typ
		}
		if err := p.declare(o); err != nil {
			return err
		}
		if p.cur == nil {
			p.prog.Consts = append(p.prog.Consts, o)
		}
		if _, err := p.expect(Semi); err != nil {
			return err
		}
	}
	return nil
}

// parseConstExpr evaluates a compile-time constant: literals, named
// constants, unary minus, and + - * between integers.
func (p *Parser) parseConstExpr() (int32, *Type, error) {
	v, typ, err := p.parseConstTerm()
	if err != nil {
		return 0, nil, err
	}
	for p.tok().Kind == Plus || p.tok().Kind == Minus || p.tok().Kind == Star {
		op := p.next()
		r, rt, err := p.parseConstTerm()
		if err != nil {
			return 0, nil, err
		}
		if typ != IntType || rt != IntType {
			return 0, nil, errf(op.Pos, "constant arithmetic needs integers")
		}
		switch op.Kind {
		case Plus:
			v += r
		case Minus:
			v -= r
		case Star:
			v *= r
		}
	}
	return v, typ, nil
}

func (p *Parser) parseConstTerm() (int32, *Type, error) {
	t := p.next()
	switch t.Kind {
	case IntLit:
		return t.Val, IntType, nil
	case CharLit:
		return t.Val, CharType, nil
	case KwTrue:
		return 1, BoolType, nil
	case KwFalse:
		return 0, BoolType, nil
	case Minus:
		v, typ, err := p.parseConstTerm()
		if err != nil {
			return 0, nil, err
		}
		if typ != IntType {
			return 0, nil, errf(t.Pos, "cannot negate %s constant", typ)
		}
		return -v, IntType, nil
	case Ident:
		o, ok := p.lookup(t.Text)
		if !ok || o.Kind != ObjConst || o.IsStr {
			return 0, nil, errf(t.Pos, "%s is not a scalar constant", t.Text)
		}
		return o.ConstVal, o.Type, nil
	}
	return 0, nil, errf(t.Pos, "expected constant, found %s", t)
}

func (p *Parser) parseTypeSection() error {
	p.next() // type
	for p.tok().Kind == Ident {
		name := p.next()
		if _, err := p.expect(Eq); err != nil {
			return err
		}
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		if _, dup := p.types[name.Text]; dup {
			return errf(name.Pos, "duplicate type %s", name.Text)
		}
		p.types[name.Text] = typ
		if _, err := p.expect(Semi); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseType() (*Type, error) {
	t := p.tok()
	switch t.Kind {
	case Ident:
		p.next()
		switch t.Text {
		case "integer":
			return IntType, nil
		case "char":
			return CharType, nil
		case "boolean":
			return BoolType, nil
		}
		typ, ok := p.types[t.Text]
		if !ok {
			return nil, errf(t.Pos, "unknown type %s", t.Text)
		}
		return typ, nil

	case KwPacked, KwArray:
		packed := p.accept(KwPacked)
		if _, err := p.expect(KwArray); err != nil {
			return nil, err
		}
		if _, err := p.expect(LBrack); err != nil {
			return nil, err
		}
		lo, lot, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(DotDot); err != nil {
			return nil, err
		}
		hi, hit, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		if lot != IntType || hit != IntType || hi < lo {
			return nil, errf(t.Pos, "bad array bounds [%d..%d]", lo, hi)
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
		if _, err := p.expect(KwOf); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &Type{Kind: TArray, Lo: lo, Hi: hi, Elem: elem, Packed: packed}, nil

	case KwRecord:
		p.next()
		rec := &Type{Kind: TRecord}
		for p.tok().Kind == Ident {
			names := []Token{p.next()}
			for p.accept(Comma) {
				n, err := p.expect(Ident)
				if err != nil {
					return nil, err
				}
				names = append(names, n)
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				if _, _, dup := rec.Field(n.Text); dup {
					return nil, errf(n.Pos, "duplicate field %s", n.Text)
				}
				rec.Fields = append(rec.Fields, Field{Name: n.Text, Type: ft})
			}
			if !p.accept(Semi) {
				break
			}
		}
		if _, err := p.expect(KwEnd); err != nil {
			return nil, err
		}
		return rec, nil
	}
	return nil, errf(t.Pos, "expected type, found %s", t)
}

func (p *Parser) parseVarSection() error {
	p.next() // var
	for p.tok().Kind == Ident {
		names := []Token{p.next()}
		for p.accept(Comma) {
			n, err := p.expect(Ident)
			if err != nil {
				return err
			}
			names = append(names, n)
		}
		if _, err := p.expect(Colon); err != nil {
			return err
		}
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		for _, n := range names {
			kind := ObjGlobal
			if p.cur != nil {
				kind = ObjLocal
			}
			o := &Object{Name: n.Text, Kind: kind, Pos: n.Pos, Type: typ, Owner: p.cur}
			if err := p.declare(o); err != nil {
				return err
			}
			if p.cur != nil {
				p.cur.Locals = append(p.cur.Locals, o)
			} else {
				p.prog.Globals = append(p.prog.Globals, o)
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseProcDecl() error {
	isFunc := p.tok().Kind == KwFunction
	kw := p.next()
	name, err := p.expect(Ident)
	if err != nil {
		return err
	}
	if _, dup := p.procs[name.Text]; dup {
		return errf(name.Pos, "duplicate procedure %s", name.Text)
	}
	if _, dup := p.globals[name.Text]; dup {
		return errf(name.Pos, "%s already declared", name.Text)
	}
	proc := &ProcDecl{Name: name.Text, Pos: kw.Pos}
	p.cur = proc
	p.curScope = make(map[string]*Object)

	if p.accept(LParen) {
		for {
			byRef := p.accept(KwVar)
			names := []Token{}
			n, err := p.expect(Ident)
			if err != nil {
				return err
			}
			names = append(names, n)
			for p.accept(Comma) {
				n, err := p.expect(Ident)
				if err != nil {
					return err
				}
				names = append(names, n)
			}
			if _, err := p.expect(Colon); err != nil {
				return err
			}
			typ, err := p.parseType()
			if err != nil {
				return err
			}
			if byRef && typ == nil {
				return errf(n.Pos, "var parameter needs a type")
			}
			for _, n := range names {
				o := &Object{Name: n.Text, Kind: ObjParam, Pos: n.Pos, Type: typ, ByRef: byRef, Owner: proc}
				if !byRef && !typ.Scalar() {
					// Composite value parameters would need copying; pass
					// them by reference explicitly, as the corpus does.
					return errf(n.Pos, "composite parameter %s must be a var parameter", n.Text)
				}
				if err := p.declare(o); err != nil {
					return err
				}
				proc.Params = append(proc.Params, o)
			}
			if !p.accept(Semi) {
				break
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return err
		}
	}

	if isFunc {
		if _, err := p.expect(Colon); err != nil {
			return err
		}
		rt, err := p.parseType()
		if err != nil {
			return err
		}
		if !rt.Scalar() {
			return errf(name.Pos, "function result must be scalar")
		}
		proc.Result = rt
		proc.ResultObj = &Object{Name: proc.Name, Kind: ObjLocal, Type: rt, Owner: proc}
	}
	if _, err := p.expect(Semi); err != nil {
		return err
	}

	// Register before the body so recursion resolves.
	p.procs[proc.Name] = proc
	p.prog.Procs = append(p.prog.Procs, proc)

	for p.tok().Kind == KwVar || p.tok().Kind == KwConst {
		if p.tok().Kind == KwVar {
			if err := p.parseVarSection(); err != nil {
				return err
			}
		} else {
			if err := p.parseConstSection(); err != nil {
				return err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	proc.Body = body
	if _, err := p.expect(Semi); err != nil {
		return err
	}
	p.cur = nil
	p.curScope = nil
	return nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(KwBegin); err != nil {
		return nil, err
	}
	stmts, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwEnd); err != nil {
		return nil, err
	}
	return stmts, nil
}

func (p *Parser) parseStmts() ([]Stmt, error) {
	var out []Stmt
	for {
		if k := p.tok().Kind; k == KwEnd || k == KwUntil || k == EOF {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
		if !p.accept(Semi) {
			return out, nil
		}
	}
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.tok()
	switch t.Kind {
	case KwBegin:
		stmts, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Stmts: stmts, Pos: t.Pos}, nil

	case KwIf:
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !cond.ExprType().Same(BoolType) {
			return nil, errf(t.Pos, "if condition must be boolean, got %s", cond.ExprType())
		}
		if _, err := p.expect(KwThen); err != nil {
			return nil, err
		}
		thenS, err := p.parseStmtAsList()
		if err != nil {
			return nil, err
		}
		var elseS []Stmt
		if p.accept(KwElse) {
			elseS, err = p.parseStmtAsList()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: thenS, Else: elseS, Pos: t.Pos}, nil

	case KwWhile:
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !cond.ExprType().Same(BoolType) {
			return nil, errf(t.Pos, "while condition must be boolean")
		}
		if _, err := p.expect(KwDo); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsList()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil

	case KwRepeat:
		p.next()
		body, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwUntil); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !cond.ExprType().Same(BoolType) {
			return nil, errf(t.Pos, "until condition must be boolean")
		}
		return &RepeatStmt{Body: body, Cond: cond, Pos: t.Pos}, nil

	case KwFor:
		p.next()
		vn, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		obj, ok := p.lookup(vn.Text)
		if !ok {
			return nil, errf(vn.Pos, "undefined variable %s", vn.Text)
		}
		if obj.Kind == ObjConst || obj.Type != IntType || obj.ByRef {
			return nil, errf(vn.Pos, "for variable must be a plain integer variable")
		}
		vexp := &VarExpr{exprBase: exprBase{T: IntType, Pos: vn.Pos}, Obj: obj}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		from, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		down := false
		switch p.tok().Kind {
		case KwTo:
			p.next()
		case KwDownto:
			p.next()
			down = true
		default:
			return nil, errf(p.tok().Pos, "expected to or downto")
		}
		to, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !from.ExprType().Same(IntType) || !to.ExprType().Same(IntType) {
			return nil, errf(t.Pos, "for bounds must be integers")
		}
		if _, err := p.expect(KwDo); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsList()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: vexp, From: from, To: to, Down: down, Body: body, Pos: t.Pos}, nil

	case Ident:
		// Assignment, procedure call, or builtin.
		return p.parseSimpleStmt()

	case Semi:
		return nil, nil
	}
	return nil, errf(t.Pos, "expected statement, found %s", t)
}

// parseStmtAsList parses a single statement as a one-element list,
// flattening compound statements.
func (p *Parser) parseStmtAsList() ([]Stmt, error) {
	if p.tok().Kind == KwBegin {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *Parser) parseSimpleStmt() (Stmt, error) {
	name := p.tok()
	// Builtin or user procedure call?
	if b := builtinByName(name.Text); b != NotBuiltin {
		p.next()
		call, err := p.parseCallArgs(name.Pos, nil, b)
		if err != nil {
			return nil, err
		}
		return &CallStmt{Call: call, Pos: name.Pos}, nil
	}
	if proc, ok := p.procs[name.Text]; ok {
		// A function used as a statement target may also be the result
		// assignment "f := expr" inside f itself.
		if !(p.cur != nil && p.cur.Name == name.Text && p.toks[p.pos+1].Kind == Assign) {
			p.next()
			call, err := p.parseCallArgs(name.Pos, proc, NotBuiltin)
			if err != nil {
				return nil, err
			}
			if proc.Result != nil {
				return nil, errf(name.Pos, "function %s called as a procedure", proc.Name)
			}
			return &CallStmt{Call: call, Pos: name.Pos}, nil
		}
	}

	lhs, err := p.parseDesignator()
	if err != nil {
		return nil, err
	}
	at, err := p.expect(Assign)
	if err != nil {
		return nil, err
	}
	if !isLValue(lhs) {
		return nil, errf(at.Pos, "left side of := is not assignable")
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !lhs.ExprType().Same(rhs.ExprType()) {
		return nil, errf(at.Pos, "cannot assign %s to %s", rhs.ExprType(), lhs.ExprType())
	}
	if !lhs.ExprType().Scalar() {
		return nil, errf(at.Pos, "composite assignment is not supported; copy elementwise")
	}
	if o := rootObject(lhs); o != nil && o.Kind == ObjConst {
		return nil, errf(at.Pos, "cannot assign to constant %s", o.Name)
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Pos: at.Pos}, nil
}

// rootObject returns the object at the base of a designator chain.
func rootObject(e Expr) *Object {
	for {
		switch ex := e.(type) {
		case *VarExpr:
			return ex.Obj
		case *IndexExpr:
			e = ex.Arr
		case *FieldExpr:
			e = ex.Rec
		default:
			return nil
		}
	}
}

func builtinByName(name string) Builtin {
	switch name {
	case "writeint":
		return BWriteInt
	case "writechar":
		return BWriteChar
	case "halt":
		return BHalt
	}
	return NotBuiltin
}

// parseCallArgs parses an argument list and checks it against the
// procedure or builtin signature.
func (p *Parser) parseCallArgs(pos Pos, proc *ProcDecl, b Builtin) (*CallExpr, error) {
	var args []Expr
	if p.accept(LParen) {
		if !p.accept(RParen) {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
		}
	}
	call := &CallExpr{Proc: proc, Builtin: b, Args: args}
	call.Pos = pos
	switch b {
	case BWriteInt:
		if len(args) != 1 || !args[0].ExprType().Same(IntType) {
			return nil, errf(pos, "writeint takes one integer")
		}
		return call, nil
	case BWriteChar:
		if len(args) != 1 || !args[0].ExprType().Same(CharType) {
			return nil, errf(pos, "writechar takes one char")
		}
		return call, nil
	case BHalt:
		if len(args) != 0 {
			return nil, errf(pos, "halt takes no arguments")
		}
		return call, nil
	}
	if len(args) != len(proc.Params) {
		return nil, errf(pos, "%s needs %d arguments, got %d", proc.Name, len(proc.Params), len(args))
	}
	for i, a := range args {
		param := proc.Params[i]
		if !a.ExprType().Same(param.Type) {
			return nil, errf(a.ExprPos(), "argument %d of %s: expected %s, got %s",
				i+1, proc.Name, param.Type, a.ExprType())
		}
		if param.ByRef && !isLValue(a) {
			return nil, errf(a.ExprPos(), "argument %d of %s must be a variable", i+1, proc.Name)
		}
	}
	if proc.Result != nil {
		call.T = proc.Result
	}
	return call, nil
}

func isLValue(e Expr) bool {
	switch v := e.(type) {
	case *VarExpr:
		return v.Obj.Kind != ObjConst
	case *IndexExpr, *FieldExpr:
		return true
	}
	return false
}
