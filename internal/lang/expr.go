package lang

// Expression parsing, with type checking inline.

// parseExpr parses expr = simple [relop simple].
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch p.tok().Kind {
	case Eq:
		op = OpEq
	case NE:
		op = OpNE
	case LT:
		op = OpLT
	case LE:
		op = OpLE
	case GT:
		op = OpGT
	case GE:
		op = OpGE
	default:
		return l, nil
	}
	t := p.next()
	r, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	lt, rt := l.ExprType(), r.ExprType()
	if !lt.Same(rt) || !lt.Scalar() {
		return nil, errf(t.Pos, "cannot compare %s with %s", lt, rt)
	}
	if lt.Same(BoolType) && op != OpEq && op != OpNE {
		return nil, errf(t.Pos, "booleans compare only with = and <>")
	}
	return &BinExpr{exprBase: exprBase{T: BoolType, Pos: t.Pos}, Op: op, L: l, R: r}, nil
}

// parseSimple parses ["+"|"-"] term { ("+"|"-"|"or") term }.
func (p *Parser) parseSimple() (Expr, error) {
	neg := false
	if p.tok().Kind == Plus {
		p.next()
	} else if p.tok().Kind == Minus {
		neg = true
	}
	var l Expr
	var err error
	if neg {
		t := p.next()
		l, err = p.parseTerm()
		if err != nil {
			return nil, err
		}
		if !l.ExprType().Same(IntType) {
			return nil, errf(t.Pos, "cannot negate %s", l.ExprType())
		}
		// Fold literal negation so constants keep their magnitudes.
		if lit, ok := l.(*IntExpr); ok {
			lit.Val = -lit.Val
		} else {
			l = &UnExpr{exprBase: exprBase{T: IntType, Pos: t.Pos}, Op: OpNeg, E: l}
		}
	} else {
		l, err = p.parseTerm()
		if err != nil {
			return nil, err
		}
	}
	for {
		var op BinOp
		switch p.tok().Kind {
		case Plus:
			op = OpAdd
		case Minus:
			op = OpSub
		case KwOr:
			op = OpOr
		default:
			return l, nil
		}
		t := p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if op == OpOr {
			if !l.ExprType().Same(BoolType) || !r.ExprType().Same(BoolType) {
				return nil, errf(t.Pos, "or needs boolean operands")
			}
			l = &BinExpr{exprBase: exprBase{T: BoolType, Pos: t.Pos}, Op: op, L: l, R: r}
		} else {
			if !l.ExprType().Same(IntType) || !r.ExprType().Same(IntType) {
				return nil, errf(t.Pos, "%s needs integer operands", op)
			}
			l = &BinExpr{exprBase: exprBase{T: IntType, Pos: t.Pos}, Op: op, L: l, R: r}
		}
	}
}

// parseTerm parses factor { ("*"|"div"|"mod"|"and") factor }.
func (p *Parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.tok().Kind {
		case Star:
			op = OpMul
		case KwDiv:
			op = OpDiv
		case KwMod:
			op = OpMod
		case KwAnd:
			op = OpAnd
		default:
			return l, nil
		}
		t := p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if op == OpAnd {
			if !l.ExprType().Same(BoolType) || !r.ExprType().Same(BoolType) {
				return nil, errf(t.Pos, "and needs boolean operands")
			}
			l = &BinExpr{exprBase: exprBase{T: BoolType, Pos: t.Pos}, Op: op, L: l, R: r}
		} else {
			if !l.ExprType().Same(IntType) || !r.ExprType().Same(IntType) {
				return nil, errf(t.Pos, "%s needs integer operands", op)
			}
			l = &BinExpr{exprBase: exprBase{T: IntType, Pos: t.Pos}, Op: op, L: l, R: r}
		}
	}
}

func (p *Parser) parseFactor() (Expr, error) {
	t := p.tok()
	switch t.Kind {
	case IntLit:
		p.next()
		return &IntExpr{exprBase: exprBase{T: IntType, Pos: t.Pos}, Val: t.Val}, nil
	case CharLit:
		p.next()
		return &CharExpr{exprBase: exprBase{T: CharType, Pos: t.Pos}, Val: t.Val}, nil
	case KwTrue:
		p.next()
		return &BoolExpr{exprBase: exprBase{T: BoolType, Pos: t.Pos}, Val: true}, nil
	case KwFalse:
		p.next()
		return &BoolExpr{exprBase: exprBase{T: BoolType, Pos: t.Pos}, Val: false}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case KwNot:
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if !e.ExprType().Same(BoolType) {
			return nil, errf(t.Pos, "not needs a boolean operand")
		}
		return &UnExpr{exprBase: exprBase{T: BoolType, Pos: t.Pos}, Op: OpNot, E: e}, nil
	case Ident:
		// ord/chr conversions, function calls, or designators.
		switch t.Text {
		case "ord":
			p.next()
			if _, err := p.expect(LParen); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			if !e.ExprType().Scalar() {
				return nil, errf(t.Pos, "ord needs a scalar")
			}
			return &UnExpr{exprBase: exprBase{T: IntType, Pos: t.Pos}, Op: OpOrd, E: e}, nil
		case "chr":
			p.next()
			if _, err := p.expect(LParen); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			if !e.ExprType().Same(IntType) {
				return nil, errf(t.Pos, "chr needs an integer")
			}
			return &UnExpr{exprBase: exprBase{T: CharType, Pos: t.Pos}, Op: OpChr, E: e}, nil
		}
		if proc, ok := p.procs[t.Text]; ok && proc.Result != nil {
			// Function call — but inside the function itself, a bare
			// reference to the name is the result variable.
			if !(p.cur != nil && p.cur.Name == t.Text && p.toks[p.pos+1].Kind != LParen) {
				p.next()
				return p.parseCallArgs(t.Pos, proc, NotBuiltin)
			}
		}
		return p.parseDesignator()
	}
	return nil, errf(t.Pos, "expected expression, found %s", t)
}

// parseDesignator parses ident { "[" expr "]" | "." ident } as an
// expression; the result is addressable unless it names a constant.
func (p *Parser) parseDesignator() (Expr, error) {
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	var e Expr
	if p.cur != nil && p.cur.ResultObj != nil && name.Text == p.cur.Name {
		e = &VarExpr{exprBase: exprBase{T: p.cur.Result, Pos: name.Pos}, Obj: p.cur.ResultObj}
	} else {
		obj, ok := p.lookup(name.Text)
		if !ok {
			return nil, errf(name.Pos, "undefined identifier %s", name.Text)
		}
		if obj.Kind == ObjConst && !obj.IsStr && p.tok().Kind != LBrack {
			// Scalar constants fold to literals.
			switch obj.Type.Kind {
			case TChar:
				return &CharExpr{exprBase: exprBase{T: CharType, Pos: name.Pos}, Val: obj.ConstVal}, nil
			case TBool:
				return &BoolExpr{exprBase: exprBase{T: BoolType, Pos: name.Pos}, Val: obj.ConstVal != 0}, nil
			default:
				return &IntExpr{exprBase: exprBase{T: IntType, Pos: name.Pos}, Val: obj.ConstVal}, nil
			}
		}
		e = &VarExpr{exprBase: exprBase{T: obj.Type, Pos: name.Pos}, Obj: obj}
	}
	for {
		switch p.tok().Kind {
		case LBrack:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !idx.ExprType().Same(IntType) {
				return nil, errf(idx.ExprPos(), "array index must be an integer")
			}
			at := e.ExprType()
			if at.Kind != TArray {
				return nil, errf(e.ExprPos(), "indexing a non-array %s", at)
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			e = &IndexExpr{exprBase: exprBase{T: at.Elem, Pos: name.Pos}, Arr: e, Idx: idx}
		case Dot:
			p.next()
			fn, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			rt := e.ExprType()
			if rt.Kind != TRecord {
				return nil, errf(fn.Pos, "selecting a field of non-record %s", rt)
			}
			f, idx, ok := rt.Field(fn.Text)
			if !ok {
				return nil, errf(fn.Pos, "no field %s in %s", fn.Text, rt)
			}
			e = &FieldExpr{exprBase: exprBase{T: f.Type, Pos: fn.Pos}, Rec: e, Field: fn.Text, FieldIndex: idx}
		default:
			return e, nil
		}
	}
}
