package lang

// Program is a parsed Pasqual compilation unit.
type Program struct {
	Name    string
	Consts  []*Object // IsConst objects, including string constants
	Globals []*Object
	Procs   []*ProcDecl
	Body    []Stmt // main program body
}

// Proc returns the named procedure or function.
func (p *Program) Proc(name string) *ProcDecl {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// ObjKind classifies a named object.
type ObjKind uint8

const (
	ObjGlobal ObjKind = iota
	ObjLocal
	ObjParam
	ObjConst
)

// Object is a declared name: a global, a local, a parameter, or a
// constant. The checker resolves every identifier to its Object.
type Object struct {
	Name string
	Kind ObjKind
	Pos  Pos
	Type *Type

	// ByRef marks a var parameter.
	ByRef bool
	// Owner is the declaring procedure (nil for globals and global
	// constants).
	Owner *ProcDecl

	// Constant value (Kind == ObjConst): a scalar or a string.
	ConstVal int32
	IsStr    bool
	StrVal   string
}

// ProcDecl is a procedure or function declaration.
type ProcDecl struct {
	Name   string
	Pos    Pos
	Params []*Object
	Result *Type // nil for procedures
	Locals []*Object
	Body   []Stmt

	// ResultObj is the pseudo-local holding the function result
	// (assigned by Pascal's "name := expr" idiom).
	ResultObj *Object
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Expr is an expression node; the checker fills in its type.
type Expr interface {
	ExprType() *Type
	ExprPos() Pos
}

type exprBase struct {
	T   *Type
	Pos Pos
}

func (e *exprBase) ExprType() *Type { return e.T }
func (e *exprBase) ExprPos() Pos    { return e.Pos }

// Statements.

// AssignStmt is "lhs := rhs". LHS is a VarExpr, IndexExpr, or FieldExpr.
type AssignStmt struct {
	LHS, RHS Expr
	Pos      Pos
}

// IfStmt is "if cond then Then [else Else]".
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil if absent
	Pos  Pos
}

// WhileStmt is "while cond do body".
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// RepeatStmt is "repeat body until cond".
type RepeatStmt struct {
	Body []Stmt
	Cond Expr
	Pos  Pos
}

// ForStmt is "for v := from to|downto limit do body".
type ForStmt struct {
	Var      *VarExpr
	From, To Expr
	Down     bool
	Body     []Stmt
	Pos      Pos
}

// CallStmt invokes a procedure (or a builtin).
type CallStmt struct {
	Call *CallExpr
	Pos  Pos
}

// BlockStmt is a begin..end compound statement.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

func (*BlockStmt) stmt() {}

func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*RepeatStmt) stmt() {}
func (*ForStmt) stmt()    {}
func (*CallStmt) stmt()   {}

// Expressions.

// IntExpr is an integer literal or folded constant.
type IntExpr struct {
	exprBase
	Val int32
}

// CharExpr is a character literal.
type CharExpr struct {
	exprBase
	Val int32
}

// BoolExpr is true or false.
type BoolExpr struct {
	exprBase
	Val bool
}

// VarExpr references a variable, parameter, or named constant.
type VarExpr struct {
	exprBase
	Obj *Object
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	exprBase
	Arr Expr
	Idx Expr
}

// FieldExpr is rec.field.
type FieldExpr struct {
	exprBase
	Rec        Expr
	Field      string
	FieldIndex int
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpEq
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

var binOpNames = [...]string{
	"+", "-", "*", "div", "mod", "and", "or",
	"=", "<>", "<", "<=", ">", ">=",
}

func (op BinOp) String() string { return binOpNames[op] }

// Relational reports whether the operator compares operands.
func (op BinOp) Relational() bool { return op >= OpEq }

// BinExpr is a binary operation.
type BinExpr struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

const (
	OpNeg UnOp = iota
	OpNot
	// OpOrd and OpChr are the ordinal conversions; they are free at the
	// machine level.
	OpOrd
	OpChr
)

func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "not"
	case OpOrd:
		return "ord"
	case OpChr:
		return "chr"
	}
	return "?"
}

// UnExpr is a unary operation.
type UnExpr struct {
	exprBase
	Op UnOp
	E  Expr
}

// Builtin identifies an intrinsic procedure.
type Builtin uint8

const (
	NotBuiltin Builtin = iota
	BWriteInt          // writeint(i): print a signed integer and newline
	BWriteChar         // writechar(c): print a character
	BHalt              // halt: stop the program
)

// CallExpr invokes a function, procedure, or builtin.
type CallExpr struct {
	exprBase
	Proc    *ProcDecl // nil for builtins
	Builtin Builtin
	Args    []Expr
}
