package lang

import (
	"fmt"
	"strings"
)

// TypeKind classifies a Pasqual type.
type TypeKind uint8

const (
	TInt TypeKind = iota
	TChar
	TBool
	TArray
	TRecord
)

// Type describes a Pasqual type. Types are canonical: the basic types
// are singletons and composite types compare structurally via Same.
type Type struct {
	Kind TypeKind

	// Array fields.
	Lo, Hi int32 // index range, inclusive
	Elem   *Type
	Packed bool

	// Record fields.
	Fields []Field
}

// Field is one record field.
type Field struct {
	Name string
	Type *Type
}

// The basic types.
var (
	IntType  = &Type{Kind: TInt}
	CharType = &Type{Kind: TChar}
	BoolType = &Type{Kind: TBool}
)

// Len returns the number of elements of an array type.
func (t *Type) Len() int32 { return t.Hi - t.Lo + 1 }

// Scalar reports whether the type fits a register.
func (t *Type) Scalar() bool {
	return t.Kind == TInt || t.Kind == TChar || t.Kind == TBool
}

// ByteSized reports whether values of this type occupy one byte when
// byte allocation applies (characters and booleans; paper §4.1).
func (t *Type) ByteSized() bool { return t.Kind == TChar || t.Kind == TBool }

// Field returns the named record field and its index.
func (t *Type) Field(name string) (Field, int, bool) {
	for i, f := range t.Fields {
		if f.Name == name {
			return f, i, true
		}
	}
	return Field{}, 0, false
}

// Same reports structural type identity.
func (t *Type) Same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TInt, TChar, TBool:
		return true
	case TArray:
		return t.Lo == o.Lo && t.Hi == o.Hi && t.Packed == o.Packed && t.Elem.Same(o.Elem)
	case TRecord:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Same(o.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}

func (t *Type) String() string {
	switch t.Kind {
	case TInt:
		return "integer"
	case TChar:
		return "char"
	case TBool:
		return "boolean"
	case TArray:
		p := ""
		if t.Packed {
			p = "packed "
		}
		return fmt.Sprintf("%sarray[%d..%d] of %s", p, t.Lo, t.Hi, t.Elem)
	case TRecord:
		var b strings.Builder
		b.WriteString("record ")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %s", f.Name, f.Type)
		}
		b.WriteString(" end")
		return b.String()
	}
	return "?"
}

// AllocMode selects how characters and booleans are laid out in memory:
// the word-allocated versus byte-allocated program versions of the
// paper's Tables 7 and 8.
type AllocMode uint8

const (
	// WordAlloc allocates every object as a full word unless it occurs
	// in a packed structure (Table 7).
	WordAlloc AllocMode = iota
	// ByteAlloc allocates all characters and booleans as bytes
	// (Table 8).
	ByteAlloc
	// WideAlloc allocates every element as a full word, even in packed
	// structures — the layout for target machines without byte
	// insert/extract instructions (the condition-code baseline).
	WideAlloc
)

func (m AllocMode) String() string {
	switch m {
	case ByteAlloc:
		return "byte-allocated"
	case WideAlloc:
		return "wide-allocated"
	}
	return "word-allocated"
}

// ElemBytePacked reports whether elements of the array are stored as
// bytes under the mode: packed char/boolean arrays always are (except
// under WideAlloc); unpacked ones only under byte allocation.
func (m AllocMode) ElemBytePacked(arr *Type) bool {
	if arr.Kind != TArray || !arr.Elem.ByteSized() || m == WideAlloc {
		return false
	}
	return arr.Packed || m == ByteAlloc
}

// SizeWords returns the memory size of a type in words under the mode.
func (m AllocMode) SizeWords(t *Type) int32 {
	switch t.Kind {
	case TInt, TChar, TBool:
		return 1
	case TArray:
		if m.ElemBytePacked(t) {
			return (t.Len() + 3) / 4
		}
		return t.Len() * m.SizeWords(t.Elem)
	case TRecord:
		var n int32
		for _, f := range t.Fields {
			n += m.SizeWords(f.Type)
		}
		return n
	}
	return 1
}

// FieldOffsetWords returns the word offset of record field index i.
func (m AllocMode) FieldOffsetWords(t *Type, i int) int32 {
	var off int32
	for j := 0; j < i; j++ {
		off += m.SizeWords(t.Fields[j].Type)
	}
	return off
}
