package lang

import "strings"

// Lexer tokenizes Pasqual source. Comments are { ... } or (* ... *);
// identifiers and keywords are case-insensitive, as in Pascal.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over the source.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '{':
			start := lx.pos()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return errf(start, "unterminated comment")
				}
				if lx.advance() == '}' {
					break
				}
			}
		case c == '(' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return errf(start, "unterminated comment")
				}
				if lx.advance() == '*' && lx.peek() == ')' {
					lx.advance()
					break
				}
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isDigit(c):
		var v int64
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			v = v*10 + int64(lx.advance()-'0')
			if v > 1<<31 {
				return Token{}, errf(pos, "integer literal too large")
			}
		}
		return Token{Kind: IntLit, Pos: pos, Val: int32(v)}, nil

	case isLetter(c):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		word := lx.src[start:lx.off]
		if k, ok := keywords[strings.ToLower(word)]; ok {
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{Kind: Ident, Pos: pos, Text: strings.ToLower(word)}, nil

	case c == '\'':
		// Pascal string/char literal; '' escapes a quote.
		lx.advance()
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "unterminated string")
			}
			ch := lx.advance()
			if ch == '\'' {
				if lx.peek() == '\'' {
					lx.advance()
					b.WriteByte('\'')
					continue
				}
				break
			}
			if ch == '\n' {
				return Token{}, errf(pos, "newline in string")
			}
			b.WriteByte(ch)
		}
		s := b.String()
		if len(s) == 1 {
			return Token{Kind: CharLit, Pos: pos, Val: int32(s[0])}, nil
		}
		return Token{Kind: StrLit, Pos: pos, Text: s}, nil
	}

	lx.advance()
	two := func(k Kind) (Token, error) {
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	switch c {
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '=':
		return Token{Kind: Eq, Pos: pos}, nil
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '[':
		return Token{Kind: LBrack, Pos: pos}, nil
	case ']':
		return Token{Kind: RBrack, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case '<':
		switch lx.peek() {
		case '>':
			return two(NE)
		case '=':
			return two(LE)
		}
		return Token{Kind: LT, Pos: pos}, nil
	case '>':
		if lx.peek() == '=' {
			return two(GE)
		}
		return Token{Kind: GT, Pos: pos}, nil
	case ':':
		if lx.peek() == '=' {
			return two(Assign)
		}
		return Token{Kind: Colon, Pos: pos}, nil
	case '.':
		if lx.peek() == '.' {
			return two(DotDot)
		}
		return Token{Kind: Dot, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", c)
}

// LexAll tokenizes the whole source (EOF token excluded).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}
