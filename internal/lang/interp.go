package lang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// RefEvent describes one data memory reference during interpretation:
// the raw material of the paper's Tables 7 and 8.
type RefEvent struct {
	Store bool
	Bits  int  // 8 or 32
	Char  bool // reference to a character object
}

// ErrFuel is returned when the step budget is exhausted.
var ErrFuel = errors.New("lang: interpreter fuel exhausted")

// errHalt is the internal signal for the halt builtin.
var errHalt = errors.New("halt")

// Interp executes a checked program directly. It is the semantic
// reference for the machine backends (differential testing) and the
// instrument behind the data-reference tables: OnRef sees every load
// and store with its width under the chosen allocation mode.
type Interp struct {
	// Mode selects word or byte allocation for reference accounting.
	Mode AllocMode
	// OnRef, if set, observes every data reference.
	OnRef func(RefEvent)
	// Fuel bounds execution steps (0 means a default of 50 million).
	Fuel int64

	out  strings.Builder
	prog *Program

	globals map[*Object]*value
	fuel    int64
}

// value is a variable's storage: a scalar cell or a flattened composite.
type value struct {
	scalar int32
	comp   []int32
}

// slot is an lvalue: a storage location plus the element type that
// determines reference width.
type slot struct {
	val *value
	idx int // index into comp, or -1 for scalar
	typ *Type
}

func (s slot) get() int32 {
	if s.idx < 0 {
		return s.val.scalar
	}
	return s.val.comp[s.idx]
}

func (s slot) set(v int32) {
	if s.idx < 0 {
		s.val.scalar = v
	} else {
		s.val.comp[s.idx] = v
	}
}

// frame is a procedure activation.
type frame struct {
	proc   *ProcDecl
	vars   map[*Object]*value
	refs   map[*Object]slot // var-parameter aliases
	result int32
}

// Run interprets the program and returns its console output.
func (ip *Interp) Run(p *Program) (string, error) {
	ip.prog = p
	ip.out.Reset()
	ip.globals = make(map[*Object]*value, len(p.Globals))
	for _, g := range p.Globals {
		ip.globals[g] = newValue(g.Type)
	}
	ip.fuel = ip.Fuel
	if ip.fuel == 0 {
		ip.fuel = 50_000_000
	}
	err := ip.stmts(nil, p.Body)
	if errors.Is(err, errHalt) {
		err = nil
	}
	return ip.out.String(), err
}

// Output returns the output accumulated so far (useful after an error).
func (ip *Interp) Output() string { return ip.out.String() }

func newValue(t *Type) *value {
	if t.Scalar() {
		return &value{}
	}
	return &value{comp: make([]int32, cellCount(t))}
}

// cellCount flattens composites to logical cells (one per scalar
// element, independent of byte packing).
func cellCount(t *Type) int32 {
	switch t.Kind {
	case TArray:
		return t.Len() * cellCount(t.Elem)
	case TRecord:
		var n int32
		for _, f := range t.Fields {
			n += cellCount(f.Type)
		}
		return n
	}
	return 1
}

// cellOffset returns the flattened cell offset of record field i.
func cellOffset(t *Type, i int) int32 {
	var off int32
	for j := 0; j < i; j++ {
		off += cellCount(t.Fields[j].Type)
	}
	return off
}

func (ip *Interp) burn() error {
	ip.fuel--
	if ip.fuel <= 0 {
		return ErrFuel
	}
	return nil
}

// refWidth returns the access width in bits for an element of type t
// reached through container ct (nil for scalars).
func (ip *Interp) refWidth(t *Type, packedContainer bool) int {
	if !t.ByteSized() {
		return 32
	}
	if packedContainer || ip.Mode == ByteAlloc {
		return 8
	}
	return 32
}

func (ip *Interp) noteRef(store bool, t *Type, packedContainer bool) {
	if ip.OnRef == nil {
		return
	}
	ip.OnRef(RefEvent{
		Store: store,
		Bits:  ip.refWidth(t, packedContainer),
		Char:  t.Kind == TChar,
	})
}

// stmts executes a statement list.
func (ip *Interp) stmts(fr *frame, list []Stmt) error {
	for _, s := range list {
		if err := ip.stmt(fr, s); err != nil {
			return err
		}
	}
	return nil
}

func (ip *Interp) stmt(fr *frame, s Stmt) error {
	if err := ip.burn(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *BlockStmt:
		return ip.stmts(fr, st.Stmts)

	case *AssignStmt:
		v, err := ip.eval(fr, st.RHS)
		if err != nil {
			return err
		}
		sl, packed, err := ip.lvalue(fr, st.LHS)
		if err != nil {
			return err
		}
		sl.set(v)
		ip.noteRef(true, sl.typ, packed)
		return nil

	case *IfStmt:
		c, err := ip.eval(fr, st.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return ip.stmts(fr, st.Then)
		}
		return ip.stmts(fr, st.Else)

	case *WhileStmt:
		for {
			c, err := ip.eval(fr, st.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := ip.stmts(fr, st.Body); err != nil {
				return err
			}
			if err := ip.burn(); err != nil {
				return err
			}
		}

	case *RepeatStmt:
		for {
			if err := ip.stmts(fr, st.Body); err != nil {
				return err
			}
			c, err := ip.eval(fr, st.Cond)
			if err != nil {
				return err
			}
			if c != 0 {
				return nil
			}
			if err := ip.burn(); err != nil {
				return err
			}
		}

	case *ForStmt:
		from, err := ip.eval(fr, st.From)
		if err != nil {
			return err
		}
		to, err := ip.eval(fr, st.To)
		if err != nil {
			return err
		}
		sl, packed, err := ip.lvalue(fr, st.Var)
		if err != nil {
			return err
		}
		sl.set(from)
		ip.noteRef(true, sl.typ, packed)
		for {
			cur := sl.get()
			ip.noteRef(false, sl.typ, packed)
			if st.Down && cur < to || !st.Down && cur > to {
				return nil
			}
			if err := ip.stmts(fr, st.Body); err != nil {
				return err
			}
			cur = sl.get()
			ip.noteRef(false, sl.typ, packed)
			if st.Down {
				cur--
			} else {
				cur++
			}
			sl.set(cur)
			ip.noteRef(true, sl.typ, packed)
			if err := ip.burn(); err != nil {
				return err
			}
		}

	case *CallStmt:
		_, err := ip.call(fr, st.Call)
		return err
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

// lvalue resolves an addressable expression to a storage slot. The
// second result reports whether the slot sits in a packed container.
func (ip *Interp) lvalue(fr *frame, e Expr) (slot, bool, error) {
	switch ex := e.(type) {
	case *VarExpr:
		sl, err := ip.objSlot(fr, ex.Obj)
		return sl, false, err

	case *IndexExpr:
		base, _, err := ip.lvalue(fr, ex.Arr)
		if err != nil {
			return slot{}, false, err
		}
		at := ex.Arr.ExprType()
		idx, err := ip.eval(fr, ex.Idx)
		if err != nil {
			return slot{}, false, err
		}
		if idx < at.Lo || idx > at.Hi {
			return slot{}, false, fmt.Errorf("lang: %s: index %d out of range [%d..%d]",
				ex.ExprPos(), idx, at.Lo, at.Hi)
		}
		off := (idx - at.Lo) * cellCount(at.Elem)
		start := 0
		if base.idx >= 0 {
			start = base.idx
		}
		return slot{val: base.val, idx: start + int(off), typ: at.Elem},
			ip.Mode.ElemBytePacked(at), nil

	case *FieldExpr:
		base, _, err := ip.lvalue(fr, ex.Rec)
		if err != nil {
			return slot{}, false, err
		}
		rt := ex.Rec.ExprType()
		off := cellOffset(rt, ex.FieldIndex)
		start := 0
		if base.idx >= 0 {
			start = base.idx
		}
		return slot{val: base.val, idx: start + int(off), typ: ex.ExprType()}, false, nil
	}
	return slot{}, false, fmt.Errorf("lang: %s: not an lvalue", e.ExprPos())
}

// objSlot returns the storage of a named object.
func (ip *Interp) objSlot(fr *frame, o *Object) (slot, error) {
	if o.Kind == ObjConst {
		if o.IsStr {
			// String constants materialize as read-only arrays.
			v := &value{comp: make([]int32, len(o.StrVal))}
			for i := 0; i < len(o.StrVal); i++ {
				v.comp[i] = int32(o.StrVal[i])
			}
			return slot{val: v, idx: 0, typ: o.Type}, nil
		}
		return slot{}, fmt.Errorf("lang: constant %s is not addressable", o.Name)
	}
	if o.Owner == nil {
		v := ip.globals[o]
		if v == nil {
			return slot{}, fmt.Errorf("lang: no storage for global %s", o.Name)
		}
		return scalarSlot(v, o.Type), nil
	}
	if fr == nil || fr.proc != o.Owner {
		return slot{}, fmt.Errorf("lang: %s referenced outside its procedure", o.Name)
	}
	if ref, ok := fr.refs[o]; ok {
		return ref, nil
	}
	v := fr.vars[o]
	if v == nil {
		return slot{}, fmt.Errorf("lang: no storage for %s", o.Name)
	}
	return scalarSlot(v, o.Type), nil
}

func scalarSlot(v *value, t *Type) slot {
	if t.Scalar() {
		return slot{val: v, idx: -1, typ: t}
	}
	return slot{val: v, idx: 0, typ: t}
}

// eval evaluates an expression to a scalar.
func (ip *Interp) eval(fr *frame, e Expr) (int32, error) {
	if err := ip.burn(); err != nil {
		return 0, err
	}
	switch ex := e.(type) {
	case *IntExpr:
		return ex.Val, nil
	case *CharExpr:
		return ex.Val, nil
	case *BoolExpr:
		if ex.Val {
			return 1, nil
		}
		return 0, nil

	case *VarExpr:
		if ex.Obj.Kind == ObjConst && !ex.Obj.IsStr {
			return ex.Obj.ConstVal, nil
		}
		sl, packed, err := ip.lvalue(fr, ex)
		if err != nil {
			return 0, err
		}
		ip.noteRef(false, sl.typ, packed)
		return sl.get(), nil

	case *IndexExpr, *FieldExpr:
		sl, packed, err := ip.lvalue(fr, e)
		if err != nil {
			return 0, err
		}
		ip.noteRef(false, sl.typ, packed)
		return sl.get(), nil

	case *UnExpr:
		v, err := ip.eval(fr, ex.E)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case OpNeg:
			return -v, nil
		case OpNot:
			return 1 - v&1, nil
		case OpOrd, OpChr:
			return v, nil
		}

	case *BinExpr:
		l, err := ip.eval(fr, ex.L)
		if err != nil {
			return 0, err
		}
		// Pasqual's and/or evaluate both operands (full evaluation), the
		// standard-Pascal rule the paper's Figure 1 starts from. Early-
		// out is a backend option, legal exactly because operands are
		// side-effect-free expressions.
		r, err := ip.eval(fr, ex.R)
		if err != nil {
			return 0, err
		}
		return applyBin(ex.Op, l, r, ex.ExprPos())

	case *CallExpr:
		return ip.call(fr, ex)
	}
	return 0, fmt.Errorf("lang: unknown expression %T", e)
}

func applyBin(op BinOp, l, r int32, pos Pos) (int32, error) {
	b := func(cond bool) int32 {
		if cond {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("lang: %s: division by zero", pos)
		}
		return l / r, nil
	case OpMod:
		if r == 0 {
			return 0, fmt.Errorf("lang: %s: modulo by zero", pos)
		}
		return l % r, nil
	case OpAnd:
		return b(l != 0 && r != 0), nil
	case OpOr:
		return b(l != 0 || r != 0), nil
	case OpEq:
		return b(l == r), nil
	case OpNE:
		return b(l != r), nil
	case OpLT:
		return b(l < r), nil
	case OpLE:
		return b(l <= r), nil
	case OpGT:
		return b(l > r), nil
	case OpGE:
		return b(l >= r), nil
	}
	return 0, fmt.Errorf("lang: %s: unknown operator", pos)
}

// call invokes a builtin, procedure, or function.
func (ip *Interp) call(fr *frame, c *CallExpr) (int32, error) {
	switch c.Builtin {
	case BWriteInt:
		v, err := ip.eval(fr, c.Args[0])
		if err != nil {
			return 0, err
		}
		ip.out.WriteString(strconv.FormatInt(int64(v), 10))
		ip.out.WriteByte('\n')
		return 0, nil
	case BWriteChar:
		v, err := ip.eval(fr, c.Args[0])
		if err != nil {
			return 0, err
		}
		ip.out.WriteByte(byte(v))
		return 0, nil
	case BHalt:
		return 0, errHalt
	}

	proc := c.Proc
	nf := &frame{
		proc: proc,
		vars: make(map[*Object]*value, len(proc.Locals)+len(proc.Params)),
		refs: make(map[*Object]slot),
	}
	for i, param := range proc.Params {
		arg := c.Args[i]
		if param.ByRef {
			sl, _, err := ip.lvalue(fr, arg)
			if err != nil {
				return 0, err
			}
			nf.refs[param] = sl
			continue
		}
		v, err := ip.eval(fr, arg)
		if err != nil {
			return 0, err
		}
		pv := newValue(param.Type)
		pv.scalar = v
		nf.vars[param] = pv
		// Storing the argument into the parameter slot is a data store.
		ip.noteRef(true, param.Type, false)
	}
	for _, l := range proc.Locals {
		nf.vars[l] = newValue(l.Type)
	}
	if proc.ResultObj != nil {
		nf.vars[proc.ResultObj] = newValue(proc.Result)
	}
	if err := ip.stmts(nf, proc.Body); err != nil {
		return 0, err
	}
	if proc.ResultObj != nil {
		return nf.vars[proc.ResultObj].scalar, nil
	}
	return 0, nil
}
