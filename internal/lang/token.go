// Package lang is the front end for Pasqual, the small Pascal-like
// language standing in for the paper's workload language. The authors
// measured "a collection of Pascal programs including compilers,
// optimizers, and VLSI design aid software"; package corpus provides
// equivalent programs in Pasqual, and this package lexes, parses, and
// type-checks them and provides a reference interpreter against which
// the machine backends are differentially tested.
package lang

import "fmt"

// Kind classifies a token.
type Kind uint8

const (
	EOF Kind = iota
	Ident
	IntLit
	CharLit
	StrLit

	// Keywords.
	KwProgram
	KwConst
	KwType
	KwVar
	KwArray
	KwPacked
	KwRecord
	KwOf
	KwFunction
	KwProcedure
	KwBegin
	KwEnd
	KwIf
	KwThen
	KwElse
	KwWhile
	KwDo
	KwRepeat
	KwUntil
	KwFor
	KwTo
	KwDownto
	KwAnd
	KwOr
	KwNot
	KwDiv
	KwMod
	KwTrue
	KwFalse

	// Punctuation and operators.
	Assign // :=
	Plus   // +
	Minus  // -
	Star   // *
	Eq     // =
	NE     // <>
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
	LParen // (
	RParen // )
	LBrack // [
	RBrack // ]
	Comma  // ,
	Semi   // ;
	Colon  // :
	Dot    // .
	DotDot // ..

	numKinds
)

var kindNames = [numKinds]string{
	"EOF", "identifier", "integer", "character", "string",
	"program", "const", "type", "var", "array", "packed", "record", "of",
	"function", "procedure", "begin", "end", "if", "then", "else",
	"while", "do", "repeat", "until", "for", "to", "downto",
	"and", "or", "not", "div", "mod", "true", "false",
	":=", "+", "-", "*", "=", "<>", "<", "<=", ">", ">=",
	"(", ")", "[", "]", ",", ";", ":", ".", "..",
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

var keywords = map[string]Kind{
	"program": KwProgram, "const": KwConst, "type": KwType, "var": KwVar,
	"array": KwArray, "packed": KwPacked, "record": KwRecord, "of": KwOf,
	"function": KwFunction, "procedure": KwProcedure,
	"begin": KwBegin, "end": KwEnd,
	"if": KwIf, "then": KwThen, "else": KwElse,
	"while": KwWhile, "do": KwDo, "repeat": KwRepeat, "until": KwUntil,
	"for": KwFor, "to": KwTo, "downto": KwDownto,
	"and": KwAnd, "or": KwOr, "not": KwNot,
	"div": KwDiv, "mod": KwMod,
	"true": KwTrue, "false": KwFalse,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier spelling or string literal contents
	Val  int32  // integer or character value
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case IntLit:
		return fmt.Sprintf("%d", t.Val)
	case CharLit:
		return fmt.Sprintf("%q", rune(t.Val))
	case StrLit:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

// Error is a front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
