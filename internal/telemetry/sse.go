package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mips/internal/trace"
)

// The /trace/stream endpoint tails trace events as Server-Sent Events.
// Each client gets its own bounded trace.Sink: the simulation goroutine
// performs one non-blocking send per event, and when a slow client
// falls behind, events are dropped and counted, never buffered
// unboundedly and never allowed to stall the CPU. Drops surface on the
// stream itself as `event: drops` frames at every heartbeat, and on
// /metrics as telemetry_sse_dropped{client="cN"}, so a consumer always
// knows its view is partial.
//
// Three modes:
//
//	/trace/stream            tail the server's single tracer (Config.Tracer)
//	/trace/stream?sample=K   tail K of the sampler's live tracers (mipsd's
//	                         per-job tracers) merged into one stream; the
//	                         opening `event: sample` frame names the
//	                         sources and counts the jobs skipped.
//	/trace/stream?source=jit tail the JIT event log (Config.JIT) as
//	                         `event: jit` frames — see jit.go.

func (s *Server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	if src := r.URL.Query().Get("source"); src != "" && src != "trace" {
		if src == "jit" {
			s.handleJITStream(w, r)
			return
		}
		http.Error(w, "unknown stream source (want trace or jit)", http.StatusBadRequest)
		return
	}
	if q := r.URL.Query().Get("sample"); q != "" {
		s.handleSampledStream(w, r, q)
		return
	}
	t := s.cfg.Tracer
	if t == nil {
		http.Error(w, "tracer not attached (run with -serve and a trace flag)", http.StatusNotFound)
		return
	}
	fl, ok := startSSE(w)
	if !ok {
		return
	}
	sink := t.Subscribe(s.cfg.SinkBuffer)
	defer t.Unsubscribe(sink)
	client := s.registerSSEClient(sink.Dropped)
	defer s.unregisterSSEClient(client)

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case e := <-sink.Events():
			if err := writeSSEEvent(w, e); err != nil {
				return
			}
			// Drain whatever else is already buffered before flushing,
			// so a fast producer amortizes the flush.
		drain:
			for i := 0; i < cap(sink.Events()); i++ {
				select {
				case e = <-sink.Events():
					if err := writeSSEEvent(w, e); err != nil {
						return
					}
				default:
					break drain
				}
			}
			fl.Flush()
		case <-heartbeat.C:
			if d := sink.Dropped(); d != reported {
				reported = d
				if _, err := fmt.Fprintf(w, "event: drops\ndata: {\"dropped\":%d}\n\n", d); err != nil {
					return
				}
			} else if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// handleSampledStream tails K of N live tracers through one merged
// channel. Each source keeps its own bounded sink (drop-and-count at
// the tracer), and the merge itself is another non-blocking send (drop-
// and-count at the forwarder), so no number of slow clients or noisy
// jobs ever backs pressure into a worker.
func (s *Server) handleSampledStream(w http.ResponseWriter, r *http.Request, kStr string) {
	sampler := s.cfg.Sampler
	if sampler == nil {
		http.Error(w, "trace sampling not configured (run mipsd and submit jobs with trace: true)", http.StatusNotFound)
		return
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		http.Error(w, "bad sample count", http.StatusBadRequest)
		return
	}
	names, tracers, total := sampler.SampleTracers(k)
	fl, ok := startSSE(w)
	if !ok {
		return
	}

	// Forwarders stop when the handler returns; sinks unsubscribe first
	// so the forwarders' source channels go quiet.
	done := make(chan struct{})
	defer close(done)
	merged := make(chan trace.Event, s.sinkBuffer())
	var mergeDropped atomic.Uint64
	sinks := make([]*trace.Sink, len(tracers))
	for i, t := range tracers {
		sink := t.Subscribe(s.cfg.SinkBuffer)
		sinks[i] = sink
		defer t.Unsubscribe(sink)
		go func(sink *trace.Sink) {
			for {
				select {
				case <-done:
					return
				case e := <-sink.Events():
					select {
					case merged <- e:
					default:
						mergeDropped.Add(1)
					}
				}
			}
		}(sink)
	}
	dropped := func() uint64 {
		d := mergeDropped.Load()
		for _, sink := range sinks {
			d += sink.Dropped()
		}
		return d
	}
	client := s.registerSSEClient(dropped)
	defer s.unregisterSSEClient(client)

	skipped := total - len(tracers)
	if _, err := fmt.Fprintf(w, "event: sample\ndata: {\"sources\":%s,\"sampled\":%d,\"total\":%d,\"skipped\":%d}\n\n",
		jsonStrings(names), len(tracers), total, skipped); err != nil {
		return
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case e := <-merged:
			if err := writeSSEEvent(w, e); err != nil {
				return
			}
		drain:
			for i := 0; i < cap(merged); i++ {
				select {
				case e = <-merged:
					if err := writeSSEEvent(w, e); err != nil {
						return
					}
				default:
					break drain
				}
			}
			fl.Flush()
		case <-heartbeat.C:
			if d := dropped(); d != reported {
				reported = d
				if _, err := fmt.Fprintf(w,
					"event: drops\ndata: {\"dropped\":%d,\"sampled\":%d,\"total\":%d,\"skipped\":%d}\n\n",
					d, len(tracers), total, skipped); err != nil {
					return
				}
			} else if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// startSSE writes the SSE preamble and returns the flusher.
func startSSE(w http.ResponseWriter) (http.Flusher, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return fl, true
}

func (s *Server) sinkBuffer() int {
	if s.cfg.SinkBuffer > 0 {
		return s.cfg.SinkBuffer
	}
	return trace.DefaultSinkBuffer
}

// registerSSEClient tracks a connected stream client for /metrics drop
// accounting, returning its label ("c1", "c2", ...).
func (s *Server) registerSSEClient(dropped func() uint64) string {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	s.sseSeq++
	label := "c" + strconv.FormatUint(s.sseSeq, 10)
	if s.sseLive == nil {
		s.sseLive = make(map[string]func() uint64)
	}
	s.sseLive[label] = dropped
	s.sseEverConnected = true
	return label
}

// unregisterSSEClient folds a disconnecting client's final drop count
// into the closed total so telemetry_sse_dropped_total never regresses.
func (s *Server) unregisterSSEClient(label string) {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	if fn := s.sseLive[label]; fn != nil {
		s.sseClosedDropped += fn()
	}
	delete(s.sseLive, label)
}

// writeSSEDropMetrics appends the SSE drop counters to the exposition:
// one telemetry_sse_dropped{client="cN"} series per connected client
// plus a cumulative total. Nothing is emitted before the first client
// ever connects, so tools without streaming clients keep their
// exposition unchanged.
func (s *Server) writeSSEDropMetrics(w io.Writer) error {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	if !s.sseEverConnected {
		return nil
	}
	if _, err := fmt.Fprint(w,
		"# HELP telemetry_sse_dropped trace events dropped per connected /trace/stream client\n"+
			"# TYPE telemetry_sse_dropped counter\n"); err != nil {
		return err
	}
	labels := make([]string, 0, len(s.sseLive))
	for l := range s.sseLive {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if len(labels[i]) != len(labels[j]) {
			return len(labels[i]) < len(labels[j])
		}
		return labels[i] < labels[j]
	})
	sum := s.sseClosedDropped
	for _, l := range labels {
		d := s.sseLive[l]()
		sum += d
		if _, err := fmt.Fprintf(w, "telemetry_sse_dropped{client=%q} %d\n", l, d); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"# HELP telemetry_sse_dropped_total trace events dropped across all /trace/stream clients, ever\n"+
			"# TYPE telemetry_sse_dropped_total counter\ntelemetry_sse_dropped_total %d\n", sum)
	return err
}

// jsonStrings renders a string slice as a JSON array (names are job IDs
// and registry labels — no exotic escapes, but quote them properly).
func jsonStrings(ss []string) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range ss {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(s))
	}
	b.WriteByte(']')
	return b.String()
}

// writeSSEEvent renders one trace event as an SSE frame with a JSON
// payload. Fields mirror trace.Event; kind is the symbolic name.
func writeSSEEvent(w http.ResponseWriter, e trace.Event) error {
	_, err := fmt.Fprintf(w,
		"event: trace\ndata: {\"seq\":%d,\"cycle\":%d,\"kind\":%q,\"pc\":%d,\"addr\":%d,\"arg\":%d,\"pid\":%d}\n\n",
		e.Seq, e.Cycle, e.Kind.String(), e.PC, e.Addr, e.Arg, e.PID)
	return err
}
