package telemetry

import (
	"fmt"
	"net/http"
	"time"

	"mips/internal/trace"
)

// The /trace/stream endpoint tails the trace ring as Server-Sent
// Events. Each client gets its own bounded trace.Sink: the simulation
// goroutine performs one non-blocking send per event, and when a slow
// client falls behind, events are dropped and counted, never buffered
// unboundedly and never allowed to stall the CPU. Drops surface on the
// stream itself as `event: drops` frames at every heartbeat, so a
// consumer always knows its view is partial.

func (s *Server) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	t := s.cfg.Tracer
	if t == nil {
		http.Error(w, "tracer not attached (run with -serve and a trace flag)", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sink := t.Subscribe(s.cfg.SinkBuffer)
	defer t.Unsubscribe(sink)

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case e := <-sink.Events():
			if err := writeSSEEvent(w, e); err != nil {
				return
			}
			// Drain whatever else is already buffered before flushing,
			// so a fast producer amortizes the flush.
		drain:
			for i := 0; i < cap(sink.Events()); i++ {
				select {
				case e = <-sink.Events():
					if err := writeSSEEvent(w, e); err != nil {
						return
					}
				default:
					break drain
				}
			}
			fl.Flush()
		case <-heartbeat.C:
			if d := sink.Dropped(); d != reported {
				reported = d
				if _, err := fmt.Fprintf(w, "event: drops\ndata: {\"dropped\":%d}\n\n", d); err != nil {
					return
				}
			} else if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSEEvent renders one trace event as an SSE frame with a JSON
// payload. Fields mirror trace.Event; kind is the symbolic name.
func writeSSEEvent(w http.ResponseWriter, e trace.Event) error {
	_, err := fmt.Fprintf(w,
		"event: trace\ndata: {\"seq\":%d,\"cycle\":%d,\"kind\":%q,\"pc\":%d,\"addr\":%d,\"arg\":%d,\"pid\":%d}\n\n",
		e.Seq, e.Cycle, e.Kind.String(), e.PC, e.Addr, e.Arg, e.PID)
	return err
}
