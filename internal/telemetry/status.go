package telemetry

import (
	"encoding/json"
	"net/http"
	"time"
)

// Status is the /status payload: who is running, how fast it is
// retiring work (from the background sampler's snapshot deltas), and
// how the trace stream is doing.
type Status struct {
	Program       string    `json:"program"`
	Args          []string  `json:"args,omitempty"`
	Engine        string    `json:"engine"`
	Started       time.Time `json:"started"`
	UptimeSeconds float64   `json:"uptime_seconds"`

	Sources []string `json:"sources"`

	Totals struct {
		Instructions uint64 `json:"instructions"`
		Cycles       uint64 `json:"cycles"`
	} `json:"totals"`
	Rates struct {
		InstructionsPerSec float64 `json:"instructions_per_sec"`
		CyclesPerSec       float64 `json:"cycles_per_sec"`
	} `json:"rates"`

	Trace *TraceStatus `json:"trace,omitempty"`
}

// TraceStatus summarizes the event ring and its live subscribers.
type TraceStatus struct {
	Events      uint64 `json:"events"`
	Retained    int    `json:"retained"`
	RingDropped uint64 `json:"ring_dropped"`
	Subscribers int    `json:"subscribers"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{
		Program:       s.cfg.Program,
		Args:          s.cfg.Args,
		Engine:        s.cfg.Engine,
		Started:       s.start,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	agg := s.aggregate()
	st.Totals.Instructions = agg["cpu.instructions"]
	st.Totals.Cycles = agg["cpu.cycles"]
	st.Rates.InstructionsPerSec, st.Rates.CyclesPerSec = s.rates()
	for _, src := range s.Sources() {
		st.Sources = append(st.Sources, src.Label)
	}
	if t := s.cfg.Tracer; t != nil {
		st.Trace = &TraceStatus{
			Events:      t.Ring().Total(),
			Retained:    t.Ring().Len(),
			RingDropped: t.Ring().Dropped(),
			Subscribers: t.Subscribers(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
