package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mips/internal/cpu"
	"mips/internal/trace"
)

func TestJITEndpointsNotConfigured(t *testing.T) {
	srv := New(Config{Program: "test"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/jit/traces", "/jit/events", "/trace/stream?source=jit"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without config: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/trace/stream?source=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus source: status %d, want 400", resp.StatusCode)
	}
}

func TestJITEventsEndpoint(t *testing.T) {
	log := trace.NewJITLog(8)
	for i := 0; i < 12; i++ {
		log.Record(cpu.JITEvent{Kind: cpu.JITGuardExit,
			Reason: uint8(cpu.DeoptBranchDirection), Cycle: uint64(i), PC: uint32(i)})
	}
	srv := New(Config{Program: "test", JIT: log})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/jit/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var body struct {
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
		Retained int    `json:"retained"`
		Events   []struct {
			Kind   string `json:"kind"`
			Reason string `json:"reason"`
			PC     uint32 `json:"pc"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 12 || body.Dropped != 4 || body.Retained != 8 {
		t.Errorf("accounting = %+v, want total 12 dropped 4 retained 8", body)
	}
	if len(body.Events) != 8 || body.Events[0].PC != 4 {
		t.Fatalf("events truncated wrong: %+v", body.Events)
	}
	if body.Events[0].Kind != "guard_exit" || body.Events[0].Reason != "branch_direction" {
		t.Errorf("event decode = %+v", body.Events[0])
	}

	// ?n=K keeps the last K.
	resp2, err := http.Get(ts.URL + "/jit/events?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Retained != 3 || len(body.Events) != 3 || body.Events[2].PC != 11 {
		t.Errorf("?n=3 window = %+v", body.Events)
	}
}

func TestJITTracesEndpoint(t *testing.T) {
	sites := trace.JITSites{
		Traces: []trace.JITTraceSite{{EntryPC: 2, EndPC: 6, Ops: 5, Blocks: 1,
			Words: 5, Hits: 900, Instrs: 4500,
			Deopts: map[string]uint64{"branch_direction": 1}}},
		Blocks: []trace.JITBlockSite{{EntryPC: 2, Words: 5, Execs: 40}},
		Tiers:  map[string]uint64{"reference": 1, "fast": 2, "blocks": 3, "traces": 4},
	}
	srv := New(Config{Program: "test",
		JITSites: SingleJITSites("machine", func() trace.JITSites { return sites })})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/jit/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Jobs map[string]trace.JITSites `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	got, ok := body.Jobs["machine"]
	if !ok {
		t.Fatalf("no machine job in %s", raw)
	}
	if len(got.Traces) != 1 || got.Traces[0].Hits != 900 ||
		got.Traces[0].Deopts["branch_direction"] != 1 {
		t.Errorf("trace sites round-trip = %+v", got.Traces)
	}
	if got.Tiers["traces"] != 4 {
		t.Errorf("tier map round-trip = %+v", got.Tiers)
	}
	if !strings.Contains(string(raw), "entry_pc") {
		t.Error("response lacks entry_pc field (smoke script greps for it)")
	}
}

func TestJITStreamDeliversEvents(t *testing.T) {
	log := trace.NewJITLog(64)
	srv := New(Config{Program: "test", JIT: log, Heartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/trace/stream?source=jit")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for log.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	timer := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	t.Cleanup(func() { timer.Stop(); resp.Body.Close() })

	log.Record(cpu.JITEvent{Kind: cpu.JITFormed, Cycle: 100, PC: 2, Len: 3})
	log.Record(cpu.JITEvent{Kind: cpu.JITGuardExit,
		Reason: uint8(cpu.DeoptFault), Cycle: 200, PC: 2, Len: 1})

	type frame struct {
		Cycle  uint64 `json:"cycle"`
		Kind   string `json:"kind"`
		Reason string `json:"reason"`
		PC     uint32 `json:"pc"`
	}
	var got []frame
	var event string
	sc := bufio.NewScanner(resp.Body)
	for len(got) < 2 && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "jit":
			var f frame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			got = append(got, f)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d jit frames, want 2 (scan err %v)", len(got), sc.Err())
	}
	if got[0].Kind != "formed" || got[0].Cycle != 100 {
		t.Errorf("first frame = %+v", got[0])
	}
	if got[1].Kind != "guard_exit" || got[1].Reason != "fault" {
		t.Errorf("second frame = %+v", got[1])
	}
}
