package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mips/internal/trace"
)

// goldenSources builds a small fixed pair of registries whose
// exposition is pinned byte-for-byte in testdata/metrics.golden.
func goldenSources() []Source {
	a := trace.NewRegistry()
	a.Counter("cpu.cycles").Add(1234)
	a.Counter("cpu.nops").Add(56)
	a.Describe("cpu.cycles", "total machine cycles")
	a.Gauge("kernel.resident_pages", func() uint64 { return 12 })
	a.Describe("kernel.resident_pages", "pages currently resident")

	b := trace.NewRegistry()
	b.Counter("cpu.cycles").Add(99)
	b.CounterFunc("dma.words_moved", func() uint64 { return 7 })
	return []Source{
		{Label: "fib", Registry: a},
		{Label: "puzzle0", Registry: b},
	}
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, goldenSources()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, buf.String(), string(want))
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteExposition(&buf2, goldenSources()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same sources differ")
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{experiment="[^"\\]*"\})? ([0-9]+)$`)
)

// parsePrometheus validates text exposition structure line by line and
// returns the samples as "name{labels}" -> value. It enforces the
// format invariants a real scraper relies on: every sample is preceded
// by a TYPE for its metric name, and all samples of a name are
// consecutive.
func parsePrometheus(t *testing.T, text string) map[string]uint64 {
	t.Helper()
	samples := map[string]uint64{}
	var curName string
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !helpRe.MatchString(line) {
				t.Fatalf("bad HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if seen[m[1]] {
				t.Fatalf("TYPE for %s appears twice (samples not consecutive)", m[1])
			}
			seen[m[1]] = true
			curName = m[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bad sample line: %q", line)
		}
		if m[1] != curName {
			t.Fatalf("sample %q not under its TYPE (current %q)", m[1], curName)
		}
		var v uint64
		fmt.Sscan(m[3], &v)
		samples[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestExpositionParsesAsPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, goldenSources()); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, buf.String())
	if got := samples[`cpu_cycles{experiment="fib"}`]; got != 1234 {
		t.Errorf("cpu_cycles{fib} = %d, want 1234", got)
	}
	if got := samples[`cpu_cycles{experiment="puzzle0"}`]; got != 99 {
		t.Errorf("cpu_cycles{puzzle0} = %d, want 99", got)
	}
	if got := samples[`kernel_resident_pages{experiment="fib"}`]; got != 12 {
		t.Errorf("resident pages = %d, want 12", got)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"cpu.cycles":               "cpu_cycles",
		"cpu.exceptions.pagefault": "cpu_exceptions_pagefault",
		"kernel.page_faults":       "kernel_page_faults",
		"9leading":                 "_leading",
		"weird-name":               "weird_name",
		"":                         "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
