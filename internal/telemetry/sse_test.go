package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mips/internal/trace"
)

// sseClient opens /trace/stream and waits until the tracer sees the
// subscription, so no emitted event can race past the subscribe.
func sseClient(t *testing.T, url string, tr *trace.Tracer) (*http.Response, *bufio.Scanner) {
	t.Helper()
	resp, err := http.Get(url + "/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	// Fail the test rather than hang if the stream goes quiet.
	timer := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	t.Cleanup(func() { timer.Stop(); resp.Body.Close() })
	return resp, bufio.NewScanner(resp.Body)
}

func TestSSEStreamDeliversEvents(t *testing.T) {
	tr := trace.NewTracer(64)
	srv := New(Config{Program: "test", Tracer: tr, Heartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close) // runs after sseClient's body-close cleanup
	_, sc := sseClient(t, ts.URL, tr)

	for i := 0; i < 5; i++ {
		tr.Emit(trace.Event{Kind: trace.KindRetire, Cycle: uint64(100 + i), PC: uint32(i)})
	}

	type frame struct {
		Seq   uint64 `json:"seq"`
		Cycle uint64 `json:"cycle"`
		Kind  string `json:"kind"`
		PC    uint32 `json:"pc"`
	}
	var got []frame
	var event string
	for sc.Scan() && len(got) < 5 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "trace":
			var f frame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			got = append(got, f)
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d frames, want 5 (scan err %v)", len(got), sc.Err())
	}
	for i, f := range got {
		if f.Seq != uint64(i) || f.Cycle != uint64(100+i) || f.Kind != "retire" || f.PC != uint32(i) {
			t.Errorf("frame %d = %+v", i, f)
		}
	}
}

// TestSSEStreamReportsDrops is the bounded-backpressure criterion end
// to end: a tiny sink buffer, a paused client, and a burst far larger
// than every buffer in the path must surface a positive drop count on
// the stream itself — and the emitting side must have completed the
// whole burst without blocking.
func TestSSEStreamReportsDrops(t *testing.T) {
	tr := trace.NewTracer(64)
	srv := New(Config{
		Program: "test", Tracer: tr,
		SinkBuffer: 4, Heartbeat: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close) // runs after sseClient's body-close cleanup
	_, sc := sseClient(t, ts.URL, tr)

	// Burst without reading the stream: the client's socket fills, the
	// handler blocks on write, the 4-slot sink overflows. If emission
	// ever blocked on a slow consumer this loop would deadlock; its
	// completion is itself part of the assertion.
	const burst = 50000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < burst; i++ {
			tr.Emit(trace.Event{Kind: trace.KindRetire, Cycle: uint64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("emitter blocked: sink backpressure leaked into the hot path")
	}

	var drops uint64
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "drops":
			var d struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d); err != nil {
				t.Fatalf("bad drops frame %q: %v", line, err)
			}
			drops = d.Dropped
		}
		if drops > 0 {
			break
		}
	}
	if drops == 0 {
		t.Fatalf("no drops reported after a %d-event burst into a 4-slot sink (scan err %v)", burst, sc.Err())
	}
}
