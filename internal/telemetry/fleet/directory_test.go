package fleet

import (
	"reflect"
	"testing"

	"mips/internal/trace"
)

func TestDirectorySampling(t *testing.T) {
	d := NewDirectory()
	if names, tracers, total := d.SampleTracers(3); len(names) != 0 || len(tracers) != 0 || total != 0 {
		t.Fatal("empty directory must sample nothing")
	}

	t1, t2, t3 := trace.NewTracer(4), trace.NewTracer(4), trace.NewTracer(4)
	d.AddTracer("job-1", t1)
	d.AddTracer("job-2", t2)
	d.AddTracer("job-3", t3)
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}

	names, tracers, total := d.SampleTracers(2)
	if total != 3 {
		t.Errorf("total = %d, want 3", total)
	}
	if !reflect.DeepEqual(names, []string{"job-1", "job-2"}) {
		t.Errorf("sampled names = %v, want first two in registration order", names)
	}
	if len(tracers) != 2 || tracers[0] != t1 || tracers[1] != t2 {
		t.Error("sampled tracers do not match their names")
	}

	// k <= 0 means everything; k beyond the population clamps.
	if names, _, _ := d.SampleTracers(0); len(names) != 3 {
		t.Errorf("k=0 sampled %d, want all 3", len(names))
	}
	if names, _, _ := d.SampleTracers(99); len(names) != 3 {
		t.Errorf("k=99 sampled %d, want all 3", len(names))
	}

	// Replacement keeps registration order; removal frees the slot.
	t2b := trace.NewTracer(4)
	d.AddTracer("job-2", t2b)
	if _, tracers, _ := d.SampleTracers(0); tracers[1] != t2b {
		t.Error("replacing a tracer must keep its position")
	}
	d.RemoveTracer("job-1")
	names, _, total = d.SampleTracers(0)
	if total != 2 || !reflect.DeepEqual(names, []string{"job-2", "job-3"}) {
		t.Errorf("after removal: names = %v, total = %d", names, total)
	}
	d.RemoveTracer("job-1") // double remove is a no-op
	if d.Len() != 2 {
		t.Errorf("len after double remove = %d, want 2", d.Len())
	}
}
