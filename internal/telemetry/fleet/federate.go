package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Federation turns one mipsd into a coordinator: it scrapes /metrics
// and fleet flamegraphs from peer workers and merges them with the
// local view, so a fleet of daemons presents one pane of glass. Peer
// series keep their names and gain a worker="host:port" label; peers
// that fail to scrape are reported as fleet_peer_up 0 instead of
// failing the whole render.
type Federation struct {
	mu    sync.Mutex
	peers []string // normalized base URLs, insertion order

	client     *http.Client
	scrapeErrs atomic.Uint64
}

// DefaultScrapeTimeout bounds one peer scrape.
const DefaultScrapeTimeout = 3 * time.Second

// NewFederation returns an empty federation whose peer scrapes time
// out after the given duration (DefaultScrapeTimeout if <= 0).
func NewFederation(timeout time.Duration) *Federation {
	if timeout <= 0 {
		timeout = DefaultScrapeTimeout
	}
	return &Federation{client: &http.Client{Timeout: timeout}}
}

// NormalizePeer validates a peer reference and returns its base URL
// (scheme://host — any path is dropped). A bare "host:port" is
// promoted to "http://host:port".
func NormalizePeer(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("fleet: empty peer")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("fleet: bad peer %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("fleet: peer %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("fleet: peer %q has no host", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// AddPeer registers a peer, returning its normalized base URL.
// Duplicates are no-ops.
func (f *Federation) AddPeer(raw string) (string, error) {
	base, err := NormalizePeer(raw)
	if err != nil {
		return "", err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range f.peers {
		if p == base {
			return base, nil
		}
	}
	f.peers = append(f.peers, base)
	return base, nil
}

// RemovePeer drops a peer, reporting whether it was present.
func (f *Federation) RemovePeer(raw string) bool {
	base, err := NormalizePeer(raw)
	if err != nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, p := range f.peers {
		if p == base {
			f.peers = append(f.peers[:i], f.peers[i+1:]...)
			return true
		}
	}
	return false
}

// Peers returns the peer base URLs, sorted.
func (f *Federation) Peers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.peers))
	copy(out, f.peers)
	sort.Strings(out)
	return out
}

// ScrapeErrors returns the cumulative count of failed peer scrapes.
func (f *Federation) ScrapeErrors() uint64 { return f.scrapeErrs.Load() }

// workerLabel is the label value a peer's series carry: its host:port.
func workerLabel(base string) string {
	if u, err := url.Parse(base); err == nil && u.Host != "" {
		return u.Host
	}
	return base
}

// --- Prometheus text exposition model -------------------------------

// expoFamily is one metric family of a parsed exposition. Samples keep
// their full series name (summary _sum/_count sub-series differ from
// the family name), label body, and rendered value verbatim, so a
// merge re-emits peer data exactly as the peer exposed it.
type expoFamily struct {
	name    string
	typ     string
	help    string
	samples []expoSample
}

type expoSample struct {
	series string // full series name (family, or family_sum etc.)
	labels string // inner label body, no braces; "" for bare series
	value  string
}

// expoModel is a parsed exposition: families by name plus first-seen
// emission order.
type expoModel struct {
	fams  map[string]*expoFamily
	order []string
}

func newExpoModel() *expoModel {
	return &expoModel{fams: map[string]*expoFamily{}}
}

func (m *expoModel) family(name string) *expoFamily {
	fam := m.fams[name]
	if fam == nil {
		fam = &expoFamily{name: name}
		m.fams[name] = fam
		m.order = append(m.order, name)
	}
	return fam
}

// parseExposition reads Prometheus text format, keeping first-seen
// family order.
func parseExposition(r io.Reader) (*expoModel, error) {
	m := newExpoModel()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 {
				switch fields[1] {
				case "HELP":
					fam := m.family(fields[2])
					if len(fields) == 4 && fam.help == "" {
						fam.help = fields[3]
					}
				case "TYPE":
					fam := m.family(fields[2])
					if len(fields) == 4 && fam.typ == "" {
						fam.typ = fields[3]
					}
				}
			}
			continue
		}
		series, labels, value, err := splitSample(line)
		if err != nil {
			return nil, err
		}
		fam := m.family(familyOf(series))
		fam.samples = append(fam.samples, expoSample{series: series, labels: labels, value: value})
	}
	return m, sc.Err()
}

// familyOf maps a series name to its family: summary/histogram _sum,
// _count, and _bucket series belong to the base family, so a merged
// exposition never repeats a TYPE line for them.
func familyOf(name string) string {
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base := strings.TrimSuffix(name, suffix); base != name && base != "" {
			return base
		}
	}
	return name
}

// splitSample breaks "name{labels} value" (or "name value") into
// parts, quote-aware: label values may contain '}' and escaped quotes.
func splitSample(line string) (series, labels, value string, err error) {
	brace := -1
	for i := 0; i < len(line); i++ {
		if line[i] == '{' {
			brace = i
			break
		}
		if line[i] == ' ' {
			break
		}
	}
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", "", fmt.Errorf("fleet: exposition sample %q has no value", line)
		}
		return line[:sp], "", strings.TrimSpace(line[sp+1:]), nil
	}
	series = line[:brace]
	inQuotes := false
	for i := brace + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuotes {
				i++ // skip the escaped character
			}
		case '"':
			inQuotes = !inQuotes
		case '}':
			if !inQuotes {
				return series, line[brace+1 : i], strings.TrimSpace(line[i+1:]), nil
			}
		}
	}
	return "", "", "", fmt.Errorf("fleet: exposition sample %q has an unterminated label set", line)
}

// injectLabel appends label="value" to a label body unless a label of
// that name is already present (a peer that is itself a coordinator
// keeps its own worker attribution).
func injectLabel(body, label, value string) string {
	if strings.Contains(body, label+`="`) {
		return body
	}
	escaped := strings.ReplaceAll(value, `\`, `\\`)
	escaped = strings.ReplaceAll(escaped, `"`, `\"`)
	pair := label + `="` + escaped + `"`
	if body == "" {
		return pair
	}
	return body + "," + pair
}

func (m *expoModel) write(w io.Writer) error {
	for _, name := range m.order {
		fam := m.fams[name]
		typ := fam.typ
		if typ == "" {
			typ = "untyped"
		}
		help := fam.help
		if help == "" {
			help = "federated metric " + name
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
			return err
		}
		for _, s := range fam.samples {
			var err error
			if s.labels == "" {
				_, err = fmt.Fprintf(w, "%s %s\n", s.series, s.value)
			} else {
				_, err = fmt.Fprintf(w, "%s{%s} %s\n", s.series, s.labels, s.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// --- scraping and merging -------------------------------------------

type peerScrape struct {
	peer  string
	model *expoModel
	err   error
}

// scrapeMetrics fetches and parses every peer's /metrics concurrently.
func (f *Federation) scrapeMetrics(peers []string) []peerScrape {
	out := make([]peerScrape, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i] = peerScrape{peer: peer}
			resp, err := f.client.Get(peer + "/metrics")
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				out[i].err = fmt.Errorf("fleet: %s/metrics: status %d", peer, resp.StatusCode)
				return
			}
			out[i].model, out[i].err = parseExposition(resp.Body)
		}(i, p)
	}
	wg.Wait()
	return out
}

// WriteMergedMetrics renders the coordinator's pane of glass: the
// local exposition (rendered by local), every reachable peer's series
// re-labeled with worker="host:port", and the synthesized
// fleet_peer_up / fleet_peers / fleet_peer_scrape_errors families.
// With no peers configured it is exactly the local exposition.
func (f *Federation) WriteMergedMetrics(w io.Writer, local func(io.Writer) error) error {
	peers := f.Peers()
	if len(peers) == 0 {
		return local(w)
	}
	var buf bytes.Buffer
	if err := local(&buf); err != nil {
		return err
	}
	model, err := parseExposition(&buf)
	if err != nil {
		return fmt.Errorf("fleet: local exposition: %w", err)
	}

	scrapes := f.scrapeMetrics(peers)

	up := model.family("fleet_peer_up")
	up.typ, up.help = "gauge", "whether the last scrape of this peer succeeded"
	count := model.family("fleet_peers")
	count.typ, count.help = "gauge", "configured federation peers"
	count.samples = append(count.samples,
		expoSample{series: "fleet_peers", value: fmt.Sprintf("%d", len(peers))})
	for _, s := range scrapes {
		v := "1"
		if s.err != nil {
			v = "0"
			f.scrapeErrs.Add(1)
		}
		up.samples = append(up.samples, expoSample{
			series: "fleet_peer_up",
			labels: injectLabel("", "worker", workerLabel(s.peer)),
			value:  v,
		})
	}
	errs := model.family("fleet_peer_scrape_errors")
	errs.typ, errs.help = "counter", "cumulative failed peer scrapes"
	errs.samples = append(errs.samples,
		expoSample{series: "fleet_peer_scrape_errors", value: fmt.Sprintf("%d", f.scrapeErrs.Load())})

	for _, s := range scrapes {
		if s.err != nil {
			continue
		}
		worker := workerLabel(s.peer)
		for _, famName := range s.model.order {
			pf := s.model.fams[famName]
			fam := model.family(famName)
			if fam.typ == "" {
				fam.typ = pf.typ
			}
			if fam.help == "" {
				fam.help = pf.help
			}
			for _, smp := range pf.samples {
				fam.samples = append(fam.samples, expoSample{
					series: smp.series,
					labels: injectLabel(smp.labels, "worker", worker),
					value:  smp.value,
				})
			}
		}
	}
	return model.write(w)
}

// MergedFolded returns the union of the local folded stacks and every
// reachable peer's fleet flamegraph; unreachable peers are counted and
// skipped, never fatal.
func (f *Federation) MergedFolded(local map[string]uint64) (map[string]uint64, int) {
	merged := make(map[string]uint64, len(local))
	MergeFolded(merged, local)
	failed := 0
	for _, peer := range f.Peers() {
		resp, err := f.client.Get(peer + "/profile/flame?scope=fleet")
		if err != nil {
			f.scrapeErrs.Add(1)
			failed++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			f.scrapeErrs.Add(1)
			failed++
			continue
		}
		m, err := ParseFolded(resp.Body)
		resp.Body.Close()
		if err != nil {
			f.scrapeErrs.Add(1)
			failed++
			continue
		}
		MergeFolded(merged, m)
	}
	return merged, failed
}

// --- HTTP management surface ----------------------------------------

// peersPayload is the GET /fleet/peers response and POST body shape.
type peersPayload struct {
	Peers []string `json:"peers,omitempty"`
	URL   string   `json:"url,omitempty"`
}

// Handler serves the peer management API:
//
//	GET    /fleet/peers            list configured peers
//	POST   /fleet/peers            add one ({"url": "host:port"})
//	DELETE /fleet/peers?url=...    remove one
func (f *Federation) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		writePeersJSON(w, http.StatusOK, f.Peers())
	})
	mux.HandleFunc("POST /fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		var req peersPayload
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := f.AddPeer(req.URL); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writePeersJSON(w, http.StatusOK, f.Peers())
	})
	mux.HandleFunc("DELETE /fleet/peers", func(w http.ResponseWriter, r *http.Request) {
		if !f.RemovePeer(r.URL.Query().Get("url")) {
			http.Error(w, "no such peer", http.StatusNotFound)
			return
		}
		writePeersJSON(w, http.StatusOK, f.Peers())
	})
	return mux
}

func writePeersJSON(w http.ResponseWriter, code int, peers []string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(peersPayload{Peers: peers})
}
