package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestFoldedRoundTrip(t *testing.T) {
	m := map[string]uint64{
		"user;main":       100,
		"user;helper":     100, // ties break by stack name
		"kernel;<kernel>": 7,
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, m); err != nil {
		t.Fatal(err)
	}
	want := "user;helper 100\nuser;main 100\nkernel;<kernel> 7\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
	back, err := ParseFolded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round trip = %v, want %v", back, m)
	}
}

func TestParseFoldedErrors(t *testing.T) {
	if _, err := ParseFolded(strings.NewReader("nocount\n")); err == nil {
		t.Error("line without a count must error")
	}
	if _, err := ParseFolded(strings.NewReader("stack notanumber\n")); err == nil {
		t.Error("non-numeric count must error")
	}
	// Blank lines are tolerated; duplicate stacks sum.
	m, err := ParseFolded(strings.NewReader("\nuser;f 1\n\nuser;f 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m["user;f"] != 3 {
		t.Errorf("duplicate stacks = %d, want summed 3", m["user;f"])
	}
}

func TestMergeFolded(t *testing.T) {
	dst := map[string]uint64{"a;b": 1}
	MergeFolded(dst, map[string]uint64{"a;b": 2, "c;d": 3})
	if dst["a;b"] != 3 || dst["c;d"] != 3 {
		t.Errorf("merge = %v", dst)
	}
}
