// Package fleet rolls many per-job and per-machine telemetry sources
// into fleet-wide views: sharded metric rollups with per-tenant labels
// and streaming quantiles, merged folded-stack flamegraphs, a directory
// of live trace sources for sampled tailing, and Prometheus federation
// across mipsd workers. The ownership discipline throughout is
// partition-then-aggregate: writers accumulate into shard-local state
// behind short uncontended critical sections, and merging happens only
// at read time, so no reader ever blocks a simulation worker.
package fleet

import (
	"math"
	"sort"
)

// The sketch is a DDSketch-style relative-accuracy histogram: values
// land in logarithmically spaced buckets (v -> ceil(log_gamma v)), so a
// quantile read is wrong by at most the relative bucket width. Bucket
// counts are plain integers, which makes Merge an exact per-bucket sum:
// merging is associative and commutative bit-for-bit, the property the
// sharded rollup (and cross-worker federation) is built on.

const (
	// sketchGamma is the bucket growth factor: ~2% relative error on
	// every quantile.
	sketchGamma = 1.04
	// sketchMin is the smallest distinguishable value; anything at or
	// below it lands in the dedicated zero bucket.
	sketchMin = 1e-9
)

var invLogGamma = 1 / math.Log(sketchGamma)

// Sketch is a mergeable streaming quantile sketch. The zero value is
// not usable; call NewSketch. A Sketch is not synchronized: the rollup
// shards own theirs under the shard lock.
type Sketch struct {
	counts map[int32]uint64
	zero   uint64 // values <= sketchMin
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{counts: make(map[int32]uint64)}
}

// Add records one observation. Negative values clamp to the zero
// bucket: every fleet series (latency, rate, preempt count) is
// non-negative by construction.
func (s *Sketch) Add(v float64) {
	if s.total == 0 || v < s.min {
		s.min = v
	}
	if s.total == 0 || v > s.max {
		s.max = v
	}
	s.total++
	if v > 0 {
		s.sum += v
	}
	if v <= sketchMin {
		s.zero++
		return
	}
	s.counts[bucketIndex(v)]++
}

func bucketIndex(v float64) int32 {
	return int32(math.Ceil(math.Log(v) * invLogGamma))
}

// bucketValue is the representative value of a bucket: the midpoint of
// [gamma^(i-1), gamma^i].
func bucketValue(i int32) float64 {
	return 2 * math.Pow(sketchGamma, float64(i)) / (1 + sketchGamma)
}

// Merge folds o into s. Merging is an exact per-bucket sum, so it is
// associative: merging shard sketches in any grouping yields identical
// state. o is unchanged.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.total == 0 {
		return
	}
	if s.total == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.total == 0 || o.max > s.max {
		s.max = o.max
	}
	s.total += o.total
	s.sum += o.sum
	s.zero += o.zero
	for i, n := range o.counts {
		s.counts[i] += n
	}
}

// Clone returns an independent copy.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{zero: s.zero, total: s.total, sum: s.sum, min: s.min, max: s.max,
		counts: make(map[int32]uint64, len(s.counts))}
	for i, n := range s.counts {
		c.counts[i] = n
	}
	return c
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.total }

// Sum returns the sum of positive observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Min and Max return the exact extremes (0 when empty).
func (s *Sketch) Min() float64 {
	if s.total == 0 {
		return 0
	}
	return s.min
}

func (s *Sketch) Max() float64 {
	if s.total == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the q-quantile (q in [0,1]) to within the sketch's
// relative accuracy, exact at the recorded extremes. Empty sketches
// report 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	rank := uint64(q * float64(s.total-1))
	if rank < s.zero {
		return 0
	}
	seen := s.zero
	idxs := make([]int32, 0, len(s.counts))
	for i := range s.counts {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		seen += s.counts[i]
		if rank < seen {
			v := bucketValue(i)
			// Clamp to the exact extremes so no quantile can read
			// outside the observed range.
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.Max()
}
