package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fleetSamples is a deterministic 64-job fleet across two tenants and
// two engines — the rollup's target scale (ISSUE: a 64-concurrent-job
// rollup with per-tenant labels).
func fleetSamples() []JobSample {
	samples := make([]JobSample, 0, 64)
	tenants := []string{"alpha", "beta"}
	engines := []string{"fast", "blocks"}
	for i := 0; i < 64; i++ {
		outcome := "done"
		if i%16 == 15 {
			outcome = "failed"
		}
		samples = append(samples, JobSample{
			Tenant:           tenants[i%2],
			Engine:           engines[(i/2)%2],
			Outcome:          outcome,
			LatencySeconds:   0.01 * float64(i+1),
			AdmissionSeconds: 0.0001 * float64(i%8+1),
			InstrsPerSec:     1e6 + 1e4*float64(i),
			Instructions:     uint64(1000 * (i + 1)),
			Preempts:         uint64(i%7 + 1),
			Counters: map[string]uint64{
				"xlate.block_hits":         uint64(10 * i),
				"xlate.block_translations": uint64(i),
			},
		})
	}
	return samples
}

func render(t *testing.T, r *Rollup) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRollupShardMergeEquivalence is the partition-then-aggregate
// correctness criterion: the same samples through 1, 3, or 16 shards
// must render byte-identical expositions, because the sketch merge is
// exact. 3 shards is the interesting case — 64 samples do not divide
// evenly, so any order- or grouping-sensitivity would show.
func TestRollupShardMergeEquivalence(t *testing.T) {
	samples := fleetSamples()
	var want string
	for _, shards := range []int{1, 3, 16} {
		r := NewRollup(shards)
		for _, s := range samples {
			r.Observe(s)
		}
		if got := r.Jobs(); got != 64 {
			t.Fatalf("%d shards: jobs = %d, want 64", shards, got)
		}
		text := render(t, r)
		if want == "" {
			want = text
		} else if text != want {
			t.Errorf("%d-shard exposition differs from 1-shard:\n%s", shards, text)
		}
	}
}

func TestRollupExpositionGolden(t *testing.T) {
	r := NewRollup(4)
	for _, s := range fleetSamples() {
		r.Observe(s)
	}
	got := render(t, r)
	golden := filepath.Join("testdata", "rollup.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestRollupExpositionShape spot-checks the format invariants a scraper
// needs: HELP and TYPE precede every family, summaries carry the three
// quantile labels plus _sum/_count, and every sample row is labeled
// with tenant and engine.
func TestRollupExpositionShape(t *testing.T) {
	r := NewRollup(0)
	for _, s := range fleetSamples() {
		r.Observe(s)
	}
	text := render(t, r)
	for _, family := range []struct{ name, kind string }{
		{"jobs_latency_seconds", "summary"},
		{"jobs_admission_seconds", "summary"},
		{"jobs_instrs_per_second", "summary"},
		{"jobs_preempts", "summary"},
		{"jobs_outcomes", "counter"},
		{"jobs_rollup_instructions", "counter"},
		{"xlate_block_hits", "counter"},
		{"xlate_block_translations", "counter"},
	} {
		if !strings.Contains(text, "# HELP "+family.name+" ") {
			t.Errorf("missing HELP for %s", family.name)
		}
		if !strings.Contains(text, fmt.Sprintf("# TYPE %s %s\n", family.name, family.kind)) {
			t.Errorf("missing TYPE %s %s", family.name, family.kind)
		}
	}
	for _, want := range []string{
		`jobs_latency_seconds{tenant="alpha",engine="blocks",quantile="0.5"}`,
		`jobs_latency_seconds{tenant="beta",engine="fast",quantile="0.99"}`,
		`jobs_latency_seconds_sum{tenant="alpha",engine="fast"}`,
		`jobs_latency_seconds_count{tenant="beta",engine="blocks"} 16`,
		`jobs_outcomes{tenant="beta",engine="blocks",outcome="failed"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRollupConcurrentObserve pounds every shard from many writers
// while a reader merges continuously; the race detector referees and
// the final count must be exact.
func TestRollupConcurrentObserve(t *testing.T) {
	r := NewRollup(8)
	samples := fleetSamples()
	const writers = 8
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				_ = r.WriteExposition(&buf)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range samples {
				r.Observe(s)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := r.Jobs(); got != uint64(writers*len(samples)) {
		t.Fatalf("jobs = %d, want %d", got, writers*len(samples))
	}
}
