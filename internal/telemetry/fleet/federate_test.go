package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNormalizePeer(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{in: "localhost:9418", want: "http://localhost:9418"},
		{in: "http://localhost:9418/", want: "http://localhost:9418"},
		{in: "https://worker-2:443", want: "https://worker-2:443"},
		{in: "  host:1 ", want: "http://host:1"},
		{in: "", wantErr: true},
		{in: "ftp://host:1", wantErr: true},
		{in: "http://", wantErr: true},
	}
	for _, c := range cases {
		got, err := NormalizePeer(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("NormalizePeer(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("NormalizePeer(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

// fakeWorker serves a fixed /metrics exposition and fleet flamegraph,
// standing in for a peer mipsd.
func fakeWorker(t *testing.T, metrics, folded string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(metrics))
	})
	mux.HandleFunc("/profile/flame", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("scope") != "fleet" {
			http.Error(w, "want scope=fleet", http.StatusBadRequest)
			return
		}
		w.Write([]byte(folded))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

const workerAMetrics = `# HELP jobs_completed jobs that ran to a clean halt
# TYPE jobs_completed counter
jobs_completed 3
# HELP jobs_latency_seconds per-job wall time
# TYPE jobs_latency_seconds summary
jobs_latency_seconds{tenant="alpha",engine="fast",quantile="0.5"} 0.25
jobs_latency_seconds_sum{tenant="alpha",engine="fast"} 1.5
jobs_latency_seconds_count{tenant="alpha",engine="fast"} 3
`

const workerBMetrics = `# TYPE jobs_completed counter
jobs_completed 7
# TYPE xlate_block_hits counter
xlate_block_hits{tenant="beta",engine="blocks"} 42
`

func TestFederationMergedMetrics(t *testing.T) {
	a := fakeWorker(t, workerAMetrics, "user;main 10\n")
	b := fakeWorker(t, workerBMetrics, "user;main 5\nkernel;<kernel> 2\n")
	fed := NewFederation(0)
	for _, ts := range []*httptest.Server{a, b} {
		if _, err := fed.AddPeer(ts.URL); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	err := fed.WriteMergedMetrics(&buf, func(w io.Writer) error {
		_, e := w.Write([]byte("# TYPE jobs_completed counter\njobs_completed 1\n"))
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// The local series stays bare; each peer's gains its worker label.
	wantA := `jobs_completed{worker="` + workerLabel(a.URL) + `"} 3`
	wantB := `jobs_completed{worker="` + workerLabel(b.URL) + `"} 7`
	for _, want := range []string{
		"jobs_completed 1\n",
		wantA,
		wantB,
		`fleet_peer_up{worker="` + workerLabel(a.URL) + `"} 1`,
		`fleet_peer_up{worker="` + workerLabel(b.URL) + `"} 1`,
		"fleet_peers 2",
		"fleet_peer_scrape_errors 0",
		// Summary sub-series keep their full names under one family.
		`jobs_latency_seconds_sum{tenant="alpha",engine="fast",worker="` + workerLabel(a.URL) + `"} 1.5`,
		`xlate_block_hits{tenant="beta",engine="blocks",worker="` + workerLabel(b.URL) + `"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged exposition missing %q\n%s", want, text)
		}
	}
	// One TYPE line per family, even though three sources emitted
	// jobs_completed.
	if n := strings.Count(text, "# TYPE jobs_completed "); n != 1 {
		t.Errorf("jobs_completed has %d TYPE lines, want 1", n)
	}
}

func TestFederationDeadPeer(t *testing.T) {
	live := fakeWorker(t, workerBMetrics, "user;main 5\n")
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	fed := NewFederation(0)
	if _, err := fed.AddPeer(live.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddPeer(deadURL); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err := fed.WriteMergedMetrics(&buf, func(w io.Writer) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`fleet_peer_up{worker="` + workerLabel(live.URL) + `"} 1`,
		`fleet_peer_up{worker="` + workerLabel(deadURL) + `"} 0`,
		"fleet_peer_scrape_errors 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged exposition missing %q\n%s", want, text)
		}
	}
	if fed.ScrapeErrors() != 1 {
		t.Errorf("scrape errors = %d, want 1", fed.ScrapeErrors())
	}

	// The flamegraph merge skips the dead peer the same way.
	merged, failed := fed.MergedFolded(map[string]uint64{"user;main": 1})
	if failed != 1 {
		t.Errorf("folded merge failed = %d, want 1", failed)
	}
	if merged["user;main"] != 6 {
		t.Errorf("merged user;main = %d, want 6 (local 1 + live peer 5)", merged["user;main"])
	}
}

func TestFederationMergedFolded(t *testing.T) {
	a := fakeWorker(t, "", "user;main 10\nuser;helper 4\n")
	b := fakeWorker(t, "", "user;main 5\nkernel;<kernel> 2\n")
	fed := NewFederation(0)
	for _, ts := range []*httptest.Server{a, b} {
		if _, err := fed.AddPeer(ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	merged, failed := fed.MergedFolded(map[string]uint64{"user;main": 1, "user;local_only": 9})
	if failed != 0 {
		t.Fatalf("failed = %d, want 0", failed)
	}
	want := map[string]uint64{
		"user;main":       16,
		"user;helper":     4,
		"kernel;<kernel>": 2,
		"user;local_only": 9,
	}
	for stack, n := range want {
		if merged[stack] != n {
			t.Errorf("merged[%q] = %d, want %d", stack, merged[stack], n)
		}
	}
}

func TestFederationHandler(t *testing.T) {
	fed := NewFederation(0)
	ts := httptest.NewServer(fed.Handler())
	t.Cleanup(ts.Close)

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/fleet/peers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post(`{"url": "worker-1:9418"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add peer status = %d", resp.StatusCode)
	}
	var got struct {
		Peers []string `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got.Peers) != 1 || got.Peers[0] != "http://worker-1:9418" {
		t.Fatalf("peers after add = %v", got.Peers)
	}

	if resp := post(`{"url": "ftp://nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad peer status = %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/fleet/peers?url=worker-1:9418", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("delete status = %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/fleet/peers?url=worker-1:9418", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete status = %d, want 404", resp.StatusCode)
	}
}
