package fleet

import (
	"sort"
	"sync"

	"mips/internal/trace"
)

// Directory is a registry of live trace sources (one per traced job).
// The telemetry server's sampled SSE mode (/trace/stream?sample=K)
// draws from it: tail K of N sources with explicit skip accounting,
// instead of fanning every job's events out to every client. It
// implements the telemetry.TraceSampler interface, and the job
// service's sim.TracerRegistry interface, without importing either
// package.
type Directory struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*trace.Tracer
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{byName: make(map[string]*trace.Tracer)}
}

// AddTracer registers (or replaces) a named trace source.
func (d *Directory) AddTracer(name string, t *trace.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.byName[name]; !ok {
		d.order = append(d.order, name)
	}
	d.byName[name] = t
}

// RemoveTracer drops a named source.
func (d *Directory) RemoveTracer(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.byName[name]; !ok {
		return
	}
	delete(d.byName, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Len returns the number of registered sources.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byName)
}

// Names returns the registered source names, sorted.
func (d *Directory) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	sort.Strings(out)
	return out
}

// SampleTracers picks up to k sources (registration order, so the
// sample is stable across calls while the set is stable) and reports
// how many sources exist in total; total-len(names) were skipped.
// k <= 0 selects every source.
func (d *Directory) SampleTracers(k int) (names []string, tracers []*trace.Tracer, total int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	total = len(d.order)
	n := total
	if k > 0 && k < n {
		n = k
	}
	names = make([]string, 0, n)
	tracers = make([]*trace.Tracer, 0, n)
	for _, name := range d.order[:n] {
		names = append(names, name)
		tracers = append(tracers, d.byName[name])
	}
	return names, tracers, total
}
