package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Folded-stack plumbing for the fleet flamegraph: per-job profiles
// render to "frame;frame count" maps (trace.Profiler.Folded), and a
// fleet view is the union of many such maps — identical stacks sum, so
// one flamegraph shows where the whole fleet's cycles went.

// MergeFolded sums src into dst.
func MergeFolded(dst, src map[string]uint64) {
	for stack, n := range src {
		dst[stack] += n
	}
}

// ParseFolded reads folded-stack text into stack -> weight. It accepts
// exactly what WriteFolded (and the telemetry /profile/flame endpoints)
// emit: one "frames count" line per stack.
func ParseFolded(r io.Reader) (map[string]uint64, error) {
	out := map[string]uint64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("fleet: folded line %q has no count", line)
		}
		n, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: folded line %q: %w", line, err)
		}
		out[line[:i]] += n
	}
	return out, sc.Err()
}

// WriteFolded renders a folded map deterministically: heaviest stack
// first, ties broken by stack name.
func WriteFolded(w io.Writer, m map[string]uint64) error {
	type row struct {
		stack string
		n     uint64
	}
	rows := make([]row, 0, len(m))
	for s, n := range m {
		rows = append(rows, row{s, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].stack < rows[j].stack
	})
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s %d\n", r.stack, r.n); err != nil {
			return err
		}
	}
	return nil
}
