package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// JobSample is one terminal job's contribution to the fleet rollup.
// The job service emits one per job that reaches a terminal state; the
// rollup aggregates them per (tenant, engine) group.
type JobSample struct {
	// Tenant and Engine label the group the sample aggregates into.
	Tenant string
	Engine string
	// Outcome is the terminal state: done, failed, or cancelled.
	Outcome string
	// LatencySeconds is admission-to-terminal wall time.
	LatencySeconds float64
	// AdmissionSeconds is submission-to-runnable-machine wall time —
	// the admission latency warm-fork templates exist to shrink.
	AdmissionSeconds float64
	// InstrsPerSec is the job's retirement rate over its running time.
	InstrsPerSec float64
	// Instructions and Preempts are the job's totals (preempts =
	// scheduling quanta, i.e. checkpoint-preemptions).
	Instructions uint64
	Preempts     uint64
	// Counters carries extra monotonic totals to roll up under the same
	// labels — the job service forwards the machine's xlate.* counters
	// here so translation-cache behavior is visible per tenant.
	Counters map[string]uint64
}

// GroupKey identifies one rollup group.
type GroupKey struct {
	Tenant string
	Engine string
}

// Group is the merged aggregate of one (tenant, engine) group.
type Group struct {
	Outcomes  map[string]uint64
	Latency   *Sketch // seconds, admission to terminal
	Admission *Sketch // seconds, submission to runnable machine
	Rate      *Sketch // instructions per second while running
	Preempts  *Sketch // scheduling quanta per job
	// Instructions is the summed retirement count; Counters the summed
	// extra totals (xlate.* from the job service).
	Instructions uint64
	Counters     map[string]uint64
}

func newGroup() *Group {
	return &Group{
		Outcomes:  make(map[string]uint64),
		Latency:   NewSketch(),
		Admission: NewSketch(),
		Rate:      NewSketch(),
		Preempts:  NewSketch(),
		Counters:  make(map[string]uint64),
	}
}

func (g *Group) observe(s JobSample) {
	g.Outcomes[s.Outcome]++
	g.Latency.Add(s.LatencySeconds)
	g.Admission.Add(s.AdmissionSeconds)
	g.Rate.Add(s.InstrsPerSec)
	g.Preempts.Add(float64(s.Preempts))
	g.Instructions += s.Instructions
	for name, v := range s.Counters {
		g.Counters[name] += v
	}
}

// merge folds o into g (read-time shard merge).
func (g *Group) merge(o *Group) {
	for k, v := range o.Outcomes {
		g.Outcomes[k] += v
	}
	g.Latency.Merge(o.Latency)
	g.Admission.Merge(o.Admission)
	g.Rate.Merge(o.Rate)
	g.Preempts.Merge(o.Preempts)
	g.Instructions += o.Instructions
	for k, v := range o.Counters {
		g.Counters[k] += v
	}
}

func (g *Group) clone() *Group {
	c := &Group{
		Outcomes:     make(map[string]uint64, len(g.Outcomes)),
		Latency:      g.Latency.Clone(),
		Admission:    g.Admission.Clone(),
		Rate:         g.Rate.Clone(),
		Preempts:     g.Preempts.Clone(),
		Instructions: g.Instructions,
		Counters:     make(map[string]uint64, len(g.Counters)),
	}
	for k, v := range g.Outcomes {
		c.Outcomes[k] = v
	}
	for k, v := range g.Counters {
		c.Counters[k] = v
	}
	return c
}

type rollupShard struct {
	mu     sync.Mutex
	groups map[GroupKey]*Group
}

// Rollup is the sharded fleet aggregation registry. Writers (job
// service workers reporting terminal jobs) round-robin across shards
// and hold only that shard's lock for the duration of one accumulation;
// readers merge every shard at read time. With S shards, a reader
// contends with at most 1/S of concurrent writers and never holds more
// than one shard lock at a time, so an exposition render can never
// stall the worker pool.
type Rollup struct {
	shards []rollupShard
	next   atomic.Uint64
}

// DefaultRollupShards is the shard count NewRollup uses for
// non-positive requests.
const DefaultRollupShards = 16

// NewRollup returns a rollup with the given shard count
// (DefaultRollupShards if shards <= 0).
func NewRollup(shards int) *Rollup {
	if shards <= 0 {
		shards = DefaultRollupShards
	}
	r := &Rollup{shards: make([]rollupShard, shards)}
	for i := range r.shards {
		r.shards[i].groups = make(map[GroupKey]*Group)
	}
	return r
}

// Observe accumulates one sample into the next shard (round-robin).
// Safe for concurrent use from any number of writers.
func (r *Rollup) Observe(s JobSample) {
	sh := &r.shards[r.next.Add(1)%uint64(len(r.shards))]
	key := GroupKey{Tenant: s.Tenant, Engine: s.Engine}
	sh.mu.Lock()
	g := sh.groups[key]
	if g == nil {
		g = newGroup()
		sh.groups[key] = g
	}
	g.observe(s)
	sh.mu.Unlock()
}

// Merged returns the read-time merge of every shard: an independent
// copy, safe to inspect while writers keep accumulating.
func (r *Rollup) Merged() map[GroupKey]*Group {
	out := make(map[GroupKey]*Group)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for key, g := range sh.groups {
			m := out[key]
			if m == nil {
				out[key] = g.clone()
			} else {
				m.merge(g)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Jobs returns the total number of samples observed.
func (r *Rollup) Jobs() uint64 {
	var n uint64
	for _, g := range r.Merged() {
		n += g.Latency.Count()
	}
	return n
}

// rollupQuantiles are the quantile labels every summary family exposes.
var rollupQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}

// WriteExposition renders the rollup as Prometheus text: the jobs.*
// quantile families as summaries (p50/p95/p99 plus _sum and _count),
// the outcome and instruction counters, and one counter family per
// extra rolled-up total (xlate.*), all labeled {tenant, engine}.
// Output is deterministic: families sort by name, samples by label.
func (r *Rollup) WriteExposition(w io.Writer) error {
	merged := r.Merged()
	if len(merged) == 0 {
		return nil
	}
	keys := make([]GroupKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Tenant != keys[j].Tenant {
			return keys[i].Tenant < keys[j].Tenant
		}
		return keys[i].Engine < keys[j].Engine
	})

	base := func(k GroupKey) string {
		return fmt.Sprintf("tenant=%q,engine=%q", k.Tenant, k.Engine)
	}

	summary := func(name, help string, pick func(*Group) *Sketch) error {
		if err := writeFamilyHeader(w, name, "summary", help); err != nil {
			return err
		}
		for _, k := range keys {
			sk := pick(merged[k])
			for _, rq := range rollupQuantiles {
				if _, err := fmt.Fprintf(w, "%s{%s,quantile=%q} %.6g\n",
					name, base(k), rq.label, sk.Quantile(rq.q)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %.6g\n%s_count{%s} %d\n",
				name, base(k), sk.Sum(), name, base(k), sk.Count()); err != nil {
				return err
			}
		}
		return nil
	}

	if err := summary("jobs_instrs_per_second", "per-job instruction retirement rate while running", func(g *Group) *Sketch { return g.Rate }); err != nil {
		return err
	}
	if err := summary("jobs_latency_seconds", "per-job wall time from admission to terminal state", func(g *Group) *Sketch { return g.Latency }); err != nil {
		return err
	}
	if err := summary("jobs_admission_seconds", "per-job wall time from submission to a runnable machine", func(g *Group) *Sketch { return g.Admission }); err != nil {
		return err
	}

	if err := writeFamilyHeader(w, "jobs_outcomes", "counter", "terminal jobs by outcome"); err != nil {
		return err
	}
	for _, k := range keys {
		outs := make([]string, 0, len(merged[k].Outcomes))
		for o := range merged[k].Outcomes {
			outs = append(outs, o)
		}
		sort.Strings(outs)
		for _, o := range outs {
			if _, err := fmt.Fprintf(w, "jobs_outcomes{%s,outcome=%q} %d\n",
				base(k), o, merged[k].Outcomes[o]); err != nil {
				return err
			}
		}
	}

	if err := summary("jobs_preempts", "checkpoint-preemptions (scheduling quanta) per job", func(g *Group) *Sketch { return g.Preempts }); err != nil {
		return err
	}

	if err := writeFamilyHeader(w, "jobs_rollup_instructions", "counter", "instructions retired by terminal jobs"); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "jobs_rollup_instructions{%s} %d\n",
			base(k), merged[k].Instructions); err != nil {
			return err
		}
	}

	// The extra rolled-up totals, one counter family per name.
	famNames := map[string]bool{}
	for _, g := range merged {
		for name := range g.Counters {
			famNames[name] = true
		}
	}
	extra := make([]string, 0, len(famNames))
	for name := range famNames {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		prom := sanitizeMetricName(name)
		if err := writeFamilyHeader(w, prom, "counter", "fleet rollup of "+name+" over terminal jobs"); err != nil {
			return err
		}
		for _, k := range keys {
			v, ok := merged[k].Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{%s} %d\n", prom, base(k), v); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFamilyHeader(w io.Writer, name, kind, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	return err
}

// sanitizeMetricName maps a registry-style dotted name onto the
// Prometheus metric name alphabet (mirrors telemetry.SanitizeMetricName
// without importing the parent package).
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		b[i] = c
	}
	return string(b)
}
