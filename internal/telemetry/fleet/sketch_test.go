package fleet

import (
	"math"
	"reflect"
	"testing"
)

// The sketch's contract has two halves: quantiles are correct to the
// configured relative error, and merging is an exact bit-for-bit
// associative/commutative fold — the property the sharded rollup and
// cross-worker federation both lean on.

// relErr is the assertion bound: the bucket width (~2% for gamma=1.04)
// with a little slack for the midpoint representative.
const relErr = 0.05

func TestSketchQuantileAccuracy(t *testing.T) {
	s := NewSketch()
	const n = 10_000
	for i := 1; i <= n; i++ {
		s.Add(float64(i))
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	if s.Min() != 1 || s.Max() != n {
		t.Fatalf("min/max = %g/%g, want 1/%d", s.Min(), s.Max(), n)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := q * n
		got := s.Quantile(q)
		if math.Abs(got-exact)/exact > relErr {
			t.Errorf("q%.2f = %g, want %g within %.0f%%", q, got, exact, 100*relErr)
		}
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want exact min 1", got)
	}
	if got := s.Quantile(1); got != n {
		t.Errorf("q1 = %g, want exact max %d", got, n)
	}
}

func TestSketchZeroAndNegative(t *testing.T) {
	s := NewSketch()
	s.Add(0)
	s.Add(-3)
	s.Add(5)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	// Two of three observations sit in the zero bucket, so the median
	// reads 0; the sum counts only positive mass.
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median = %g, want 0", got)
	}
	if s.Sum() != 5 {
		t.Errorf("sum = %g, want 5", s.Sum())
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Quantile(0.5) != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sketch must read all zeros")
	}
	// Merging an empty sketch is a no-op.
	o := NewSketch()
	o.Add(7)
	before := o.Clone()
	o.Merge(s)
	if !reflect.DeepEqual(o, before) {
		t.Error("merging an empty sketch changed the target")
	}
}

// fill returns a sketch over a deterministic pseudo-random-ish series
// (a Weyl sequence — no math/rand needed for reproducibility).
func fill(seed, n int) *Sketch {
	s := NewSketch()
	x := float64(seed)
	for i := 0; i < n; i++ {
		x = math.Mod(x*1.618033988749+0.5, 1000)
		s.Add(x)
	}
	return s
}

// assertSketchEqual compares merged states: the bucket histogram (the
// part quantiles read from) must match bit-for-bit; the float running
// sum is allowed last-ulp drift from addition order.
func assertSketchEqual(t *testing.T, label string, a, b *Sketch) {
	t.Helper()
	if !reflect.DeepEqual(a.counts, b.counts) || a.zero != b.zero || a.total != b.total ||
		a.min != b.min || a.max != b.max {
		t.Fatalf("%s: merged histograms differ", label)
	}
	if diff := math.Abs(a.sum - b.sum); diff > 1e-9*math.Abs(a.sum) {
		t.Fatalf("%s: sums differ beyond rounding: %g vs %g", label, a.sum, b.sum)
	}
}

func TestSketchMergeAssociativeAndCommutative(t *testing.T) {
	a, b, c := fill(1, 500), fill(2, 700), fill(3, 901)

	left := a.Clone() // (a ⊕ b) ⊕ c
	left.Merge(b)
	left.Merge(c)

	bc := b.Clone() // a ⊕ (b ⊕ c)
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)
	assertSketchEqual(t, "associativity: (a+b)+c vs a+(b+c)", left, right)

	rev := c.Clone() // c ⊕ b ⊕ a
	rev.Merge(b)
	rev.Merge(a)
	assertSketchEqual(t, "commutativity: a+b+c vs c+b+a", left, rev)

	// Merging the same shards into a fresh (empty) sketch yields
	// identical state — a reader rebuilding from shards loses nothing.
	all := NewSketch()
	for _, src := range []*Sketch{a, b, c} {
		all.Merge(src)
	}
	assertSketchEqual(t, "fresh-target rebuild", left, all)

	// Every quantile reads identically across all groupings — the
	// user-visible face of the same property.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if left.Quantile(q) != right.Quantile(q) || left.Quantile(q) != rev.Quantile(q) {
			t.Fatalf("quantile %.2f differs across merge orders", q)
		}
	}
}
