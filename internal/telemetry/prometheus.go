package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"mips/internal/trace"
)

// The /metrics endpoint speaks the Prometheus text exposition format
// (version 0.0.4): for every metric name an optional HELP line, a TYPE
// line, then one sample per source. Registry names like "cpu.cycles"
// sanitize to "cpu_cycles"; a source's label appears as
// {experiment="..."} so paperbench's aggregated registries stay
// distinguishable while a single-run tool emits bare series.

const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", prometheusContentType)
	s.mu.Lock()
	body := s.metricsBody
	s.mu.Unlock()
	if body != nil {
		body(w)
		return
	}
	s.RenderLocalMetrics(w)
}

// RenderLocalMetrics writes this worker's own exposition: the source
// registries, every registered collector (fleet rollup, tenant gauges),
// and the SSE drop counters. A SetMetricsBody override (the federation
// coordinator) calls it to obtain the local half of the merged view.
func (s *Server) RenderLocalMetrics(w io.Writer) error {
	if err := WriteExposition(w, s.Sources()); err != nil {
		return err
	}
	s.mu.Lock()
	collectors := make([]func(io.Writer) error, len(s.collectors))
	copy(collectors, s.collectors)
	s.mu.Unlock()
	for _, fn := range collectors {
		if err := fn(w); err != nil {
			return err
		}
	}
	return s.writeSSEDropMetrics(w)
}

// WriteExposition renders the sources as Prometheus text. Output is
// deterministic: metric names sort lexically and samples follow source
// order (Sources sorts by label).
func WriteExposition(w io.Writer, sources []Source) error {
	type sample struct {
		label string
		value uint64
	}
	type series struct {
		kind    trace.MetricKind
		help    string
		samples []sample
	}
	byName := map[string]*series{}
	for _, src := range sources {
		snap := src.Registry.Snapshot()
		for name, v := range snap {
			se := byName[name]
			if se == nil {
				kind, help := src.Registry.Meta(name)
				se = &series{kind: kind, help: help}
				byName[name] = se
			}
			se.samples = append(se.samples, sample{label: src.Label, value: v})
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		se := byName[name]
		promName := SanitizeMetricName(name)
		help := se.help
		if help == "" {
			help = "registry metric " + name
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			promName, escapeHelp(help), promName, se.kind); err != nil {
			return err
		}
		for _, sm := range se.samples {
			var err error
			if sm.label == "" {
				_, err = fmt.Fprintf(w, "%s %d\n", promName, sm.value)
			} else {
				_, err = fmt.Fprintf(w, "%s{experiment=\"%s\"} %d\n",
					promName, escapeLabel(sm.label), sm.value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// SanitizeMetricName maps a registry name onto the Prometheus metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. Distinct registry names that
// sanitize identically would merge; the repo's dotted naming scheme
// never does.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
