package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mips/internal/codegen"
	"mips/internal/corpus"
	"mips/internal/cpu"
	"mips/internal/reorg"
	"mips/internal/trace"
)

// runCorpus compiles and runs one corpus program with a registry,
// tracer, and profiler attached, returning them at quiescence — the
// acceptance setup: a finished run whose live exposition must agree
// with the end-of-run snapshot exactly.
func runCorpus(t *testing.T, name string) (*trace.Registry, *trace.Tracer, *trace.Profiler, codegen.RunResult) {
	t.Helper()
	p, err := corpus.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	im, _, err := codegen.CompileMIPS(p.Source, codegen.MIPSOptions{}, reorg.All())
	if err != nil {
		t.Fatal(err)
	}
	profiler := trace.NewProfiler()
	profiler.AddImage(im)
	tracer := trace.NewTracer(1 << 12)
	obs := &trace.Observer{Tracer: tracer, Profiler: profiler}
	reg := trace.NewRegistry()
	res, err := codegen.RunMIPSWith(im, 500_000_000, codegen.RunOptions{
		Attach: func(c *cpu.CPU) {
			obs.Attach(c)
			trace.RegisterCPUStats(reg, "cpu.", &c.Stats)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Output != "" && res.Output != p.Output {
		t.Fatalf("%s output = %q, want %q", name, res.Output, p.Output)
	}
	return reg, tracer, profiler, res
}

// TestMetricsMatchesSnapshot is the acceptance criterion: served
// /metrics parses as Prometheus text and its cpu_cycles equals the
// end-of-run registry snapshot exactly.
func TestMetricsMatchesSnapshot(t *testing.T) {
	reg, tracer, profiler, res := runCorpus(t, "calc")
	srv := New(Config{Program: "test", Engine: "fast", Tracer: tracer, Profiler: profiler})
	srv.AddSource("", reg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := get(t, ts.URL+"/metrics")
	samples := parsePrometheus(t, body)
	snap := reg.Snapshot()
	if samples["cpu_cycles"] != snap["cpu.cycles"] {
		t.Errorf("served cpu_cycles = %d, snapshot = %d", samples["cpu_cycles"], snap["cpu.cycles"])
	}
	if samples["cpu_cycles"] != res.Stats.Cycles {
		t.Errorf("served cpu_cycles = %d, Stats.Cycles = %d", samples["cpu_cycles"], res.Stats.Cycles)
	}
	if samples["cpu_instructions"] != snap["cpu.instructions"] {
		t.Errorf("served cpu_instructions = %d, snapshot = %d",
			samples["cpu_instructions"], snap["cpu.instructions"])
	}
}

func TestStatusEndpoint(t *testing.T) {
	reg, tracer, _, res := runCorpus(t, "calc")
	srv := New(Config{
		Program: "mipsrun", Args: []string{"-corpus", "calc"}, Engine: "fast",
		Tracer: tracer, SampleInterval: 10 * time.Millisecond,
	})
	srv.AddSource("", reg)

	// Drive the sampler by hand: two samples with work in between would
	// show a rate; at quiescence the delta is zero, which must read as
	// rate 0, not garbage.
	srv.sample()
	time.Sleep(15 * time.Millisecond)
	srv.sample()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st Status
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Program != "mipsrun" || st.Engine != "fast" {
		t.Errorf("identity = %q/%q", st.Program, st.Engine)
	}
	if st.Totals.Cycles != res.Stats.Cycles {
		t.Errorf("status cycles = %d, want %d", st.Totals.Cycles, res.Stats.Cycles)
	}
	if st.Rates.CyclesPerSec != 0 {
		t.Errorf("quiescent rate = %f, want 0", st.Rates.CyclesPerSec)
	}
	if st.Trace == nil || st.Trace.Events == 0 {
		t.Error("trace status missing or empty")
	}
}

// TestStatusRates checks the sampler arithmetic on a hand-driven
// counter: N increments over the sample window surface as a positive
// rate.
func TestStatusRates(t *testing.T) {
	reg := trace.NewRegistry()
	c := reg.Counter("cpu.instructions")
	reg.Counter("cpu.cycles").Add(0)
	srv := New(Config{Program: "test"})
	srv.AddSource("", reg)
	srv.sample()
	c.Add(5000)
	time.Sleep(20 * time.Millisecond)
	srv.sample()
	inst, _ := srv.rates()
	if inst <= 0 {
		t.Fatalf("instructions/sec = %f, want > 0", inst)
	}
}

func TestServerStartServes(t *testing.T) {
	reg, tracer, _, _ := runCorpus(t, "calc")
	srv := New(Config{Program: "test", Tracer: tracer, SampleInterval: 20 * time.Millisecond})
	srv.AddSource("", reg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := get(t, "http://"+addr.String()+"/metrics")
	if !strings.Contains(body, "cpu_cycles") {
		t.Error("started server does not expose cpu_cycles")
	}
	if body := get(t, "http://"+addr.String()+"/"); !strings.Contains(body, "/trace/stream") {
		t.Error("index does not list endpoints")
	}
}

func TestProfileEndpointsWithoutProfiler(t *testing.T) {
	srv := New(Config{Program: "test"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/profile/flame", "/profile/top", "/trace/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without backing = %d, want 404", path, resp.StatusCode)
		}
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
