package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mips/internal/telemetry/fleet"
	"mips/internal/trace"
)

// The sampled stream: /trace/stream?sample=K tails K of N live
// tracers through one merged drop-counting channel. The fleet
// directory is the production TraceSampler, so these tests exercise
// the real pairing.

func sampledClient(t *testing.T, url string, want int, tracers ...*trace.Tracer) (*http.Response, *bufio.Scanner) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status = %d: %s", resp.StatusCode, body)
	}
	// Wait until the sampled tracers all see their forwarder
	// subscription, so no emitted event can race past the subscribe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		subscribed := 0
		for _, tr := range tracers[:want] {
			if tr.Subscribers() > 0 {
				subscribed++
			}
		}
		if subscribed == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d sampled tracers subscribed", subscribed, want)
		}
		time.Sleep(time.Millisecond)
	}
	timer := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	t.Cleanup(func() { timer.Stop(); resp.Body.Close() })
	return resp, bufio.NewScanner(resp.Body)
}

func TestSampledStreamAnnouncesAndDelivers(t *testing.T) {
	dir := fleet.NewDirectory()
	t1, t2, t3 := trace.NewTracer(64), trace.NewTracer(64), trace.NewTracer(64)
	dir.AddTracer("job-1", t1)
	dir.AddTracer("job-2", t2)
	dir.AddTracer("job-3", t3)
	srv := New(Config{Program: "test", Sampler: dir, Heartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	_, sc := sampledClient(t, ts.URL+"/trace/stream?sample=2", 2, t1, t2, t3)

	// The not-sampled tracer emits into the void; the sampled two are
	// what the stream must carry.
	t3.Emit(trace.Event{Kind: trace.KindRetire, Cycle: 999})
	for i := 0; i < 3; i++ {
		t1.Emit(trace.Event{Kind: trace.KindRetire, Cycle: uint64(10 + i)})
		t2.Emit(trace.Event{Kind: trace.KindRetire, Cycle: uint64(20 + i)})
	}

	type announce struct {
		Sources []string `json:"sources"`
		Sampled int      `json:"sampled"`
		Total   int      `json:"total"`
		Skipped int      `json:"skipped"`
	}
	var ann *announce
	cycles := map[uint64]bool{}
	var event string
	for sc.Scan() && len(cycles) < 6 {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "sample":
			var a announce
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &a); err != nil {
				t.Fatalf("bad sample frame %q: %v", line, err)
			}
			ann = &a
		case strings.HasPrefix(line, "data: ") && event == "trace":
			var f struct {
				Cycle uint64 `json:"cycle"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				t.Fatalf("bad trace frame %q: %v", line, err)
			}
			cycles[f.Cycle] = true
		}
	}
	if ann == nil {
		t.Fatal("no sample announce frame before the first events")
	}
	if ann.Sampled != 2 || ann.Total != 3 || ann.Skipped != 1 {
		t.Errorf("announce = %+v, want sampled 2 of 3, skipped 1", *ann)
	}
	if len(ann.Sources) != 2 || ann.Sources[0] != "job-1" || ann.Sources[1] != "job-2" {
		t.Errorf("announce sources = %v", ann.Sources)
	}
	for _, c := range []uint64{10, 11, 12, 20, 21, 22} {
		if !cycles[c] {
			t.Errorf("missing event cycle %d from sampled stream", c)
		}
	}
	if cycles[999] {
		t.Error("event from a non-sampled tracer leaked into the stream")
	}
}

func TestSampledStreamRequiresSampler(t *testing.T) {
	srv := New(Config{Program: "test"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/trace/stream?sample=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404 without a sampler", resp.StatusCode)
	}

	dir := fleet.NewDirectory()
	srv2 := New(Config{Program: "test", Sampler: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	resp, err = http.Get(ts2.URL + "/trace/stream?sample=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 for a bad sample count", resp.StatusCode)
	}
}

// TestSSEDropMetrics pins the satellite contract: per-client drop
// counters appear on /metrics as telemetry_sse_dropped{client="cN"}
// while a client is connected, fold into telemetry_sse_dropped_total
// after it disconnects, and are entirely absent before any client ever
// connects (so non-streaming tools keep their exposition unchanged).
func TestSSEDropMetrics(t *testing.T) {
	tr := trace.NewTracer(64)
	srv := New(Config{
		Program: "test", Tracer: tr,
		SinkBuffer: 4, Heartbeat: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if text := scrape(); strings.Contains(text, "telemetry_sse_dropped") {
		t.Fatal("drop metrics exposed before any client connected")
	}

	resp, sc := sseClientForDrops(t, ts.URL, tr)
	// Burst without reading: the 4-slot sink must overflow.
	for i := 0; i < 50_000; i++ {
		tr.Emit(trace.Event{Kind: trace.KindRetire, Cycle: uint64(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	var text string
	for {
		text = scrape()
		if strings.Contains(text, `telemetry_sse_dropped{client="c1"}`) &&
			!strings.Contains(text, `telemetry_sse_dropped{client="c1"} 0`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no per-client drops on /metrics after burst:\n%s", text)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(text, "# TYPE telemetry_sse_dropped counter") ||
		!strings.Contains(text, "# TYPE telemetry_sse_dropped_total counter") {
		t.Error("drop families missing TYPE lines")
	}

	// Disconnect; the per-client series retires but its drops persist
	// in the cumulative total.
	resp.Body.Close()
	_ = sc
	deadline = time.Now().Add(5 * time.Second)
	for {
		text = scrape()
		if !strings.Contains(text, `telemetry_sse_dropped{client="c1"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("per-client series still exposed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if strings.Contains(text, "telemetry_sse_dropped_total 0\n") {
		t.Error("cumulative drop total lost the closed client's drops")
	}
	if !strings.Contains(text, "telemetry_sse_dropped_total ") {
		t.Error("cumulative drop total missing after disconnect")
	}
}

// sseClientForDrops opens the plain stream without the scanner loop —
// the test never reads the body, maximizing backpressure.
func sseClientForDrops(t *testing.T, url string, tr *trace.Tracer) (*http.Response, *bufio.Scanner) {
	t.Helper()
	resp, err := http.Get(url + "/trace/stream")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp, bufio.NewScanner(resp.Body)
}
