package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestFoldedRoundTrip pins the folded flamegraph format: rendering the
// profile of a real run and parsing it back recovers every symbol's
// exact cycle weight, and the weights sum to the run's total cycles.
func TestFoldedRoundTrip(t *testing.T) {
	_, _, profiler, res := runCorpus(t, "calc")
	var buf bytes.Buffer
	if err := WriteFolded(&buf, profiler); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFolded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) == 0 {
		t.Fatal("empty folded profile")
	}
	var sum uint64
	for stack, n := range parsed {
		if !strings.HasPrefix(stack, "user;") && !strings.HasPrefix(stack, "kernel;") {
			t.Errorf("stack %q not rooted in an address space", stack)
		}
		sum += n
	}
	if sum != res.Stats.Cycles {
		t.Errorf("folded weights sum to %d, Stats.Cycles = %d", sum, res.Stats.Cycles)
	}
	// Cross-check one symbol against the flat profile.
	for _, row := range profiler.Flat() {
		space := "user"
		if row.Kernel {
			space = "kernel"
		}
		if got := parsed[space+";"+foldedFrame(row.Name)]; got != row.Cycles {
			t.Errorf("symbol %s: folded %d, flat %d", row.Name, got, row.Cycles)
		}
	}
}

func TestParseFoldedRejectsGarbage(t *testing.T) {
	if _, err := ParseFolded(strings.NewReader("nocount\n")); err == nil {
		t.Error("line without count accepted")
	}
	if _, err := ParseFolded(strings.NewReader("a;b notanumber\n")); err == nil {
		t.Error("non-numeric count accepted")
	}
}

func TestProfileTopEndpoint(t *testing.T) {
	_, _, profiler, res := runCorpus(t, "calc")
	srv := New(Config{Program: "test", Profiler: profiler})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out struct {
		TotalCycles uint64     `json:"total_cycles"`
		Symbols     []TopEntry `json:"symbols"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/profile/top?n=3")), &out); err != nil {
		t.Fatal(err)
	}
	if out.TotalCycles != res.Stats.Cycles {
		t.Errorf("total_cycles = %d, want %d", out.TotalCycles, res.Stats.Cycles)
	}
	if len(out.Symbols) == 0 || len(out.Symbols) > 3 {
		t.Fatalf("got %d symbols, want 1..3", len(out.Symbols))
	}
	// Flat order: descending cycles.
	for i := 1; i < len(out.Symbols); i++ {
		if out.Symbols[i].Cycles > out.Symbols[i-1].Cycles {
			t.Error("top symbols not sorted by cycles")
		}
	}
}
